test/test_asm.ml: Alcotest Builder Bytes Codec Elfie_asm Elfie_isa Elfie_machine Format Insn Int64 List Option Printf QCheck QCheck_alcotest Reg String Tutil
