test/test_sim.ml: Alcotest Array Elfie_core Elfie_coresim Elfie_gem5 Elfie_machine Elfie_pin Elfie_pinball Elfie_sniper Elfie_workloads Int64 Option Seq Tutil
