test/test_elf.ml: Alcotest Bytes Char Elfie_elf Image Int64 List Printf QCheck QCheck_alcotest Tutil
