test/test_criu.ml: Alcotest Array Bytes Elfie_core Elfie_criu Elfie_elf Elfie_kernel Elfie_machine Elfie_pin Int64 List Tutil
