test/test_debug.ml: Alcotest Array Elfie_core Elfie_debug Elfie_isa Elfie_machine Elfie_pin Elfie_pinball Format List Option Tutil
