test/test_isa.ml: Alcotest Builder Bytes Codec Elfie_isa Elfie_util Insn Int64 List Option QCheck QCheck_alcotest Reg Tutil
