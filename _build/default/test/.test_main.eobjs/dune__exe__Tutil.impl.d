test/tutil.ml: Alcotest Builder Bytes Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Elfie_pin Elfie_workloads Insn Int64 List Reg
