test/test_harness.ml: Alcotest Elfie_harness Elfie_perf Elfie_simpoint Elfie_workloads List Option String Tutil
