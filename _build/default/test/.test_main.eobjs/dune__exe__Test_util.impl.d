test/test_util.ml: Alcotest Array Byteio Bytes Elfie_util Fun QCheck QCheck_alcotest Rng Tutil
