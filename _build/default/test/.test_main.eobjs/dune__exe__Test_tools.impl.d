test/test_tools.ml: Alcotest Elfie_core Elfie_kernel Elfie_machine Elfie_pin Elfie_pinball Int64 List Tutil
