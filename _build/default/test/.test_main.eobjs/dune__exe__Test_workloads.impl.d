test/test_workloads.ml: Alcotest Array Elfie_pin Elfie_workloads Float Int64 Kernels List Programs Suite Tutil
