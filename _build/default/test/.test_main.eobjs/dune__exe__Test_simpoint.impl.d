test/test_simpoint.ml: Alcotest Array Elfie_pin Elfie_simpoint Elfie_util Float Fun Int64 List QCheck QCheck_alcotest Tutil
