test/test_kernel.ml: Abi Alcotest Builder Bytes Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Format Fs Int64 List Loader Reg String Tutil Vkernel
