test/test_pinball.ml: Alcotest Array Bytes Elfie_isa Elfie_machine Elfie_pinball Filename Int64 List Pinball Printf QCheck QCheck_alcotest Sys Tutil
