test/test_machine.ml: Addr_space Alcotest Array Builder Bytes Cache Char Context Elfie_isa Elfie_machine Insn Int64 List Machine QCheck QCheck_alcotest Reg String Timing Tutil
