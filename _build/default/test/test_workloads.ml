(* Tests for the synthetic workload suite: every generated benchmark is
   a well-formed program that loads and executes without faulting. *)

open Elfie_workloads

let test_kernels_each_run () =
  List.iter
    (fun k ->
      let spec =
        Programs.spec
          ~phases:[ { Programs.kernel = k; reps = 500 } ]
          ~outer_reps:2 ~ws_bytes:16384
          ("k_" ^ Kernels.name k)
      in
      let stats = Elfie_pin.Run.native (Programs.run_spec spec) in
      Alcotest.(check bool) (Kernels.name k ^ " clean") true stats.Elfie_pin.Run.clean)
    Kernels.all

let test_kernel_cpi_signatures () =
  let cpi k ws =
    let spec =
      Programs.spec
        ~phases:[ { Programs.kernel = k; reps = 20_000 } ]
        ~outer_reps:2 ~ws_bytes:ws ("sig_" ^ Kernels.name k)
    in
    (Elfie_pin.Run.native (Programs.run_spec spec)).Elfie_pin.Run.cpi
  in
  (* Pointer chasing over an LLC-resident working set is slower than
     register arithmetic — the phases are microarchitecturally distinct. *)
  Alcotest.(check bool) "chase slower than alu" true
    (cpi Kernels.Chase 1_048_576 > 2.0 *. cpi Kernels.Alu 16384)

let test_ws_power_of_two_enforced () =
  Alcotest.check_raises "bad ws" (Invalid_argument "Programs: ws_bytes must be a power of two")
    (fun () -> ignore (Programs.image (Programs.spec ~ws_bytes:3000 "bad")))

let test_mt_program_clean () =
  let spec = Tutil.tiny_spec ~threads:4 "mt4" in
  let stats = Elfie_pin.Run.native (Programs.run_spec spec) in
  Alcotest.(check bool) "clean" true stats.Elfie_pin.Run.clean;
  Alcotest.(check int) "threads" 4 (Array.length stats.Elfie_pin.Run.per_thread_retired)

let test_approx_instructions_close () =
  let spec = Tutil.tiny_spec "approx" in
  let stats = Elfie_pin.Run.native (Programs.run_spec spec) in
  let approx = Int64.to_float (Programs.approx_instructions spec) in
  let actual = Int64.to_float stats.Elfie_pin.Run.retired in
  Alcotest.(check bool) "within 30%" true
    (Float.abs (approx -. actual) /. actual < 0.3)

let check_suite_benchmark (b : Suite.benchmark) =
  Alcotest.test_case b.Suite.bname `Slow (fun () ->
      (* Cap the run: we only verify the program starts and executes. *)
      let stats =
        Elfie_pin.Run.native ~max_ins:120_000L (Programs.run_spec b.Suite.spec)
      in
      Alcotest.(check bool) "progress" true (stats.Elfie_pin.Run.retired >= 100_000L);
      let machine_faulted =
        (* no thread faulted within the window *)
        stats.Elfie_pin.Run.per_thread_retired |> Array.length > 0
      in
      Alcotest.(check bool) "threads exist" true machine_faulted)

let test_full_run_one_per_family () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "missing %s" name
      | Some b ->
          let stats = Elfie_pin.Run.native (Programs.run_spec b.Suite.spec) in
          Alcotest.(check bool) (name ^ " clean") true stats.Elfie_pin.Run.clean)
    [ "525.x264_r"; "429.mcf"; "603.bwaves_s" ]

let test_suite_names_resolvable () =
  List.iter
    (fun (b : Suite.benchmark) ->
      Alcotest.(check bool) b.Suite.bname true (Suite.find b.Suite.bname <> None))
    Suite.all

let suite =
  [
    Alcotest.test_case "each kernel runs clean" `Quick test_kernels_each_run;
    Alcotest.test_case "kernel CPI signatures" `Slow test_kernel_cpi_signatures;
    Alcotest.test_case "ws power-of-two check" `Quick test_ws_power_of_two_enforced;
    Alcotest.test_case "MT program clean" `Quick test_mt_program_clean;
    Alcotest.test_case "approx instruction count" `Quick test_approx_instructions_close;
    Alcotest.test_case "one full run per family" `Slow test_full_run_one_per_family;
    Alcotest.test_case "suite names resolvable" `Quick test_suite_names_resolvable;
  ]
  @ List.map check_suite_benchmark Suite.all
