(* Tests for the VX86 ISA: instruction codec round-trips (unit and
   property) and the label-resolving program builder. *)

open Elfie_isa
open Elfie_isa.Insn

let sample_mems =
  [
    mem_abs 0x1234L;
    mem_base Reg.RSP;
    mem_base ~disp:(-8L) Reg.RBP;
    { base = Some Reg.R12; index = Some Reg.RDI; scale = 1; disp = 0L };
    { base = Some Reg.RAX; index = Some Reg.RBX; scale = 8; disp = 0x7fff_ffff_0000L };
    { base = None; index = Some Reg.RCX; scale = 4; disp = -64L };
  ]

(* One instance of every instruction form. *)
let sample_instructions =
  [ Mov_ri (Reg.RAX, 0xdead_beef_cafe_f00dL); Mov_rr (Reg.RSP, Reg.R15) ]
  @ List.concat_map
      (fun m ->
        [ Load (W8, Reg.RAX, m); Load (W64, Reg.R9, m); Store (W32, m, Reg.RDX);
          Store (W16, m, Reg.R14); Lea (Reg.RSI, m); Xchg (Reg.RBX, m);
          Cmpxchg (m, Reg.RCX); Vload (3, m); Vstore (m, 15); Jmp_m m ])
      sample_mems
  @ [ Alu_rr (Add, Reg.RAX, Reg.RBX); Alu_rr (Test, Reg.R8, Reg.R9);
      Alu_ri (Sub, Reg.RCX, -1L); Alu_ri (Cmp, Reg.RDI, 0x7fff_ffffL);
      Shift_ri (Shl, Reg.RDX, 63); Shift_ri (Sar, Reg.RBP, 1); Neg Reg.R11;
      Push Reg.RAX; Pop Reg.R15; Jmp (-5); Jcc (Eq, 100); Jcc (Uge, -1000);
      Jmp_r Reg.RCX; Call 0x100; Call_r Reg.RDX; Ret; Syscall; Cpuid; Nop;
      Ssc_marker 0xdeadbeefL; Magic 0x51; Pause; Ldctx Reg.RDI; Stctx Reg.RSI;
      Wrfsbase Reg.RAX; Wrgsbase Reg.RBX; Rdfsbase Reg.RCX; Rdgsbase Reg.RDX;
      Popf; Pushf; Vop_rr (Vadd, 0, 15); Vop_rr (Vmul, 7, 7); Hlt; Ud2 ]

let test_roundtrip_every_form () =
  List.iter
    (fun ins ->
      let bytes = Codec.encode_bytes ins in
      let decoded, len = Codec.decode_one bytes 0 in
      Alcotest.(check string)
        (Insn.to_string ins ^ " roundtrip")
        (Insn.to_string ins) (Insn.to_string decoded);
      Alcotest.(check int) "consumed all bytes" (Bytes.length bytes) len)
    sample_instructions

let test_length_matches_encoding () =
  List.iter
    (fun ins ->
      Alcotest.(check int)
        (Insn.to_string ins ^ " length")
        (Bytes.length (Codec.encode_bytes ins))
        (Codec.length ins))
    sample_instructions

let test_max_length_bound () =
  (* The fetcher reads 16 bytes; no encoding may exceed that. *)
  List.iter
    (fun ins ->
      Alcotest.(check bool)
        (Insn.to_string ins ^ " fits fetch window")
        true
        (Codec.length ins <= 16))
    sample_instructions

let test_decode_invalid_opcode () =
  Alcotest.check_raises "opcode 0xff" (Codec.Invalid "unknown opcode 0xff")
    (fun () -> ignore (Codec.decode_one (Bytes.make 4 '\xff') 0))

let test_decode_bad_register () =
  (* Mov_rr with an out-of-range register byte. *)
  let b = Bytes.of_string "\x02\x10\x00" in
  Alcotest.check_raises "gpr 16" (Codec.Invalid "gpr index 16") (fun () ->
      ignore (Codec.decode_one b 0))

let test_disassemble () =
  let w = Elfie_util.Byteio.Writer.create () in
  List.iter (Codec.encode w) [ Nop; Ret; Syscall ];
  let listing =
    Codec.disassemble (Elfie_util.Byteio.Writer.contents w) ~off:0 ~count:10
  in
  Alcotest.(check int) "three instructions" 3 (List.length listing);
  Alcotest.(check string) "second is ret" "ret"
    (Insn.to_string (snd (List.nth listing 1)))

(* --- property: random instruction round-trips --------------------------- *)

let gpr_gen = QCheck.Gen.map Reg.gpr_of_index (QCheck.Gen.int_range 0 15)

let mem_gen =
  let open QCheck.Gen in
  let* base = opt gpr_gen in
  let* index = opt gpr_gen in
  let* scale = oneofl [ 1; 2; 4; 8 ] in
  let* disp = map Int64.of_int (int_range (-1_000_000) 1_000_000) in
  return { base; index; scale; disp }

let ins_gen =
  let open QCheck.Gen in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Imul; Cmp; Test ] in
  let width = oneofl [ W8; W16; W32; W64 ] in
  let cond = oneofl [ Eq; Ne; Lt; Ge; Le; Gt; Ult; Uge ] in
  let imm32 = map Int64.of_int (int_range (-0x8000_0000) 0x7fff_ffff) in
  let rel = int_range (-100_000) 100_000 in
  oneof
    [
      map2 (fun r v -> Mov_ri (r, v)) gpr_gen (map Int64.of_int int);
      map2 (fun a b -> Mov_rr (a, b)) gpr_gen gpr_gen;
      map3 (fun w r m -> Load (w, r, m)) width gpr_gen mem_gen;
      map3 (fun w m r -> Store (w, m, r)) width mem_gen gpr_gen;
      map2 (fun r m -> Lea (r, m)) gpr_gen mem_gen;
      map3 (fun op a b -> Alu_rr (op, a, b)) alu gpr_gen gpr_gen;
      map3 (fun op r v -> Alu_ri (op, r, v)) alu gpr_gen imm32;
      map3 (fun op r n -> Shift_ri (op, r, n)) (oneofl [ Shl; Shr; Sar ]) gpr_gen
        (int_range 0 63);
      map (fun r -> Push r) gpr_gen;
      map (fun r -> Pop r) gpr_gen;
      map (fun r -> Jmp r) rel;
      map2 (fun c r -> Jcc (c, r)) cond rel;
      map (fun m -> Jmp_m m) mem_gen;
      map (fun r -> Call r) rel;
      return Ret;
      return Syscall;
      return Nop;
      map2 (fun r m -> Xchg (r, m)) gpr_gen mem_gen;
      map2 (fun m r -> Cmpxchg (m, r)) mem_gen gpr_gen;
      map3 (fun op a b -> Vop_rr (op, a, b)) (oneofl [ Vadd; Vmul; Vsub ])
        (int_range 0 15) (int_range 0 15);
    ]

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip (random instructions)" ~count:2000
    (QCheck.make ins_gen ~print:Insn.to_string) (fun ins ->
      let decoded, len = Codec.decode_one (Codec.encode_bytes ins) 0 in
      decoded = ins && len = Codec.length ins)

(* --- builder ------------------------------------------------------------- *)

let test_builder_backward_jump () =
  let b = Builder.create () in
  let top = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b top;
  let prog = Builder.assemble b ~base:0x1000L in
  (* jmp encodes rel past itself back to 0. *)
  let decoded, _ = Codec.decode_one prog.Builder.code 1 in
  Alcotest.(check string) "backward" "jmp .-6" (Insn.to_string decoded)

let test_builder_forward_jump () =
  let b = Builder.create () in
  let target = Builder.new_label b in
  Builder.jmp b target;
  Builder.ins b Nop;
  Builder.ins b Nop;
  Builder.bind b target;
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0L in
  let decoded, _ = Codec.decode_one prog.Builder.code 0 in
  Alcotest.(check string) "forward over two nops" "jmp .+2" (Insn.to_string decoded)

let test_builder_symbols_and_resolve () =
  let b = Builder.create () in
  Builder.ins b Nop;
  let f = Builder.here ~name:"f" b in
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x400000L in
  Alcotest.(check (list (pair string Tutil.i64)))
    "symbols" [ ("f", 0x400001L) ] prog.Builder.symbols;
  Alcotest.check Tutil.i64 "resolve" 0x400001L (Builder.resolve b prog f)

let test_builder_align_and_quad () =
  let b = Builder.create () in
  Builder.ins b Nop;
  Builder.align b 8;
  let data = Builder.here b in
  Builder.quad b 0x1122334455667788L;
  let prog = Builder.assemble b ~base:0L in
  Alcotest.check Tutil.i64 "aligned" 8L (Builder.resolve b prog data);
  let r = Elfie_util.Byteio.Reader.of_bytes prog.Builder.code in
  Elfie_util.Byteio.Reader.seek r 8;
  Alcotest.check Tutil.i64 "quad value" 0x1122334455667788L
    (Elfie_util.Byteio.Reader.u64 r)

let test_builder_mov_label () =
  let b = Builder.create () in
  let target = Builder.new_label b in
  Builder.mov_label b Reg.RAX target;
  Builder.bind b target;
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x5000L in
  let decoded, _ = Codec.decode_one prog.Builder.code 0 in
  (match decoded with
  | Mov_ri (Reg.RAX, v) -> Alcotest.check Tutil.i64 "address" 0x500aL v
  | _ -> Alcotest.fail "expected mov_ri");
  ()

let test_builder_jmp_mem () =
  let b = Builder.create () in
  let slot = Builder.new_label b in
  Builder.jmp_mem b slot;
  Builder.align b 8;
  Builder.bind b slot;
  Builder.quad b 0xdeadL;
  let prog = Builder.assemble b ~base:0L in
  let decoded, _ = Codec.decode_one prog.Builder.code 0 in
  (match decoded with
  | Jmp_m m -> Alcotest.check Tutil.i64 "slot address" 16L m.disp
  | _ -> Alcotest.fail "expected jmp_m");
  ()

let test_builder_unbound_label () =
  let b = Builder.create () in
  let l = Builder.new_label ~name:"nowhere" b in
  Builder.jmp b l;
  Alcotest.check_raises "unbound" (Failure "Builder.assemble: unbound label nowhere")
    (fun () -> ignore (Builder.assemble b ~base:0L))

let test_builder_double_bind () =
  let b = Builder.create () in
  let l = Builder.here b in
  Alcotest.check_raises "double bind" (Failure "Builder.bind: label bound twice")
    (fun () -> Builder.bind b l)

let test_builder_rebase () =
  (* Assembling the same builder at two bases patches absolute refs. *)
  let b = Builder.create () in
  let l = Builder.new_label b in
  Builder.mov_label b Reg.RBX l;
  Builder.bind b l;
  let p1 = Builder.assemble b ~base:0x1000L in
  let p2 = Builder.assemble b ~base:0x2000L in
  let v prog =
    match fst (Codec.decode_one prog.Builder.code 0) with
    | Mov_ri (_, v) -> v
    | _ -> Alcotest.fail "mov expected"
  in
  Alcotest.check Tutil.i64 "base 1" 0x100aL (v p1);
  Alcotest.check Tutil.i64 "base 2" 0x200aL (v p2)

let test_flags_word_roundtrip () =
  let f = Reg.fresh_flags () in
  f.zf <- true;
  f.ovf <- true;
  let f' = Reg.flags_of_word (Reg.flags_to_word f) in
  Alcotest.(check bool) "zf" true f'.Reg.zf;
  Alcotest.(check bool) "sf" false f'.Reg.sf;
  Alcotest.(check bool) "cf" false f'.Reg.cf;
  Alcotest.(check bool) "of" true f'.Reg.ovf

let test_gpr_names () =
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        "name roundtrip"
        (Some (Reg.gpr_name r))
        (Option.map Reg.gpr_name (Reg.gpr_of_name (Reg.gpr_name r))))
    Reg.all_gprs;
  Alcotest.(check bool) "unknown name" true (Reg.gpr_of_name "bogus" = None)

let suite =
  [
    Alcotest.test_case "codec roundtrip (every form)" `Quick test_roundtrip_every_form;
    Alcotest.test_case "length matches encoding" `Quick test_length_matches_encoding;
    Alcotest.test_case "encodings fit the fetch window" `Quick test_max_length_bound;
    Alcotest.test_case "invalid opcode" `Quick test_decode_invalid_opcode;
    Alcotest.test_case "invalid register" `Quick test_decode_bad_register;
    Alcotest.test_case "disassemble" `Quick test_disassemble;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "builder backward jump" `Quick test_builder_backward_jump;
    Alcotest.test_case "builder forward jump" `Quick test_builder_forward_jump;
    Alcotest.test_case "builder symbols/resolve" `Quick test_builder_symbols_and_resolve;
    Alcotest.test_case "builder align/quad" `Quick test_builder_align_and_quad;
    Alcotest.test_case "builder mov_label" `Quick test_builder_mov_label;
    Alcotest.test_case "builder jmp_mem" `Quick test_builder_jmp_mem;
    Alcotest.test_case "builder unbound label" `Quick test_builder_unbound_label;
    Alcotest.test_case "builder double bind" `Quick test_builder_double_bind;
    Alcotest.test_case "builder rebase" `Quick test_builder_rebase;
    Alcotest.test_case "flags word roundtrip" `Quick test_flags_word_roundtrip;
    Alcotest.test_case "gpr names" `Quick test_gpr_names;
  ]
