(* Tests for the textual VX86 assembler. *)

open Elfie_isa
module Asm = Elfie_asm.Asm

let assemble src = Asm.assemble_exn ~base:0x40_0000L src

let decode_all prog =
  Codec.disassemble prog.Builder.code ~off:0 ~count:1000 |> List.map snd

let test_basic_program () =
  let prog =
    assemble
      {|
      ; 10 * 7, then exit_group(70)
      _start:
          mov   rcx, 10
          mov   rax, 0
      loop:
          add   rax, 7
          sub   rcx, 1
          jne   loop
          mov   rdi, rax
          mov   rax, 231
          syscall
      |}
  in
  Alcotest.(check (list string))
    "instruction stream"
    [ "mov rcx, 0xa"; "mov rax, 0x0"; "add rax, 7"; "sub rcx, 1"; "jne .-20";
      "mov rdi, rax"; "mov rax, 0xe7"; "syscall" ]
    (List.map Insn.to_string (decode_all prog));
  Alcotest.(check (list string)) "symbols" [ "_start"; "loop" ]
    (List.map fst prog.Builder.symbols)

let test_assembled_program_runs () =
  let prog =
    assemble
      {|
      _start:
          mov   rcx, 10
          mov   rax, 0
      again:
          add   rax, 7
          sub   rcx, 1
          jne   again
          mov   rdi, rax
          mov   rax, 231
          syscall
      |}
  in
  let b = Builder.create () in
  Builder.raw b prog.Builder.code;
  let image = Tutil.image_of b in
  let machine, _ = Tutil.run_image image in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited 70 -> ()
  | s ->
      Alcotest.failf "expected exit 70, got %s"
        (match s with
        | Elfie_machine.Machine.Exited n -> string_of_int n
        | Faulted f -> Format.asprintf "%a" Elfie_machine.Machine.pp_fault f
        | Runnable -> "runnable")

let test_memory_operands () =
  let prog =
    assemble
      {|
      mov   rax, [rbx]
      movq  [rbx+8], rax
      movb  rcx, [rbx + rdx*4 - 16]
      lea   rsi, [rbx + rcx]
      jmp   [rip_slot]
      rip_slot:
      .quad 0
      |}
  in
  match decode_all prog with
  | [ Load (W64, Reg.RAX, m1); Store (W64, m2, Reg.RAX); Load (W8, Reg.RCX, m3);
      Lea (Reg.RSI, _); Jmp_m m5 ] ->
      Alcotest.(check (option string)) "base" (Some "rbx")
        (Option.map Reg.gpr_name m1.Insn.base);
      Alcotest.check Tutil.i64 "disp" 8L m2.Insn.disp;
      Alcotest.(check int) "scale" 4 m3.Insn.scale;
      Alcotest.check Tutil.i64 "neg disp" (-16L) m3.Insn.disp;
      Alcotest.(check bool) "abs slot addr" true (m5.Insn.disp > 0x40_0000L)
  | other ->
      Alcotest.failf "unexpected decode: %s"
        (String.concat "; " (List.map Insn.to_string other))

let test_directives () =
  let prog =
    assemble {|
      .byte 1, 2, 3
      .align 8
      .quad 0x1122334455667788
      .asciz "hi"
      |}
  in
  let code = prog.Builder.code in
  Alcotest.(check int) "layout" 19 (Bytes.length code);
  Alcotest.check Tutil.i64 "quad at 8" 0x1122334455667788L (Bytes.get_int64_le code 8);
  Alcotest.(check string) "string" "hi\000" (Bytes.sub_string code 16 3)

let test_quad_label_and_mov_label () =
  let prog =
    assemble {|
      mov rax, data
      jmp end
      data:
      .quad data
      end:
      |}
  in
  match decode_all prog with
  | Mov_ri (Reg.RAX, addr) :: _ ->
      let off = Int64.to_int (Int64.sub addr 0x40_0000L) in
      Alcotest.check Tutil.i64 "self-referential quad" addr
        (Bytes.get_int64_le prog.Builder.code off)
  | _ -> Alcotest.fail "expected mov"

let test_vector_and_atomics () =
  let prog =
    assemble
      {|
      movdqu xmm1, [rax]
      vmulpd xmm1, xmm2
      movdqu [rax], xmm1
      xchg rbx, [rax]
      cmpxchg [rax], rcx
      pause
      |}
  in
  Alcotest.(check int) "six instructions" 6 (List.length (decode_all prog))

(* Property: the instruction printer emits valid assembler syntax for
   the data-movement/ALU subset, and assembling it round-trips. *)
let printable_ins_gen =
  let open QCheck.Gen in
  let gpr = QCheck.Gen.map Reg.gpr_of_index (int_range 0 15) in
  let mem =
    let* base = opt gpr in
    let* index = opt gpr in
    let* scale = oneofl [ 1; 2; 4; 8 ] in
    let* disp = map Int64.of_int (int_range (-4096) 1_000_000) in
    (* a memory operand with no register must print a non-negative
       absolute displacement, and scale is only printable with an index *)
    let disp = if base = None && index = None then Int64.abs disp else disp in
    let scale = if index = None then 1 else scale in
    return { Insn.base; index; scale; disp }
  in
  let alu = oneofl Insn.[ Add; Sub; And; Or; Xor; Imul; Cmp; Test ] in
  let width = oneofl Insn.[ W8; W16; W32; W64 ] in
  oneof
    [
      map2 (fun r v -> Insn.Mov_ri (r, Int64.abs v)) gpr (map Int64.of_int int);
      map2 (fun a b -> Insn.Mov_rr (a, b)) gpr gpr;
      map3 (fun w r m -> Insn.Load (w, r, m)) width gpr mem;
      map3 (fun w m r -> Insn.Store (w, m, r)) width mem gpr;
      map2 (fun r m -> Insn.Lea (r, m)) gpr mem;
      map3 (fun op a b -> Insn.Alu_rr (op, a, b)) alu gpr gpr;
      map3
        (fun op r v -> Insn.Alu_ri (op, r, Int64.of_int v))
        alu gpr (int_range (-1000000) 1000000);
      map3
        (fun op r n -> Insn.Shift_ri (op, r, n))
        (oneofl Insn.[ Shl; Shr; Sar ])
        gpr (int_range 0 63);
      map (fun r -> Insn.Neg r) gpr;
      map (fun r -> Insn.Push r) gpr;
      map (fun r -> Insn.Pop r) gpr;
      map2 (fun x m -> Insn.Vload (x, m)) (int_range 0 15) mem;
      map2 (fun m x -> Insn.Vstore (m, x)) mem (int_range 0 15);
      map3
        (fun op a b -> Insn.Vop_rr (op, a, b))
        (oneofl Insn.[ Vadd; Vmul; Vsub ])
        (int_range 0 15) (int_range 0 15);
    ]

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"printer output reassembles to the same instruction"
    ~count:500
    (QCheck.make printable_ins_gen ~print:Insn.to_string)
    (fun ins ->
      let src = Insn.to_string ins in
      match Asm.assemble ~base:0L src with
      | Error _ -> false
      | Ok prog -> fst (Codec.decode_one prog.Builder.code 0) = ins)

let check_error name src expected_infix =
  Alcotest.test_case name `Quick (fun () ->
      match Asm.assemble ~base:0L src with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e ->
          let msg = Format.asprintf "%a" Asm.pp_error e in
          let contains sub s =
            let n = String.length sub and m = String.length s in
            let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%S mentions %S" msg expected_infix)
            true (contains expected_infix msg))

let test_error_line_numbers () =
  match Asm.assemble ~base:0L "nop\nnop\nbogus_op rax\n" with
  | Error { line = 3; _ } -> ()
  | Error { line; _ } -> Alcotest.failf "wrong line %d" line
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  [
    Alcotest.test_case "basic program" `Quick test_basic_program;
    Alcotest.test_case "assembled program runs" `Quick test_assembled_program_runs;
    Alcotest.test_case "memory operands" `Quick test_memory_operands;
    Alcotest.test_case "directives" `Quick test_directives;
    Alcotest.test_case "quad label / mov label" `Quick test_quad_label_and_mov_label;
    Alcotest.test_case "vector and atomics" `Quick test_vector_and_atomics;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    check_error "unknown register" "mov rzz, 1" "unknown instruction";
    check_error "unterminated string" ".ascii \"abc" "unterminated";
    check_error "double label" "a:\na:\nnop" "defined twice";
    check_error "unbound label" "jmp nowhere" "unbound label";
    check_error "bad directive" ".bogus 1" "unknown or malformed directive";
  ]
