(* Tests for the three simulator substrates: Vsniper, Vcoresim, Vgem5. *)

module Sniper = Elfie_sniper.Sniper
module Coresim = Elfie_coresim.Coresim
module Gem5 = Elfie_gem5.Gem5
module Pinball2elf = Elfie_core.Pinball2elf

let elfie_with_sysstate ?(threads = 1) ?marker name =
  let pb = Tutil.tiny_pinball ~file_io:true ~threads name in
  let ss = Elfie_pin.Sysstate.analyze pb in
  let options =
    { Pinball2elf.default_options with
      sysstate = Some ss;
      marker = Some (Option.value ~default:(Pinball2elf.Ssc 1L) marker) }
  in
  (pb, Pinball2elf.convert ~options pb, fun fs -> Elfie_pin.Sysstate.install ss fs ~workdir:"/work")

(* --- sniper ----------------------------------------------------------------- *)

let test_sniper_elfie_counts_region_only () =
  let pb, image, fs_init = elfie_with_sysstate "sn1" in
  let r =
    Sniper.simulate_elfie ~fs_init ~cwd:"/work" (Sniper.gainestown ~cores:1) image
  in
  (* The model arms at the ROI marker, so it must count the region, not
     the (much larger) startup stack-copy code. *)
  let region = Elfie_pinball.Pinball.total_icount pb in
  Alcotest.(check bool) "close to region icount" true
    (Int64.sub r.Sniper.instructions region |> Int64.abs |> fun d -> d < 100L);
  Alcotest.(check bool) "ipc sane" true (r.Sniper.ipc > 0.05 && r.Sniper.ipc < 8.0)

let test_sniper_pinball_matches_recording () =
  let pb = Tutil.tiny_pinball "sn2" in
  let r = Sniper.simulate_pinball (Sniper.gainestown ~cores:1) pb in
  Alcotest.check Tutil.i64 "constrained icount exact"
    (Elfie_pinball.Pinball.total_icount pb)
    r.Sniper.instructions

let test_sniper_end_condition () =
  let pb, image, fs_init = elfie_with_sysstate "sn3" in
  ignore pb;
  (* Stop after the marker instruction itself has run once. *)
  let r =
    Sniper.simulate_elfie ~fs_init ~cwd:"/work"
      ~end_condition:{ Sniper.pc = 0L; count = max_int }
      (Sniper.gainestown ~cores:1) image
  in
  Alcotest.(check bool) "no ec match still ends via counters" false
    r.Sniper.end_condition_met

let test_sniper_mt_uses_cores () =
  let _, image, fs_init = elfie_with_sysstate ~threads:4 "sn4" in
  let r =
    Sniper.simulate_elfie ~fs_init ~cwd:"/work" ~max_ins:5_000_000L
      (Sniper.gainestown ~cores:4) image
  in
  let busy =
    Array.length (Array.of_seq (Seq.filter (fun c -> c > 0L) (Array.to_seq r.Sniper.per_core_cycles)))
  in
  Alcotest.(check bool) "several cores busy" true (busy >= 3)

(* --- coresim ---------------------------------------------------------------- *)

let test_coresim_user_vs_full_system () =
  let _, image, fs_init = elfie_with_sysstate ~marker:(Pinball2elf.Simics 4) "cs1" in
  let u = Coresim.simulate ~mode:Coresim.User_level ~fs_init ~cwd:"/work" Coresim.skylake image in
  let f = Coresim.simulate ~mode:Coresim.Full_system ~fs_init ~cwd:"/work" Coresim.skylake image in
  Alcotest.check Tutil.i64 "ring3 equal" u.Coresim.user_instructions
    f.Coresim.user_instructions;
  Alcotest.check Tutil.i64 "user mode has no ring0" 0L u.Coresim.kernel_instructions;
  Alcotest.(check bool) "full system adds ring0" true
    (f.Coresim.kernel_instructions > 0L);
  Alcotest.(check bool) "full system slower" true
    (f.Coresim.runtime_cycles > u.Coresim.runtime_cycles);
  Alcotest.(check bool) "full system larger footprint" true
    (f.Coresim.data_footprint_bytes > u.Coresim.data_footprint_bytes);
  Alcotest.(check bool) "full system more TLB misses" true
    (f.Coresim.dtlb_misses > u.Coresim.dtlb_misses)

let test_coresim_measure_window () =
  let _, image, fs_init = elfie_with_sysstate "cs2" in
  let all = Coresim.simulate ~fs_init ~cwd:"/work" Coresim.skylake image in
  let windowed =
    Coresim.simulate ~measure_after:10_000L ~fs_init ~cwd:"/work" Coresim.skylake image
  in
  Alcotest.(check bool) "window changes cpi" true (all.Coresim.cpi <> windowed.Coresim.cpi)

(* --- gem5 ------------------------------------------------------------------- *)

let test_gem5_haswell_beats_nehalem () =
  (* A memory-heavy workload benefits from the bigger back end. *)
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:[ { kernel = Elfie_workloads.Kernels.Stream; reps = 4000 } ]
      ~outer_reps:6 ~ws_bytes:262144 "gem5mem"
  in
  let rs = Elfie_workloads.Programs.run_spec spec in
  let r = Elfie_pin.Logger.capture rs ~name:"g5" { Elfie_pin.Logger.start = 30_000L; length = 40_000L } in
  let options =
    { Pinball2elf.default_options with marker = Some (Pinball2elf.Ssc 2L) }
  in
  let image = Pinball2elf.convert ~options r.Elfie_pin.Logger.pinball in
  let n = Gem5.simulate_se Gem5.nehalem image in
  let h = Gem5.simulate_se Gem5.haswell image in
  Alcotest.check Tutil.i64 "same instructions" n.Gem5.instructions h.Gem5.instructions;
  Alcotest.(check bool) "haswell faster" true (h.Gem5.ipc > n.Gem5.ipc)

let test_gem5_counts_from_marker () =
  let pb, image, fs_init = elfie_with_sysstate "g52" in
  let r = Gem5.simulate_se ~fs_init ~cwd:"/work" Gem5.nehalem image in
  let region = Elfie_pinball.Pinball.total_icount pb in
  Alcotest.(check bool) "counts region only" true
    (Int64.abs (Int64.sub r.Gem5.instructions region) < 100L)

let test_simulators_deterministic () =
  (* Every simulator substrate is a pure function of its inputs: two
     identical invocations agree exactly (required for reproducible
     experiment tables). *)
  let pb, image, fs_init = elfie_with_sysstate "det" in
  let s1 = Sniper.simulate_pinball (Sniper.gainestown ~cores:1) pb in
  let s2 = Sniper.simulate_pinball (Sniper.gainestown ~cores:1) pb in
  Alcotest.check Tutil.i64 "sniper cycles" s1.Sniper.runtime_cycles s2.Sniper.runtime_cycles;
  let c1 = Coresim.simulate ~fs_init ~cwd:"/work" Coresim.skylake image in
  let c2 = Coresim.simulate ~fs_init ~cwd:"/work" Coresim.skylake image in
  Alcotest.check Tutil.i64 "coresim cycles" c1.Coresim.runtime_cycles c2.Coresim.runtime_cycles;
  let g1 = Gem5.simulate_se ~fs_init ~cwd:"/work" Gem5.nehalem image in
  let g2 = Gem5.simulate_se ~fs_init ~cwd:"/work" Gem5.nehalem image in
  Alcotest.check Tutil.i64 "gem5 cycles" g1.Gem5.cycles g2.Gem5.cycles

let test_sniper_end_condition_stops_early () =
  let pb, image, fs_init = elfie_with_sysstate "ecstop" in
  (* End at the very first app-code hit: pick the checkpointed RIP. *)
  let pc = pb.Elfie_pinball.Pinball.contexts.(0).Elfie_machine.Context.rip in
  let r =
    Sniper.simulate_elfie ~end_condition:{ Sniper.pc; count = 1 } ~fs_init
      ~cwd:"/work" (Sniper.gainestown ~cores:1) image
  in
  Alcotest.(check bool) "end condition met" true r.Sniper.end_condition_met;
  Alcotest.(check bool) "stopped long before region end" true
    (r.Sniper.instructions < Int64.div (Elfie_pinball.Pinball.total_icount pb) 2L)

let suite =
  [
    Alcotest.test_case "simulators deterministic" `Quick test_simulators_deterministic;
    Alcotest.test_case "sniper end condition stops" `Quick
      test_sniper_end_condition_stops_early;
    Alcotest.test_case "sniper counts region only" `Quick
      test_sniper_elfie_counts_region_only;
    Alcotest.test_case "sniper pinball matches recording" `Quick
      test_sniper_pinball_matches_recording;
    Alcotest.test_case "sniper end condition flag" `Quick test_sniper_end_condition;
    Alcotest.test_case "sniper MT uses cores" `Quick test_sniper_mt_uses_cores;
    Alcotest.test_case "coresim user vs full system" `Quick
      test_coresim_user_vs_full_system;
    Alcotest.test_case "coresim measure window" `Quick test_coresim_measure_window;
    Alcotest.test_case "gem5 haswell beats nehalem" `Quick
      test_gem5_haswell_beats_nehalem;
    Alcotest.test_case "gem5 counts from marker" `Quick test_gem5_counts_from_marker;
  ]
