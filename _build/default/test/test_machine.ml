(* Tests for the machine substrate: address space, contexts, caches,
   timing, and the interpreter's instruction semantics. *)

open Elfie_isa
open Elfie_isa.Insn
open Elfie_machine

(* --- address space -------------------------------------------------------- *)

let test_as_map_rw () =
  let m = Addr_space.create () in
  Addr_space.map m ~addr:0x1000L ~len:4096;
  Addr_space.write m 0x1000L 8 0x1122334455667788L;
  Alcotest.check Tutil.i64 "u64" 0x1122334455667788L (Addr_space.read m 0x1000L 8);
  Alcotest.check Tutil.i64 "u8 zero-extended" 0x88L (Addr_space.read m 0x1000L 1);
  Alcotest.check Tutil.i64 "u16" 0x7788L (Addr_space.read m 0x1000L 2);
  Alcotest.check Tutil.i64 "u32" 0x55667788L (Addr_space.read m 0x1000L 4)

let test_as_cross_page () =
  let m = Addr_space.create () in
  Addr_space.map m ~addr:0x1000L ~len:8192;
  Addr_space.write m 0x1ffcL 8 0xabcdef0123456789L;
  Alcotest.check Tutil.i64 "crosses page" 0xabcdef0123456789L
    (Addr_space.read m 0x1ffcL 8)

let test_as_fault () =
  let m = Addr_space.create () in
  (try
     ignore (Addr_space.read m 0x5000L 8);
     Alcotest.fail "expected fault"
   with Addr_space.Fault { addr; access = Addr_space.Read } ->
     Alcotest.check Tutil.i64 "fault addr" 0x5000L addr);
  Addr_space.map m ~addr:0x5000L ~len:1;
  Alcotest.check Tutil.i64 "mapped now" 0L (Addr_space.read m 0x5000L 8)

let test_as_unmap () =
  let m = Addr_space.create () in
  Addr_space.map m ~addr:0x1000L ~len:8192;
  Addr_space.unmap m ~addr:0x1000L ~len:4096;
  Alcotest.(check bool) "first gone" false (Addr_space.is_mapped m 0x1000L);
  Alcotest.(check bool) "second kept" true (Addr_space.is_mapped m 0x2000L)

let test_as_store_and_pages () =
  let m = Addr_space.create () in
  Addr_space.store m 0x2ff0L (Bytes.make 32 'x');
  Alcotest.(check int) "two pages mapped" 2 (Addr_space.page_count m);
  let pages = Addr_space.pages m in
  Alcotest.check Tutil.i64 "sorted first" 0x2000L (fst (List.hd pages))

let test_as_copy_isolated () =
  let m = Addr_space.create () in
  Addr_space.store m 0x1000L (Bytes.of_string "aaaa");
  let c = Addr_space.copy m in
  Addr_space.write m 0x1000L 1 0x62L;
  Alcotest.check Tutil.i64 "copy unchanged" (Int64.of_int (Char.code 'a'))
    (Addr_space.read c 0x1000L 1)

let test_as_read_avail' () =
  let m = Addr_space.create () in
  Addr_space.map m ~addr:0x1000L ~len:4096;
  (* Starts mapped, truncates at the unmapped page. *)
  let b = Addr_space.read_avail m 0x1ff8L 16 in
  Alcotest.(check int) "truncated at boundary" 8 (Bytes.length b)

let test_as_generation () =
  let m = Addr_space.create () in
  let g0 = Addr_space.generation m in
  Addr_space.map m ~addr:0L ~len:1;
  Alcotest.(check bool) "bumped" true (Addr_space.generation m > g0)

(* Property: the paged address space behaves like a flat byte map under
   random mapped writes and reads. *)
let prop_addr_space_model =
  let op_gen =
    let open QCheck.Gen in
    let addr = map (fun a -> Int64.of_int (a land 0xffff)) int in
    let width = oneofl [ 1; 2; 4; 8 ] in
    oneof
      [ map2 (fun a v -> `Write (a, v)) addr (map Int64.of_int int);
        map (fun a -> `Read a) addr ]
    |> fun g -> pair g width
  in
  QCheck.Test.make ~name:"addr_space matches a flat reference model" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) (make op_gen))
    (fun ops ->
      let m = Addr_space.create () in
      Addr_space.map m ~addr:0L ~len:0x10000;
      let reference = Bytes.make 0x10000 '\000' in
      let ref_read a w =
        let acc = ref 0L in
        for i = w - 1 downto 0 do
          let idx = (Int64.to_int a + i) land 0xffff in
          acc :=
            Int64.logor
              (Int64.shift_left !acc 8)
              (Int64.of_int (Char.code (Bytes.get reference idx)))
        done;
        !acc
      in
      List.for_all
        (fun (op, w) ->
          match op with
          | `Write (a, v) when Int64.to_int a + w <= 0x10000 ->
              Addr_space.write m a w v;
              for i = 0 to w - 1 do
                Bytes.set reference
                  (Int64.to_int a + i)
                  (Char.chr
                     (Int64.to_int
                        (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
              done;
              true
          | `Write _ -> true
          | `Read a when Int64.to_int a + w <= 0x10000 ->
              Addr_space.read m a w = ref_read a w
          | `Read _ -> true)
        ops)

(* --- context -------------------------------------------------------------- *)

let test_context_roundtrip () =
  let c = Context.create () in
  Context.set c Reg.RAX 42L;
  Context.set c Reg.R15 (-1L);
  c.Context.rip <- 0xdeadL;
  c.Context.fs_base <- 0x1000L;
  c.Context.flags.Reg.zf <- true;
  Context.set_xmm_lane c 7 1 0x1234L;
  let c' = Context.of_bytes (Context.to_bytes c) in
  Alcotest.(check bool) "equal" true (Context.equal c c')

let test_xsave_roundtrip () =
  let c = Context.create () in
  Context.set_xmm_lane c 0 0 111L;
  Context.set_xmm_lane c 15 1 222L;
  let img = Context.xsave c in
  let c2 = Context.create () in
  Context.xrstor c2 img;
  Alcotest.check Tutil.i64 "lane 0" 111L (Context.xmm_lane c2 0 0);
  Alcotest.check Tutil.i64 "lane 31" 222L (Context.xmm_lane c2 15 1);
  Alcotest.check_raises "short image" (Invalid_argument "Context.xrstor: short image")
    (fun () -> Context.xrstor c2 (Bytes.create 3))

let test_context_copy_isolated () =
  let c = Context.create () in
  Context.set c Reg.RBX 7L;
  let c' = Context.copy c in
  Context.set c Reg.RBX 8L;
  Alcotest.check Tutil.i64 "copy keeps value" 7L (Context.get c' Reg.RBX)

(* --- cache ---------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Cache.create (Cache.config ~size_bytes:1024 ~ways:2 ~line_bytes:64) in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0L);
  Alcotest.(check bool) "hit" true (Cache.access c 8L);
  Alcotest.(check int) "stats" 1 (Cache.hits c);
  Alcotest.(check int) "stats" 1 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 2 ways, 8 sets; three lines mapping to set 0 evict the oldest. *)
  let c = Cache.create (Cache.config ~size_bytes:1024 ~ways:2 ~line_bytes:64) in
  let line n = Int64.of_int (n * 512) in
  ignore (Cache.access c (line 0));
  ignore (Cache.access c (line 1));
  ignore (Cache.access c (line 0));
  (* line 1 is now LRU *)
  ignore (Cache.access c (line 2));
  Alcotest.(check bool) "line0 kept" true (Cache.access c (line 0));
  Alcotest.(check bool) "line1 evicted" false (Cache.access c (line 1))

let test_cache_footprint_and_flush () =
  let c = Cache.create (Cache.config ~size_bytes:1024 ~ways:2 ~line_bytes:64) in
  ignore (Cache.access c 0L);
  ignore (Cache.access c 64L);
  ignore (Cache.access c 0L);
  Alcotest.(check int) "distinct lines" 2 (Cache.footprint_lines c);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.access c 0L)

let test_timing_predictor_learns () =
  let t = Timing.create Timing.default in
  (* Always-taken branch: after training, no penalty. *)
  ignore (Timing.branch_cost t ~pc:0x40L ~taken:true);
  ignore (Timing.branch_cost t ~pc:0x40L ~taken:true);
  Alcotest.(check int) "trained" 0 (Timing.branch_cost t ~pc:0x40L ~taken:true);
  Alcotest.(check bool) "surprise costs" true
    (Timing.branch_cost t ~pc:0x40L ~taken:false > 0)

(* --- machine semantics ----------------------------------------------------- *)

(* Execute a list of instructions in a bare machine and return the thread. *)
let exec instructions =
  let b = Builder.create () in
  List.iter (Builder.ins b) instructions;
  Builder.ins b Hlt;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 100; quantum_max = 100 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:8192;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  Context.set ctx Reg.RSP 0x9000L;
  let tid = Machine.add_thread m ctx in
  for _ = 1 to List.length instructions do
    if (Machine.thread m tid).Machine.state = Machine.Runnable then
      Machine.step m tid
  done;
  Machine.thread m tid

let check_reg th r expected =
  Alcotest.check Tutil.i64 (Reg.gpr_name r) expected (Context.get th.Machine.ctx r)

let test_alu_add_flags () =
  let th = exec [ Mov_ri (Reg.RAX, Int64.max_int); Alu_ri (Add, Reg.RAX, 1L) ] in
  check_reg th Reg.RAX Int64.min_int;
  Alcotest.(check bool) "of set" true th.Machine.ctx.Context.flags.Reg.ovf;
  Alcotest.(check bool) "sf set" true th.Machine.ctx.Context.flags.Reg.sf

let test_alu_sub_borrow () =
  let th = exec [ Mov_ri (Reg.RBX, 1L); Alu_ri (Sub, Reg.RBX, 2L) ] in
  check_reg th Reg.RBX (-1L);
  Alcotest.(check bool) "cf (borrow)" true th.Machine.ctx.Context.flags.Reg.cf

let test_cmp_does_not_write () =
  let th = exec [ Mov_ri (Reg.RCX, 5L); Alu_ri (Cmp, Reg.RCX, 5L) ] in
  check_reg th Reg.RCX 5L;
  Alcotest.(check bool) "zf" true th.Machine.ctx.Context.flags.Reg.zf

let test_shifts () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, -8L); Shift_ri (Sar, Reg.RAX, 1);
        Mov_ri (Reg.RBX, -8L); Shift_ri (Shr, Reg.RBX, 1);
        Mov_ri (Reg.RCX, 3L); Shift_ri (Shl, Reg.RCX, 2) ]
  in
  check_reg th Reg.RAX (-4L);
  check_reg th Reg.RBX 0x7FFFFFFFFFFFFFFCL;
  check_reg th Reg.RCX 12L

let test_load_store_widths () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, 0x1122334455667788L);
        Store (W64, mem_abs 0x8000L, Reg.RAX);
        Load (W8, Reg.RBX, mem_abs 0x8000L);
        Load (W16, Reg.RCX, mem_abs 0x8000L);
        Load (W32, Reg.RDX, mem_abs 0x8000L);
        Mov_ri (Reg.RSI, 0xffffffffffffffffL);
        Store (W8, mem_abs 0x8010L, Reg.RSI);
        Load (W64, Reg.RDI, mem_abs 0x8010L) ]
  in
  check_reg th Reg.RBX 0x88L;
  check_reg th Reg.RCX 0x7788L;
  check_reg th Reg.RDX 0x55667788L;
  check_reg th Reg.RDI 0xffL

let test_lea_effective_address () =
  let th =
    exec
      [ Mov_ri (Reg.RBX, 0x100L); Mov_ri (Reg.RCX, 8L);
        Lea (Reg.RAX, { base = Some Reg.RBX; index = Some Reg.RCX; scale = 4; disp = 2L }) ]
  in
  check_reg th Reg.RAX 0x122L

let test_push_pop () =
  let th = exec [ Mov_ri (Reg.RAX, 99L); Push Reg.RAX; Mov_ri (Reg.RAX, 0L); Pop Reg.RBX ] in
  check_reg th Reg.RBX 99L;
  check_reg th Reg.RSP 0x9000L

let test_jcc_taken_and_not () =
  let b = Builder.create () in
  Builder.ins b (Mov_ri (Reg.RAX, 1L));
  Builder.ins b (Alu_ri (Cmp, Reg.RAX, 1L));
  let skip = Builder.new_label b in
  Builder.jcc b Eq skip;
  Builder.ins b (Mov_ri (Reg.RBX, 111L));
  Builder.bind b skip;
  Builder.ins b (Mov_ri (Reg.RCX, 222L));
  Builder.ins b Hlt;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  let tid = Machine.add_thread m ctx in
  Machine.run m;
  let th = Machine.thread m tid in
  check_reg th Reg.RBX 0L;
  check_reg th Reg.RCX 222L

let test_call_ret () =
  let b = Builder.create () in
  let f = Builder.new_label b in
  Builder.call b f;
  Builder.ins b (Mov_ri (Reg.RBX, 2L));
  Builder.ins b Hlt;
  Builder.bind b f;
  Builder.ins b (Mov_ri (Reg.RAX, 1L));
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:4096;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  Context.set ctx Reg.RSP 0x9000L;
  let tid = Machine.add_thread m ctx in
  Machine.run m;
  let th = Machine.thread m tid in
  check_reg th Reg.RAX 1L;
  check_reg th Reg.RBX 2L;
  check_reg th Reg.RSP 0x9000L

let test_cmpxchg_success_failure () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, 0L); Mov_ri (Reg.RBX, 7L);
        Cmpxchg (mem_abs 0x8000L, Reg.RBX);  (* [0]=0=rax -> store 7, zf *)
        Mov_ri (Reg.RAX, 5L);
        Cmpxchg (mem_abs 0x8000L, Reg.RBX);  (* [7]<>5 -> rax:=7, !zf *)
        Load (W64, Reg.RCX, mem_abs 0x8000L) ]
  in
  check_reg th Reg.RAX 7L;
  check_reg th Reg.RCX 7L;
  Alcotest.(check bool) "zf clear after failure" false
    th.Machine.ctx.Context.flags.Reg.zf

let test_xchg () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, 1L); Store (W64, mem_abs 0x8000L, Reg.RAX);
        Mov_ri (Reg.RBX, 2L); Xchg (Reg.RBX, mem_abs 0x8000L) ]
  in
  check_reg th Reg.RBX 1L

let test_pushf_popf () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, 0L); Alu_ri (Cmp, Reg.RAX, 0L) (* zf *); Pushf;
        Alu_ri (Cmp, Reg.RAX, 1L) (* clears zf *); Popf ]
  in
  Alcotest.(check bool) "zf restored" true th.Machine.ctx.Context.flags.Reg.zf

let test_fs_gs_base () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, 0x7000L); Wrfsbase Reg.RAX; Mov_ri (Reg.RAX, 0L);
        Rdfsbase Reg.RBX ]
  in
  check_reg th Reg.RBX 0x7000L;
  Alcotest.check Tutil.i64 "fs base" 0x7000L th.Machine.ctx.Context.fs_base

let test_ldctx_stctx () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, Int64.bits_of_float 2.5);
        Store (W64, mem_abs 0x8100L, Reg.RAX);
        Store (W64, mem_abs 0x8108L, Reg.RAX);
        Mov_ri (Reg.RBX, 0x8100L); Vload (0, mem_base Reg.RBX);
        Mov_ri (Reg.RCX, 0x8200L); Stctx Reg.RCX;
        Vop_rr (Vadd, 0, 0) (* xmm0 doubles *); Ldctx Reg.RCX (* restore *) ]
  in
  Alcotest.check Tutil.i64 "xmm restored" (Int64.bits_of_float 2.5)
    (Context.xmm_lane th.Machine.ctx 0 0)

let test_vector_arith () =
  let th =
    exec
      [ Mov_ri (Reg.RAX, Int64.bits_of_float 3.0);
        Store (W64, mem_abs 0x8100L, Reg.RAX);
        Mov_ri (Reg.RAX, Int64.bits_of_float 4.0);
        Store (W64, mem_abs 0x8108L, Reg.RAX);
        Vload (1, mem_abs 0x8100L);
        Vop_rr (Vmul, 1, 1);
        Vstore (mem_abs 0x8110L, 1);
        Load (W64, Reg.RBX, mem_abs 0x8110L);
        Load (W64, Reg.RCX, mem_abs 0x8118L) ]
  in
  Alcotest.(check (float 1e-9)) "lane0 squared" 9.0
    (Int64.float_of_bits (Context.get th.Machine.ctx Reg.RBX));
  Alcotest.(check (float 1e-9)) "lane1 squared" 16.0
    (Int64.float_of_bits (Context.get th.Machine.ctx Reg.RCX))

(* Differential oracle: an independent, purely functional evaluator for
   straight-line register programs, checked against the interpreter. *)
module Oracle = struct
  type state = { regs : int64 array }

  let init () = { regs = Array.make 16 0L }
  let get s r = s.regs.(Reg.gpr_index r)

  let set s r v =
    let regs = Array.copy s.regs in
    regs.(Reg.gpr_index r) <- v;
    { regs }

  let eval s = function
    | Mov_ri (r, v) -> set s r v
    | Mov_rr (d, src) -> set s d (get s src)
    | Alu_rr (op, d, src) -> (
        let a = get s d and b = get s src in
        match op with
        | Add -> set s d (Int64.add a b)
        | Sub -> set s d (Int64.sub a b)
        | And -> set s d (Int64.logand a b)
        | Or -> set s d (Int64.logor a b)
        | Xor -> set s d (Int64.logxor a b)
        | Imul -> set s d (Int64.mul a b)
        | Cmp | Test -> s)
    | Alu_ri (op, d, b) -> (
        let a = get s d in
        match op with
        | Add -> set s d (Int64.add a b)
        | Sub -> set s d (Int64.sub a b)
        | And -> set s d (Int64.logand a b)
        | Or -> set s d (Int64.logor a b)
        | Xor -> set s d (Int64.logxor a b)
        | Imul -> set s d (Int64.mul a b)
        | Cmp | Test -> s)
    | Shift_ri (op, d, n) -> (
        let a = get s d in
        match op with
        | Shl -> set s d (Int64.shift_left a n)
        | Shr -> set s d (Int64.shift_right_logical a n)
        | Sar -> set s d (Int64.shift_right a n))
    | Neg d -> set s d (Int64.neg (get s d))
    | _ -> s
end

let prop_interpreter_matches_oracle =
  let reg_gen = QCheck.Gen.map Reg.gpr_of_index (QCheck.Gen.int_range 0 15) in
  let reg_no_rsp =
    QCheck.Gen.map
      (fun r -> if r = Reg.RSP then Reg.RAX else r)
      reg_gen
  in
  let ins_gen =
    let open QCheck.Gen in
    let alu = oneofl [ Add; Sub; And; Or; Xor; Imul; Cmp; Test ] in
    oneof
      [
        map2 (fun r v -> Mov_ri (r, v)) reg_no_rsp (map Int64.of_int int);
        map2 (fun a b -> Mov_rr (a, b)) reg_no_rsp reg_no_rsp;
        map3 (fun op a b -> Alu_rr (op, a, b)) alu reg_no_rsp reg_no_rsp;
        map3
          (fun op r v -> Alu_ri (op, r, Int64.of_int v))
          alu reg_no_rsp
          (int_range (-0x8000_0000) 0x7fff_ffff);
        map3
          (fun op r n -> Shift_ri (op, r, n))
          (oneofl [ Shl; Shr; Sar ])
          reg_no_rsp (int_range 0 63);
        map (fun r -> Neg r) reg_no_rsp;
      ]
  in
  QCheck.Test.make ~name:"interpreter matches functional oracle" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 40) ins_gen)
       ~print:(fun l -> String.concat "; " (List.map Insn.to_string l)))
    (fun instructions ->
      let th = exec instructions in
      let expected =
        List.fold_left Oracle.eval (Oracle.init ()) instructions
      in
      List.for_all
        (fun r ->
          r = Reg.RSP
          || Context.get th.Machine.ctx r = Oracle.get expected r)
        Reg.all_gprs)

let test_faults () =
  let th = exec [ Mov_ri (Reg.RAX, 0xdead000L); Load (W64, Reg.RBX, mem_base Reg.RAX) ] in
  (match th.Machine.state with
  | Machine.Faulted (Machine.Page_fault { addr; _ }) ->
      Alcotest.check Tutil.i64 "fault addr" 0xdead000L addr
  | _ -> Alcotest.fail "expected page fault");
  let th = exec [ Ud2 ] in
  (match th.Machine.state with
  | Machine.Faulted (Machine.Invalid_opcode _) -> ()
  | _ -> Alcotest.fail "expected invalid opcode");
  let th = exec [ Hlt ] in
  match th.Machine.state with
  | Machine.Faulted (Machine.Privileged _) -> ()
  | _ -> Alcotest.fail "expected privileged fault"

let test_counter_graceful_exit () =
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  let tid = Machine.add_thread m ctx in
  Machine.arm_counter m tid ~target:1000L;
  Machine.run m;
  let th = Machine.thread m tid in
  Alcotest.(check bool) "fired" true th.Machine.counter_fired;
  Alcotest.check Tutil.i64 "exact" 1000L th.Machine.retired;
  Alcotest.(check bool) "exited 0" true (th.Machine.state = Machine.Exited 0)

let test_mark_snapshot () =
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  let tid = Machine.add_thread m ctx in
  Machine.arm_mark m tid ~target:100L;
  Machine.arm_counter m tid ~target:300L;
  Machine.run m;
  let th = Machine.thread m tid in
  Alcotest.(check (option Tutil.i64)) "mark at 100" (Some 100L) th.Machine.mark_retired

let test_recorded_scheduler_exact () =
  (* Two infinite-loop threads driven by an explicit schedule. *)
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Recorded [ (0, 5); (1, 3); (0, 2) ]) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  let mk () =
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    ignore (Machine.add_thread m ctx)
  in
  mk ();
  mk ();
  Machine.run m;
  Alcotest.check Tutil.i64 "thread 0" 7L (Machine.thread m 0).Machine.retired;
  Alcotest.check Tutil.i64 "thread 1" 3L (Machine.thread m 1).Machine.retired

let test_schedule_recording_roundtrip () =
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 3L; quantum_min = 5; quantum_max = 20 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  for _ = 1 to 2 do
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    ignore (Machine.add_thread m ctx)
  done;
  Machine.set_record_schedule m true;
  Machine.run ~max_ins:500L m;
  let sched = Machine.recorded_schedule m in
  let total = List.fold_left (fun a (_, n) -> a + n) 0 sched in
  Alcotest.(check int) "schedule covers run" 500 total;
  (* Replaying the schedule reproduces per-thread counts. *)
  let m2 = Machine.create (Machine.Recorded sched) in
  Addr_space.store (Machine.mem m2) 0x1000L prog.Builder.code;
  for _ = 1 to 2 do
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    ignore (Machine.add_thread m2 ctx)
  done;
  Machine.run m2;
  Alcotest.check Tutil.i64 "t0 match" (Machine.thread m 0).Machine.retired
    (Machine.thread m2 0).Machine.retired

let test_max_ins_stops_exactly () =
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 64; quantum_max = 64 }) in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  ignore (Machine.add_thread m ctx);
  Machine.run ~max_ins:333L m;
  Alcotest.check Tutil.i64 "exact stop" 333L (Machine.total_retired m)

let test_ring0_accounting () =
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  let ctx = Context.create () in
  let tid = Machine.add_thread m ctx in
  Machine.charge_ring0 m tid ~instructions:123 ~cycles:456;
  Alcotest.check Tutil.i64 "ring0 instructions" 123L (Machine.ring0_retired m);
  Alcotest.check Tutil.i64 "cycles charged to thread" 456L
    (Machine.thread m tid).Machine.cycles;
  Alcotest.check Tutil.i64 "user retired untouched" 0L (Machine.total_retired m)

let test_elapsed_cycles_is_max () =
  let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 }) in
  let t0 = Machine.add_thread m (Context.create ()) in
  let t1 = Machine.add_thread m (Context.create ()) in
  Machine.charge_ring0 m t0 ~instructions:0 ~cycles:100;
  Machine.charge_ring0 m t1 ~instructions:0 ~cycles:250;
  Alcotest.check Tutil.i64 "wall clock is the max core" 250L (Machine.elapsed_cycles m)

let test_timer_charges_cycles () =
  let b = Builder.create () in
  let loop = Builder.here b in
  Builder.ins b Nop;
  Builder.jmp b loop;
  let prog = Builder.assemble b ~base:0x1000L in
  let run seed =
    let m = Machine.create (Machine.Free { seed = 1L; quantum_min = 64; quantum_max = 64 }) in
    Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    ignore (Machine.add_thread m ctx);
    Machine.set_timer m ~interval:100 ~cycles:50 ~seed;
    Machine.run ~max_ins:10_000L m;
    Machine.elapsed_cycles m
  in
  let a = run 1L and b' = run 2L in
  Alcotest.(check bool) "seeds differ" true (a <> b');
  Alcotest.(check bool) "charged" true (a > 10_000L)

let suite =
  [
    Alcotest.test_case "addr_space map/rw" `Quick test_as_map_rw;
    Alcotest.test_case "addr_space cross-page" `Quick test_as_cross_page;
    Alcotest.test_case "addr_space fault" `Quick test_as_fault;
    Alcotest.test_case "addr_space unmap" `Quick test_as_unmap;
    Alcotest.test_case "addr_space store/pages" `Quick test_as_store_and_pages;
    Alcotest.test_case "addr_space copy isolation" `Quick test_as_copy_isolated;
    Alcotest.test_case "addr_space read_avail truncates" `Quick test_as_read_avail';
    Alcotest.test_case "addr_space generation" `Quick test_as_generation;
    QCheck_alcotest.to_alcotest prop_addr_space_model;
    QCheck_alcotest.to_alcotest prop_interpreter_matches_oracle;
    Alcotest.test_case "context serialize roundtrip" `Quick test_context_roundtrip;
    Alcotest.test_case "xsave/xrstor roundtrip" `Quick test_xsave_roundtrip;
    Alcotest.test_case "context copy isolation" `Quick test_context_copy_isolated;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache footprint/flush" `Quick test_cache_footprint_and_flush;
    Alcotest.test_case "branch predictor learns" `Quick test_timing_predictor_learns;
    Alcotest.test_case "add overflow flags" `Quick test_alu_add_flags;
    Alcotest.test_case "sub borrow" `Quick test_alu_sub_borrow;
    Alcotest.test_case "cmp does not write" `Quick test_cmp_does_not_write;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "load/store widths" `Quick test_load_store_widths;
    Alcotest.test_case "lea effective address" `Quick test_lea_effective_address;
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "jcc taken/not-taken" `Quick test_jcc_taken_and_not;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "cmpxchg" `Quick test_cmpxchg_success_failure;
    Alcotest.test_case "xchg" `Quick test_xchg;
    Alcotest.test_case "pushf/popf" `Quick test_pushf_popf;
    Alcotest.test_case "fs/gs base" `Quick test_fs_gs_base;
    Alcotest.test_case "ldctx/stctx" `Quick test_ldctx_stctx;
    Alcotest.test_case "vector arithmetic" `Quick test_vector_arith;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "counter graceful exit" `Quick test_counter_graceful_exit;
    Alcotest.test_case "mark snapshot" `Quick test_mark_snapshot;
    Alcotest.test_case "recorded scheduler exact" `Quick test_recorded_scheduler_exact;
    Alcotest.test_case "schedule record/replay" `Quick test_schedule_recording_roundtrip;
    Alcotest.test_case "max_ins stops exactly" `Quick test_max_ins_stops_exactly;
    Alcotest.test_case "timer interrupts" `Quick test_timer_charges_cycles;
    Alcotest.test_case "ring0 accounting" `Quick test_ring0_accounting;
    Alcotest.test_case "elapsed cycles is per-core max" `Quick
      test_elapsed_cycles_is_max;
  ]
