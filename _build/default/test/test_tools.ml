(* Tests for the Vpin analysis-tool library. *)

module Tools = Elfie_pin.Tools

let run_with tool =
  let machine, _ = Elfie_pin.Run.instantiate (Tutil.tiny_run_spec "tools") in
  let detach = Elfie_pin.Pintool.attach machine [ tool ] in
  Elfie_machine.Machine.run machine;
  detach ();
  machine

let test_instruction_mix_totals () =
  let a = Tools.instruction_mix () in
  let machine = run_with a.Tools.tool in
  let m = a.Tools.result () in
  Alcotest.check Tutil.i64 "total equals retired"
    (Elfie_machine.Machine.total_retired machine)
    m.Tools.mix_total;
  let sum = List.fold_left (fun acc (_, n) -> Int64.add acc n) 0L m.Tools.mix_classes in
  Alcotest.check Tutil.i64 "classes sum to total" m.Tools.mix_total sum;
  Alcotest.(check bool) "has branches" true
    (List.mem_assoc "branch" m.Tools.mix_classes)

let test_mix_limit () =
  let a = Tools.instruction_mix ~limit:5_000L () in
  let _ = run_with a.Tools.tool in
  Alcotest.check Tutil.i64 "stops at limit" 5_000L (a.Tools.result ()).Tools.mix_total

let test_footprint_covers_working_set () =
  let a = Tools.memory_footprint () in
  let _ = run_with a.Tools.tool in
  let f = a.Tools.result () in
  (* 32 KiB working set = 8 pages (plus stack/scratch pages). *)
  Alcotest.(check bool) "at least the buffer pages" true (f.Tools.fp_pages >= 8);
  Alcotest.(check bool) "lines >= pages" true (f.Tools.fp_lines >= f.Tools.fp_pages);
  Alcotest.(check bool) "bytes >= accesses" true
    (f.Tools.fp_bytes_read >= f.Tools.fp_reads)

let test_branch_profile_rates () =
  let a = Tools.branch_profile () in
  let _ = run_with a.Tools.tool in
  let b = a.Tools.result () in
  Alcotest.(check bool) "taken <= executed" true (b.Tools.br_taken <= b.Tools.br_executed);
  Alcotest.(check bool) "hottest nonempty" true (b.Tools.br_hottest <> []);
  Alcotest.(check bool) "top ten at most" true (List.length b.Tools.br_hottest <= 10)

let test_block_profile () =
  let a = Tools.block_profile () in
  let _ = run_with a.Tools.tool in
  let b = a.Tools.result () in
  Alcotest.(check bool) "several blocks" true (b.Tools.bb_blocks > 5);
  match b.Tools.bb_hottest with
  | (_, hottest) :: _ ->
      (* The hottest block is a kernel inner loop: thousands of runs. *)
      Alcotest.(check bool) "hot block is hot" true (hottest > 1000)
  | [] -> Alcotest.fail "no blocks"

let test_from_marker_gating () =
  (* Attached to an ELFie, a marker-gated tool must count only the
     embedded region (plus its small post-arm epilogue), never the much
     larger startup stack-copy code. *)
  let pb = Tutil.tiny_pinball "toolgate" in
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        { Elfie_core.Pinball2elf.default_options with
          marker = Some (Elfie_core.Pinball2elf.Ssc 9L) }
      pb
  in
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 3L; quantum_min = 50; quantum_max = 50 })
  in
  let kernel = Elfie_kernel.Vkernel.create (Elfie_kernel.Fs.create ()) in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "e" ] ~env:[] in
  let a = Tools.instruction_mix ~from_marker:true () in
  let detach = Elfie_pin.Pintool.attach machine [ a.Tools.tool ] in
  Elfie_machine.Machine.run ~max_ins:10_000_000L machine;
  detach ();
  let m = a.Tools.result () in
  let region = Elfie_pinball.Pinball.total_icount pb in
  Alcotest.(check bool) "counts region only" true
    (Int64.abs (Int64.sub m.Tools.mix_total region) < 16L)

let suite =
  [
    Alcotest.test_case "instruction mix totals" `Quick test_instruction_mix_totals;
    Alcotest.test_case "mix limit" `Quick test_mix_limit;
    Alcotest.test_case "footprint covers working set" `Quick
      test_footprint_covers_working_set;
    Alcotest.test_case "branch profile rates" `Quick test_branch_profile_rates;
    Alcotest.test_case "block profile" `Quick test_block_profile;
    Alcotest.test_case "marker gating on ELFies" `Quick test_from_marker_gating;
  ]
