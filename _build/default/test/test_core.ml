(* Tests for pinball2elf and native ELFie execution — the paper's core
   contribution: conversion structure, graceful exit, SYSSTATE, stack
   collision, markers, monitor thread, object mode. *)

open Elfie_core
module Pinball = Elfie_pinball.Pinball
module Image = Elfie_elf.Image

let convert ?options pb = Pinball2elf.convert ?options pb

let run_elfie ?(seed = 11L) ?(sysstate : Elfie_pin.Sysstate.t option) ?max_ins image =
  let fs_init fs =
    match sysstate with
    | Some ss -> Elfie_pin.Sysstate.install ss fs ~workdir:"/work"
    | None -> ()
  in
  Elfie_runner.run ~seed ~fs_init ~cwd:"/work" ?max_ins image

let test_structure () =
  let pb = Tutil.tiny_pinball "structure" in
  let image = convert pb in
  Alcotest.(check bool) "executable" true image.Image.exec;
  Alcotest.(check bool) "has startup text" true
    (Image.find_section image ".elfie.text" <> None);
  Alcotest.(check bool) "has startup data" true
    (Image.find_section image ".elfie.data" <> None);
  Alcotest.(check bool) "has pinball sections" true
    (List.exists
       (fun (s : Image.section) ->
         String.length s.name > 4 && String.sub s.name 0 4 = ".pb.")
       image.Image.sections);
  Alcotest.(check (option Tutil.i64)) "entry is _start"
    (Some image.Image.entry)
    (Image.find_symbol image "_start");
  (* Startup must not overlap any pinball page. *)
  let startup = Option.get (Image.find_section image ".elfie.text") in
  List.iter
    (fun (s : Image.section) ->
      if String.length s.name > 4 && String.sub s.name 0 4 = ".pb." then begin
        let s_end = Int64.add s.addr (Int64.of_int (Bytes.length s.data)) in
        let t_end =
          Int64.add startup.addr (Int64.of_int (Bytes.length startup.data))
        in
        Alcotest.(check bool) "no overlap" true
          (Int64.unsigned_compare t_end s.addr <= 0
          || Int64.unsigned_compare s_end startup.addr <= 0)
      end)
    image.Image.sections

let test_register_symbols () =
  let pb = Tutil.tiny_pinball "symbols" in
  let image = convert pb in
  let ctx = pb.Pinball.contexts.(0) in
  Alcotest.(check bool) "has .t0.rip slot" true
    (Image.find_symbol image ".t0.rip" <> None);
  (* The .t0.<reg> data quad holds the checkpointed register value. *)
  let check_quad name expected =
    match Image.find_symbol image name with
    | None -> Alcotest.failf "missing symbol %s" name
    | Some addr ->
        let sec = Option.get (Image.find_section image ".elfie.data") in
        let off = Int64.to_int (Int64.sub addr sec.Image.addr) in
        Alcotest.check Tutil.i64 name expected (Bytes.get_int64_le sec.Image.data off)
  in
  check_quad ".t0.rax" (Elfie_machine.Context.get ctx Elfie_isa.Reg.RAX);
  check_quad ".t0.rcx" (Elfie_machine.Context.get ctx Elfie_isa.Reg.RCX);
  check_quad ".t0.rip" ctx.Elfie_machine.Context.rip;
  check_quad ".t0.fs_base" ctx.Elfie_machine.Context.fs_base

let test_stack_sections_non_alloc () =
  let pb = Tutil.tiny_pinball "nonalloc" in
  let image = convert pb in
  let stack_sections =
    List.filter
      (fun (s : Image.section) ->
        String.length s.name > 7 && String.sub s.name 0 7 = ".stack.")
      image.Image.sections
  in
  Alcotest.(check bool) "has stack sections" true (stack_sections <> []);
  List.iter
    (fun (s : Image.section) ->
      Alcotest.(check bool) (s.name ^ " non-alloc") false s.alloc)
    stack_sections

let test_elfie_runs_gracefully_exact () =
  let pb = Tutil.tiny_pinball ~file_io:true ~time_calls:true "graceful" in
  let ss = Elfie_pin.Sysstate.analyze pb in
  let options = { Pinball2elf.default_options with sysstate = Some ss } in
  let image = convert ~options pb in
  let o = run_elfie ~sysstate:ss image in
  Alcotest.(check (option string)) "no load error" None o.Elfie_runner.load_error;
  Alcotest.(check (option string)) "no fault" None o.Elfie_runner.fault;
  Alcotest.(check bool) "graceful" true o.Elfie_runner.graceful;
  (* app_retired = region icount + the 5-instruction post-arm epilogue. *)
  Alcotest.check Tutil.i64 "exact region length"
    (Int64.add (Pinball.total_icount pb) 5L)
    o.Elfie_runner.app_retired

let test_elfie_byte_roundtrip_runs () =
  (* Serialize the ELFie to real ELF bytes, parse, and run the result. *)
  let pb = Tutil.tiny_pinball "bytes" in
  let image = convert pb in
  let image' = Image.read (Image.write image) in
  let o = run_elfie image' in
  Alcotest.(check bool) "graceful after write/read" true o.Elfie_runner.graceful

let test_elfie_same_memory_layout () =
  (* Every pinball page address appears as a section at the same
     address (the "same memory layout as the original pinball" property). *)
  let pb = Tutil.tiny_pinball "layout" in
  let image = convert pb in
  let covered addr =
    List.exists
      (fun (s : Image.section) ->
        s.addr <= addr
        && Int64.add s.addr (Int64.of_int (Bytes.length s.data)) > addr)
      image.Image.sections
  in
  List.iter (fun (addr, _) -> Alcotest.(check bool) "page covered" true (covered addr))
    pb.Pinball.pages

let test_marker_present () =
  let pb = Tutil.tiny_pinball "marker" in
  let options =
    { Pinball2elf.default_options with marker = Some (Pinball2elf.Ssc 0xbeefL) }
  in
  let image = convert ~options pb in
  (* Run and observe the marker firing before app code. *)
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 3L; quantum_min = 50; quantum_max = 50 })
  in
  let kernel = Elfie_kernel.Vkernel.create (Elfie_kernel.Fs.create ()) in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "e" ] ~env:[] in
  let seen = ref None in
  (Elfie_machine.Machine.hooks machine).on_marker <-
    Some (fun _ ins -> if !seen = None then seen := Some ins);
  Elfie_machine.Machine.run ~max_ins:2_000_000L machine;
  match !seen with
  | Some (Elfie_isa.Insn.Ssc_marker 0xbeefL) -> ()
  | _ -> Alcotest.fail "SSC marker not observed"

let test_stack_collision_modes () =
  let pb = Tutil.tiny_pinball "collide" in
  (* Non-allocatable stack sections (the fix): loads under every seed. *)
  let fixed = convert pb in
  for seed = 1 to 10 do
    let o = run_elfie ~seed:(Int64.of_int seed) fixed in
    Alcotest.(check (option string)) "fix always loads" None o.Elfie_runner.load_error
  done;
  (* Allocatable stack sections (the bug): some seeds die at load. *)
  let buggy =
    convert ~options:{ Pinball2elf.default_options with alloc_stack_sections = true } pb
  in
  let failures = ref 0 in
  for seed = 1 to 30 do
    let o = run_elfie ~seed:(Int64.of_int seed) buggy in
    if o.Elfie_runner.load_error <> None then incr failures
  done;
  Alcotest.(check bool)
    (Printf.sprintf "collisions occur (%d/30)" !failures)
    true (!failures > 0)

let test_sysstate_required_for_file_region () =
  let pb = Tutil.tiny_pinball ~file_io:true "needss" in
  let ss = Elfie_pin.Sysstate.analyze pb in
  let options = { Pinball2elf.default_options with sysstate = Some ss } in
  let image = convert ~options pb in
  (* With sysstate installed the run is graceful. *)
  let ok = run_elfie ~sysstate:ss image in
  Alcotest.(check bool) "with proxies" true ok.Elfie_runner.graceful;
  (* The FD_n path: the proxy really is read through descriptor 3. *)
  Alcotest.(check bool) "proxy exists" true
    (List.mem_assoc "FD_3" ss.Elfie_pin.Sysstate.files)

let test_monitor_thread () =
  let pb = Tutil.tiny_pinball "monitor" in
  let options = { Pinball2elf.default_options with monitor_thread = true } in
  let image = convert ~options pb in
  Alcotest.(check bool) "has elfie_on_exit" true
    (Image.find_symbol image "elfie_on_exit" <> None);
  let o = run_elfie ~max_ins:2_000_000L image in
  Alcotest.(check string) "exit callback output" "ELFIE-EXIT\n" o.Elfie_runner.stdout

let test_object_only () =
  let pb = Tutil.tiny_pinball "object" in
  let image =
    convert ~options:{ Pinball2elf.default_options with object_only = true } pb
  in
  Alcotest.(check bool) "relocatable" false image.Image.exec;
  Alcotest.(check bool) "has register dump" true
    (Image.find_section image ".elfie.regs" <> None);
  (* Byte-serialize as ET_REL and read back. *)
  let image' = Image.read (Image.write image) in
  Alcotest.(check bool) "rel roundtrip" false image'.Image.exec

let test_warmup_mark () =
  let pb = Tutil.tiny_pinball ~start:20_000L ~length:30_000L "warm" in
  let options = { Pinball2elf.default_options with warmup_mark = Some 10_000L } in
  let image = convert ~options pb in
  let o = run_elfie image in
  Alcotest.(check bool) "graceful" true o.Elfie_runner.graceful;
  Alcotest.(check bool) "slice cpi differs from region cpi" true
    (o.Elfie_runner.slice_cpi > 0.0)

let test_mt_elfie () =
  let pb =
    Tutil.tiny_pinball ~threads:4 ~start:60_000L ~length:80_000L "mt"
  in
  Alcotest.(check int) "four threads captured" 4 (Pinball.num_threads pb);
  let image = convert pb in
  let o = run_elfie ~max_ins:5_000_000L image in
  Alcotest.(check int) "four threads in elfie" 4 o.Elfie_runner.threads;
  Alcotest.(check (option string)) "no fault" None o.Elfie_runner.fault;
  Alcotest.(check bool) "all counters fired" true o.Elfie_runner.graceful

let test_mt_elfie_nondeterministic_runtime () =
  let pb = Tutil.tiny_pinball ~threads:4 ~start:60_000L ~length:80_000L "mtnd" in
  let image = convert pb in
  let o1 = run_elfie ~seed:1L ~max_ins:5_000_000L image in
  let o2 = run_elfie ~seed:2L ~max_ins:5_000_000L image in
  (* Interleaving differs across seeds, so region timing differs — the
     paper's run-to-run non-determinism of ELFies. (Retired counts are
     pinned by the per-thread exit counters.) *)
  Alcotest.(check bool) "run-to-run timing variation" true
    (o1.Elfie_runner.app_cycles <> o2.Elfie_runner.app_cycles)

let test_divergence_faults_cleanly () =
  (* A lean pinball misses pages the region never touched; running an
     ELFie built from it with counters disabled overruns the region and
     must die with a page fault, not a crash of the host. *)
  let rs = Tutil.tiny_run_spec "diverge" in
  let r =
    Elfie_pin.Logger.capture ~fat:false rs ~name:"lean"
      { Elfie_pin.Logger.start = 20_000L; length = 1_000L }
  in
  let options = { Pinball2elf.default_options with arm_counters = false } in
  let image = convert ~options r.Elfie_pin.Logger.pinball in
  let o = run_elfie ~max_ins:10_000_000L image in
  Alcotest.(check bool) "not graceful" false o.Elfie_runner.graceful

let test_context_listing_is_valid_asm () =
  (* The dumped context listing must itself assemble, and its register
     quads must hold the checkpointed values. *)
  let pb = Tutil.tiny_pinball "ctxdump" in
  let listing = Pinball2elf.context_listing pb in
  match Elfie_asm.Asm.assemble ~base:0L listing with
  | Error e -> Alcotest.failf "listing does not assemble: %s"
                 (Format.asprintf "%a" Elfie_asm.Asm.pp_error e)
  | Ok prog ->
      Alcotest.(check bool) "nonempty" true (Bytes.length prog.code > 0);
      (* Last two quads of thread 0's block are rsp and rip. *)
      let ctx = pb.Pinball.contexts.(0) in
      let n = Bytes.length prog.code in
      Alcotest.check Tutil.i64 "rip quad" ctx.Elfie_machine.Context.rip
        (Bytes.get_int64_le prog.code (n - 8));
      Alcotest.check Tutil.i64 "rsp quad"
        (Elfie_machine.Context.get ctx Elfie_isa.Reg.RSP)
        (Bytes.get_int64_le prog.code (n - 16))

let test_symbol_passthrough () =
  (* Application symbols travel pinball -> ELFie, at unchanged addresses
     (the ELFie preserves the parent's memory layout). *)
  let spec = Tutil.tiny_spec "syms" in
  let app_image = Elfie_workloads.Programs.image spec in
  let pb = Tutil.tiny_pinball "syms" in
  let elfie = convert pb in
  List.iter
    (fun name ->
      Alcotest.(check (option Tutil.i64))
        ("symbol " ^ name)
        (Image.find_symbol app_image name)
        (Image.find_symbol elfie name))
    (* the app's own "_start" is shadowed by the ELFie startup symbol *)
    [ "worker"; "outer_loop" ]

let test_extra_on_start_callback () =
  (* The -p switch: user code linked into elfie_on_start. Ours writes a
     banner to stdout before any application code runs. *)
  let pb = Tutil.tiny_pinball "cbstart" in
  let banner = "CB\n" in
  let extra b =
    let open Elfie_isa in
    let msg = Builder.new_label b in
    let after = Builder.new_label b in
    Builder.ins b (Insn.Mov_ri (Reg.RDI, 1L));
    Builder.mov_label b Reg.RSI msg;
    Builder.ins b (Insn.Mov_ri (Reg.RDX, Int64.of_int (String.length banner)));
    Builder.ins b (Insn.Mov_ri (Reg.RAX, Int64.of_int Elfie_kernel.Abi.sys_write));
    Builder.ins b Insn.Syscall;
    Builder.jmp b after;
    Builder.bind b msg;
    Builder.raw b (Bytes.of_string banner);
    Builder.bind b after
  in
  let options =
    { Pinball2elf.default_options with extra_on_start = Some extra }
  in
  let o = run_elfie (convert ~options pb) in
  Alcotest.(check bool) "still graceful" true o.Elfie_runner.graceful;
  Alcotest.(check string) "banner written" banner o.Elfie_runner.stdout

let test_extra_on_thread_start_callback () =
  (* The -t switch: per-thread user code. Ours drops a recognisable
     marker; one per thread must fire before application code. *)
  let pb = Tutil.tiny_pinball ~threads:4 ~start:60_000L ~length:50_000L "cbthread" in
  let extra b = Elfie_isa.Builder.ins b (Elfie_isa.Insn.Ssc_marker 0x77L) in
  let options =
    { Pinball2elf.default_options with extra_on_thread_start = Some extra }
  in
  let image = convert ~options pb in
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 5L; quantum_min = 50; quantum_max = 50 })
  in
  let kernel = Elfie_kernel.Vkernel.create (Elfie_kernel.Fs.create ()) in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "e" ] ~env:[] in
  let hits = ref 0 in
  (Elfie_machine.Machine.hooks machine).on_marker <-
    Some (fun _ ins -> if ins = Elfie_isa.Insn.Ssc_marker 0x77L then incr hits);
  Elfie_machine.Machine.run ~max_ins:10_000_000L machine;
  Alcotest.(check int) "one marker per thread" 4 !hits

let test_extra_on_exit_callback () =
  (* The -e switch: user code in elfie_on_exit (implies the monitor). *)
  let pb = Tutil.tiny_pinball "cbexit" in
  let extra b = Elfie_isa.Builder.ins b (Elfie_isa.Insn.Ssc_marker 0x99L) in
  let options = { Pinball2elf.default_options with extra_on_exit = Some extra } in
  let image = convert ~options pb in
  Alcotest.(check bool) "monitor implied" true
    (Image.find_symbol image "elfie_on_exit" <> None);
  let o = run_elfie ~max_ins:5_000_000L image in
  Alcotest.(check string) "monitor reports" "ELFIE-EXIT\n" o.Elfie_runner.stdout

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_linker_script () =
  let pb = Tutil.tiny_pinball "ldscript" in
  let image = convert pb in
  let script = Pinball2elf.linker_script image in
  Alcotest.(check bool) "mentions startup" true (contains ~sub:".elfie.text" script);
  Alcotest.(check bool) "mentions non-loaded stack" true
    (contains ~sub:"not loaded" script)

let suite =
  [
    Alcotest.test_case "conversion structure" `Quick test_structure;
    Alcotest.test_case "register symbols" `Quick test_register_symbols;
    Alcotest.test_case "stack sections non-alloc" `Quick test_stack_sections_non_alloc;
    Alcotest.test_case "elfie graceful exact icount" `Quick
      test_elfie_runs_gracefully_exact;
    Alcotest.test_case "elfie byte roundtrip runs" `Quick test_elfie_byte_roundtrip_runs;
    Alcotest.test_case "same memory layout" `Quick test_elfie_same_memory_layout;
    Alcotest.test_case "ROI marker" `Quick test_marker_present;
    Alcotest.test_case "stack collision fix vs bug" `Quick test_stack_collision_modes;
    Alcotest.test_case "sysstate file region" `Quick test_sysstate_required_for_file_region;
    Alcotest.test_case "monitor thread / elfie_on_exit" `Quick test_monitor_thread;
    Alcotest.test_case "object-only mode" `Quick test_object_only;
    Alcotest.test_case "warmup mark" `Quick test_warmup_mark;
    Alcotest.test_case "multi-threaded elfie" `Quick test_mt_elfie;
    Alcotest.test_case "MT non-determinism" `Quick test_mt_elfie_nondeterministic_runtime;
    Alcotest.test_case "divergence faults cleanly" `Quick test_divergence_faults_cleanly;
    Alcotest.test_case "linker script" `Quick test_linker_script;
    Alcotest.test_case "context listing assembles" `Quick
      test_context_listing_is_valid_asm;
    Alcotest.test_case "application symbol pass-through" `Quick test_symbol_passthrough;
    Alcotest.test_case "extra elfie_on_start code" `Quick test_extra_on_start_callback;
    Alcotest.test_case "extra thread-start code" `Quick
      test_extra_on_thread_start_callback;
    Alcotest.test_case "extra elfie_on_exit code" `Quick test_extra_on_exit_callback;
  ]
