(* Tests for the Vpin layer: tool multiplexing, the logger, the
   replayer (constrained and injection-less), BBV profiling and the
   sysstate tool. *)

open Elfie_pin

(* --- pintool --------------------------------------------------------------- *)

let test_tool_chaining_and_detach () =
  let rs = Tutil.tiny_run_spec "chain" in
  let machine, _ = Run.instantiate rs in
  let t1, c1 = Pintool.instruction_counter () in
  let t2, c2 = Pintool.instruction_counter () in
  let detach = Pintool.attach machine [ t1; t2 ] in
  Elfie_machine.Machine.run ~max_ins:1_000L machine;
  Alcotest.check Tutil.i64 "both tools see all" (c1 ()) (c2 ());
  Alcotest.check Tutil.i64 "count" 1_000L (c1 ());
  detach ();
  Elfie_machine.Machine.run ~max_ins:2_000L machine;
  Alcotest.check Tutil.i64 "detached" 1_000L (c1 ())

(* --- run -------------------------------------------------------------------- *)

let test_native_run_clean () =
  let stats = Run.native (Tutil.tiny_run_spec ~file_io:true "native") in
  Alcotest.(check bool) "clean" true stats.Run.clean;
  Alcotest.(check string) "stdout" "done\n" stats.Run.stdout;
  Alcotest.(check bool) "cpi sane" true (stats.Run.cpi > 0.5 && stats.Run.cpi < 50.0)

let test_native_st_deterministic_retired () =
  let a = Run.native (Tutil.tiny_run_spec ~seed:1L "d1") in
  let b = Run.native (Tutil.tiny_run_spec ~seed:2L "d2") in
  Alcotest.check Tutil.i64 "ST icount independent of seed" a.Run.retired b.Run.retired

(* --- logger ---------------------------------------------------------------- *)

let test_capture_exact_region () =
  let pb = Tutil.tiny_pinball ~start:20_000L ~length:30_000L "exact" in
  Alcotest.check Tutil.i64 "region length" 30_000L
    (Elfie_pinball.Pinball.total_icount pb);
  Alcotest.(check int) "one thread" 1 (Elfie_pinball.Pinball.num_threads pb);
  Alcotest.(check bool) "fat" true pb.Elfie_pinball.Pinball.fat

let test_capture_deterministic () =
  (* Same program, same name (argv lives on the checkpointed stack),
     same seed: the checkpoint is bit-identical. *)
  let a = Tutil.tiny_pinball "cap" and b = Tutil.tiny_pinball "cap" in
  Alcotest.(check bool) "same checkpoint" true (Elfie_pinball.Pinball.equal a b)

let test_fat_vs_lean () =
  let rs = Tutil.tiny_run_spec "fatlean" in
  let region = { Logger.start = 20_000L; length = 5_000L } in
  let fat = (Logger.capture ~fat:true rs ~name:"fat" region).Logger.pinball in
  let lean = (Logger.capture ~fat:false rs ~name:"lean" region).Logger.pinball in
  Alcotest.(check bool) "lean has fewer pages" true
    (List.length lean.Elfie_pinball.Pinball.pages
    < List.length fat.Elfie_pinball.Pinball.pages);
  (* Lean pages are a subset of fat pages, with identical content. *)
  List.iter
    (fun (addr, data) ->
      match List.assoc_opt addr fat.Elfie_pinball.Pinball.pages with
      | Some fat_data -> Alcotest.(check bytes) "page content" fat_data data
      | None -> Alcotest.fail "lean page missing from fat image")
    lean.Elfie_pinball.Pinball.pages

let test_capture_past_end () =
  let rs = Tutil.tiny_run_spec "pastend" in
  match Logger.capture rs ~name:"x" { Logger.start = 100_000_000L; length = 1L } with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Logger.Unsupported _ -> ()

let test_capture_truncated_region () =
  let rs = Tutil.tiny_run_spec "trunc" in
  let r = Logger.capture rs ~name:"t" { Logger.start = 20_000L; length = 500_000L } in
  Alcotest.(check bool) "did not reach end" false r.Logger.reached_end

let test_capture_many_matches_single () =
  (* Batched multi-region capture must produce the same pinballs as
     independent captures, including for overlapping regions. *)
  let rs = Tutil.tiny_run_spec "many" in
  let r1 = { Logger.start = 20_000L; length = 15_000L } in
  let r2 = { Logger.start = 30_000L; length = 20_000L } (* overlaps r1 *) in
  let batch = Logger.capture_many rs [ ("a", r1); ("b", r2) ] in
  let single name r = (Logger.capture rs ~name r).Logger.pinball in
  List.iter
    (fun (name, r) ->
      let batched = (List.assoc name batch).Logger.pinball in
      Alcotest.(check bool)
        (name ^ " equals single capture")
        true
        (Elfie_pinball.Pinball.equal batched (single name r)))
    [ ("a", r1); ("b", r2) ];
  (* Batched pinballs replay exactly. *)
  List.iter
    (fun (name, result) ->
      let rep = Replayer.replay result.Logger.pinball in
      Alcotest.(check bool) (name ^ " replays") true rep.Replayer.matched_icounts)
    batch

let test_capture_many_skips_unreachable () =
  let rs = Tutil.tiny_run_spec "manyskip" in
  let batch =
    Logger.capture_many rs
      [ ("ok", { Logger.start = 20_000L; length = 10_000L });
        ("never", { Logger.start = 99_000_000L; length = 10L }) ]
  in
  Alcotest.(check (list string)) "only reachable" [ "ok" ] (List.map fst batch)

let test_marker_delimited_capture () =
  (* A region triggered by the application's own ROI marker starts
     exactly at the marker instruction (PinPlay-style trigger). *)
  let payload = 0x1234L in
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:[ { kernel = Elfie_workloads.Kernels.Alu; reps = 800 } ]
      ~outer_reps:6 ~ws_bytes:16384 ~roi_marker:payload "marked"
  in
  let rs = Elfie_workloads.Programs.run_spec spec in
  let start =
    match Logger.icount_at_marker rs ~payload ~occurrence:3 with
    | Some n -> n
    | None -> Alcotest.fail "marker never fired"
  in
  Alcotest.(check bool) "third occurrence is past the second iteration" true
    (start > 16_000L);
  let r = Logger.capture rs ~name:"marked" { Logger.start; length = 8_000L } in
  let image = Elfie_workloads.Programs.image spec in
  let marker_addr = Option.get (Elfie_elf.Image.find_symbol image "outer_loop") in
  Alcotest.check Tutil.i64 "region starts at the marker" marker_addr
    r.Logger.pinball.Elfie_pinball.Pinball.contexts.(0).Elfie_machine.Context.rip;
  (* Never-firing occurrence count. *)
  Alcotest.(check (option Tutil.i64)) "too many occurrences" None
    (Logger.icount_at_marker rs ~payload ~occurrence:1000)

(* --- replayer ---------------------------------------------------------------- *)

let test_constrained_replay_matches () =
  let pb = Tutil.tiny_pinball ~file_io:true ~time_calls:true "replay" in
  let r = Replayer.replay pb in
  Alcotest.(check bool) "icounts match" true r.Replayer.matched_icounts;
  Alcotest.(check int) "no divergence" 0 r.Replayer.divergences

let test_injection_provides_file_data () =
  (* The region reads from a pre-opened fd; constrained replay succeeds
     with an EMPTY filesystem because results are injected. *)
  let pb = Tutil.tiny_pinball ~file_io:true "inject" in
  let has_reads =
    Array.exists
      (List.exists (fun e -> e.Elfie_pinball.Pinball.sys_nr = Elfie_kernel.Abi.sys_read))
      pb.Elfie_pinball.Pinball.injections
  in
  Alcotest.(check bool) "region contains reads" true has_reads;
  let r = Replayer.replay pb in
  Alcotest.(check bool) "replay ok without files" true r.Replayer.matched_icounts

let test_injectionless_mimics_elfie () =
  let pb = Tutil.tiny_pinball ~file_io:true "injless" in
  (* Without the file, the re-executed read fails, but execution itself
     proceeds (our workload ignores read results). With the file it
     reaches the recorded icounts. *)
  let with_fs =
    Replayer.replay
      ~mode:
        (Replayer.Injectionless
           { seed = 9L;
             fs_init =
               (fun fs ->
                 Elfie_kernel.Fs.add_file fs ~path:"/input.dat"
                   Elfie_workloads.Programs.input_file_content) })
      pb
  in
  Alcotest.(check bool) "reaches icounts" true with_fs.Replayer.matched_icounts

let test_replay_divergence_detection () =
  (* Tampering with the injection log makes replay observe syscall
     mismatches, which it must count rather than crash on. *)
  let pb = Tutil.tiny_pinball ~file_io:true ~time_calls:true "tamper" in
  let tampered =
    {
      pb with
      Elfie_pinball.Pinball.injections =
        Array.map
          (List.map (fun e -> { e with Elfie_pinball.Pinball.sys_nr = 9999 }))
          pb.Elfie_pinball.Pinball.injections;
    }
  in
  let has_entries = Array.exists (fun l -> l <> []) pb.Elfie_pinball.Pinball.injections in
  Alcotest.(check bool) "pinball has syscalls" true has_entries;
  let r = Replayer.replay tampered in
  Alcotest.(check bool) "divergences counted" true (r.Replayer.divergences > 0)

let test_replay_memory_image_isolated () =
  (* Replaying twice from the same pinball gives identical results: the
     pinball's pages must not be mutated by a replay. *)
  let pb = Tutil.tiny_pinball "iso" in
  let r1 = Replayer.replay pb in
  let r2 = Replayer.replay pb in
  Alcotest.check Tutil.i64 "same retired" r1.Replayer.retired r2.Replayer.retired;
  Alcotest.(check bool) "both match" true
    (r1.Replayer.matched_icounts && r2.Replayer.matched_icounts)

(* --- bbv -------------------------------------------------------------------- *)

let test_bbv_slices () =
  let profile = Bbv.profile (Tutil.tiny_run_spec "bbv") ~slice_size:10_000L in
  Alcotest.(check bool) "several slices" true (List.length profile.Bbv.slices > 5);
  List.iteri
    (fun i s ->
      Alcotest.(check int) "indexed" i s.Bbv.index;
      let sum = Array.fold_left (fun a (_, c) -> a + c) 0 s.Bbv.vector in
      Alcotest.(check int)
        (Printf.sprintf "vector sums to slice %d length" i)
        (Int64.to_int s.Bbv.instructions)
        sum)
    profile.Bbv.slices;
  let total =
    List.fold_left (fun a s -> Int64.add a s.Bbv.instructions) 0L profile.Bbv.slices
  in
  Alcotest.check Tutil.i64 "total" profile.Bbv.total_instructions total

let test_bbv_phases_have_distinct_vectors () =
  let profile = Bbv.profile (Tutil.tiny_run_spec "bbvp") ~slice_size:10_000L in
  let keys s =
    List.sort compare (Array.to_list (Array.map fst s.Bbv.vector))
  in
  let distinct =
    List.sort_uniq compare (List.map keys profile.Bbv.slices)
  in
  Alcotest.(check bool) "more than one block mix" true (List.length distinct > 1)

(* --- sysstate ----------------------------------------------------------------- *)

let test_sysstate_fd_proxy () =
  let pb = Tutil.tiny_pinball ~file_io:true "ssfd" in
  let ss = Sysstate.analyze pb in
  Alcotest.(check bool) "has FD_3 proxy" true
    (List.exists (fun (fd, name) -> fd = 3 && name = "FD_3") ss.Sysstate.fd_files);
  let content = List.assoc "FD_3" ss.Sysstate.files in
  Alcotest.(check bool) "proxy content from reads" true (String.length content > 0);
  (* Proxy content equals what the region actually read: a slice of
     input.dat following the pre-region reads. *)
  let expected_sub = String.sub Elfie_workloads.Programs.input_file_content 0 4 in
  ignore expected_sub;
  Alcotest.(check bool) "content multiple of read size" true
    (String.length content mod 64 = 0)

let test_sysstate_brk () =
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:[ { kernel = Elfie_workloads.Kernels.Alu; reps = 2000 } ]
      ~outer_reps:8 ~ws_bytes:16384 ~heap_churn:true "ssbrk"
  in
  let rs = Elfie_workloads.Programs.run_spec spec in
  let r = Logger.capture rs ~name:"ssbrk" { Logger.start = 30_000L; length = 60_000L } in
  let ss = Sysstate.analyze r.Logger.pinball in
  Alcotest.(check bool) "brk advanced in region" true
    (ss.Sysstate.brk_end > ss.Sysstate.brk_start)

let test_sysstate_in_region_open_with_lseek () =
  (* A file opened *inside* the region gets a proxy under its own name,
     with read data placed at the positions the region read it from
     (lseek-aware), so the ELFie's re-executed open/lseek/read succeed
     with the same data. *)
  let open Elfie_isa in
  let b = Builder.create () in
  let path = Builder.new_label b in
  let mov_imm r v = Builder.ins b (Insn.Mov_ri (r, v)) in
  let sys nr =
    mov_imm Reg.RAX (Int64.of_int nr);
    Builder.ins b Insn.Syscall
  in
  Builder.mov_label b Reg.RDI path;
  mov_imm Reg.RSI 0L;
  mov_imm Reg.RDX 0L;
  sys Elfie_kernel.Abi.sys_open;
  Builder.ins b (Insn.Mov_rr (Reg.R12, Reg.RAX));
  (* lseek(fd, 4, SEEK_SET); read 4 bytes; exit with their first byte *)
  Builder.ins b (Insn.Mov_rr (Reg.RDI, Reg.R12));
  mov_imm Reg.RSI 4L;
  mov_imm Reg.RDX 0L;
  sys Elfie_kernel.Abi.sys_lseek;
  Builder.ins b (Insn.Mov_rr (Reg.RDI, Reg.R12));
  mov_imm Reg.RSI 0x60_0000L;
  mov_imm Reg.RDX 4L;
  sys Elfie_kernel.Abi.sys_read;
  Builder.ins b (Insn.Load (Insn.W8, Reg.RDI, Insn.mem_abs 0x60_0000L));
  sys Elfie_kernel.Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "data.bin\000");
  let image = Tutil.image_of ~data_section:(0x60_0000L, 4096) b in
  let rs =
    Run.spec
      ~fs_init:(fun fs -> Elfie_kernel.Fs.add_file fs ~path:"/data.bin" "ABCDEFGH")
      image
  in
  (* Capture the whole run as the region. *)
  let r = Logger.capture rs ~name:"lseek" { Logger.start = 0L; length = 100_000L } in
  let ss = Sysstate.analyze r.Logger.pinball in
  let proxy = List.assoc "/data.bin" ss.Sysstate.files in
  Alcotest.(check string) "content positioned at offset 4" "EFGH"
    (String.sub proxy 4 4);
  (* And the ELFie re-executes the open/lseek/read successfully. *)
  let elfie =
    Elfie_core.Pinball2elf.convert
      ~options:{ Elfie_core.Pinball2elf.default_options with sysstate = Some ss }
      r.Logger.pinball
  in
  let o =
    Elfie_core.Elfie_runner.run
      ~fs_init:(fun fs -> Sysstate.install ss fs ~workdir:"/work")
      ~cwd:"/work" elfie
  in
  Alcotest.(check bool) "elfie graceful" true o.Elfie_core.Elfie_runner.graceful

let test_sysstate_files_roundtrip () =
  let pb = Tutil.tiny_pinball ~file_io:true "ssround" in
  let ss = Sysstate.analyze pb in
  let ss' = Sysstate.of_files (Sysstate.to_files ss) in
  Alcotest.(check bool) "roundtrip" true
    (ss.Sysstate.files = ss'.Sysstate.files
    && ss.Sysstate.fd_files = ss'.Sysstate.fd_files
    && ss.Sysstate.brk_start = ss'.Sysstate.brk_start
    && ss.Sysstate.brk_end = ss'.Sysstate.brk_end)

let test_sysstate_install () =
  let pb = Tutil.tiny_pinball ~file_io:true "ssinst" in
  let ss = Sysstate.analyze pb in
  let fs = Elfie_kernel.Fs.create () in
  Sysstate.install ss fs ~workdir:"/work";
  Alcotest.(check bool) "FD_3 installed" true
    (Elfie_kernel.Fs.exists fs "/work/FD_3")

let suite =
  [
    Alcotest.test_case "tool chaining and detach" `Quick test_tool_chaining_and_detach;
    Alcotest.test_case "native run clean" `Quick test_native_run_clean;
    Alcotest.test_case "ST retired count seed-independent" `Quick
      test_native_st_deterministic_retired;
    Alcotest.test_case "capture exact region" `Quick test_capture_exact_region;
    Alcotest.test_case "capture deterministic" `Quick test_capture_deterministic;
    Alcotest.test_case "fat vs lean pinballs" `Quick test_fat_vs_lean;
    Alcotest.test_case "capture past program end" `Quick test_capture_past_end;
    Alcotest.test_case "capture truncated region" `Quick test_capture_truncated_region;
    Alcotest.test_case "capture_many matches single" `Quick
      test_capture_many_matches_single;
    Alcotest.test_case "capture_many skips unreachable" `Quick
      test_capture_many_skips_unreachable;
    Alcotest.test_case "marker-delimited capture" `Quick test_marker_delimited_capture;
    Alcotest.test_case "constrained replay matches" `Quick
      test_constrained_replay_matches;
    Alcotest.test_case "injection provides file data" `Quick
      test_injection_provides_file_data;
    Alcotest.test_case "injectionless replay" `Quick test_injectionless_mimics_elfie;
    Alcotest.test_case "replay does not mutate pinball" `Quick
      test_replay_memory_image_isolated;
    Alcotest.test_case "replay divergence detection" `Quick
      test_replay_divergence_detection;
    Alcotest.test_case "bbv slices" `Quick test_bbv_slices;
    Alcotest.test_case "bbv distinct phases" `Quick test_bbv_phases_have_distinct_vectors;
    Alcotest.test_case "sysstate FD proxy" `Quick test_sysstate_fd_proxy;
    Alcotest.test_case "sysstate brk log" `Quick test_sysstate_brk;
    Alcotest.test_case "sysstate in-region open + lseek" `Quick
      test_sysstate_in_region_open_with_lseek;
    Alcotest.test_case "sysstate files roundtrip" `Quick test_sysstate_files_roundtrip;
    Alcotest.test_case "sysstate install" `Quick test_sysstate_install;
  ]
