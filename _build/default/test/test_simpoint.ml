(* Tests for k-means clustering and SimPoint region selection. *)

module Kmeans = Elfie_simpoint.Kmeans
module Simpoint = Elfie_simpoint.Simpoint

let rng () = Elfie_util.Rng.create 123L

(* Three well-separated blobs in 2D. *)
let blobs () =
  let r = rng () in
  let blob cx cy =
    List.init 20 (fun _ ->
        [| cx +. Elfie_util.Rng.float r; cy +. Elfie_util.Rng.float r |])
  in
  Array.of_list (blob 0.0 0.0 @ blob 10.0 0.0 @ blob 0.0 10.0)

let test_kmeans_recovers_blobs () =
  let points = blobs () in
  let result = Kmeans.cluster ~rng:(rng ()) ~k:3 points in
  (* Points within a blob share a label; across blobs labels differ. *)
  let label i = result.Kmeans.assignments.(i) in
  for b = 0 to 2 do
    for i = 1 to 19 do
      Alcotest.(check int) "blob is one cluster" (label (b * 20)) (label ((b * 20) + i))
    done
  done;
  Alcotest.(check bool) "distinct blobs distinct clusters" true
    (label 0 <> label 20 && label 20 <> label 40 && label 0 <> label 40)

let test_kmeans_best_picks_reasonable_k () =
  let result = Kmeans.best ~rng:(rng ()) ~max_k:10 (blobs ()) in
  Alcotest.(check bool) "k close to 3" true (result.Kmeans.k >= 2 && result.Kmeans.k <= 5)

let test_kmeans_k1 () =
  let result = Kmeans.cluster ~rng:(rng ()) ~k:1 (blobs ()) in
  Alcotest.(check bool) "all in cluster 0" true
    (Array.for_all (fun a -> a = 0) result.Kmeans.assignments)

let test_kmeans_k_clamped () =
  let points = [| [| 0.0 |]; [| 1.0 |] |] in
  let result = Kmeans.cluster ~rng:(rng ()) ~k:10 points in
  Alcotest.(check bool) "k clamped to n" true (result.Kmeans.k <= 2)

let test_kmeans_empty_input () =
  Alcotest.check_raises "no points" (Invalid_argument "Kmeans.cluster: no points")
    (fun () -> ignore (Kmeans.cluster ~rng:(rng ()) ~k:2 [||]))

let test_kmeans_inertia_decreases_with_k () =
  let points = blobs () in
  let i1 = (Kmeans.cluster ~rng:(rng ()) ~k:1 points).Kmeans.inertia in
  let i3 = (Kmeans.cluster ~rng:(rng ()) ~k:3 points).Kmeans.inertia in
  Alcotest.(check bool) "more clusters, less inertia" true (i3 < i1)

let prop_assignments_nearest =
  QCheck.Test.make ~name:"every point assigned to nearest centroid" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 4 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun pts ->
      let points = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      let r = Kmeans.cluster ~rng:(rng ()) ~k:3 points in
      Array.for_all
        (fun i ->
          let d c = Kmeans.sq_dist points.(i) r.Kmeans.centroids.(c) in
          let assigned = d r.Kmeans.assignments.(i) in
          List.for_all (fun c -> assigned <= d c +. 1e-9)
            (List.init r.Kmeans.k Fun.id))
        (Array.init (Array.length points) Fun.id))

(* --- simpoint over a real profile ----------------------------------------- *)

let profile () =
  Elfie_pin.Bbv.profile (Tutil.tiny_run_spec "sp") ~slice_size:5_000L

let params =
  { Simpoint.default_params with slice_size = 5_000L; warmup = 10_000L; max_k = 10 }

let test_select_weights_sum () =
  let sel = Simpoint.select ~params (profile ()) in
  let sum = List.fold_left (fun a r -> a +. r.Simpoint.weight) 0.0 sel.Simpoint.regions in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 sum

let test_select_finds_phases () =
  let sel = Simpoint.select ~params (profile ()) in
  (* The tiny benchmark alternates two kernels: at least 2 clusters. *)
  Alcotest.(check bool) "k >= 2" true (sel.Simpoint.k >= 2)

let test_regions_within_program () =
  let sel = Simpoint.select ~params (profile ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "start >= 0" true (r.Simpoint.start >= 0L);
      Alcotest.(check bool) "fits in program" true
        (Int64.add r.Simpoint.start r.Simpoint.length
        <= Int64.add sel.Simpoint.total_instructions params.Simpoint.slice_size))
    sel.Simpoint.regions

let test_alternates_ranked () =
  let sel = Simpoint.select ~params (profile ()) in
  Array.iter
    (fun alts ->
      List.iteri
        (fun i r -> Alcotest.(check int) "rank order" i r.Simpoint.rank)
        alts)
    sel.Simpoint.alternates

let test_warmup_clipped_at_start () =
  let sel = Simpoint.select ~params (profile ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "warmup never exceeds configured" true
        (r.Simpoint.warmup_actual <= params.Simpoint.warmup);
      (* start + warmup lands exactly on the slice boundary *)
      Alcotest.check Tutil.i64 "slice boundary"
        (Int64.mul (Int64.of_int r.Simpoint.slice_index) params.Simpoint.slice_size)
        (Int64.add r.Simpoint.start r.Simpoint.warmup_actual))
    sel.Simpoint.regions

let test_full_warmup_preferred () =
  let sel = Simpoint.select ~params (profile ()) in
  (* If a cluster has any member past the warmup horizon, its rank-0
     representative must have full warmup. *)
  let warmup_slices = Int64.to_int (Int64.div params.Simpoint.warmup params.Simpoint.slice_size) in
  Array.iter
    (fun alts ->
      match alts with
      | [] -> ()
      | rep :: _ ->
          let has_late =
            List.exists (fun r -> r.Simpoint.slice_index >= warmup_slices) alts
          in
          if has_late then
            Alcotest.(check bool) "rep has full warmup" true
              (rep.Simpoint.slice_index >= warmup_slices))
    sel.Simpoint.alternates

let test_project_normalised_and_deterministic () =
  let p = profile () in
  let s = List.hd p.Elfie_pin.Bbv.slices in
  let v1 = Simpoint.project ~dims:15 s and v2 = Simpoint.project ~dims:15 s in
  Alcotest.(check bool) "deterministic" true (v1 = v2);
  Alcotest.(check int) "dims" 15 (Array.length v1);
  (* Normalised by slice length: components bounded by 1 in magnitude. *)
  Array.iter
    (fun x -> Alcotest.(check bool) "bounded" true (Float.abs x <= 1.0 +. 1e-9))
    v1

let test_predict_weighted_sum () =
  let sel = Simpoint.select ~params (profile ()) in
  Alcotest.(check (float 1e-9)) "constant metric" 1.0
    (Simpoint.predict sel (fun _ -> 1.0))

let suite =
  [
    Alcotest.test_case "kmeans recovers blobs" `Quick test_kmeans_recovers_blobs;
    Alcotest.test_case "kmeans best picks k" `Quick test_kmeans_best_picks_reasonable_k;
    Alcotest.test_case "kmeans k=1" `Quick test_kmeans_k1;
    Alcotest.test_case "kmeans k clamped" `Quick test_kmeans_k_clamped;
    Alcotest.test_case "kmeans empty input" `Quick test_kmeans_empty_input;
    Alcotest.test_case "inertia decreases with k" `Quick
      test_kmeans_inertia_decreases_with_k;
    QCheck_alcotest.to_alcotest prop_assignments_nearest;
    Alcotest.test_case "weights sum to 1" `Quick test_select_weights_sum;
    Alcotest.test_case "finds phases" `Quick test_select_finds_phases;
    Alcotest.test_case "regions within program" `Quick test_regions_within_program;
    Alcotest.test_case "alternates ranked" `Quick test_alternates_ranked;
    Alcotest.test_case "warmup clipped at start" `Quick test_warmup_clipped_at_start;
    Alcotest.test_case "full-warmup preferred" `Quick test_full_warmup_preferred;
    Alcotest.test_case "projection" `Quick test_project_normalised_and_deterministic;
    Alcotest.test_case "predict weighted sum" `Quick test_predict_weighted_sum;
  ]
