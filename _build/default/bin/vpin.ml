(* vpin: run Vpin analysis tools on a benchmark or an ELFie — the
   paper's "dynamic analysis with Pin" use case (Section III-A).

     vpin -t insmix -b 525.x264_r
     vpin -t footprint --elf region.elfie --sysstate dir
     vpin -t branchprof --elf region.elfie --limit 100000

   When the target is an ELFie, analysis starts at the ROI marker so the
   startup code is skipped, and --limit gives the graceful analysis end
   (typically the region's recorded instruction count). *)

open Cmdliner
module Tools = Elfie_pin.Tools

type which = Insmix | Footprint | Branchprof | Bbprof

let which_conv =
  Arg.enum
    [ ("insmix", Insmix); ("footprint", Footprint); ("branchprof", Branchprof);
      ("bbprof", Bbprof) ]

let run which bench elf sysstate limit =
  let machine, from_marker =
    match (bench, elf) with
    | Some name, None ->
        let b =
          match Elfie_workloads.Suite.find name with
          | Some b -> b
          | None ->
              Printf.eprintf "unknown benchmark %S\n" name;
              exit 2
        in
        let machine, _ =
          Elfie_pin.Run.instantiate (Elfie_workloads.Programs.run_spec b.spec)
        in
        (machine, false)
    | None, Some path ->
        let ic = open_in_bin path in
        let image =
          Elfie_elf.Image.read
            (Bytes.of_string (really_input_string ic (in_channel_length ic)))
        in
        close_in ic;
        let machine =
          Elfie_machine.Machine.create
            (Elfie_machine.Machine.Free { seed = 11L; quantum_min = 50; quantum_max = 200 })
        in
        let fs = Elfie_kernel.Fs.create () in
        (match sysstate with
        | Some dir ->
            Elfie_pin.Sysstate.install (Elfie_pin.Sysstate.load_dir ~dir) fs
              ~workdir:"/work"
        | None -> ());
        let kernel =
          Elfie_kernel.Vkernel.create
            ~config:{ Elfie_kernel.Vkernel.default_config with initial_cwd = "/work" }
            fs
        in
        Elfie_kernel.Vkernel.install kernel machine;
        let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "e" ] ~env:[] in
        (machine, true)
    | _ ->
        prerr_endline "pass exactly one of -b BENCH or --elf FILE";
        exit 2
  in
  let attach_and_run tool render =
    let detach = Elfie_pin.Pintool.attach machine [ tool ] in
    Elfie_machine.Machine.run ~max_ins:200_000_000L machine;
    detach ();
    render ()
  in
  match which with
  | Insmix ->
      let a = Tools.instruction_mix ~from_marker ?limit () in
      attach_and_run a.tool (fun () ->
          Format.printf "%a@." Tools.pp_mix (a.result ()))
  | Footprint ->
      let a = Tools.memory_footprint ~from_marker ?limit () in
      attach_and_run a.tool (fun () ->
          Format.printf "%a@." Tools.pp_footprint (a.result ()))
  | Branchprof ->
      let a = Tools.branch_profile ~from_marker ?limit () in
      attach_and_run a.tool (fun () ->
          Format.printf "%a@." Tools.pp_branch_profile (a.result ()))
  | Bbprof ->
      let a = Tools.block_profile ~from_marker ?limit () in
      attach_and_run a.tool (fun () ->
          Format.printf "%a@." Tools.pp_block_profile (a.result ()))

let cmd =
  let which =
    Arg.(
      required
      & opt (some which_conv) None
      & info [ "t"; "tool" ] ~docv:"TOOL"
          ~doc:"Analysis: insmix, footprint, branchprof or bbprof.")
  in
  let bench =
    Arg.(
      value & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Analyse a suite benchmark.")
  in
  let elf =
    Arg.(
      value & opt (some string) None
      & info [ "elf" ] ~docv:"FILE" ~doc:"Analyse an ELFie (starts at its marker).")
  in
  let sysstate =
    Arg.(
      value & opt (some string) None
      & info [ "sysstate" ] ~docv:"DIR" ~doc:"Sysstate directory for the ELFie.")
  in
  let limit =
    Arg.(
      value & opt (some int64) None
      & info [ "limit" ] ~docv:"N" ~doc:"Stop analysis after N instructions.")
  in
  Cmd.v
    (Cmd.info "vpin" ~doc:"run dynamic-analysis tools on binaries and ELFies")
    Term.(const run $ which $ bench $ elf $ sysstate $ limit)

let () = exit (Cmd.eval cmd)
