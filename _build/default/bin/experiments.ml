(* Run any of the paper's tables/figures by id; `all` regenerates the
   full evaluation. *)

open Cmdliner

let run_ids ids =
  let targets =
    match ids with
    | [ "all" ] | [] -> Elfie_harness.Registry.all
    | ids ->
        List.map
          (fun id ->
            match Elfie_harness.Registry.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" id
                  (String.concat ", " Elfie_harness.Registry.ids);
                exit 2)
          ids
  in
  List.iter
    (fun (e : Elfie_harness.Registry.experiment) ->
      Printf.printf "=== %s: %s ===\n" e.id e.title;
      let t0 = Unix.gettimeofday () in
      print_string (e.run ());
      Printf.printf "(%.1f s)\n\n%!" (Unix.gettimeofday () -. t0))
    targets

let ids_arg =
  let doc = "Experiment ids (fig9, fig10, fig11, table1..table5) or 'all'." in
  Arg.(value & pos_all string [ "all" ] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "regenerate the ELFies paper's evaluation tables and figures" in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run_ids $ ids_arg)

let () = exit (Cmd.eval cmd)
