(* vx86asm: assemble a VX86 .s file into an ELF executable, optionally
   run it, or disassemble an existing image.

     vx86asm build prog.s -o prog.elf [--base 0x400000]
     vx86asm run prog.s [--max-ins N]
     vx86asm objdump prog.elf *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let assemble_file path base =
  match Elfie_asm.Asm.assemble ~base (read_file path) with
  | Ok prog -> prog
  | Error e ->
      Format.eprintf "%s: %a@." path Elfie_asm.Asm.pp_error e;
      exit 1

let image_of_program base (prog : Elfie_isa.Builder.program) =
  {
    Elfie_elf.Image.exec = true;
    entry = base;
    sections =
      [ Elfie_elf.Image.section ~executable:true ~writable:true ~name:".text"
          ~addr:base prog.code ];
    symbols =
      List.map
        (fun (name, value) -> { Elfie_elf.Image.sym_name = name; value; func = true })
        prog.symbols;
  }

let base_arg =
  Arg.(value & opt int64 0x40_0000L & info [ "base" ] ~doc:"Load address.")

let src_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Source file.")

let build src out base =
  let prog = assemble_file src base in
  let oc = open_out_bin out in
  output_bytes oc (Elfie_elf.Image.write (image_of_program base prog));
  close_out oc;
  Printf.printf "wrote %s (%d code bytes)\n" out (Bytes.length prog.code)

let build_cmd =
  let out =
    Arg.(
      required & opt (some string) None & info [ "o" ] ~docv:"OUT" ~doc:"Output ELF.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"assemble to an ELF executable")
    Term.(const build $ src_arg $ out $ base_arg)

let run src base max_ins =
  let prog = assemble_file src base in
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 100; quantum_max = 100 })
  in
  let kernel = Elfie_kernel.Vkernel.create (Elfie_kernel.Fs.create ()) in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ =
    Elfie_kernel.Loader.load kernel machine (image_of_program base prog)
      ~argv:[ src ] ~env:[]
  in
  Elfie_machine.Machine.run ~max_ins machine;
  print_string (Elfie_kernel.Vkernel.stdout_contents kernel);
  List.iter
    (fun th ->
      Printf.printf "thread %d: %s after %Ld instructions (%Ld cycles)\n"
        th.Elfie_machine.Machine.tid
        (match th.Elfie_machine.Machine.state with
        | Elfie_machine.Machine.Exited n -> Printf.sprintf "exit %d" n
        | Faulted f -> Format.asprintf "%a" Elfie_machine.Machine.pp_fault f
        | Runnable -> "still runnable (hit --max-ins)")
        th.Elfie_machine.Machine.retired th.Elfie_machine.Machine.cycles)
    (Elfie_machine.Machine.threads machine)

let run_cmd =
  let max_ins =
    Arg.(value & opt int64 10_000_000L & info [ "max-ins" ] ~doc:"Instruction cap.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"assemble and execute on the Vkernel machine")
    Term.(const run $ src_arg $ base_arg $ max_ins)

let objdump path =
  let image = Elfie_elf.Image.read (Bytes.of_string (read_file path)) in
  Format.printf "%a@." Elfie_elf.Image.pp image;
  List.iter
    (fun (s : Elfie_elf.Image.section) ->
      if s.executable then begin
        Printf.printf "\nDisassembly of %s:\n" s.name;
        List.iter
          (fun (off, ins) ->
            Printf.printf "  %8Lx: %s\n"
              (Int64.add s.addr (Int64.of_int off))
              (Elfie_asm.Asm.print_instruction ins))
          (Elfie_isa.Codec.disassemble s.data ~off:0 ~count:10_000)
      end)
    image.sections

let objdump_cmd =
  Cmd.v
    (Cmd.info "objdump" ~doc:"disassemble an ELF image")
    Term.(const objdump $ src_arg)

let () =
  let doc = "VX86 assembler and flat-image tools" in
  exit (Cmd.eval (Cmd.group (Cmd.info "vx86asm" ~doc) [ build_cmd; run_cmd; objdump_cmd ]))
