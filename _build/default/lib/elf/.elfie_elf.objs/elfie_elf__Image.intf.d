lib/elf/image.mli: Format
