lib/elf/image.ml: Array Buffer Byteio Bytes Consts Elfie_util Format Int64 List Printf
