lib/elf/consts.ml:
