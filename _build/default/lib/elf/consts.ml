(* ELF64 structure constants, per the TIS ELF specification v1.2. *)

let magic = "\x7fELF"
let elfclass64 = 2
let elfdata2lsb = 1
let ev_current = 1

(* Object file types. *)
let et_rel = 1
let et_exec = 2

(* Machine: official x86-64 is 62; VX86 images use an unassigned value so
   they can never be confused with real binaries. "VX" little-endian. *)
let em_vx86 = 0x5856

(* Section types. *)
let sht_null = 0
let sht_progbits = 1
let sht_symtab = 2
let sht_strtab = 3
let sht_note = 7
let sht_nobits = 8

(* Section flags. *)
let shf_write = 0x1
let shf_alloc = 0x2
let shf_execinstr = 0x4

(* Program header types and flags. *)
let pt_load = 1
let pf_x = 0x1
let pf_w = 0x2
let pf_r = 0x4

(* Symbols. *)
let shn_abs = 0xfff1
let stb_global = 1
let stt_func = 2
let st_info ~bind ~typ = (bind lsl 4) lor (typ land 0xf)

(* Fixed structure sizes. *)
let ehsize = 64
let phentsize = 56
let shentsize = 64
let symentsize = 24
