lib/coresim/coresim.mli: Elfie_elf Elfie_kernel Elfie_machine
