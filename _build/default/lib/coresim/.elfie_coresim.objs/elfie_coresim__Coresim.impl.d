lib/coresim/coresim.ml: Abi Addr_space Bytes Cache Char Context Elfie_isa Elfie_kernel Elfie_machine Elfie_pin Elfie_util Float Fs Insn Int64 Loader Machine Reg Vkernel
