open Elfie_isa
open Elfie_machine
open Elfie_kernel
module Pinball = Elfie_pinball.Pinball
module Image = Elfie_elf.Image

type marker = Sniper | Ssc of int64 | Simics of int

type options = {
  alloc_stack_sections : bool;
  marker : marker option;
  arm_counters : bool;
  sysstate : Elfie_pin.Sysstate.t option;
  monitor_thread : bool;
  object_only : bool;
  warmup_mark : int64 option;
  extra_on_start : (Builder.t -> unit) option;
  extra_on_thread_start : (Builder.t -> unit) option;
  extra_on_exit : (Builder.t -> unit) option;
}

let default_options =
  {
    alloc_stack_sections = false;
    marker = None;
    arm_counters = true;
    sysstate = None;
    monitor_thread = false;
    object_only = false;
    warmup_mark = None;
    extra_on_start = None;
    extra_on_thread_start = None;
    extra_on_exit = None;
  }

let stack_page_threshold = 0x7ff0_0000_0000L

(* --- Page-run handling --------------------------------------------------- *)

(* Merge consecutive pages into (addr, bytes) runs so each run becomes one
   ELF section, as pinball2elf does for the .text memory image. *)
let runs_of_pages pages =
  let flush addr chunks acc =
    match chunks with
    | [] -> acc
    | _ -> (addr, Bytes.concat Bytes.empty (List.rev chunks)) :: acc
  in
  let rec go acc cur pages =
    match (cur, pages) with
    | None, [] -> List.rev acc
    | Some (addr, chunks), [] -> List.rev (flush addr chunks acc)
    | None, (a, b) :: rest -> go acc (Some (a, [ b ])) rest
    | Some (addr, chunks), (a, b) :: rest ->
        let run_len = List.fold_left (fun n c -> n + Bytes.length c) 0 chunks in
        if Int64.add addr (Int64.of_int run_len) = a then
          go acc (Some (addr, b :: chunks)) rest
        else go (flush addr chunks acc) (Some (a, [ b ])) rest
  in
  go [] None pages

let is_stack_page addr = Int64.unsigned_compare addr stack_page_threshold >= 0

(* Find a free window of [size] bytes for the startup section, scanning low
   memory upward and skipping pinball pages. *)
let find_window pages size =
  let page = Int64.of_int Addr_space.page_size in
  let size64 = Int64.of_int size in
  let overlaps cand =
    List.find_opt
      (fun (addr, data) ->
        let fin = Int64.add addr (Int64.of_int (Bytes.length data)) in
        Int64.unsigned_compare addr (Int64.add cand size64) < 0
        && Int64.unsigned_compare cand fin < 0)
      pages
  in
  let rec go cand tries =
    if tries > 65536 then failwith "pinball2elf: no free window for startup code"
    else
      match overlaps cand with
      | None -> cand
      | Some (addr, data) ->
          let fin = Int64.add addr (Int64.of_int (Bytes.length data)) in
          let next =
            Int64.mul (Int64.div (Int64.add fin (Int64.sub page 1L)) page) page
          in
          go next (tries + 1)
  in
  go 0x10000L 0

(* --- Code-emission helpers ----------------------------------------------- *)

let mov_imm b r v = Builder.ins b (Insn.Mov_ri (r, v))

let emit_syscall b nr =
  mov_imm b Reg.RAX (Int64.of_int nr);
  Builder.ins b Insn.Syscall

let emit_marker b = function
  | None -> ()
  | Some Sniper -> Builder.ins b (Insn.Magic 0x51)
  | Some (Ssc payload) -> Builder.ins b (Insn.Ssc_marker payload)
  | Some (Simics code) -> Builder.ins b (Insn.Magic code)

(* Startup instructions that retire between the arm point and application
   code (the arming syscall itself, two pops, the RSP restore, the final
   jump and an optional marker); the armed target is padded by this amount
   so the counter fires after exactly the recorded region icount. *)
let post_arm_overhead opts =
  5 + (match opts.marker with Some _ -> 1 | None -> 0)

(* Unmap whatever the loader placed over one checkpointed stack run, remap
   the range, and copy the shadow bytes back to their home addresses. *)
let emit_stack_remap b ~target ~len ~shadow =
  mov_imm b Reg.RDI target;
  mov_imm b Reg.RSI (Int64.of_int len);
  emit_syscall b Abi.sys_munmap;
  mov_imm b Reg.RDI target;
  mov_imm b Reg.RSI (Int64.of_int len);
  mov_imm b Reg.RDX 3L;
  mov_imm b Reg.R10 (Int64.of_int Abi.map_fixed);
  emit_syscall b Abi.sys_mmap;
  Builder.mov_label b Reg.RSI shadow;
  mov_imm b Reg.RDI target;
  mov_imm b Reg.RCX (Int64.of_int ((len + 7) / 8));
  let loop = Builder.here b in
  Builder.ins b (Insn.Load (Insn.W64, Reg.RAX, Insn.mem_base Reg.RSI));
  Builder.ins b (Insn.Store (Insn.W64, Insn.mem_base Reg.RDI, Reg.RAX));
  Builder.ins b (Insn.Alu_ri (Insn.Add, Reg.RSI, 8L));
  Builder.ins b (Insn.Alu_ri (Insn.Add, Reg.RDI, 8L));
  Builder.ins b (Insn.Alu_ri (Insn.Sub, Reg.RCX, 1L));
  Builder.jcc b Insn.Ne loop

(* elfie_on_start body: SYSSTATE descriptor re-opening and brk restore. *)
let emit_on_start b opts fd_name_labels =
  match opts.sysstate with
  | None -> ()
  | Some ss ->
      List.iter
        (fun (fd, _name) ->
          let name_label = List.assoc fd fd_name_labels in
          Builder.mov_label b Reg.RDI name_label;
          mov_imm b Reg.RSI 0L;
          mov_imm b Reg.RDX 0L;
          emit_syscall b Abi.sys_open;
          Builder.ins b (Insn.Mov_rr (Reg.RDI, Reg.RAX));
          mov_imm b Reg.RSI (Int64.of_int fd);
          emit_syscall b Abi.sys_dup2;
          let skip_close = Builder.new_label b in
          Builder.ins b (Insn.Alu_rr (Insn.Cmp, Reg.RDI, Reg.RSI));
          Builder.jcc b Insn.Eq skip_close;
          emit_syscall b Abi.sys_close;
          Builder.bind b skip_close)
        ss.Elfie_pin.Sysstate.fd_files;
      if ss.brk_start <> 0L then begin
        mov_imm b Reg.RDI ss.brk_start;
        emit_syscall b Abi.sys_brk
      end

(* --- Conversion ------------------------------------------------------------ *)

let exit_message = "ELFIE-EXIT\n"

let pop_order =
  [ Reg.RCX; Reg.RDX; Reg.RBX; Reg.RBP; Reg.RSI; Reg.RDI; Reg.R8; Reg.R9;
    Reg.R10; Reg.R11; Reg.R12; Reg.R13; Reg.R14; Reg.R15; Reg.RAX ]

let object_image (pb : Pinball.t) =
  let sections =
    List.map
      (fun (addr, data) ->
        Image.section ~writable:true ~executable:true
          ~name:(Printf.sprintf ".pb.0x%Lx" addr) ~addr data)
      (runs_of_pages pb.pages)
  in
  let regs =
    Bytes.concat Bytes.empty (Array.to_list (Array.map Context.to_bytes pb.contexts))
  in
  let reg_section = Image.section ~alloc:false ~name:".elfie.regs" ~addr:0L regs in
  {
    Image.exec = false;
    entry = 0L;
    sections = sections @ [ reg_section ];
    symbols = [];
  }

let convert ?(options = default_options) (pb : Pinball.t) =
  if options.object_only then object_image pb
  else begin
    let opts = options in
    let n = Pinball.num_threads pb in
    if n = 0 then failwith "pinball2elf: pinball has no threads";
    let all_runs = runs_of_pages pb.pages in
    let stack_runs, normal_runs =
      List.partition (fun (addr, _) -> is_stack_page addr) all_runs
    in
    let b = Builder.create () in
    let start = Builder.new_label ~name:"_start" b in
    let thread_init = Builder.new_label ~name:"thread_init" b in
    let data_start = Builder.new_label b in
    let shadow_labels = List.map (fun _ -> Builder.new_label b) stack_runs in
    let fd_name_labels =
      match opts.sysstate with
      | None -> []
      | Some ss -> List.map (fun (fd, _) -> (fd, Builder.new_label b)) ss.fd_files
    in
    let ctx_stack = Array.init n (fun _ -> Builder.new_label b) in
    let entries =
      Array.init n (fun i ->
          Builder.new_label ~name:(Printf.sprintf "elfie_thread_entry_%d" i) b)
    in
    let rip_slots =
      Array.init n (fun i -> Builder.new_label ~name:(Printf.sprintf ".t%d.rip" i) b)
    in
    let msg = Builder.new_label b in
    (* ---- startup code ---- *)
    Builder.bind b start;
    List.iteri
      (fun i (target, data) ->
        emit_stack_remap b ~target ~len:(Bytes.length data)
          ~shadow:(List.nth shadow_labels i))
      stack_runs;
    let on_start = Builder.here ~name:"elfie_on_start" b in
    ignore on_start;
    emit_on_start b opts fd_name_labels;
    (match opts.extra_on_start with Some emit -> emit b | None -> ());
    for i = 1 to n - 1 do
      Builder.mov_label b Reg.RDI thread_init;
      Builder.mov_label b Reg.RSI ctx_stack.(i);
      emit_syscall b Abi.sys_clone
    done;
    let monitor = opts.monitor_thread || opts.extra_on_exit <> None in
    if monitor then begin
      (* elfie_on_exit support: spawn the main app thread, watch it die,
         then report and terminate the process. *)
      Builder.mov_label b Reg.RDI thread_init;
      Builder.mov_label b Reg.RSI ctx_stack.(0);
      emit_syscall b Abi.sys_clone;
      Builder.ins b (Insn.Mov_rr (Reg.RBX, Reg.RAX));
      let loop = Builder.here b in
      Builder.ins b Insn.Pause;
      Builder.ins b (Insn.Mov_rr (Reg.RDI, Reg.RBX));
      emit_syscall b Abi.sys_thread_alive;
      Builder.ins b (Insn.Alu_ri (Insn.Cmp, Reg.RAX, 0L));
      Builder.jcc b Insn.Ne loop;
      let on_exit = Builder.here ~name:"elfie_on_exit" b in
      ignore on_exit;
      (match opts.extra_on_exit with Some emit -> emit b | None -> ());
      mov_imm b Reg.RDI 1L;
      Builder.mov_label b Reg.RSI msg;
      mov_imm b Reg.RDX (Int64.of_int (String.length exit_message));
      emit_syscall b Abi.sys_write;
      mov_imm b Reg.RDI 0L;
      emit_syscall b Abi.sys_exit_group
    end
    else begin
      Builder.mov_label b Reg.RSP ctx_stack.(0);
      Builder.jmp b thread_init
    end;
    (* Shared thread-initialization function: restore extended state, then
       pop FS/GS bases, flags and GPRs from the context stack; RET lands in
       the per-thread entry whose address sits at the bottom. *)
    Builder.bind b thread_init;
    Builder.ins b (Insn.Mov_rr (Reg.RAX, Reg.RSP));
    Builder.ins b (Insn.Alu_ri (Insn.Sub, Reg.RAX, Int64.of_int Context.xsave_size));
    Builder.ins b (Insn.Ldctx Reg.RAX);
    Builder.ins b (Insn.Pop Reg.RAX);
    Builder.ins b (Insn.Wrfsbase Reg.RAX);
    Builder.ins b (Insn.Pop Reg.RAX);
    Builder.ins b (Insn.Wrgsbase Reg.RAX);
    Builder.ins b Insn.Popf;
    List.iter (fun r -> Builder.ins b (Insn.Pop r)) pop_order;
    Builder.ins b Insn.Ret;
    (* Per-thread entries: arm the graceful-exit counter, drop the ROI
       marker, restore the real RSP and jump to the checkpointed RIP. *)
    Array.iteri
      (fun i entry ->
        Builder.bind b entry;
        (match opts.extra_on_thread_start with Some emit -> emit b | None -> ());
        if opts.arm_counters then begin
          Builder.ins b (Insn.Push Reg.RAX);
          Builder.ins b (Insn.Push Reg.RDI);
          (match opts.warmup_mark with
          | Some warmup when i = 0 ->
              (* Snapshot the counters once the warmup prefix has run:
                 mark syscall + 3-instruction arm sequence + the epilogue
                 retire before application code, hence the pad. *)
              mov_imm b Reg.RDI
                (Int64.add warmup (Int64.of_int (3 + post_arm_overhead opts)));
              emit_syscall b Abi.sys_vperf_mark
          | Some _ | None -> ());
          mov_imm b Reg.RDI
            (Int64.add pb.icounts.(i) (Int64.of_int (post_arm_overhead opts)));
          emit_syscall b Abi.sys_vperf_arm;
          Builder.ins b (Insn.Pop Reg.RDI);
          Builder.ins b (Insn.Pop Reg.RAX)
        end;
        emit_marker b opts.marker;
        mov_imm b Reg.RSP (Context.get pb.contexts.(i) Reg.RSP);
        Builder.jmp_mem b rip_slots.(i))
      entries;
    (* ---- startup data ---- *)
    Builder.align b 16;
    Builder.bind b data_start;
    Array.iteri
      (fun i ctx ->
        Builder.align b 16;
        let xmm = Builder.new_label ~name:(Printf.sprintf ".t%d.xmm" i) b in
        Builder.bind b xmm;
        Builder.raw b (Context.xsave ctx);
        Builder.bind b ctx_stack.(i);
        let named_quad name v =
          let l = Builder.new_label ~name:(Printf.sprintf ".t%d.%s" i name) b in
          Builder.bind b l;
          Builder.quad b v
        in
        named_quad "fs_base" ctx.Context.fs_base;
        named_quad "gs_base" ctx.Context.gs_base;
        named_quad "flags" (Reg.flags_to_word ctx.Context.flags);
        List.iter (fun r -> named_quad (Reg.gpr_name r) (Context.get ctx r)) pop_order;
        Builder.quad_label b entries.(i);
        Builder.bind b rip_slots.(i);
        Builder.quad b ctx.Context.rip)
      pb.contexts;
    List.iteri
      (fun i (_, data) ->
        Builder.align b 8;
        Builder.bind b (List.nth shadow_labels i);
        Builder.raw b (Bytes.copy data))
      stack_runs;
    (match opts.sysstate with
    | None -> ()
    | Some ss ->
        List.iter
          (fun (fd, name) ->
            Builder.bind b (List.assoc fd fd_name_labels);
            Builder.raw b (Bytes.of_string (name ^ "\000")))
          ss.fd_files);
    Builder.bind b msg;
    Builder.raw b (Bytes.of_string exit_message);
    (* ---- assemble and lay out sections ---- *)
    let probe = Builder.assemble b ~base:0L in
    let base = find_window pb.pages (Bytes.length probe.Builder.code) in
    let prog = Builder.assemble b ~base in
    let data_off = Int64.to_int (Int64.sub (Builder.resolve b prog data_start) base) in
    let code_len = Bytes.length prog.Builder.code in
    let text_sec =
      Image.section ~executable:true ~name:".elfie.text" ~addr:base
        (Bytes.sub prog.Builder.code 0 data_off)
    in
    let data_sec =
      Image.section ~writable:true ~name:".elfie.data"
        ~addr:(Int64.add base (Int64.of_int data_off))
        (Bytes.sub prog.Builder.code data_off (code_len - data_off))
    in
    let run_section ~prefix ~alloc (addr, data) =
      Image.section ~alloc ~writable:true ~executable:true
        ~name:(Printf.sprintf ".%s.0x%Lx" prefix addr)
        ~addr data
    in
    let normal_secs = List.map (run_section ~prefix:"pb" ~alloc:true) normal_runs in
    let stack_secs =
      List.map
        (run_section ~prefix:"stack" ~alloc:opts.alloc_stack_sections)
        stack_runs
    in
    let is_func name =
      name = "_start" || name = "thread_init" || name = "elfie_on_start"
      || name = "elfie_on_exit"
      || String.length name >= 18 && String.sub name 0 18 = "elfie_thread_entry"
    in
    let symbols =
      List.map
        (fun (name, value) -> { Image.sym_name = name; value; func = is_func name })
        prog.Builder.symbols
      (* Application symbols carried by the pinball: symbolic debugging
         of the embedded region. *)
      @ List.map
          (fun (name, value) -> { Image.sym_name = name; value; func = false })
          pb.symbols
    in
    {
      Image.exec = true;
      entry = base;
      sections = (text_sec :: data_sec :: normal_secs) @ stack_secs;
      symbols;
    }
  end

let context_listing (pb : Pinball.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "; initial thread contexts (vx86asm syntax)\n";
  Array.iteri
    (fun i ctx ->
      Buffer.add_string buf (Printf.sprintf "\n.align 16\nt%d_xsave:\n" i);
      let xsave = Context.xsave ctx in
      for lane = 0 to (Bytes.length xsave / 8) - 1 do
        if lane mod 2 = 0 then
          Buffer.add_string buf (Printf.sprintf "; xmm%d\n" (lane / 2));
        Buffer.add_string buf
          (Printf.sprintf "    .quad 0x%Lx\n" (Bytes.get_int64_le xsave (lane * 8)))
      done;
      Buffer.add_string buf (Printf.sprintf "t%d_ctx:\n" i);
      let quad name v =
        Buffer.add_string buf (Printf.sprintf "    .quad 0x%-18Lx ; %s\n" v name)
      in
      quad "fs_base" ctx.Context.fs_base;
      quad "gs_base" ctx.Context.gs_base;
      quad "rflags" (Reg.flags_to_word ctx.Context.flags);
      List.iter (fun r -> quad (Reg.gpr_name r) (Context.get ctx r)) pop_order;
      quad "rsp" (Context.get ctx Reg.RSP);
      quad "rip" ctx.Context.rip)
    pb.contexts;
  Buffer.contents buf

let linker_script image =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "SECTIONS\n{\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %s 0x%Lx : { /* %d bytes%s */ }\n" s.Image.name s.addr
           (Bytes.length s.data)
           (if s.alloc then "" else ", not loaded")))
    image.Image.sections;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
