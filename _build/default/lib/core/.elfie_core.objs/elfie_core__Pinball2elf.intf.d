lib/core/pinball2elf.mli: Elfie_elf Elfie_isa Elfie_pin Elfie_pinball
