lib/core/pinball2elf.ml: Abi Addr_space Array Buffer Builder Bytes Context Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Elfie_pin Elfie_pinball Insn Int64 List Printf Reg String
