lib/core/elfie_runner.mli: Elfie_elf Elfie_kernel Elfie_machine
