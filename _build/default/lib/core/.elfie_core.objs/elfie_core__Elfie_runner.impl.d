lib/core/elfie_runner.ml: Elfie_elf Elfie_kernel Elfie_machine Format Fs Int64 List Loader Machine Vkernel
