(** pinball2elf: convert a pinball into a stand-alone ELF executable.

    This is the paper's primary contribution. The generated ELFie

    - carries every memory page of the (fat) parent pinball, each run of
      consecutive pages becoming one ELF section mapped at its original
      virtual address (the ELFie has the parent's exact memory layout);
    - marks checkpointed {e stack} pages non-allocatable and keeps an
      allocatable shadow copy, so the system loader can place the fresh
      process stack freely; the generated startup code then unmaps any
      colliding loader pages and rebuilds the original stack contents
      (the Section II-B3 stack-collision fix — disable it with
      [alloc_stack_sections = true] to reproduce the failure);
    - packs each thread's initial register state into a context
      structure (XSAVE-style extended state + a pop-list of segment
      bases, flags and GPRs ending in a pointer to that thread's
      {e thread entry}, exactly the Fig. 5/6 scheme);
    - creates the region's threads with [clone], each starting in the
      shared thread-initialization function;
    - optionally embeds the SYSSTATE [elfie_on_start] behaviour
      (re-open [FD_n] proxies and [dup2] them into place, restore the
      program break) and arms a per-thread retired-instruction counter
      for the graceful exit;
    - optionally inserts a simulator ROI marker before jumping to
      application code, and symbols ([_start], [thread_init],
      [.tN.<reg>], ...) for debugging. *)

(** ROI marker flavours (the [--roi-start TYPE] switch). *)
type marker = Sniper | Ssc of int64 | Simics of int

type options = {
  alloc_stack_sections : bool;
      (** emit stack pages as allocatable (reproduces the collision bug) *)
  marker : marker option;
  arm_counters : bool;  (** graceful exit via the per-thread counter *)
  sysstate : Elfie_pin.Sysstate.t option;
  monitor_thread : bool;
      (** create a monitor thread that waits for the main thread and
          runs [elfie_on_exit] (prints a final counter line) *)
  object_only : bool;  (** emit an ET_REL object without startup code *)
  warmup_mark : int64 option;
      (** arm a mid-run counter snapshot after this many thread-0
          instructions — the PinPoints warmup boundary, so harnesses can
          measure the slice proper with warmed microarchitectural state *)
  extra_on_start : (Elfie_isa.Builder.t -> unit) option;
      (** user code linked into [elfie_on_start] (the [-p] switch): runs
          once after state restoration, before any thread is created *)
  extra_on_thread_start : (Elfie_isa.Builder.t -> unit) option;
      (** user code at each thread entry (the [-t] switch): runs with
          application registers already restored — it must preserve any
          register it clobbers (the context stack below RSP is scratch) *)
  extra_on_exit : (Elfie_isa.Builder.t -> unit) option;
      (** user code in [elfie_on_exit] (the [-e] switch); implies the
          monitor thread *)
}

val default_options : options

(** Virtual-address threshold above which checkpointed pages are
    treated as stack pages. *)
val stack_page_threshold : int64

(** Convert. Raises [Failure] if no address window can be found for the
    startup code (pathological pinball covering all low memory). *)
val convert : ?options:options -> Elfie_pinball.Pinball.t -> Elfie_elf.Image.t

(** The linker-script text describing the generated layout (the
    pinball2elf [-l] feature); purely informative. *)
val linker_script : Elfie_elf.Image.t -> string

(** Dump the pinball's initial thread contexts as an assembly listing
    (valid [vx86asm] input), the pinball2elf feature that "can help
    users write their own startup code". *)
val context_listing : Elfie_pinball.Pinball.t -> string
