(** Running ELFies natively.

    Loads an ELFie through the system loader (so stack randomization and
    the collision failure mode apply), lets its startup code rebuild the
    checkpointed state, and executes the embedded region with a freely
    scheduled machine — the "run it like any Linux binary" path of the
    paper.

    Success criterion is the paper's: the run is {e graceful} when every
    thread's armed retired-instruction counter fired (each thread
    executed its recorded region instruction count and exited), rather
    than the ELFie diverging into an uncaptured page or failing a system
    call. *)

type outcome = {
  load_error : string option;
      (** loader refused the image (e.g. stack collision) *)
  graceful : bool;
      (** every armed thread hit its region instruction count or exited
          cleanly via the application's own exit path *)
  fault : string option;  (** first thread fault, if any *)
  app_retired : int64;
      (** instructions retired inside the region (post-arm), all threads *)
  app_cycles : int64;  (** wall-clock proxy for the region (max thread) *)
  region_cpi : float;
  slice_cpi : float;
      (** CPI measured from the warmup mark to exit when the ELFie was
          generated with [warmup_mark]; equals [region_cpi] otherwise *)
  total_retired : int64;  (** including startup/monitor overhead *)
  stdout : string;
  threads : int;
}

(** [run image] executes an ELFie natively.
    @param seed scheduler seed — vary it across trials for MT variation
    @param fs_init install SYSSTATE proxy files before the run
    @param cwd the sysstate workdir the ELFie is executed in
    @param max_ins safety cap for runaway (diverged) executions
    @param kernel_cost charge ring-0 work, as real hardware would *)
val run :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  ?timing:Elfie_machine.Timing.config ->
  ?kernel_cost:bool ->
  Elfie_elf.Image.t ->
  outcome
