lib/perf/perf.ml: Elfie_core Elfie_pin Format Int64 List
