lib/perf/perf.mli: Elfie_elf Elfie_kernel Elfie_pin Format
