lib/gem5/gem5.mli: Elfie_elf Elfie_kernel Elfie_machine
