lib/gem5/gem5.ml: Bytes Cache Char Elfie_isa Elfie_kernel Elfie_machine Elfie_pin Float Fs Insn Int64 Loader Machine Vkernel
