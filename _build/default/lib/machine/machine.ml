open Elfie_isa

type fault =
  | Page_fault of { addr : int64; access : Addr_space.access; pc : int64 }
  | Invalid_opcode of int64
  | Privileged of int64

let pp_fault fmt = function
  | Page_fault { addr; access; pc } ->
      let a =
        match access with
        | Addr_space.Read -> "read"
        | Write -> "write"
        | Exec -> "exec"
      in
      Format.fprintf fmt "page fault (%s) at 0x%Lx, pc=0x%Lx" a addr pc
  | Invalid_opcode pc -> Format.fprintf fmt "invalid opcode at pc=0x%Lx" pc
  | Privileged pc -> Format.fprintf fmt "privileged instruction at pc=0x%Lx" pc

type thread_state = Runnable | Exited of int | Faulted of fault

type thread = {
  tid : int;
  ctx : Context.t;
  mutable state : thread_state;
  mutable retired : int64;
  mutable cycles : int64;
  mutable counter_target : int64 option;
  mutable counter_fired : bool;
  mutable arm_retired : int64;
  mutable arm_cycles : int64;
  mutable mark_target : int64 option;
  mutable mark_retired : int64 option;
  mutable mark_cycles : int64;
  mutable timer_left : int;
}

type scheduler =
  | Free of { seed : int64; quantum_min : int; quantum_max : int }
  | Recorded of (int * int) list

type hooks = {
  mutable on_ins : (int -> int64 -> Insn.t -> unit) option;
  mutable on_mem_read : (int -> int64 -> int -> unit) option;
  mutable on_mem_write : (int -> int64 -> int -> unit) option;
  mutable on_branch : (int -> int64 -> int64 -> bool -> unit) option;
  mutable on_marker : (int -> Insn.t -> unit) option;
  mutable on_thread_start : (int -> unit) option;
  mutable on_thread_exit : (int -> int -> unit) option;
}

type syscall_action = Run_syscall | Skip_syscall

type sched_state =
  | S_free of {
      rng : Elfie_util.Rng.t;
      quantum_min : int;
      quantum_max : int;
      (* A quantum interrupted by a [run ~max_ins] boundary resumes on
         the next call, so segmented driving (the multi-region logger)
         produces exactly the interleaving of one continuous run. *)
      mutable pending : (int * int) option;
    }
  | S_recorded of (int * int) list ref

type t = {
  mem : Addr_space.t;
  mutable thread_list : thread list;  (* reversed *)
  mutable thread_arr : thread array;
  hooks : hooks;
  timing : Timing.t;
  sched : sched_state;
  mutable syscall_handler : t -> int -> unit;
  mutable syscall_filter : (t -> int -> syscall_action) option;
  mutable stop_requested : bool;
  mutable ring0 : int64;
  mutable retired_total : int64;
  mutable record_schedule : bool;
  mutable schedule_rev : (int * int) list;
  mutable schedule_cut : bool;
  decode_cache : (int64, Insn.t * int) Hashtbl.t;
  mutable decode_generation : int;
  mutable timer : (int * int * Elfie_util.Rng.t) option;
  mutable group_exit_status : int option;
}

let fresh_hooks () =
  {
    on_ins = None;
    on_mem_read = None;
    on_mem_write = None;
    on_branch = None;
    on_marker = None;
    on_thread_start = None;
    on_thread_exit = None;
  }

let create ?(timing = Timing.default) scheduler =
  let sched =
    match scheduler with
    | Free { seed; quantum_min; quantum_max } ->
        S_free
          { rng = Elfie_util.Rng.create seed; quantum_min; quantum_max;
            pending = None }
    | Recorded slices -> S_recorded (ref slices)
  in
  {
    mem = Addr_space.create ();
    thread_list = [];
    thread_arr = [||];
    hooks = fresh_hooks ();
    timing = Timing.create timing;
    sched;
    syscall_handler = (fun _ _ -> failwith "Machine: no syscall handler installed");
    syscall_filter = None;
    stop_requested = false;
    ring0 = 0L;
    retired_total = 0L;
    record_schedule = false;
    schedule_rev = [];
    schedule_cut = false;
    decode_cache = Hashtbl.create 4096;
    decode_generation = -1;
    timer = None;
    group_exit_status = None;
  }

let mem t = t.mem
let hooks t = t.hooks
let timing t = t.timing
let set_syscall_handler t h = t.syscall_handler <- h
let set_syscall_filter t f = t.syscall_filter <- Some f

let add_thread t ctx =
  let tid = Array.length t.thread_arr in
  let th =
    {
      tid;
      ctx;
      state = Runnable;
      retired = 0L;
      cycles = 0L;
      counter_target = None;
      counter_fired = false;
      arm_retired = 0L;
      arm_cycles = 0L;
      mark_target = None;
      mark_retired = None;
      mark_cycles = 0L;
      timer_left = max_int;
    }
  in
  t.thread_list <- th :: t.thread_list;
  t.thread_arr <- Array.of_list (List.rev t.thread_list);
  (match t.timer with
  | Some (interval, _, rng) ->
      th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
  | None -> ());
  (match t.hooks.on_thread_start with Some f -> f tid | None -> ());
  tid

let thread t tid =
  if tid < 0 || tid >= Array.length t.thread_arr then
    invalid_arg (Printf.sprintf "Machine.thread: bad tid %d" tid);
  t.thread_arr.(tid)

let threads t = Array.to_list t.thread_arr

let live_thread_count t =
  Array.fold_left
    (fun n th -> match th.state with Runnable -> n + 1 | _ -> n)
    0 t.thread_arr

let exit_thread t tid ~status =
  let th = thread t tid in
  if th.state = Runnable then begin
    th.state <- Exited status;
    match t.hooks.on_thread_exit with Some f -> f tid status | None -> ()
  end

let exit_all t ~status =
  t.group_exit_status <- Some status;
  Array.iter (fun th -> if th.state = Runnable then exit_thread t th.tid ~status)
    t.thread_arr

let group_exit_status t = t.group_exit_status

let arm_counter t tid ~target =
  let th = thread t tid in
  th.counter_target <- Some target;
  th.arm_retired <- th.retired;
  th.arm_cycles <- th.cycles

let arm_mark t tid ~target =
  let th = thread t tid in
  th.mark_target <- Some target

let set_timer t ~interval ~cycles ~seed =
  let rng = Elfie_util.Rng.create seed in
  t.timer <- Some (interval, cycles, rng);
  Array.iter
    (fun th -> th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval)
    t.thread_arr

let request_stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested

let charge_ring0 t tid ~instructions ~cycles =
  let th = thread t tid in
  th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
  t.ring0 <- Int64.add t.ring0 (Int64.of_int instructions)

let ring0_retired t = t.ring0
let set_record_schedule t b = t.record_schedule <- b

let recorded_schedule t = List.rev t.schedule_rev
let cut_schedule t = t.schedule_cut <- true

let total_retired t = t.retired_total

let elapsed_cycles t =
  Array.fold_left (fun acc th -> max acc th.cycles) 0L t.thread_arr

let all_exited_cleanly t =
  Array.for_all (fun th -> th.state = Exited 0) t.thread_arr

(* --- Fetch with decode cache ------------------------------------------- *)

let max_ins_bytes = 16

let fetch t pc =
  let gen = Addr_space.generation t.mem in
  if gen <> t.decode_generation then begin
    Hashtbl.reset t.decode_cache;
    t.decode_generation <- gen
  end;
  match Hashtbl.find_opt t.decode_cache pc with
  | Some entry -> entry
  | None ->
      let buf = Addr_space.read_avail t.mem pc max_ins_bytes in
      let r = Elfie_util.Byteio.Reader.of_bytes buf in
      let ins =
        try Codec.decode r with
        | Codec.Invalid _ -> raise (Addr_space.Fault { addr = pc; access = Exec })
        | Elfie_util.Byteio.Truncated _ ->
            (* Instruction runs off the end of mapped memory. *)
            raise
              (Addr_space.Fault
                 {
                   addr = Int64.add pc (Int64.of_int (Bytes.length buf));
                   access = Exec;
                 })
      in
      let entry = (ins, Elfie_util.Byteio.Reader.pos r) in
      Hashtbl.replace t.decode_cache pc entry;
      entry

(* --- Instruction semantics --------------------------------------------- *)

let effective_address ctx (m : Insn.mem) =
  let base = match m.base with Some r -> Context.get ctx r | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul (Context.get ctx r) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.add (Int64.add base index) m.disp

let truncate_width width v =
  match width with
  | Insn.W8 -> Int64.logand v 0xffL
  | W16 -> Int64.logand v 0xffffL
  | W32 -> Int64.logand v 0xffff_ffffL
  | W64 -> v

let set_zf_sf (flags : Reg.flags) r =
  flags.zf <- r = 0L;
  flags.sf <- r < 0L

let exec_alu (flags : Reg.flags) op a b =
  match op with
  | Insn.Add ->
      let r = Int64.add a b in
      flags.cf <- Int64.unsigned_compare r a < 0;
      flags.ovf <- (a >= 0L && b >= 0L && r < 0L) || (a < 0L && b < 0L && r >= 0L);
      set_zf_sf flags r;
      Some r
  | Sub | Cmp ->
      let r = Int64.sub a b in
      flags.cf <- Int64.unsigned_compare a b < 0;
      flags.ovf <-
        ((a >= 0L && b < 0L && r < 0L) || (a < 0L && b >= 0L && r >= 0L));
      set_zf_sf flags r;
      if op = Sub then Some r else None
  | And | Test ->
      let r = Int64.logand a b in
      flags.cf <- false;
      flags.ovf <- false;
      set_zf_sf flags r;
      if op = And then Some r else None
  | Or ->
      let r = Int64.logor a b in
      flags.cf <- false;
      flags.ovf <- false;
      set_zf_sf flags r;
      Some r
  | Xor ->
      let r = Int64.logxor a b in
      flags.cf <- false;
      flags.ovf <- false;
      set_zf_sf flags r;
      Some r
  | Imul ->
      let r = Int64.mul a b in
      flags.cf <- false;
      flags.ovf <- false;
      set_zf_sf flags r;
      Some r

let exec_shift (flags : Reg.flags) op v n =
  if n = 0 then v
  else begin
    let r =
      match op with
      | Insn.Shl -> Int64.shift_left v n
      | Shr -> Int64.shift_right_logical v n
      | Sar -> Int64.shift_right v n
    in
    let last_out =
      match op with
      | Insn.Shl -> Int64.logand (Int64.shift_right_logical v (64 - n)) 1L
      | Shr | Sar -> Int64.logand (Int64.shift_right_logical v (n - 1)) 1L
    in
    flags.cf <- last_out = 1L;
    flags.ovf <- false;
    set_zf_sf flags r;
    r
  end

let eval_cond (flags : Reg.flags) = function
  | Insn.Eq -> flags.zf
  | Ne -> not flags.zf
  | Lt -> flags.sf <> flags.ovf
  | Ge -> flags.sf = flags.ovf
  | Le -> flags.zf || flags.sf <> flags.ovf
  | Gt -> (not flags.zf) && flags.sf = flags.ovf
  | Ult -> flags.cf
  | Uge -> not flags.cf

let float_lane_op op a b =
  let fa = Int64.float_of_bits a and fb = Int64.float_of_bits b in
  let r =
    match op with Insn.Vadd -> fa +. fb | Vmul -> fa *. fb | Vsub -> fa -. fb
  in
  Int64.bits_of_float r

(* Execute [ins] for thread [th]; RIP already points past it. *)
let execute t th pc ins =
  let ctx = th.ctx in
  let flags = ctx.Context.flags in
  let tid = th.tid in
  let cost = ref (Timing.ins_cost t.timing (Insn.classify ins)) in
  let mem_read addr width =
    (match t.hooks.on_mem_read with Some f -> f tid addr width | None -> ());
    cost := !cost + Timing.mem_cost t.timing addr;
    Addr_space.read t.mem addr width
  in
  let mem_write addr width v =
    (match t.hooks.on_mem_write with Some f -> f tid addr width | None -> ());
    cost := !cost + Timing.mem_cost t.timing addr;
    Addr_space.write t.mem addr width v
  in
  let push v =
    let sp = Int64.sub (Context.get ctx RSP) 8L in
    Context.set ctx RSP sp;
    mem_write sp 8 v
  in
  let pop () =
    let sp = Context.get ctx RSP in
    let v = mem_read sp 8 in
    Context.set ctx RSP (Int64.add sp 8L);
    v
  in
  let branch_to target taken =
    cost := !cost + Timing.branch_cost t.timing ~pc ~taken;
    (match t.hooks.on_branch with Some f -> f tid pc target taken | None -> ());
    if taken then ctx.Context.rip <- target
  in
  (match ins with
  | Insn.Mov_ri (r, v) -> Context.set ctx r v
  | Mov_rr (d, s) -> Context.set ctx d (Context.get ctx s)
  | Load (w, r, m) ->
      let v = mem_read (effective_address ctx m) (Insn.width_bytes w) in
      Context.set ctx r v
  | Store (w, m, r) ->
      let v = truncate_width w (Context.get ctx r) in
      mem_write (effective_address ctx m) (Insn.width_bytes w) v
  | Lea (r, m) -> Context.set ctx r (effective_address ctx m)
  | Alu_rr (op, d, s) -> (
      match exec_alu flags op (Context.get ctx d) (Context.get ctx s) with
      | Some r -> Context.set ctx d r
      | None -> ())
  | Alu_ri (op, d, imm) -> (
      match exec_alu flags op (Context.get ctx d) imm with
      | Some r -> Context.set ctx d r
      | None -> ())
  | Shift_ri (op, d, n) -> Context.set ctx d (exec_shift flags op (Context.get ctx d) n)
  | Neg d ->
      let v = Context.get ctx d in
      (match exec_alu flags Sub 0L v with
      | Some r -> Context.set ctx d r
      | None -> assert false)
  | Push r -> push (Context.get ctx r)
  | Pop r -> Context.set ctx r (pop ())
  | Jmp rel -> branch_to (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Jcc (c, rel) ->
      let taken = eval_cond flags c in
      branch_to (Int64.add ctx.Context.rip (Int64.of_int rel)) taken
  | Jmp_r r -> branch_to (Context.get ctx r) true
  | Jmp_m m ->
      let target = mem_read (effective_address ctx m) 8 in
      branch_to target true
  | Call rel ->
      push ctx.Context.rip;
      branch_to (Int64.add ctx.Context.rip (Int64.of_int rel)) true
  | Call_r r ->
      push ctx.Context.rip;
      branch_to (Context.get ctx r) true
  | Ret -> branch_to (pop ()) true
  | Syscall ->
      let action =
        match t.syscall_filter with
        | Some f -> f t tid
        | None -> Run_syscall
      in
      (match action with
      | Run_syscall -> t.syscall_handler t tid
      | Skip_syscall -> ())
  | Cpuid ->
      (* Vendor string "VX86" in RBX; leaves a recognisable marker. *)
      (match t.hooks.on_marker with Some f -> f tid ins | None -> ());
      Context.set ctx RAX 1L;
      Context.set ctx RBX 0x36385856L;
      Context.set ctx RCX 0L;
      Context.set ctx RDX 0L
  | Nop -> ()
  | Ssc_marker _ | Magic _ -> (
      match t.hooks.on_marker with Some f -> f tid ins | None -> ())
  | Pause -> cost := !cost + 10
  | Xchg (r, m) ->
      let addr = effective_address ctx m in
      let old = mem_read addr 8 in
      mem_write addr 8 (Context.get ctx r);
      Context.set ctx r old
  | Cmpxchg (m, r) ->
      let addr = effective_address ctx m in
      let old = mem_read addr 8 in
      if old = Context.get ctx RAX then begin
        mem_write addr 8 (Context.get ctx r);
        flags.zf <- true
      end
      else begin
        Context.set ctx RAX old;
        flags.zf <- false
      end
  | Ldctx r ->
      let img = Addr_space.read_bytes t.mem (Context.get ctx r) Context.xsave_size in
      Context.xrstor ctx img
  | Stctx r -> Addr_space.write_bytes t.mem (Context.get ctx r) (Context.xsave ctx)
  | Wrfsbase r -> ctx.Context.fs_base <- Context.get ctx r
  | Wrgsbase r -> ctx.Context.gs_base <- Context.get ctx r
  | Rdfsbase r -> Context.set ctx r ctx.Context.fs_base
  | Rdgsbase r -> Context.set ctx r ctx.Context.gs_base
  | Popf ->
      let fl = Reg.flags_of_word (pop ()) in
      flags.zf <- fl.zf;
      flags.sf <- fl.sf;
      flags.cf <- fl.cf;
      flags.ovf <- fl.ovf
  | Pushf -> push (Reg.flags_to_word flags)
  | Vload (x, m) ->
      let addr = effective_address ctx m in
      Context.set_xmm_lane ctx x 0 (mem_read addr 8);
      Context.set_xmm_lane ctx x 1 (mem_read (Int64.add addr 8L) 8)
  | Vstore (m, x) ->
      let addr = effective_address ctx m in
      mem_write addr 8 (Context.xmm_lane ctx x 0);
      mem_write (Int64.add addr 8L) 8 (Context.xmm_lane ctx x 1)
  | Vop_rr (op, d, s) ->
      Context.set_xmm_lane ctx d 0
        (float_lane_op op (Context.xmm_lane ctx d 0) (Context.xmm_lane ctx s 0));
      Context.set_xmm_lane ctx d 1
        (float_lane_op op (Context.xmm_lane ctx d 1) (Context.xmm_lane ctx s 1))
  | Hlt -> raise (Addr_space.Fault { addr = pc; access = Exec })
  | Ud2 -> raise (Addr_space.Fault { addr = pc; access = Exec }));
  th.cycles <- Int64.add th.cycles (Int64.of_int !cost)

let step t tid =
  let th = thread t tid in
  if th.state <> Runnable then invalid_arg "Machine.step: thread not runnable";
  let pc = th.ctx.Context.rip in
  match fetch t pc with
  | exception Addr_space.Fault { addr; access = _ } ->
      th.state <- Faulted (Page_fault { addr; access = Exec; pc })
  | ins, len -> (
      (match t.hooks.on_ins with Some f -> f tid pc ins | None -> ());
      th.ctx.Context.rip <- Int64.add pc (Int64.of_int len);
      match execute t th pc ins with
      | () ->
          th.retired <- Int64.add th.retired 1L;
          t.retired_total <- Int64.add t.retired_total 1L;
          (match t.timer with
          | Some (interval, cycles, rng) ->
              th.timer_left <- th.timer_left - 1;
              if th.timer_left <= 0 then begin
                th.cycles <- Int64.add th.cycles (Int64.of_int cycles);
                t.ring0 <- Int64.add t.ring0 (Int64.of_int cycles);
                th.timer_left <- (interval / 2) + Elfie_util.Rng.int rng interval
              end
          | None -> ());
          (match th.mark_target with
          | Some target when th.retired >= target ->
              th.mark_target <- None;
              th.mark_retired <- Some th.retired;
              th.mark_cycles <- th.cycles
          | Some _ | None -> ());
          (match th.counter_target with
          | Some target when th.retired >= target ->
              (* The counter reaches its count even when this very
                 instruction made the thread exit (e.g. a region ending
                 in exit_group). *)
              th.counter_fired <- true;
              if th.state = Runnable then exit_thread t tid ~status:0
          | Some _ | None -> ())
      | exception Addr_space.Fault { addr; access } -> (
          (* Ud2/Hlt reuse the fault exception with access=Exec, addr=pc. *)
          match ins with
          | Insn.Ud2 -> th.state <- Faulted (Invalid_opcode pc)
          | Hlt -> th.state <- Faulted (Privileged pc)
          | _ -> th.state <- Faulted (Page_fault { addr; access; pc })))

(* Run up to [n] instructions of [tid]; returns how many retired. *)
let run_quantum t tid n limit =
  let th = thread t tid in
  let executed = ref 0 in
  while
    th.state = Runnable && !executed < n && (not t.stop_requested)
    && (match limit with Some l -> total_retired t < l | None -> true)
  do
    step t tid;
    incr executed
  done;
  !executed

let record_slice t tid n =
  if t.record_schedule && n > 0 then begin
    let merged =
      match t.schedule_rev with
      | (tid', n') :: rest when tid' = tid && not t.schedule_cut ->
          (tid, n + n') :: rest
      | rest -> (tid, n) :: rest
    in
    t.schedule_cut <- false;
    t.schedule_rev <- merged
  end

let runnable_tids t =
  let out = ref [] in
  Array.iter (fun th -> if th.state = Runnable then out := th.tid :: !out) t.thread_arr;
  List.rev !out

let run ?max_ins t =
  let continue_ () =
    (not t.stop_requested)
    && (match max_ins with Some l -> total_retired t < l | None -> true)
  in
  match t.sched with
  | S_free s ->
      let rec loop () =
        if continue_ () then begin
          match runnable_tids t with
          | [] -> ()
          | tids ->
              let tid, quantum =
                match s.pending with
                | Some (tid, left) when (thread t tid).state = Runnable ->
                    s.pending <- None;
                    (tid, left)
                | Some _ | None ->
                    let tid =
                      List.nth tids (Elfie_util.Rng.int s.rng (List.length tids))
                    in
                    let quantum =
                      s.quantum_min
                      + Elfie_util.Rng.int s.rng (s.quantum_max - s.quantum_min + 1)
                    in
                    (tid, quantum)
              in
              let n = run_quantum t tid quantum max_ins in
              record_slice t tid n;
              if n < quantum && (thread t tid).state = Runnable then
                s.pending <- Some (tid, quantum - n);
              loop ()
        end
      in
      loop ()
  | S_recorded slices ->
      let rec loop () =
        if continue_ () then
          match !slices with
          | [] -> ()
          | (tid, n) :: rest ->
              slices := rest;
              let th = thread t tid in
              if th.state = Runnable then begin
                let executed = run_quantum t tid n max_ins in
                ignore executed
              end;
              loop ()
      in
      loop ()
