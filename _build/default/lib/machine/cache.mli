(** Set-associative cache model with LRU replacement.

    Shared by the machine's built-in "hardware" timing model and by the
    Sniper/CoreSim/gem5 simulator substrates. Purely a hit/miss model:
    no data is stored, only tags. *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;  (** power of two *)
}

val config : size_bytes:int -> ways:int -> line_bytes:int -> config

type t

val create : config -> t

(** [access t addr] returns [true] on hit and updates LRU state;
    on miss the line is filled. *)
val access : t -> int64 -> bool

val hits : t -> int
val misses : t -> int

(** Distinct lines ever touched — a data-footprint proxy. *)
val footprint_lines : t -> int

val reset_stats : t -> unit

(** Drop all lines (e.g. a TLB flush perturbation), keeping stats. *)
val flush : t -> unit
