lib/machine/machine.mli: Addr_space Context Elfie_isa Format Timing
