lib/machine/context.mli: Elfie_isa Format
