lib/machine/cache.mli:
