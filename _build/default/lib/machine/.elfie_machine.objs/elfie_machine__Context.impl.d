lib/machine/context.ml: Array Bytes Elfie_isa Elfie_util Format List Reg
