lib/machine/addr_space.ml: Bytes Char Hashtbl Int64 List
