lib/machine/timing.mli: Cache Elfie_isa
