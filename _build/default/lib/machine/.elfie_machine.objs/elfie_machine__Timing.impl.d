lib/machine/timing.ml: Bytes Cache Char Elfie_isa Insn Int64
