lib/machine/cache.ml: Array Hashtbl Int64
