lib/machine/addr_space.mli:
