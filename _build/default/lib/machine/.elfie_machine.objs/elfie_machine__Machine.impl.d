lib/machine/machine.ml: Addr_space Array Bytes Codec Context Elfie_isa Elfie_util Format Hashtbl Insn Int64 List Printf Reg Timing
