type access = Read | Write | Exec

exception Fault of { addr : int64; access : access }

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = Int64.of_int (page_size - 1)
let page_base addr = Int64.logand addr (Int64.lognot page_mask)
let page_number addr = Int64.shift_right_logical addr page_bits
let offset_in_page addr = Int64.to_int (Int64.logand addr page_mask)

type t = { pages : (int64, bytes) Hashtbl.t; mutable generation : int }

let create () = { pages = Hashtbl.create 256; generation = 0 }

let find t addr = Hashtbl.find_opt t.pages (page_number addr)
let is_mapped t addr = Hashtbl.mem t.pages (page_number addr)

(* Page numbers covering [addr, addr+len). *)
let range_pages addr len =
  if len <= 0 then []
  else
    let first = page_number addr in
    let last = page_number (Int64.add addr (Int64.of_int (len - 1))) in
    let rec go n acc = if n < first then acc else go (Int64.sub n 1L) (n :: acc) in
    go last []

let map t ~addr ~len =
  t.generation <- t.generation + 1;
  List.iter
    (fun n ->
      if not (Hashtbl.mem t.pages n) then
        Hashtbl.replace t.pages n (Bytes.make page_size '\000'))
    (range_pages addr len)

let unmap t ~addr ~len =
  t.generation <- t.generation + 1;
  List.iter (Hashtbl.remove t.pages) (range_pages addr len)

let any_mapped t ~addr ~len =
  List.exists (Hashtbl.mem t.pages) (range_pages addr len)

let read_u8 t addr =
  match find t addr with
  | Some page -> Char.code (Bytes.get page (offset_in_page addr))
  | None -> raise (Fault { addr; access = Read })

let write_u8 t addr v =
  match find t addr with
  | Some page -> Bytes.set page (offset_in_page addr) (Char.chr (v land 0xff))
  | None -> raise (Fault { addr; access = Write })

(* Fast paths for aligned accesses fully inside one page. *)
let read t addr width =
  let off = offset_in_page addr in
  match find t addr with
  | Some page when off + width <= page_size -> (
      match width with
      | 1 -> Int64.of_int (Char.code (Bytes.get page off))
      | 2 -> Int64.of_int (Bytes.get_uint16_le page off)
      | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le page off)) 0xffff_ffffL
      | 8 -> Bytes.get_int64_le page off
      | _ -> invalid_arg "Addr_space.read: width")
  | _ ->
      let rec go i acc =
        if i = width then acc
        else
          let b = read_u8 t (Int64.add addr (Int64.of_int i)) in
          go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int b) (8 * i)))
      in
      go 0 0L

let write t addr width v =
  let off = offset_in_page addr in
  match find t addr with
  | Some page when off + width <= page_size -> (
      match width with
      | 1 -> Bytes.set_uint8 page off (Int64.to_int (Int64.logand v 0xffL))
      | 2 -> Bytes.set_uint16_le page off (Int64.to_int (Int64.logand v 0xffffL))
      | 4 -> Bytes.set_int32_le page off (Int64.to_int32 v)
      | 8 -> Bytes.set_int64_le page off v
      | _ -> invalid_arg "Addr_space.write: width")
  | _ ->
      for i = 0 to width - 1 do
        let b = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL) in
        write_u8 t (Int64.add addr (Int64.of_int i)) b
      done

let read_bytes t addr len =
  let out = Bytes.create len in
  let rec go i =
    if i < len then begin
      let a = Int64.add addr (Int64.of_int i) in
      match find t a with
      | None -> raise (Fault { addr = a; access = Read })
      | Some page ->
          let off = offset_in_page a in
          let n = min (len - i) (page_size - off) in
          Bytes.blit page off out i n;
          go (i + n)
    end
  in
  go 0;
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let rec go i =
    if i < len then begin
      let a = Int64.add addr (Int64.of_int i) in
      match find t a with
      | None -> raise (Fault { addr = a; access = Write })
      | Some page ->
          let off = offset_in_page a in
          let n = min (len - i) (page_size - off) in
          Bytes.blit src i page off n;
          go (i + n)
    end
  in
  go 0

let store t addr src =
  map t ~addr ~len:(Bytes.length src);
  write_bytes t addr src

let read_avail t addr len =
  let rec usable i =
    if i >= len then len
    else
      let a = Int64.add addr (Int64.of_int i) in
      if is_mapped t a then usable (i + (page_size - offset_in_page a)) else i
  in
  let n = min len (usable 0) in
  if n <= 0 then raise (Fault { addr; access = Exec });
  read_bytes t addr n

let pages t =
  let all =
    Hashtbl.fold
      (fun n page acc -> (Int64.shift_left n page_bits, Bytes.copy page) :: acc)
      t.pages []
  in
  List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) all

let page_count t = Hashtbl.length t.pages

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun n page -> Hashtbl.replace pages n (Bytes.copy page)) t.pages;
  { pages; generation = t.generation }

let generation t = t.generation
