type config = { size_bytes : int; ways : int; line_bytes : int }

let config ~size_bytes ~ways ~line_bytes =
  if line_bytes land (line_bytes - 1) <> 0 then invalid_arg "Cache: line size";
  if size_bytes mod (ways * line_bytes) <> 0 then invalid_arg "Cache: geometry";
  { size_bytes; ways; line_bytes }

type t = {
  cfg : config;
  sets : int;
  line_bits : int;
  tags : int64 array;  (* sets * ways, -1L = invalid *)
  lru : int array;  (* age per way; 0 = most recent *)
  mutable hits : int;
  mutable misses : int;
  touched : (int64, unit) Hashtbl.t;
}

let create cfg =
  let sets = cfg.size_bytes / (cfg.ways * cfg.line_bytes) in
  let line_bits =
    let rec go n b = if n = 1 then b else go (n lsr 1) (b + 1) in
    go cfg.line_bytes 0
  in
  {
    cfg;
    sets;
    line_bits;
    tags = Array.make (sets * cfg.ways) (-1L);
    lru = Array.make (sets * cfg.ways) 0;
    hits = 0;
    misses = 0;
    touched = Hashtbl.create 1024;
  }

let access t addr =
  let line = Int64.shift_right_logical addr t.line_bits in
  if not (Hashtbl.mem t.touched line) then Hashtbl.replace t.touched line ();
  let set = Int64.to_int (Int64.rem line (Int64.of_int t.sets)) in
  let base = set * t.cfg.ways in
  let hit_way = ref (-1) in
  for w = 0 to t.cfg.ways - 1 do
    if t.tags.(base + w) = line then hit_way := w
  done;
  if !hit_way >= 0 then begin
    t.hits <- t.hits + 1;
    let age = t.lru.(base + !hit_way) in
    for w = 0 to t.cfg.ways - 1 do
      if t.lru.(base + w) < age then t.lru.(base + w) <- t.lru.(base + w) + 1
    done;
    t.lru.(base + !hit_way) <- 0;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict the oldest way. *)
    let victim = ref 0 in
    for w = 1 to t.cfg.ways - 1 do
      if t.lru.(base + w) > t.lru.(base + !victim) then victim := w
    done;
    for w = 0 to t.cfg.ways - 1 do
      t.lru.(base + w) <- t.lru.(base + w) + 1
    done;
    t.tags.(base + !victim) <- line;
    t.lru.(base + !victim) <- 0;
    false
  end

let hits t = t.hits
let misses t = t.misses
let footprint_lines t = Hashtbl.length t.touched

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  Hashtbl.reset t.touched

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1L)
