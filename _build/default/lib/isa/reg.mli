(** VX86 register file description.

    VX86 is this project's x86-64 stand-in: 16 general-purpose 64-bit
    registers with the x86 names and ordinal encoding, a flags register,
    FS/GS segment bases, and 16 128-bit vector registers backing the
    XSAVE-style extended state. *)

type gpr =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

(** Encoding ordinal, 0..15, matching x86-64 ModRM numbering. *)
val gpr_index : gpr -> int

(** Inverse of [gpr_index]; raises [Invalid_argument] outside 0..15. *)
val gpr_of_index : int -> gpr

val all_gprs : gpr list
val gpr_name : gpr -> string

(** Parse a register name such as ["rax"] or ["r13"]. *)
val gpr_of_name : string -> gpr option

val pp_gpr : Format.formatter -> gpr -> unit

(** Number of vector (XMM) registers. *)
val xmm_count : int

(** Status flags, stored unpacked for fast interpretation. *)
type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable ovf : bool }

val fresh_flags : unit -> flags
val copy_flags : flags -> flags

(** Pack to the low bits of an RFLAGS-like word (ZF=bit 6, SF=bit 7,
    CF=bit 0, OF=bit 11, reserved bit 1 always set, as on x86). *)
val flags_to_word : flags -> int64

val flags_of_word : int64 -> flags
