type label = int

type item =
  | Fixed of Insn.t
  | Jump of [ `Jmp | `Call ] * label
  | Branch of Insn.cond * label
  | Mov_label of Reg.gpr * label
  | Jmp_mem_label of label
  | Quad_label of label
  | Raw of bytes
  | Align of int

type t = {
  mutable items : item list;  (* reversed *)
  mutable item_count : int;
  mutable next_label : int;
  bindings : (label, int) Hashtbl.t;  (* label -> item index it precedes *)
  names : (label, string) Hashtbl.t;
  mutable named : label list;  (* reversed definition order *)
}

let create () =
  {
    items = [];
    item_count = 0;
    next_label = 0;
    bindings = Hashtbl.create 64;
    names = Hashtbl.create 16;
    named = [];
  }

let new_label ?name b =
  let l = b.next_label in
  b.next_label <- l + 1;
  (match name with
  | Some n ->
      Hashtbl.replace b.names l n;
      b.named <- l :: b.named
  | None -> ());
  l

let bind b l =
  if Hashtbl.mem b.bindings l then failwith "Builder.bind: label bound twice";
  Hashtbl.replace b.bindings l b.item_count

let here ?name b =
  let l = new_label ?name b in
  bind b l;
  l

let push b item =
  b.items <- item :: b.items;
  b.item_count <- b.item_count + 1

let ins b i = push b (Fixed i)
let inss b is = List.iter (ins b) is
let jmp b l = push b (Jump (`Jmp, l))
let call b l = push b (Jump (`Call, l))
let jcc b c l = push b (Branch (c, l))
let mov_label b r l = push b (Mov_label (r, l))
let jmp_mem b l = push b (Jmp_mem_label l)
let quad_label b l = push b (Quad_label l)
let byte b v = push b (Raw (Bytes.make 1 (Char.chr (v land 0xff))))

let quad b v =
  let w = Elfie_util.Byteio.Writer.create ~capacity:8 () in
  Elfie_util.Byteio.Writer.u64 w v;
  push b (Raw (Elfie_util.Byteio.Writer.contents w))

let raw b bts = push b (Raw bts)
let zeros b n = push b (Raw (Bytes.make n '\000'))
let align b n = push b (Align n)

(* Encoded sizes of the label-referencing pseudo-items are those of their
   concrete forms with dummy operands. *)
let jmp_len = lazy (Codec.length (Insn.Jmp 0))
let call_len = lazy (Codec.length (Insn.Call 0))
let branch_len = lazy (Codec.length (Insn.Jcc (Insn.Eq, 0)))
let mov_label_len = lazy (Codec.length (Insn.Mov_ri (Reg.RAX, 0L)))
let jmp_mem_len = lazy (Codec.length (Insn.Jmp_m (Insn.mem_abs 0L)))

let item_size offset = function
  | Fixed i -> Codec.length i
  | Jump (`Jmp, _) -> Lazy.force jmp_len
  | Jump (`Call, _) -> Lazy.force call_len
  | Branch _ -> Lazy.force branch_len
  | Mov_label _ -> Lazy.force mov_label_len
  | Jmp_mem_label _ -> Lazy.force jmp_mem_len
  | Quad_label _ -> 8
  | Raw bts -> Bytes.length bts
  | Align n ->
      if n <= 0 || n land (n - 1) <> 0 then failwith "Builder: bad alignment";
      (n - (offset land (n - 1))) land (n - 1)

type program = {
  base : int64;
  code : bytes;
  symbols : (string * int64) list;
}

(* Offsets of each item, plus total size. *)
let layout b =
  let items = Array.of_list (List.rev b.items) in
  let offsets = Array.make (Array.length items + 1) 0 in
  Array.iteri
    (fun i item -> offsets.(i + 1) <- offsets.(i) + item_size offsets.(i) item)
    items;
  (items, offsets)

let label_offset b offsets l =
  match Hashtbl.find_opt b.bindings l with
  | Some idx -> offsets.(idx)
  | None ->
      let name =
        match Hashtbl.find_opt b.names l with Some n -> n | None -> string_of_int l
      in
      failwith (Printf.sprintf "Builder.assemble: unbound label %s" name)

let assemble b ~base =
  let items, offsets = layout b in
  let w = Elfie_util.Byteio.Writer.create ~capacity:(offsets.(Array.length items)) () in
  let addr_of l = Int64.add base (Int64.of_int (label_offset b offsets l)) in
  Array.iteri
    (fun i item ->
      let next = offsets.(i + 1) in
      (match item with
      | Fixed ins -> Codec.encode w ins
      | Jump (kind, l) ->
          let rel = label_offset b offsets l - next in
          Codec.encode w (match kind with `Jmp -> Insn.Jmp rel | `Call -> Insn.Call rel)
      | Branch (c, l) ->
          let rel = label_offset b offsets l - next in
          Codec.encode w (Insn.Jcc (c, rel))
      | Mov_label (r, l) -> Codec.encode w (Insn.Mov_ri (r, addr_of l))
      | Jmp_mem_label l -> Codec.encode w (Insn.Jmp_m (Insn.mem_abs (addr_of l)))
      | Quad_label l -> Elfie_util.Byteio.Writer.u64 w (addr_of l)
      | Raw bts -> Elfie_util.Byteio.Writer.bytes w bts
      | Align _ -> Elfie_util.Byteio.Writer.pad_to w next);
      assert (Elfie_util.Byteio.Writer.length w = next))
    items;
  let symbols =
    List.rev_map
      (fun l -> (Hashtbl.find b.names l, addr_of l))
      (List.filter (Hashtbl.mem b.bindings) b.named)
  in
  { base; code = Elfie_util.Byteio.Writer.contents w; symbols }

let resolve b program l =
  let _, offsets = layout b in
  Int64.add program.base (Int64.of_int (label_offset b offsets l))
