open Elfie_util

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* Opcode assignments. Stable: pinballs and ELFies persist these bytes. *)
let op_mov_ri = 0x01
and op_mov_rr = 0x02
and op_load = 0x03
and op_store = 0x04
and op_lea = 0x05
and op_alu_rr = 0x06
and op_alu_ri = 0x07
and op_shift_ri = 0x08
and op_neg = 0x09
and op_push = 0x0a
and op_pop = 0x0b
and op_jmp = 0x0c
and op_jcc = 0x0d
and op_jmp_r = 0x0e
and op_call = 0x0f
and op_call_r = 0x10
and op_ret = 0x11
and op_syscall = 0x12
and op_cpuid = 0x13
and op_nop = 0x14
and op_ssc = 0x15
and op_magic = 0x16
and op_pause = 0x17
and op_xchg = 0x18
and op_cmpxchg = 0x19
and op_ldctx = 0x1a
and op_stctx = 0x1b
and op_wrfsbase = 0x1c
and op_wrgsbase = 0x1d
and op_rdfsbase = 0x1e
and op_rdgsbase = 0x1f
and op_popf = 0x20
and op_pushf = 0x21
and op_vload = 0x22
and op_vstore = 0x23
and op_vop_rr = 0x24
and op_hlt = 0x25
and op_ud2 = 0x26
and op_jmp_m = 0x27

let width_code = function Insn.W8 -> 0 | W16 -> 1 | W32 -> 2 | W64 -> 3

let width_of_code = function
  | 0 -> Insn.W8
  | 1 -> W16
  | 2 -> W32
  | 3 -> W64
  | c -> invalid "width code %d" c

let alu_code = function
  | Insn.Add -> 0
  | Sub -> 1
  | And -> 2
  | Or -> 3
  | Xor -> 4
  | Imul -> 5
  | Cmp -> 6
  | Test -> 7

let alu_of_code = function
  | 0 -> Insn.Add
  | 1 -> Sub
  | 2 -> And
  | 3 -> Or
  | 4 -> Xor
  | 5 -> Imul
  | 6 -> Cmp
  | 7 -> Test
  | c -> invalid "alu code %d" c

let shift_code = function Insn.Shl -> 0 | Shr -> 1 | Sar -> 2

let shift_of_code = function
  | 0 -> Insn.Shl
  | 1 -> Shr
  | 2 -> Sar
  | c -> invalid "shift code %d" c

let cond_code = function
  | Insn.Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Le -> 4
  | Gt -> 5
  | Ult -> 6
  | Uge -> 7

let cond_of_code = function
  | 0 -> Insn.Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Ge
  | 4 -> Le
  | 5 -> Gt
  | 6 -> Ult
  | 7 -> Uge
  | c -> invalid "cond code %d" c

let vop_code = function Insn.Vadd -> 0 | Vmul -> 1 | Vsub -> 2

let vop_of_code = function
  | 0 -> Insn.Vadd
  | 1 -> Vmul
  | 2 -> Vsub
  | c -> invalid "vop code %d" c

let scale_log2 = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | s -> invalid_arg (Printf.sprintf "Codec: bad scale %d" s)

let gpr w r = Byteio.Writer.u8 w (Reg.gpr_index r)

let xmm w x =
  if x < 0 || x >= Reg.xmm_count then
    invalid_arg (Printf.sprintf "Codec: bad xmm %d" x);
  Byteio.Writer.u8 w x

let encode_mem w (m : Insn.mem) =
  let flag =
    (match m.base with Some _ -> 1 | None -> 0)
    lor (match m.index with Some _ -> 2 | None -> 0)
    lor (scale_log2 m.scale lsl 2)
  in
  Byteio.Writer.u8 w flag;
  (match m.base with Some b -> gpr w b | None -> ());
  (match m.index with Some i -> gpr w i | None -> ());
  Byteio.Writer.u64 w m.disp

let decode_gpr r =
  let i = Byteio.Reader.u8 r in
  if i > 15 then invalid "gpr index %d" i;
  Reg.gpr_of_index i

let decode_xmm r =
  let i = Byteio.Reader.u8 r in
  if i >= Reg.xmm_count then invalid "xmm index %d" i;
  i

let decode_mem r : Insn.mem =
  let flag = Byteio.Reader.u8 r in
  let base = if flag land 1 <> 0 then Some (decode_gpr r) else None in
  let index = if flag land 2 <> 0 then Some (decode_gpr r) else None in
  let scale = 1 lsl ((flag lsr 2) land 3) in
  let disp = Byteio.Reader.u64 r in
  { base; index; scale; disp }

let imm32_ok v = v >= -0x8000_0000L && v <= 0x7fff_ffffL

let encode w (ins : Insn.t) =
  let u8 = Byteio.Writer.u8 w in
  let i32 = Byteio.Writer.i32 w in
  match ins with
  | Mov_ri (r, v) ->
      u8 op_mov_ri;
      gpr w r;
      Byteio.Writer.u64 w v
  | Mov_rr (d, s) ->
      u8 op_mov_rr;
      gpr w d;
      gpr w s
  | Load (wd, r, m) ->
      u8 op_load;
      u8 (width_code wd);
      gpr w r;
      encode_mem w m
  | Store (wd, m, r) ->
      u8 op_store;
      u8 (width_code wd);
      encode_mem w m;
      gpr w r
  | Lea (r, m) ->
      u8 op_lea;
      gpr w r;
      encode_mem w m
  | Alu_rr (op, d, s) ->
      u8 op_alu_rr;
      u8 (alu_code op);
      gpr w d;
      gpr w s
  | Alu_ri (op, d, v) ->
      if not (imm32_ok v) then
        invalid_arg (Printf.sprintf "Codec: imm32 out of range: %Ld" v);
      u8 op_alu_ri;
      u8 (alu_code op);
      gpr w d;
      i32 (Int64.to_int v)
  | Shift_ri (op, d, n) ->
      if n < 0 || n > 63 then invalid_arg "Codec: shift amount";
      u8 op_shift_ri;
      u8 (shift_code op);
      gpr w d;
      u8 n
  | Neg r ->
      u8 op_neg;
      gpr w r
  | Push r ->
      u8 op_push;
      gpr w r
  | Pop r ->
      u8 op_pop;
      gpr w r
  | Jmp rel ->
      u8 op_jmp;
      i32 rel
  | Jcc (c, rel) ->
      u8 op_jcc;
      u8 (cond_code c);
      i32 rel
  | Jmp_r r ->
      u8 op_jmp_r;
      gpr w r
  | Jmp_m m ->
      u8 op_jmp_m;
      encode_mem w m
  | Call rel ->
      u8 op_call;
      i32 rel
  | Call_r r ->
      u8 op_call_r;
      gpr w r
  | Ret -> u8 op_ret
  | Syscall -> u8 op_syscall
  | Cpuid -> u8 op_cpuid
  | Nop -> u8 op_nop
  | Ssc_marker v ->
      if v < 0L || v > 0xffff_ffffL then invalid_arg "Codec: ssc payload";
      u8 op_ssc;
      Byteio.Writer.u32 w (Int64.to_int v)
  | Magic n ->
      if n < 0 || n > 255 then invalid_arg "Codec: magic code";
      u8 op_magic;
      u8 n
  | Pause -> u8 op_pause
  | Xchg (r, m) ->
      u8 op_xchg;
      gpr w r;
      encode_mem w m
  | Cmpxchg (m, r) ->
      u8 op_cmpxchg;
      encode_mem w m;
      gpr w r
  | Ldctx r ->
      u8 op_ldctx;
      gpr w r
  | Stctx r ->
      u8 op_stctx;
      gpr w r
  | Wrfsbase r ->
      u8 op_wrfsbase;
      gpr w r
  | Wrgsbase r ->
      u8 op_wrgsbase;
      gpr w r
  | Rdfsbase r ->
      u8 op_rdfsbase;
      gpr w r
  | Rdgsbase r ->
      u8 op_rdgsbase;
      gpr w r
  | Popf -> u8 op_popf
  | Pushf -> u8 op_pushf
  | Vload (x, m) ->
      u8 op_vload;
      xmm w x;
      encode_mem w m
  | Vstore (m, x) ->
      u8 op_vstore;
      encode_mem w m;
      xmm w x
  | Vop_rr (op, d, s) ->
      u8 op_vop_rr;
      u8 (vop_code op);
      xmm w d;
      xmm w s
  | Hlt -> u8 op_hlt
  | Ud2 -> u8 op_ud2

let encode_bytes ins =
  let w = Byteio.Writer.create ~capacity:16 () in
  encode w ins;
  Byteio.Writer.contents w

let length ins = Bytes.length (encode_bytes ins)

let decode r : Insn.t =
  let u8 () = Byteio.Reader.u8 r in
  let i32 () = Byteio.Reader.i32 r in
  let op = u8 () in
  if op = op_mov_ri then
    let d = decode_gpr r in
    Mov_ri (d, Byteio.Reader.u64 r)
  else if op = op_mov_rr then
    let d = decode_gpr r in
    Mov_rr (d, decode_gpr r)
  else if op = op_load then
    let wd = width_of_code (u8 ()) in
    let d = decode_gpr r in
    Load (wd, d, decode_mem r)
  else if op = op_store then
    let wd = width_of_code (u8 ()) in
    let m = decode_mem r in
    Store (wd, m, decode_gpr r)
  else if op = op_lea then
    let d = decode_gpr r in
    Lea (d, decode_mem r)
  else if op = op_alu_rr then
    let a = alu_of_code (u8 ()) in
    let d = decode_gpr r in
    Alu_rr (a, d, decode_gpr r)
  else if op = op_alu_ri then
    let a = alu_of_code (u8 ()) in
    let d = decode_gpr r in
    Alu_ri (a, d, Int64.of_int (i32 ()))
  else if op = op_shift_ri then
    let s = shift_of_code (u8 ()) in
    let d = decode_gpr r in
    Shift_ri (s, d, u8 ())
  else if op = op_neg then Neg (decode_gpr r)
  else if op = op_push then Push (decode_gpr r)
  else if op = op_pop then Pop (decode_gpr r)
  else if op = op_jmp then Jmp (i32 ())
  else if op = op_jcc then
    let c = cond_of_code (u8 ()) in
    Jcc (c, i32 ())
  else if op = op_jmp_r then Jmp_r (decode_gpr r)
  else if op = op_jmp_m then Jmp_m (decode_mem r)
  else if op = op_call then Call (i32 ())
  else if op = op_call_r then Call_r (decode_gpr r)
  else if op = op_ret then Ret
  else if op = op_syscall then Syscall
  else if op = op_cpuid then Cpuid
  else if op = op_nop then Nop
  else if op = op_ssc then Ssc_marker (Int64.of_int (Byteio.Reader.u32 r))
  else if op = op_magic then Magic (u8 ())
  else if op = op_pause then Pause
  else if op = op_xchg then
    let g = decode_gpr r in
    Xchg (g, decode_mem r)
  else if op = op_cmpxchg then
    let m = decode_mem r in
    Cmpxchg (m, decode_gpr r)
  else if op = op_ldctx then Ldctx (decode_gpr r)
  else if op = op_stctx then Stctx (decode_gpr r)
  else if op = op_wrfsbase then Wrfsbase (decode_gpr r)
  else if op = op_wrgsbase then Wrgsbase (decode_gpr r)
  else if op = op_rdfsbase then Rdfsbase (decode_gpr r)
  else if op = op_rdgsbase then Rdgsbase (decode_gpr r)
  else if op = op_popf then Popf
  else if op = op_pushf then Pushf
  else if op = op_vload then
    let x = decode_xmm r in
    Vload (x, decode_mem r)
  else if op = op_vstore then
    let m = decode_mem r in
    Vstore (m, decode_xmm r)
  else if op = op_vop_rr then
    let v = vop_of_code (u8 ()) in
    let d = decode_xmm r in
    Vop_rr (v, d, decode_xmm r)
  else if op = op_hlt then Hlt
  else if op = op_ud2 then Ud2
  else invalid "unknown opcode 0x%02x" op

let decode_one buf off =
  let r = Byteio.Reader.of_bytes buf in
  Byteio.Reader.seek r off;
  let ins = decode r in
  (ins, Byteio.Reader.pos r - off)

let disassemble buf ~off ~count =
  let rec go off count acc =
    if count = 0 || off >= Bytes.length buf then List.rev acc
    else
      match decode_one buf off with
      | ins, len -> go (off + len) (count - 1) ((off, ins) :: acc)
      | exception (Invalid _ | Byteio.Truncated _) -> List.rev acc
  in
  go off count []
