type gpr =
  | RAX
  | RCX
  | RDX
  | RBX
  | RSP
  | RBP
  | RSI
  | RDI
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all_gprs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let gpr_index = function
  | RAX -> 0
  | RCX -> 1
  | RDX -> 2
  | RBX -> 3
  | RSP -> 4
  | RBP -> 5
  | RSI -> 6
  | RDI -> 7
  | R8 -> 8
  | R9 -> 9
  | R10 -> 10
  | R11 -> 11
  | R12 -> 12
  | R13 -> 13
  | R14 -> 14
  | R15 -> 15

let gpr_table = Array.of_list all_gprs

let gpr_of_index i =
  if i < 0 || i > 15 then invalid_arg (Printf.sprintf "Reg.gpr_of_index: %d" i);
  gpr_table.(i)

let gpr_name = function
  | RAX -> "rax"
  | RCX -> "rcx"
  | RDX -> "rdx"
  | RBX -> "rbx"
  | RSP -> "rsp"
  | RBP -> "rbp"
  | RSI -> "rsi"
  | RDI -> "rdi"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

let gpr_of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun r -> gpr_name r = s) all_gprs

let pp_gpr fmt r = Format.pp_print_string fmt (gpr_name r)
let xmm_count = 16

type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable ovf : bool }

let fresh_flags () = { zf = false; sf = false; cf = false; ovf = false }
let copy_flags f = { zf = f.zf; sf = f.sf; cf = f.cf; ovf = f.ovf }

let flags_to_word f =
  let bit b n = if b then Int64.shift_left 1L n else 0L in
  List.fold_left Int64.logor 2L
    [ bit f.cf 0; bit f.zf 6; bit f.sf 7; bit f.ovf 11 ]

let flags_of_word w =
  let bit n = Int64.logand (Int64.shift_right_logical w n) 1L = 1L in
  { cf = bit 0; zf = bit 6; sf = bit 7; ovf = bit 11 }
