lib/isa/codec.ml: Byteio Bytes Elfie_util Insn Int64 List Printf Reg
