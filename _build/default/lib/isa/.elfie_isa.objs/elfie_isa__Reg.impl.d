lib/isa/reg.ml: Array Format Int64 List Printf String
