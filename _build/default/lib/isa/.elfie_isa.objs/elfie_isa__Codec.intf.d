lib/isa/codec.mli: Elfie_util Insn
