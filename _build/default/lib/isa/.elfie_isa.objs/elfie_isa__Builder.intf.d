lib/isa/builder.mli: Insn Reg
