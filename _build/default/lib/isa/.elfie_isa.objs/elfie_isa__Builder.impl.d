lib/isa/builder.ml: Array Bytes Char Codec Elfie_util Hashtbl Insn Int64 Lazy List Printf Reg
