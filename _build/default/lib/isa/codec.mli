(** Binary encoding and decoding of VX86 instructions.

    The encoding is variable-length (1 to 14 bytes), little-endian, and
    self-synchronising only from instruction starts — like x86. Encoding
    then decoding is the identity on every well-formed instruction
    (property-tested), which is what lets pinball memory images, ELFie
    text sections and the interpreter all share one byte-level format. *)

(** Raised by {!decode} on an unknown opcode or malformed operand; the
    machine turns this into an invalid-opcode fault. *)
exception Invalid of string

val encode : Elfie_util.Byteio.Writer.t -> Insn.t -> unit
val encode_bytes : Insn.t -> bytes

(** Encoded length in bytes of an instruction. *)
val length : Insn.t -> int

(** Decode one instruction at the reader's cursor, advancing it. *)
val decode : Elfie_util.Byteio.Reader.t -> Insn.t

(** [decode_one buf off] decodes the instruction at [off], returning it
    with its encoded length. *)
val decode_one : bytes -> int -> Insn.t * int

(** Disassemble [n] instructions starting at [off], for debugging and
    the [objdump]-style CLI. Stops early at a decode error. *)
val disassemble : bytes -> off:int -> count:int -> (int * Insn.t) list
