(** Program builder: an assembler eDSL with labels.

    Workload programs, ELFie startup code and callback stubs are all
    emitted through this module. Instructions are appended sequentially;
    forward references go through {!type:label}s that a two-pass
    assembly resolves to concrete displacements and absolute addresses.

    Instruction encodings have form-determined lengths, so one sizing
    pass suffices before emission. *)

type label
type t

val create : unit -> t

(** Fresh, unbound label. [name]d labels become symbols of the
    assembled program. *)
val new_label : ?name:string -> t -> label

(** Bind [label] to the current position. Binding twice is an error. *)
val bind : t -> label -> unit

(** Convenience: fresh label bound at the current position. *)
val here : ?name:string -> t -> label

(** Append a concrete instruction (its branch displacements, if any, are
    taken as already computed). *)
val ins : t -> Insn.t -> unit

(** Append several instructions. *)
val inss : t -> Insn.t list -> unit

val jmp : t -> label -> unit
val jcc : t -> Insn.cond -> label -> unit
val call : t -> label -> unit

(** [jmp_mem b l] emits an indirect jump through the 64-bit slot at
    label [l] (used for absolute control transfers out of startup code). *)
val jmp_mem : t -> label -> unit

(** [mov_label b r l] loads the absolute address of [l] into [r]. *)
val mov_label : t -> Reg.gpr -> label -> unit

(** Emit the absolute address of a label as a data quad. *)
val quad_label : t -> label -> unit

val byte : t -> int -> unit
val quad : t -> int64 -> unit
val raw : t -> bytes -> unit
val zeros : t -> int -> unit

(** Pad with zero bytes to the next multiple of [n] (a power of two). *)
val align : t -> int -> unit

(** Result of assembling a builder at a base address. *)
type program = {
  base : int64;
  code : bytes;
  symbols : (string * int64) list;  (** named labels, in definition order *)
}

(** [assemble b ~base] lays the program out at virtual address [base].
    Raises [Failure] if any referenced label is unbound. *)
val assemble : t -> base:int64 -> program

(** Address of a label within an assembled program. The builder must be
    the one that produced the program. *)
val resolve : t -> program -> label -> int64
