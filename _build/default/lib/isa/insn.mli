(** VX86 instruction set: abstract syntax and pretty-printing.

    The set is a deliberately small but complete x86-64 analogue: enough
    to express real programs (ALU, memory, control flow, stack, atomics,
    vector arithmetic), the OS interface ([Syscall]), the marker
    instructions pinball2elf inserts ([Cpuid], [Ssc_marker], [Magic]),
    and the context-restore instruction used by ELFie startup code
    ([Ldctx], the XRSTOR analogue). Every instruction has a byte-exact
    binary encoding (see {!Codec}). *)

(** Access width for loads and stores. *)
type width = W8 | W16 | W32 | W64

val width_bytes : width -> int

(** Memory operand: [base + index*scale + disp]. [scale] is 1, 2, 4 or 8. *)
type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int;
  disp : int64;
}

(** Absolute-displacement operand helper. *)
val mem_abs : int64 -> mem

(** [mem_base r ~disp] is [[r + disp]]. *)
val mem_base : ?disp:int64 -> Reg.gpr -> mem

type alu = Add | Sub | And | Or | Xor | Imul | Cmp | Test
type shift = Shl | Shr | Sar

(** Branch conditions, with x86 signed/unsigned semantics. *)
type cond = Eq | Ne | Lt | Ge | Le | Gt | Ult | Uge

(** Packed-double vector operations on XMM registers. *)
type vop = Vadd | Vmul | Vsub

type t =
  | Mov_ri of Reg.gpr * int64  (** movabs r, imm64 *)
  | Mov_rr of Reg.gpr * Reg.gpr
  | Load of width * Reg.gpr * mem  (** zero-extending load *)
  | Store of width * mem * Reg.gpr
  | Lea of Reg.gpr * mem
  | Alu_rr of alu * Reg.gpr * Reg.gpr
  | Alu_ri of alu * Reg.gpr * int64  (** immediate is sign-extended imm32 *)
  | Shift_ri of shift * Reg.gpr * int
  | Neg of Reg.gpr
  | Push of Reg.gpr
  | Pop of Reg.gpr
  | Jmp of int  (** rel32, relative to next instruction *)
  | Jcc of cond * int
  | Jmp_r of Reg.gpr
  | Jmp_m of mem  (** indirect jump through a 64-bit memory slot *)
  | Call of int
  | Call_r of Reg.gpr
  | Ret
  | Syscall
  | Cpuid  (** also the [sniper] ROI marker *)
  | Nop
  | Ssc_marker of int64  (** long-NOP marker with 32-bit payload (Pintools SSC) *)
  | Magic of int  (** Simics magic instruction, 8-bit function code *)
  | Pause  (** spin-loop hint *)
  | Xchg of Reg.gpr * mem  (** atomic exchange *)
  | Cmpxchg of mem * Reg.gpr  (** lock cmpxchg: compares with RAX *)
  | Ldctx of Reg.gpr  (** XRSTOR analogue: load extended state from [[r]] *)
  | Stctx of Reg.gpr  (** XSAVE analogue: store extended state to [[r]] *)
  | Wrfsbase of Reg.gpr
  | Wrgsbase of Reg.gpr
  | Rdfsbase of Reg.gpr
  | Rdgsbase of Reg.gpr
  | Popf  (** pop flags word from stack *)
  | Pushf
  | Vload of int * mem  (** 128-bit load into xmm\[i\] *)
  | Vstore of mem * int
  | Vop_rr of vop * int * int  (** lane-wise double-precision arithmetic *)
  | Hlt
  | Ud2  (** guaranteed-invalid instruction *)

(** [is_marker t] is true for the three ROI-marker instructions. *)
val is_marker : t -> bool

(** Instruction class used by timing models. *)
type klass = K_alu | K_load | K_store | K_branch | K_call | K_syscall | K_vector | K_other

val classify : t -> klass
val pp_mem : Format.formatter -> mem -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val cond_name : cond -> string
