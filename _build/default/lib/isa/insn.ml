type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type mem = {
  base : Reg.gpr option;
  index : Reg.gpr option;
  scale : int;
  disp : int64;
}

let mem_abs disp = { base = None; index = None; scale = 1; disp }
let mem_base ?(disp = 0L) r = { base = Some r; index = None; scale = 1; disp }

type alu = Add | Sub | And | Or | Xor | Imul | Cmp | Test
type shift = Shl | Shr | Sar
type cond = Eq | Ne | Lt | Ge | Le | Gt | Ult | Uge
type vop = Vadd | Vmul | Vsub

type t =
  | Mov_ri of Reg.gpr * int64
  | Mov_rr of Reg.gpr * Reg.gpr
  | Load of width * Reg.gpr * mem
  | Store of width * mem * Reg.gpr
  | Lea of Reg.gpr * mem
  | Alu_rr of alu * Reg.gpr * Reg.gpr
  | Alu_ri of alu * Reg.gpr * int64
  | Shift_ri of shift * Reg.gpr * int
  | Neg of Reg.gpr
  | Push of Reg.gpr
  | Pop of Reg.gpr
  | Jmp of int
  | Jcc of cond * int
  | Jmp_r of Reg.gpr
  | Jmp_m of mem
  | Call of int
  | Call_r of Reg.gpr
  | Ret
  | Syscall
  | Cpuid
  | Nop
  | Ssc_marker of int64
  | Magic of int
  | Pause
  | Xchg of Reg.gpr * mem
  | Cmpxchg of mem * Reg.gpr
  | Ldctx of Reg.gpr
  | Stctx of Reg.gpr
  | Wrfsbase of Reg.gpr
  | Wrgsbase of Reg.gpr
  | Rdfsbase of Reg.gpr
  | Rdgsbase of Reg.gpr
  | Popf
  | Pushf
  | Vload of int * mem
  | Vstore of mem * int
  | Vop_rr of vop * int * int
  | Hlt
  | Ud2

let is_marker = function Cpuid | Ssc_marker _ | Magic _ -> true | _ -> false

type klass = K_alu | K_load | K_store | K_branch | K_call | K_syscall | K_vector | K_other

let classify = function
  | Alu_rr _ | Alu_ri _ | Shift_ri _ | Neg _ | Mov_ri _ | Mov_rr _ | Lea _ -> K_alu
  | Load _ | Pop _ | Popf | Xchg _ | Cmpxchg _ -> K_load
  | Store _ | Push _ | Pushf -> K_store
  | Jmp _ | Jcc _ | Jmp_r _ | Jmp_m _ | Ret -> K_branch
  | Call _ | Call_r _ -> K_call
  | Syscall -> K_syscall
  | Vload _ | Vstore _ | Vop_rr _ -> K_vector
  | Cpuid | Nop | Ssc_marker _ | Magic _ | Pause | Ldctx _ | Stctx _ | Wrfsbase _
  | Wrgsbase _ | Rdfsbase _ | Rdgsbase _ | Hlt | Ud2 ->
      K_other

let cond_name = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Ge -> "ge"
  | Le -> "le"
  | Gt -> "g"
  | Ult -> "b"
  | Uge -> "ae"

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Imul -> "imul"
  | Cmp -> "cmp"
  | Test -> "test"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
let vop_name = function Vadd -> "vaddpd" | Vmul -> "vmulpd" | Vsub -> "vsubpd"

let width_suffix = function W8 -> "b" | W16 -> "w" | W32 -> "l" | W64 -> "q"

let pp_mem fmt m =
  let open Format in
  fprintf fmt "[";
  let printed = ref false in
  (match m.base with
  | Some b ->
      Reg.pp_gpr fmt b;
      printed := true
  | None -> ());
  (match m.index with
  | Some i ->
      if !printed then fprintf fmt "+";
      fprintf fmt "%a*%d" Reg.pp_gpr i m.scale;
      printed := true
  | None -> ());
  if m.disp <> 0L || not !printed then
    if !printed then fprintf fmt "%+Ld" m.disp else fprintf fmt "0x%Lx" m.disp;
  fprintf fmt "]"

let pp fmt ins =
  let open Format in
  match ins with
  | Mov_ri (r, v) -> fprintf fmt "mov %a, 0x%Lx" Reg.pp_gpr r v
  | Mov_rr (d, s) -> fprintf fmt "mov %a, %a" Reg.pp_gpr d Reg.pp_gpr s
  | Load (w, r, m) -> fprintf fmt "mov%s %a, %a" (width_suffix w) Reg.pp_gpr r pp_mem m
  | Store (w, m, r) -> fprintf fmt "mov%s %a, %a" (width_suffix w) pp_mem m Reg.pp_gpr r
  | Lea (r, m) -> fprintf fmt "lea %a, %a" Reg.pp_gpr r pp_mem m
  | Alu_rr (op, d, s) -> fprintf fmt "%s %a, %a" (alu_name op) Reg.pp_gpr d Reg.pp_gpr s
  | Alu_ri (op, d, v) -> fprintf fmt "%s %a, %Ld" (alu_name op) Reg.pp_gpr d v
  | Shift_ri (op, d, n) -> fprintf fmt "%s %a, %d" (shift_name op) Reg.pp_gpr d n
  | Neg r -> fprintf fmt "neg %a" Reg.pp_gpr r
  | Push r -> fprintf fmt "push %a" Reg.pp_gpr r
  | Pop r -> fprintf fmt "pop %a" Reg.pp_gpr r
  | Jmp rel -> fprintf fmt "jmp .%+d" rel
  | Jcc (c, rel) -> fprintf fmt "j%s .%+d" (cond_name c) rel
  | Jmp_r r -> fprintf fmt "jmp %a" Reg.pp_gpr r
  | Jmp_m m -> fprintf fmt "jmp %a" pp_mem m
  | Call rel -> fprintf fmt "call .%+d" rel
  | Call_r r -> fprintf fmt "call %a" Reg.pp_gpr r
  | Ret -> fprintf fmt "ret"
  | Syscall -> fprintf fmt "syscall"
  | Cpuid -> fprintf fmt "cpuid"
  | Nop -> fprintf fmt "nop"
  | Ssc_marker v -> fprintf fmt "ssc_marker 0x%Lx" v
  | Magic n -> fprintf fmt "magic %d" n
  | Pause -> fprintf fmt "pause"
  | Xchg (r, m) -> fprintf fmt "xchg %a, %a" Reg.pp_gpr r pp_mem m
  | Cmpxchg (m, r) -> fprintf fmt "lock cmpxchg %a, %a" pp_mem m Reg.pp_gpr r
  | Ldctx r -> fprintf fmt "ldctx [%a]" Reg.pp_gpr r
  | Stctx r -> fprintf fmt "stctx [%a]" Reg.pp_gpr r
  | Wrfsbase r -> fprintf fmt "wrfsbase %a" Reg.pp_gpr r
  | Wrgsbase r -> fprintf fmt "wrgsbase %a" Reg.pp_gpr r
  | Rdfsbase r -> fprintf fmt "rdfsbase %a" Reg.pp_gpr r
  | Rdgsbase r -> fprintf fmt "rdgsbase %a" Reg.pp_gpr r
  | Popf -> fprintf fmt "popf"
  | Pushf -> fprintf fmt "pushf"
  | Vload (x, m) -> fprintf fmt "movdqu xmm%d, %a" x pp_mem m
  | Vstore (m, x) -> fprintf fmt "movdqu %a, xmm%d" pp_mem m x
  | Vop_rr (op, d, s) -> fprintf fmt "%s xmm%d, xmm%d" (vop_name op) d s
  | Hlt -> fprintf fmt "hlt"
  | Ud2 -> fprintf fmt "ud2"

let to_string ins = Format.asprintf "%a" pp ins
