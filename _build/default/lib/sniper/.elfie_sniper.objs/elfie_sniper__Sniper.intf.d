lib/sniper/sniper.mli: Elfie_elf Elfie_kernel Elfie_machine Elfie_pinball
