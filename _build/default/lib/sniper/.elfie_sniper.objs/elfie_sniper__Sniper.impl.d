lib/sniper/sniper.ml: Array Bytes Cache Char Elfie_isa Elfie_kernel Elfie_machine Elfie_pin Elfie_util Float Fs Hashtbl Insn Int64 List Loader Machine Option Vkernel
