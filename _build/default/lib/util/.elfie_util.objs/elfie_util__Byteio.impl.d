lib/util/byteio.ml: Buffer Bytes Char Printf
