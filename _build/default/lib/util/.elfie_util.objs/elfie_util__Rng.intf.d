lib/util/rng.mli:
