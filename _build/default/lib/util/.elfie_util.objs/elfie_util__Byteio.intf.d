lib/util/byteio.mli:
