(** Deterministic, seedable pseudo-random number generator (splitmix64).

    Used wherever the system needs controlled non-determinism: the
    free-run thread scheduler (run-to-run variation of multi-threaded
    ELFie executions), stack-base randomization in the loader, and
    k-means initialisation. A given seed always yields the same stream,
    so every experiment in this repository is reproducible. *)

type t

val create : int64 -> t

(** Independent child generator; advances the parent. *)
val split : t -> t

val next64 : t -> int64

(** [int t bound] draws uniformly from [0, bound); [bound] must be
    positive. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Fisher-Yates shuffle, in place. *)
val shuffle : t -> 'a array -> unit
