exception Truncated of string

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v = Buffer.add_int64_le t v

  let i32 t v =
    if v < -0x8000_0000 || v > 0x7fff_ffff then
      invalid_arg (Printf.sprintf "Byteio.Writer.i32: %d out of range" v);
    u32 t (v land 0xffff_ffff)

  let bytes t b = Buffer.add_bytes t b
  let string t s = Buffer.add_string t s

  let zeros t n =
    for _ = 1 to n do
      u8 t 0
    done

  let pad_to t n =
    let len = length t in
    if len > n then
      invalid_arg (Printf.sprintf "Byteio.Writer.pad_to: at %d, past %d" len n);
    zeros t (n - len)

  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { buf : bytes; mutable pos : int }

  let of_bytes buf = { buf; pos = 0 }
  let of_string s = of_bytes (Bytes.of_string s)
  let pos t = t.pos
  let length t = Bytes.length t.buf
  let remaining t = length t - t.pos

  let check t n what =
    if t.pos + n > length t then
      raise
        (Truncated
           (Printf.sprintf "%s: need %d bytes at offset %d, have %d" what n
              t.pos (remaining t)))

  let seek t off =
    if off < 0 || off > length t then
      raise (Truncated (Printf.sprintf "seek to %d in buffer of %d" off (length t)));
    t.pos <- off

  let u8 t =
    check t 1 "u8";
    let v = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let u64 t =
    check t 8 "u64";
    let v = Bytes.get_int64_le t.buf t.pos in
    t.pos <- t.pos + 8;
    v

  let i32 t =
    let v = u32 t in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  let bytes t n =
    check t n "bytes";
    let b = Bytes.sub t.buf t.pos n in
    t.pos <- t.pos + n;
    b

  let string_n t n = Bytes.to_string (bytes t n)
end
