(** Little-endian byte-level readers and writers.

    Every binary codec in this project (VX86 instruction encoding, ELF64
    images, pinball files) is built on these two cursors. All multi-byte
    quantities are little-endian, matching ELF64 on x86-64. *)

(** Raised by the reader on any attempt to read past the end of the
    underlying buffer. Carries a description of what was being read. *)
exception Truncated of string

(** Mutable write cursor producing a growable byte buffer. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  (** Number of bytes written so far. *)
  val length : t -> int

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit

  (** [i32 w v] writes a signed 32-bit value in two's complement;
      raises [Invalid_argument] if [v] is out of range. *)
  val i32 : t -> int -> unit

  val bytes : t -> bytes -> unit
  val string : t -> string -> unit

  (** [zeros w n] writes [n] zero bytes. *)
  val zeros : t -> int -> unit

  (** [pad_to w n] writes zero bytes until [length w = n]; raises
      [Invalid_argument] if already past [n]. *)
  val pad_to : t -> int -> unit

  val contents : t -> bytes
end

(** Read cursor over an immutable byte string. *)
module Reader : sig
  type t

  val of_bytes : bytes -> t
  val of_string : string -> t

  (** Current offset from the start of the buffer. *)
  val pos : t -> int

  (** Total length of the underlying buffer. *)
  val length : t -> int

  val remaining : t -> int

  (** [seek r off] moves the cursor to absolute offset [off]. *)
  val seek : t -> int -> unit

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64

  (** Signed 32-bit read (sign-extended to [int]). *)
  val i32 : t -> int

  val bytes : t -> int -> bytes

  (** [string_n r n] reads exactly [n] bytes as a string. *)
  val string_n : t -> int -> string
end
