(* Fixed virtual-memory layout of generated benchmark programs. *)

let code_base = 0x40_0000L

(* Read/write scratch area: vector-constant staging, timeval buffer. *)
let scratch_base = 0x60_0000L
let vconst_addr = scratch_base
let timeval_addr = Int64.add scratch_base 0x40L
let read_buf_addr = Int64.add scratch_base 0x80L

(* Spin-barrier words: [count; generation]. *)
let barrier_addr = Int64.add scratch_base 0x100L

(* One 64 KiB stack per cloned worker thread. *)
let worker_stack_base = 0x70_0000L
let worker_stack_bytes = 0x1_0000

(* Per-thread data buffers (working sets), one slice per thread. *)
let buffer_base = 0x80_0000L
