(** Synthetic benchmark program generator.

    A {!spec} describes a phase-structured program: a sequence of
    compute-kernel phases repeated [outer_reps] times, optionally with
    file input, [gettimeofday] calls and heap growth per iteration (the
    system-call behaviours the SYSSTATE machinery exists for), and an
    OpenMP-style pool of [threads] spin-barrier-synchronised workers
    (the paper's "active wait policy").

    The generated binary is a genuine VX86 ELF executable, loadable by
    the Vkernel loader, instrumentable with Vpin, checkpointable with
    the logger — the stand-in for a SPEC benchmark build. *)

type phase = { kernel : Kernels.t; reps : int }

type spec = {
  name : string;
  phases : phase list;
  outer_reps : int;
  threads : int;
  ws_bytes : int;  (** per-thread working set; must be a power of two *)
  file_io : bool;  (** read [input.dat] each outer iteration (thread 0) *)
  time_calls : bool;  (** call [gettimeofday] each outer iteration *)
  heap_churn : bool;  (** grow the heap with [brk] each outer iteration *)
  roi_marker : int64 option;
      (** emit an SSC marker with this payload at the top of every outer
          iteration — an application-defined region-of-interest trigger
          for marker-delimited capture *)
}

val spec :
  ?phases:phase list ->
  ?outer_reps:int ->
  ?threads:int ->
  ?ws_bytes:int ->
  ?file_io:bool ->
  ?time_calls:bool ->
  ?heap_churn:bool ->
  ?roi_marker:int64 ->
  string ->
  spec

(** Build the ELF image. Raises [Invalid_argument] on a bad spec. *)
val image : spec -> Elfie_elf.Image.t

(** A ready-to-run {!Elfie_pin.Run.spec}, with [input.dat] installed
    when the program reads it. *)
val run_spec : ?seed:int64 -> spec -> Elfie_pin.Run.spec

(** Rough dynamic instruction count, for choosing region parameters. *)
val approx_instructions : spec -> int64

(** Contents of the [input.dat] file read by [file_io] programs. *)
val input_file_content : string
