(** Compute kernels for synthetic benchmarks.

    Each kernel is one inner loop with a distinctive microarchitectural
    signature, so programs mixing them exhibit real program phases:
    distinguishable basic-block vectors {e and} distinguishable CPI.

    Register conventions (shared with {!Programs}): R12 holds the
    thread's buffer base, R13 the buffer mask (working set - 1), RBX the
    thread id, R15 an open input fd; kernels may clobber RAX, RCX, RDX,
    RDI, RSI, R8-R11 and the flags. *)

type t =
  | Stream  (** strided load/add/store sweep — bandwidth bound *)
  | Chase  (** pointer chasing over a permutation ring — latency bound *)
  | Branchy  (** data-dependent branches on an LCG — mispredict bound *)
  | Alu  (** dense register arithmetic — high IPC *)
  | Vector  (** packed-double multiply-add sweep — FP pipeline *)
  | Mixed  (** interleaved load/ALU/branch — "average" code *)
  | Gather  (** index-vector-driven irregular loads — scatter/gather codes *)
  | Stencil  (** 3-point neighbour load/compute/store sweep — PDE kernels *)

val all : t list
val name : t -> string

(** [emit b k ~reps] appends the kernel's inner loop, executed [reps]
    times, to the builder. *)
val emit : Elfie_isa.Builder.t -> t -> reps:int -> unit

(** Instructions per iteration of the kernel's inner loop. *)
val ins_per_iter : t -> int

(** Emit one-time initialisation (e.g. build the pointer ring for
    [Chase], load vector constants) for the kernels in use. *)
val emit_init : Elfie_isa.Builder.t -> t list -> unit
