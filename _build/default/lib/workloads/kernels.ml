open Elfie_isa
open Elfie_isa.Insn

type t = Stream | Chase | Branchy | Alu | Vector | Mixed | Gather | Stencil

let all = [ Stream; Chase; Branchy; Alu; Vector; Mixed; Gather; Stencil ]

let name = function
  | Stream -> "stream"
  | Chase -> "chase"
  | Branchy -> "branchy"
  | Alu -> "alu"
  | Vector -> "vector"
  | Mixed -> "mixed"
  | Gather -> "gather"
  | Stencil -> "stencil"

let ins_per_iter = function
  | Stream -> 7
  | Chase -> 5
  | Branchy -> 9
  | Alu -> 10
  | Vector -> 8
  | Mixed -> 10
  | Gather -> 9
  | Stencil -> 10

let mov_imm b r v = Builder.ins b (Mov_ri (r, v))
let slot base index scale = { base = Some base; index = Some index; scale; disp = 0L }

(* Loop skeleton: RCX is the iteration counter. *)
let loop_over b ~reps body =
  mov_imm b Reg.RCX (Int64.of_int reps);
  let head = Builder.here b in
  body ();
  Builder.ins b (Alu_ri (Sub, Reg.RCX, 1L));
  Builder.jcc b Ne head

let emit_gather b ~reps =
  (* Walk the buffer sequentially, reading an index word and loading
     through it: two loads per iteration, one regular and one irregular. *)
  mov_imm b Reg.RDI 0L;
  loop_over b ~reps (fun () ->
      Builder.ins b (Load (W64, Reg.RAX, slot Reg.R12 Reg.RDI 1));
      Builder.ins b (Alu_rr (And, Reg.RAX, Reg.R13));
      Builder.ins b (Alu_ri (And, Reg.RAX, -8L));
      Builder.ins b (Load (W64, Reg.RDX, slot Reg.R12 Reg.RAX 1));
      Builder.ins b (Alu_ri (Add, Reg.RDX, 1L));
      Builder.ins b (Alu_ri (Add, Reg.RDI, 8L));
      Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13)))

let emit_stencil b ~reps =
  (* 3-point stencil over the whole working set; the +16 neighbour
     displacement can reach just past the mask, which the buffer's
     guard page absorbs. *)
  mov_imm b Reg.RDI 0L;
  loop_over b ~reps (fun () ->
      Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13));
      Builder.ins b (Load (W64, Reg.RAX, { (slot Reg.R12 Reg.RDI 1) with disp = 8L }));
      Builder.ins b (Load (W64, Reg.RDX, slot Reg.R12 Reg.RDI 1));
      Builder.ins b (Alu_rr (Add, Reg.RAX, Reg.RDX));
      Builder.ins b (Load (W64, Reg.RDX, { (slot Reg.R12 Reg.RDI 1) with disp = 16L }));
      Builder.ins b (Alu_rr (Add, Reg.RAX, Reg.RDX));
      Builder.ins b (Shift_ri (Shr, Reg.RAX, 1));
      Builder.ins b (Store (W64, { (slot Reg.R12 Reg.RDI 1) with disp = 8L }, Reg.RAX));
      Builder.ins b (Alu_ri (Add, Reg.RDI, 8L)))

let emit b kernel ~reps =
  match kernel with
  | Stream ->
      mov_imm b Reg.RDI 0L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Load (W64, Reg.RAX, slot Reg.R12 Reg.RDI 1));
          Builder.ins b (Alu_ri (Add, Reg.RAX, 3L));
          Builder.ins b (Store (W64, slot Reg.R12 Reg.RDI 1, Reg.RAX));
          Builder.ins b (Alu_ri (Add, Reg.RDI, 64L));
          Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13)))
  | Chase ->
      (* Other phases may scribble over the ring, so the loaded offset is
         re-masked into the working set (keeps the access dependent). *)
      mov_imm b Reg.RDI 0L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Load (W64, Reg.RDI, slot Reg.R12 Reg.RDI 1));
          Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13));
          Builder.ins b (Alu_ri (And, Reg.RDI, -8L)))
  | Branchy ->
      mov_imm b Reg.RDI 88172645463325252L;
      mov_imm b Reg.R8 6364136223846793005L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Alu_rr (Imul, Reg.RDI, Reg.R8));
          Builder.ins b (Alu_ri (Add, Reg.RDI, 99991L));
          Builder.ins b (Alu_ri (Test, Reg.RDI, 16L));
          let skip1 = Builder.new_label b in
          Builder.jcc b Eq skip1;
          Builder.ins b (Alu_ri (Add, Reg.R11, 7L));
          Builder.bind b skip1;
          Builder.ins b (Alu_ri (Test, Reg.RDI, 32L));
          let skip2 = Builder.new_label b in
          Builder.jcc b Eq skip2;
          Builder.ins b (Alu_ri (Sub, Reg.R11, 3L));
          Builder.bind b skip2)
  | Alu ->
      mov_imm b Reg.RAX 1L;
      mov_imm b Reg.RDX 3L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Alu_rr (Add, Reg.RAX, Reg.RDX));
          Builder.ins b (Alu_ri (Xor, Reg.RAX, 0x55L));
          Builder.ins b (Alu_rr (Add, Reg.R8, Reg.RAX));
          Builder.ins b (Shift_ri (Shl, Reg.R8, 1));
          Builder.ins b (Alu_rr (Xor, Reg.R8, Reg.RDX));
          Builder.ins b (Alu_ri (Add, Reg.RDX, 1L));
          Builder.ins b (Alu_rr (Sub, Reg.RAX, Reg.RDX));
          Builder.ins b (Neg Reg.RAX))
  | Vector ->
      mov_imm b Reg.RDI 0L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Vload (1, slot Reg.R12 Reg.RDI 1));
          Builder.ins b (Vop_rr (Vmul, 1, 2));
          Builder.ins b (Vop_rr (Vadd, 0, 1));
          Builder.ins b (Vstore (slot Reg.R12 Reg.RDI 1, 1));
          Builder.ins b (Alu_ri (Add, Reg.RDI, 16L));
          Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13)))
  | Mixed ->
      mov_imm b Reg.RDI 0L;
      loop_over b ~reps (fun () ->
          Builder.ins b (Load (W64, Reg.RAX, slot Reg.R12 Reg.RDI 1));
          Builder.ins b (Alu_rr (Add, Reg.RAX, Reg.R8));
          Builder.ins b (Alu_ri (Test, Reg.RAX, 1L));
          let skip = Builder.new_label b in
          Builder.jcc b Eq skip;
          Builder.ins b (Alu_ri (Add, Reg.R8, 1L));
          Builder.bind b skip;
          Builder.ins b (Store (W64, slot Reg.R12 Reg.RDI 1, Reg.RAX));
          Builder.ins b (Alu_ri (Add, Reg.RDI, 32L));
          Builder.ins b (Alu_rr (And, Reg.RDI, Reg.R13)))
  | Gather -> emit_gather b ~reps
  | Stencil -> emit_stencil b ~reps

(* Build the pointer-permutation ring for Chase: buf[i] = (i*P + 1) mod n,
   stored as byte offsets. R12/R13 must already hold base and mask. *)
let emit_chase_ring b =
  Builder.ins b (Mov_rr (Reg.RCX, Reg.R13));
  Builder.ins b (Alu_ri (Add, Reg.RCX, 1L));
  Builder.ins b (Shift_ri (Shr, Reg.RCX, 3));
  (* R9 = n - 1, the index mask *)
  Builder.ins b (Mov_rr (Reg.R9, Reg.RCX));
  Builder.ins b (Alu_ri (Sub, Reg.R9, 1L));
  mov_imm b Reg.RDI 0L;
  mov_imm b Reg.RDX 12345L;
  let head = Builder.here b in
  Builder.ins b (Mov_rr (Reg.RAX, Reg.RDI));
  Builder.ins b (Alu_rr (Imul, Reg.RAX, Reg.RDX));
  Builder.ins b (Alu_ri (Add, Reg.RAX, 1L));
  Builder.ins b (Alu_rr (And, Reg.RAX, Reg.R9));
  Builder.ins b (Shift_ri (Shl, Reg.RAX, 3));
  Builder.ins b (Store (W64, slot Reg.R12 Reg.RDI 8, Reg.RAX));
  Builder.ins b (Alu_ri (Add, Reg.RDI, 1L));
  Builder.ins b (Alu_ri (Sub, Reg.RCX, 1L));
  Builder.jcc b Ne head

(* Stage the vector constants through the scratch area and zero xmm0. *)
let emit_vector_init b =
  mov_imm b Reg.RAX (Int64.bits_of_float 1.0000001);
  Builder.ins b (Store (W64, Insn.mem_abs Layout.vconst_addr, Reg.RAX));
  Builder.ins b
    (Store (W64, Insn.mem_abs (Int64.add Layout.vconst_addr 8L), Reg.RAX));
  Builder.ins b (Vload (2, Insn.mem_abs Layout.vconst_addr));
  mov_imm b Reg.RAX 0L;
  Builder.ins b (Store (W64, Insn.mem_abs Layout.vconst_addr, Reg.RAX));
  Builder.ins b
    (Store (W64, Insn.mem_abs (Int64.add Layout.vconst_addr 8L), Reg.RAX));
  Builder.ins b (Vload (0, Insn.mem_abs Layout.vconst_addr))

let emit_init b kernels =
  if List.mem Chase kernels || List.mem Gather kernels then emit_chase_ring b;
  if List.mem Vector kernels then emit_vector_init b;
  if List.mem Branchy kernels || List.mem Mixed kernels || List.mem Alu kernels
  then begin
    mov_imm b Reg.R11 0L;
    mov_imm b Reg.R8 0L
  end
