lib/workloads/suite.mli: Programs
