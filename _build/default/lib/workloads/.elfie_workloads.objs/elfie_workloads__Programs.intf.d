lib/workloads/programs.mli: Elfie_elf Elfie_pin Kernels
