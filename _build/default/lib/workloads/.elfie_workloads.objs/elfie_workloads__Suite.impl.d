lib/workloads/suite.ml: Kernels List Programs
