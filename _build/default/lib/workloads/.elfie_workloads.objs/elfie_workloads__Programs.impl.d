lib/workloads/programs.ml: Abi Builder Bytes Char Elfie_elf Elfie_isa Elfie_kernel Elfie_pin Fs Insn Int64 Kernels Layout List Printf Reg String
