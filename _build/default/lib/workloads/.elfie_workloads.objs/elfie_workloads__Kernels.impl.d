lib/workloads/kernels.ml: Builder Elfie_isa Insn Int64 Layout List Reg
