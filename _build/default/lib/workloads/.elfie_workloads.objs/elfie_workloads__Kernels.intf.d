lib/workloads/kernels.mli: Elfie_isa
