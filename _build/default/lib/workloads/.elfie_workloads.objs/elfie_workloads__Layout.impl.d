lib/workloads/layout.ml: Int64
