(** The benchmark suite: named stand-ins for the SPEC programs the paper
    evaluates.

    Every entry is a {!Programs.spec} whose phase mixture gives it a
    microarchitectural personality loosely matching its namesake
    (pointer-chasing [mcf], vectorised [x264]/fp codes, branch-heavy
    game engines, the notoriously phase-diverse [gcc], ...). Instruction
    counts are scaled ~10⁴× down from SPEC so whole-program runs finish
    in seconds while keeping the paper's
    [slice ≪ warmup ≪ program] ratios. *)

type benchmark = { bname : string; spec : Programs.spec }

(** SPEC CPU2017 intrate stand-ins, train-sized (Fig. 9, Table II). *)
val spec2017_int_train : benchmark list

(** SPEC CPU2017 intrate stand-ins, ref-sized (Fig. 10, Table III). *)
val spec2017_int_ref : benchmark list

(** SPEC CPU2017 fprate stand-ins, ref-sized (Fig. 10, Table III). *)
val spec2017_fp_ref : benchmark list

(** SPEC CPU2017 speed/OpenMP stand-ins, 8 threads with active-wait spin
    barriers; [657.xz_s] is single-threaded as in Fig. 11. *)
val spec2017_speed_mt : benchmark list

(** Nineteen SPEC CPU2006 stand-ins (Table V). *)
val spec2006 : benchmark list

val find : string -> benchmark option
val all : benchmark list
