open Elfie_isa
open Elfie_isa.Insn
open Elfie_kernel

type phase = { kernel : Kernels.t; reps : int }

type spec = {
  name : string;
  phases : phase list;
  outer_reps : int;
  threads : int;
  ws_bytes : int;
  file_io : bool;
  time_calls : bool;
  heap_churn : bool;
  roi_marker : int64 option;
}

let spec ?(phases = [ { kernel = Kernels.Mixed; reps = 1000 } ]) ?(outer_reps = 10)
    ?(threads = 1) ?(ws_bytes = 65536) ?(file_io = false) ?(time_calls = false)
    ?(heap_churn = false) ?roi_marker name =
  { name; phases; outer_reps; threads; ws_bytes; file_io; time_calls; heap_churn;
    roi_marker }

let mov_imm b r v = Builder.ins b (Mov_ri (r, v))

let emit_syscall b nr =
  mov_imm b Reg.RAX (Int64.of_int nr);
  Builder.ins b Insn.Syscall

(* Centralized sense-reversing spin barrier over two shared words
   [count; generation]; the paper's OpenMP active-wait analogue. *)
let emit_barrier b ~threads =
  let count = Insn.mem_abs Layout.barrier_addr in
  let gen = Insn.mem_abs (Int64.add Layout.barrier_addr 8L) in
  Builder.ins b (Load (W64, Reg.R9, gen));
  let retry = Builder.here b in
  Builder.ins b (Load (W64, Reg.RAX, count));
  Builder.ins b (Mov_rr (Reg.R10, Reg.RAX));
  Builder.ins b (Alu_ri (Add, Reg.R10, 1L));
  Builder.ins b (Cmpxchg (count, Reg.R10));
  Builder.jcc b Ne retry;
  Builder.ins b (Alu_ri (Cmp, Reg.R10, Int64.of_int threads));
  let wait = Builder.new_label b in
  let done_ = Builder.new_label b in
  Builder.jcc b Ne wait;
  (* Last arriver: reset the count and advance the generation. *)
  mov_imm b Reg.RAX 0L;
  Builder.ins b (Store (W64, count, Reg.RAX));
  Builder.ins b (Mov_rr (Reg.RAX, Reg.R9));
  Builder.ins b (Alu_ri (Add, Reg.RAX, 1L));
  Builder.ins b (Store (W64, gen, Reg.RAX));
  Builder.jmp b done_;
  Builder.bind b wait;
  Builder.ins b Insn.Pause;
  Builder.ins b (Load (W64, Reg.RAX, gen));
  Builder.ins b (Alu_rr (Cmp, Reg.RAX, Reg.R9));
  Builder.jcc b Eq wait;
  Builder.bind b done_

let build_code s =
  if s.ws_bytes land (s.ws_bytes - 1) <> 0 then
    invalid_arg "Programs: ws_bytes must be a power of two";
  if s.threads < 1 then invalid_arg "Programs: threads";
  let b = Builder.create () in
  let worker = Builder.new_label ~name:"worker" b in
  let path_str = Builder.new_label b in
  let msg_str = Builder.new_label b in
  let kernels = List.map (fun p -> p.kernel) s.phases in
  let slice_base i =
    Int64.add Layout.buffer_base (Int64.of_int (i * s.ws_bytes))
  in
  (* ---- _start: process setup on the initial thread ---- *)
  let start = Builder.here ~name:"_start" b in
  ignore start;
  mov_imm b Reg.RBX 0L;
  mov_imm b Reg.R12 (slice_base 0);
  mov_imm b Reg.R13 (Int64.of_int (s.ws_bytes - 1));
  if s.file_io then begin
    Builder.mov_label b Reg.RDI path_str;
    mov_imm b Reg.RSI 0L;
    mov_imm b Reg.RDX 0L;
    emit_syscall b Abi.sys_open;
    Builder.ins b (Mov_rr (Reg.R15, Reg.RAX))
  end;
  (* Establish a heap: brk(0) then grow by 64 KiB. *)
  mov_imm b Reg.RDI 0L;
  emit_syscall b Abi.sys_brk;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
  Builder.ins b (Alu_ri (Add, Reg.RDI, 0x10000L));
  emit_syscall b Abi.sys_brk;
  (* Clone the worker pool; children inherit RBX/R12/R13 set just before. *)
  for i = 1 to s.threads - 1 do
    mov_imm b Reg.RBX (Int64.of_int i);
    mov_imm b Reg.R12 (slice_base i);
    Builder.mov_label b Reg.RDI worker;
    mov_imm b Reg.RSI
      (Int64.add Layout.worker_stack_base
         (Int64.of_int (((i + 1) * Layout.worker_stack_bytes) - 64)));
    emit_syscall b Abi.sys_clone
  done;
  if s.threads > 1 then begin
    mov_imm b Reg.RBX 0L;
    mov_imm b Reg.R12 (slice_base 0)
  end;
  (* ---- worker body (thread 0 falls through) ---- *)
  Builder.bind b worker;
  Kernels.emit_init b kernels;
  mov_imm b Reg.R14 (Int64.of_int s.outer_reps);
  let outer = Builder.here ~name:"outer_loop" b in
  (match s.roi_marker with
  | Some payload -> Builder.ins b (Ssc_marker payload)
  | None -> ());
  (* Thread-0-only per-iteration system activity. *)
  if s.file_io || s.time_calls || s.heap_churn then begin
    let skip_io = Builder.new_label b in
    Builder.ins b (Alu_ri (Cmp, Reg.RBX, 0L));
    Builder.jcc b Ne skip_io;
    if s.file_io then begin
      Builder.ins b (Mov_rr (Reg.RDI, Reg.R15));
      mov_imm b Reg.RSI Layout.read_buf_addr;
      mov_imm b Reg.RDX 64L;
      emit_syscall b Abi.sys_read
    end;
    if s.time_calls then begin
      mov_imm b Reg.RDI Layout.timeval_addr;
      mov_imm b Reg.RSI 0L;
      emit_syscall b Abi.sys_gettimeofday
    end;
    if s.heap_churn then begin
      mov_imm b Reg.RDI 0L;
      emit_syscall b Abi.sys_brk;
      Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
      Builder.ins b (Alu_ri (Add, Reg.RDI, 4096L));
      emit_syscall b Abi.sys_brk
    end;
    Builder.bind b skip_io
  end;
  List.iteri
    (fun i p ->
      let l = Builder.here ~name:(Printf.sprintf "phase_%d_%s" i (Kernels.name p.kernel)) b in
      ignore l;
      Kernels.emit b p.kernel ~reps:p.reps)
    s.phases;
  if s.threads > 1 then begin
    (* Named so analyses can exclude spin-wait code (e.g. when picking a
       region-end PC "outside any spin-loops", Section IV-B). *)
    ignore (Builder.here ~name:"barrier_begin" b);
    emit_barrier b ~threads:s.threads;
    ignore (Builder.here ~name:"barrier_end" b)
  end;
  Builder.ins b (Alu_ri (Sub, Reg.R14, 1L));
  Builder.jcc b Ne outer;
  (* ---- termination ---- *)
  let worker_exit = Builder.new_label b in
  Builder.ins b (Alu_ri (Cmp, Reg.RBX, 0L));
  Builder.jcc b Ne worker_exit;
  mov_imm b Reg.RDI 1L;
  Builder.mov_label b Reg.RSI msg_str;
  mov_imm b Reg.RDX 5L;
  emit_syscall b Abi.sys_write;
  mov_imm b Reg.RDI 0L;
  emit_syscall b Abi.sys_exit_group;
  Builder.bind b worker_exit;
  mov_imm b Reg.RDI 0L;
  emit_syscall b Abi.sys_exit;
  (* ---- embedded strings ---- *)
  Builder.align b 8;
  Builder.bind b path_str;
  Builder.raw b (Bytes.of_string "input.dat\000");
  Builder.bind b msg_str;
  Builder.raw b (Bytes.of_string "done\n");
  Builder.assemble b ~base:Layout.code_base

let image s =
  let prog = build_code s in
  let code =
    Elfie_elf.Image.section ~executable:true ~name:".text" ~addr:Layout.code_base
      prog.Builder.code
  in
  let scratch =
    Elfie_elf.Image.section ~writable:true ~name:".data.scratch"
      ~addr:Layout.scratch_base
      (Bytes.make 4096 '\000')
  in
  let buffers =
    (* One guard page past the end: the stencil kernel's +16 neighbour
       displacement may reach just past the masked working set. *)
    Elfie_elf.Image.section ~writable:true ~name:".bss.buffers"
      ~addr:Layout.buffer_base
      (Bytes.make ((s.threads * s.ws_bytes) + 4096) '\000')
  in
  let stacks =
    if s.threads > 1 then
      [ Elfie_elf.Image.section ~writable:true ~name:".bss.stacks"
          ~addr:Layout.worker_stack_base
          (Bytes.make (s.threads * Layout.worker_stack_bytes) '\000') ]
    else []
  in
  let symbols =
    List.map
      (fun (name, value) -> { Elfie_elf.Image.sym_name = name; value; func = true })
      prog.Builder.symbols
  in
  {
    Elfie_elf.Image.exec = true;
    entry = Layout.code_base;
    sections = [ code; scratch; buffers ] @ stacks;
    symbols;
  }

let input_file_content =
  String.init 65536 (fun i -> Char.chr (((i * 31) + 7) land 0xff))

let run_spec ?(seed = 42L) s =
  let fs_init fs =
    if s.file_io then Fs.add_file fs ~path:"/input.dat" input_file_content
  in
  Elfie_pin.Run.spec ~argv:[ s.name ] ~fs_init ~seed (image s)

let approx_instructions s =
  let per_outer =
    List.fold_left
      (fun acc p -> acc + (p.reps * Kernels.ins_per_iter p.kernel) + 4)
      8 s.phases
  in
  Int64.of_int (s.threads * s.outer_reps * per_outer)
