type benchmark = { bname : string; spec : Programs.spec }

open Kernels

(* reps so that one phase retires roughly [ins] instructions *)
let ph kernel ins = { Programs.kernel; reps = ins / ins_per_iter kernel }

let mk ?(outer = 6) ?(threads = 1) ?(ws = 65536) ?(file_io = false)
    ?(time_calls = false) ?(heap_churn = false) bname phases =
  {
    bname;
    spec =
      Programs.spec ~phases ~outer_reps:outer ~threads ~ws_bytes:ws ~file_io
        ~time_calls ~heap_churn bname;
  }

(* --- SPEC CPU2017 intrate stand-ins -------------------------------------- *)

let int_program ~scale ~outer name =
  let p k i = ph k (i * scale) in
  match name with
  | "500.perlbench_r" ->
      mk ~outer ~ws:32768 ~file_io:true name
        [ p Branchy 70_000; p Mixed 80_000; p Alu 60_000 ]
  | "502.gcc_r" ->
      (* Notoriously hard to represent, as in the paper. 2 MiB working set: one stream traversal is ~229 k instructions,
         so a 200 k warmup leaves the measured slice's lines cold in the
         LLC while a 300 k warmup covers a full traversal — the Table II
         sensitivity. The long dominant stream phase keeps most of its
         slices a full traversal away from the preceding (memory-silent)
         phases, so the cluster representative is warmup-sensitive. *)
      ignore outer;
      ignore p;
      let q = ph in
      mk ~outer:5 ~ws:2_097_152 ~file_io:true ~heap_churn:true name
        [ q Alu 80_000; q Branchy 80_000; q Stream 1_000_000; q Branchy 60_000 ]
  | "505.mcf_r" ->
      (* Chase ring sized so one traversal (~40 k instructions) fits
         inside the warmup; larger rings can never be warmed by a
         bounded warmup prefix. *)
      mk ~outer ~ws:65536 name [ p Chase 120_000; p Mixed 50_000 ]
  | "520.omnetpp_r" ->
      mk ~outer ~ws:65536 ~time_calls:true name
        [ p Chase 80_000; p Branchy 70_000 ]
  | "523.xalancbmk_r" ->
      mk ~outer ~ws:65536 ~heap_churn:true name
        [ p Mixed 80_000; p Branchy 60_000; p Chase 40_000 ]
  | "525.x264_r" ->
      mk ~outer ~ws:65536 name
        [ p Vector 90_000; p Stream 70_000; p Mixed 50_000 ]
  | "531.deepsjeng_r" ->
      mk ~outer ~ws:32768 name [ p Branchy 90_000; p Alu 70_000 ]
  | "541.leela_r" ->
      mk ~outer ~ws:32768 name [ p Branchy 80_000; p Mixed 70_000 ]
  | "548.exchange2_r" ->
      mk ~outer ~ws:16384 name [ p Alu 100_000; p Branchy 60_000 ]
  | "557.xz_r" ->
      mk ~outer ~ws:131072 ~file_io:true name
        [ p Stream 80_000; p Branchy 70_000; p Mixed 50_000 ]
  | _ -> invalid_arg ("Suite.int_program: " ^ name)

let int_names =
  [ "500.perlbench_r"; "502.gcc_r"; "505.mcf_r"; "520.omnetpp_r";
    "523.xalancbmk_r"; "525.x264_r"; "531.deepsjeng_r"; "541.leela_r";
    "548.exchange2_r"; "557.xz_r" ]

let spec2017_int_train = List.map (int_program ~scale:4 ~outer:4) int_names
let spec2017_int_ref = List.map (int_program ~scale:4 ~outer:6) int_names

(* --- SPEC CPU2017 fprate stand-ins ---------------------------------------- *)

let fp_program ~scale ~outer name =
  let p k i = ph k (i * scale) in
  match name with
  | "503.bwaves_r" ->
      mk ~outer ~ws:262144 name [ p Vector 100_000; p Stream 80_000 ]
  | "519.lbm_r" ->
      mk ~outer ~ws:262144 name [ p Stream 120_000; p Vector 60_000 ]
  | "538.imagick_r" ->
      mk ~outer ~ws:65536 name [ p Vector 90_000; p Branchy 50_000; p Mixed 40_000 ]
  | "544.nab_r" ->
      mk ~outer ~ws:65536 name [ p Gather 80_000; p Vector 70_000 ]
  | "549.fotonik3d_r" ->
      mk ~outer ~ws:131072 name [ p Stencil 90_000; p Vector 80_000 ]
  | "554.roms_r" ->
      mk ~outer ~ws:131072 name [ p Stream 80_000; p Stencil 60_000; p Vector 50_000 ]
  | _ -> invalid_arg ("Suite.fp_program: " ^ name)

let fp_names =
  [ "503.bwaves_r"; "519.lbm_r"; "538.imagick_r"; "544.nab_r";
    "549.fotonik3d_r"; "554.roms_r" ]

let spec2017_fp_ref = List.map (fp_program ~scale:4 ~outer:5) fp_names

(* --- SPEC CPU2017 speed / OpenMP stand-ins (8 threads, active wait) ------- *)

let speed_mt name =
  let p = ph in
  match name with
  | "603.bwaves_s" ->
      mk ~outer:5 ~threads:8 ~ws:65536 name [ p Vector 30_000; p Stream 25_000 ]
  | "619.lbm_s" ->
      mk ~outer:5 ~threads:8 ~ws:131072 name [ p Stream 40_000; p Vector 20_000 ]
  | "638.imagick_s" ->
      mk ~outer:5 ~threads:8 ~ws:32768 name [ p Vector 30_000; p Mixed 25_000 ]
  | "644.nab_s" ->
      mk ~outer:5 ~threads:8 ~ws:32768 name [ p Gather 25_000; p Alu 25_000 ]
  | "649.fotonik3d_s" ->
      mk ~outer:5 ~threads:8 ~ws:65536 name [ p Stencil 30_000; p Vector 25_000 ]
  | "654.roms_s" ->
      mk ~outer:5 ~threads:8 ~ws:65536 name [ p Stream 25_000; p Stencil 25_000 ]
  | "657.xz_s.1" ->
      (* Single-threaded, as in Fig. 11. *)
      mk ~outer:5 ~threads:1 ~ws:131072 name [ p Stream 150_000; p Branchy 120_000 ]
  | _ -> invalid_arg ("Suite.speed_mt: " ^ name)

let spec2017_speed_mt =
  List.map speed_mt
    [ "603.bwaves_s"; "619.lbm_s"; "638.imagick_s"; "644.nab_s";
      "649.fotonik3d_s"; "654.roms_s"; "657.xz_s.1" ]

(* --- SPEC CPU2006 stand-ins (Table V) -------------------------------------- *)

let cpu2006 name =
  let p = ph in
  match name with
  | "400.perlbench" -> mk ~outer:4 ~ws:32768 name [ p Branchy 60_000; p Mixed 50_000 ]
  | "401.bzip2" -> mk ~outer:4 ~ws:65536 name [ p Stream 60_000; p Branchy 50_000 ]
  | "403.gcc" ->
      mk ~outer:4 ~ws:131072 name [ p Alu 40_000; p Chase 40_000; p Branchy 40_000 ]
  | "429.mcf" -> mk ~outer:4 ~ws:262144 name [ p Chase 90_000; p Mixed 30_000 ]
  | "445.gobmk" -> mk ~outer:4 ~ws:32768 name [ p Branchy 70_000; p Alu 40_000 ]
  | "456.hmmer" -> mk ~outer:4 ~ws:32768 name [ p Alu 70_000; p Stream 40_000 ]
  | "458.sjeng" -> mk ~outer:4 ~ws:32768 name [ p Branchy 80_000; p Mixed 30_000 ]
  | "462.libquantum" -> mk ~outer:4 ~ws:262144 name [ p Stream 90_000; p Alu 30_000 ]
  | "464.h264ref" -> mk ~outer:4 ~ws:65536 name [ p Vector 60_000; p Mixed 50_000 ]
  | "471.omnetpp" -> mk ~outer:4 ~ws:131072 name [ p Chase 60_000; p Branchy 50_000 ]
  | "473.astar" -> mk ~outer:4 ~ws:131072 name [ p Chase 60_000; p Mixed 50_000 ]
  | "483.xalancbmk" -> mk ~outer:4 ~ws:65536 name [ p Mixed 60_000; p Branchy 50_000 ]
  | "410.bwaves" -> mk ~outer:4 ~ws:262144 name [ p Vector 70_000; p Stream 40_000 ]
  | "433.milc" -> mk ~outer:4 ~ws:262144 name [ p Vector 60_000; p Gather 50_000 ]
  | "444.namd" -> mk ~outer:4 ~ws:32768 name [ p Vector 70_000; p Alu 40_000 ]
  | "447.dealII" -> mk ~outer:4 ~ws:65536 name [ p Vector 50_000; p Chase 50_000 ]
  | "450.soplex" -> mk ~outer:4 ~ws:131072 name [ p Stencil 50_000; p Chase 50_000 ]
  | "453.povray" -> mk ~outer:4 ~ws:32768 name [ p Vector 50_000; p Branchy 50_000 ]
  | "470.lbm" -> mk ~outer:4 ~ws:262144 name [ p Stream 90_000; p Vector 30_000 ]
  | _ -> invalid_arg ("Suite.cpu2006: " ^ name)

let spec2006 =
  List.map cpu2006
    [ "400.perlbench"; "401.bzip2"; "403.gcc"; "429.mcf"; "445.gobmk";
      "456.hmmer"; "458.sjeng"; "462.libquantum"; "464.h264ref"; "471.omnetpp";
      "473.astar"; "483.xalancbmk"; "410.bwaves"; "433.milc"; "444.namd";
      "447.dealII"; "450.soplex"; "453.povray"; "470.lbm" ]

let all =
  spec2017_int_train @ spec2017_int_ref @ spec2017_fp_ref @ spec2017_speed_mt
  @ spec2006

let find name = List.find_opt (fun b -> b.bname = name) all
