lib/harness/pipeline.ml: Array Elfie_core Elfie_coresim Elfie_kernel Elfie_perf Elfie_pin Elfie_simpoint Elfie_workloads Float Hashtbl List Option Printf
