lib/harness/exp_table3.ml: Exp_ref Int64 Lazy List Pipeline Render
