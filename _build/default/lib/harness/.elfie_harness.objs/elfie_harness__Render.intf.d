lib/harness/render.mli:
