lib/harness/exp_table2.ml: Elfie_simpoint Elfie_workloads Lazy Pipeline Render
