lib/harness/exp_ref.ml: Elfie_simpoint Elfie_workloads List Pipeline
