lib/harness/exp_fig9.ml: Buffer Elfie_perf Elfie_simpoint Elfie_workloads Lazy List Option Pipeline Render
