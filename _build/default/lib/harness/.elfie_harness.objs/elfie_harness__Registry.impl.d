lib/harness/registry.ml: Exp_ablations Exp_fig10 Exp_fig11 Exp_fig9 Exp_table1 Exp_table2 Exp_table3 Exp_table4 Exp_table5 List
