lib/harness/registry.mli:
