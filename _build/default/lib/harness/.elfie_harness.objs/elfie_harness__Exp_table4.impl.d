lib/harness/exp_table4.ml: Elfie_coresim Elfie_pin Elfie_workloads Float Int64 Lazy Pipeline Printf Render
