lib/harness/exp_table5.ml: Elfie_gem5 Elfie_pin Elfie_simpoint Elfie_workloads Float Lazy List Pipeline Printf Render
