lib/harness/exp_table1.ml: Buffer Elfie_pin Elfie_workloads Int64 List Printf Render Unix
