lib/harness/render.ml: Buffer Float List Option Printf String
