lib/harness/pipeline.mli: Elfie_elf Elfie_perf Elfie_pin Elfie_simpoint Elfie_workloads
