lib/harness/exp_fig10.ml: Exp_ref Lazy List Pipeline Printf Render
