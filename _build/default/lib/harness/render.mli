(** Plain-text rendering for experiment output: aligned tables and
    horizontal bar charts (the "figures"). *)

(** [table ~header rows] renders aligned columns. *)
val table : header:string list -> string list list -> string

(** [bars ~title series] renders grouped horizontal bars; [series] is
    [(label, [(series_name, value)])]. Values are scaled to a common
    width. *)
val bars : ?unit_label:string -> title:string -> (string * (string * float) list) list -> string

val pct : float -> string
val f2 : float -> string
val f3 : float -> string
