(* Table V: binary-driven gem5 SE-mode simulation of one SimPoint region
   ELFie per SPEC CPU2006 stand-in, under Nehalem-like and Haswell-like
   processor configurations — the resource-scaling study. *)

module Simpoint = Elfie_simpoint.Simpoint
module Gem5 = Elfie_gem5.Gem5

type row = {
  app : string;
  total_slices : int;
  rep_slice : int;
  ipc_nehalem : float;
  ipc_haswell : float;
}

let params =
  (* One representative region per program, as in the paper's Table V. *)
  { Simpoint.default_params with slice_size = 10_000L; warmup = 20_000L; max_k = 1 }

let simulate (b : Elfie_workloads.Suite.benchmark) =
  let rs = Elfie_workloads.Programs.run_spec b.spec in
  let profile = Elfie_pin.Bbv.profile rs ~slice_size:params.Simpoint.slice_size in
  let sel = Simpoint.select ~params profile in
  let region = List.hd sel.Simpoint.regions in
  match
    Pipeline.make_region_elfie rs ~name:(b.bname ^ "_t5")
      ~warmup:region.Simpoint.warmup_actual ~start:region.Simpoint.start
      ~length:region.Simpoint.length
  with
  | None -> None
  | Some (image, sysstate) ->
      let fs_init fs = Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work" in
      let sim cfg = Gem5.simulate_se ~fs_init ~cwd:"/work" cfg image in
      let n = sim Gem5.nehalem and h = sim Gem5.haswell in
      Some
        {
          app = b.bname;
          total_slices = sel.Simpoint.num_slices;
          rep_slice = region.Simpoint.slice_index;
          ipc_nehalem = n.Gem5.ipc;
          ipc_haswell = h.Gem5.ipc;
        }

let results =
  lazy (List.filter_map simulate Elfie_workloads.Suite.spec2006)

let run () =
  let rows = Lazy.force results in
  "Table V: gem5 SE-mode IPC of SPEC CPU2006 region ELFies\n\n"
  ^ Render.table
      ~header:
        [ "application"; "total slices"; "rep. slice"; "IPC Nehalem-like";
          "IPC Haswell-like"; "speedup" ]
      (List.map
         (fun r ->
           [ r.app; string_of_int r.total_slices; string_of_int r.rep_slice;
             Render.f3 r.ipc_nehalem; Render.f3 r.ipc_haswell;
             Printf.sprintf "%.2fx" (r.ipc_haswell /. Float.max 1e-9 r.ipc_nehalem) ])
         rows)
