(* Table IV: application-level (SDE front-end) vs full-system (Simics
   front-end) CoreSim simulation of one x264 region ELFie.

   The paper's observation: the few extra ring-0 instructions of
   full-system mode (~1.6% of the region) have a disproportionate
   effect — longer runtime and a much larger data footprint — because
   kernel code perturbs the TLB and cache hierarchy. *)

module Coresim = Elfie_coresim.Coresim

let region_elfie =
  lazy
    (let b =
       match Elfie_workloads.Suite.find "525.x264_r" with
       | Some b -> b
       | None -> failwith "suite is missing 525.x264_r"
     in
     let rs = Elfie_workloads.Programs.run_spec b.spec in
     let approx = Elfie_workloads.Programs.approx_instructions b.spec in
     match
       Pipeline.make_region_elfie rs ~name:"x264_tab4" ~warmup:0L
         ~start:(Int64.div approx 3L) ~length:120_000L
     with
    | Some elfie -> elfie
    | None -> failwith "could not capture the x264 region")

let simulate mode =
  let image, sysstate = Lazy.force region_elfie in
  Coresim.simulate ~mode
    ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work")
    ~cwd:"/work" Coresim.skylake image

let results = lazy (simulate Coresim.User_level, simulate Coresim.Full_system)

let run () =
  let u, f = Lazy.force results in
  let delta a b =
    if a = 0.0 then "-" else Printf.sprintf "%+.1f%%" (100.0 *. (b -. a) /. a)
  in
  let i64 = Int64.to_float in
  "Table IV: user-level vs full-system CoreSim, one x264 region ELFie\n\n"
  ^ Render.table
      ~header:[ "metric"; "user-level (SDE)"; "full-system (Simics)"; "delta" ]
      [ [ "ring3 instructions"; Int64.to_string u.Coresim.user_instructions;
          Int64.to_string f.Coresim.user_instructions;
          delta (i64 u.Coresim.user_instructions) (i64 f.Coresim.user_instructions) ];
        [ "ring0 instructions"; Int64.to_string u.Coresim.kernel_instructions;
          Int64.to_string f.Coresim.kernel_instructions;
          Printf.sprintf "+%.1f%% of total"
            (100.0
            *. i64 f.Coresim.kernel_instructions
            /. Float.max 1.0 (i64 f.Coresim.user_instructions)) ];
        [ "runtime (cycles)"; Int64.to_string u.Coresim.runtime_cycles;
          Int64.to_string f.Coresim.runtime_cycles;
          delta (i64 u.Coresim.runtime_cycles) (i64 f.Coresim.runtime_cycles) ];
        [ "data footprint (bytes)"; Int64.to_string u.Coresim.data_footprint_bytes;
          Int64.to_string f.Coresim.data_footprint_bytes;
          delta (i64 u.Coresim.data_footprint_bytes) (i64 f.Coresim.data_footprint_bytes) ];
        [ "DTLB misses"; Int64.to_string u.Coresim.dtlb_misses;
          Int64.to_string f.Coresim.dtlb_misses;
          delta (i64 u.Coresim.dtlb_misses) (i64 f.Coresim.dtlb_misses) ];
        [ "LLC misses"; Int64.to_string u.Coresim.llc_misses;
          Int64.to_string f.Coresim.llc_misses;
          delta (i64 u.Coresim.llc_misses) (i64 f.Coresim.llc_misses) ] ]
