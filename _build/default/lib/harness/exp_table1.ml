(* Table I: pinball / ELFie property comparison, including the run-time
   overhead of logging and constrained replay relative to a native run,
   measured in host wall-clock on one single-threaded and one
   multi-threaded workload. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type overhead = { log_x : float; replay_x : float }

let measure_overhead (b : Elfie_workloads.Suite.benchmark) =
  let rs = Elfie_workloads.Programs.run_spec b.spec in
  let stats, t_native = time (fun () -> Elfie_pin.Run.native rs) in
  (* Log (almost) the whole execution as one region. *)
  let length = Int64.sub stats.Elfie_pin.Run.retired 2_000L in
  let result, t_log =
    time (fun () ->
        Elfie_pin.Logger.capture rs ~name:(b.bname ^ "_whole")
          { Elfie_pin.Logger.start = 1_000L; length })
  in
  let _, t_replay =
    time (fun () -> Elfie_pin.Replayer.replay result.Elfie_pin.Logger.pinball)
  in
  { log_x = t_log /. t_native; replay_x = t_replay /. t_native }

let qualitative =
  [ [ ""; "pinballs"; "ELFies" ];
    [ "Allow constrained replay"; "Yes"; "No" ];
    [ "Work across OSes"; "Yes"; "No (Linux-model only)" ];
    [ "Handle all system calls"; "Yes"; "Most (stateless ones)" ];
    [ "Allow symbolic debugging"; "Yes"; "No (symbols for startup only)" ];
    [ "Run natively"; "No"; "Yes" ];
    [ "Exit gracefully"; "Yes"; "Yes (perf counters)" ];
    [ "Run with simulators"; "Yes (modified)"; "Yes (unmodified)" ] ]

let run () =
  let st = measure_overhead (List.nth Elfie_workloads.Suite.spec2017_int_train 5) in
  let mt = measure_overhead (List.hd Elfie_workloads.Suite.spec2017_speed_mt) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Table I: pinball vs ELFie\n\n";
  Buffer.add_string buf
    (Render.table ~header:(List.hd qualitative) (List.tl qualitative));
  Buffer.add_string buf "\nMeasured run-time overhead over a native run:\n";
  Buffer.add_string buf
    (Render.table
       ~header:[ "workload"; "PinPlay logging"; "constrained replay"; "ELFie" ]
       [ [ "single-threaded (525.x264_r)"; Printf.sprintf "%.1fx" st.log_x;
           Printf.sprintf "%.1fx" st.replay_x; "~1x (startup only)" ];
         [ "multi-threaded (603.bwaves_s)"; Printf.sprintf "%.1fx" mt.log_x;
           Printf.sprintf "%.1fx" mt.replay_x; "~1x (startup only)" ] ]);
  Buffer.add_string buf
    "\nNote: the paper reports ~15x (ST) / ~40x (MT) for constrained replay\n\
     because Pin JIT-instruments a real processor; here both sides run on\n\
     the same interpreter, so only the relative ordering (ELFie ~ native,\n\
     logging > native) is meaningful.\n";
  Buffer.contents buf
