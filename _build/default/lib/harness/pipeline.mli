(** The PinPoints pipeline: profile -> SimPoint -> pinballs -> ELFies ->
    validation, shared by the Fig. 9/10 and Table II/III experiments.

    Implements the paper's methodology end to end, including
    {e alternate region selection}: when a cluster's representative
    ELFie does not re-execute gracefully, the second- and third-best
    representatives are tried, recovering coverage (Section I). *)

type region_outcome = {
  region : Elfie_simpoint.Simpoint.region;  (** the region actually used *)
  rank_used : int option;  (** [None] when every alternate failed *)
  elfie_sample : Elfie_perf.Perf.sample option;
  elfie_sample2 : Elfie_perf.Perf.sample option;
      (** an independent second measurement instance (when requested) *)
  sim_cpi : float option;  (** CoreSim region CPI (when simulation is on) *)
}

type validation = {
  bench : string;
  total_ins : int64;
  num_slices : int;
  k : int;
  coverage : float;  (** summed weight of gracefully executing ELFies *)
  native_whole : Elfie_perf.Perf.sample;
  elfie_pred_cpi : float;
  elfie_error : float;  (** |whole - predicted| / whole, ELFie-based *)
  elfie_error2 : float option;  (** second ELFie-based instance *)
  sim_whole_cpi : float option;
  sim_pred_cpi : float option;
  sim_error : float option;  (** same, via whole-program simulation *)
  regions : region_outcome list;
}

(** Build one region ELFie: capture a fat pinball over the region,
    reconstruct sysstate, convert. Returns the image and the sysstate
    (for installing proxy files before runs). [None] if the program
    ended before the region start. *)
val make_region_elfie :
  Elfie_pin.Run.spec ->
  name:string ->
  warmup:int64 ->
  start:int64 ->
  length:int64 ->
  (Elfie_elf.Image.t * Elfie_pin.Sysstate.t) option

(** Measure a region ELFie natively over several trials. *)
val measure_elfie :
  ?trials:int ->
  ?base_seed:int64 ->
  Elfie_elf.Image.t * Elfie_pin.Sysstate.t ->
  Elfie_perf.Perf.sample

(** Full validation of simulation-region selection for one benchmark.
    [second_base_seed] adds an independent second set of ELFie
    measurements (Fig. 9 runs two instances). *)
val validate :
  ?params:Elfie_simpoint.Simpoint.params ->
  ?trials:int ->
  ?base_seed:int64 ->
  ?second_base_seed:int64 ->
  ?with_simulation:bool ->
  ?max_alternates:int ->
  Elfie_workloads.Suite.benchmark ->
  validation
