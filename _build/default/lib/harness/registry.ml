type experiment = { id : string; title : string; run : unit -> string }

let memo f =
  let r = ref None in
  fun () ->
    match !r with
    | Some v -> v
    | None ->
        let v = f () in
        r := Some v;
        v

let all =
  [
    { id = "table1";
      title = "Pinball vs ELFie properties and record/replay overheads";
      run = memo Exp_table1.run };
    { id = "fig9";
      title = "Prediction error: simulation-based vs ELFie-based validation (train int)";
      run = memo Exp_fig9.run };
    { id = "table2";
      title = "gcc PinPoints tuning: longer warmup reduces error";
      run = memo Exp_table2.run };
    { id = "table3";
      title = "SPEC CPU2017 ref suite statistics";
      run = memo Exp_table3.run };
    { id = "fig10";
      title = "SPEC CPU2017 ref PinPoints prediction errors (ELFie-based)";
      run = memo Exp_fig10.run };
    { id = "fig11";
      title = "Sniper: multi-threaded ELFies vs pinballs";
      run = memo Exp_fig11.run };
    { id = "table4";
      title = "CoreSim: application-level vs full-system simulation";
      run = memo Exp_table4.run };
    { id = "table5";
      title = "gem5 SE-mode IPC, Nehalem-like vs Haswell-like";
      run = memo Exp_table5.run };
    { id = "ablations";
      title = "Design-choice ablations (selection policy, fat/lean, alternates, warmup)";
      run = memo Exp_ablations.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids = List.map (fun e -> e.id) all
