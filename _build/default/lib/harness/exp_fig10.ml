(* Fig. 10: ELFie-based prediction errors for the long-running SPEC
   CPU2017 ref stand-ins — the validation that is impractical with
   whole-program simulation but fast on (simulated) native hardware. *)

let run () =
  let rs = Lazy.force Exp_ref.results in
  let series =
    List.map
      (fun (name, v) -> (name, [ ("error", 100.0 *. v.Pipeline.elfie_error) ]))
      rs
  in
  let mean_err =
    let es = List.map (fun (_, v) -> v.Pipeline.elfie_error) rs in
    List.fold_left ( +. ) 0.0 es /. float_of_int (max 1 (List.length es))
  in
  Render.bars ~unit_label:"%"
    ~title:
      "Fig. 10: SPEC CPU2017 ref PinPoints prediction errors (ELFie-based\n\
       validation with alternate-region fallback)"
    series
  ^ Printf.sprintf "\nmean error: %s\n" (Render.pct mean_err)
