(* Shared driver for the SPEC CPU2017 ref experiments: Table III (suite
   statistics) and Fig. 10 (ELFie-based prediction errors) come from the
   same validation pass over the int + fp ref stand-ins. *)

module Simpoint = Elfie_simpoint.Simpoint

let params = { Simpoint.default_params with max_k = 50 }

let benchmarks () =
  Elfie_workloads.Suite.spec2017_int_ref @ Elfie_workloads.Suite.spec2017_fp_ref

let results =
  lazy
    (List.map
       (fun b ->
         (b.Elfie_workloads.Suite.bname,
          Pipeline.validate ~params ~trials:2 ~base_seed:4000L b))
       (benchmarks ()))
