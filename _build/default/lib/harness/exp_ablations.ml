(* Ablations of the design choices DESIGN.md calls out:

   A. region-selection policy — SimPoint clustering vs the naive
      baselines (periodic and random sampling) at equal region budget;
   B. fat vs lean pinballs — checkpoint size and what each can support;
   C. alternate-region fallback — how much coverage rank-1+ recovers;
   D. warmup length sweep on the warmup-sensitive gcc stand-in. *)

module Simpoint = Elfie_simpoint.Simpoint
module Perf = Elfie_perf.Perf
module Pinball = Elfie_pinball.Pinball

let trials = 2
let workdir = "/work"

(* Measure a set of (weight, start, length, warmup) regions of one
   benchmark and return the weighted CPI prediction error. *)
let error_of_selection rs ~whole_cpi regions =
  let requests =
    List.mapi
      (fun i (_, start, length, _) ->
        (string_of_int i, { Elfie_pin.Logger.start; length }))
      regions
  in
  let captured = Elfie_pin.Logger.capture_many rs requests in
  let measured =
    List.concat
      (List.mapi
         (fun i (weight, _, _, warmup) ->
           match List.assoc_opt (string_of_int i) captured with
           | Some { Elfie_pin.Logger.pinball; reached_end = true } ->
               let ss = Elfie_pin.Sysstate.analyze pinball in
               let options =
                 {
                   Elfie_core.Pinball2elf.default_options with
                   sysstate = Some ss;
                   warmup_mark = (if warmup > 0L then Some warmup else None);
                 }
               in
               let image = Elfie_core.Pinball2elf.convert ~options pinball in
               let sample =
                 Perf.elfie_region ~trials
                   ~fs_init:(fun fs -> Elfie_pin.Sysstate.install ss fs ~workdir)
                   ~cwd:workdir image
               in
               if sample.Perf.failures < trials then
                 [ (weight, sample.Perf.mean_cpi) ]
               else []
           | Some _ | None -> [])
         regions)
  in
  let covered = List.fold_left (fun a (w, _) -> a +. w) 0.0 measured in
  if covered <= 0.0 then None
  else begin
    let pred =
      List.fold_left (fun a (w, c) -> a +. (w *. c)) 0.0 measured /. covered
    in
    Some (Float.abs (whole_cpi -. pred) /. whole_cpi)
  end

(* --- A: selection policy -------------------------------------------------- *)

let policy_benchmarks = [ "505.mcf_r"; "525.x264_r"; "557.xz_r"; "541.leela_r" ]

let region_of_slice params idx weight =
  let slice_size = params.Simpoint.slice_size in
  let slice_start = Int64.mul (Int64.of_int idx) slice_size in
  let warmup = Int64.min params.Simpoint.warmup slice_start in
  (weight, Int64.sub slice_start warmup, Int64.add warmup slice_size, warmup)

let policy_study () =
  let params = Simpoint.default_params in
  let rows =
    List.map
      (fun name ->
        let b = Option.get (Elfie_workloads.Suite.find name) in
        let rs = Elfie_workloads.Programs.run_spec b.spec in
        let profile = Elfie_pin.Bbv.profile rs ~slice_size:params.Simpoint.slice_size in
        let sel = Simpoint.select ~params profile in
        let k = sel.Simpoint.k in
        let n = sel.Simpoint.num_slices in
        let whole_cpi = (Perf.whole_program ~trials rs).Perf.mean_cpi in
        let err_simpoint =
          error_of_selection rs ~whole_cpi
            (List.map
               (fun (r : Simpoint.region) ->
                 (r.weight, r.start, r.length, r.warmup_actual))
               sel.Simpoint.regions)
        in
        (* Periodic: k evenly spaced slices, equal weights. *)
        let periodic =
          List.init k (fun i -> region_of_slice params (i * n / k) (1.0 /. float_of_int k))
        in
        let err_periodic = error_of_selection rs ~whole_cpi periodic in
        (* Random: k uniformly drawn slices, equal weights. *)
        let rng = Elfie_util.Rng.create 0xABCDEFL in
        let random =
          List.init k (fun _ ->
              region_of_slice params (Elfie_util.Rng.int rng n) (1.0 /. float_of_int k))
        in
        let err_random = error_of_selection rs ~whole_cpi random in
        let cell = function Some e -> Render.pct e | None -> "-" in
        [ name; string_of_int k; cell err_simpoint; cell err_periodic;
          cell err_random ])
      policy_benchmarks
  in
  "A. Region-selection policy at equal region budget (prediction error):\n"
  ^ Render.table
      ~header:[ "benchmark"; "regions"; "SimPoint"; "periodic"; "random" ]
      rows

(* --- B: fat vs lean pinballs ----------------------------------------------- *)

let fat_lean_study () =
  let rows =
    List.map
      (fun name ->
        let b = Option.get (Elfie_workloads.Suite.find name) in
        let rs = Elfie_workloads.Programs.run_spec b.spec in
        let approx = Elfie_workloads.Programs.approx_instructions b.spec in
        let region =
          { Elfie_pin.Logger.start = Int64.div approx 3L; length = 100_000L }
        in
        let fat =
          (Elfie_pin.Logger.capture ~fat:true rs ~name:"fat" region).pinball
        in
        let lean =
          (Elfie_pin.Logger.capture ~fat:false rs ~name:"lean" region).pinball
        in
        let run pb =
          let ss = Elfie_pin.Sysstate.analyze pb in
          let image =
            Elfie_core.Pinball2elf.convert
              ~options:
                { Elfie_core.Pinball2elf.default_options with sysstate = Some ss }
              pb
          in
          let o =
            Elfie_core.Elfie_runner.run
              ~fs_init:(fun fs -> Elfie_pin.Sysstate.install ss fs ~workdir)
              ~cwd:workdir image
          in
          if o.Elfie_core.Elfie_runner.graceful then "graceful" else "failed"
        in
        [ b.Elfie_workloads.Suite.bname;
          Printf.sprintf "%d pages" (List.length fat.Pinball.pages);
          Printf.sprintf "%d pages" (List.length lean.Pinball.pages);
          run fat; run lean ])
      [ "505.mcf_r"; "525.x264_r" ]
  in
  "B. Fat vs lean pinballs (100k-instruction regions):\n"
  ^ Render.table
      ~header:
        [ "benchmark"; "fat image"; "lean image"; "fat ELFie"; "lean ELFie" ]
      rows
  ^ "(ELFies require fat pinballs in general: a lean image only holds the\n\
     pages the logged run touched, so any divergence faults.)\n"

(* --- C: alternate-region fallback ------------------------------------------ *)

let alternates_study () =
  let rows =
    List.map
      (fun name ->
        let b = Option.get (Elfie_workloads.Suite.find name) in
        let v1 = Pipeline.validate ~trials ~max_alternates:1 b in
        let v3 = Pipeline.validate ~trials ~max_alternates:3 b in
        let ranks_used =
          List.filter_map (fun ro -> ro.Pipeline.rank_used) v3.Pipeline.regions
          |> List.filter (fun r -> r > 0)
          |> List.length
        in
        [ name; Render.pct v1.Pipeline.coverage; Render.pct v3.Pipeline.coverage;
          string_of_int ranks_used ])
      [ "525.x264_r"; "557.xz_r"; "619.lbm_s" ]
  in
  "C. Alternate-region fallback:\n"
  ^ Render.table
      ~header:
        [ "benchmark"; "coverage (rank 0 only)"; "coverage (3 alternates)";
          "clusters using alternates" ]
      rows
  ^ "(With fat pinballs and SYSSTATE, rank-0 ELFies of these workloads\n\
     already re-execute reliably; the fallback guards against the failure\n\
     modes of study B — lean images — and multi-threaded divergence.)\n"

(* --- D: warmup sweep --------------------------------------------------------- *)

let warmup_study () =
  let b = Option.get (Elfie_workloads.Suite.find "502.gcc_r") in
  let rows =
    List.map
      (fun warmup ->
        let params = { Simpoint.default_params with warmup } in
        let v = Pipeline.validate ~params ~trials ~base_seed:2500L b in
        [ Int64.to_string warmup; Render.pct v.Pipeline.elfie_error ])
      [ 0L; 100_000L; 200_000L; 300_000L; 400_000L ]
  in
  "D. Warmup sweep on the warmup-sensitive gcc stand-in:\n"
  ^ Render.table ~header:[ "warmup (instructions)"; "prediction error" ] rows

(* --- E: checkpoint technology comparison ------------------------------------ *)

let checkpoint_comparison () =
  let b = Option.get (Elfie_workloads.Suite.find "525.x264_r") in
  let rs = Elfie_workloads.Programs.run_spec b.spec in
  let approx = Elfie_workloads.Programs.approx_instructions b.spec in
  let start = Int64.div approx 3L in
  (* CRIU-style whole-process snapshot at the region start. *)
  let machine, kernel = Elfie_pin.Run.instantiate rs in
  Elfie_machine.Machine.run ~max_ins:start machine;
  let criu = Elfie_criu.Criu.checkpoint machine kernel in
  (* Pinball and ELFie of a region starting at the same point. *)
  let pb =
    (Elfie_pin.Logger.capture rs ~name:"cmp"
       { Elfie_pin.Logger.start; length = 100_000L })
      .pinball
  in
  let ss = Elfie_pin.Sysstate.analyze pb in
  let elfie =
    Elfie_core.Pinball2elf.convert
      ~options:{ Elfie_core.Pinball2elf.default_options with sysstate = Some ss }
      pb
  in
  let pinball_bytes =
    List.fold_left (fun a (_, s) -> a + String.length s) 0
      (Elfie_pinball.Pinball.to_files pb)
  in
  "E. Checkpoint technologies on the same execution point (x264 stand-in):\n"
  ^ Render.table
      ~header:[ "artifact"; "size"; "stand-alone executable"; "bounded region" ]
      [ [ "CRIU-style image";
          Printf.sprintf "%d KiB" (Elfie_criu.Criu.image_bytes criu / 1024);
          "no (needs restore machinery)"; "no (open-ended)" ];
        [ "fat pinball";
          Printf.sprintf "%d KiB" (pinball_bytes / 1024);
          "no (needs the replayer)"; "yes (recorded icounts)" ];
        [ "ELFie";
          Printf.sprintf "%d KiB"
            (Bytes.length (Elfie_elf.Image.write elfie) / 1024);
          "yes"; "yes (armed counters)" ] ]

let run () =
  String.concat "\n"
    [ policy_study (); fat_lean_study (); alternates_study (); warmup_study ();
      checkpoint_comparison () ]
