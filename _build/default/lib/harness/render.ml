let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let cell = Option.value ~default:"" (List.nth_opt row c) in
           cell ^ String.make (w - String.length cell) ' ')
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let bars ?(unit_label = "") ~title series =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  let max_v =
    List.fold_left
      (fun m (_, vs) -> List.fold_left (fun m (_, v) -> Float.max m v) m vs)
      1e-9 series
  in
  let label_w =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 series
  in
  let series_w =
    List.fold_left
      (fun m (_, vs) -> List.fold_left (fun m (s, _) -> max m (String.length s)) m vs)
      0 series
  in
  let bar_width = 40 in
  List.iter
    (fun (label, vs) ->
      List.iteri
        (fun i (sname, v) ->
          let n = int_of_float (Float.round (float_of_int bar_width *. v /. max_v)) in
          let lab = if i = 0 then label else "" in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-*s |%s %.3f%s\n" label_w lab series_w sname
               (String.make (max 0 n) '#')
               v unit_label))
        vs)
    series;
  Buffer.contents buf
