(* Table II: tuning region selection for gcc — growing the warmup region
   cuts the prediction error, as in the paper (800 M -> 1.2 B,
   scaled here to 80 k -> 120 k). *)

module Simpoint = Elfie_simpoint.Simpoint

let gcc () =
  match Elfie_workloads.Suite.find "502.gcc_r" with
  | Some b -> b
  | None -> failwith "suite is missing 502.gcc_r"

let validate_with_warmup warmup =
  let params = { Simpoint.default_params with warmup } in
  Pipeline.validate ~params ~trials:3 ~base_seed:2500L (gcc ())

let results = lazy (validate_with_warmup 200_000L, validate_with_warmup 300_000L)

let run () =
  let v1, v2 = Lazy.force results in
  "Table II: gcc PinPoints tuning via longer warmup\n\n"
  ^ Render.table
      ~header:[ "warmup (instructions)"; "prediction error"; "coverage" ]
      [ [ "200,000 (paper: 800 M)"; Render.pct v1.Pipeline.elfie_error;
          Render.pct v1.Pipeline.coverage ];
        [ "300,000 (paper: 1.2 B)"; Render.pct v2.Pipeline.elfie_error;
          Render.pct v2.Pipeline.coverage ] ]
