(** Experiment registry: every table and figure of the paper's
    evaluation, addressable by id. *)

type experiment = {
  id : string;  (** e.g. ["fig9"], ["table4"] *)
  title : string;
  run : unit -> string;  (** produce the rendered report (memoized) *)
}

val all : experiment list
val find : string -> experiment option
val ids : string list
