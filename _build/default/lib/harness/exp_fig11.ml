(* Fig. 11: Sniper simulation of multi-threaded regions, pinball replay
   (constrained) vs ELFie (unconstrained).

   The region end for ELFie simulation is a (PC, count) pair: a hot
   instruction outside any spin loop, with its in-region global
   execution count determined by a separate (replay) profiling run —
   the paper's exact methodology. Constrained replay reproduces the
   recorded instruction counts; unconstrained ELFies retire more
   instructions in active-wait spin loops, except for the
   single-threaded xz. *)

module Sniper = Elfie_sniper.Sniper

type row = {
  app : string;
  recorded_mins : float;
  pb_sim_mins : float;
  elfie_sim_mins : float;
  pb_runtime_mcyc : float;
  elfie_runtime_mcyc : float;
}

let mi v = Int64.to_float v /. 1.0e6

(* Region end: last in-region instruction outside the spin barrier,
   found by a separate profiling run of the pinball. *)
let pick_end_condition pinball image =
  let exclude =
    match
      ( Elfie_elf.Image.find_symbol image "barrier_begin",
        Elfie_elf.Image.find_symbol image "barrier_end" )
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None
  in
  Sniper.profile_end_condition ?exclude pinball

let config = Sniper.gainestown ~cores:8

let simulate (b : Elfie_workloads.Suite.benchmark) =
  let rs = Elfie_workloads.Programs.run_spec b.spec in
  let image = Elfie_workloads.Programs.image b.spec in
  let approx = Elfie_workloads.Programs.approx_instructions b.spec in
  let start = Int64.div approx 3L in
  let length = 240_000L in
  let { Elfie_pin.Logger.pinball; _ } =
    (* Log under fine time-slicing, as Pin-based logging serializes
       threads; barrier spin in the recording stays minimal. *)
    Elfie_pin.Logger.capture
      ~scheduler:
        (Elfie_machine.Machine.Free
           { seed = rs.Elfie_pin.Run.seed; quantum_min = 10; quantum_max = 30 })
      rs ~name:(b.bname ^ "_mt") { start; length }
  in
  let recorded = Elfie_pinball.Pinball.total_icount pinball in
  let pb = Sniper.simulate_pinball config pinball in
  let ec = pick_end_condition pinball image in
  let sysstate = Elfie_pin.Sysstate.analyze pinball in
  let options =
    {
      Elfie_core.Pinball2elf.default_options with
      sysstate = Some sysstate;
      marker = Some Elfie_core.Pinball2elf.Sniper;
      (* Region end is the simulator's (PC, count) criterion, as in the
         paper's Sniper study — not the hardware counter. *)
      arm_counters = false;
    }
  in
  let elfie = Elfie_core.Pinball2elf.convert ~options pinball in
  let el =
    Sniper.simulate_elfie ~end_condition:ec
      ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work")
      ~cwd:"/work"
      ~max_ins:(Int64.mul 20L length)
      config elfie
  in
  {
    app = b.bname;
    recorded_mins = mi recorded;
    pb_sim_mins = mi pb.Sniper.instructions;
    elfie_sim_mins = mi el.Sniper.instructions;
    pb_runtime_mcyc = mi pb.Sniper.runtime_cycles;
    elfie_runtime_mcyc = mi el.Sniper.runtime_cycles;
  }

let results =
  lazy (List.map simulate Elfie_workloads.Suite.spec2017_speed_mt)

let run () =
  let rows = Lazy.force results in
  let icounts =
    List.map
      (fun r ->
        ( r.app,
          [ ("recorded", r.recorded_mins); ("pinball-sim", r.pb_sim_mins);
            ("ELFie-sim", r.elfie_sim_mins) ] ))
      rows
  in
  let runtimes =
    List.map
      (fun r ->
        ( r.app,
          [ ("pinball-sim", r.pb_runtime_mcyc); ("ELFie-sim", r.elfie_runtime_mcyc) ] ))
      rows
  in
  Render.bars ~unit_label:" Mins"
    ~title:"Fig. 11a: Sniper simulated instruction counts (8-core Gainestown)"
    icounts
  ^ "\n"
  ^ Render.bars ~unit_label:" Mcyc"
      ~title:"Fig. 11b: Sniper predicted runtimes" runtimes
