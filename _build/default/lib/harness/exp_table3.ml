(* Table III: basic statistics of the ref PinPoints runs — dynamic
   instruction counts, slice counts, selected regions and ELFie
   coverage. *)

let run () =
  let rs = Lazy.force Exp_ref.results in
  "Table III: SPEC CPU2017 ref stand-ins, PinPoints statistics\n\n"
  ^ Render.table
      ~header:
        [ "benchmark"; "instructions"; "slices"; "regions (k)"; "coverage" ]
      (List.map
         (fun (name, v) ->
           [ name; Int64.to_string v.Pipeline.total_ins;
             string_of_int v.Pipeline.num_slices; string_of_int v.Pipeline.k;
             Render.pct v.Pipeline.coverage ])
         rs)
