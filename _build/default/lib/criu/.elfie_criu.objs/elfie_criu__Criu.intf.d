lib/criu/criu.mli: Elfie_kernel Elfie_machine
