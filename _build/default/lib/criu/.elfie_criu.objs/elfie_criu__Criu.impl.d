lib/criu/criu.ml: Addr_space Array Byteio Bytes Context Elfie_kernel Elfie_machine Elfie_util List Machine String Vkernel
