open Elfie_util

type syscall_entry = {
  sys_nr : int;
  sys_args : int64 array;
  sys_path : string option;
  sys_ret : int64;
  sys_writes : (int64 * string) list;
  sys_reexec : bool;
}

type t = {
  name : string;
  fat : bool;
  contexts : Elfie_machine.Context.t array;
  pages : (int64 * bytes) list;
  icounts : int64 array;
  schedule : (int * int) list;
  injections : syscall_entry list array;
  brk : int64;
  symbols : (string * int64) list;
}

let num_threads t = Array.length t.contexts

let total_icount t = Array.fold_left Int64.add 0L t.icounts

let image_bytes t =
  List.fold_left (fun acc (_, b) -> acc + Bytes.length b) 0 t.pages

(* --- Serialization ------------------------------------------------------ *)

let text_magic = 0x56585054 (* "TPXV" *)
let global_magic = 0x56584c47
let inj_magic = 0x56584a49
let order_magic = 0x5658524f

let write_text t =
  let w = Byteio.Writer.create ~capacity:(image_bytes t + 64) () in
  Byteio.Writer.u32 w text_magic;
  Byteio.Writer.u32 w (List.length t.pages);
  List.iter
    (fun (addr, data) ->
      Byteio.Writer.u64 w addr;
      Byteio.Writer.u32 w (Bytes.length data);
      Byteio.Writer.bytes w data)
    t.pages;
  Bytes.to_string (Byteio.Writer.contents w)

let read_text s =
  let r = Byteio.Reader.of_string s in
  if Byteio.Reader.u32 r <> text_magic then failwith "Pinball: bad .text magic";
  let n = Byteio.Reader.u32 r in
  List.init n (fun _ ->
      let addr = Byteio.Reader.u64 r in
      let len = Byteio.Reader.u32 r in
      (addr, Byteio.Reader.bytes r len))

let write_global t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w global_magic;
  Byteio.Writer.u8 w (if t.fat then 1 else 0);
  Byteio.Writer.u32 w (Array.length t.contexts);
  Array.iter (Byteio.Writer.u64 w) t.icounts;
  Byteio.Writer.u64 w t.brk;
  Byteio.Writer.u32 w (List.length t.symbols);
  List.iter
    (fun (name, value) ->
      Byteio.Writer.u32 w (String.length name);
      Byteio.Writer.string w name;
      Byteio.Writer.u64 w value)
    t.symbols;
  Bytes.to_string (Byteio.Writer.contents w)

let read_global s =
  let r = Byteio.Reader.of_string s in
  if Byteio.Reader.u32 r <> global_magic then failwith "Pinball: bad .global.log";
  let fat = Byteio.Reader.u8 r = 1 in
  let n = Byteio.Reader.u32 r in
  let icounts = Array.init n (fun _ -> Byteio.Reader.u64 r) in
  let brk = Byteio.Reader.u64 r in
  let nsyms = Byteio.Reader.u32 r in
  let symbols =
    List.init nsyms (fun _ ->
        let len = Byteio.Reader.u32 r in
        let name = Byteio.Reader.string_n r len in
        (name, Byteio.Reader.u64 r))
  in
  (fat, icounts, brk, symbols)

let write_inj t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w inj_magic;
  Byteio.Writer.u32 w (Array.length t.injections);
  Array.iter
    (fun entries ->
      Byteio.Writer.u32 w (List.length entries);
      List.iter
        (fun e ->
          Byteio.Writer.u32 w e.sys_nr;
          Array.iter (Byteio.Writer.u64 w) e.sys_args;
          (match e.sys_path with
          | Some p ->
              Byteio.Writer.u32 w (String.length p);
              Byteio.Writer.string w p
          | None -> Byteio.Writer.u32 w 0xffff_ffff);
          Byteio.Writer.u64 w e.sys_ret;
          Byteio.Writer.u8 w (if e.sys_reexec then 1 else 0);
          Byteio.Writer.u32 w (List.length e.sys_writes);
          List.iter
            (fun (addr, data) ->
              Byteio.Writer.u64 w addr;
              Byteio.Writer.u32 w (String.length data);
              Byteio.Writer.string w data)
            e.sys_writes)
        entries)
    t.injections;
  Bytes.to_string (Byteio.Writer.contents w)

let read_inj s =
  let r = Byteio.Reader.of_string s in
  if Byteio.Reader.u32 r <> inj_magic then failwith "Pinball: bad .inj magic";
  let threads = Byteio.Reader.u32 r in
  Array.init threads (fun _ ->
      let n = Byteio.Reader.u32 r in
      List.init n (fun _ ->
          let sys_nr = Byteio.Reader.u32 r in
          let sys_args = Array.init 6 (fun _ -> Byteio.Reader.u64 r) in
          let sys_path =
            let len = Byteio.Reader.u32 r in
            if len = 0xffff_ffff then None else Some (Byteio.Reader.string_n r len)
          in
          let sys_ret = Byteio.Reader.u64 r in
          let sys_reexec = Byteio.Reader.u8 r = 1 in
          let nw = Byteio.Reader.u32 r in
          let sys_writes =
            List.init nw (fun _ ->
                let addr = Byteio.Reader.u64 r in
                let len = Byteio.Reader.u32 r in
                (addr, Byteio.Reader.string_n r len))
          in
          { sys_nr; sys_args; sys_path; sys_ret; sys_writes; sys_reexec }))

let write_order t =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w order_magic;
  Byteio.Writer.u32 w (List.length t.schedule);
  List.iter
    (fun (tid, n) ->
      Byteio.Writer.u32 w tid;
      Byteio.Writer.u32 w n)
    t.schedule;
  Bytes.to_string (Byteio.Writer.contents w)

let read_order s =
  let r = Byteio.Reader.of_string s in
  if Byteio.Reader.u32 r <> order_magic then failwith "Pinball: bad .order magic";
  let n = Byteio.Reader.u32 r in
  List.init n (fun _ ->
      let tid = Byteio.Reader.u32 r in
      (tid, Byteio.Reader.u32 r))

let to_files t =
  let regs =
    Array.to_list
      (Array.mapi
         (fun i ctx ->
           (Printf.sprintf "%d.reg" i,
            Bytes.to_string (Elfie_machine.Context.to_bytes ctx)))
         t.contexts)
  in
  [ ("text", write_text t); ("global.log", write_global t);
    ("inj", write_inj t); ("order", write_order t) ]
  @ regs

let of_files ~name files =
  let get suffix =
    match List.assoc_opt suffix files with
    | Some s -> s
    | None -> failwith (Printf.sprintf "Pinball: missing %s file" suffix)
  in
  let fat, icounts, brk, symbols = read_global (get "global.log") in
  let n = Array.length icounts in
  let contexts =
    Array.init n (fun i ->
        Elfie_machine.Context.of_bytes
          (Bytes.of_string (get (Printf.sprintf "%d.reg" i))))
  in
  {
    name;
    fat;
    contexts;
    pages = read_text (get "text");
    icounts;
    schedule = read_order (get "order");
    injections = read_inj (get "inj");
    brk;
    symbols;
  }

let save t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (suffix, content) ->
      let path = Filename.concat dir (t.name ^ "." ^ suffix) in
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc)
    (to_files t)

let load ~dir ~name =
  let read_file suffix =
    let path = Filename.concat dir (name ^ "." ^ suffix) in
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some (suffix, s)
    end
    else None
  in
  let n_threads =
    match read_file "global.log" with
    | Some (_, s) ->
        let _, icounts, _, _ = read_global s in
        Array.length icounts
    | None -> failwith ("Pinball.load: no global.log for " ^ name)
  in
  let suffixes =
    [ "text"; "global.log"; "inj"; "order" ]
    @ List.init n_threads (Printf.sprintf "%d.reg")
  in
  of_files ~name (List.filter_map read_file suffixes)

let equal a b =
  a.fat = b.fat
  && Array.length a.contexts = Array.length b.contexts
  && Array.for_all2 Elfie_machine.Context.equal a.contexts b.contexts
  && List.equal (fun (x, p) (y, q) -> x = y && Bytes.equal p q) a.pages b.pages
  && a.icounts = b.icounts && a.schedule = b.schedule
  && a.injections = b.injections && a.brk = b.brk && a.symbols = b.symbols

let pp_summary fmt t =
  Format.fprintf fmt
    "pinball %s: %d thread(s), %d pages (%d bytes), %Ld instructions, %s" t.name
    (num_threads t) (List.length t.pages) (image_bytes t) (total_icount t)
    (if t.fat then "fat" else "lean")
