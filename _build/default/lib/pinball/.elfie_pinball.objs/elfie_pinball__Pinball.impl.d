lib/pinball/pinball.ml: Array Byteio Bytes Elfie_machine Elfie_util Filename Format Int64 List Printf String Sys
