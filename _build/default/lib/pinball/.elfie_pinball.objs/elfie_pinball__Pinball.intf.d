lib/pinball/pinball.mli: Elfie_machine Format
