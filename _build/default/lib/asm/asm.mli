(** A textual assembler for VX86.

    Intel-flavoured syntax, one statement per line:

    {v
    ; compute 10 * 7 and exit with it
    _start:
        mov   rcx, 10
        mov   rax, 0
    loop:
        add   rax, 7
        sub   rcx, 1
        jne   loop
        mov   rdi, rax
        mov   rax, 231        ; exit_group
        syscall
    msg:
        .asciz "hello"
        .align 8
        .quad  0xdeadbeef
    v}

    Memory operands are [[base + index*scale + disp]]; loads/stores are
    width-suffixed moves ([movb]/[movw]/[movl]/[movq]); [mov reg, label]
    loads a label's absolute address. Directives: [.byte], [.quad],
    [.ascii], [.asciz], [.zero N], [.align N].

    Assembly is two-pass via {!Elfie_isa.Builder}; labels may be used
    before they are defined. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** [assemble ~base source] assembles a program at virtual address
    [base]. All labels are exported as symbols. *)
val assemble :
  base:int64 -> string -> (Elfie_isa.Builder.program, error) result

(** [assemble_exn] raises [Failure] with a formatted message. *)
val assemble_exn : base:int64 -> string -> Elfie_isa.Builder.program

(** Render one instruction back to parseable text (inverse of the
    instruction subset of the grammar, modulo label names). *)
val print_instruction : Elfie_isa.Insn.t -> string
