lib/asm/asm.ml: Buffer Builder Bytes Elfie_isa Format Hashtbl Insn Int64 List Option Printf Reg String
