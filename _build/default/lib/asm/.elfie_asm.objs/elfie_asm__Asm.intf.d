lib/asm/asm.mli: Elfie_isa Format
