open Elfie_isa

type error = { line : int; message : string }

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

exception Err of string

let err fmt = Printf.ksprintf (fun s -> raise (Err s)) fmt

(* --- lexer ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Num of int64
  | Str of string
  | LBracket
  | RBracket
  | Plus
  | Minus
  | Star
  | Comma
  | Colon

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ';' then i := n (* comment *)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '[' then (push LBracket; incr i)
    else if c = ']' then (push RBracket; incr i)
    else if c = '+' then (push Plus; incr i)
    else if c = '-' then (push Minus; incr i)
    else if c = '*' then (push Star; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = ':' then (push Colon; incr i)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if line.[!i] = '"' then closed := true
        else if line.[!i] = '\\' && !i + 1 < n then begin
          (match line.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '0' -> Buffer.add_char buf '\000'
          | c -> Buffer.add_char buf c);
          i := !i + 1
        end
        else Buffer.add_char buf line.[!i];
        incr i
      done;
      if not !closed then err "unterminated string literal";
      incr i;
      push (Str (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do incr i done;
      let text = String.sub line start (!i - start) in
      match Int64.of_string_opt text with
      | Some v -> push (Num v)
      | None -> err "bad number %S" text
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do incr i done;
      push (Ident (String.sub line start (!i - start)))
    end
    else err "unexpected character %C" c
  done;
  List.rev !tokens

(* --- operand parsing ---------------------------------------------------------- *)

type operand =
  | OReg of Reg.gpr
  | OXmm of int
  | OImm of int64
  | OMem of Insn.mem
  | OMemLabel of string  (** [[label]]: absolute slot at a label *)
  | OLabel of string

let xmm_of_name s =
  if String.length s > 3 && String.sub s 0 3 = "xmm" then
    match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
    | Some n when n >= 0 && n < Reg.xmm_count -> Some n
    | Some _ | None -> None
  else None

(* Memory operand body: terms separated by +/- where a term is reg,
   reg*scale or a displacement. *)
let parse_mem tokens =
  let base = ref None and index = ref None and scale = ref 1 and disp = ref 0L in
  let rec terms sign = function
    | [] -> ()
    | Num v :: rest ->
        disp := Int64.add !disp (if sign then Int64.neg v else v);
        more rest
    | Ident r :: Star :: Num s :: rest -> (
        match Reg.gpr_of_name r with
        | Some reg when not sign ->
            index := Some reg;
            scale := Int64.to_int s;
            more rest
        | Some _ -> err "negative index register"
        | None -> err "unknown register %S" r)
    | Ident r :: rest -> (
        match Reg.gpr_of_name r with
        | Some reg when not sign ->
            if !base = None then base := Some reg
            else if !index = None then index := Some reg
            else err "too many registers in address";
            more rest
        | Some _ -> err "negative base register"
        | None -> err "unknown register %S" r)
    | _ -> err "malformed memory operand"
  and more = function
    | [] -> ()
    | Plus :: rest -> terms false rest
    | Minus :: rest -> terms true rest
    | _ -> err "malformed memory operand"
  in
  (match tokens with Minus :: rest -> terms true rest | ts -> terms false ts);
  { Insn.base = !base; index = !index; scale = !scale; disp = !disp }

let split_operands tokens =
  let rec go current acc depth = function
    | [] -> List.rev (List.rev current :: acc)
    | Comma :: rest when depth = 0 -> go [] (List.rev current :: acc) 0 rest
    | (LBracket as t) :: rest -> go (t :: current) acc (depth + 1) rest
    | (RBracket as t) :: rest -> go (t :: current) acc (depth - 1) rest
    | t :: rest -> go (t :: current) acc depth rest
  in
  match tokens with [] -> [] | _ -> go [] [] 0 tokens

let parse_operand tokens =
  match tokens with
  | [ Num v ] -> OImm v
  | [ Minus; Num v ] -> OImm (Int64.neg v)
  | [ Ident name ] -> (
      match Reg.gpr_of_name name with
      | Some r -> OReg r
      | None -> (
          match xmm_of_name name with
          | Some x -> OXmm x
          | None -> OLabel name))
  | [ LBracket; Ident name; RBracket ]
    when Reg.gpr_of_name name = None && xmm_of_name name = None ->
      OMemLabel name
  | LBracket :: rest -> (
      match List.rev rest with
      | RBracket :: body_rev -> OMem (parse_mem (List.rev body_rev))
      | _ -> err "missing ']'")
  | _ -> err "malformed operand"

(* --- statement assembly -------------------------------------------------------- *)

type state = {
  b : Builder.t;
  labels : (string, Builder.label) Hashtbl.t;
}

let label_of st name =
  match Hashtbl.find_opt st.labels name with
  | Some l -> l
  | None ->
      let l = Builder.new_label ~name st.b in
      Hashtbl.replace st.labels name l;
      l

let alu_of = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "imul" -> Some Insn.Imul
  | "cmp" -> Some Insn.Cmp
  | "test" -> Some Insn.Test
  | _ -> None

let shift_of = function
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | "sar" -> Some Insn.Sar
  | _ -> None

let cond_of = function
  | "je" | "jz" -> Some Insn.Eq
  | "jne" | "jnz" -> Some Insn.Ne
  | "jl" -> Some Insn.Lt
  | "jge" -> Some Insn.Ge
  | "jle" -> Some Insn.Le
  | "jg" -> Some Insn.Gt
  | "jb" -> Some Insn.Ult
  | "jae" -> Some Insn.Uge
  | _ -> None

let width_of = function
  | "movb" -> Some Insn.W8
  | "movw" -> Some Insn.W16
  | "movl" -> Some Insn.W32
  | "movq" -> Some Insn.W64
  | _ -> None

let vop_of = function
  | "vaddpd" -> Some Insn.Vadd
  | "vmulpd" -> Some Insn.Vmul
  | "vsubpd" -> Some Insn.Vsub
  | _ -> None

let zero_operand_of = function
  | "ret" -> Some Insn.Ret
  | "syscall" -> Some Insn.Syscall
  | "cpuid" -> Some Insn.Cpuid
  | "nop" -> Some Insn.Nop
  | "pause" -> Some Insn.Pause
  | "hlt" -> Some Insn.Hlt
  | "ud2" -> Some Insn.Ud2
  | "popf" -> Some Insn.Popf
  | "pushf" -> Some Insn.Pushf
  | _ -> None

let reg_unary_of name (r : Reg.gpr) =
  match name with
  | "neg" -> Some (Insn.Neg r)
  | "push" -> Some (Insn.Push r)
  | "pop" -> Some (Insn.Pop r)
  | "ldctx" -> Some (Insn.Ldctx r)
  | "stctx" -> Some (Insn.Stctx r)
  | "wrfsbase" -> Some (Insn.Wrfsbase r)
  | "wrgsbase" -> Some (Insn.Wrgsbase r)
  | "rdfsbase" -> Some (Insn.Rdfsbase r)
  | "rdgsbase" -> Some (Insn.Rdgsbase r)
  | _ -> None

let directive st name operands_tokens =
  match (name, operands_tokens) with
  | (".ascii" | ".asciz"), [ [ Str s ] ] ->
      Builder.raw st.b (Bytes.of_string (if name = ".asciz" then s ^ "\000" else s))
  | (".ascii" | ".asciz"), _ -> err "%s expects a string literal" name
  | _ -> (
      let operands = List.map parse_operand operands_tokens in
      match (name, operands) with
      | ".byte", ops ->
          List.iter
            (function
              | OImm v -> Builder.byte st.b (Int64.to_int v)
              | _ -> err ".byte expects numbers")
            ops
      | ".quad", ops ->
          List.iter
            (function
              | OImm v -> Builder.quad st.b v
              | OLabel l -> Builder.quad_label st.b (label_of st l)
              | _ -> err ".quad expects numbers or labels")
            ops
      | ".zero", [ OImm n ] -> Builder.zeros st.b (Int64.to_int n)
      | ".align", [ OImm n ] -> Builder.align st.b (Int64.to_int n)
      | _ -> err "unknown or malformed directive %S" name)

let instruction st mnemonic operands =
  let ins i = Builder.ins st.b i in
  match (mnemonic, operands) with
  | "mov", [ OReg d; OImm v ] -> ins (Insn.Mov_ri (d, v))
  | "mov", [ OReg d; OReg s ] -> ins (Insn.Mov_rr (d, s))
  | "mov", [ OReg d; OLabel l ] -> Builder.mov_label st.b d (label_of st l)
  | "mov", [ OReg d; OMem m ] -> ins (Insn.Load (Insn.W64, d, m))
  | "mov", [ OMem m; OReg s ] -> ins (Insn.Store (Insn.W64, m, s))
  | ("movb" | "movw" | "movl" | "movq"), [ OReg d; OMem m ] ->
      ins (Insn.Load (Option.get (width_of mnemonic), d, m))
  | ("movb" | "movw" | "movl" | "movq"), [ OMem m; OReg s ] ->
      ins (Insn.Store (Option.get (width_of mnemonic), m, s))
  | "lea", [ OReg d; OMem m ] -> ins (Insn.Lea (d, m))
  | _, [ OReg d; OReg s ] when alu_of mnemonic <> None ->
      ins (Insn.Alu_rr (Option.get (alu_of mnemonic), d, s))
  | _, [ OReg d; OImm v ] when alu_of mnemonic <> None ->
      ins (Insn.Alu_ri (Option.get (alu_of mnemonic), d, v))
  | _, [ OReg d; OImm v ] when shift_of mnemonic <> None ->
      ins (Insn.Shift_ri (Option.get (shift_of mnemonic), d, Int64.to_int v))
  | "jmp", [ OLabel l ] -> Builder.jmp st.b (label_of st l)
  | "jmp", [ OReg r ] -> ins (Insn.Jmp_r r)
  | "jmp", [ OMem m ] -> ins (Insn.Jmp_m m)
  | "jmp", [ OMemLabel l ] -> Builder.jmp_mem st.b (label_of st l)
  | _, [ OLabel l ] when cond_of mnemonic <> None ->
      Builder.jcc st.b (Option.get (cond_of mnemonic)) (label_of st l)
  | "call", [ OLabel l ] -> Builder.call st.b (label_of st l)
  | "call", [ OReg r ] -> ins (Insn.Call_r r)
  | "ssc", [ OImm v ] -> ins (Insn.Ssc_marker v)
  | "magic", [ OImm v ] -> ins (Insn.Magic (Int64.to_int v))
  | "xchg", [ OReg r; OMem m ] -> ins (Insn.Xchg (r, m))
  | "cmpxchg", [ OMem m; OReg r ] -> ins (Insn.Cmpxchg (m, r))
  | "movdqu", [ OXmm x; OMem m ] -> ins (Insn.Vload (x, m))
  | "movdqu", [ OMem m; OXmm x ] -> ins (Insn.Vstore (m, x))
  | _, [ OXmm d; OXmm s ] when vop_of mnemonic <> None ->
      ins (Insn.Vop_rr (Option.get (vop_of mnemonic), d, s))
  | _, [ OReg r ] when reg_unary_of mnemonic r <> None ->
      ins (Option.get (reg_unary_of mnemonic r))
  | _, [] when zero_operand_of mnemonic <> None ->
      ins (Option.get (zero_operand_of mnemonic))
  | _ -> err "unknown instruction or operand combination: %s" mnemonic

let statement st tokens =
  let rec go = function
    | [] -> ()
    | Ident l :: Colon :: rest ->
        let lab = label_of st l in
        (try Builder.bind st.b lab
         with Failure _ -> err "label %S defined twice" l);
        go rest
    | Ident d :: rest when String.length d > 0 && d.[0] = '.' ->
        directive st d (split_operands rest)
    | Ident mnemonic :: rest ->
        instruction st mnemonic (List.map parse_operand (split_operands rest))
    | _ -> err "expected a label, directive or instruction"
  in
  go tokens

let assemble ~base source =
  let st = { b = Builder.create (); labels = Hashtbl.create 32 } in
  let lines = String.split_on_char '\n' source in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        try statement st (tokenize line)
        with Err message -> error := Some { line = i + 1; message })
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      try Ok (Builder.assemble st.b ~base)
      with Failure message -> Error { line = 0; message })

let assemble_exn ~base source =
  match assemble ~base source with
  | Ok p -> p
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

let print_instruction = Insn.to_string
