open Elfie_isa

type slice = {
  index : int;
  vector : (int64 * int) array;
  instructions : int64;
}

type profile = {
  slices : slice list;
  slice_size : int64;
  total_instructions : int64;
}

type state = {
  mutable current : (int64, int) Hashtbl.t;
  mutable slice_icount : int64;
  mutable total : int64;
  mutable slices_rev : slice list;
  mutable next_index : int;
  (* Per-thread basic-block tracking. *)
  mutable cur_block : int64 array;
  mutable at_boundary : bool array;
  slice_size : int64;
}

let ensure_tid st tid =
  let n = Array.length st.cur_block in
  if tid >= n then begin
    let cur = Array.make (tid + 4) 0L in
    let bnd = Array.make (tid + 4) true in
    Array.blit st.cur_block 0 cur 0 n;
    Array.blit st.at_boundary 0 bnd 0 n;
    st.cur_block <- cur;
    st.at_boundary <- bnd
  end

let finish_slice st =
  let vector =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.current []
    |> List.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b)
    |> Array.of_list
  in
  st.slices_rev <-
    { index = st.next_index; vector; instructions = st.slice_icount }
    :: st.slices_rev;
  st.next_index <- st.next_index + 1;
  st.current <- Hashtbl.create 256;
  st.slice_icount <- 0L

let tool ~slice_size =
  let st =
    {
      current = Hashtbl.create 256;
      slice_icount = 0L;
      total = 0L;
      slices_rev = [];
      next_index = 0;
      cur_block = Array.make 8 0L;
      at_boundary = Array.make 8 true;
      slice_size;
    }
  in
  let on_ins tid pc ins =
    ensure_tid st tid;
    if st.at_boundary.(tid) then begin
      st.cur_block.(tid) <- pc;
      st.at_boundary.(tid) <- false
    end;
    let block = st.cur_block.(tid) in
    Hashtbl.replace st.current block
      (1 + Option.value ~default:0 (Hashtbl.find_opt st.current block));
    (match Insn.classify ins with
    | Insn.K_branch | K_call | K_syscall -> st.at_boundary.(tid) <- true
    | K_alu | K_load | K_store | K_vector | K_other -> ());
    st.slice_icount <- Int64.add st.slice_icount 1L;
    st.total <- Int64.add st.total 1L;
    if st.slice_icount >= st.slice_size then finish_slice st
  in
  let t = { (Pintool.empty ~name:"bbv") with on_ins = Some on_ins } in
  let finish () =
    if st.slice_icount > 0L then finish_slice st;
    {
      slices = List.rev st.slices_rev;
      slice_size = st.slice_size;
      total_instructions = st.total;
    }
  in
  (t, finish)

let profile ?max_ins spec ~slice_size =
  let machine, _kernel = Run.instantiate spec in
  let t, finish = tool ~slice_size in
  let detach = Pintool.attach machine [ t ] in
  Elfie_machine.Machine.run ?max_ins machine;
  detach ();
  finish ()
