(** Vpin: the dynamic-instrumentation facade.

    Plays the role Pin plays in the paper: analysis tools declare
    callbacks (instruction, memory, branch, syscall-marker, thread
    events) and [attach] multiplexes any number of tools onto one
    machine's single hook slots. The logger, the BBV profiler and
    user-written analysis tools are all Vpin tools and can run
    simultaneously, like Pintools sharing one Pin process. *)

type t = {
  name : string;
  on_ins : (int -> int64 -> Elfie_isa.Insn.t -> unit) option;
  on_mem_read : (int -> int64 -> int -> unit) option;
  on_mem_write : (int -> int64 -> int -> unit) option;
  on_branch : (int -> int64 -> int64 -> bool -> unit) option;
  on_marker : (int -> Elfie_isa.Insn.t -> unit) option;
  on_thread_start : (int -> unit) option;
  on_thread_exit : (int -> int -> unit) option;
}

(** A tool with no callbacks; override the fields you need. *)
val empty : name:string -> t

(** Attach tools to a machine, chaining with any hooks already
    installed. Returns a detach function restoring the previous hooks. *)
val attach : Elfie_machine.Machine.t -> t list -> unit -> unit

(** Count of instrumented instructions seen by an [on_ins]-only probe —
    convenience for overhead experiments. *)
val instruction_counter : unit -> t * (unit -> int64)
