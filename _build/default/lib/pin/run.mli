(** Assembling and running whole programs on the Vkernel machine.

    A {!spec} bundles everything that defines one execution: the ELF
    image, arguments, environment, input-file setup and the scheduler
    seed (the source of run-to-run variation for multi-threaded
    programs). Used by native runs ("real hardware" measurements), the
    PinPlay logger and the simulators. *)

type spec = {
  image : Elfie_elf.Image.t;
  argv : string list;
  env : string list;
  fs_init : Elfie_kernel.Fs.t -> unit;  (** populate input files *)
  seed : int64;
  kernel_cost : bool;  (** charge ring-0 work to the timing model *)
}

val spec :
  ?argv:string list ->
  ?env:string list ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?seed:int64 ->
  ?kernel_cost:bool ->
  Elfie_elf.Image.t ->
  spec

(** Instantiate machine + kernel + loaded process for a spec.
    @param scheduler defaults to a [Free] scheduler seeded from the spec. *)
val instantiate :
  ?scheduler:Elfie_machine.Machine.scheduler ->
  ?timing:Elfie_machine.Timing.config ->
  spec ->
  Elfie_machine.Machine.t * Elfie_kernel.Vkernel.t

type stats = {
  retired : int64;  (** user instructions, all threads *)
  cycles : int64;  (** wall-clock proxy *)
  cpi : float;
  stdout : string;
  clean : bool;  (** all threads exited with status 0 *)
  per_thread_retired : int64 array;
  ring0_retired : int64;
}

(** Run a spec natively to completion (or [max_ins]) and report. *)
val native : ?max_ins:int64 -> ?timing:Elfie_machine.Timing.config -> spec -> stats

val stats_of_machine : Elfie_machine.Machine.t -> Elfie_kernel.Vkernel.t -> stats
