(** Basic-block-vector profiling (the SimPoint front-end).

    Runs a program under Vpin instrumentation and emits one sparse
    basic-block vector per fixed-size instruction slice: for each slice,
    how many instructions retired inside each basic block (identified by
    its start address). These vectors are the input to the k-means phase
    clustering in {!Elfie_simpoint}. *)

type slice = {
  index : int;
  vector : (int64 * int) array;  (** (block start, instructions), sorted *)
  instructions : int64;  (** normally [slice_size]; last slice may be short *)
}

type profile = {
  slices : slice list;
  slice_size : int64;
  total_instructions : int64;
}

(** Profile a full program run. *)
val profile : ?max_ins:int64 -> Run.spec -> slice_size:int64 -> profile

(** The profiling tool itself, for composing with other tools: returns
    the tool and a function extracting the finished profile. *)
val tool : slice_size:int64 -> Pintool.t * (unit -> profile)
