open Elfie_machine
open Elfie_kernel

type region = { start : int64; length : int64 }

exception Unsupported of string

type result = { pinball : Elfie_pinball.Pinball.t; reached_end : bool }

let page_of addr = Addr_space.page_base addr

(* State of one region currently being recorded. *)
type active = {
  a_name : string;
  a_region : region;
  a_contexts : Context.t array;
  a_snapshot : Addr_space.t;
  a_brk : int64;
  a_start_retired : int64 array;
  a_touched : (int64, unit) Hashtbl.t;
  mutable a_injections : (int * Elfie_pinball.Pinball.syscall_entry) list;
      (* (tid, entry), reversed *)
  mutable a_schedule : (int * int) list;  (* reversed *)
}

let entry_of_record (r : Vkernel.syscall_record) =
  {
    Elfie_pinball.Pinball.sys_nr = r.Vkernel.rec_nr;
    sys_args = r.rec_args;
    sys_path = r.rec_path;
    sys_ret = r.rec_ret;
    sys_writes = r.rec_writes;
    sys_reexec = r.rec_reexec;
  }

let finalize machine fat symbols a =
  let n_start = Array.length a.a_contexts in
  let pages =
    let all = Addr_space.pages a.a_snapshot in
    if fat then all
    else List.filter (fun (addr, _) -> Hashtbl.mem a.a_touched addr) all
  in
  let icounts =
    Array.init n_start (fun i ->
        let th = Machine.thread machine i in
        Int64.sub th.Machine.retired a.a_start_retired.(i))
  in
  let n_threads_end = List.length (Machine.threads machine) in
  let injections = Array.make n_threads_end [] in
  List.iter
    (fun (tid, entry) -> injections.(tid) <- entry :: injections.(tid))
    a.a_injections;
  (* a_injections is reversed, so the per-tid lists come out in order. *)
  let schedule =
    (* Merge adjacent same-thread slices: observation boundaries (other
       regions' starts/ends) cut the recording but carry no meaning. *)
    List.fold_left
      (fun acc slice ->
        match (slice, acc) with
        | (tid, n), (tid', n') :: rest when tid = tid' -> (tid, n + n') :: rest
        | _ -> slice :: acc)
      [] a.a_schedule
  in
  {
    Elfie_pinball.Pinball.name = a.a_name;
    fat;
    contexts = a.a_contexts;
    pages;
    icounts;
    schedule;
    injections;
    brk = a.a_brk;
    symbols;
  }

let activate machine kernel (name, region) =
  let live =
    List.filter (fun th -> th.Machine.state = Machine.Runnable) (Machine.threads machine)
  in
  List.iteri
    (fun i th ->
      if th.Machine.tid <> i then
        raise (Unsupported "thread id gap at region start (a thread exited early)"))
    live;
  {
    a_name = name;
    a_region = region;
    a_contexts = Array.of_list (List.map (fun th -> Context.copy th.Machine.ctx) live);
    a_snapshot = Addr_space.copy (Machine.mem machine);
    a_brk = Vkernel.brk kernel;
    a_start_retired =
      Array.of_list (List.map (fun th -> th.Machine.retired) (Machine.threads machine));
    a_touched = Hashtbl.create 1024;
    a_injections = [];
    a_schedule = [];
  }

let capture_many ?(fat = true) ?scheduler spec requests =
  let machine, kernel = Run.instantiate ?scheduler spec in
  (* Application symbols travel with the checkpoint (for symbolic
     debugging of the generated ELFies). *)
  let symbols =
    List.map
      (fun s -> (s.Elfie_elf.Image.sym_name, s.Elfie_elf.Image.value))
      spec.Run.image.Elfie_elf.Image.symbols
  in
  let requests =
    List.sort (fun (_, a) (_, b) -> Int64.compare a.start b.start) requests
  in
  (* Boundary events, sorted by position; ends before starts at ties. *)
  let events =
    List.concat_map
      (fun ((_, r) as req) ->
        [ (r.start, `Start req); (Int64.add r.start r.length, `End req) ])
      requests
    |> List.sort (fun (a, ka) (b, kb) ->
           match Int64.compare a b with
           | 0 -> ( match (ka, kb) with
                    | `End _, `Start _ -> -1
                    | `Start _, `End _ -> 1
                    | _ -> 0)
           | c -> c)
  in
  let active : active list ref = ref [] in
  let results = ref [] in
  (* Shared instrumentation, dispatching to every active region. *)
  let touch addr len =
    List.iter
      (fun a ->
        Hashtbl.replace a.a_touched (page_of addr) ();
        Hashtbl.replace a.a_touched (page_of (Int64.add addr (Int64.of_int (len - 1)))) ())
      !active
  in
  let tracker =
    {
      (Pintool.empty ~name:"pinplay-logger") with
      on_ins = Some (fun _ pc _ -> if !active <> [] then touch pc 16);
      on_mem_read = Some (fun _ addr w -> if !active <> [] then touch addr w);
      on_mem_write = Some (fun _ addr w -> if !active <> [] then touch addr w);
    }
  in
  let detach = Pintool.attach machine [ tracker ] in
  Vkernel.set_recorder kernel
    (Some
       (fun r ->
         let entry = entry_of_record r in
         List.iter
           (fun a -> a.a_injections <- (r.Vkernel.rec_tid, entry) :: a.a_injections)
           !active));
  (* Drive execution segment by segment between boundaries, slicing the
     machine's global schedule recording per segment. *)
  Machine.set_record_schedule machine true;
  let sched_seen = ref 0 in
  let drain_schedule () =
    let all = Machine.recorded_schedule machine in
    let fresh = List.filteri (fun i _ -> i >= !sched_seen) all in
    sched_seen := List.length all;
    (* Prevent the recorder from merging the next quantum into an entry
       we have already distributed. *)
    Machine.cut_schedule machine;
    List.iter
      (fun a -> a.a_schedule <- List.rev_append fresh a.a_schedule)
      !active
  in
  let ended_early = ref false in
  List.iter
    (fun (pos, event) ->
      if not !ended_early then begin
        Machine.run ~max_ins:pos machine;
        drain_schedule ();
        if Machine.total_retired machine < pos then ended_early := true
      end;
      match event with
      | `Start (name, region) ->
          if !ended_early then
            results := (name, None) :: !results
          else active := activate machine kernel (name, region) :: !active
      | `End (name, _) -> (
          match List.partition (fun a -> a.a_name = name) !active with
          | [ a ], rest ->
              active := rest;
              results :=
                (name, Some (finalize machine fat symbols a, not !ended_early))
                :: !results
          | _ -> ()))
    events;
  Machine.set_record_schedule machine false;
  Vkernel.set_recorder kernel None;
  detach ();
  (* Regions the program never reached are dropped from the batch. *)
  List.rev !results
  |> List.filter_map (fun (name, outcome) ->
         Option.map
           (fun (pinball, reached_end) -> (name, { pinball; reached_end }))
           outcome)

let icount_at_marker ?scheduler spec ~payload ~occurrence =
  let machine, _kernel = Run.instantiate ?scheduler spec in
  let hits = ref 0 in
  let at = ref None in
  let tool =
    {
      (Pintool.empty ~name:"marker-trigger") with
      on_marker =
        Some
          (fun _ ins ->
            match ins with
            | Elfie_isa.Insn.Ssc_marker p when p = payload ->
                incr hits;
                if !hits = occurrence then begin
                  (* The marker instruction itself has not retired yet. *)
                  at := Some (Machine.total_retired machine);
                  Machine.request_stop machine
                end
            | _ -> ());
    }
  in
  let detach = Pintool.attach machine [ tool ] in
  Machine.run machine;
  detach ();
  !at

let capture ?fat ?scheduler spec ~name region =
  match capture_many ?fat ?scheduler spec [ (name, region) ] with
  | [ (_, result) ] -> result
  | _ ->
      raise
        (Unsupported
           (Printf.sprintf "program ended before region start %Ld" region.start))
