open Elfie_machine
open Elfie_kernel
open Elfie_pinball

type mode =
  | Constrained
  | Injectionless of { seed : int64; fs_init : Fs.t -> unit }

type result = {
  per_thread_retired : int64 array;
  matched_icounts : bool;
  divergences : int;
  retired : int64;
  cycles : int64;
  stdout : string;
}

let materialize ?(constrained = true) ?(seed = 7L) ?(fs_init = fun _ -> ())
    (pb : Pinball.t) =
  let scheduler =
    if constrained then Machine.Recorded pb.schedule
    else Machine.Free { seed; quantum_min = 50; quantum_max = 200 }
  in
  let machine = Machine.create scheduler in
  (* Initial memory image. *)
  List.iter (fun (addr, data) -> Addr_space.store (Machine.mem machine) addr data)
    pb.pages;
  (* Threads at region start, in tid order. *)
  Array.iter
    (fun ctx -> ignore (Machine.add_thread machine (Context.copy ctx)))
    pb.contexts;
  (* Kernel for re-executed syscalls (and everything, when injectionless). *)
  let fs = Fs.create () in
  fs_init fs;
  let kernel = Vkernel.create ~config:{ Vkernel.default_config with seed } fs in
  Vkernel.install kernel machine;
  Vkernel.force_brk kernel pb.brk;
  let divergences = ref 0 in
  if constrained then begin
    let queues = Array.map (fun l -> ref l) pb.injections in
    Machine.set_syscall_filter machine (fun m tid ->
        let actual_nr =
          Int64.to_int (Context.get (Machine.thread m tid).Machine.ctx Elfie_isa.Reg.RAX)
        in
        if tid >= Array.length queues then begin
          incr divergences;
          Machine.Run_syscall
        end
        else
          match !(queues.(tid)) with
          | [] ->
              incr divergences;
              Machine.Run_syscall
          | entry :: rest ->
              queues.(tid) := rest;
              if entry.Pinball.sys_nr <> actual_nr then incr divergences;
              if entry.sys_reexec then Machine.Run_syscall
              else begin
                (* Inject: result register plus kernel memory effects. *)
                let ctx = (Machine.thread m tid).Machine.ctx in
                Context.set ctx Elfie_isa.Reg.RAX entry.sys_ret;
                List.iter
                  (fun (addr, data) ->
                    Addr_space.store (Machine.mem m) addr (Bytes.of_string data))
                  entry.sys_writes;
                Machine.Skip_syscall
              end)
  end;
  (machine, kernel, fun () -> !divergences)

let replay ?(mode = Constrained) (pb : Pinball.t) =
  let constrained, seed, fs_init =
    match mode with
    | Constrained -> (true, 7L, fun _ -> ())
    | Injectionless { seed; fs_init } -> (false, seed, fs_init)
  in
  let machine, kernel, divergences = materialize ~constrained ~seed ~fs_init pb in
  if not constrained then begin
    (* Mimic the ELFie hardware-counter exit: stop each region-start
       thread at its recorded instruction count. *)
    Array.iteri (fun tid target -> Machine.arm_counter machine tid ~target) pb.icounts;
    let cap = Int64.mul 3L (max 1L (Pinball.total_icount pb)) in
    Machine.run ~max_ins:cap machine
  end
  else Machine.run machine;
  let per_thread_retired =
    Array.of_list (List.map (fun th -> th.Machine.retired) (Machine.threads machine))
  in
  let matched_icounts =
    Array.length per_thread_retired >= Array.length pb.icounts
    && Array.for_all
         (fun i -> per_thread_retired.(i) = pb.icounts.(i))
         (Array.init (Array.length pb.icounts) (fun i -> i))
  in
  {
    per_thread_retired;
    matched_icounts;
    divergences = divergences ();
    retired = Machine.total_retired machine;
    cycles = Machine.elapsed_cycles machine;
    stdout = Vkernel.stdout_contents kernel;
  }
