open Elfie_machine

type t = {
  name : string;
  on_ins : (int -> int64 -> Elfie_isa.Insn.t -> unit) option;
  on_mem_read : (int -> int64 -> int -> unit) option;
  on_mem_write : (int -> int64 -> int -> unit) option;
  on_branch : (int -> int64 -> int64 -> bool -> unit) option;
  on_marker : (int -> Elfie_isa.Insn.t -> unit) option;
  on_thread_start : (int -> unit) option;
  on_thread_exit : (int -> int -> unit) option;
}

let empty ~name =
  {
    name;
    on_ins = None;
    on_mem_read = None;
    on_mem_write = None;
    on_branch = None;
    on_marker = None;
    on_thread_start = None;
    on_thread_exit = None;
  }

(* Chain the non-[None] callbacks of [fs] after [prev]. *)
let chain1 prev fs =
  match (prev, fs) with
  | None, [] -> None
  | _ ->
      Some
        (fun a ->
          (match prev with Some f -> f a | None -> ());
          List.iter (fun f -> f a) fs)

let chain2 prev fs =
  match (prev, fs) with
  | None, [] -> None
  | _ ->
      Some
        (fun a b ->
          (match prev with Some f -> f a b | None -> ());
          List.iter (fun f -> f a b) fs)

let chain3 prev fs =
  match (prev, fs) with
  | None, [] -> None
  | _ ->
      Some
        (fun a b c ->
          (match prev with Some f -> f a b c | None -> ());
          List.iter (fun f -> f a b c) fs)

let chain4 prev fs =
  match (prev, fs) with
  | None, [] -> None
  | _ ->
      Some
        (fun a b c d ->
          (match prev with Some f -> f a b c d | None -> ());
          List.iter (fun f -> f a b c d) fs)

let attach machine tools =
  let h = Machine.hooks machine in
  let saved_ins = h.on_ins
  and saved_mr = h.on_mem_read
  and saved_mw = h.on_mem_write
  and saved_br = h.on_branch
  and saved_mk = h.on_marker
  and saved_ts = h.on_thread_start
  and saved_te = h.on_thread_exit in
  let pick f = List.filter_map f tools in
  h.on_ins <- chain3 saved_ins (pick (fun t -> t.on_ins));
  h.on_mem_read <- chain3 saved_mr (pick (fun t -> t.on_mem_read));
  h.on_mem_write <- chain3 saved_mw (pick (fun t -> t.on_mem_write));
  h.on_branch <- chain4 saved_br (pick (fun t -> t.on_branch));
  h.on_marker <- chain2 saved_mk (pick (fun t -> t.on_marker));
  h.on_thread_start <- chain1 saved_ts (pick (fun t -> t.on_thread_start));
  h.on_thread_exit <- chain2 saved_te (pick (fun t -> t.on_thread_exit));
  fun () ->
    h.on_ins <- saved_ins;
    h.on_mem_read <- saved_mr;
    h.on_mem_write <- saved_mw;
    h.on_branch <- saved_br;
    h.on_marker <- saved_mk;
    h.on_thread_start <- saved_ts;
    h.on_thread_exit <- saved_te

let instruction_counter () =
  let count = ref 0L in
  let tool =
    {
      (empty ~name:"icount") with
      on_ins = Some (fun _ _ _ -> count := Int64.add !count 1L);
    }
  in
  (tool, fun () -> !count)
