(** The PinPlay logger: captures a region of execution as a pinball.

    The program runs natively up to the region start (measured in
    aggregate instructions over all threads, the PinPoints convention),
    a checkpoint of registers, memory and OS-visible state is taken,
    and the region itself then runs under instrumentation that records

    - the initial content of every page the region touches (lean mode)
      or of every mapped page ([-log:fat] mode, [~fat:true]),
    - each system call's result and kernel memory side effects,
    - the thread interleaving actually executed.

    The result replays deterministically under {!Replayer} and converts
    to an ELFie with {!Elfie_core.Pinball2elf}. *)

type region = {
  start : int64;  (** aggregate instruction count at which the region begins *)
  length : int64;  (** aggregate instructions in the region *)
}

(** Raised when the process layout cannot be checkpointed — e.g. a
    thread exited before the region started, leaving a tid gap. *)
exception Unsupported of string

type result = {
  pinball : Elfie_pinball.Pinball.t;
  reached_end : bool;  (** false if the program exited inside the region *)
}

(** [capture ?fat spec ~name region] runs the program and checkpoints
    the region. [fat] defaults to [true] (every pinball meant for ELFie
    conversion must be fat). [scheduler] overrides the interleaving of
    the logging run — Pin-style instrumentation effectively time-slices
    threads finely, which a small-quantum [Free] scheduler models. *)
val capture :
  ?fat:bool ->
  ?scheduler:Elfie_machine.Machine.scheduler ->
  Run.spec ->
  name:string ->
  region ->
  result

(** [capture_many spec requests] checkpoints several (possibly
    overlapping) regions in a single execution of the program — the
    PinPoints batch mode. Results are keyed by request name; regions the
    program ended before reaching are reported with
    [reached_end = false] and a truncated (possibly empty) pinball. *)
val capture_many :
  ?fat:bool ->
  ?scheduler:Elfie_machine.Machine.scheduler ->
  Run.spec ->
  (string * region) list ->
  (string * result) list

(** [icount_at_marker spec ~payload ~occurrence] runs the program until
    the [occurrence]-th execution (1-based) of the SSC marker with
    [payload] and returns the aggregate instruction count at that point
    — a marker-delimited region trigger à la PinPlay's
    [-log:start_address]. [None] if the marker never fires that often.
    Deterministic for a given spec seed, so the returned count can be
    fed straight to {!capture}. *)
val icount_at_marker :
  ?scheduler:Elfie_machine.Machine.scheduler ->
  Run.spec ->
  payload:int64 ->
  occurrence:int ->
  int64 option
