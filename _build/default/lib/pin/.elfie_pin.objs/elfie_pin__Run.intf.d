lib/pin/run.mli: Elfie_elf Elfie_kernel Elfie_machine
