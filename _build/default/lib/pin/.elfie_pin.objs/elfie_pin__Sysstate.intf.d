lib/pin/sysstate.mli: Elfie_kernel Elfie_pinball Format
