lib/pin/bbv.mli: Pintool Run
