lib/pin/replayer.ml: Addr_space Array Bytes Context Elfie_isa Elfie_kernel Elfie_machine Elfie_pinball Fs Int64 List Machine Pinball Vkernel
