lib/pin/tools.mli: Format Pintool
