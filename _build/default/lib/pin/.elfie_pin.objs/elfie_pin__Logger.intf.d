lib/pin/logger.mli: Elfie_machine Elfie_pinball Run
