lib/pin/bbv.ml: Array Elfie_isa Elfie_machine Hashtbl Insn Int64 List Option Pintool Run
