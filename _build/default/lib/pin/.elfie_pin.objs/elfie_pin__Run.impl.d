lib/pin/run.ml: Array Elfie_elf Elfie_kernel Elfie_machine Fs Int64 List Loader Machine Vkernel
