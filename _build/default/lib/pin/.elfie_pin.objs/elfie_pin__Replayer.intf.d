lib/pin/replayer.mli: Elfie_kernel Elfie_machine Elfie_pinball
