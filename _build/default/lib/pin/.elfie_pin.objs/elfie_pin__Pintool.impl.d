lib/pin/pintool.ml: Elfie_isa Elfie_machine Int64 List Machine
