lib/pin/tools.ml: Elfie_isa Float Format Hashtbl Insn Int64 List Pintool
