lib/pin/logger.ml: Addr_space Array Context Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Elfie_pinball Hashtbl Int64 List Machine Option Pintool Printf Run Vkernel
