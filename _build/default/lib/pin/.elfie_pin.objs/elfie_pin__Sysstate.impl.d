lib/pin/sysstate.ml: Abi Array Buffer Bytes Elfie_kernel Elfie_pinball Filename Format Fs Hashtbl Int64 List Option Pinball Printf Scanf String Sys
