lib/pin/pintool.mli: Elfie_isa Elfie_machine
