open Elfie_machine
open Elfie_kernel

type spec = {
  image : Elfie_elf.Image.t;
  argv : string list;
  env : string list;
  fs_init : Fs.t -> unit;
  seed : int64;
  kernel_cost : bool;
}

let spec ?(argv = [ "a.out" ]) ?(env = [ "PATH=/bin" ]) ?(fs_init = fun _ -> ())
    ?(seed = 42L) ?(kernel_cost = true) image =
  { image; argv; env; fs_init; seed; kernel_cost }

let instantiate ?scheduler ?timing s =
  let scheduler =
    match scheduler with
    | Some sched -> sched
    | None -> Machine.Free { seed = s.seed; quantum_min = 50; quantum_max = 200 }
  in
  let machine = Machine.create ?timing scheduler in
  let fs = Fs.create () in
  s.fs_init fs;
  let kcfg =
    { Vkernel.default_config with kernel_cost = s.kernel_cost; seed = s.seed }
  in
  let kernel = Vkernel.create ~config:kcfg fs in
  Vkernel.install kernel machine;
  (* Real hardware takes timer interrupts; they are also the source of
     run-to-run variation across seeds. Simulators disable kernel_cost
     and model their own timing instead. *)
  if s.kernel_cost then
    Machine.set_timer machine ~interval:8192 ~cycles:250 ~seed:s.seed;
  let _tid, _layout = Loader.load kernel machine s.image ~argv:s.argv ~env:s.env in
  (machine, kernel)

type stats = {
  retired : int64;
  cycles : int64;
  cpi : float;
  stdout : string;
  clean : bool;
  per_thread_retired : int64 array;
  ring0_retired : int64;
}

let stats_of_machine machine kernel =
  let retired = Machine.total_retired machine in
  let cycles = Machine.elapsed_cycles machine in
  {
    retired;
    cycles;
    cpi =
      (if retired = 0L then 0.0 else Int64.to_float cycles /. Int64.to_float retired);
    stdout = Vkernel.stdout_contents kernel;
    clean = Machine.all_exited_cleanly machine;
    per_thread_retired =
      Array.of_list (List.map (fun th -> th.Machine.retired) (Machine.threads machine));
    ring0_retired = Machine.ring0_retired machine;
  }

let native ?max_ins ?timing s =
  let machine, kernel = instantiate ?timing s in
  Machine.run ?max_ins machine;
  stats_of_machine machine kernel
