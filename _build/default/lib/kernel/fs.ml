type file = { mutable data : bytes; mutable size : int }
type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 32 }

let normalize ~cwd path =
  let absolute = if String.length path > 0 && path.[0] = '/' then path
    else cwd ^ "/" ^ path
  in
  let parts = String.split_on_char '/' absolute in
  let keep = List.filter (fun p -> p <> "" && p <> ".") parts in
  "/" ^ String.concat "/" keep

let add_file t ~path content =
  let size = String.length content in
  Hashtbl.replace t.files path { data = Bytes.of_string content; size }

let find t path = Hashtbl.find_opt t.files path
let exists t path = Hashtbl.mem t.files path
let file_size t path = Option.map (fun f -> f.size) (find t path)

let read_file t path =
  Option.map (fun f -> Bytes.sub_string f.data 0 f.size) (find t path)

let remove t path = Hashtbl.remove t.files path

let list t =
  Hashtbl.fold (fun path f acc -> (path, f.size) :: acc) t.files []
  |> List.sort compare

let copy t =
  let files = Hashtbl.create (Hashtbl.length t.files) in
  Hashtbl.iter
    (fun path f -> Hashtbl.replace files path { data = Bytes.copy f.data; size = f.size })
    t.files;
  { files }

let read_at t path ~pos ~len =
  match find t path with
  | None -> None
  | Some f ->
      if pos >= f.size || len <= 0 then Some ""
      else
        let n = min len (f.size - pos) in
        Some (Bytes.sub_string f.data pos n)

let grow f needed =
  if needed > Bytes.length f.data then begin
    let cap = max needed (2 * Bytes.length f.data) in
    let data = Bytes.make cap '\000' in
    Bytes.blit f.data 0 data 0 f.size;
    f.data <- data
  end

let write_at t path ~pos s =
  match find t path with
  | None -> None
  | Some f ->
      let len = String.length s in
      grow f (pos + len);
      Bytes.blit_string s 0 f.data pos len;
      f.size <- max f.size (pos + len);
      Some len
