lib/kernel/loader.ml: Addr_space Bytes Context Elfie_elf Elfie_isa Elfie_machine Int64 List Machine Printf String Vkernel
