lib/kernel/abi.ml: Printf
