lib/kernel/fs.mli:
