lib/kernel/vkernel.ml: Abi Addr_space Buffer Bytes Char Context Elfie_isa Elfie_machine Elfie_util Fs Hashtbl Int64 List Machine Option Reg String
