lib/kernel/vkernel.mli: Elfie_machine Fs
