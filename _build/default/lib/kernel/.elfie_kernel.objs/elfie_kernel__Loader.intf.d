lib/kernel/loader.mli: Elfie_elf Elfie_machine Vkernel
