(* VX86 Linux-flavoured syscall ABI.

   Numbers follow x86-64 Linux where an equivalent exists. Arguments are
   passed in RDI, RSI, RDX, R10, R8, R9; the number in RAX; the result in
   RAX (negative errno on failure) — exactly the convention ELFie startup
   code and workload programs are generated against.

   The 4096+ range holds the virtual performance-counter interface that
   stands in for perf_event_open: real ELFies program hardware counters
   from their callback routines; ours issue these syscalls. *)

let sys_read = 0
let sys_write = 1
let sys_open = 2
let sys_close = 3
let sys_lseek = 8
let sys_mmap = 9
let sys_mprotect = 10
let sys_munmap = 11
let sys_brk = 12
let sys_dup = 32
let sys_dup2 = 33
let sys_getpid = 39
let sys_clone = 56
let sys_exit = 60
let sys_gettimeofday = 96
let sys_arch_prctl = 158
let sys_gettid = 186
let sys_time = 201
let sys_exit_group = 231
let sys_getrandom = 318

(* Virtual perf-counter extension. *)
let sys_vperf_arm = 4096  (* rdi = retired-instruction target; graceful exit *)
let sys_vperf_read = 4097  (* -> retired instructions of calling thread *)
let sys_vperf_cycles = 4098  (* -> cycle count of calling thread *)
let sys_thread_alive = 4099  (* rdi = tid; -> 1 if runnable, else 0 *)
let sys_vperf_mark = 4100  (* rdi = instructions until a counter snapshot *)

let syscall_name nr =
  match nr with
  | 0 -> "read"
  | 1 -> "write"
  | 2 -> "open"
  | 3 -> "close"
  | 8 -> "lseek"
  | 9 -> "mmap"
  | 10 -> "mprotect"
  | 11 -> "munmap"
  | 12 -> "brk"
  | 32 -> "dup"
  | 33 -> "dup2"
  | 39 -> "getpid"
  | 56 -> "clone"
  | 60 -> "exit"
  | 96 -> "gettimeofday"
  | 158 -> "arch_prctl"
  | 186 -> "gettid"
  | 201 -> "time"
  | 231 -> "exit_group"
  | 318 -> "getrandom"
  | 4096 -> "vperf_arm"
  | 4097 -> "vperf_read"
  | 4098 -> "vperf_cycles"
  | 4099 -> "thread_alive"
  | 4100 -> "vperf_mark"
  | _ -> Printf.sprintf "sys_%d" nr

(* open(2) flags. *)
let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 0x40
let o_trunc = 0x200

(* lseek whence. *)
let seek_set = 0
let seek_cur = 1
let seek_end = 2

(* mmap flags. *)
let map_fixed = 0x10

(* arch_prctl codes. *)
let arch_set_gs = 0x1001
let arch_set_fs = 0x1002

(* errno values (returned negated). *)
let enoent = 2
let ebadf = 9
let enomem = 12
let einval = 22

(* System calls whose structural side effects (address-space or thread
   changes) must be re-executed even during constrained replay; data
   syscalls are skipped and injected instead. *)
let reexecute_on_replay nr =
  nr = sys_mmap || nr = sys_munmap || nr = sys_mprotect || nr = sys_brk
  || nr = sys_clone || nr = sys_exit || nr = sys_exit_group
  || nr >= sys_vperf_arm

(* Synthetic ring-0 cost (instructions) of handling each syscall; stands
   in for the kernel-code footprint observed in full-system simulation. *)
let ring0_instructions nr ~bytes =
  let base =
    match nr with
    | 0 | 1 -> 900 (* read/write *)
    | 2 -> 1400 (* open: path walk *)
    | 3 -> 300
    | 8 -> 250
    | 9 | 11 | 10 -> 800 (* mm operations *)
    | 12 -> 450
    | 32 | 33 -> 350
    | 56 -> 2600 (* clone *)
    | 60 | 231 -> 1200
    | 96 | 201 -> 150
    | 158 | 186 | 39 -> 120
    | 318 -> 500
    | _ -> 100
  in
  base + (bytes / 8)
