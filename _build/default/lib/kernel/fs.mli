(** In-memory filesystem for the Vkernel.

    Flat namespace of absolute paths. This is the OS resource a pinball
    region depends on (open file descriptors, file contents) and that
    the SYSSTATE technique reconstructs for ELFie re-execution: proxy
    files created by [pinball_sysstate] are installed here before an
    ELFie runs. *)

type t

val create : unit -> t

(** Normalize: collapse duplicate slashes, resolve ["."] segments,
    prefix relative paths with [cwd]. *)
val normalize : cwd:string -> string -> string

val add_file : t -> path:string -> string -> unit
val exists : t -> string -> bool
val file_size : t -> string -> int option
val read_file : t -> string -> string option
val remove : t -> string -> unit

(** All files as [(path, size)], sorted by path. *)
val list : t -> (string * int) list

val copy : t -> t

(** Byte-level access used by the read/write/lseek syscalls. *)
val read_at : t -> string -> pos:int -> len:int -> string option

(** Extends the file if writing past its end. Creates nothing: the file
    must exist. Returns bytes written, or [None] if absent. *)
val write_at : t -> string -> pos:int -> string -> int option
