lib/debug/debugger.ml: Addr_space Context Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Format Fs Hashtbl Int64 List Loader Machine Option Printf Vkernel
