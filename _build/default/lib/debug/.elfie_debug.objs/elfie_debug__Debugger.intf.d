lib/debug/debugger.mli: Elfie_elf Elfie_isa Elfie_kernel Elfie_machine Format
