open Elfie_machine
open Elfie_kernel

type stop_reason =
  | Breakpoint of { tid : int; addr : int64 }
  | Step_done of int
  | All_exited
  | Thread_fault of { tid : int; message : string }
  | Budget_exhausted

let pp_stop fmt = function
  | Breakpoint { tid; addr } ->
      Format.fprintf fmt "breakpoint hit: thread %d at 0x%Lx" tid addr
  | Step_done tid -> Format.fprintf fmt "stepped thread %d" tid
  | All_exited -> Format.fprintf fmt "process exited"
  | Thread_fault { tid; message } ->
      Format.fprintf fmt "thread %d faulted: %s" tid message
  | Budget_exhausted -> Format.fprintf fmt "instruction budget exhausted"

type t = {
  m : Machine.t;
  image : Elfie_elf.Image.t;
  bps : (int64, unit) Hashtbl.t;
  mutable current_tid : int;
  mutable rr_next : int;  (* round-robin cursor *)
}

let launch ?(seed = 11L) ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/") image =
  let m =
    Machine.create (Machine.Free { seed; quantum_min = 1; quantum_max = 1 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create ~config:{ Vkernel.default_config with seed; initial_cwd = cwd } fs
  in
  Vkernel.install kernel m;
  let tid, _ = Loader.load kernel m image ~argv:[ "elfie" ] ~env:[] in
  { m; image; bps = Hashtbl.create 8; current_tid = tid; rr_next = 0 }

let machine t = t.m
let break_at t addr = Hashtbl.replace t.bps addr ()
let clear_at t addr = Hashtbl.remove t.bps addr

let breakpoints t =
  Hashtbl.fold (fun a () acc -> a :: acc) t.bps [] |> List.sort Int64.unsigned_compare

let break_symbol t name =
  match Elfie_elf.Image.find_symbol t.image name with
  | Some addr ->
      break_at t addr;
      Ok addr
  | None -> Error (Printf.sprintf "no symbol %S in image" name)

let runnable_tids t =
  List.filter_map
    (fun th -> if th.Machine.state = Machine.Runnable then Some th.Machine.tid else None)
    (Machine.threads t.m)

let fault_of th =
  match th.Machine.state with
  | Machine.Faulted f ->
      Some
        (Thread_fault
           { tid = th.Machine.tid; message = Format.asprintf "%a" Machine.pp_fault f })
  | Machine.Runnable | Machine.Exited _ -> None

(* Advance exactly one instruction of [tid], reporting faults. *)
let step_tid t tid =
  Machine.step t.m tid;
  t.current_tid <- tid;
  match fault_of (Machine.thread t.m tid) with
  | Some fault -> fault
  | None -> Step_done tid

let step ?tid t =
  let tid = Option.value ~default:t.current_tid tid in
  if (Machine.thread t.m tid).Machine.state <> Machine.Runnable then
    if runnable_tids t = [] then All_exited
    else step_tid t (List.hd (runnable_tids t))
  else step_tid t tid

let continue_ ?(budget = 50_000_000L) t =
  let executed = ref 0L in
  let rec loop () =
    match runnable_tids t with
    | [] -> All_exited
    | tids ->
        (* Round-robin across runnable threads, one instruction each. *)
        let n = List.length tids in
        let tid = List.nth tids (t.rr_next mod n) in
        t.rr_next <- (t.rr_next + 1) mod max 1 n;
        let rip = (Machine.thread t.m tid).Machine.ctx.Context.rip in
        if Hashtbl.mem t.bps rip then begin
          t.current_tid <- tid;
          Breakpoint { tid; addr = rip }
        end
        else if !executed >= budget then Budget_exhausted
        else begin
          executed := Int64.add !executed 1L;
          match step_tid t tid with
          | Step_done _ -> loop ()
          | stop -> stop
        end
  in
  loop ()

let registers t ~tid = (Machine.thread t.m tid).Machine.ctx

let read_mem t addr len =
  match Addr_space.read_bytes (Machine.mem t.m) addr len with
  | b -> Some b
  | exception Addr_space.Fault _ -> None

let disassemble t ~addr ~count =
  match read_mem t addr (count * 16) with
  | None -> []
  | Some buf ->
      List.map
        (fun (off, ins) -> (Int64.add addr (Int64.of_int off), ins))
        (Elfie_isa.Codec.disassemble buf ~off:0 ~count)

let symbols t =
  List.map
    (fun s -> (s.Elfie_elf.Image.sym_name, s.Elfie_elf.Image.value))
    t.image.Elfie_elf.Image.symbols
  |> List.sort (fun (_, a) (_, b) -> Int64.unsigned_compare a b)

let symbol_near t addr =
  List.fold_left
    (fun best (name, value) ->
      if Int64.unsigned_compare value addr <= 0 then Some (name, Int64.sub addr value)
      else best)
    None (symbols t)

let thread_summary t =
  List.map
    (fun th ->
      let state =
        match th.Machine.state with
        | Machine.Runnable -> "runnable"
        | Exited n -> Printf.sprintf "exited %d" n
        | Faulted f -> Format.asprintf "faulted (%a)" Machine.pp_fault f
      in
      (th.Machine.tid, state, th.Machine.ctx.Context.rip))
    (Machine.threads t.m)
