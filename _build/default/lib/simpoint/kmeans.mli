(** k-means clustering with k-means++ seeding and BIC model selection —
    the SimPoint phase-classification core. *)

type result = {
  k : int;
  assignments : int array;  (** cluster index per point *)
  centroids : float array array;
  inertia : float;  (** sum of squared distances to assigned centroids *)
}

(** [cluster ~rng ~k points] runs Lloyd's algorithm on row-major points.
    Raises [Invalid_argument] on empty input or [k < 1]. *)
val cluster :
  rng:Elfie_util.Rng.t -> k:int -> float array array -> result

(** [best ~rng ~max_k points] tries k = 1 .. max_k and picks the
    smallest k whose BIC score reaches 90% of the observed range —
    SimPoint's maxK model-selection rule. *)
val best : rng:Elfie_util.Rng.t -> max_k:int -> float array array -> result

(** Bayesian information criterion of a clustering (higher is better). *)
val bic : result -> float array array -> float

(** Squared Euclidean distance between equal-length vectors. *)
val sq_dist : float array -> float array -> float
