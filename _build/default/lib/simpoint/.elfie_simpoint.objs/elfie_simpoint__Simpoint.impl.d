lib/simpoint/simpoint.ml: Array Elfie_pin Elfie_util Float Format Fun Int64 Kmeans List
