lib/simpoint/simpoint.mli: Elfie_pin Format
