lib/simpoint/kmeans.mli: Elfie_util
