lib/simpoint/kmeans.ml: Array Elfie_util Float List
