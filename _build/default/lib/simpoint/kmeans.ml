type result = {
  k : int;
  assignments : int array;
  centroids : float array array;
  inertia : float;
}

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* k-means++ seeding: each next centre drawn proportionally to squared
   distance from the nearest already-chosen centre. *)
let seed_centroids ~rng ~k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Elfie_util.Rng.int rng n);
  let d2 = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let chosen =
      if total <= 0.0 then Elfie_util.Rng.int rng n
      else begin
        let target = Elfie_util.Rng.float rng *. total in
        let acc = ref 0.0 and pick = ref (n - 1) and found = ref false in
        Array.iteri
          (fun i d ->
            if not !found then begin
              acc := !acc +. d;
              if !acc >= target then begin
                pick := i;
                found := true
              end
            end)
          d2;
        !pick
      end
    in
    centroids.(c) <- points.(chosen);
    Array.iteri
      (fun i p -> d2.(i) <- Float.min d2.(i) (sq_dist p centroids.(c)))
      points
  done;
  Array.map Array.copy centroids

let cluster ~rng ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.cluster: no points";
  if k < 1 then invalid_arg "Kmeans.cluster: k < 1";
  let k = min k n in
  let dim = Array.length points.(0) in
  let centroids = seed_centroids ~rng ~k points in
  let assignments = Array.make n 0 in
  let assign () =
    let changed = ref false in
    Array.iteri
      (fun i p ->
        let best = ref 0 and best_d = ref infinity in
        for c = 0 to k - 1 do
          let d = sq_dist p centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        if assignments.(i) <> !best then begin
          assignments.(i) <- !best;
          changed := true
        end)
      points;
    !changed
  in
  let update () =
    let sums = Array.make_matrix k dim 0.0 in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignments.(i) in
        counts.(c) <- counts.(c) + 1;
        for j = 0 to dim - 1 do
          sums.(c).(j) <- sums.(c).(j) +. p.(j)
        done)
      points;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then begin
        for j = 0 to dim - 1 do
          sums.(c).(j) <- sums.(c).(j) /. float_of_int counts.(c)
        done;
        centroids.(c) <- sums.(c)
      end
      else
        (* Re-seed an empty cluster on a random point. *)
        centroids.(c) <- Array.copy points.(Elfie_util.Rng.int rng n)
    done
  in
  let rec iterate remaining =
    let changed = assign () in
    if changed && remaining > 0 then begin
      update ();
      iterate (remaining - 1)
    end
  in
  iterate 50;
  let inertia =
    let acc = ref 0.0 in
    Array.iteri (fun i p -> acc := !acc +. sq_dist p centroids.(assignments.(i))) points;
    !acc
  in
  { k; assignments; centroids; inertia }

let bic result points =
  let n = float_of_int (Array.length points) in
  let dim = float_of_int (Array.length points.(0)) in
  let k = float_of_int result.k in
  (* Spherical-Gaussian likelihood with a per-dimension variance
     estimate; the n*d factor keeps the fit term commensurate with the
     k*(d+1) parameter penalty at any dimensionality. *)
  let variance = Float.max (result.inertia /. (n *. dim)) 1e-9 in
  let log_likelihood = -0.5 *. n *. dim *. (log variance +. 1.0) in
  let params = k *. (dim +. 1.0) in
  log_likelihood -. (0.5 *. params *. log n)

(* SimPoint's model-selection rule: score every k, then take the
   *smallest* k whose BIC reaches 90% of the observed score range — a
   plain argmax overfits, since BIC keeps creeping up with k. *)
let best ~rng ~max_k points =
  let n = Array.length points in
  let candidates =
    List.map
      (fun k ->
        let r = cluster ~rng ~k points in
        (r, bic r points))
      (List.init (min max_k n) (fun i -> i + 1))
  in
  let scores = List.map snd candidates in
  let bmax = List.fold_left Float.max neg_infinity scores in
  let bmin = List.fold_left Float.min infinity scores in
  let threshold = bmin +. (0.9 *. (bmax -. bmin)) in
  match List.find_opt (fun (_, s) -> s >= threshold) candidates with
  | Some (r, _) -> r
  | None -> fst (List.hd candidates)
