(* Native performance analysis of a region with hardware counters — the
   paper's Section III-B use case.

   A multi-threaded region is captured, converted to an ELFie whose
   per-thread callbacks arm retired-instruction counters (libperfle
   style), and measured over repeated native trials with different
   scheduler seeds, like `perf stat` over ten runs. The warmup-marked
   slice CPI is reported with its run-to-run spread.

   Run with: dune exec examples/native_perf.exe *)

let () =
  let bench = Option.get (Elfie_workloads.Suite.find "619.lbm_s") in
  let rs = Elfie_workloads.Programs.run_spec bench.spec in
  let approx = Elfie_workloads.Programs.approx_instructions bench.spec in

  Printf.printf "capturing a %d-thread region of %s...\n%!"
    bench.spec.threads bench.bname;
  let { Elfie_pin.Logger.pinball; _ } =
    Elfie_pin.Logger.capture rs ~name:"perf_region"
      { Elfie_pin.Logger.start = Int64.div approx 3L; length = 240_000L }
  in
  let sysstate = Elfie_pin.Sysstate.analyze pinball in
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        {
          Elfie_core.Pinball2elf.default_options with
          sysstate = Some sysstate;
          (* arm_counters is on by default: each thread exits at its
             recorded region instruction count. *)
        }
      pinball
  in
  (* Ten trials, ten seeds: the unconstrained runs differ in timing. *)
  let sample =
    Elfie_perf.Perf.elfie_region ~trials:10
      ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work")
      ~cwd:"/work" image
  in
  Format.printf "region CPI : %a@." Elfie_perf.Perf.pp_sample sample;
  Printf.printf "per-thread region instruction counts (recorded):\n";
  Array.iteri (fun tid n -> Printf.printf "  thread %d: %Ld\n" tid n)
    pinball.icounts
