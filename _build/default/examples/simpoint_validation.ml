(* Validating simulation-region selection with ELFies — the paper's
   headline methodology (Section IV-A).

   The program is profiled into basic-block vectors, SimPoint picks
   representative regions, each region becomes an ELFie, and the
   whole-program CPI is predicted as the weight-averaged CPI of native
   ELFie runs. Comparing against the native whole-program CPI gives the
   prediction error in minutes instead of the weeks whole-program
   simulation would take.

   Run with: dune exec examples/simpoint_validation.exe [benchmark] *)

module Simpoint = Elfie_simpoint.Simpoint

let () =
  let name = try Sys.argv.(1) with Invalid_argument _ -> "557.xz_r" in
  let bench =
    match Elfie_workloads.Suite.find name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %s\n" name;
        exit 2
  in
  let rs = Elfie_workloads.Programs.run_spec bench.spec in
  let params = Simpoint.default_params in

  (* Phase analysis. *)
  Printf.printf "profiling %s...\n%!" bench.bname;
  let profile = Elfie_pin.Bbv.profile rs ~slice_size:params.slice_size in
  let sel = Simpoint.select ~params profile in
  Format.printf "%a@." Simpoint.pp_selection sel;

  (* Ground truth: native whole-program CPI over three trials. *)
  let whole = Elfie_perf.Perf.whole_program ~trials:3 rs in
  Format.printf "whole-program: %a@." Elfie_perf.Perf.pp_sample whole;

  (* One ELFie per selected region, measured natively. *)
  let predictions =
    List.filter_map
      (fun (r : Simpoint.region) ->
        let captured =
          Elfie_pin.Logger.capture rs
            ~name:(Printf.sprintf "c%d" r.cluster)
            { Elfie_pin.Logger.start = r.start; length = r.length }
        in
        if not captured.reached_end then None
        else begin
          let ss = Elfie_pin.Sysstate.analyze captured.pinball in
          let image =
            Elfie_core.Pinball2elf.convert
              ~options:
                {
                  Elfie_core.Pinball2elf.default_options with
                  sysstate = Some ss;
                  warmup_mark =
                    (if r.warmup_actual > 0L then Some r.warmup_actual else None);
                }
              captured.pinball
          in
          let sample =
            Elfie_perf.Perf.elfie_region ~trials:3
              ~fs_init:(fun fs -> Elfie_pin.Sysstate.install ss fs ~workdir:"/work")
              ~cwd:"/work" image
          in
          Printf.printf "  cluster %d (weight %.3f): slice CPI %.3f\n%!" r.cluster
            r.weight sample.mean_cpi;
          if sample.failures < sample.trials then Some (r.weight, sample.mean_cpi)
          else None
        end)
      sel.regions
  in
  let covered = List.fold_left (fun a (w, _) -> a +. w) 0.0 predictions in
  let predicted =
    List.fold_left (fun a (w, c) -> a +. (w *. c)) 0.0 predictions /. covered
  in
  let error =
    Float.abs (whole.mean_cpi -. predicted) /. whole.mean_cpi
  in
  Printf.printf
    "coverage %.1f%%  whole CPI %.3f  predicted CPI %.3f  error %.2f%%\n"
    (100.0 *. covered) whole.mean_cpi predicted (100.0 *. error)
