(* Multi-threaded simulation with Sniper: pinball vs ELFie — the
   Section IV-B case study.

   The same region of an 8-thread OpenMP-style benchmark is simulated
   twice on the Gainestown model: once from its pinball (constrained
   replay: the recorded schedule is enforced, instruction counts match
   the recording exactly) and once from its ELFie (unconstrained: the
   simulator is unmodified, threads really spin at barriers, instruction
   counts inflate).

   Run with: dune exec examples/mt_simulation.exe *)

module Sniper = Elfie_sniper.Sniper

let () =
  let bench = Option.get (Elfie_workloads.Suite.find "619.lbm_s") in
  let rs = Elfie_workloads.Programs.run_spec bench.spec in
  let approx = Elfie_workloads.Programs.approx_instructions bench.spec in
  let config = Sniper.gainestown ~cores:8 in

  Printf.printf "capturing an 8-thread region of %s...\n%!" bench.bname;
  let { Elfie_pin.Logger.pinball; _ } =
    Elfie_pin.Logger.capture
      ~scheduler:
        (Elfie_machine.Machine.Free
           { seed = 42L; quantum_min = 10; quantum_max = 30 })
      rs ~name:"mt_region"
      { Elfie_pin.Logger.start = Int64.div approx 3L; length = 240_000L }
  in
  Printf.printf "recorded   : %Ld instructions over %d threads\n"
    (Elfie_pinball.Pinball.total_icount pinball)
    (Elfie_pinball.Pinball.num_threads pinball);

  (* Constrained simulation from the pinball. *)
  let pb = Sniper.simulate_pinball config pinball in
  Printf.printf "pinball sim: %Ld instructions, runtime %Ld cycles, IPC %.2f\n"
    pb.instructions pb.runtime_cycles pb.ipc;

  (* Unconstrained simulation of the ELFie (unmodified simulator). The
     simulation end is a (PC, count) pair from a profiling run, outside
     the spin-barrier code — the per-thread exit counters are disabled
     so the simulator owns the region-ending criterion, as in the paper. *)
  let image = Elfie_workloads.Programs.image bench.spec in
  let exclude =
    match
      ( Elfie_elf.Image.find_symbol image "barrier_begin",
        Elfie_elf.Image.find_symbol image "barrier_end" )
    with
    | Some lo, Some hi -> Some (lo, hi)
    | _ -> None
  in
  let end_condition = Sniper.profile_end_condition ?exclude pinball in
  let sysstate = Elfie_pin.Sysstate.analyze pinball in
  let elfie =
    Elfie_core.Pinball2elf.convert
      ~options:
        {
          Elfie_core.Pinball2elf.default_options with
          sysstate = Some sysstate;
          marker = Some Elfie_core.Pinball2elf.Sniper;
          arm_counters = false;
        }
      pinball
  in
  let el =
    Sniper.simulate_elfie ~end_condition
      ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work")
      ~cwd:"/work" ~max_ins:5_000_000L config elfie
  in
  Printf.printf "ELFie sim  : %Ld instructions, runtime %Ld cycles, IPC %.2f\n"
    el.instructions el.runtime_cycles el.ipc;
  Printf.printf
    "ELFie retires %.2fx the recorded instructions: unconstrained threads\n\
     really spin at the barriers (active wait), as the paper observes.\n"
    (Int64.to_float el.instructions
    /. Int64.to_float (Elfie_pinball.Pinball.total_icount pinball))
