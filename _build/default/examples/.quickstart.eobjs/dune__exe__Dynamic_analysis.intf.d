examples/dynamic_analysis.mli:
