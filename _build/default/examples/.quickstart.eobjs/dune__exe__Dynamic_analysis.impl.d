examples/dynamic_analysis.ml: Elfie_core Elfie_kernel Elfie_machine Elfie_pin Elfie_pinball Elfie_workloads Format Int64 Option Printf
