examples/simpoint_validation.mli:
