examples/simpoint_validation.ml: Array Elfie_core Elfie_perf Elfie_pin Elfie_simpoint Elfie_workloads Float Format List Printf Sys
