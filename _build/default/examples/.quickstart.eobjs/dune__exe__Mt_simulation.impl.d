examples/mt_simulation.ml: Elfie_core Elfie_elf Elfie_machine Elfie_pin Elfie_pinball Elfie_sniper Elfie_workloads Int64 Option Printf
