examples/mt_simulation.mli:
