examples/quickstart.ml: Bytes Elfie_core Elfie_elf Elfie_pin Elfie_pinball Elfie_workloads Filename Format Int64 List Option Printf
