examples/native_perf.mli:
