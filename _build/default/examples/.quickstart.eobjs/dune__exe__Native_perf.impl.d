examples/native_perf.ml: Array Elfie_core Elfie_perf Elfie_pin Elfie_workloads Format Int64 Option Printf
