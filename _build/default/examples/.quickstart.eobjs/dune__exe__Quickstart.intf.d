examples/quickstart.mli:
