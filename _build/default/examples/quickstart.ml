(* Quickstart: the full ELFie pipeline on one benchmark, end to end.

   1. run a program natively,
   2. capture a region of its execution as a fat pinball,
   3. replay the pinball (constrained, deterministic),
   4. reconstruct OS state with pinball_sysstate,
   5. convert the pinball to an ELFie with pinball2elf,
   6. write genuine ELF bytes to disk, read them back,
   7. run the ELFie natively — it starts exactly at the region start and
      exits gracefully via its armed instruction counter.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A SPEC-like benchmark from the bundled suite. *)
  let bench = Option.get (Elfie_workloads.Suite.find "525.x264_r") in
  let rs = Elfie_workloads.Programs.run_spec bench.spec in

  (* 1. Native run: the ground truth. *)
  let stats = Elfie_pin.Run.native rs in
  Printf.printf "native run : %Ld instructions, CPI %.3f, stdout %S\n"
    stats.retired stats.cpi stats.stdout;

  (* 2. Capture a 100k-instruction region from the middle. *)
  let start = Int64.div stats.retired 2L in
  let { Elfie_pin.Logger.pinball; reached_end } =
    Elfie_pin.Logger.capture rs ~name:"quickstart_region"
      { Elfie_pin.Logger.start; length = 100_000L }
  in
  assert reached_end;
  Format.printf "captured   : %a@." Elfie_pinball.Pinball.pp_summary pinball;

  (* 3. Constrained replay: exact per-thread instruction counts. *)
  let replay = Elfie_pin.Replayer.replay pinball in
  Printf.printf "replay     : matched=%b divergences=%d\n"
    replay.matched_icounts replay.divergences;

  (* 4. SYSSTATE: proxy files and heap state for native re-execution. *)
  let sysstate = Elfie_pin.Sysstate.analyze pinball in
  Format.printf "%a@." Elfie_pin.Sysstate.pp sysstate;

  (* 5. pinball2elf. *)
  let options =
    {
      Elfie_core.Pinball2elf.default_options with
      sysstate = Some sysstate;
      marker = Some (Elfie_core.Pinball2elf.Ssc 0x1001L);
    }
  in
  let image = Elfie_core.Pinball2elf.convert ~options pinball in

  (* 6. Byte-exact ELF serialization. *)
  let bytes = Elfie_elf.Image.write image in
  let path = Filename.temp_file "quickstart" ".elfie" in
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  Printf.printf "elfie file : %s (%d bytes, %d sections)\n" path
    (Bytes.length bytes)
    (List.length image.sections);
  let ic = open_in_bin path in
  let reread = Elfie_elf.Image.read (Bytes.of_string (really_input_string ic (in_channel_length ic))) in
  close_in ic;

  (* 7. Run it natively. *)
  let outcome =
    Elfie_core.Elfie_runner.run
      ~fs_init:(fun fs -> Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work")
      ~cwd:"/work" reread
  in
  Printf.printf "elfie run  : graceful=%b region instructions=%Ld CPI=%.3f\n"
    outcome.graceful outcome.app_retired outcome.region_cpi;
  if not outcome.graceful then exit 1
