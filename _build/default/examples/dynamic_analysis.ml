(* Dynamic analysis of a region via its ELFie — the paper's Section
   III-A use case.

   An ELFie is an ordinary executable, so any Pin-style analysis tool
   runs on it unmodified; the tool just (1) starts analysing at the ROI
   marker, skipping ELFie startup code, and (2) ends gracefully after
   the region's recorded instruction count. Here we run three analyses
   (instruction mix, memory footprint, branch profile) over one captured
   region in a single instrumented execution.

   Run with: dune exec examples/dynamic_analysis.exe *)

module Tools = Elfie_pin.Tools

let () =
  let bench = Option.get (Elfie_workloads.Suite.find "505.mcf_r") in
  let rs = Elfie_workloads.Programs.run_spec bench.spec in
  let approx = Elfie_workloads.Programs.approx_instructions bench.spec in

  (* Capture a region and convert it, with an SSC marker for the tools. *)
  let { Elfie_pin.Logger.pinball; _ } =
    Elfie_pin.Logger.capture rs ~name:"analysis_region"
      { Elfie_pin.Logger.start = Int64.div approx 2L; length = 150_000L }
  in
  let sysstate = Elfie_pin.Sysstate.analyze pinball in
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        {
          Elfie_core.Pinball2elf.default_options with
          sysstate = Some sysstate;
          marker = Some (Elfie_core.Pinball2elf.Ssc 0xA11CE5L);
        }
      pinball
  in

  (* Load the ELFie and attach three marker-gated tools at once. *)
  let region = Elfie_pinball.Pinball.total_icount pinball in
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 21L; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Elfie_kernel.Fs.create () in
  Elfie_pin.Sysstate.install sysstate fs ~workdir:"/work";
  let kernel =
    Elfie_kernel.Vkernel.create
      ~config:{ Elfie_kernel.Vkernel.default_config with initial_cwd = "/work" }
      fs
  in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] in
  let mix = Tools.instruction_mix ~from_marker:true ~limit:region () in
  let fp = Tools.memory_footprint ~from_marker:true ~limit:region () in
  let br = Tools.branch_profile ~from_marker:true ~limit:region () in
  let detach =
    Elfie_pin.Pintool.attach machine [ mix.tool; fp.tool; br.tool ]
  in
  Elfie_machine.Machine.run ~max_ins:50_000_000L machine;
  detach ();

  Printf.printf "region of %Ld instructions from %s\n\n" region bench.bname;
  Format.printf "%a@.@." Tools.pp_mix (mix.result ());
  Format.printf "%a@.@." Tools.pp_footprint (fp.result ());
  Format.printf "%a@." Tools.pp_branch_profile (br.result ())
