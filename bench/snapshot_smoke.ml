(* Snapshot-tier smoke test, run from `dune runtest` via the @snapshot
   alias: the same region ELFie measured once with warm-once/fork-many
   (Elfie_runner.warm + one resume per trial) and once with the re-warm
   baseline (one full Elfie_runner.run per trial). Guards against silent
   copy-on-write snapshot regressions — the warm must stop at the mark,
   every trial on both paths must stay graceful, and forking must not be
   slower than re-warming. The workload is small enough for CI (a
   60k-instruction region, mark at 50k) and the expected gap is large
   (each re-warm trial re-executes the whole region where a fork runs
   only the 10k-instruction slice), so best-of-N wall-clock comparison
   at margin 1.0 is robust against scheduler noise. *)

let trials = 4
let rounds = 3

let image =
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:
        [ { Elfie_workloads.Programs.kernel = Elfie_workloads.Kernels.Stream;
            reps = 2000 };
          { kernel = Elfie_workloads.Kernels.Branchy; reps = 2000 } ]
      ~outer_reps:20 ~threads:1 ~ws_bytes:32768 "snap-smoke"
  in
  let rs = Elfie_workloads.Programs.run_spec ~seed:7L spec in
  let cap =
    Elfie_pin.Logger.capture rs ~name:"snap-smoke"
      { Elfie_pin.Logger.start = 20_000L; length = 60_000L }
  in
  Elfie_core.Pinball2elf.convert
    ~options:
      { Elfie_core.Pinball2elf.default_options with
        marker = Some (Elfie_core.Pinball2elf.Ssc 1L);
        warmup_mark = Some 50_000L }
    cap.Elfie_pin.Logger.pinball

let () =
  let graceful_fork = ref true and graceful_rewarm = ref true in
  let warm_ok = ref true in
  let rewarm () =
    let t0 = Unix.gettimeofday () in
    for i = 0 to trials - 1 do
      let o = Elfie_core.Elfie_runner.run ~seed:(Int64.of_int (3000 + i)) image in
      if not o.Elfie_core.Elfie_runner.graceful then graceful_rewarm := false
    done;
    Unix.gettimeofday () -. t0
  in
  let warm_fork () =
    let t0 = Unix.gettimeofday () in
    (match Elfie_core.Elfie_runner.warm ~seed:3000L image with
    | Ok w ->
        for i = 0 to trials - 1 do
          let o =
            Elfie_core.Elfie_runner.resume ~seed:(Int64.of_int (3000 + i)) w
          in
          if not o.Elfie_core.Elfie_runner.graceful then graceful_fork := false
        done
    | Error _ -> warm_ok := false);
    Unix.gettimeofday () -. t0
  in
  let best_fork = ref infinity and best_rewarm = ref infinity in
  (* Interleaved trials, as in the full snapshot bench, so neither leg
     systematically benefits from warm-up. *)
  for _ = 1 to rounds do
    best_fork := min !best_fork (warm_fork ());
    best_rewarm := min !best_rewarm (rewarm ())
  done;
  let fail = ref false in
  let check name ok =
    Printf.printf "%-44s %s\n" name (if ok then "ok" else "FAIL");
    if not ok then fail := true
  in
  Printf.printf
    "snapshot-smoke: warm-and-fork %.1f ms, re-warm %.1f ms (%d trials, best \
     of %d)\n"
    (1000. *. !best_fork) (1000. *. !best_rewarm) trials rounds;
  check "warm stops at the warmup mark" !warm_ok;
  check "forked trials all graceful" !graceful_fork;
  check "re-warmed trials all graceful" !graceful_rewarm;
  check "warm-and-fork not slower than re-warming" (!best_fork <= !best_rewarm);
  if !fail then exit 1
