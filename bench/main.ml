(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one Test.make per paper table or
   figure, measuring the pipeline stage that dominates that experiment
   (logging for Table I, BBV profiling for Fig. 9, ...).

   Part 2 — regenerates every table and figure via the experiment
   registry and prints them, so `dune exec bench/main.exe` reproduces
   the paper's whole evaluation. *)

open Bechamel
open Toolkit

(* --- machine-core microbenchmark (BENCH_core.json) ---------------------

   Interpreted instructions/second on a stream+branchy kernel, hook-free
   (the translated-block fast path) and with an instruction-counting
   pintool attached. Written to BENCH_core.json so future PRs have a
   perf trajectory to compare against. *)

let core_kernels =
  ref
    [ { Elfie_workloads.Programs.kernel = Elfie_workloads.Kernels.Stream;
        reps = 4000 };
      { kernel = Elfie_workloads.Kernels.Branchy; reps = 4000 } ]

let core_spec () =
  Elfie_workloads.Programs.spec ~phases:!core_kernels ~outer_reps:200 ~threads:1
    ~ws_bytes:65536 "core"

let core_max_ins = 4_000_000L

let run_core ~hooks ~chain ~seed =
  let rs = Elfie_workloads.Programs.run_spec ~seed (core_spec ()) in
  let machine, _kernel = Elfie_pin.Run.instantiate rs in
  Elfie_machine.Machine.set_chain_enabled machine chain;
  if hooks then begin
    let counted = ref 0L in
    let tool =
      {
        (Elfie_pin.Pintool.empty ~name:"bench-count") with
        on_ins = Some (fun _ _ _ -> counted := Int64.add !counted 1L);
      }
    in
    let (_ : unit -> unit) = Elfie_pin.Pintool.attach machine [ tool ] in
    ()
  end;
  let t0 = Unix.gettimeofday () in
  Elfie_machine.Machine.run ~max_ins:core_max_ins machine;
  let wall = Unix.gettimeofday () -. t0 in
  (Elfie_machine.Machine.total_retired machine, wall)

let json_escape s = String.concat "\\\"" (String.split_on_char '"' s)

let core_bench () =
  let trials = 5 in
  (* All phases measured interleaved (phase A trial 1, phase B trial 1,
     ..., phase A trial 2, ...) so no phase systematically benefits from
     cache/frequency warm-up over another. *)
  let phases =
    [ ("core/hook-free", false, false);  (* block tier only (chain off) *)
      ("core/chained", false, true);  (* superblock chain tier *)
      ("core/with-ins-hook", true, true) ]
  in
  let best = Hashtbl.create 4 in
  for i = 0 to trials - 1 do
    List.iter
      (fun (name, hooks, chain) ->
        let ins, w = run_core ~hooks ~chain ~seed:(Int64.of_int (100 + i)) in
        match Hashtbl.find_opt best name with
        | Some (_, bw) when bw <= w -> ()
        | _ -> Hashtbl.replace best name (ins, w))
      phases
  done;
  print_endline "=== Machine-core microbenchmark ===";
  let rows =
    List.map
      (fun (name, _, _) ->
        let ins, best_wall = Hashtbl.find best name in
        let ips = Int64.to_float ins /. best_wall in
        Printf.printf "%-28s %12.0f ins/s  (%Ld ins, best of %d, %.3f s)\n%!"
          name ips ins trials best_wall;
        Printf.sprintf
          "    { \"name\": \"%s\", \"ins_per_sec\": %.0f, \"wall_s\": %.6f, \
           \"instructions\": %Ld, \"trials\": %d }"
          (json_escape name) ips best_wall ins trials)
      phases
  in
  let oc = open_out "BENCH_core.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" rows);
  close_out oc;
  Printf.printf "wrote BENCH_core.json (jobs default: %d)\n\n%!"
    (Elfie_util.Pool.default_jobs ())

(* --- SimPoint front-end microbenchmark (BENCH_simpoint.json) -----------

   Profile-stage instructions/second with the per-instruction reference
   BBV tool vs the block-driven (hook-free) collector, plus the k-means
   model-selection sweep's wall time at jobs=1 vs the pool default.
   Written to BENCH_simpoint.json next to BENCH_core.json. *)

let simpoint_max_ins = 2_000_000L
let simpoint_slice = 10_000L

let run_profile ~per_ins ~seed =
  let rs = Elfie_workloads.Programs.run_spec ~seed (core_spec ()) in
  let t0 = Unix.gettimeofday () in
  let p =
    if per_ins then
      Elfie_pin.Bbv.profile_per_ins ~max_ins:simpoint_max_ins rs
        ~slice_size:simpoint_slice
    else
      Elfie_pin.Bbv.profile ~max_ins:simpoint_max_ins rs
        ~slice_size:simpoint_slice
  in
  (p, Unix.gettimeofday () -. t0)

let simpoint_bench () =
  let trials = 3 in
  print_endline "=== SimPoint front-end microbenchmark ===";
  let bench_profile name per_ins =
    let runs =
      List.init trials (fun i ->
          run_profile ~per_ins ~seed:(Int64.of_int (100 + i)))
    in
    let ins, best_wall =
      List.fold_left
        (fun (bi, bw) ((p : Elfie_pin.Bbv.profile), w) ->
          if w < bw then (p.total_instructions, w) else (bi, bw))
        (0L, infinity) runs
    in
    let ips = Int64.to_float ins /. best_wall in
    Printf.printf "%-32s %12.0f ins/s  (%Ld ins, best of %d, %.3f s)\n%!" name
      ips ins trials best_wall;
    Printf.sprintf
      "    { \"name\": \"%s\", \"ins_per_sec\": %.0f, \"wall_s\": %.6f, \
       \"instructions\": %Ld, \"trials\": %d }"
      (json_escape name) ips best_wall ins trials
  in
  let per_ins_row = bench_profile "simpoint/profile-per-ins" true in
  let block_row = bench_profile "simpoint/profile-block-driven" false in
  let p, _ = run_profile ~per_ins:false ~seed:100L in
  let points = Elfie_simpoint.Simpoint.project_profile ~dims:15 p in
  let cluster jobs =
    let rng = Elfie_util.Rng.create 7L in
    let t0 = Unix.gettimeofday () in
    let r = Elfie_simpoint.Kmeans.best ~jobs ~rng ~max_k:30 points in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, w1 = cluster 1 in
  let jobs_n = max 2 (Elfie_util.Pool.default_jobs ()) in
  let rn, wn = cluster jobs_n in
  if
    r1.Elfie_simpoint.Kmeans.k <> rn.Elfie_simpoint.Kmeans.k
    || r1.Elfie_simpoint.Kmeans.assignments
       <> rn.Elfie_simpoint.Kmeans.assignments
  then Printf.printf "WARNING: Kmeans.best differs across --jobs settings\n%!";
  let cluster_row name jobs (r : Elfie_simpoint.Kmeans.result) wall =
    Printf.printf "%-32s %10.4f s  (k=%d over %d points, jobs=%d)\n%!" name
      wall r.k (Array.length points) jobs;
    Printf.sprintf
      "    { \"name\": \"%s\", \"wall_s\": %.6f, \"k\": %d, \"points\": %d, \
       \"jobs\": %d }"
      (json_escape name) wall r.k (Array.length points) jobs
  in
  let c1_row = cluster_row "simpoint/cluster-jobs-1" 1 r1 w1 in
  let cn_row = cluster_row "simpoint/cluster-jobs-N" jobs_n rn wn in
  let rows = [ per_ins_row; block_row; c1_row; cn_row ] in
  let oc = open_out "BENCH_simpoint.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" rows);
  close_out oc;
  print_endline "wrote BENCH_simpoint.json\n"

(* --- Snapshot microbenchmark (BENCH_snapshot.json) ---------------------

   The copy-on-write warm-once/fork-many trial methodology against the
   baseline it replaces: N region trials, each either forked off one
   warmed capture (Elfie_runner.warm + resume) or run from scratch with
   its own warmup (Elfie_runner.run). The region is mostly warmup
   (300k-instruction region, mark at 270k), as the paper's regions are,
   so re-warming dominates the baseline's cost. Interleaved best-of-5;
   written to BENCH_snapshot.json. The @snapshot runtest guard checks
   the same property on a smaller workload. *)

let snapshot_trials = 8
let snapshot_rounds = 5

let snapshot_image () =
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:
        [ { Elfie_workloads.Programs.kernel = Elfie_workloads.Kernels.Stream;
            reps = 4000 };
          { kernel = Elfie_workloads.Kernels.Branchy; reps = 4000 } ]
      ~outer_reps:50 ~threads:1 ~ws_bytes:65536 "bench_snap"
  in
  let rs = Elfie_workloads.Programs.run_spec ~seed:7L spec in
  let cap =
    Elfie_pin.Logger.capture rs ~name:"bench_snap"
      { Elfie_pin.Logger.start = 20_000L; length = 300_000L }
  in
  Elfie_core.Pinball2elf.convert
    ~options:
      { Elfie_core.Pinball2elf.default_options with
        marker = Some (Elfie_core.Pinball2elf.Ssc 1L);
        warmup_mark = Some 270_000L }
    cap.Elfie_pin.Logger.pinball

let snapshot_bench () =
  print_endline
    "=== Snapshot microbenchmark (warm-once/fork-many vs re-warm) ===";
  let image = snapshot_image () in
  let warn name (o : Elfie_core.Elfie_runner.outcome) =
    if not o.Elfie_core.Elfie_runner.graceful then
      Printf.printf "WARNING: %s trial not graceful (%s)\n%!" name
        (Option.value ~default:"?" o.Elfie_core.Elfie_runner.fault)
  in
  let rewarm () =
    let t0 = Unix.gettimeofday () in
    for i = 0 to snapshot_trials - 1 do
      warn "re-warm"
        (Elfie_core.Elfie_runner.run ~seed:(Int64.of_int (3000 + i)) image)
    done;
    Unix.gettimeofday () -. t0
  in
  let warm_fork () =
    let t0 = Unix.gettimeofday () in
    (match Elfie_core.Elfie_runner.warm ~seed:3000L image with
    | Ok w ->
        for i = 0 to snapshot_trials - 1 do
          warn "forked"
            (Elfie_core.Elfie_runner.resume ~seed:(Int64.of_int (3000 + i)) w)
        done
    | Error _ -> Printf.printf "WARNING: warm failed (no mark?)\n%!");
    Unix.gettimeofday () -. t0
  in
  let best_fork = ref infinity and best_rewarm = ref infinity in
  (* Interleaved, alternating which leg goes first each round, so
     neither systematically benefits from cache/frequency warm-up. *)
  for r = 0 to snapshot_rounds - 1 do
    let legs =
      if r land 1 = 0 then [ (best_fork, warm_fork); (best_rewarm, rewarm) ]
      else [ (best_rewarm, rewarm); (best_fork, warm_fork) ]
    in
    List.iter (fun (best, leg) -> best := min !best (leg ())) legs
  done;
  let pages =
    match Elfie_core.Elfie_runner.warm ~seed:3000L image with
    | Ok w -> Elfie_core.Elfie_runner.warmed_pages w
    | Error _ -> 0
  in
  let speedup = !best_rewarm /. !best_fork in
  let row name wall =
    Printf.printf "%-28s %10.3f s total  %8.1f ms/trial  (best of %d)\n%!"
      name wall
      (1000.0 *. wall /. float_of_int snapshot_trials)
      snapshot_rounds;
    Printf.sprintf
      "    { \"name\": \"%s\", \"wall_s\": %.6f, \"trials\": %d, \"rounds\": \
       %d }"
      (json_escape name) wall snapshot_trials snapshot_rounds
  in
  let fork_row = row "snapshot/warm-and-fork" !best_fork in
  let rewarm_row = row "snapshot/re-warm-per-trial" !best_rewarm in
  Printf.printf "%-28s %10.2fx  (%d CoW pages per capture)\n%!"
    "snapshot/speedup" speedup pages;
  if speedup < 3.0 then
    Printf.printf "WARNING: warm-once/fork-many speedup %.2fx below 3x\n%!"
      speedup;
  let speedup_row =
    Printf.sprintf
      "    { \"name\": \"snapshot/speedup\", \"speedup\": %.3f, \
       \"snapshot_pages\": %d }"
      speedup pages
  in
  let oc = open_out "BENCH_snapshot.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" [ fork_row; rewarm_row; speedup_row ]);
  close_out oc;
  print_endline "wrote BENCH_snapshot.json\n"

(* --- Farm store microbenchmark (BENCH_farm.json) -----------------------

   The same small manifest run twice against one artifact store: the
   cold pass computes and commits every stage, the warm pass must be
   served entirely from cache — no program execution at all. Wall time
   plus the store hit/miss counters (and the loader-run counter, which
   must not move on the warm pass) are written to BENCH_farm.json. *)

let farm_manifest =
  "leela bench=541.leela_r max-k=4 warmup=1000 trials=1 regions=2\n\
   mcf bench=505.mcf_r max-k=4 warmup=1000 trials=1 regions=2\n"

let farm_bench () =
  print_endline "=== Farm store microbenchmark (cold vs warm cache) ===";
  let module Metrics = Elfie_obs.Metrics in
  let m_hits = Metrics.counter "elfie_store_hits_total" in
  let m_misses = Metrics.counter "elfie_store_misses_total" in
  let m_loader = Metrics.counter "elfie_loader_runs_total" in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "elfie_bench_farm.%d" (Unix.getpid ()))
  in
  let jobs =
    match Elfie_farm.Driver.manifest_of_string ~artifact:"bench" farm_manifest
    with
    | Ok jobs -> jobs
    | Error d -> Fmt.failwith "farm bench manifest: %a" Elfie_util.Diag.pp d
  in
  let store = Elfie_farm.Store.open_store root in
  let pass name =
    let h0 = Metrics.total m_hits
    and m0 = Metrics.total m_misses
    and r0 = Metrics.total m_loader in
    let t0 = Unix.gettimeofday () in
    let batch = Elfie_farm.Driver.run ~store jobs in
    let wall = Unix.gettimeofday () -. t0 in
    let hits = int_of_float (Metrics.total m_hits -. h0)
    and misses = int_of_float (Metrics.total m_misses -. m0)
    and runs = int_of_float (Metrics.total m_loader -. r0) in
    Printf.printf
      "%-26s %8.3f s  %4d hit(s) %4d miss(es) %4d program run(s)\n%!"
      name wall hits misses runs;
    if batch.Elfie_farm.Driver.b_quarantined > 0 then
      Printf.printf "WARNING: %d job(s) quarantined\n%!"
        batch.Elfie_farm.Driver.b_quarantined;
    Printf.sprintf
      "    { \"name\": \"%s\", \"wall_s\": %.6f, \"hits\": %d, \"misses\": \
       %d, \"program_runs\": %d }"
      (json_escape name) wall hits misses runs
  in
  let cold = pass "farm/cold-cache" in
  let warm = pass "farm/warm-cache" in
  let oc = open_out "BENCH_farm.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" [ cold; warm ]);
  close_out oc;
  print_endline "wrote BENCH_farm.json\n"

(* --- Farm daemon microbenchmark (BENCH_daemon.json) --------------------

   The farm manifest run three times against a two-shard daemon fleet:

   - cold: a fresh local store and both daemons empty — every stage
     computes, and write-through populates the shards;
   - warm-through-daemon: a FRESH local store, so every artifact can
     only come from the daemons — zero program executions;
   - warm-one-shard-down: another fresh local store with one daemon
     stopped — keys owned by the dead shard degrade to recompute, the
     run completes, and the result is still correct.

   Wall time, hit/miss/run counters and the client's fallback-recompute
   counter are written to BENCH_daemon.json. *)

let farm_daemon_bench () =
  print_endline
    "=== Farm daemon microbenchmark (cold vs warm vs degraded) ===";
  let module Metrics = Elfie_obs.Metrics in
  let module Store = Elfie_farm.Store in
  let module Daemon = Elfie_farm.Daemon in
  let module Shard = Elfie_farm.Shard in
  let m_hits = Metrics.counter "elfie_store_hits_total" in
  let m_misses = Metrics.counter "elfie_store_misses_total" in
  let m_loader = Metrics.counter "elfie_loader_runs_total" in
  let m_fallbacks =
    Metrics.counter "elfie_daemon_fallback_recomputes_total"
  in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "elfie_bench_daemon.%d" (Unix.getpid ()))
  in
  Unix.mkdir root 0o755;
  let jobs =
    match Elfie_farm.Driver.manifest_of_string ~artifact:"bench" farm_manifest
    with
    | Ok jobs -> jobs
    | Error d -> Fmt.failwith "daemon bench manifest: %a" Elfie_util.Diag.pp d
  in
  let shard_daemon name =
    let store = Store.open_store (Filename.concat root name) in
    Daemon.start ~store
      ~socket_path:(Filename.concat root (name ^ ".sock"))
      ()
  in
  let da = shard_daemon "shard_a" and db = shard_daemon "shard_b" in
  let endpoints = [ Daemon.socket_path da; Daemon.socket_path db ] in
  let pass name local =
    let local = Store.open_store (Filename.concat root local) in
    let shard = Shard.connect ~local ~endpoints () in
    let h0 = Metrics.total m_hits
    and m0 = Metrics.total m_misses
    and r0 = Metrics.total m_loader
    and f0 = Metrics.total m_fallbacks in
    let t0 = Unix.gettimeofday () in
    let batch =
      Fun.protect
        ~finally:(fun () -> Shard.close shard)
        (fun () -> Elfie_farm.Driver.run ~store:local ~shard jobs)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let hits = int_of_float (Metrics.total m_hits -. h0)
    and misses = int_of_float (Metrics.total m_misses -. m0)
    and runs = int_of_float (Metrics.total m_loader -. r0)
    and fallbacks = int_of_float (Metrics.total m_fallbacks -. f0) in
    Printf.printf
      "%-26s %8.3f s  %4d hit(s) %4d miss(es) %4d program run(s) %4d \
       fallback(s)\n%!"
      name wall hits misses runs fallbacks;
    if batch.Elfie_farm.Driver.b_quarantined > 0 then
      Printf.printf "WARNING: %d job(s) quarantined\n%!"
        batch.Elfie_farm.Driver.b_quarantined;
    ( runs,
      Printf.sprintf
        "    { \"name\": \"%s\", \"wall_s\": %.6f, \"hits\": %d, \
         \"misses\": %d, \"program_runs\": %d, \"fallback_recomputes\": %d }"
        (json_escape name) wall hits misses runs fallbacks )
  in
  let _, cold = pass "daemon/cold" "local_cold" in
  (* Fresh local store: every artifact must come over the wire. *)
  let warm_runs, warm = pass "daemon/warm-through-daemon" "local_warm" in
  if warm_runs > 0 then
    Printf.printf
      "WARNING: warm-through-daemon executed %d program run(s), expected 0\n%!"
      warm_runs;
  (* One shard down: completion over purity — the run must finish, keys
     owned by the dead shard recompute locally. *)
  Daemon.stop db;
  let _, degraded = pass "daemon/warm-one-shard-down" "local_degraded" in
  (* Telemetry scrape overhead: what one `elfied top` refresh costs the
     surviving shard — full Prometheus exposition over the wire through
     a monitor router, measured per scrape. *)
  let scrape =
    let ep = Daemon.socket_path da in
    let monitor = Shard.monitor ~endpoints:[ ep ] () in
    Fun.protect
      ~finally:(fun () -> Shard.close monitor)
      (fun () ->
        let n = 50 in
        let lat = Array.make n 0.0 in
        let bytes = ref 0 in
        for i = 0 to n - 1 do
          let t0 = Unix.gettimeofday () in
          (match Shard.scrape_metrics monitor ep with
          | Ok exposition -> bytes := String.length exposition
          | Error e -> Fmt.failwith "metrics scrape failed: %s" e);
          lat.(i) <- Unix.gettimeofday () -. t0
        done;
        Array.sort compare lat;
        let avg_ms = Array.fold_left ( +. ) 0.0 lat /. float_of_int n *. 1e3 in
        let min_ms = lat.(0) *. 1e3 and max_ms = lat.(n - 1) *. 1e3 in
        Printf.printf
          "%-26s %8.3f ms avg  %8.3f ms max  (%d scrapes, %d exposition \
           bytes)\n\
           %!"
          "daemon/metrics-scrape" avg_ms max_ms n !bytes;
        Printf.sprintf
          "    { \"name\": \"daemon/metrics-scrape\", \"scrapes\": %d, \
           \"exposition_bytes\": %d, \"avg_ms\": %.6f, \"min_ms\": %.6f, \
           \"max_ms\": %.6f }"
          n !bytes avg_ms min_ms max_ms)
  in
  Daemon.stop da;
  let oc = open_out "BENCH_daemon.json" in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" [ cold; warm; degraded; scrape ]);
  close_out oc;
  print_endline "wrote BENCH_daemon.json\n"

let tiny_spec ?(threads = 1) name =
  Elfie_workloads.Programs.spec
    ~phases:
      [ { kernel = Elfie_workloads.Kernels.Stream; reps = 1500 };
        { kernel = Elfie_workloads.Kernels.Branchy; reps = 1200 } ]
    ~outer_reps:6 ~threads ~ws_bytes:32768 name

let tiny_rs ?threads name =
  Elfie_workloads.Programs.run_spec (tiny_spec ?threads name)

(* Shared inputs, built once. *)
let pinball =
  lazy
    ((Elfie_pin.Logger.capture (tiny_rs "bench") ~name:"bench"
        { Elfie_pin.Logger.start = 20_000L; length = 20_000L })
       .Elfie_pin.Logger.pinball)

let elfie_image =
  lazy
    (let pb = Lazy.force pinball in
     Elfie_core.Pinball2elf.convert
       ~options:
         { Elfie_core.Pinball2elf.default_options with
           marker = Some (Elfie_core.Pinball2elf.Ssc 1L) }
       pb)

let profile_points =
  lazy
    (let profile = Elfie_pin.Bbv.profile (tiny_rs "bench_bbv") ~slice_size:5_000L in
     Array.of_list
       (List.map
          (Elfie_simpoint.Simpoint.project ~dims:15)
          profile.Elfie_pin.Bbv.slices))

(* table1: PinPlay logging (the overhead being measured in Table I). *)
let bench_table1 =
  Test.make ~name:"table1/pinplay-log-20k-region"
    (Staged.stage (fun () ->
         ignore
           (Elfie_pin.Logger.capture (tiny_rs "t1") ~name:"t1"
              { Elfie_pin.Logger.start = 5_000L; length = 20_000L })))

(* fig9: native hardware measurement of a region ELFie. *)
let bench_fig9 =
  Test.make ~name:"fig9/native-elfie-run"
    (Staged.stage (fun () ->
         ignore (Elfie_core.Elfie_runner.run (Lazy.force elfie_image))))

(* table2: whole-program native run (the validation baseline). *)
let bench_table2 =
  Test.make ~name:"table2/native-whole-program"
    (Staged.stage (fun () -> ignore (Elfie_pin.Run.native (tiny_rs "t2"))))

(* table3 & fig10: SimPoint clustering. *)
let bench_fig10 =
  Test.make ~name:"fig10/kmeans-phase-clustering"
    (Staged.stage (fun () ->
         let rng = Elfie_util.Rng.create 7L in
         ignore
           (Elfie_simpoint.Kmeans.best ~rng ~max_k:10 (Lazy.force profile_points))))

(* fig11: constrained pinball simulation under Sniper. *)
let bench_fig11 =
  Test.make ~name:"fig11/sniper-pinball-sim"
    (Staged.stage (fun () ->
         ignore
           (Elfie_sniper.Sniper.simulate_pinball
              (Elfie_sniper.Sniper.gainestown ~cores:8)
              (Lazy.force pinball))))

(* table4: full-system CoreSim simulation of an ELFie. *)
let bench_table4 =
  Test.make ~name:"table4/coresim-full-system"
    (Staged.stage (fun () ->
         ignore
           (Elfie_coresim.Coresim.simulate ~mode:Elfie_coresim.Coresim.Full_system
              Elfie_coresim.Coresim.skylake (Lazy.force elfie_image))))

(* table5: gem5 SE-mode simulation of an ELFie. *)
let bench_table5 =
  Test.make ~name:"table5/gem5-se-sim"
    (Staged.stage (fun () ->
         ignore
           (Elfie_gem5.Gem5.simulate_se Elfie_gem5.Gem5.nehalem
              (Lazy.force elfie_image))))

(* Cross-cutting: the supervised native-run path (watchdog pintool +
   classification on top of fig9's raw run — the supervision overhead). *)
let bench_supervised =
  Test.make ~name:"supervise/native-elfie-run"
    (Staged.stage (fun () ->
         ignore
           (Elfie_supervise.Supervisor.run_elfie ~job:"bench"
              ~budget:
                { Elfie_supervise.Supervisor.ins = Some 100_000_000L;
                  wall_s = Some 30.0 }
              (Lazy.force elfie_image))))

(* Cross-cutting: pinball -> ELF conversion and ELF codec. *)
let bench_convert =
  Test.make ~name:"core/pinball2elf-convert"
    (Staged.stage (fun () ->
         ignore (Elfie_core.Pinball2elf.convert (Lazy.force pinball))))

let bench_elf_codec =
  Test.make ~name:"core/elf-write-read"
    (Staged.stage (fun () ->
         let img = Lazy.force elfie_image in
         ignore (Elfie_elf.Image.read (Elfie_elf.Image.write img))))

let tests =
  Test.make_grouped ~name:"elfie"
    [ bench_table1; bench_fig9; bench_table2; bench_fig10; bench_fig11;
      bench_table4; bench_table5; bench_supervised; bench_convert;
      bench_elf_codec ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Printf.printf "%-38s %16s\n" "micro-benchmark" "time/run";
  Printf.printf "%s\n" (String.make 56 '-');
  Hashtbl.iter
    (fun measure tbl ->
      if measure = Measure.label Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
                let human =
                  if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                  else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                  else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                  else Printf.sprintf "%.0f ns" est
                in
                Printf.printf "%-38s %16s\n" name human
            | _ -> ())
          tbl)
    results;
  print_newline ()

let () =
  let jobs = ref 0 in
  let core_only = ref false in
  let simpoint_only = ref false in
  let farm_only = ref false in
  let daemon_only = ref false in
  let snapshot_only = ref false in
  let rec parse = function
    | "--jobs" :: n :: rest ->
        jobs := (try int_of_string n with _ -> 0);
        parse rest
    | "--core-only" :: rest ->
        core_only := true;
        parse rest
    | "--simpoint" :: rest | "--simpoint-only" :: rest ->
        simpoint_only := true;
        parse rest
    | "--farm" :: rest | "--farm-only" :: rest ->
        farm_only := true;
        parse rest
    | "--daemon" :: rest | "--daemon-only" :: rest ->
        daemon_only := true;
        parse rest
    | "--snapshot" :: rest | "--snapshot-only" :: rest ->
        snapshot_only := true;
        parse rest
    | "--core-kernel" :: k :: rest ->
        (* Diagnostic: run the core microbenchmark on a single kernel
           (implies --core-only). *)
        (match
           List.find_opt
             (fun kn -> Elfie_workloads.Kernels.name kn = k)
             Elfie_workloads.Kernels.all
         with
        | Some kn ->
            core_kernels :=
              [ { Elfie_workloads.Programs.kernel = kn; reps = 8000 } ];
            core_only := true
        | None ->
            Printf.eprintf "unknown kernel %s (known kernels: %s)\n" k
              (String.concat ", "
                 (List.map Elfie_workloads.Kernels.name
                    Elfie_workloads.Kernels.all));
            exit 2);
        parse rest
    | _ :: rest -> parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  Elfie_util.Pool.set_default_jobs
    (if !jobs <= 0 then Elfie_util.Pool.recommended () else !jobs);
  if !simpoint_only then begin
    simpoint_bench ();
    exit 0
  end;
  if !farm_only then begin
    farm_bench ();
    exit 0
  end;
  if !daemon_only then begin
    farm_daemon_bench ();
    exit 0
  end;
  if !snapshot_only then begin
    snapshot_bench ();
    exit 0
  end;
  core_bench ();
  if !core_only then exit 0;
  simpoint_bench ();
  snapshot_bench ();
  farm_bench ();
  farm_daemon_bench ();
  print_endline "=== Bechamel micro-benchmarks (one per table/figure) ===";
  run_benchmarks ();
  print_endline "=== Paper evaluation: every table and figure ===\n";
  (* Each phase runs as a supervised job: a crashing experiment is
     classified and quarantined instead of aborting the run, and the
     per-phase timing table below comes from the supervisor reports. *)
  let module Supervisor = Elfie_supervise.Supervisor in
  let module Trace = Elfie_obs.Trace in
  let module Metrics = Elfie_obs.Metrics in
  (* Observability snapshot per phase: how many trace events and native
     runner invocations each experiment generated, read back as deltas of
     the process-global tracer/metrics counters around its exec. *)
  let m_loader = Metrics.counter "elfie_loader_runs_total" in
  let obs_deltas : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let specs =
    List.map
      (fun (e : Elfie_harness.Registry.experiment) ->
        {
          Supervisor.name = e.id;
          job_inputs = [ e.id; e.title ];
          exec =
            (fun ~seed:_ ~max_ins:_ ->
              Printf.printf "=== %s: %s ===\n%!" e.id e.title;
              let events0 = Trace.emitted () in
              let runs0 = Metrics.total m_loader in
              print_string (e.run ());
              print_newline ();
              Hashtbl.replace obs_deltas e.id
                ( Trace.emitted () - events0,
                  int_of_float (Metrics.total m_loader -. runs0) );
              ((), Elfie_supervise.Classify.Graceful));
        })
      Elfie_harness.Registry.all
  in
  let results = Supervisor.run_batch specs in
  Printf.printf "=== Per-phase supervised timings ===\n";
  Printf.printf "%-10s %-14s %9s %10s %8s %8s\n" "phase" "classification"
    "attempts" "wall" "events" "runs";
  Printf.printf "%s\n" (String.make 65 '-');
  List.iter
    (fun (name, (r : Supervisor.report), _) ->
      let events, runs =
        Option.value ~default:(0, 0) (Hashtbl.find_opt obs_deltas name)
      in
      Printf.printf "%-10s %-14s %9d %9.1fs %8d %8d\n" name
        (Elfie_supervise.Classify.to_string r.final)
        (List.length r.attempts) r.total_wall_s events runs)
    results
