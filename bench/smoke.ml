(* Chain-tier smoke test, run from `dune runtest` via the @bench-smoke
   alias: a tiny deterministic loop kernel executed both with the
   superblock chain tier and with plain block dispatch. Guards against
   silent chain-tier regressions — the chained run must actually build
   superblocks, retire the identical instruction stream, and not be
   slower than block-only dispatch. The workload is small enough for CI
   (a few hundred thousand instructions per leg) and the expected gap is
   large (≥1.3x in BENCH_core.json), so best-of-N wall-clock comparison
   at margin 1.0 is robust against scheduler noise. *)

module Machine = Elfie_machine.Machine

let max_ins = 400_000L
let trials = 5

let spec =
  Elfie_workloads.Programs.spec
    ~phases:
      [ { Elfie_workloads.Programs.kernel = Elfie_workloads.Kernels.Stream;
          reps = 4000 } ]
    ~outer_reps:50 ~threads:1 ~ws_bytes:65536 "bench-smoke"

let run ~chain =
  let rs = Elfie_workloads.Programs.run_spec ~seed:7L spec in
  let machine, _kernel = Elfie_pin.Run.instantiate rs in
  Machine.set_chain_enabled machine chain;
  let t0 = Unix.gettimeofday () in
  Machine.run ~max_ins machine;
  let wall = Unix.gettimeofday () -. t0 in
  (Machine.total_retired machine, (Machine.chain_stats machine).Machine.superblocks_built, wall)

let () =
  let best_chain = ref infinity and best_block = ref infinity in
  let retired_chain = ref 0L and retired_block = ref 0L in
  let built = ref 0 in
  (* Interleaved trials, as in the full core bench, so neither leg
     systematically benefits from warm-up. *)
  for _ = 1 to trials do
    let r, _, w = run ~chain:false in
    retired_block := r;
    if w < !best_block then best_block := w;
    let r, b, w = run ~chain:true in
    retired_chain := r;
    built := b;
    if w < !best_chain then best_chain := w
  done;
  let fail = ref false in
  let check name ok =
    Printf.printf "%-44s %s\n" name (if ok then "ok" else "FAIL");
    if not ok then fail := true
  in
  Printf.printf "bench-smoke: block-only %.1f ms, chained %.1f ms (best of %d)\n"
    (1000. *. !best_block) (1000. *. !best_chain) trials;
  check "chained and block-only retire the same stream"
    (Int64.equal !retired_chain !retired_block && Int64.compare !retired_chain 0L > 0);
  check "chained run built superblocks" (!built > 0);
  check "chained throughput >= block-only" (!best_chain <= !best_block);
  if !fail then exit 1
