(* Metric-taxonomy lint (dune alias @metrics-lint, also part of the
   default test run): every `elfie_*` metric family registered in lib/
   must be documented in docs/OBSERVABILITY.md, and every `elfie_*`
   family the doc names must actually be registered — so the metric
   taxonomy cannot silently drift in either direction.

   Usage: metrics_lint.exe LIB_DIR DOC_FILE *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec ml_files dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

(* Registration sites look like `Metrics.counter "elfie_..."` (possibly
   with the string literal on the next line); the registry functions are
   the only things named counter/gauge/histogram that take a leading
   string. *)
let registered_in source =
  let found = ref [] in
  let n = String.length source in
  let scan_after fn =
    let fl = String.length fn in
    let rec from i =
      match String.index_from_opt source i fn.[0] with
      | None -> ()
      | Some j when j + fl <= n && String.sub source j fl = fn ->
          (* Reject a longer identifier (e.g. `counters`). *)
          let boundary =
            (j = 0 || not (is_name_char source.[j - 1]))
            && (j + fl >= n || not (is_name_char source.[j + fl]))
          in
          (if boundary then
             (* Skip whitespace to the opening quote of the name. *)
             let k = ref (j + fl) in
             while
               !k < n
               && (source.[!k] = ' ' || source.[!k] = '\n'
                 || source.[!k] = '\t' || source.[!k] = '\r')
             do
               incr k
             done;
             if !k < n && source.[!k] = '"' then begin
               let start = !k + 1 in
               match String.index_from_opt source start '"' with
               | Some close ->
                   let name = String.sub source start (close - start) in
                   if String.starts_with ~prefix:"elfie_" name then
                     found := name :: !found
               | None -> ()
             end);
          from (j + 1)
      | Some j -> from (j + 1)
    in
    from 0
  in
  List.iter scan_after
    [ "Metrics.counter"; "Metrics.gauge"; "Metrics.histogram" ];
  !found

(* Metric families are `elfie_<subsystem>_<measure>`: at least two
   further underscore-separated segments. Single-segment tokens are
   component names (the `elfie_obs` library, `bin/elfie_run`), not
   metrics. *)
let looks_like_metric token =
  String.length token > 6
  && String.contains_from token 6 '_'

(* `elfie_*`-shaped tokens in the doc. A token immediately followed by
   `*` is a wildcard mention (e.g. "the `elfie_sim_*` families") and is
   not held against the registry. *)
let documented_in text =
  let found = ref [] in
  let n = String.length text in
  let prefix = "elfie_" in
  let pl = String.length prefix in
  let rec from i =
    match String.index_from_opt text i 'e' with
    | None -> ()
    | Some j when j + pl <= n && String.sub text j pl = prefix ->
        if j > 0 && is_name_char text.[j - 1] then from (j + 1)
        else begin
          let k = ref j in
          while !k < n && is_name_char text.[!k] do
            incr k
          done;
          let token = String.sub text j (!k - j) in
          if (not (!k < n && text.[!k] = '*')) && looks_like_metric token then
            found := token :: !found;
          from !k
        end
    | Some j -> from (j + 1)
  in
  from 0;
  !found

(* A doc token may name an exposition series of a registered family. *)
let series_suffixes = [ "_bucket"; "_sum"; "_count" ]

let covers registered token =
  List.mem token registered
  || List.exists
       (fun suffix ->
         List.exists (fun r -> token = r ^ suffix) registered)
       series_suffixes

let () =
  let lib_dir, doc_file =
    match Sys.argv with
    | [| _; lib; doc |] -> (lib, doc)
    | _ ->
        prerr_endline "usage: metrics_lint.exe LIB_DIR DOC_FILE";
        exit 2
  in
  let registered =
    List.sort_uniq compare
      (List.concat_map (fun f -> registered_in (read_file f)) (ml_files lib_dir))
  in
  let documented =
    List.sort_uniq compare (documented_in (read_file doc_file))
  in
  if registered = [] then begin
    Printf.eprintf "metrics-lint: no elfie_* registrations found under %s\n"
      lib_dir;
    exit 1
  end;
  let undocumented =
    List.filter (fun r -> not (List.mem r documented)) registered
  in
  let unregistered =
    List.filter (fun d -> not (covers registered d)) documented
  in
  List.iter
    (fun r ->
      Printf.eprintf
        "metrics-lint: %s is registered in lib/ but undocumented in %s\n" r
        (Filename.basename doc_file))
    undocumented;
  List.iter
    (fun d ->
      Printf.eprintf
        "metrics-lint: %s is documented in %s but not registered in lib/\n" d
        (Filename.basename doc_file))
    unregistered;
  if undocumented <> [] || unregistered <> [] then exit 1;
  Printf.printf
    "metrics-lint: %d metric families registered, all documented; %d doc \
     mentions, all registered\n"
    (List.length registered) (List.length documented)
