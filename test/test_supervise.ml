(* Unit tests for the supervised execution layer: classification
   round-trips, journal persistence and torn-write tolerance, the retry
   loop's dispositions (synthetic jobs, no machine execution), and
   batch resume from a truncated journal. *)

module Supervisor = Elfie_supervise.Supervisor
module Journal = Elfie_supervise.Journal
module Classify = Elfie_supervise.Classify

let all_classes =
  [
    Classify.Graceful;
    Classify.Stack_collision;
    Classify.Divergence { pc = 0xdead_beefL; icount = 123_456L };
    Classify.Syscall_failure;
    Classify.Timeout;
    Classify.Runaway;
    Classify.Backend_error "plain message";
    Classify.Backend_error "tabs\tnewlines\nand %25 signs";
  ]

let test_classify_roundtrip () =
  List.iter
    (fun c ->
      let s = Classify.to_string c in
      String.iter
        (fun ch ->
          if ch = '\t' || ch = '\n' then
            Alcotest.fail "separator leaked into rendering")
        s;
      match Classify.of_string s with
      | Some c' -> Alcotest.(check bool) ("roundtrip " ^ s) true (c = c')
      | None -> Alcotest.fail ("unparseable: " ^ s))
    all_classes;
  Alcotest.(check bool) "garbage rejected" true
    (Classify.of_string "no-such-class" = None);
  Alcotest.(check bool) "bad divergence rejected" true
    (Classify.of_string "divergence:pc=zzz" = None)

let record c =
  {
    Journal.job = "bench_c0_r0";
    inputs_hash = Journal.hash [ "a"; "b" ];
    attempts = 2;
    classification = c;
    quarantined = (not (Classify.is_graceful c));
    wall_ms = 12.5;
    attrs = [];
  }

let test_journal_line_roundtrip () =
  List.iter
    (fun c ->
      let r = record c in
      match Journal.record_of_line (Journal.line_of_record r) with
      | Some r' -> Alcotest.(check bool) "record roundtrip" true (r = r')
      | None -> Alcotest.fail "journal line did not parse")
    all_classes;
  Alcotest.(check bool) "torn line ignored" true
    (Journal.record_of_line "J1\tjob\tdeadbeef\t2\tgrace" = None);
  Alcotest.(check bool) "wrong magic ignored" true
    (Journal.record_of_line "J9\tjob\tx\t1\tgraceful\t0\t1.0" = None)

let test_journal_attrs_roundtrip () =
  let r =
    {
      (record Classify.Graceful) with
      Journal.attrs =
        [
          ("attempt0", "runaway:813ms");
          ("attempt1", "graceful:42ms");
          ("nasty", "tabs\tcommas,equals=and %25 signs");
        ];
    }
  in
  let line = Journal.line_of_record r in
  Alcotest.(check bool) "attrs line stays single-line" false
    (String.contains line '\n');
  (match Journal.record_of_line line with
  | Some r' -> Alcotest.(check bool) "attrs roundtrip" true (r = r')
  | None -> Alcotest.fail "attrs line did not parse");
  (* A pre-attrs (7-field) line still parses, with empty attrs. *)
  match Journal.record_of_line (Journal.line_of_record (record Classify.Graceful)) with
  | Some r' -> Alcotest.(check bool) "7-field line parses" true (r'.Journal.attrs = [])
  | None -> Alcotest.fail "7-field line did not parse"

let test_journal_file_tolerant_and_latest_wins () =
  let path = Filename.temp_file "elfie_journal" ".j" in
  let j = Journal.open_file path in
  let h = Journal.hash [ "x" ] in
  Journal.record j
    { (record Classify.Runaway) with job = "a"; inputs_hash = h };
  Journal.record j
    { (record Classify.Graceful) with job = "a"; inputs_hash = h; quarantined = false };
  Journal.close j;
  (* Simulate a writer killed mid-record: append half a line. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "J1\tb\tdeadbeef\t1\tgrace";
  close_out oc;
  let j2 = Journal.open_file path in
  Alcotest.(check int) "torn record dropped" 2 (List.length (Journal.records j2));
  Alcotest.(check bool) "latest record wins, graceful skips" true
    (Journal.should_skip j2 ~job:"a" ~inputs_hash:h);
  Alcotest.(check bool) "changed inputs re-run" false
    (Journal.should_skip j2 ~job:"a" ~inputs_hash:(Journal.hash [ "y" ]));
  Alcotest.(check bool) "unknown job runs" false
    (Journal.should_skip j2 ~job:"b" ~inputs_hash:h);
  Journal.close j2;
  Sys.remove path

(* A torn FIRST line — not just a torn trailing one: e.g. the head of the
   file was clobbered by a partial copy, or an older writer died on its
   very first record. Every later record must still load. *)
let test_journal_torn_first_line () =
  let path = Filename.temp_file "elfie_journal_first" ".j" in
  let h = Journal.hash [ "x" ] in
  let oc = open_out_bin path in
  output_string oc "J1\tfirst\tdeadbeef\t1\tgrace";
  output_char oc '\n';
  output_string oc
    (Journal.line_of_record
       { (record Classify.Graceful) with job = "a"; inputs_hash = h;
         quarantined = false });
  output_char oc '\n';
  output_string oc
    (Journal.line_of_record
       { (record Classify.Runaway) with job = "b"; inputs_hash = h });
  output_char oc '\n';
  close_out oc;
  let j = Journal.open_file path in
  Alcotest.(check int) "torn first line dropped, rest kept" 2
    (List.length (Journal.records j));
  Alcotest.(check bool) "later graceful record still skips" true
    (Journal.should_skip j ~job:"a" ~inputs_hash:h);
  Alcotest.(check bool) "torn job does not skip" false
    (Journal.should_skip j ~job:"first" ~inputs_hash:h);
  Journal.close j;
  Sys.remove path

let test_retry_reseeds_collisions () =
  let seeds = ref [] in
  let report, value =
    Supervisor.supervise ~job:"reseed"
      ~policy:{ Supervisor.default_policy with retries = 3; base_seed = 100L }
      (fun ~attempt_no ~seed ~budget:_ ->
        seeds := seed :: !seeds;
        if attempt_no < 2 then (None, Classify.Stack_collision)
        else (Some "ok", Classify.Graceful))
  in
  Alcotest.(check bool) "graceful" true (report.Supervisor.final = Classify.Graceful);
  Alcotest.(check bool) "not quarantined" false report.quarantined;
  Alcotest.(check int) "three attempts" 3 (List.length report.attempts);
  Alcotest.(check (option string)) "value" (Some "ok") value;
  Alcotest.(check (list Tutil.i64)) "reseed schedule"
    [ 100L; 1109L; 2118L ] (List.rev !seeds)

let test_retry_budget_exhausted_quarantines () =
  let report, _ =
    Supervisor.supervise ~job:"always-collides"
      ~policy:{ Supervisor.default_policy with retries = 2 }
      (fun ~attempt_no:_ ~seed:_ ~budget:_ -> (None, Classify.Stack_collision))
  in
  Alcotest.(check bool) "quarantined" true report.Supervisor.quarantined;
  Alcotest.(check int) "retries + 1 attempts" 3 (List.length report.attempts);
  Alcotest.(check bool) "final is collision" true
    (report.final = Classify.Stack_collision)

let test_runaway_raises_budget_once () =
  let budgets = ref [] in
  let report, _ =
    Supervisor.supervise ~job:"runaway"
      ~budget:{ Supervisor.ins = Some 100L; wall_s = None }
      (fun ~attempt_no:_ ~seed:_ ~budget ->
        budgets := budget.Supervisor.ins :: !budgets;
        (None, Classify.Runaway))
  in
  Alcotest.(check bool) "quarantined" true report.Supervisor.quarantined;
  Alcotest.(check int) "one raised retry" 2 (List.length report.attempts);
  Alcotest.(check (list (option Tutil.i64)))
    "budget raised by the policy factor"
    [ Some 100L; Some 400L ] (List.rev !budgets)

let test_backend_error_immediate_quarantine () =
  let runs = ref 0 in
  let report, _ =
    Supervisor.supervise ~job:"broken"
      (fun ~attempt_no:_ ~seed:_ ~budget:_ ->
        incr runs;
        (None, Classify.Backend_error "unusable artifact"))
  in
  Alcotest.(check int) "no retries" 1 !runs;
  Alcotest.(check bool) "quarantined" true report.Supervisor.quarantined

let test_exception_is_classified () =
  let report, value =
    Supervisor.supervise ~job:"raises"
      (fun ~attempt_no:_ ~seed:_ ~budget:_ -> failwith "boom")
  in
  Alcotest.(check bool) "no exception escapes, quarantined" true
    report.Supervisor.quarantined;
  (match report.final with
  | Classify.Backend_error _ -> ()
  | c ->
      Alcotest.failf "expected backend-error, got %s" (Classify.to_string c));
  Alcotest.(check bool) "no value" true (value = None)

let test_divergence_triggers_escalation () =
  let escalations = ref 0 in
  let report, _ =
    Supervisor.supervise ~job:"div"
      ~escalate:(fun _cls ->
        incr escalations;
        Some (Classify.Graceful, "injectionless replay reproduced the region"))
      (fun ~attempt_no:_ ~seed:_ ~budget:_ ->
        (None, Classify.Divergence { pc = 0x1000L; icount = 7L }))
  in
  Alcotest.(check int) "escalated once" 1 !escalations;
  Alcotest.(check bool) "still quarantined (escalation is diagnostic)" true
    report.Supervisor.quarantined;
  (match report.attempts with
  | [ primary; esc ] ->
      Alcotest.(check bool) "primary not escalated" false primary.escalated;
      Alcotest.(check bool) "escalation recorded" true esc.escalated;
      Alcotest.(check bool) "note kept" true (esc.note <> None)
  | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l))

(* Durability cadence: with a bounded fsync_every the journal still
   flushes every line (a crashed process loses nothing already written),
   [sync] forces the tail down, and a partially flushed trailing record
   is torn-line tolerant on reload. *)
let test_journal_fsync_cadence () =
  let path = Filename.temp_file "elfie_journal_sync" ".j" in
  let j = Journal.open_file ~fsync_every:3 path in
  let h = Journal.hash [ "x" ] in
  for i = 1 to 5 do
    Journal.record j
      { (record Classify.Graceful) with job = Printf.sprintf "j%d" i;
        inputs_hash = h }
  done;
  Journal.sync j;
  (* Every record is visible to a concurrent reader even mid-cadence:
     record flushes line-by-line regardless of the fsync interval. *)
  let j_read = Journal.open_file path in
  Alcotest.(check int) "all records flushed" 5
    (List.length (Journal.records j_read));
  Journal.close j_read;
  Journal.close j;
  (* A writer killed mid-append leaves a torn tail after the fsynced
     prefix; reload keeps the durable records and drops the tail. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "J1\tj6\tdeadbeef\t1\tgr";
  close_out oc;
  let j2 = Journal.open_file ~fsync_every:0 path in
  Alcotest.(check int) "torn tail dropped, durable prefix kept" 5
    (List.length (Journal.records j2));
  Alcotest.(check bool) "durable record skips" true
    (Journal.should_skip j2 ~job:"j3" ~inputs_hash:h);
  Alcotest.(check bool) "torn record does not skip" false
    (Journal.should_skip j2 ~job:"j6" ~inputs_hash:h);
  Journal.close j2;
  Sys.remove path

(* The interrupted-batch scenario: run a batch through a journal, kill
   the writer mid-record (truncate), then resume — journalled-graceful
   jobs are skipped, the interrupted/failed ones re-run exactly once. *)
let test_batch_resume_after_truncation () =
  let path = Filename.temp_file "elfie_batch" ".j" in
  Sys.remove path;
  let runs : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let count name =
    Hashtbl.replace runs name (1 + Option.value ~default:0 (Hashtbl.find_opt runs name))
  in
  let spec name cls =
    {
      Supervisor.name;
      job_inputs = [ name ];
      exec =
        (fun ~seed:_ ~max_ins:_ ->
          count name;
          (name, cls ()));
    }
  in
  let first = ref true in
  let specs () =
    [
      spec "ok1" (fun () -> Classify.Graceful);
      spec "ok2" (fun () -> Classify.Graceful);
      spec "flaky" (fun () ->
          if !first then Classify.Backend_error "first run dies"
          else Classify.Graceful);
    ]
  in
  let j = Journal.open_file path in
  let results = Supervisor.run_batch ~journal:j ~resume:true (specs ()) in
  Journal.close j;
  Alcotest.(check int) "first batch: all ran" 3 (Hashtbl.length runs);
  Alcotest.(check bool) "flaky quarantined" true
    (match results with [ _; _; (_, r, _) ] -> r.Supervisor.quarantined | _ -> false);
  (* Kill mid-write: chop the tail of the last (flaky) record. *)
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 (String.length contents - 10));
  close_out oc;
  first := false;
  let j2 = Journal.open_file path in
  let results2 = Supervisor.run_batch ~journal:j2 ~resume:true (specs ()) in
  Journal.close j2;
  Sys.remove path;
  let ran name = Option.value ~default:0 (Hashtbl.find_opt runs name) in
  Alcotest.(check int) "ok1 skipped on resume" 1 (ran "ok1");
  Alcotest.(check int) "ok2 skipped on resume" 1 (ran "ok2");
  Alcotest.(check int) "flaky re-ran exactly once" 2 (ran "flaky");
  (match results2 with
  | [ (_, r1, _); (_, r2, _); (_, r3, v3) ] ->
      Alcotest.(check bool) "ok1 skipped flag" true r1.Supervisor.skipped;
      Alcotest.(check bool) "ok2 skipped flag" true r2.Supervisor.skipped;
      Alcotest.(check bool) "flaky ran" false r3.Supervisor.skipped;
      Alcotest.(check bool) "flaky now graceful" true
        (r3.Supervisor.final = Classify.Graceful);
      Alcotest.(check (option string)) "flaky value" (Some "flaky") v3
  | _ -> Alcotest.fail "unexpected batch shape")

let suite =
  [
    Alcotest.test_case "classify roundtrip" `Quick test_classify_roundtrip;
    Alcotest.test_case "journal line roundtrip" `Quick test_journal_line_roundtrip;
    Alcotest.test_case "journal attrs roundtrip" `Quick
      test_journal_attrs_roundtrip;
    Alcotest.test_case "journal torn write / latest wins" `Quick
      test_journal_file_tolerant_and_latest_wins;
    Alcotest.test_case "journal torn first line" `Quick
      test_journal_torn_first_line;
    Alcotest.test_case "journal fsync cadence + torn tail" `Quick
      test_journal_fsync_cadence;
    Alcotest.test_case "retry reseeds collisions" `Quick
      test_retry_reseeds_collisions;
    Alcotest.test_case "retry budget exhausted" `Quick
      test_retry_budget_exhausted_quarantines;
    Alcotest.test_case "runaway raises budget once" `Quick
      test_runaway_raises_budget_once;
    Alcotest.test_case "backend error quarantines" `Quick
      test_backend_error_immediate_quarantine;
    Alcotest.test_case "exceptions classified" `Quick test_exception_is_classified;
    Alcotest.test_case "divergence escalates" `Quick
      test_divergence_triggers_escalation;
    Alcotest.test_case "batch resume after truncation" `Quick
      test_batch_resume_after_truncation;
  ]
