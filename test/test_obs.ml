(* Unit tests for the observability layer: span nesting and ordering,
   Chrome trace_event export (verified by parsing the JSON back),
   histogram bucket boundaries, Prometheus text-format escaping, the
   deterministic hot-region profiler, and an end-to-end check that a
   pipeline validation emits spans from every execution layer. *)

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics
module Profile = Elfie_obs.Profile
module Log = Elfie_obs.Log
module Chrome = Elfie_obs.Chrome

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- a minimal JSON parser, enough to verify the Chrome export ------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 256 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); J_obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); J_arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elements [])
        end
    | '"' -> J_str (parse_string ())
    | 't' -> pos := !pos + 4; J_bool true
    | 'f' -> pos := !pos + 5; J_bool false
    | 'n' -> pos := !pos + 4; J_null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "unexpected character";
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field j k =
  match j with
  | J_obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- tracing ---------------------------------------------------------------- *)

let test_span_nesting_and_ordering () =
  Trace.reset ();
  Trace.with_span "outer" (fun _ ->
      Trace.instant "mark";
      Trace.with_span "inner" (fun sp -> Trace.add_attr sp "k" (Trace.I 7L)));
  Alcotest.(check int) "three events emitted" 3 (Trace.emitted ());
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  (* Completion order: the instant, then the inner span, then the outer. *)
  (match Trace.events () with
  | [ Trace.Instant i; Trace.Span inner; Trace.Span outer ] ->
      Alcotest.(check string) "instant name" "mark" i.name;
      Alcotest.(check string) "inner name" "inner" inner.name;
      Alcotest.(check string) "outer name" "outer" outer.name;
      Alcotest.(check int) "outer depth" 0 outer.depth;
      Alcotest.(check int) "inner depth" 1 inner.depth;
      Alcotest.(check int) "instant depth" 1 i.depth;
      Alcotest.(check bool) "outer began first" true (outer.seq < inner.seq);
      Alcotest.(check bool) "inner attr kept" true
        (List.assoc_opt "k" inner.attrs = Some (Trace.I 7L))
  | evs -> Alcotest.failf "unexpected event shape (%d events)" (List.length evs));
  Alcotest.(check (list string)) "span names in completion order"
    [ "inner"; "outer" ] (Trace.span_names ());
  (* The tree renders in begin order, nested spans indented. *)
  let tree = Trace.tree () in
  Alcotest.(check bool) "tree shows outer" true (contains tree "outer");
  Alcotest.(check bool) "tree indents inner" true (contains tree "  inner")

let test_span_error_attr_on_exception () =
  Trace.reset ();
  (try Trace.with_span "boom" (fun _ -> failwith "kaputt")
   with Failure _ -> ());
  match Trace.events () with
  | [ Trace.Span s ] ->
      Alcotest.(check bool) "error attr recorded" true
        (match List.assoc_opt "error" s.attrs with
        | Some (Trace.S msg) -> contains msg "kaputt"
        | _ -> false)
  | _ -> Alcotest.fail "expected exactly the failed span"

let test_chrome_json_roundtrip () =
  Trace.reset ();
  Trace.with_span "json.span"
    ~attrs:[ ("msg", Trace.S "a\"b\\c\nd\tcontrol:\x01"); ("n", Trace.I 42L) ]
    (fun _ -> Trace.instant "json.instant" ~attrs:[ ("ok", Trace.B true) ]);
  let parsed = parse_json (Trace.to_chrome ()) in
  let all =
    match obj_field parsed "traceEvents" with
    | Some (J_arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  (* Track-naming metadata rides along; the payload events follow it. *)
  let meta, events =
    List.partition (fun e -> obj_field e "ph" = Some (J_str "M")) all
  in
  Alcotest.(check int) "process and thread metadata" 2 (List.length meta);
  Alcotest.(check int) "two events exported" 2 (List.length events);
  let find name =
    List.find_opt (fun e -> obj_field e "name" = Some (J_str name)) events
  in
  (match find "json.span" with
  | Some span -> (
      Alcotest.(check bool) "complete-event phase" true
        (obj_field span "ph" = Some (J_str "X"));
      Alcotest.(check bool) "duration present" true
        (match obj_field span "dur" with Some (J_num _) -> true | _ -> false);
      match obj_field span "args" with
      | Some args ->
          Alcotest.(check bool) "string attr roundtrips exactly" true
            (obj_field args "msg" = Some (J_str "a\"b\\c\nd\tcontrol:\x01"));
          Alcotest.(check bool) "int attr roundtrips" true
            (obj_field args "n" = Some (J_num 42.0))
      | None -> Alcotest.fail "span has no args")
  | None -> Alcotest.fail "span missing from export");
  match find "json.instant" with
  | Some i ->
      Alcotest.(check bool) "instant phase" true
        (obj_field i "ph" = Some (J_str "i"))
  | None -> Alcotest.fail "instant missing from export"

(* --- metrics ---------------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  let h =
    Metrics.histogram "obstest_latency" ~buckets:[ 1.0; 2.0; 5.0 ]
      ~help:"test histogram"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 7.0 ];
  let buckets, sum, count = Metrics.bucket_snapshot h in
  (* Buckets are cumulative and boundary values land in their own bucket
     (v <= le): 0.5 and the exact 1.0 in le=1, 1.5 and the exact 2.0 in
     le=2, nothing between 2 and 5, and 7.0 only in +Inf. *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "cumulative buckets"
    [ (1.0, 2); (2.0, 4); (5.0, 4); (infinity, 5) ]
    buckets;
  Alcotest.(check (float 1e-9)) "sum" 12.0 sum;
  Alcotest.(check int) "count" 5 count;
  Alcotest.(check (float 1e-9)) "value is the observation count" 5.0
    (Metrics.value h)

let test_counter_kind_mismatch_rejected () =
  let (_ : Metrics.family) = Metrics.counter "obstest_kindclash" in
  match Metrics.gauge "obstest_kindclash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_prometheus_escaping () =
  let c =
    Metrics.counter "obstest_paths_total"
      ~help:"backslash \\ and\nnewline in help"
  in
  Metrics.inc c ~labels:[ ("path", "C:\\dir"); ("msg", "line1\nline2 \"q\"") ];
  let exposition = Metrics.exposition () in
  Alcotest.(check bool) "label backslash escaped" true
    (contains exposition "path=\"C:\\\\dir\"");
  Alcotest.(check bool) "label newline and quote escaped" true
    (contains exposition "msg=\"line1\\nline2 \\\"q\\\"\"");
  Alcotest.(check bool) "help newline escaped" true
    (contains exposition "backslash \\\\ and\\nnewline in help");
  Alcotest.(check bool) "TYPE header present" true
    (contains exposition "# TYPE obstest_paths_total counter")

(* --- profiler --------------------------------------------------------------- *)

let feed_synthetic p =
  (* A fixed 13-pc loop: deterministic, with a block boundary at the
     loop's end. *)
  for i = 0 to 9_999 do
    let pc = Int64.of_int (0x1000 + (i mod 13 * 4)) in
    Profile.note p ~tid:0 ~pc ~block_end:(i mod 13 = 12)
  done

let test_profiler_deterministic_topk () =
  (match Profile.create ~interval:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interval 0 accepted");
  let p1 = Profile.create ~interval:7 () in
  let p2 = Profile.create ~interval:7 () in
  feed_synthetic p1;
  feed_synthetic p2;
  Alcotest.(check Tutil.i64) "all instructions counted" 10_000L
    (Profile.instructions p1);
  Alcotest.(check Tutil.i64) "count-driven sample count" (Int64.of_int (10_000 / 7))
    (Profile.samples p1);
  Alcotest.(check bool) "identical runs, identical hot pcs" true
    (Profile.hot_pcs ~k:5 p1 = Profile.hot_pcs ~k:5 p2);
  Alcotest.(check bool) "identical hot blocks" true
    (Profile.hot_blocks ~k:5 p1 = Profile.hot_blocks ~k:5 p2);
  (* Ties break by ascending address, so the top-k listing is stable. *)
  let pcs = List.map fst (Profile.hot_pcs ~k:100 p1) in
  let rec sorted_where_tied = function
    | (a, ca) :: ((b, cb) :: _ as rest) ->
        (ca <> cb || Int64.unsigned_compare a b < 0) && sorted_where_tied rest
    | _ -> true
  in
  Alcotest.(check bool) "ties ordered by address" true
    (sorted_where_tied (Profile.hot_pcs ~k:100 p1));
  Alcotest.(check int) "thirteen distinct pcs at most" 13 (List.length pcs);
  let report = Profile.report ~k:3 p1 in
  Alcotest.(check bool) "report names a hot pc" true (contains report "0x1000");
  Profile.reset p1;
  Alcotest.(check Tutil.i64) "reset clears" 0L (Profile.instructions p1)

(* --- structured event log and flight recorder ------------------------------- *)

(* Every Log test runs against a clean ring and restores the global
   defaults afterwards, whatever happens. *)
let with_fresh_log f =
  Log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      Log.set_flight_path None;
      Log.set_level Log.Debug;
      Log.set_capacity 2048;
      Log.reset ())
    f

let tmp_file prefix = Filename.temp_file prefix ".jsonl"

let test_log_ring_wraparound () =
  with_fresh_log @@ fun () ->
  Log.set_capacity 8;
  for i = 1 to 20 do
    Log.info "obs.test.wrap" ~attrs:[ ("i", Trace.I (Int64.of_int i)) ]
  done;
  Alcotest.(check int) "every event accepted" 20 (Log.emitted ());
  let seq e =
    match List.assoc_opt "i" e.Log.ev_attrs with
    | Some (Trace.I v) -> Int64.to_int v
    | _ -> -1
  in
  Alcotest.(check (list int)) "ring keeps the newest, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map seq (Log.recent ()));
  Alcotest.(check (list int)) "limit trims from the old end" [ 19; 20 ]
    (List.map seq (Log.recent ~limit:2 ()))

let test_log_level_filtering () =
  with_fresh_log @@ fun () ->
  Log.set_level Log.Warn;
  Log.debug "obs.test.d";
  Log.info "obs.test.i";
  Log.warn "obs.test.w";
  Log.error "obs.test.e";
  Alcotest.(check int) "below-threshold events discarded" 2 (Log.emitted ());
  Alcotest.(check (list string)) "warn and error kept"
    [ "obs.test.w"; "obs.test.e" ]
    (List.map (fun e -> e.Log.ev_name) (Log.recent ()))

let test_log_jsonl_roundtrip () =
  with_fresh_log @@ fun () ->
  Alcotest.(check bool) "garbage is not a log line" true
    (Log.parse_line "{\"no\":\"event key\"}" = None);
  Log.warn "obs.test.round"
    ~attrs:
      [ ("s", Trace.S "a\"b\\c\nd"); ("n", Trace.I 42L); ("f", Trace.F 2.5);
        ("b", Trace.B true) ];
  match Log.recent () with
  | [ e ] -> (
      let line = Log.render e in
      Alcotest.(check bool) "renders as a single line" false
        (contains line "\n");
      match Log.parse_line line with
      | None -> Alcotest.fail "rendered line did not parse back"
      | Some e' ->
          Alcotest.(check string) "name survives" "obs.test.round"
            e'.Log.ev_name;
          Alcotest.(check bool) "level survives" true
            (e'.Log.ev_level = Log.Warn);
          Alcotest.(check int) "pid survives" e.Log.ev_pid e'.Log.ev_pid;
          Alcotest.(check bool) "string attr exact" true
            (List.assoc_opt "s" e'.Log.ev_attrs
            = Some (Trace.S "a\"b\\c\nd"));
          Alcotest.(check bool) "int attr" true
            (List.assoc_opt "n" e'.Log.ev_attrs = Some (Trace.I 42L));
          Alcotest.(check bool) "float attr" true
            (List.assoc_opt "f" e'.Log.ev_attrs = Some (Trace.F 2.5));
          Alcotest.(check bool) "bool attr" true
            (List.assoc_opt "b" e'.Log.ev_attrs = Some (Trace.B true)))
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_log_concurrent_writers_no_torn_lines () =
  with_fresh_log @@ fun () ->
  let sink = tmp_file "obs_sink" in
  Log.set_sink (Some sink);
  let writers = 8 and per_writer = 150 in
  (* Pool workers are real domains: this exercises the ring and the
     sink under genuine parallelism. *)
  let (_ : unit list) =
    Elfie_util.Pool.run ~jobs:writers
      (List.init writers (fun w () ->
           for i = 0 to per_writer - 1 do
             Log.info "obs.test.concurrent"
               ~attrs:
                 [ ("w", Trace.I (Int64.of_int w));
                   ("i", Trace.I (Int64.of_int i)) ]
           done))
  in
  Log.set_sink None;
  let lines = List.filter (fun l -> l <> "") (read_lines sink) in
  Sys.remove sink;
  Alcotest.(check int) "sink saw every event" (writers * per_writer)
    (List.length lines);
  (* No torn lines: every line parses, and every (writer, index) pair
     is present exactly once. *)
  let tally = Hashtbl.create 97 in
  List.iter
    (fun line ->
      match Log.parse_line line with
      | None -> Alcotest.failf "torn or corrupt sink line: %s" line
      | Some e ->
          let num k =
            match List.assoc_opt k e.Log.ev_attrs with
            | Some (Trace.I v) -> Int64.to_int v
            | _ -> Alcotest.failf "line lost attr %s: %s" k line
          in
          let key = (num "w", num "i") in
          Hashtbl.replace tally key (1 + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    lines;
  for w = 0 to writers - 1 do
    for i = 0 to per_writer - 1 do
      Alcotest.(check (option int))
        (Printf.sprintf "event (%d,%d) written exactly once" w i)
        (Some 1)
        (Hashtbl.find_opt tally (w, i))
    done
  done

let test_flight_dump_on_signal () =
  with_fresh_log @@ fun () ->
  let dump_file = tmp_file "obs_flight" in
  Sys.remove dump_file;
  let seen = ref false in
  let previous =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> seen := true))
  in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigusr1 previous)
  @@ fun () ->
  Log.set_flight_path (Some dump_file);
  Log.install_dump_on_signal [ Sys.sigusr1 ];
  Log.info "obs.test.before_signal" ~attrs:[ ("k", Trace.S "v") ];
  Unix.kill (Unix.getpid ()) Sys.sigusr1;
  (* OCaml delivers signals at safe points; give the runtime a moment. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    not (!seen && Sys.file_exists dump_file)
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "previous handler chained" true !seen;
  Alcotest.(check bool) "dump file written" true (Sys.file_exists dump_file);
  let events =
    List.filter_map
      (fun line -> if line = "" then None else Some (line, Log.parse_line line))
      (read_lines dump_file)
  in
  Sys.remove dump_file;
  List.iter
    (fun (line, parsed) ->
      if parsed = None then Alcotest.failf "unparseable dump line: %s" line)
    events;
  let parsed = List.filter_map snd events in
  Alcotest.(check bool) "dump holds the pre-signal event" true
    (List.exists (fun e -> e.Log.ev_name = "obs.test.before_signal") parsed);
  match List.rev parsed with
  | trailer :: _ ->
      Alcotest.(check string) "trailer event" "flight.dump"
        trailer.Log.ev_name;
      Alcotest.(check bool) "trailer names the signal" true
        (List.assoc_opt "reason" trailer.Log.ev_attrs
        = Some (Trace.S "signal:sigusr1"))
  | [] -> Alcotest.fail "empty dump"

(* --- chrome metadata and trace merge ----------------------------------------- *)

let trace_events j =
  match obj_field j "traceEvents" with
  | Some (J_arr evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let has_meta evs ~name ~pid ~track =
  List.exists
    (fun e ->
      obj_field e "ph" = Some (J_str "M")
      && obj_field e "name" = Some (J_str name)
      && obj_field e "pid" = Some (J_num (float_of_int pid))
      && match obj_field e "args" with
         | Some args -> obj_field args "name" = Some (J_str track)
         | None -> false)
    evs

let find_span evs name =
  List.find_opt
    (fun e ->
      obj_field e "name" = Some (J_str name)
      && obj_field e "ph" = Some (J_str "X"))
    evs

let test_chrome_metadata_and_merge () =
  let id = 0x1122334455667788L in
  Trace.reset ();
  Trace.set_trace_id id;
  Trace.with_span "merge.a" (fun _ -> ());
  let file_a = Trace.to_chrome ~pid:101 ~label:"proc-a" () in
  Trace.reset ();
  Trace.with_span "merge.b" (fun _ -> ());
  let file_b = Trace.to_chrome ~pid:202 ~label:"proc-b" () in
  Trace.reset ();
  (* Each export names its own process and thread tracks and records
     the shared trace ID. *)
  let ja = parse_json file_a in
  Alcotest.(check bool) "process_name metadata" true
    (has_meta (trace_events ja) ~name:"process_name" ~pid:101 ~track:"proc-a");
  Alcotest.(check bool) "thread_name metadata" true
    (has_meta (trace_events ja) ~name:"thread_name" ~pid:101 ~track:"main");
  Alcotest.(check bool) "traceId exported as 16 hex digits" true
    (obj_field ja "traceId" = Some (J_str (Trace.hex_id id)));
  Alcotest.(check int) "hex id width" 16 (String.length (Trace.hex_id id));
  (* The merge re-bases the later file onto the earlier epoch and keeps
     both processes' tracks and the agreed trace ID. *)
  match Chrome.merge [ ("a", file_a); ("b", file_b) ] with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok merged -> (
      let jm = parse_json merged in
      Alcotest.(check bool) "merged keeps the shared traceId" true
        (obj_field jm "traceId" = Some (J_str (Trace.hex_id id)));
      let evs = trace_events jm in
      Alcotest.(check bool) "merged keeps proc-a track" true
        (has_meta evs ~name:"process_name" ~pid:101 ~track:"proc-a");
      Alcotest.(check bool) "merged keeps proc-b track" true
        (has_meta evs ~name:"process_name" ~pid:202 ~track:"proc-b");
      match (find_span evs "merge.a", find_span evs "merge.b") with
      | Some a, Some b -> (
          Alcotest.(check bool) "spans keep their pids" true
            (obj_field a "pid" = Some (J_num 101.0)
            && obj_field b "pid" = Some (J_num 202.0));
          match (obj_field a "ts", obj_field b "ts") with
          | Some (J_num ta), Some (J_num tb) ->
              (* b was recorded under a later epoch, so after re-basing
                 onto a's epoch its timestamp must not precede a's. *)
              Alcotest.(check bool) "later epoch shifted forward" true
                (tb >= ta)
          | _ -> Alcotest.fail "merged spans lost their timestamps")
      | _ -> Alcotest.fail "merged trace lost a span");
      match Chrome.merge [ ("bad", "{\"notATrace\":1}") ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "merge accepted input without traceEvents"

(* --- end to end: a pipeline validation traces every layer ------------------- *)

let test_pipeline_emits_layered_spans () =
  Trace.reset ();
  Metrics.reset ();
  Profile.set_global (Some (Profile.create ~interval:97 ()));
  Fun.protect
    ~finally:(fun () -> Profile.set_global None)
    (fun () ->
      let b =
        { Elfie_workloads.Suite.bname = "tinyobs";
          spec = Tutil.tiny_spec "tinyobs" }
      in
      let params =
        { Elfie_simpoint.Simpoint.default_params with
          slice_size = 10_000L; warmup = 20_000L; max_k = 6 }
      in
      let (_ : Elfie_harness.Pipeline.validation) =
        Elfie_harness.Pipeline.validate ~params ~trials:2 b
      in
      (* Exactly one span per pipeline stage. *)
      let names = Trace.span_names () in
      List.iter
        (fun stage ->
          Alcotest.(check int) ("one span for " ^ stage) 1
            (List.length (List.filter (( = ) stage) names)))
        [ "pipeline.profile"; "pipeline.select"; "pipeline.native_whole";
          "pipeline.regions"; "pipeline.summarize" ];
      (* Spans from at least three layers of the stack. *)
      let layer prefix =
        List.exists
          (fun n ->
            String.length n > String.length prefix
            && String.sub n 0 (String.length prefix) = prefix)
          names
      in
      Alcotest.(check bool) "pipeline layer traced" true (layer "pipeline.");
      Alcotest.(check bool) "supervisor layer traced" true (layer "supervisor.");
      Alcotest.(check bool) "runner layer traced" true (layer "runner.");
      (* The Chrome export of a real run parses. *)
      (match parse_json (Trace.to_chrome ()) with
      | J_obj _ as j ->
          (match obj_field j "traceEvents" with
          | Some (J_arr evs) ->
              Alcotest.(check bool) "trace export non-empty" true (evs <> [])
          | _ -> Alcotest.fail "no traceEvents in export")
      | _ -> Alcotest.fail "chrome export is not an object");
      (* The run populated a real metrics registry... *)
      Alcotest.(check bool) "at least 8 metric families" true
        (List.length (Metrics.families ()) >= 8);
      let exposition = Metrics.exposition () in
      Alcotest.(check bool) "runner families exported" true
        (contains exposition "# TYPE elfie_loader_runs_total counter");
      Alcotest.(check bool) "supervisor families exported" true
        (contains exposition "# TYPE elfie_runs_total counter");
      (* ... and the global profiler saw the native region runs. *)
      match Profile.global () with
      | Some p ->
          Alcotest.(check bool) "profiler sampled the run" true
            (Profile.samples p > 0L);
          Alcotest.(check bool) "hot-region report non-empty" true
            (Profile.hot_pcs ~k:1 p <> [])
      | None -> Alcotest.fail "global profiler vanished")

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick
      test_span_nesting_and_ordering;
    Alcotest.test_case "exception closes span with error" `Quick
      test_span_error_attr_on_exception;
    Alcotest.test_case "chrome json roundtrip" `Quick test_chrome_json_roundtrip;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "metric kind mismatch rejected" `Quick
      test_counter_kind_mismatch_rejected;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "profiler deterministic top-k" `Quick
      test_profiler_deterministic_topk;
    Alcotest.test_case "log ring wraparound" `Quick test_log_ring_wraparound;
    Alcotest.test_case "log level filtering" `Quick test_log_level_filtering;
    Alcotest.test_case "log jsonl roundtrip" `Quick test_log_jsonl_roundtrip;
    Alcotest.test_case "log concurrent writers tear no lines" `Quick
      test_log_concurrent_writers_no_torn_lines;
    Alcotest.test_case "flight recorder dumps on signal" `Quick
      test_flight_dump_on_signal;
    Alcotest.test_case "chrome metadata and trace merge" `Quick
      test_chrome_metadata_and_merge;
    Alcotest.test_case "pipeline emits layered spans" `Slow
      test_pipeline_emits_layered_spans;
  ]
