(* Unit tests for the observability layer: span nesting and ordering,
   Chrome trace_event export (verified by parsing the JSON back),
   histogram bucket boundaries, Prometheus text-format escaping, the
   deterministic hot-region profiler, and an end-to-end check that a
   pipeline validation emits spans from every execution layer. *)

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics
module Profile = Elfie_obs.Profile

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- a minimal JSON parser, enough to verify the Chrome export ------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              if code < 256 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); J_obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); J_arr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elements [])
        end
    | '"' -> J_str (parse_string ())
    | 't' -> pos := !pos + 4; J_bool true
    | 'f' -> pos := !pos + 5; J_bool false
    | 'n' -> pos := !pos + 4; J_null
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then fail "unexpected character";
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let obj_field j k =
  match j with
  | J_obj fields -> List.assoc_opt k fields
  | _ -> None

(* --- tracing ---------------------------------------------------------------- *)

let test_span_nesting_and_ordering () =
  Trace.reset ();
  Trace.with_span "outer" (fun _ ->
      Trace.instant "mark";
      Trace.with_span "inner" (fun sp -> Trace.add_attr sp "k" (Trace.I 7L)));
  Alcotest.(check int) "three events emitted" 3 (Trace.emitted ());
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  (* Completion order: the instant, then the inner span, then the outer. *)
  (match Trace.events () with
  | [ Trace.Instant i; Trace.Span inner; Trace.Span outer ] ->
      Alcotest.(check string) "instant name" "mark" i.name;
      Alcotest.(check string) "inner name" "inner" inner.name;
      Alcotest.(check string) "outer name" "outer" outer.name;
      Alcotest.(check int) "outer depth" 0 outer.depth;
      Alcotest.(check int) "inner depth" 1 inner.depth;
      Alcotest.(check int) "instant depth" 1 i.depth;
      Alcotest.(check bool) "outer began first" true (outer.seq < inner.seq);
      Alcotest.(check bool) "inner attr kept" true
        (List.assoc_opt "k" inner.attrs = Some (Trace.I 7L))
  | evs -> Alcotest.failf "unexpected event shape (%d events)" (List.length evs));
  Alcotest.(check (list string)) "span names in completion order"
    [ "inner"; "outer" ] (Trace.span_names ());
  (* The tree renders in begin order, nested spans indented. *)
  let tree = Trace.tree () in
  Alcotest.(check bool) "tree shows outer" true (contains tree "outer");
  Alcotest.(check bool) "tree indents inner" true (contains tree "  inner")

let test_span_error_attr_on_exception () =
  Trace.reset ();
  (try Trace.with_span "boom" (fun _ -> failwith "kaputt")
   with Failure _ -> ());
  match Trace.events () with
  | [ Trace.Span s ] ->
      Alcotest.(check bool) "error attr recorded" true
        (match List.assoc_opt "error" s.attrs with
        | Some (Trace.S msg) -> contains msg "kaputt"
        | _ -> false)
  | _ -> Alcotest.fail "expected exactly the failed span"

let test_chrome_json_roundtrip () =
  Trace.reset ();
  Trace.with_span "json.span"
    ~attrs:[ ("msg", Trace.S "a\"b\\c\nd\tcontrol:\x01"); ("n", Trace.I 42L) ]
    (fun _ -> Trace.instant "json.instant" ~attrs:[ ("ok", Trace.B true) ]);
  let parsed = parse_json (Trace.to_chrome ()) in
  let events =
    match obj_field parsed "traceEvents" with
    | Some (J_arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check int) "two events exported" 2 (List.length events);
  let find name =
    List.find_opt (fun e -> obj_field e "name" = Some (J_str name)) events
  in
  (match find "json.span" with
  | Some span -> (
      Alcotest.(check bool) "complete-event phase" true
        (obj_field span "ph" = Some (J_str "X"));
      Alcotest.(check bool) "duration present" true
        (match obj_field span "dur" with Some (J_num _) -> true | _ -> false);
      match obj_field span "args" with
      | Some args ->
          Alcotest.(check bool) "string attr roundtrips exactly" true
            (obj_field args "msg" = Some (J_str "a\"b\\c\nd\tcontrol:\x01"));
          Alcotest.(check bool) "int attr roundtrips" true
            (obj_field args "n" = Some (J_num 42.0))
      | None -> Alcotest.fail "span has no args")
  | None -> Alcotest.fail "span missing from export");
  match find "json.instant" with
  | Some i ->
      Alcotest.(check bool) "instant phase" true
        (obj_field i "ph" = Some (J_str "i"))
  | None -> Alcotest.fail "instant missing from export"

(* --- metrics ---------------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  let h =
    Metrics.histogram "obstest_latency" ~buckets:[ 1.0; 2.0; 5.0 ]
      ~help:"test histogram"
  in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 7.0 ];
  let buckets, sum, count = Metrics.bucket_snapshot h in
  (* Buckets are cumulative and boundary values land in their own bucket
     (v <= le): 0.5 and the exact 1.0 in le=1, 1.5 and the exact 2.0 in
     le=2, nothing between 2 and 5, and 7.0 only in +Inf. *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "cumulative buckets"
    [ (1.0, 2); (2.0, 4); (5.0, 4); (infinity, 5) ]
    buckets;
  Alcotest.(check (float 1e-9)) "sum" 12.0 sum;
  Alcotest.(check int) "count" 5 count;
  Alcotest.(check (float 1e-9)) "value is the observation count" 5.0
    (Metrics.value h)

let test_counter_kind_mismatch_rejected () =
  let (_ : Metrics.family) = Metrics.counter "obstest_kindclash" in
  match Metrics.gauge "obstest_kindclash" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_prometheus_escaping () =
  let c =
    Metrics.counter "obstest_paths_total"
      ~help:"backslash \\ and\nnewline in help"
  in
  Metrics.inc c ~labels:[ ("path", "C:\\dir"); ("msg", "line1\nline2 \"q\"") ];
  let exposition = Metrics.exposition () in
  Alcotest.(check bool) "label backslash escaped" true
    (contains exposition "path=\"C:\\\\dir\"");
  Alcotest.(check bool) "label newline and quote escaped" true
    (contains exposition "msg=\"line1\\nline2 \\\"q\\\"\"");
  Alcotest.(check bool) "help newline escaped" true
    (contains exposition "backslash \\\\ and\\nnewline in help");
  Alcotest.(check bool) "TYPE header present" true
    (contains exposition "# TYPE obstest_paths_total counter")

(* --- profiler --------------------------------------------------------------- *)

let feed_synthetic p =
  (* A fixed 13-pc loop: deterministic, with a block boundary at the
     loop's end. *)
  for i = 0 to 9_999 do
    let pc = Int64.of_int (0x1000 + (i mod 13 * 4)) in
    Profile.note p ~tid:0 ~pc ~block_end:(i mod 13 = 12)
  done

let test_profiler_deterministic_topk () =
  (match Profile.create ~interval:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interval 0 accepted");
  let p1 = Profile.create ~interval:7 () in
  let p2 = Profile.create ~interval:7 () in
  feed_synthetic p1;
  feed_synthetic p2;
  Alcotest.(check Tutil.i64) "all instructions counted" 10_000L
    (Profile.instructions p1);
  Alcotest.(check Tutil.i64) "count-driven sample count" (Int64.of_int (10_000 / 7))
    (Profile.samples p1);
  Alcotest.(check bool) "identical runs, identical hot pcs" true
    (Profile.hot_pcs ~k:5 p1 = Profile.hot_pcs ~k:5 p2);
  Alcotest.(check bool) "identical hot blocks" true
    (Profile.hot_blocks ~k:5 p1 = Profile.hot_blocks ~k:5 p2);
  (* Ties break by ascending address, so the top-k listing is stable. *)
  let pcs = List.map fst (Profile.hot_pcs ~k:100 p1) in
  let rec sorted_where_tied = function
    | (a, ca) :: ((b, cb) :: _ as rest) ->
        (ca <> cb || Int64.unsigned_compare a b < 0) && sorted_where_tied rest
    | _ -> true
  in
  Alcotest.(check bool) "ties ordered by address" true
    (sorted_where_tied (Profile.hot_pcs ~k:100 p1));
  Alcotest.(check int) "thirteen distinct pcs at most" 13 (List.length pcs);
  let report = Profile.report ~k:3 p1 in
  Alcotest.(check bool) "report names a hot pc" true (contains report "0x1000");
  Profile.reset p1;
  Alcotest.(check Tutil.i64) "reset clears" 0L (Profile.instructions p1)

(* --- end to end: a pipeline validation traces every layer ------------------- *)

let test_pipeline_emits_layered_spans () =
  Trace.reset ();
  Metrics.reset ();
  Profile.set_global (Some (Profile.create ~interval:97 ()));
  Fun.protect
    ~finally:(fun () -> Profile.set_global None)
    (fun () ->
      let b =
        { Elfie_workloads.Suite.bname = "tinyobs";
          spec = Tutil.tiny_spec "tinyobs" }
      in
      let params =
        { Elfie_simpoint.Simpoint.default_params with
          slice_size = 10_000L; warmup = 20_000L; max_k = 6 }
      in
      let (_ : Elfie_harness.Pipeline.validation) =
        Elfie_harness.Pipeline.validate ~params ~trials:2 b
      in
      (* Exactly one span per pipeline stage. *)
      let names = Trace.span_names () in
      List.iter
        (fun stage ->
          Alcotest.(check int) ("one span for " ^ stage) 1
            (List.length (List.filter (( = ) stage) names)))
        [ "pipeline.profile"; "pipeline.select"; "pipeline.native_whole";
          "pipeline.regions"; "pipeline.summarize" ];
      (* Spans from at least three layers of the stack. *)
      let layer prefix =
        List.exists
          (fun n ->
            String.length n > String.length prefix
            && String.sub n 0 (String.length prefix) = prefix)
          names
      in
      Alcotest.(check bool) "pipeline layer traced" true (layer "pipeline.");
      Alcotest.(check bool) "supervisor layer traced" true (layer "supervisor.");
      Alcotest.(check bool) "runner layer traced" true (layer "runner.");
      (* The Chrome export of a real run parses. *)
      (match parse_json (Trace.to_chrome ()) with
      | J_obj _ as j ->
          (match obj_field j "traceEvents" with
          | Some (J_arr evs) ->
              Alcotest.(check bool) "trace export non-empty" true (evs <> [])
          | _ -> Alcotest.fail "no traceEvents in export")
      | _ -> Alcotest.fail "chrome export is not an object");
      (* The run populated a real metrics registry... *)
      Alcotest.(check bool) "at least 8 metric families" true
        (List.length (Metrics.families ()) >= 8);
      let exposition = Metrics.exposition () in
      Alcotest.(check bool) "runner families exported" true
        (contains exposition "# TYPE elfie_loader_runs_total counter");
      Alcotest.(check bool) "supervisor families exported" true
        (contains exposition "# TYPE elfie_runs_total counter");
      (* ... and the global profiler saw the native region runs. *)
      match Profile.global () with
      | Some p ->
          Alcotest.(check bool) "profiler sampled the run" true
            (Profile.samples p > 0L);
          Alcotest.(check bool) "hot-region report non-empty" true
            (Profile.hot_pcs ~k:1 p <> [])
      | None -> Alcotest.fail "global profiler vanished")

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick
      test_span_nesting_and_ordering;
    Alcotest.test_case "exception closes span with error" `Quick
      test_span_error_attr_on_exception;
    Alcotest.test_case "chrome json roundtrip" `Quick test_chrome_json_roundtrip;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_bucket_boundaries;
    Alcotest.test_case "metric kind mismatch rejected" `Quick
      test_counter_kind_mismatch_rejected;
    Alcotest.test_case "prometheus escaping" `Quick test_prometheus_escaping;
    Alcotest.test_case "profiler deterministic top-k" `Quick
      test_profiler_deterministic_topk;
    Alcotest.test_case "pipeline emits layered spans" `Slow
      test_pipeline_emits_layered_spans;
  ]
