(* Tests for the elfie_check subsystem: validators, replay sentinel and
   the fault-injection harness. *)

module Diag = Elfie_util.Diag
module Pinball = Elfie_pinball.Pinball
module Validate = Elfie_check.Validate
module Sentinel = Elfie_check.Sentinel
module Fault_inject = Elfie_check.Fault_inject

let pinball = lazy (Tutil.tiny_pinball "check_pb")

let has_code code ds = List.exists (fun d -> d.Diag.code = code) ds

let test_clean_pinball () =
  let pb = Lazy.force pinball in
  Alcotest.(check (list string))
    "no diagnostics" []
    (List.map Diag.to_string (Validate.pinball pb))

let test_thread_mismatch () =
  let pb = Lazy.force pinball in
  let bad = { pb with Pinball.icounts = Array.append pb.icounts [| 5L |] } in
  Alcotest.(check bool)
    "thread mismatch detected" true
    (has_code Diag.Thread_mismatch (Validate.pinball bad))

let test_icount_mismatch () =
  let pb = Lazy.force pinball in
  (* Give the region a schedule whose slices cannot add up. *)
  let bad = { pb with Pinball.schedule = [ (0, 1) ] } in
  Alcotest.(check bool)
    "icount mismatch detected" true
    (has_code Diag.Icount_mismatch (Validate.pinball bad))

let test_page_overlap () =
  let pb = Lazy.force pinball in
  let overlapping =
    match pb.Pinball.pages with
    | (a, d) :: rest -> (a, d) :: (Int64.add a 8L, Bytes.make 64 'x') :: rest
    | [] -> Alcotest.fail "tiny pinball carries no pages"
  in
  Alcotest.(check bool)
    "overlap detected" true
    (has_code Diag.Segment_overlap (Validate.pinball { pb with pages = overlapping }))

let test_entry_out_of_bounds () =
  let pb = Lazy.force pinball in
  let contexts = Array.map Elfie_machine.Context.copy pb.Pinball.contexts in
  contexts.(0).Elfie_machine.Context.rip <- 0x1L;
  Alcotest.(check bool)
    "rogue entry detected" true
    (has_code Diag.Entry_out_of_bounds (Validate.pinball { pb with contexts }))

let convert pb =
  let sysstate = Elfie_pin.Sysstate.analyze pb in
  let options =
    { Elfie_core.Pinball2elf.default_options with sysstate = Some sysstate }
  in
  Elfie_core.Pinball2elf.convert ~options pb

let test_clean_elfie () =
  let image = convert (Lazy.force pinball) in
  Alcotest.(check (list string))
    "elf clean" []
    (List.map Diag.to_string (Validate.elf image));
  Alcotest.(check (list string))
    "cross clean" []
    (List.map Diag.to_string
       (Validate.pinball_vs_elfie (Lazy.force pinball) image))

let test_cross_thread_mismatch () =
  let pb = Lazy.force pinball in
  let image = convert pb in
  (* Claim an extra thread: the ELFie now lacks an entry point for it. *)
  let fake =
    {
      pb with
      Pinball.contexts =
        Array.append pb.contexts [| Elfie_machine.Context.create () |];
      icounts = Array.append pb.icounts [| 1L |];
      injections = Array.append pb.injections [| [] |];
    }
  in
  Alcotest.(check bool)
    "missing entry point detected" true
    (has_code Diag.Thread_mismatch (Validate.pinball_vs_elfie fake image))

let test_file_set_orphan () =
  let pb = Lazy.force pinball in
  let files = Pinball.to_files pb @ [ ("9.reg", List.assoc "0.reg" (Pinball.to_files pb)) ] in
  Alcotest.(check bool)
    "orphan reg file detected" true
    (has_code Diag.Thread_mismatch (Validate.file_set ~name:pb.Pinball.name files))

(* --- Sentinel --------------------------------------------------------------- *)

let test_sentinel_clean () =
  let pb = Lazy.force pinball in
  Alcotest.(check (list string))
    "faithful replay" []
    (List.map Diag.to_string (Sentinel.cross_check pb))

let test_sentinel_divergence () =
  let pb = Lazy.force pinball in
  (* Claim one more instruction than the region retired: replay must
     report the divergence with its location. *)
  let icounts = Array.copy pb.Pinball.icounts in
  icounts.(0) <- Int64.add icounts.(0) 5L;
  let bad = { pb with Pinball.icounts } in
  match Sentinel.constrained bad with
  | [] -> Alcotest.fail "tampered icount replayed cleanly"
  | d :: _ ->
      Alcotest.(check bool) "divergence code" true (d.Diag.code = Diag.Divergence);
      Alcotest.(check bool)
        "mentions pc" true
        (Tutil.contains d.Diag.message "pc 0x")

(* --- Fault injection -------------------------------------------------------- *)

let test_fault_pinball_no_crashes () =
  let report = Fault_inject.run_pinball ~iterations:4 (Lazy.force pinball) in
  Alcotest.(check int)
    "cases run"
    (4 * List.length Fault_inject.all_faults)
    report.Fault_inject.total;
  Alcotest.(check int) "no crashes" 0 (List.length (Fault_inject.crashes report));
  Alcotest.(check bool) "some faults diagnosed" true (report.Fault_inject.diagnosed > 0)

let test_fault_elf_no_crashes () =
  let report = Fault_inject.run_elf ~iterations:4 (convert (Lazy.force pinball)) in
  Alcotest.(check int) "no crashes" 0 (List.length (Fault_inject.crashes report));
  Alcotest.(check bool) "some faults diagnosed" true (report.Fault_inject.diagnosed > 0)

let suite =
  [
    Alcotest.test_case "clean pinball validates" `Quick test_clean_pinball;
    Alcotest.test_case "thread mismatch" `Quick test_thread_mismatch;
    Alcotest.test_case "icount mismatch" `Quick test_icount_mismatch;
    Alcotest.test_case "page overlap" `Quick test_page_overlap;
    Alcotest.test_case "entry out of bounds" `Quick test_entry_out_of_bounds;
    Alcotest.test_case "clean elfie validates" `Quick test_clean_elfie;
    Alcotest.test_case "cross thread mismatch" `Quick test_cross_thread_mismatch;
    Alcotest.test_case "file-set orphan reg" `Quick test_file_set_orphan;
    Alcotest.test_case "sentinel clean" `Quick test_sentinel_clean;
    Alcotest.test_case "sentinel divergence" `Quick test_sentinel_divergence;
    Alcotest.test_case "fault sweep: pinball" `Quick test_fault_pinball_no_crashes;
    Alcotest.test_case "fault sweep: elf" `Quick test_fault_elf_no_crashes;
  ]
