(* Shared helpers for the test suites. *)

open Elfie_isa

let i64 = Alcotest.int64

(* Substring check for asserting on diagnostic messages. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Build a tiny single-section executable image from builder code placed
   at [base], plus an optional zeroed data section. *)
let image_of ?(base = 0x40_0000L) ?data_section b =
  let prog = Builder.assemble b ~base in
  let code =
    Elfie_elf.Image.section ~executable:true ~name:".text" ~addr:base
      prog.Builder.code
  in
  let sections =
    match data_section with
    | Some (addr, size) ->
        [ code;
          Elfie_elf.Image.section ~writable:true ~name:".data" ~addr
            (Bytes.make size '\000') ]
    | None -> [ code ]
  in
  let symbols =
    List.map
      (fun (name, value) -> { Elfie_elf.Image.sym_name = name; value; func = true })
      prog.Builder.symbols
  in
  { Elfie_elf.Image.exec = true; entry = base; sections; symbols }

(* Run an image on a fresh machine+kernel; returns (machine, kernel). *)
let run_image ?(fs_init = fun (_ : Elfie_kernel.Fs.t) -> ()) ?(seed = 1L)
    ?(max_ins = 1_000_000L) image =
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Elfie_kernel.Fs.create () in
  fs_init fs;
  let kernel = Elfie_kernel.Vkernel.create fs in
  Elfie_kernel.Vkernel.install kernel machine;
  let _ = Elfie_kernel.Loader.load kernel machine image ~argv:[ "t" ] ~env:[] in
  Elfie_machine.Machine.run ~max_ins machine;
  (machine, kernel)

(* A program that computes in registers and exits with a status derived
   from RDI; used by many kernel/machine tests. *)
let exit_program status =
  let b = Builder.create () in
  Builder.ins b (Insn.Mov_ri (Reg.RDI, Int64.of_int status));
  Builder.ins b (Insn.Mov_ri (Reg.RAX, Int64.of_int Elfie_kernel.Abi.sys_exit_group));
  Builder.ins b Insn.Syscall;
  b

(* Small deterministic benchmark spec for integration tests. *)
let tiny_spec ?(file_io = false) ?(time_calls = false) ?(threads = 1) name =
  Elfie_workloads.Programs.spec
    ~phases:
      [ { kernel = Elfie_workloads.Kernels.Stream; reps = 1500 };
        { kernel = Elfie_workloads.Kernels.Branchy; reps = 1200 } ]
    ~outer_reps:6 ~threads ~ws_bytes:32768 ~file_io ~time_calls name

let tiny_run_spec ?file_io ?time_calls ?threads ?(seed = 42L) name =
  Elfie_workloads.Programs.run_spec ~seed (tiny_spec ?file_io ?time_calls ?threads name)

(* Capture a region of the tiny benchmark. *)
let tiny_pinball ?file_io ?time_calls ?threads ?(start = 20_000L)
    ?(length = 30_000L) name =
  let rs = tiny_run_spec ?file_io ?time_calls ?threads name in
  let r = Elfie_pin.Logger.capture rs ~name { Elfie_pin.Logger.start; length } in
  r.Elfie_pin.Logger.pinball
