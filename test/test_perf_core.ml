(* Tests for the fast execution core (block translation cache, soft-TLB)
   and the domain work pool: self-modifying-code invalidation, cached
   vs uncached address-space agreement, block-run vs single-step
   determinism, and domain-safety of the process-global observability
   state. *)

open Elfie_isa
open Elfie_isa.Insn
open Elfie_machine
module Pool = Elfie_util.Pool
module Profile = Elfie_obs.Profile

(* --- self-modifying code ---------------------------------------------------- *)

(* A subroutine `mov rbx, 1; ret` is called, then its immediate byte is
   patched to 2 through a plain store, then it is called again. A stale
   translated block would replay the old immediate; correct invalidation
   (the write lands in a page holding decoded code, bumping the
   generation) must make the second call see 2.

   Mov_ri encodes as opcode, register, little-endian u64 — the
   immediate's low byte is at offset 2. *)
let test_smc_patch_invalidates () =
  let b = Builder.create () in
  let f = Builder.new_label b in
  Builder.call b f;
  Builder.ins b (Mov_rr (Reg.R8, Reg.RBX));
  (* save first result *)
  Builder.ins b (Mov_ri (Reg.RCX, 2L));
  Builder.mov_label b Reg.RDX f;
  Builder.ins b
    (Store (W8, { base = Some Reg.RDX; index = None; scale = 1; disp = 2L }, Reg.RCX));
  Builder.call b f;
  Builder.ins b Hlt;
  Builder.bind b f;
  Builder.ins b (Mov_ri (Reg.RBX, 1L));
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x1000L in
  let m =
    Machine.create (Machine.Free { seed = 1L; quantum_min = 100; quantum_max = 100 })
  in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:4096;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  Context.set ctx Reg.RSP 0x9000L;
  let tid = Machine.add_thread m ctx in
  Machine.run m;
  let th = Machine.thread m tid in
  Alcotest.check Tutil.i64 "first call saw 1" 1L (Context.get th.Machine.ctx Reg.R8);
  Alcotest.check Tutil.i64 "second call sees the patch" 2L
    (Context.get th.Machine.ctx Reg.RBX)

(* Same shape, driven by a tight loop so the patched block is hot (in
   the translation cache and the direct-mapped memo) when invalidated:
   iteration i adds the subroutine's current immediate, patched from 1
   to 2 halfway through. *)
let test_smc_hot_loop () =
  let b = Builder.create () in
  let f = Builder.new_label b in
  let loop = Builder.new_label b in
  let no_patch = Builder.new_label b in
  Builder.ins b (Mov_ri (Reg.RSI, 0L));
  (* accumulator *)
  Builder.ins b (Mov_ri (Reg.RDI, 10L));
  (* countdown *)
  Builder.bind b loop;
  Builder.call b f;
  Builder.ins b (Alu_rr (Add, Reg.RSI, Reg.RBX));
  Builder.ins b (Alu_ri (Cmp, Reg.RDI, 6L));
  Builder.jcc b Ne no_patch;
  Builder.ins b (Mov_ri (Reg.RCX, 2L));
  Builder.mov_label b Reg.RDX f;
  Builder.ins b
    (Store (W8, { base = Some Reg.RDX; index = None; scale = 1; disp = 2L }, Reg.RCX));
  Builder.bind b no_patch;
  Builder.ins b (Alu_ri (Sub, Reg.RDI, 1L));
  Builder.jcc b Ne loop;
  Builder.ins b Hlt;
  Builder.bind b f;
  Builder.ins b (Mov_ri (Reg.RBX, 1L));
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x1000L in
  let m =
    Machine.create (Machine.Free { seed = 1L; quantum_min = 50; quantum_max = 50 })
  in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:4096;
  let ctx = Context.create () in
  ctx.Context.rip <- 0x1000L;
  Context.set ctx Reg.RSP 0x9000L;
  let tid = Machine.add_thread m ctx in
  Machine.run m;
  (* Iterations at countdown 10..6 add 1 (the patch lands when
     countdown=6, after that iteration's call); 5..1 add 2. *)
  Alcotest.check Tutil.i64 "accumulator sees patch exactly once armed" 15L
    (Context.get (Machine.thread m tid).Machine.ctx Reg.RSI)

(* --- soft-TLB vs flat model ------------------------------------------------- *)

(* The address space (TLB in front of the page table, word fast paths)
   must agree byte-for-byte with a flat model under random maps,
   unmaps (the only operation that can make a TLB entry stale), and
   mixed-width page-crossing accesses — including which address
   faults. *)
module Model = struct
  type t = { bytes : (int64, int) Hashtbl.t; mapped : (int64, unit) Hashtbl.t }

  let create () = { bytes = Hashtbl.create 64; mapped = Hashtbl.create 8 }

  let map t ~addr ~len =
    List.iter
      (fun pn ->
        if not (Hashtbl.mem t.mapped pn) then Hashtbl.replace t.mapped pn ())
      (let first = Int64.shift_right_logical addr 12 in
       let last =
         Int64.shift_right_logical (Int64.add addr (Int64.of_int (len - 1))) 12
       in
       let rec go n acc =
         if n < first then acc else go (Int64.sub n 1L) (n :: acc)
       in
       if len <= 0 then [] else go last [])

  let unmap t ~addr ~len =
    let first = Int64.shift_right_logical addr 12
    and last =
      Int64.shift_right_logical (Int64.add addr (Int64.of_int (len - 1))) 12
    in
    let pn = ref first in
    while !pn <= last do
      Hashtbl.remove t.mapped !pn;
      pn := Int64.add !pn 1L
    done;
    Hashtbl.filter_map_inplace
      (fun a v ->
        let p = Int64.shift_right_logical a 12 in
        if p >= first && p <= last then None else Some v)
      t.bytes

  let mapped t a = Hashtbl.mem t.mapped (Int64.shift_right_logical a 12)
  let get t a = Option.value ~default:0 (Hashtbl.find_opt t.bytes a)

  (* Byte-at-a-time, faulting at the first unmapped byte — mirroring the
     address space's page-crossing slow path (partial writes persist). *)
  let read t addr width =
    let acc = ref 0L in
    for i = 0 to width - 1 do
      let a = Int64.add addr (Int64.of_int i) in
      if not (mapped t a) then
        raise (Addr_space.Fault { addr = a; access = Addr_space.Read });
      acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (get t a)) (8 * i))
    done;
    !acc

  let write t addr width v =
    for i = 0 to width - 1 do
      let a = Int64.add addr (Int64.of_int i) in
      if not (mapped t a) then
        raise (Addr_space.Fault { addr = a; access = Addr_space.Write });
      Hashtbl.replace t.bytes a
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done
end

type tlb_op =
  | Op_map of int64
  | Op_unmap of int64
  | Op_write of int64 * int * int64
  | Op_read of int64 * int
  | Op_write_u64 of int64 * int64
  | Op_read_u64 of int64

let tlb_op_gen =
  let open QCheck.Gen in
  (* Eight pages, many TLB-conflicting addresses, offsets biased to page
     edges so multi-byte accesses cross page boundaries regularly. *)
  let page = map (fun p -> Int64.of_int ((p land 7) * 4096)) int in
  let addr =
    map2
      (fun p off ->
        let off = off land 0xfff in
        let off = if off land 1 = 0 then 0xff8 + (off land 7) else off in
        Int64.of_int (((p land 7) * 4096) + off))
      int int
  in
  let width = oneofl [ 1; 2; 4; 8 ] in
  let v = map Int64.of_int int in
  frequency
    [ (1, map (fun p -> Op_map p) page);
      (1, map (fun p -> Op_unmap p) page);
      (3, map3 (fun a w x -> Op_write (a, w, x)) addr width v);
      (3, map2 (fun a w -> Op_read (a, w)) addr width);
      (2, map2 (fun a x -> Op_write_u64 (a, x)) addr v);
      (2, map (fun a -> Op_read_u64 a) addr) ]

let show_tlb_op = function
  | Op_map p -> Printf.sprintf "map 0x%Lx" p
  | Op_unmap p -> Printf.sprintf "unmap 0x%Lx" p
  | Op_write (a, w, v) -> Printf.sprintf "write 0x%Lx/%d <- %Ld" a w v
  | Op_read (a, w) -> Printf.sprintf "read 0x%Lx/%d" a w
  | Op_write_u64 (a, v) -> Printf.sprintf "write_u64 0x%Lx <- %Ld" a v
  | Op_read_u64 a -> Printf.sprintf "read_u64 0x%Lx" a

(* Run one op on both; both must produce the same value or the same
   fault (address and access kind). *)
let agree_on real model op =
  let run f g =
    let r = try Ok (f ()) with Addr_space.Fault f -> Error (f.addr, f.access) in
    let m = try Ok (g ()) with Addr_space.Fault f -> Error (f.addr, f.access) in
    r = m
  in
  match op with
  | Op_map p ->
      Addr_space.map real ~addr:p ~len:4096;
      Model.map model ~addr:p ~len:4096;
      true
  | Op_unmap p ->
      Addr_space.unmap real ~addr:p ~len:4096;
      Model.unmap model ~addr:p ~len:4096;
      true
  | Op_write (a, w, v) ->
      run (fun () -> Addr_space.write real a w v) (fun () -> Model.write model a w v)
  | Op_read (a, w) ->
      run (fun () -> Addr_space.read real a w) (fun () -> Model.read model a w)
  | Op_write_u64 (a, v) ->
      run (fun () -> Addr_space.write_u64 real a v) (fun () -> Model.write model a 8 v)
  | Op_read_u64 a ->
      run (fun () -> Addr_space.read_u64 real a) (fun () -> Model.read model a 8)

let prop_tlb_model =
  QCheck.Test.make ~name:"soft-TLB agrees with flat model (faults included)"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 120) (make ~print:show_tlb_op tlb_op_gen))
    (fun ops ->
      let real = Addr_space.create () and model = Model.create () in
      List.for_all (fun op -> agree_on real model op) ops)

(* Unmap must not leave a stale soft-TLB entry behind: a hit, an unmap,
   then an access must fault; remapping reads back zeroed memory. *)
let test_tlb_unmap_no_stale () =
  let m = Addr_space.create () in
  Addr_space.map m ~addr:0x3000L ~len:4096;
  Addr_space.write_u64 m 0x3000L 0xdeadL;
  Alcotest.check Tutil.i64 "tlb warm" 0xdeadL (Addr_space.read_u64 m 0x3000L);
  Addr_space.unmap m ~addr:0x3000L ~len:4096;
  (try
     ignore (Addr_space.read_u64 m 0x3000L);
     Alcotest.fail "expected fault after unmap"
   with Addr_space.Fault { addr; access = Addr_space.Read } ->
     Alcotest.check Tutil.i64 "fault addr" 0x3000L addr);
  Addr_space.map m ~addr:0x3000L ~len:4096;
  Alcotest.check Tutil.i64 "fresh page is zero" 0L (Addr_space.read_u64 m 0x3000L)

(* --- block-run vs single-step determinism ----------------------------------- *)

(* A branchy two-thread program with calls, loads and stores. Running it
   on the translated-block fast path (hook-free `run`, profiler fed via
   the block observer) must retire the same schedule and produce
   bit-identical final contexts, counters, cycles, and profiler state as
   stepping the recorded schedule one instruction at a time with a
   per-instruction profiling hook. *)
let branchy_two_thread_prog () =
  let b = Builder.create () in
  let f = Builder.new_label b in
  let loop = Builder.new_label b in
  let even = Builder.new_label b in
  let join = Builder.new_label b in
  Builder.ins b (Mov_ri (Reg.RDI, 200L));
  Builder.ins b (Mov_ri (Reg.RSI, 0L));
  Builder.bind b loop;
  Builder.call b f;
  Builder.ins b (Alu_rr (Add, Reg.RSI, Reg.RAX));
  Builder.ins b (Mov_rr (Reg.RDX, Reg.RDI));
  Builder.ins b (Alu_ri (And, Reg.RDX, 1L));
  Builder.ins b (Alu_ri (Cmp, Reg.RDX, 0L));
  Builder.jcc b Eq even;
  Builder.ins b (Store (W64, mem_abs 0x8100L, Reg.RSI));
  Builder.jmp b join;
  Builder.bind b even;
  Builder.ins b (Load (W64, Reg.RBX, mem_abs 0x8100L));
  Builder.ins b (Alu_rr (Xor, Reg.RSI, Reg.RBX));
  Builder.bind b join;
  Builder.ins b (Alu_ri (Sub, Reg.RDI, 1L));
  Builder.jcc b Ne loop;
  Builder.ins b Hlt;
  Builder.bind b f;
  Builder.ins b (Mov_rr (Reg.RAX, Reg.RDI));
  Builder.ins b (Alu_ri (Add, Reg.RAX, 3L));
  Builder.ins b Ret;
  Builder.assemble b ~base:0x1000L

let mk_branchy_machine prog scheduler =
  let m = Machine.create scheduler in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:4096;
  Addr_space.map (Machine.mem m) ~addr:0x10000L ~len:8192;
  for t = 0 to 1 do
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    Context.set ctx Reg.RSP (Int64.of_int (0x11000 + (t * 4096)));
    ignore (Machine.add_thread m ctx)
  done;
  m

let profile_note_hook p m =
  (Machine.hooks m).Machine.on_ins <-
    Some
      (fun tid pc ins ->
        let block_end =
          match Insn.classify ins with
          | Insn.K_branch | K_call | K_syscall -> true
          | K_alu | K_load | K_store | K_vector | K_other -> false
        in
        Profile.note p ~tid ~pc ~block_end)

let test_block_run_matches_step () =
  let prog = branchy_two_thread_prog () in
  (* Fast path: free scheduler, schedule recording, block-fed profiler. *)
  let pa = Profile.create ~interval:7 () in
  let ma =
    mk_branchy_machine prog
      (Machine.Free { seed = 5L; quantum_min = 13; quantum_max = 41 })
  in
  Machine.set_record_schedule ma true;
  Machine.set_block_observer ma
    (Some (fun ~tid ~pcs ~n ~ends_block -> Profile.note_block pa ~tid ~pcs ~n ~ends_block));
  Machine.run ma;
  Alcotest.(check bool) "exercised the translation cache" true
    (Machine.translated_blocks ma > 3);
  let sched = Machine.recorded_schedule ma in
  (* Reference: replay the exact schedule one Machine.step at a time,
     profiler fed per instruction through the on_ins hook (which also
     forces the interpreter off the batched path). *)
  let pb = Profile.create ~interval:7 () in
  let mb = mk_branchy_machine prog (Machine.Recorded sched) in
  profile_note_hook pb mb;
  List.iter
    (fun (tid, n) ->
      for _ = 1 to n do
        if (Machine.thread mb tid).Machine.state = Machine.Runnable then
          Machine.step mb tid
      done)
    sched;
  Alcotest.check Tutil.i64 "total retired" (Machine.total_retired ma)
    (Machine.total_retired mb);
  Alcotest.check Tutil.i64 "elapsed cycles" (Machine.elapsed_cycles ma)
    (Machine.elapsed_cycles mb);
  for tid = 0 to 1 do
    let ta = Machine.thread ma tid and tb = Machine.thread mb tid in
    Alcotest.check Tutil.i64 (Printf.sprintf "t%d retired" tid) ta.Machine.retired
      tb.Machine.retired;
    Alcotest.check Tutil.i64 (Printf.sprintf "t%d cycles" tid) ta.Machine.cycles
      tb.Machine.cycles;
    Alcotest.(check bool)
      (Printf.sprintf "t%d context bit-identical" tid)
      true
      (Bytes.equal (Context.to_bytes ta.Machine.ctx) (Context.to_bytes tb.Machine.ctx))
  done;
  Alcotest.check Tutil.i64 "profiler instructions" (Profile.instructions pa)
    (Profile.instructions pb);
  Alcotest.check Tutil.i64 "profiler samples" (Profile.samples pa)
    (Profile.samples pb);
  Alcotest.(check (list (pair Tutil.i64 Tutil.i64)))
    "hot PCs identical" (Profile.hot_pcs ~k:50 pb) (Profile.hot_pcs ~k:50 pa);
  Alcotest.(check (list (pair Tutil.i64 Tutil.i64)))
    "hot blocks identical" (Profile.hot_blocks ~k:50 pb) (Profile.hot_blocks ~k:50 pa)

(* Profile.note_block must be state-for-state equivalent to feeding the
   same instructions one note at a time, for any chunking — including
   chunks larger than several sampling intervals. *)
let test_note_block_equivalence () =
  let interval = 5 in
  let pcs = Array.init 64 (fun i -> Int64.of_int (0x4000 + (i * 4))) in
  List.iter
    (fun chunks ->
      let pa = Profile.create ~interval () and pb = Profile.create ~interval () in
      List.iter
        (fun (n, ends_block) ->
          Profile.note_block pa ~tid:0 ~pcs ~n ~ends_block;
          for i = 0 to n - 1 do
            Profile.note pb ~tid:0 ~pc:pcs.(i) ~block_end:(ends_block && i = n - 1)
          done)
        chunks;
      Alcotest.check Tutil.i64 "instructions" (Profile.instructions pb)
        (Profile.instructions pa);
      Alcotest.check Tutil.i64 "samples" (Profile.samples pb) (Profile.samples pa);
      Alcotest.(check (list (pair Tutil.i64 Tutil.i64)))
        "hot pcs" (Profile.hot_pcs ~k:100 pb) (Profile.hot_pcs ~k:100 pa);
      Alcotest.(check (list (pair Tutil.i64 Tutil.i64)))
        "hot blocks" (Profile.hot_blocks ~k:100 pb) (Profile.hot_blocks ~k:100 pa))
    [ [ (1, false) ];
      [ (4, true); (4, true); (4, true) ];
      [ (64, true); (64, false); (3, true) ];
      [ (5, false); (5, false); (5, true); (1, true) ];
      [ (2, true); (37, false); (25, true); (64, true) ] ]

(* --- superblock chain tier ---------------------------------------------------- *)

(* Chained execution (the default), chain-disabled block execution, and
   per-instruction execution (an [on_ins] hook forces the interpreter
   off every batched path) must be indistinguishable: same schedule,
   same retired/cycle counts, bit-identical contexts, and bit-identical
   BBV slice profiles. *)
let bbv_profile_eq (a : Elfie_pin.Bbv.profile) (b : Elfie_pin.Bbv.profile) =
  a.Elfie_pin.Bbv.slice_size = b.Elfie_pin.Bbv.slice_size
  && a.Elfie_pin.Bbv.total_instructions = b.Elfie_pin.Bbv.total_instructions
  && List.length a.Elfie_pin.Bbv.slices = List.length b.Elfie_pin.Bbv.slices
  && List.for_all2
       (fun (x : Elfie_pin.Bbv.slice) (y : Elfie_pin.Bbv.slice) ->
         x.Elfie_pin.Bbv.index = y.Elfie_pin.Bbv.index
         && x.Elfie_pin.Bbv.instructions = y.Elfie_pin.Bbv.instructions
         && x.Elfie_pin.Bbv.vector = y.Elfie_pin.Bbv.vector)
       a.Elfie_pin.Bbv.slices b.Elfie_pin.Bbv.slices

let test_chained_matches_disabled_and_per_ins () =
  let prog = branchy_two_thread_prog () in
  let run_mode ~chain ~per_ins =
    let m =
      mk_branchy_machine prog
        (Machine.Free { seed = 5L; quantum_min = 13; quantum_max = 41 })
    in
    Machine.set_chain_enabled m chain;
    if per_ins then (Machine.hooks m).Machine.on_ins <- Some (fun _ _ _ -> ());
    let observe, finish = Elfie_pin.Bbv.collector ~slice_size:97L in
    Machine.set_block_observer m (Some observe);
    Machine.run m;
    (m, finish ())
  in
  let ma, bbv_a = run_mode ~chain:true ~per_ins:false in
  let mb, bbv_b = run_mode ~chain:false ~per_ins:false in
  let mc, bbv_c = run_mode ~chain:true ~per_ins:true in
  let sa = Machine.chain_stats ma in
  Alcotest.(check bool) "chained run built superblocks" true
    (sa.Machine.superblocks_built > 0);
  Alcotest.(check bool) "block memo was effective" true
    (sa.Machine.memo_hits > sa.Machine.memo_misses);
  Alcotest.(check int) "disabled run built no superblocks" 0
    (Machine.chain_stats mb).Machine.superblocks_built;
  List.iter
    (fun (name, mx, bbv_x) ->
      Alcotest.check Tutil.i64 (name ^ ": total retired")
        (Machine.total_retired ma) (Machine.total_retired mx);
      Alcotest.check Tutil.i64 (name ^ ": elapsed cycles")
        (Machine.elapsed_cycles ma) (Machine.elapsed_cycles mx);
      for tid = 0 to 1 do
        let ta = Machine.thread ma tid and tx = Machine.thread mx tid in
        Alcotest.(check bool)
          (Printf.sprintf "%s: t%d context bit-identical" name tid)
          true
          (Bytes.equal
             (Context.to_bytes ta.Machine.ctx)
             (Context.to_bytes tx.Machine.ctx))
      done;
      Alcotest.(check bool) (name ^ ": BBV profile bit-identical") true
        (bbv_profile_eq bbv_a bbv_x))
    [ ("chain-off", mb, bbv_b); ("per-ins", mc, bbv_c) ]

(* A store in the middle of a chained superblock patches code a few
   instructions ahead of itself: the chain must break at exactly that
   point (counted as an invalidation exit), the stale translation must
   be rebuilt, and the architectural result must match the interpreted
   one. The patch flips the immediate of the loop's `mov rbx, K` from 1
   to 2 when the countdown passes 6, so the accumulator tells us
   precisely which iterations saw which immediate. *)
let test_chain_smc_mid_chain () =
  let build () =
    let b = Builder.create () in
    let loop = Builder.new_label b in
    let no_patch = Builder.new_label b in
    Builder.ins b (Mov_ri (Reg.RSI, 0L));
    Builder.ins b (Mov_ri (Reg.RDI, 10L));
    Builder.bind b loop;
    Builder.ins b (Mov_ri (Reg.RBX, 1L));
    (* the patched immediate *)
    Builder.ins b (Alu_rr (Add, Reg.RSI, Reg.RBX));
    Builder.ins b (Alu_ri (Cmp, Reg.RDI, 6L));
    Builder.jcc b Ne no_patch;
    Builder.ins b (Mov_ri (Reg.RCX, 2L));
    Builder.mov_label b Reg.RDX loop;
    Builder.ins b
      (Store
         (W8, { base = Some Reg.RDX; index = None; scale = 1; disp = 2L }, Reg.RCX));
    Builder.bind b no_patch;
    Builder.ins b (Alu_ri (Sub, Reg.RDI, 1L));
    Builder.jcc b Ne loop;
    Builder.ins b Hlt;
    Builder.assemble b ~base:0x1000L
  in
  let mk chain =
    let prog = build () in
    let m =
      Machine.create
        (Machine.Free { seed = 1L; quantum_min = 400; quantum_max = 400 })
    in
    Machine.set_chain_enabled m chain;
    Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    let tid = Machine.add_thread m ctx in
    Machine.run m;
    (m, Context.get (Machine.thread m tid).Machine.ctx Reg.RSI)
  in
  let mc, chained_sum = mk true in
  let _, plain_sum = mk false in
  (* Countdown 10..6 add 1 (the patch lands during the countdown=6
     iteration, after its add); 5..1 add 2. *)
  Alcotest.check Tutil.i64 "chained run saw the patch exactly once armed" 15L
    chained_sum;
  Alcotest.check Tutil.i64 "chain-disabled agrees" plain_sum chained_sum;
  let st = Machine.chain_stats mc in
  Alcotest.(check bool) "the chain broke on the mid-chain code write" true
    (st.Machine.exits_invalidation >= 1);
  Alcotest.(check bool) "invalidation tore down installed links" true
    (st.Machine.superblocks_broken >= 1)

(* Fault in the middle of a chain, right where the flag-liveness pass
   elides the most: the hot self-loop's trailing [Sub/Jcc] flags are
   provably dead (the fall-through successor starts with a full
   flag-killing [Add]) so the exit-dead variant skips materialising
   them; the successor then faults on an unmapped load one slot after
   its flag-killing prefix. The faulting thread's context — flags
   included — and the recorded fault must be bit-identical to the
   chain-disabled run. *)
let test_chain_fault_mid_chain_flags () =
  let build () =
    let b = Builder.create () in
    let loop = Builder.new_label b in
    Builder.ins b (Mov_ri (Reg.RAX, 0L));
    Builder.ins b (Mov_ri (Reg.RDI, 40L));
    Builder.bind b loop;
    Builder.ins b (Alu_ri (Add, Reg.RAX, 7L));
    Builder.ins b (Alu_ri (And, Reg.RAX, 0xffL));
    Builder.ins b (Alu_ri (Sub, Reg.RDI, 1L));
    Builder.jcc b Ne loop;
    (* Fall-through block: flag-killing prefix, then the fault. The
       direct [Jmp] terminator keeps the block tail-batchable, so the
       chain executor (not the dispatch loop) takes the fault. *)
    let after = Builder.new_label b in
    Builder.ins b (Alu_ri (Add, Reg.RBX, 5L));
    Builder.ins b (Load (W64, Reg.RCX, mem_abs 0x50000L));
    Builder.jmp b after;
    Builder.bind b after;
    Builder.ins b Hlt;
    Builder.assemble b ~base:0x1000L
  in
  let run chain =
    let prog = build () in
    let m =
      Machine.create
        (Machine.Free { seed = 9L; quantum_min = 500; quantum_max = 500 })
    in
    Machine.set_chain_enabled m chain;
    Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    let tid = Machine.add_thread m ctx in
    Machine.run m;
    (m, Machine.thread m tid)
  in
  let mc, tc = run true in
  let _, tp = run false in
  (match (tc.Machine.state, tp.Machine.state) with
  | Machine.Faulted fa, Machine.Faulted fb ->
      Alcotest.(check bool) "identical fault records" true (fa = fb)
  | _ -> Alcotest.fail "both runs must end in the load fault");
  Alcotest.check Tutil.i64 "retired counts agree" tp.Machine.retired
    tc.Machine.retired;
  Alcotest.check Tutil.i64 "cycle counts agree" tp.Machine.cycles tc.Machine.cycles;
  Alcotest.(check bool) "faulting context bit-identical (flags included)" true
    (Bytes.equal (Context.to_bytes tc.Machine.ctx) (Context.to_bytes tp.Machine.ctx));
  Alcotest.(check bool) "the fault was taken from a chained run" true
    ((Machine.chain_stats mc).Machine.exits_fault >= 1)

(* Randomized branchy kernels: a register-initialisation prologue, a
   counted outer loop whose body is a web of short ALU blocks joined by
   random forward conditional branches, and a Hlt. Forward-only inner
   edges plus the single counted backedge guarantee termination. *)
let branchy_kernel_gen =
  let open QCheck.Gen in
  let reg = oneofl [ Reg.RAX; Reg.RBX; Reg.RDX; Reg.RSI ] in
  let op = oneofl [ Add; Sub; And; Or; Xor ] in
  let cond = oneofl [ Eq; Ne; Lt; Ge; Le; Gt; Ult; Uge ] in
  let alu =
    oneof
      [ map3 (fun o d s -> `Rr (o, d, s)) op reg reg;
        map3 (fun o d i -> `Ri (o, d, Int64.of_int (i land 0xff))) op reg int ]
  in
  let segment =
    map3 (fun ops c skip -> (ops, c, skip)) (list_size (1 -- 3) alu) cond nat
  in
  map3
    (fun inits segs reps -> (inits, segs, 4 + (reps land 31)))
    (list_size (return 4) (map Int64.of_int int))
    (list_size (3 -- 6) segment)
    nat

let show_branchy_kernel (inits, segs, reps) =
  let op_name = function
    | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
    | _ -> "?"
  in
  let alu = function
    | `Rr (o, d, s) ->
        Printf.sprintf "%s %s,%s" (op_name o) (Reg.gpr_name d) (Reg.gpr_name s)
    | `Ri (o, d, i) ->
        Printf.sprintf "%s %s,%Ld" (op_name o) (Reg.gpr_name d) i
  in
  Printf.sprintf "inits=%s reps=%d segs=[%s]"
    (String.concat "," (List.map Int64.to_string inits))
    reps
    (String.concat "; "
       (List.map
          (fun (ops, _, skip) ->
            Printf.sprintf "%s jcc+%d" (String.concat "," (List.map alu ops)) skip)
          segs))

let assemble_branchy (inits, segs, reps) =
  let b = Builder.create () in
  List.iteri
    (fun i v ->
      Builder.ins b (Mov_ri (List.nth [ Reg.RAX; Reg.RBX; Reg.RDX; Reg.RSI ] i, v)))
    inits;
  let n = List.length segs in
  let labels = Array.init (n + 1) (fun _ -> Builder.new_label b) in
  Builder.ins b (Mov_ri (Reg.RCX, Int64.of_int reps));
  let head = Builder.here b in
  List.iteri
    (fun i (ops, c, skip) ->
      Builder.bind b labels.(i);
      List.iter
        (fun a ->
          Builder.ins b
            (match a with
            | `Rr (o, d, s) -> Alu_rr (o, d, s)
            | `Ri (o, d, v) -> Alu_ri (o, d, v)))
        ops;
      (* Forward edge only: target a strictly later segment (or the
         loop tail), so the inner web is acyclic. *)
      let tgt = i + 1 + (skip mod (n - i)) in
      Builder.jcc b c labels.(tgt))
    segs;
  Builder.bind b labels.(n);
  Builder.ins b (Alu_ri (Sub, Reg.RCX, 1L));
  Builder.jcc b Ne head;
  Builder.ins b Hlt;
  Builder.assemble b ~base:0x1000L

let prop_chain_equiv =
  QCheck.Test.make
    ~name:"chained ≡ per-block ≡ per-ins on random branchy kernels" ~count:60
    (QCheck.make ~print:show_branchy_kernel branchy_kernel_gen)
    (fun kernel ->
      let prog = assemble_branchy kernel in
      let run ~chain ~per_ins =
        let m =
          Machine.create
            (Machine.Free { seed = 11L; quantum_min = 30; quantum_max = 90 })
        in
        Machine.set_chain_enabled m chain;
        if per_ins then (Machine.hooks m).Machine.on_ins <- Some (fun _ _ _ -> ());
        Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
        let ctx = Context.create () in
        ctx.Context.rip <- 0x1000L;
        let tid = Machine.add_thread m ctx in
        Machine.run m;
        let th = Machine.thread m tid in
        (Context.to_bytes th.Machine.ctx, th.Machine.retired, th.Machine.cycles)
      in
      let a = run ~chain:true ~per_ins:false in
      let b = run ~chain:false ~per_ins:false in
      let c = run ~chain:true ~per_ins:true in
      a = b && a = c)

(* --- copy-on-write snapshots: warm once, fork many ---------------------------- *)

(* Two threads of a random branchy kernel, no stacks needed (the kernels
   are jump/ALU only). *)
let mk_snapshot_machine prog ~seed =
  let m =
    Machine.create (Machine.Free { seed; quantum_min = 13; quantum_max = 41 })
  in
  Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
  for _ = 0 to 1 do
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    ignore (Machine.add_thread m ctx)
  done;
  m

(* Run to thread 0's warmup mark and stop there, warmed. *)
let warm_to_mark prog ~seed ~mark =
  let m = mk_snapshot_machine prog ~seed in
  Machine.arm_mark m 0 ~target:mark;
  Machine.set_stop_on_mark m true;
  Machine.run m;
  m

(* Continue a warmed machine to completion, observing BBV slices and a
   sampling profile, and project everything the trial semantics promise:
   per-thread contexts/counters, machine totals, BBV, profiler state. *)
let continue_observed m =
  let observe, finish = Elfie_pin.Bbv.collector ~slice_size:97L in
  let p = Profile.create ~interval:7 () in
  Machine.set_block_observer m
    (Some
       (fun ~tid ~pcs ~n ~ends_block ->
         observe ~tid ~pcs ~n ~ends_block;
         Profile.note_block p ~tid ~pcs ~n ~ends_block));
  Machine.run m;
  let ctxs =
    List.map
      (fun th ->
        ( th.Machine.tid,
          Context.to_bytes th.Machine.ctx,
          th.Machine.retired,
          th.Machine.cycles ))
      (Machine.threads m)
  in
  ( ctxs,
    Machine.total_retired m,
    Machine.elapsed_cycles m,
    finish (),
    ( Profile.instructions p,
      Profile.samples p,
      Profile.hot_pcs ~k:50 p,
      Profile.hot_blocks ~k:50 p ) )

let trial_eq (c1, t1, e1, b1, p1) (c2, t2, e2, b2, p2) =
  c1 = c2 && t1 = t2 && e1 = e2 && bbv_profile_eq b1 b2 && p1 = p2

(* The warm-once/fork-many determinism contract behind
   Elfie_runner.warm/resume: forking a captured machine with a trial
   seed must be indistinguishable — contexts, cycles, BBV slices,
   profiler state — from re-warming a fresh machine with the warm seed
   and reseeding it at the mark; and forks are independent, so the pool
   fan-out equals the sequential run and the capture survives any
   number of (page-dirtying) forks. *)
let prop_fork_equals_fresh_warmup =
  QCheck.Test.make
    ~name:"forked trials ≡ fresh-warmup trials (ctx, cycles, BBV, profile)"
    ~count:30
    (QCheck.make ~print:show_branchy_kernel branchy_kernel_gen)
    (fun kernel ->
      let prog = assemble_branchy kernel in
      let warm_seed = 5L and mark = 20L in
      let parent = warm_to_mark prog ~seed:warm_seed ~mark in
      if not (Machine.stop_requested parent) then
        QCheck.Test.fail_report "warmup mark never fired";
      let snap = Machine.snapshot parent in
      let forked s = continue_observed (Machine.fork ~reseed:s snap) in
      let fresh s =
        let m = warm_to_mark prog ~seed:warm_seed ~mark in
        Machine.reseed m s;
        Machine.clear_stop m;
        Machine.set_stop_on_mark m false;
        continue_observed m
      in
      let seeds = [ 101L; 202L; 303L ] in
      let forked_seq = List.map forked seeds in
      let forked_par = Pool.map ~jobs:3 forked seeds in
      let fresh_seq = List.map fresh seeds in
      List.for_all2 trial_eq forked_seq fresh_seq
      && List.for_all2 trial_eq forked_seq forked_par
      (* The capture is still pristine after every fork above dirtied
         its own pages. *)
      && trial_eq (forked 101L) (List.hd forked_seq))

(* SMC across a fork: a fork patches a code page that the parent (and
   later forks) still execute. The write must unshare only the fork's
   copy — the parent and a fork taken afterwards keep running the
   original code, while the patching fork sees its own modification. *)
let test_smc_across_fork () =
  let b = Builder.create () in
  let f = Builder.new_label b in
  Builder.call b f;
  Builder.ins b (Mov_rr (Reg.R8, Reg.RBX));
  (* save the pre-fork call's result *)
  Builder.call b f;
  Builder.ins b Hlt;
  Builder.bind b f;
  Builder.ins b (Mov_ri (Reg.RBX, 1L));
  Builder.ins b Ret;
  let prog = Builder.assemble b ~base:0x1000L in
  (* The immediate's low byte sits at offset 2 of f's Mov_ri. *)
  let patch_addr = Int64.add (Builder.resolve b prog f) 2L in
  let mk () =
    let m =
      Machine.create (Machine.Free { seed = 3L; quantum_min = 50; quantum_max = 50 })
    in
    Addr_space.store (Machine.mem m) 0x1000L prog.Builder.code;
    Addr_space.map (Machine.mem m) ~addr:0x8000L ~len:4096;
    let ctx = Context.create () in
    ctx.Context.rip <- 0x1000L;
    Context.set ctx Reg.RSP 0x9000L;
    ignore (Machine.add_thread m ctx);
    m
  in
  let parent = mk () in
  (* Stop after call+f body+ret+mov: warmed, first result saved. *)
  Machine.arm_mark parent 0 ~target:4L;
  Machine.set_stop_on_mark parent true;
  Machine.run parent;
  Alcotest.(check bool) "mark stopped the parent" true
    (Machine.stop_requested parent);
  let snap = Machine.snapshot parent in
  let result m = Context.get (Machine.thread m 0).Machine.ctx Reg.RBX in
  let first_result m = Context.get (Machine.thread m 0).Machine.ctx Reg.R8 in
  (* Fork 1 patches f's immediate (low byte at offset 2 of Mov_ri) from
     1 to 2 — self-modifying relative to the shared frozen pages. *)
  let fork1 = Machine.fork snap in
  Addr_space.write (Machine.mem fork1) patch_addr 1 2L;
  Machine.run fork1;
  Alcotest.check Tutil.i64 "fork1 saw its own patch" 2L (result fork1);
  Alcotest.check Tutil.i64 "fork1 kept the pre-fork result" 1L (first_result fork1);
  (* A fork taken after fork1 ran still sees the original code. *)
  let fork2 = Machine.fork snap in
  Machine.run fork2;
  Alcotest.check Tutil.i64 "fork2 unaffected by fork1's write" 1L (result fork2);
  (* The parent, resumed after both forks, executes the page fork1
     wrote: it must still run the original bytes. *)
  Machine.clear_stop parent;
  Machine.set_stop_on_mark parent false;
  Machine.run parent;
  Alcotest.check Tutil.i64 "parent unaffected by fork1's write" 1L (result parent)

(* --- work pool --------------------------------------------------------------- *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs)

let test_pool_exception () =
  Alcotest.check_raises "task exception re-raised" (Failure "task 7") (fun () ->
      ignore
        (Pool.map ~jobs:3
           (fun x -> if x = 7 then failwith "task 7" else x)
           (List.init 20 Fun.id)))

let test_pool_labelled_exception () =
  (* With ?label, the failing task's exception arrives wrapped in
     Task_error naming the job and its input index — batch drivers
     surface which job died, not just a bare Failure. *)
  let label i = Printf.sprintf "job-%d" i in
  let check_wrapped jobs =
    match
      Pool.map ~jobs ~label
        (fun x -> if x = 7 then failwith "boom" else x)
        (List.init 20 Fun.id)
    with
    | _ -> Alcotest.fail "expected Task_error"
    | exception Pool.Task_error { label; index; exn } ->
        Alcotest.(check string) "label" "job-7" label;
        Alcotest.(check int) "index" 7 index;
        Alcotest.(check string) "inner exception" "Failure(\"boom\")"
          (Printexc.to_string_default exn)
  in
  (* Both the parallel path and the sequential degrade wrap. *)
  check_wrapped 3;
  check_wrapped 1

let test_pool_sequential_degrade () =
  Alcotest.(check (list int)) "jobs=1" [ 2; 4; 6 ] (Pool.map ~jobs:1 (( * ) 2) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "jobs=0 clamps" [ 2 ] (Pool.map ~jobs:0 (( * ) 2) [ 1 ]);
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:8 (( * ) 2) [])

let test_pool_nested () =
  (* Nested maps run sequentially on the calling worker (no domain
     explosion) and still produce correct, ordered results. *)
  let r =
    Pool.map ~jobs:3
      (fun x -> Pool.map ~jobs:4 (fun y -> (x * 10) + y) [ 1; 2 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list (list int))) "nested" [ [ 11; 12 ]; [ 21; 22 ]; [ 31; 32 ] ] r

let test_pool_default_jobs () =
  let saved = Pool.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_default_jobs saved)
    (fun () ->
      Pool.set_default_jobs 3;
      Alcotest.(check int) "set" 3 (Pool.default_jobs ());
      Pool.set_default_jobs (-2);
      Alcotest.(check int) "clamped" 1 (Pool.default_jobs ());
      Alcotest.(check bool) "recommended positive" true (Pool.recommended () >= 1))

(* --- domain-safety of the global observability state ------------------------- *)

let test_metrics_parallel () =
  Elfie_obs.Metrics.reset ();
  let c = Elfie_obs.Metrics.counter "pool_test_total" in
  let h = Elfie_obs.Metrics.histogram "pool_test_hist" in
  ignore
    (Pool.run ~jobs:4
       (List.init 4 (fun d () ->
            for i = 1 to 5_000 do
              Elfie_obs.Metrics.inc c;
              Elfie_obs.Metrics.observe ~labels:[ ("d", string_of_int d) ] h
                (float_of_int i)
            done)));
  Alcotest.(check (float 1e-9)) "no lost counter increments" 20_000.0
    (Elfie_obs.Metrics.total c);
  Alcotest.(check (float 1e-9)) "no lost observations" 20_000.0
    (Elfie_obs.Metrics.total h);
  Elfie_obs.Metrics.reset ()

let test_trace_parallel () =
  let module Trace = Elfie_obs.Trace in
  Trace.reset ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ())
    (fun () ->
      Trace.set_capacity 100_000;
      ignore
        (Pool.run ~jobs:4
           (List.init 4 (fun d () ->
                for i = 1 to 2_000 do
                  Trace.with_span "pool-span" (fun _ ->
                      Trace.instant
                        ~attrs:[ ("d", Trace.I (Int64.of_int (d * i))) ]
                        "pool-instant")
                done)));
      (* 4 domains x 2000 x (span begin/end pair + instant). *)
      Alcotest.(check int) "all events admitted" 16_000 (Trace.emitted ());
      Alcotest.(check int) "none dropped" 0 (Trace.dropped ());
      Alcotest.(check int) "buffer holds them" 16_000 (List.length (Trace.events ())))

let test_profile_parallel () =
  let p = Profile.create ~interval:3 () in
  ignore
    (Pool.run ~jobs:4
       (List.init 4 (fun d () ->
            for i = 0 to 2_999 do
              Profile.note p ~tid:d
                ~pc:(Int64.of_int (0x1000 + (i land 15)))
                ~block_end:(i land 3 = 3)
            done)));
  Alcotest.check Tutil.i64 "instructions from all domains" 12_000L
    (Profile.instructions p);
  Alcotest.check Tutil.i64 "sampling kept pace" 4_000L (Profile.samples p)

let test_journal_parallel () =
  let module Journal = Elfie_supervise.Journal in
  let j = Journal.in_memory () in
  ignore
    (Pool.run ~jobs:4
       (List.init 4 (fun d () ->
            for i = 0 to 99 do
              Journal.record j
                {
                  Journal.job = Printf.sprintf "job-%d-%d" d i;
                  inputs_hash = Journal.hash [ string_of_int d; string_of_int i ];
                  attempts = 1;
                  classification = Elfie_supervise.Classify.Graceful;
                  quarantined = false;
                  wall_ms = 1.0;
                  attrs = [];
                }
            done)));
  Alcotest.(check int) "all records kept" 400 (List.length (Journal.records j));
  Alcotest.(check bool) "find works" true (Journal.find j ~job:"job-3-99" <> None)

(* --- parallel pipeline determinism ------------------------------------------- *)

(* The flagship determinism claim: a full pipeline validation fanned out
   over pool domains must equal the sequential run — same samples, same
   coverage, same degradation sequence. *)
let test_pipeline_parallel_equals_sequential () =
  let module Pipeline = Elfie_harness.Pipeline in
  let b =
    { Elfie_workloads.Suite.bname = "tinypar"; spec = Tutil.tiny_spec "tinypar" }
  in
  let params =
    {
      Elfie_simpoint.Simpoint.default_params with
      slice_size = 10_000L;
      warmup = 20_000L;
      max_k = 6;
    }
  in
  let project (v : Pipeline.validation) =
    ( ( v.Pipeline.coverage,
        v.Pipeline.k,
        v.Pipeline.elfie_pred_cpi,
        v.Pipeline.elfie_error,
        v.Pipeline.elfie_error2,
        v.Pipeline.sim_error ),
      v.Pipeline.native_whole,
      List.map
        (fun (r : Pipeline.region_outcome) ->
          (r.Pipeline.rank_used, r.Pipeline.elfie_sample, r.Pipeline.sim_cpi))
        v.Pipeline.regions,
      List.map
        (fun d -> Format.asprintf "%a" Pipeline.pp_degradation d)
        v.Pipeline.degradations )
  in
  let seq =
    Pipeline.validate ~jobs:1 ~params ~trials:2 ~second_base_seed:900L
      ~with_simulation:true b
  in
  let par =
    Pipeline.validate ~jobs:4 ~params ~trials:2 ~second_base_seed:900L
      ~with_simulation:true b
  in
  Alcotest.(check bool) "covered" true (seq.Pipeline.coverage > 0.5);
  if project seq <> project par then
    Alcotest.failf "parallel validation diverged from sequential:\n%s\nvs\n%s"
      (Format.asprintf "%f %f" seq.Pipeline.elfie_pred_cpi seq.Pipeline.coverage)
      (Format.asprintf "%f %f" par.Pipeline.elfie_pred_cpi par.Pipeline.coverage)

let suite =
  [ Alcotest.test_case "SMC: patched call target" `Quick test_smc_patch_invalidates;
    Alcotest.test_case "SMC: hot-loop patch" `Quick test_smc_hot_loop;
    QCheck_alcotest.to_alcotest prop_tlb_model;
    Alcotest.test_case "TLB: unmap leaves no stale entry" `Quick
      test_tlb_unmap_no_stale;
    Alcotest.test_case "block run ≡ stepped replay (ctx, cycles, profile)" `Quick
      test_block_run_matches_step;
    Alcotest.test_case "note_block ≡ per-ins note" `Quick test_note_block_equivalence;
    Alcotest.test_case "chain: chained ≡ disabled ≡ per-ins (BBV included)" `Quick
      test_chained_matches_disabled_and_per_ins;
    Alcotest.test_case "chain: SMC dirties mid-chain" `Quick test_chain_smc_mid_chain;
    Alcotest.test_case "chain: fault mid-chain re-materialises flags" `Quick
      test_chain_fault_mid_chain_flags;
    QCheck_alcotest.to_alcotest prop_chain_equiv;
    QCheck_alcotest.to_alcotest prop_fork_equals_fresh_warmup;
    Alcotest.test_case "SMC across fork" `Quick test_smc_across_fork;
    Alcotest.test_case "pool: map order" `Quick test_pool_map_order;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: labelled exception context" `Quick
      test_pool_labelled_exception;
    Alcotest.test_case "pool: sequential degrade" `Quick test_pool_sequential_degrade;
    Alcotest.test_case "pool: nested maps" `Quick test_pool_nested;
    Alcotest.test_case "pool: default jobs" `Quick test_pool_default_jobs;
    Alcotest.test_case "metrics: parallel increments" `Quick test_metrics_parallel;
    Alcotest.test_case "trace: parallel spans" `Quick test_trace_parallel;
    Alcotest.test_case "profile: parallel notes" `Quick test_profile_parallel;
    Alcotest.test_case "journal: parallel records" `Quick test_journal_parallel;
    Alcotest.test_case "pipeline: parallel ≡ sequential" `Slow
      test_pipeline_parallel_equals_sequential ]
