(* Tests for the pinball container format. *)

open Elfie_pinball

let sample_entry =
  {
    Pinball.sys_nr = 0;
    sys_args = [| 3L; 0x60_0000L; 64L; 0L; 0L; 0L |];
    sys_path = None;
    sys_ret = 64L;
    sys_writes = [ (0x60_0000L, "abc") ];
    sys_reexec = false;
  }

let sample () =
  let ctx = Elfie_machine.Context.create () in
  Elfie_machine.Context.set ctx Elfie_isa.Reg.RSP 0x7fff_0000L;
  ctx.Elfie_machine.Context.rip <- 0x40_0000L;
  {
    Pinball.name = "t";
    fat = true;
    contexts = [| ctx; Elfie_machine.Context.create () |];
    pages =
      [ (0x40_0000L, Bytes.make 4096 'c'); (0x60_0000L, Bytes.make 4096 'd') ];
    icounts = [| 1000L; 900L |];
    schedule = [ (0, 500); (1, 900); (0, 500) ];
    injections =
      [| [ sample_entry;
           { sample_entry with sys_nr = 2; sys_path = Some "/in"; sys_reexec = false } ];
         [] |];
    brk = 0x80_0000L;
    symbols = [ ("_start", 0x40_0000L); ("worker", 0x40_0100L) ];
  }

let test_files_roundtrip () =
  let pb = sample () in
  let pb' = Pinball.of_files ~name:"t" (Pinball.to_files pb) in
  Alcotest.(check bool) "equal" true (Pinball.equal pb pb')

let test_file_set_names () =
  let files = List.map fst (Pinball.to_files (sample ())) in
  List.iter
    (fun f -> Alcotest.(check bool) f true (List.mem f files))
    [ "text"; "global.log"; "inj"; "order"; "0.reg"; "1.reg" ]

let test_missing_piece () =
  let files = List.remove_assoc "inj" (Pinball.to_files (sample ())) in
  match Pinball.of_files_result ~name:"t" files with
  | Ok _ -> Alcotest.fail "missing inj member was accepted"
  | Error d ->
      Alcotest.(check bool)
        "missing-file code" true
        (d.Elfie_util.Diag.code = Elfie_util.Diag.Missing_file);
      (* The message must name the expected file so the user can fix it. *)
      Alcotest.(check bool)
        "names the member" true
        (Tutil.contains d.Elfie_util.Diag.message "t.inj")

let test_load_error_names_dir () =
  let dir = Filename.temp_file "pinball" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  match Pinball.load_result ~dir ~name:"ghost" with
  | Ok _ -> Alcotest.fail "empty directory yielded a pinball"
  | Error d ->
      Alcotest.(check bool)
        "names the directory" true
        (Tutil.contains d.Elfie_util.Diag.message dir);
      Alcotest.(check bool)
        "names the expected file" true
        (Tutil.contains d.Elfie_util.Diag.message "ghost.global.log")

let test_disk_roundtrip () =
  let dir = Filename.temp_file "pinball" "" in
  Sys.remove dir;
  let pb = sample () in
  Pinball.save pb ~dir;
  let pb' = Pinball.load ~dir ~name:"t" in
  Alcotest.(check bool) "disk equal" true (Pinball.equal pb pb')

let test_accessors () =
  let pb = sample () in
  Alcotest.(check int) "threads" 2 (Pinball.num_threads pb);
  Alcotest.check Tutil.i64 "icount" 1900L (Pinball.total_icount pb);
  Alcotest.(check int) "image bytes" 8192 (Pinball.image_bytes pb)

let prop_injection_roundtrip =
  let entry_gen =
    let open QCheck.Gen in
    let* nr = int_range 0 300 in
    let* ret = map Int64.of_int (int_range (-100) 10_000) in
    let* reexec = bool in
    let* path = opt (map (Printf.sprintf "/p%d") (int_range 0 99)) in
    let* writes =
      list_size (int_range 0 3)
        (let* addr = map Int64.of_int (int_range 0 1_000_000) in
         let* s = string_size (int_range 0 32) in
         return (addr, s))
    in
    return
      { Pinball.sys_nr = nr; sys_args = Array.make 6 7L; sys_path = path;
        sys_ret = ret; sys_writes = writes; sys_reexec = reexec }
  in
  QCheck.Test.make ~name:"pinball roundtrip (random injections)" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 0 10) entry_gen))
    (fun entries ->
      let pb = { (sample ()) with Pinball.injections = [| entries; [] |] } in
      Pinball.equal pb (Pinball.of_files ~name:"t" (Pinball.to_files pb)))

(* Any single-member corruption must yield either a parsed pinball or a
   structured diagnostic — never another exception. *)
let classify_corrupted files =
  match Pinball.of_files_result ~name:"t" files with
  | Ok _ | Error _ -> true
  | exception e -> QCheck.Test.fail_reportf "escaped: %s" (Printexc.to_string e)

let member_gen =
  QCheck.Gen.oneofl [ "text"; "global.log"; "inj"; "order"; "0.reg"; "1.reg" ]

let prop_bit_flip_total =
  QCheck.Test.make ~name:"pinball reader total under bit flips" ~count:300
    (QCheck.make
       QCheck.Gen.(triple member_gen (int_bound 10_000) (int_bound 7)))
    (fun (member, off, bit) ->
      let files = Pinball.to_files (sample ()) in
      let content = List.assoc member files in
      QCheck.assume (String.length content > 0);
      let off = off mod String.length content in
      let b = Bytes.of_string content in
      Bytes.set b off
        (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
      classify_corrupted
        (List.map
           (fun (s, c) -> if s = member then (s, Bytes.to_string b) else (s, c))
           files))

let prop_truncation_total =
  QCheck.Test.make ~name:"pinball reader total under truncation" ~count:300
    (QCheck.make QCheck.Gen.(pair member_gen (int_bound 10_000)))
    (fun (member, keep) ->
      let files = Pinball.to_files (sample ()) in
      let content = List.assoc member files in
      let keep = if String.length content = 0 then 0 else keep mod String.length content in
      classify_corrupted
        (List.map
           (fun (s, c) -> if s = member then (s, String.sub c 0 keep) else (s, c))
           files))

let suite =
  [
    Alcotest.test_case "files roundtrip" `Quick test_files_roundtrip;
    Alcotest.test_case "file-set names" `Quick test_file_set_names;
    Alcotest.test_case "missing piece fails" `Quick test_missing_piece;
    Alcotest.test_case "load error names dir" `Quick test_load_error_names_dir;
    Alcotest.test_case "disk roundtrip" `Quick test_disk_roundtrip;
    Alcotest.test_case "accessors" `Quick test_accessors;
    QCheck_alcotest.to_alcotest prop_injection_roundtrip;
    QCheck_alcotest.to_alcotest prop_bit_flip_total;
    QCheck_alcotest.to_alcotest prop_truncation_total;
  ]
