(* The fault-injection suite (dune alias @fault, also part of the
   default test run).

   Sweeps every corruption class over a captured pinball and a converted
   ELFie at higher iteration counts than the unit tests, and fails if
   any corruption escapes the readers/validators as a raw exception. *)

module Fault_inject = Elfie_check.Fault_inject

let iterations = 40

let capture_pinball () =
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:
        [ { kernel = Elfie_workloads.Kernels.Stream; reps = 1500 };
          { kernel = Elfie_workloads.Kernels.Branchy; reps = 1200 } ]
      ~outer_reps:6 ~threads:1 ~ws_bytes:32768 ~file_io:false ~time_calls:false
      "faultpb"
  in
  let rs = Elfie_workloads.Programs.run_spec ~seed:42L spec in
  let r =
    Elfie_pin.Logger.capture rs ~name:"faultpb"
      { Elfie_pin.Logger.start = 20_000L; length = 30_000L }
  in
  r.Elfie_pin.Logger.pinball

let check_report what report =
  Format.printf "%s: %a@." what Fault_inject.pp_report report;
  let crashed = Fault_inject.crashes report in
  if crashed <> [] then begin
    Format.printf "FAILED: %d corruption(s) escaped as raw exceptions@."
      (List.length crashed);
    exit 1
  end;
  if report.Fault_inject.diagnosed = 0 then begin
    Format.printf "FAILED: no corruption was diagnosed — sweep is vacuous@.";
    exit 1
  end

let () =
  let pb = capture_pinball () in
  check_report "pinball fault sweep" (Fault_inject.run_pinball ~iterations pb);
  let sysstate = Elfie_pin.Sysstate.analyze pb in
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        { Elfie_core.Pinball2elf.default_options with sysstate = Some sysstate }
      pb
  in
  check_report "elfie fault sweep" (Fault_inject.run_elf ~iterations image);
  Format.printf "fault suite passed: %d classes, %d cases per artifact@."
    (List.length Fault_inject.all_faults)
    (iterations * List.length Fault_inject.all_faults)
