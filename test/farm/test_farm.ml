(* The ELFie farm suite (dune alias @farm, also part of the default
   test run): content-addressed keys, codec roundtrips, the store-fault
   corruption sweep, concurrent access (exactly-one-computation and
   stale-lock breaking), and the batch driver's cold/warm/resume
   behavior — a warm second run of the same manifest must perform no
   program execution at all. *)

module Store = Elfie_farm.Store
module Codec = Elfie_farm.Codec
module Driver = Elfie_farm.Driver
module Fault_inject = Elfie_check.Fault_inject
module Journal = Elfie_supervise.Journal
module Pool = Elfie_util.Pool
module Metrics = Elfie_obs.Metrics

(* A pid guaranteed dead, forked and reaped at module init — before any
   test spawns domains (fork is not allowed with multiple domains
   running). *)
let dead_pid =
  match Unix.fork () with
  | 0 -> Unix._exit 0
  | pid ->
      ignore (Unix.waitpid [] pid);
      pid

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let tiny_spec name =
  Elfie_workloads.Programs.spec
    ~phases:
      [ { kernel = Elfie_workloads.Kernels.Stream; reps = 1500 };
        { kernel = Elfie_workloads.Kernels.Branchy; reps = 1200 } ]
    ~outer_reps:6 ~threads:1 ~ws_bytes:32768 name

let program_bytes spec =
  Bytes.to_string (Elfie_elf.Image.write (Elfie_workloads.Programs.image spec))

(* --- keys ------------------------------------------------------------------ *)

let test_key_normalization () =
  let d kind program params = Store.digest (Store.key kind ~program params) in
  Alcotest.(check string)
    "parameter order does not change the address"
    (d Store.Bbv "prog" [ ("slice", "10000"); ("seed", "7") ])
    (d Store.Bbv "prog" [ ("seed", "7"); ("slice", "10000") ]);
  Alcotest.(check bool)
    "program bytes are part of the address" true
    (d Store.Bbv "prog-a" [ ("slice", "10000") ]
    <> d Store.Bbv "prog-b" [ ("slice", "10000") ]);
  Alcotest.(check bool)
    "a changed parameter re-keys" true
    (d Store.Bbv "prog" [ ("slice", "10000") ]
    <> d Store.Bbv "prog" [ ("slice", "20000") ]);
  Alcotest.(check bool)
    "kind is part of the address" true
    (d Store.Bbv "prog" [] <> d Store.Simpoint "prog" []);
  Alcotest.(check bool)
    "escaping keeps odd values unambiguous" true
    (d Store.Bbv "prog" [ ("a", "x&b=y") ] <> d Store.Bbv "prog" [ ("a", "x"); ("b", "y") ])

let test_put_get_roundtrip () =
  let root = tmp_dir "elfie_store" in
  let store = Store.open_store root in
  let k = Store.key Store.Measurement ~program:"p" [ ("n", "1") ] in
  Alcotest.(check bool) "absent before put" false (Store.mem store k);
  let payload = String.init 300 (fun i -> Char.chr (i mod 251)) in
  Store.put store k ~format:1 payload;
  Alcotest.(check bool) "present after put" true (Store.mem store k);
  (match Store.get store k ~format:1 with
  | Some p -> Alcotest.(check string) "payload roundtrips" payload p
  | None -> Alcotest.fail "verified read failed on a fresh artifact");
  (* A format bump is version skew: quarantined, served as a miss. *)
  (match Store.get store k ~format:2 with
  | Some _ -> Alcotest.fail "format skew served"
  | None -> ());
  Alcotest.(check bool) "skew quarantined" true
    (List.exists
       (fun (q : Store.quarantine) -> q.Store.q_reason = "format-skew")
       (Store.quarantines store));
  Alcotest.(check bool) "quarantined file preserved" true
    (List.for_all
       (fun (q : Store.quarantine) -> Sys.file_exists q.Store.q_moved_to)
       (Store.quarantines store))

(* --- codecs ---------------------------------------------------------------- *)

let test_codec_roundtrips () =
  let spec = tiny_spec "codec" in
  let rs = Elfie_workloads.Programs.run_spec ~seed:42L spec in
  let profile = Elfie_pin.Bbv.profile rs ~slice_size:10_000L in
  let reenc enc dec what x =
    match dec (enc x) with
    | Ok y -> Alcotest.(check string) what (enc x) (enc y)
    | Error d -> Alcotest.failf "%s: %a" what Elfie_util.Diag.pp d
  in
  reenc Codec.encode_bbv Codec.decode_bbv "bbv roundtrip" profile;
  let params =
    { Elfie_simpoint.Simpoint.default_params with max_k = 4; dims = 8 }
  in
  let sel = Elfie_simpoint.Simpoint.select ~params profile in
  reenc Codec.encode_selection Codec.decode_selection "selection roundtrip" sel;
  let r =
    Elfie_pin.Logger.capture rs ~name:"farmpb"
      { Elfie_pin.Logger.start = 20_000L; length = 30_000L }
  in
  let pb = r.Elfie_pin.Logger.pinball in
  reenc Codec.encode_pinball
    (Codec.decode_pinball ~name:"farmpb")
    "pinball roundtrip" pb;
  let sysstate = Elfie_pin.Sysstate.analyze pb in
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        { Elfie_core.Pinball2elf.default_options with sysstate = Some sysstate }
      pb
  in
  reenc Codec.encode_elfie Codec.decode_elfie "elfie roundtrip"
    (image, sysstate);
  let m =
    { Codec.m_cluster = 3; m_weight = 0.25; m_cpi = 1.75; m_stddev = 0.01;
      m_instructions = 30_000L; m_trials = 3; m_failures = 1 }
  in
  match Codec.decode_measurement (Codec.encode_measurement m) with
  | Ok m' -> Alcotest.(check bool) "measurement roundtrip" true (m = m')
  | Error d -> Alcotest.failf "measurement roundtrip: %a" Elfie_util.Diag.pp d

(* --- corruption sweep ------------------------------------------------------ *)

let test_store_fault_sweep () =
  let root = tmp_dir "elfie_store_faults" in
  let report = Fault_inject.run_store ~iterations:8 ~root () in
  Format.printf "%a@." Fault_inject.pp_store_report report;
  let failures = Fault_inject.store_failures report in
  if failures <> [] then
    Alcotest.failf "%d store fault(s) crashed or served corrupt data"
      (List.length failures);
  Alcotest.(check bool) "sweep is not vacuous" true
    (report.Fault_inject.s_recovered > 0);
  (* Every fault class must be exercised, and every class that corrupts
     committed bytes must quarantine-and-recompute at least once. *)
  List.iter
    (fun fault ->
      let cases =
        List.filter
          (fun (c : Fault_inject.store_case) -> c.Fault_inject.sfault = fault)
          report.Fault_inject.s_cases
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s exercised" (Fault_inject.store_fault_name fault))
        true (cases <> []);
      if fault <> Fault_inject.Stale_lock then
        Alcotest.(check bool)
          (Printf.sprintf "%s recovered at least once"
             (Fault_inject.store_fault_name fault))
          true
          (List.exists
             (fun (c : Fault_inject.store_case) ->
               c.Fault_inject.soutcome = Fault_inject.Store_recovered)
             cases))
    Fault_inject.all_store_faults;
  (* The corpses are on disk and in the persistent log, never deleted. *)
  let store = Store.open_store root in
  let logged = Store.read_quarantine_log store in
  Alcotest.(check bool) "quarantine log populated" true (logged <> []);
  Alcotest.(check bool) "quarantined files preserved" true
    (List.for_all
       (fun (q : Store.quarantine) -> Sys.file_exists q.Store.q_moved_to)
       logged)

(* --- concurrency ----------------------------------------------------------- *)

let test_concurrent_single_computation () =
  let root = tmp_dir "elfie_store_race" in
  let store = Store.open_store root in
  let k = Store.key Store.Measurement ~program:"race" [ ("n", "0") ] in
  let computations = Atomic.make 0 in
  let payload = String.init 4096 (fun i -> Char.chr (i mod 253)) in
  let results =
    Pool.map ~jobs:4
      (fun _ ->
        Store.get_or_compute store k ~format:1 (fun () ->
            Atomic.incr computations;
            (* Widen the race window: losers must wait, not recompute. *)
            Unix.sleepf 0.05;
            payload))
      (List.init 8 Fun.id)
  in
  Alcotest.(check int) "exactly one computation" 1 (Atomic.get computations);
  List.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "reader %d bit-identical" i)
        payload r)
    results;
  Alcotest.(check bool) "lock released" false
    (Sys.file_exists (Store.lock_path_of store k))

let test_concurrent_stale_lock_break () =
  let root = tmp_dir "elfie_store_stale" in
  let store = Store.open_store root in
  let k = Store.key Store.Measurement ~program:"race" [ ("n", "1") ] in
  (* A lock left behind by a dead process guards the (absent) artifact:
     the racers must break it, then still perform exactly one
     computation among themselves. *)
  let oc = open_out_bin (Store.lock_path_of store k) in
  Printf.fprintf oc "ELFIELOCK %d leftover.0\n" dead_pid;
  close_out oc;
  let m_breaks = Metrics.counter "elfie_store_lock_breaks_total" in
  let breaks0 = Metrics.total m_breaks in
  let computations = Atomic.make 0 in
  let payload = "stale-lock-payload" in
  let results =
    Pool.map ~jobs:4
      (fun _ ->
        Store.get_or_compute store k ~format:1 (fun () ->
            Atomic.incr computations;
            Unix.sleepf 0.05;
            payload))
      (List.init 8 Fun.id)
  in
  Alcotest.(check int) "exactly one computation" 1 (Atomic.get computations);
  List.iter (fun r -> Alcotest.(check string) "bit-identical" payload r) results;
  Alcotest.(check bool) "stale lock was broken" true
    (Metrics.total m_breaks -. breaks0 >= 1.0);
  Alcotest.(check bool) "lock released" false
    (Sys.file_exists (Store.lock_path_of store k))

(* --- batch driver ---------------------------------------------------------- *)

let farm_params =
  { Driver.default_params with
    max_k = 3; dims = 8; warmup = 1_000L; trials = 1; max_regions = 2 }

let test_driver_cold_warm_incremental () =
  let root = tmp_dir "elfie_farm_batch" in
  let store = Store.open_store root in
  let spec = tiny_spec "batch" in
  let job = Driver.job ~params:farm_params ~name:"tiny" spec in
  let m_loader = Metrics.counter "elfie_loader_runs_total" in
  (* Cold: every stage is a miss and the program actually runs. *)
  let cold = Driver.run ~store [ job ] in
  Alcotest.(check int) "cold run has no hits" 0 cold.Driver.b_hits;
  Alcotest.(check bool) "cold run computes" true (cold.Driver.b_misses > 0);
  let cold_cpi =
    match cold.Driver.outcomes with
    | [ { o_result = Some r; _ } ] -> r.Driver.jr_pred_cpi
    | _ -> Alcotest.fail "cold run did not produce a result"
  in
  Alcotest.(check bool) "cold run predicts a CPI" true (cold_cpi <> None);
  (* Warm: the same manifest is served entirely from cache — zero
     misses, zero program executions. *)
  let runs0 = Metrics.total m_loader in
  let warm = Driver.run ~store [ job ] in
  Alcotest.(check int) "warm run misses nothing" 0 warm.Driver.b_misses;
  Alcotest.(check bool) "warm run hits" true (warm.Driver.b_hits > 0);
  Alcotest.(check (float 0.0)) "warm run executes no program" 0.0
    (Metrics.total m_loader -. runs0);
  (match warm.Driver.outcomes with
  | [ { o_result = Some r; _ } ] ->
      Alcotest.(check bool) "warm result identical" true
        (r.Driver.jr_pred_cpi = cold_cpi)
  | _ -> Alcotest.fail "warm run did not produce a result");
  (* Incremental SimPoint reuse: a changed max_k re-keys the selection
     (and everything behind it) but hits the cached BBV profile — the
     store gains a second selection, never a second profile. *)
  Alcotest.(check int) "one profile cached" 1
    (Store.artifact_count store Store.Bbv);
  Alcotest.(check int) "one selection cached" 1
    (Store.artifact_count store Store.Simpoint);
  let job_k4 =
    Driver.job
      ~params:{ farm_params with max_k = 4 }
      ~name:"tiny-k4" spec
  in
  let rerun = Driver.run ~store [ job_k4 ] in
  Alcotest.(check bool) "changed k still hits the profile" true
    (rerun.Driver.b_hits >= 1);
  Alcotest.(check int) "profile not recomputed" 1
    (Store.artifact_count store Store.Bbv);
  Alcotest.(check int) "selection re-keyed" 2
    (Store.artifact_count store Store.Simpoint)

let test_driver_resume () =
  let root = tmp_dir "elfie_farm_resume" in
  let store = Store.open_store root in
  let spec = tiny_spec "resume" in
  let j1 = Driver.job ~params:farm_params ~name:"one" spec in
  let j2 =
    Driver.job ~params:{ farm_params with max_k = 4 } ~name:"two" spec
  in
  let jpath = Filename.temp_file "elfie_farm_journal" ".j" in
  (* First run finishes only job one, then the driver "dies". *)
  let journal = Journal.open_file jpath in
  let b1 = Driver.run ~store ~journal [ j1 ] in
  Journal.close journal;
  Alcotest.(check int) "first run skipped nothing" 0 b1.Driver.b_skipped;
  (* Resume with the full manifest: job one is satisfied from the
     journal (nothing runs, not even cache lookups), job two runs. *)
  let journal = Journal.open_file jpath in
  let b2 = Driver.run ~store ~journal ~resume:true [ j1; j2 ] in
  Journal.close journal;
  Alcotest.(check int) "resume skipped the finished job" 1
    b2.Driver.b_skipped;
  (match b2.Driver.outcomes with
  | [ o1; o2 ] ->
      Alcotest.(check bool) "job one skipped" true o1.Driver.o_skipped;
      Alcotest.(check bool) "job two ran" false o2.Driver.o_skipped;
      Alcotest.(check bool) "job two produced a result" true
        (o2.Driver.o_result <> None)
  | _ -> Alcotest.fail "expected two outcomes");
  (* A changed parameter invalidates the journal record: nothing skips. *)
  let j1' =
    Driver.job ~params:{ farm_params with trials = 2 } ~name:"one" spec
  in
  let journal = Journal.open_file jpath in
  let b3 = Driver.run ~store ~journal ~resume:true [ j1' ] in
  Journal.close journal;
  Alcotest.(check int) "changed inputs re-run" 0 b3.Driver.b_skipped;
  Sys.remove jpath

let test_driver_survives_corrupt_cache () =
  let root = tmp_dir "elfie_farm_corrupt" in
  let store = Store.open_store root in
  let spec = tiny_spec "corrupt" in
  let job = Driver.job ~params:farm_params ~name:"tiny" spec in
  let cold = Driver.run ~store [ job ] in
  Alcotest.(check bool) "cold run computes" true (cold.Driver.b_misses > 0);
  (* Flip the last byte of the cached BBV profile (payload region): the
     warm run must quarantine it, recompute, and still succeed. *)
  let bbv_key =
    Codec.bbv_key ~program:(program_bytes spec)
      ~slice_size:farm_params.Driver.slice_size
      ~seed:farm_params.Driver.base_seed ()
  in
  let path = Store.path_of store bbv_key in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string raw in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  let warm = Driver.run ~store [ job ] in
  Alcotest.(check bool) "corrupt profile quarantined" true
    (List.exists
       (fun (q : Store.quarantine) -> q.Store.q_kind = "bbv")
       warm.Driver.b_store_quarantines);
  Alcotest.(check bool) "profile recomputed" true (warm.Driver.b_misses >= 1);
  match warm.Driver.outcomes with
  | [ { o_result = Some _; o_skipped = false; _ } ] -> ()
  | _ -> Alcotest.fail "batch did not survive the corrupt cache entry"

(* --- manifest -------------------------------------------------------------- *)

let test_manifest_parsing () =
  let ok =
    Driver.manifest_of_string ~artifact:"m"
      "# comment\n\
       \n\
       leela bench=541.leela_r max-k=4 trials=1\n\
       mcf bench=505.mcf_r slice=20000 regions=2\n"
  in
  (match ok with
  | Ok [ a; b ] ->
      Alcotest.(check string) "first job" "leela" a.Driver.j_name;
      Alcotest.(check int) "max-k parsed" 4 a.Driver.j_params.Driver.max_k;
      Alcotest.(check int) "trials parsed" 1 a.Driver.j_params.Driver.trials;
      Alcotest.(check int64) "slice parsed" 20_000L
        b.Driver.j_params.Driver.slice_size;
      Alcotest.(check int) "regions parsed" 2
        b.Driver.j_params.Driver.max_regions
  | Ok _ -> Alcotest.fail "expected two jobs"
  | Error d -> Alcotest.failf "manifest rejected: %a" Elfie_util.Diag.pp d);
  let bad what s =
    match Driver.manifest_of_string ~artifact:"m" s with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  bad "missing bench" "job slice=100\n";
  bad "unknown benchmark" "job bench=no-such-benchmark\n";
  bad "unknown key" "job bench=541.leela_r nope=1\n";
  bad "bad integer" "job bench=541.leela_r slice=ten\n"

(* Satellite of the daemon PR: two `elfied run --resume` processes race
   the same journal and store, and one of them is SIGKILLed mid-run —
   the abandoned locks and any torn trailing journal line must not stop
   the survivor, and a warm resume afterwards must satisfy every job
   from the journal without running anything. Real subprocesses (not
   forks): OCaml 5 forbids fork once pool domains have ever been
   spawned, and the CLI is the surface the satellite is about. *)
let elfied_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    "../../bin/elfied.exe"

let test_concurrent_resume_kill () =
  let root = tmp_dir "elfie_farm_race_resume" in
  let store_root = Filename.concat root "store" in
  let jpath = Filename.concat root "journal.j1" in
  let manifest = Filename.concat root "manifest" in
  let out f =
    Out_channel.with_open_text f (fun oc ->
        output_string oc
          "ra bench=541.leela_r max-k=3 warmup=1000 trials=1 regions=2\n\
           rb bench=541.leela_r max-k=4 warmup=1000 trials=1 regions=2\n")
  in
  out manifest;
  let jobs =
    match Driver.load_manifest manifest with
    | Ok jobs -> jobs
    | Error d -> Alcotest.failf "manifest rejected: %a" Elfie_util.Diag.pp d
  in
  let spawn_driver () =
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process elfied_exe
        [| elfied_exe; "run"; manifest; "--store"; store_root; "--journal";
           jpath; "--resume" |]
        Unix.stdin devnull devnull
    in
    Unix.close devnull;
    pid
  in
  let survivor = spawn_driver () in
  let victim = spawn_driver () in
  Unix.sleepf 0.3;
  Unix.kill victim Sys.sigkill;
  let _, victim_status = Unix.waitpid [] victim in
  let _, survivor_status = Unix.waitpid [] survivor in
  (match victim_status with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | Unix.WEXITED 0 -> () (* finished before the kill landed; still valid *)
  | _ -> Alcotest.fail "victim neither killed nor graceful");
  (match survivor_status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "survivor exited %d" n
  | _ -> Alcotest.fail "survivor did not exit normally");
  (* Warm resume: the journal (including whatever the victim left
     behind) satisfies both jobs; nothing runs, nothing is recomputed. *)
  let store = Store.open_store store_root in
  let journal = Journal.open_file jpath in
  let m_loader = Metrics.counter "elfie_loader_runs_total" in
  let runs0 = Metrics.total m_loader in
  let warm = Driver.run ~store ~journal ~resume:true jobs in
  Journal.close journal;
  Alcotest.(check int) "warm resume skips both jobs" 2 warm.Driver.b_skipped;
  Alcotest.(check int) "warm resume misses nothing" 0 warm.Driver.b_misses;
  Alcotest.(check (float 0.0)) "warm resume executes no program" 0.0
    (Metrics.total m_loader -. runs0);
  Alcotest.(check int) "warm resume quarantines nothing" 0
    warm.Driver.b_quarantined

let () =
  Alcotest.run "farm"
    [
      ( "store",
        [
          Alcotest.test_case "key normalization" `Quick test_key_normalization;
          Alcotest.test_case "put/get roundtrip + skew" `Quick
            test_put_get_roundtrip;
          Alcotest.test_case "codec roundtrips" `Slow test_codec_roundtrips;
          Alcotest.test_case "corruption sweep" `Slow test_store_fault_sweep;
          Alcotest.test_case "race: exactly one computation" `Quick
            test_concurrent_single_computation;
          Alcotest.test_case "race: stale lock broken" `Quick
            test_concurrent_stale_lock_break;
        ] );
      ( "driver",
        [
          Alcotest.test_case "manifest parsing" `Quick test_manifest_parsing;
          Alcotest.test_case "cold/warm/incremental" `Slow
            test_driver_cold_warm_incremental;
          Alcotest.test_case "journal resume" `Slow test_driver_resume;
          Alcotest.test_case "corrupt cache survived" `Slow
            test_driver_survives_corrupt_cache;
          Alcotest.test_case "concurrent resume, one driver killed" `Slow
            test_concurrent_resume_kill;
        ] );
    ]
