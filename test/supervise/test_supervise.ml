(* The supervision suite (dune alias @supervise, also part of the
   default test run): end-to-end watchdog, retry and escalation behavior
   on real ELFies and pinball replays.

   Covers the failure classes the unit tests can only synthesize:
   - a hung ELFie (looping past its fired region counters) stopped by
     the instruction-budget watchdog, classified Runaway and quarantined
     after exactly one raised-budget retry;
   - the same hang stopped preemptively by the wall-clock watchdog and
     classified Timeout;
   - a deterministic stack collision recovered by reseeded retries;
   - a diverging constrained replay escalated to injection-less replay
     for a first-divergence report, then quarantined. *)

module Supervisor = Elfie_supervise.Supervisor
module Classify = Elfie_supervise.Classify
module Fault_inject = Elfie_check.Fault_inject

let failf fmt = Format.kasprintf (fun s -> Format.printf "FAILED: %s@."s; exit 1) fmt

let capture ?(file_io = false) ?(time_calls = false) name =
  let spec =
    Elfie_workloads.Programs.spec
      ~phases:
        [ { kernel = Elfie_workloads.Kernels.Stream; reps = 1500 };
          { kernel = Elfie_workloads.Kernels.Branchy; reps = 1200 } ]
      ~outer_reps:6 ~threads:1 ~ws_bytes:32768 ~file_io ~time_calls name
  in
  let rs = Elfie_workloads.Programs.run_spec ~seed:42L spec in
  let r =
    Elfie_pin.Logger.capture rs ~name
      { Elfie_pin.Logger.start = 20_000L; length = 30_000L }
  in
  r.Elfie_pin.Logger.pinball

let primary_attempts (r : Supervisor.report) =
  List.filter (fun (a : Supervisor.attempt) -> not a.escalated) r.attempts

let test_hang_runaway pb =
  let image = Fault_inject.hang_elfie pb in
  let budget = { Supervisor.ins = Some 500_000L; wall_s = None } in
  let report, outcome = Supervisor.run_elfie ~job:"hang" ~budget image in
  (match outcome with
  | Some o ->
      if o.Elfie_core.Elfie_runner.graceful then
        failf "hung ELFie reported graceful";
      if not o.runaway then failf "hung ELFie not flagged runaway";
      if o.fault <> Some Elfie_core.Elfie_runner.runaway_fault_message then
        failf "hung ELFie fault is %s"
          (Option.value ~default:"<none>" o.fault)
  | None -> failf "hang produced no outcome");
  (match report.Supervisor.final with
  | Classify.Runaway -> ()
  | c -> failf "hang classified %s, expected runaway" (Classify.to_string c));
  if not report.quarantined then failf "hang not quarantined";
  let n = List.length (primary_attempts report) in
  if n <> 2 then
    failf "hang ran %d attempt(s), expected 2 (one raised-budget retry)" n;
  Format.printf "hang: %a@." Supervisor.pp_report report

let test_hang_timeout pb =
  let image = Fault_inject.hang_elfie pb in
  let budget = { Supervisor.ins = None; wall_s = Some 0.05 } in
  let report, _ = Supervisor.run_elfie ~job:"hang-wall" ~budget image in
  (match report.Supervisor.final with
  | Classify.Timeout -> ()
  | c -> failf "wall-stopped hang classified %s, expected timeout"
           (Classify.to_string c));
  if not report.quarantined then failf "wall-stopped hang not quarantined";
  Format.printf "hang-wall: %a@." Supervisor.pp_report report

let test_collision_reseed pb =
  (* Allocatable stack sections (the historical bug) at the capture seed:
     the collision is deterministic on attempt 0, so recovery must come
     from the supervisor's reseeded retries. *)
  let image =
    Elfie_core.Pinball2elf.convert
      ~options:
        { Elfie_core.Pinball2elf.default_options with
          alloc_stack_sections = true }
      pb
  in
  let policy = { Supervisor.default_policy with retries = 6; base_seed = 42L } in
  let report, _ = Supervisor.run_elfie ~job:"collide" ~policy image in
  (match report.Supervisor.attempts with
  | { classification = Classify.Stack_collision; _ } :: _ -> ()
  | a :: _ ->
      failf "first attempt classified %s, expected stack-collision"
        (Classify.to_string a.classification)
  | [] -> failf "no attempts recorded");
  (match report.Supervisor.final with
  | Classify.Graceful -> ()
  | c -> failf "collision job ended %s, expected graceful recovery"
           (Classify.to_string c));
  if report.quarantined then failf "recovered collision job quarantined";
  if List.length (primary_attempts report) < 2 then
    failf "collision recovered without any retry";
  Format.printf "collide: %a@." Supervisor.pp_report report

let test_divergence_escalation () =
  let pb = capture ~file_io:true ~time_calls:true "supdiv" in
  let tampered =
    {
      pb with
      Elfie_pinball.Pinball.injections =
        Array.map
          (List.map (fun e -> { e with Elfie_pinball.Pinball.sys_nr = 9999 }))
          pb.Elfie_pinball.Pinball.injections;
    }
  in
  let report, _ = Supervisor.run_replay ~job:"diverge" tampered in
  (match report.Supervisor.final with
  | Classify.Divergence _ -> ()
  | c -> failf "tampered replay classified %s, expected divergence"
           (Classify.to_string c));
  if not report.quarantined then failf "divergence not quarantined";
  (match
     List.filter (fun (a : Supervisor.attempt) -> a.escalated) report.attempts
   with
  | [ esc ] -> (
      match esc.note with
      | Some note
        when String.length note >= 13
             && String.sub note 0 13 = "injectionless" -> ()
      | note ->
          failf "escalation note missing injectionless report: %s"
            (Option.value ~default:"<none>" note))
  | l -> failf "expected exactly one escalated attempt, got %d" (List.length l));
  Format.printf "diverge: %a@." Supervisor.pp_report report

(* Retry delays now come from the shared Elfie_util.Backoff schedule.
   Two regressions pinned here: (1) the total time a retrying job spends
   sleeping is bounded by the policy ceiling — an exploding exponential
   (factor 50) must be clamped to max_s per retry; (2) with a jittered
   policy, two runs of the same job draw identical delay sequences (the
   jitter rng is seeded from the policy seed and the job name), so
   supervised batches stay reproducible end to end. *)
let test_backoff_cap_and_determinism () =
  let policy =
    { Supervisor.default_policy with
      retries = 3;
      backoff_base_s = 0.01;
      backoff_factor = 50.0;
      backoff_max_s = 0.05 }
  in
  let run ~attempt_no ~seed:_ ~budget:_ =
    if attempt_no < 3 then (None, Classify.Stack_collision)
    else (Some attempt_no, Classify.Graceful)
  in
  let go () =
    let t0 = Unix.gettimeofday () in
    let report, value = Supervisor.supervise ~job:"backoff-cap" ~policy run in
    (report, value, Unix.gettimeofday () -. t0)
  in
  let r1, v1, wall1 = go () in
  let r2, v2, _ = go () in
  (match v1 with
  | Some 3 -> ()
  | _ -> failf "retrying job did not recover on attempt 3");
  if List.length (primary_attempts r1) <> 4 then
    failf "expected 4 primary attempts, got %d"
      (List.length (primary_attempts r1));
  (* Raw schedule 0.01, 0.5, 25.0 — capped it is at most
     0.01 + 0.05 + 0.05 = 0.11 s of sleeping. Generous slack for the
     attempts themselves. *)
  if wall1 > 1.0 then
    failf "backoff not capped at ceiling: %.3f s for 3 retries" wall1;
  let seeds r =
    List.map (fun (a : Supervisor.attempt) -> a.attempt_seed)
      (primary_attempts r)
  in
  if seeds r1 <> seeds r2 then failf "same-seed reruns drew different seeds";
  if v1 <> v2 then failf "same-seed reruns returned different values";
  Format.printf "backoff-cap: %a@." Supervisor.pp_report r1

let () =
  let pb = capture "suppb" in
  test_hang_runaway pb;
  test_hang_timeout pb;
  test_collision_reseed pb;
  test_divergence_escalation ();
  test_backoff_cap_and_determinism ();
  Format.printf "supervise suite passed@."
