(* Tests for the experiment harness: rendering, the registry, statistics
   helpers and the validation pipeline. *)

module Perf = Elfie_perf.Perf
module Render = Elfie_harness.Render
module Pipeline = Elfie_harness.Pipeline

let test_table_alignment () =
  let t = Render.table ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z" ] ] in
  let lines = String.split_on_char '\n' t in
  Alcotest.(check int) "header+rule+2 rows (+nl)" 5 (List.length lines);
  let widths = List.map String.length (List.filteri (fun i _ -> i < 4) lines) in
  match widths with
  | [ w1; w2; w3; w4 ] ->
      Alcotest.(check bool) "aligned" true (w1 = w2 && w2 = w3 && w3 >= w4)
  | _ -> Alcotest.fail "unexpected shape"

let test_bars_scaling () =
  let out =
    Render.bars ~title:"t" [ ("a", [ ("s", 1.0) ]); ("b", [ ("s", 2.0) ]) ]
  in
  Alcotest.(check bool) "contains hashes" true (String.contains out '#');
  Alcotest.(check bool) "contains values" true
    (String.length out > 0 && String.contains out '2')

let test_pct () = Alcotest.(check string) "pct" "12.5%" (Render.pct 0.125)

let test_registry_complete () =
  let ids = Elfie_harness.Registry.ids in
  List.iter
    (fun id -> Alcotest.(check bool) id true (List.mem id ids))
    [ "table1"; "table2"; "table3"; "table4"; "table5"; "fig9"; "fig10"; "fig11" ];
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "find works" true
    (Elfie_harness.Registry.find "fig9" <> None);
  Alcotest.(check bool) "unknown id" true (Elfie_harness.Registry.find "fig99" = None)

let test_perf_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Perf.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0 (Perf.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "singleton stddev" 0.0 (Perf.stddev [ 5.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Perf.mean [])

let test_perf_whole_program () =
  let s = Perf.whole_program ~trials:2 (Tutil.tiny_run_spec "perfwp") in
  Alcotest.(check int) "no failures" 0 s.Perf.failures;
  Alcotest.(check bool) "cpi positive" true (s.Perf.mean_cpi > 0.0);
  (* Two trials with different timer seeds: nonzero spread. *)
  Alcotest.(check bool) "spread" true (s.Perf.stddev_cpi > 0.0)

let test_pipeline_validate_small () =
  let b = { Elfie_workloads.Suite.bname = "tinyval"; spec = Tutil.tiny_spec "tinyval" } in
  let params =
    { Elfie_simpoint.Simpoint.default_params with
      slice_size = 10_000L; warmup = 20_000L; max_k = 6 }
  in
  let v = Pipeline.validate ~params ~trials:2 b in
  Alcotest.(check bool) "covered" true (v.Pipeline.coverage > 0.5);
  Alcotest.(check bool) "prediction sane" true
    (v.Pipeline.elfie_pred_cpi > 0.0 && v.Pipeline.elfie_error < 1.0);
  Alcotest.(check bool) "regions reported" true (v.Pipeline.regions <> [])

let test_make_region_elfie_none_past_end () =
  let rs = Tutil.tiny_run_spec "prv" in
  Alcotest.(check bool) "unreachable region" true
    (Pipeline.make_region_elfie rs ~name:"x" ~warmup:0L ~start:99_000_000L
       ~length:1_000L
    = None)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_experiment_smoke () =
  (* The cheap experiments run end to end and produce their headline
     rows (memoized, so this also warms the bench harness path). *)
  let out4 = (Option.get (Elfie_harness.Registry.find "table4")).run () in
  Alcotest.(check bool) "table4 ring0 row" true
    (contains ~sub:"ring0 instructions" out4);
  Alcotest.(check bool) "table4 footprint row" true
    (contains ~sub:"data footprint" out4);
  let out11 = (Option.get (Elfie_harness.Registry.find "fig11")).run () in
  Alcotest.(check bool) "fig11 has all apps" true
    (contains ~sub:"657.xz_s.1" out11 && contains ~sub:"619.lbm_s" out11);
  Alcotest.(check bool) "fig11 both modes" true
    (contains ~sub:"pinball-sim" out11 && contains ~sub:"ELFie-sim" out11)

(* Graceful recovery, layer 2: regions whose ELFies never execute
   gracefully (here: counters disarmed for every rank-0 representative,
   so no trial at any seed can succeed) must fall back to the next
   ranked alternate, and the fallback must be recorded. *)
let test_recovery_alternate_region () =
  let b =
    { Elfie_workloads.Suite.bname = "tinyalt"; spec = Tutil.tiny_spec "tinyalt" }
  in
  let params =
    { Elfie_simpoint.Simpoint.default_params with
      slice_size = 10_000L; warmup = 20_000L; max_k = 6 }
  in
  let sabotage (r : Elfie_simpoint.Simpoint.region) options =
    if r.Elfie_simpoint.Simpoint.rank = 0 then
      { options with Elfie_core.Pinball2elf.arm_counters = false }
    else options
  in
  let v =
    Pipeline.validate ~params ~trials:2 ~max_seed_retries:1
      ~elfie_options:sabotage b
  in
  Alcotest.(check bool) "still covered" true (v.Pipeline.coverage > 0.0);
  Alcotest.(check bool) "no rank-0 region used" true
    (List.for_all
       (fun ro -> ro.Pipeline.rank_used <> Some 0)
       v.Pipeline.regions);
  Alcotest.(check bool) "alternate fallback recorded" true
    (List.exists
       (fun d ->
         match d.Pipeline.deg_action with
         | Pipeline.Alternate_used { rank } -> rank > 0
         | _ -> false)
       v.Pipeline.degradations)

(* Graceful recovery, layer 1: an ELFie built with allocatable stack
   sections and run under the capture's own seed collides with the
   (identically randomized) native stack — the paper's stack-collision
   failure. The pipeline must retry under fresh seeds or fall back to an
   alternate region, and record what it did. *)
let test_recovery_stack_collision () =
  let b =
    { Elfie_workloads.Suite.bname = "tinystk"; spec = Tutil.tiny_spec "tinystk" }
  in
  let params =
    { Elfie_simpoint.Simpoint.default_params with
      slice_size = 10_000L; warmup = 20_000L; max_k = 6 }
  in
  let alloc_stacks _r options =
    { options with Elfie_core.Pinball2elf.alloc_stack_sections = true }
  in
  (* base_seed 42L = the capture seed: trial 0 reproduces the capture's
     stack randomization exactly, so the collision is deterministic. *)
  let v =
    Pipeline.validate ~params ~trials:1 ~base_seed:42L ~max_seed_retries:4
      ~elfie_options:alloc_stacks b
  in
  Alcotest.(check bool) "recovered coverage" true (v.Pipeline.coverage > 0.0);
  Alcotest.(check bool) "degradation recorded" true
    (v.Pipeline.degradations <> []);
  Alcotest.(check bool) "recovery action is retry or alternate" true
    (List.exists
       (fun d ->
         match d.Pipeline.deg_action with
         | Pipeline.Seed_retried _ | Pipeline.Alternate_used _ -> true
         | Pipeline.Quarantined _ | Pipeline.Abandoned -> false)
       v.Pipeline.degradations)

let suite =
  [
    Alcotest.test_case "experiment smoke (table4, fig11)" `Slow test_experiment_smoke;
    Alcotest.test_case "recovery: alternate region" `Slow
      test_recovery_alternate_region;
    Alcotest.test_case "recovery: stack collision" `Slow
      test_recovery_stack_collision;
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "bars scaling" `Quick test_bars_scaling;
    Alcotest.test_case "pct" `Quick test_pct;
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "perf stats" `Quick test_perf_stats;
    Alcotest.test_case "perf whole program" `Quick test_perf_whole_program;
    Alcotest.test_case "pipeline validate (small)" `Slow test_pipeline_validate_small;
    Alcotest.test_case "region past end" `Quick test_make_region_elfie_none_past_end;
  ]
