(* Unit and property tests for Elfie_util: byte I/O and the RNG. *)

open Elfie_util

let test_writer_reader_scalars () =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u8 w 0xab;
  Byteio.Writer.u16 w 0xbeef;
  Byteio.Writer.u32 w 0xdeadbeef;
  Byteio.Writer.u64 w 0x0123456789abcdefL;
  Byteio.Writer.i32 w (-42);
  let r = Byteio.Reader.of_bytes (Byteio.Writer.contents w) in
  Alcotest.(check int) "u8" 0xab (Byteio.Reader.u8 r);
  Alcotest.(check int) "u16" 0xbeef (Byteio.Reader.u16 r);
  Alcotest.(check int) "u32" 0xdeadbeef (Byteio.Reader.u32 r);
  Alcotest.check Tutil.i64 "u64" 0x0123456789abcdefL (Byteio.Reader.u64 r);
  Alcotest.(check int) "i32" (-42) (Byteio.Reader.i32 r);
  Alcotest.(check int) "exhausted" 0 (Byteio.Reader.remaining r)

let test_little_endian () =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w 0x11223344;
  let b = Byteio.Writer.contents w in
  Alcotest.(check char) "lsb first" '\x44' (Bytes.get b 0);
  Alcotest.(check char) "msb last" '\x11' (Bytes.get b 3)

let test_truncated () =
  let r = Byteio.Reader.of_string "ab" in
  Alcotest.check_raises "u32 on 2 bytes"
    (Byteio.Truncated "u8: need 1 bytes at offset 2, have 0") (fun () ->
      ignore (Byteio.Reader.u32 r))

let test_pad_to () =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u8 w 1;
  Byteio.Writer.pad_to w 8;
  Alcotest.(check int) "padded" 8 (Byteio.Writer.length w);
  Alcotest.check_raises "backwards pad"
    (Invalid_argument "Byteio.Writer.pad_to: at 8, past 4") (fun () ->
      Byteio.Writer.pad_to w 4)

let test_seek_and_bytes () =
  let r = Byteio.Reader.of_string "hello world" in
  Byteio.Reader.seek r 6;
  Alcotest.(check string) "tail" "world" (Byteio.Reader.string_n r 5);
  Byteio.Reader.seek r 0;
  Alcotest.(check string) "head" "hello" (Bytes.to_string (Byteio.Reader.bytes r 5))

let test_i32_range () =
  let w = Byteio.Writer.create () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Byteio.Writer.i32: 2147483648 out of range") (fun () ->
      Byteio.Writer.i32 w 0x8000_0000)

let prop_u64_roundtrip =
  QCheck.Test.make ~name:"u64 write/read roundtrip" ~count:200
    QCheck.int64 (fun v ->
      let w = Byteio.Writer.create () in
      Byteio.Writer.u64 w v;
      Byteio.Reader.u64 (Byteio.Reader.of_bytes (Byteio.Writer.contents w)) = v)

let prop_i32_roundtrip =
  QCheck.Test.make ~name:"i32 write/read roundtrip" ~count:200
    (QCheck.int_range (-0x8000_0000) 0x7fff_ffff) (fun v ->
      let w = Byteio.Writer.create () in
      Byteio.Writer.i32 w v;
      Byteio.Reader.i32 (Byteio.Reader.of_bytes (Byteio.Writer.contents w)) = v)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.check Tutil.i64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different streams" false (Rng.next64 a = Rng.next64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 9L in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 5L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted;
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 50 Fun.id)

let test_split_independent () =
  let parent = Rng.create 11L in
  let child = Rng.split parent in
  Alcotest.(check bool) "distinct" false (Rng.next64 parent = Rng.next64 child)

(* --- backoff --------------------------------------------------------------- *)

let backoff_policy =
  { Backoff.base_s = 0.05; factor = 2.0; max_s = 0.4; jitter = 0.0 }

let test_backoff_schedule () =
  Alcotest.(check (float 0.0)) "attempt 0 never waits" 0.0
    (Backoff.delay backoff_policy ~attempt:0);
  Alcotest.(check (float 1e-9)) "attempt 1 waits base" 0.05
    (Backoff.delay backoff_policy ~attempt:1);
  Alcotest.(check (float 1e-9)) "attempt 2 doubles" 0.1
    (Backoff.delay backoff_policy ~attempt:2);
  Alcotest.(check (float 1e-9)) "attempt 3 doubles again" 0.2
    (Backoff.delay backoff_policy ~attempt:3);
  (* The raw schedule would be 0.4, 0.8, 1.6, ... — the ceiling caps
     every further delay, out to attempt counts that would overflow the
     raw exponential. *)
  List.iter
    (fun attempt ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "attempt %d capped at max_s" attempt)
        backoff_policy.Backoff.max_s
        (Backoff.delay backoff_policy ~attempt))
    [ 4; 5; 10; 60; 1000 ]

let test_backoff_jitter_capped_and_deterministic () =
  let policy = { backoff_policy with jitter = 0.25 } in
  let draw seed =
    let rng = Rng.create seed in
    List.init 12 (fun i -> Backoff.delay ~rng policy ~attempt:(i + 1))
  in
  Alcotest.(check (list (float 0.0))) "same seed, same delay sequence"
    (draw 7L) (draw 7L);
  Alcotest.(check bool) "different seed perturbs the sequence" true
    (draw 7L <> draw 8L);
  List.iter
    (fun d ->
      Alcotest.(check bool) "jittered delay capped at max_s" true
        (d >= 0.0 && d <= policy.Backoff.max_s))
    (draw 7L)

let test_backoff_disabled_draws_nothing () =
  (* A zero-base policy must not advance the caller's rng: supervised
     runs with backoff disabled keep bit-identical seed streams. *)
  let rng = Rng.create 3L and untouched = Rng.create 3L in
  List.iter
    (fun attempt ->
      Alcotest.(check (float 0.0)) "disabled backoff never waits" 0.0
        (Backoff.delay ~rng Backoff.none ~attempt))
    [ 0; 1; 2; 3; 8 ];
  Alcotest.(check bool) "rng stream unperturbed" true
    (Rng.next64 rng = Rng.next64 untouched)

let suite =
  [
    Alcotest.test_case "writer/reader scalars" `Quick test_writer_reader_scalars;
    Alcotest.test_case "little endian layout" `Quick test_little_endian;
    Alcotest.test_case "truncated read raises" `Quick test_truncated;
    Alcotest.test_case "pad_to" `Quick test_pad_to;
    Alcotest.test_case "seek and bytes" `Quick test_seek_and_bytes;
    Alcotest.test_case "i32 range check" `Quick test_i32_range;
    QCheck_alcotest.to_alcotest prop_u64_roundtrip;
    QCheck_alcotest.to_alcotest prop_i32_roundtrip;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "backoff schedule caps at ceiling" `Quick
      test_backoff_schedule;
    Alcotest.test_case "backoff jitter capped + same-seed deterministic"
      `Quick test_backoff_jitter_capped_and_deterministic;
    Alcotest.test_case "disabled backoff draws nothing" `Quick
      test_backoff_disabled_draws_nothing;
  ]
