(* Tests for the ELF64 image writer/reader. *)

open Elfie_elf

let sample () =
  {
    Image.exec = true;
    entry = 0x40_0000L;
    sections =
      [
        Image.section ~executable:true ~name:".text" ~addr:0x40_0000L
          (Bytes.of_string "\x14\x11");
        Image.section ~writable:true ~name:".data" ~addr:0x60_0000L
          (Bytes.of_string "hello");
        Image.section ~alloc:false ~name:".stack.0x7fff" ~addr:0x7fff_0000L
          (Bytes.make 64 'S');
      ];
    symbols =
      [
        { Image.sym_name = "_start"; value = 0x40_0000L; func = true };
        { Image.sym_name = ".t0.rax"; value = 42L; func = false };
      ];
  }

let test_roundtrip () =
  let img = sample () in
  let img' = Image.read (Image.write img) in
  Alcotest.(check bool) "exec" img.Image.exec img'.Image.exec;
  Alcotest.check Tutil.i64 "entry" img.Image.entry img'.Image.entry;
  Alcotest.(check int) "sections" 3 (List.length img'.Image.sections);
  Alcotest.(check int) "symbols" 2 (List.length img'.Image.symbols);
  List.iter2
    (fun (a : Image.section) (b : Image.section) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.check Tutil.i64 "addr" a.addr b.addr;
      Alcotest.(check bool) "alloc" a.alloc b.alloc;
      Alcotest.(check bool) "writable" a.writable b.writable;
      Alcotest.(check bool) "executable" a.executable b.executable;
      Alcotest.(check bytes) "data" a.data b.data)
    img.Image.sections img'.Image.sections;
  List.iter2
    (fun (a : Image.symbol) (b : Image.symbol) ->
      Alcotest.(check string) "sym name" a.sym_name b.sym_name;
      Alcotest.check Tutil.i64 "sym value" a.value b.value;
      Alcotest.(check bool) "func" a.func b.func)
    img.Image.symbols img'.Image.symbols

let test_magic_bytes () =
  let b = Image.write (sample ()) in
  Alcotest.(check string) "ELF magic" "\x7fELF" (Bytes.sub_string b 0 4);
  Alcotest.(check int) "class 64" 2 (Char.code (Bytes.get b 4));
  Alcotest.(check int) "little endian" 1 (Char.code (Bytes.get b 5))

let test_loadable_excludes_non_alloc () =
  let segs = Image.loadable (sample ()) in
  Alcotest.(check int) "only alloc sections load" 2 (List.length segs);
  let addrs = List.map (fun (a, _, _) -> a) segs in
  Alcotest.(check bool) "stack section not mapped" false
    (List.mem 0x7fff_0000L addrs)

let test_find () =
  let img = sample () in
  Alcotest.(check bool) "find .data" true (Image.find_section img ".data" <> None);
  Alcotest.(check bool) "find missing" true (Image.find_section img ".bss" = None);
  Alcotest.(check (option Tutil.i64)) "symbol" (Some 42L)
    (Image.find_symbol img ".t0.rax")

let check_bad name mutate =
  let b = Image.write (sample ()) in
  mutate b;
  Alcotest.test_case name `Quick (fun () ->
      match Image.read b with
      | _ -> Alcotest.fail "expected Bad_elf"
      | exception Image.Bad_elf _ -> ())

let test_truncated_file () =
  let b = Image.write (sample ()) in
  match Image.read (Bytes.sub b 0 40) with
  | _ -> Alcotest.fail "expected Bad_elf"
  | exception Image.Bad_elf _ -> ()

let test_object_mode () =
  let img = { (sample ()) with Image.exec = false } in
  let img' = Image.read (Image.write img) in
  Alcotest.(check bool) "rel type" false img'.Image.exec

let prop_roundtrip =
  let section_gen =
    let open QCheck.Gen in
    let* name = map (Printf.sprintf ".s%d") (int_range 0 1000) in
    let* addr = map Int64.of_int (int_range 0 0x7fff_ffff) in
    let* len = int_range 0 256 in
    let* alloc = bool in
    let* writable = bool in
    let* executable = bool in
    let* byte = int_range 0 255 in
    return
      (Image.section ~alloc ~writable ~executable ~name ~addr
         (Bytes.make len (Char.chr byte)))
  in
  let image_gen =
    let open QCheck.Gen in
    let* sections = list_size (int_range 0 8) section_gen in
    let* symbols =
      list_size (int_range 0 8)
        (let* name = map (Printf.sprintf "sym%d") (int_range 0 100) in
         let* value = map Int64.of_int (int_range 0 1_000_000) in
         let* func = bool in
         return { Image.sym_name = name; value; func })
    in
    let* entry = map Int64.of_int (int_range 0 0xffff) in
    (* Section names must be distinct for a faithful roundtrip check. *)
    let names = List.mapi (fun i s -> { s with Image.name = Printf.sprintf ".s%d" i }) sections in
    return { Image.exec = true; entry; sections = names; symbols }
  in
  QCheck.Test.make ~name:"elf image roundtrip (random images)" ~count:200
    (QCheck.make image_gen) (fun img ->
      let img' = Image.read (Image.write img) in
      img' = img)

(* Robustness: byte-level corruption of a valid image must either parse
   or raise Bad_elf — never any other exception. *)
let prop_reader_total =
  let mutation_gen =
    QCheck.Gen.(list_size (int_range 1 8) (pair (int_range 0 10_000) (int_range 0 255)))
  in
  QCheck.Test.make ~name:"reader is total on corrupted images" ~count:500
    (QCheck.make mutation_gen) (fun mutations ->
      let b = Image.write (sample ()) in
      List.iter
        (fun (off, v) ->
          if off < Bytes.length b then Bytes.set b off (Char.chr v))
        mutations;
      match Image.read b with
      | _ -> true
      | exception Image.Bad_elf _ -> true
      | exception _ -> false)

let prop_reader_total_truncation =
  QCheck.Test.make ~name:"reader is total on truncated images" ~count:200
    QCheck.(int_range 0 4096) (fun len ->
      let b = Image.write (sample ()) in
      let b = Bytes.sub b 0 (min len (Bytes.length b)) in
      match Image.read b with
      | _ -> true
      | exception Image.Bad_elf _ -> true
      | exception _ -> false)

(* Rejections through the Result boundary carry a structured diagnostic:
   the caller's artifact label and a non-empty message, never a bare
   exception. *)
let prop_diagnostics_structured =
  let mutation_gen =
    QCheck.Gen.(list_size (int_range 1 8) (pair (int_range 0 10_000) (int_range 0 255)))
  in
  QCheck.Test.make ~name:"corrupted images yield structured diagnostics"
    ~count:300 (QCheck.make mutation_gen) (fun mutations ->
      let b = Image.write (sample ()) in
      List.iter
        (fun (off, v) ->
          if off < Bytes.length b then Bytes.set b off (Char.chr v))
        mutations;
      match Image.read_result ~artifact:"fuzzed.elfie" b with
      | Ok _ -> true
      | Error d ->
          d.Elfie_util.Diag.artifact = "fuzzed.elfie"
          && String.length d.Elfie_util.Diag.message > 0
      | exception e ->
          QCheck.Test.fail_reportf "escaped: %s" (Printexc.to_string e))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    QCheck_alcotest.to_alcotest prop_reader_total;
    QCheck_alcotest.to_alcotest prop_reader_total_truncation;
    QCheck_alcotest.to_alcotest prop_diagnostics_structured;
    Alcotest.test_case "magic bytes" `Quick test_magic_bytes;
    Alcotest.test_case "loadable excludes non-alloc" `Quick
      test_loadable_excludes_non_alloc;
    Alcotest.test_case "find section/symbol" `Quick test_find;
    Alcotest.test_case "truncated file" `Quick test_truncated_file;
    Alcotest.test_case "object mode" `Quick test_object_mode;
    check_bad "bad magic" (fun b -> Bytes.set b 0 'X');
    check_bad "bad class" (fun b -> Bytes.set b 4 '\x01');
    check_bad "bad endianness" (fun b -> Bytes.set b 5 '\x02');
    check_bad "bad machine" (fun b -> Bytes.set b 18 '\x00');
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
