(* Tests for k-means clustering and SimPoint region selection. *)

module Kmeans = Elfie_simpoint.Kmeans
module Simpoint = Elfie_simpoint.Simpoint

let rng () = Elfie_util.Rng.create 123L

(* Three well-separated blobs in 2D. *)
let blobs () =
  let r = rng () in
  let blob cx cy =
    List.init 20 (fun _ ->
        [| cx +. Elfie_util.Rng.float r; cy +. Elfie_util.Rng.float r |])
  in
  Array.of_list (blob 0.0 0.0 @ blob 10.0 0.0 @ blob 0.0 10.0)

let test_kmeans_recovers_blobs () =
  let points = blobs () in
  let result = Kmeans.cluster ~rng:(rng ()) ~k:3 points in
  (* Points within a blob share a label; across blobs labels differ. *)
  let label i = result.Kmeans.assignments.(i) in
  for b = 0 to 2 do
    for i = 1 to 19 do
      Alcotest.(check int) "blob is one cluster" (label (b * 20)) (label ((b * 20) + i))
    done
  done;
  Alcotest.(check bool) "distinct blobs distinct clusters" true
    (label 0 <> label 20 && label 20 <> label 40 && label 0 <> label 40)

let test_kmeans_best_picks_reasonable_k () =
  let result = Kmeans.best ~rng:(rng ()) ~max_k:10 (blobs ()) in
  Alcotest.(check bool) "k close to 3" true (result.Kmeans.k >= 2 && result.Kmeans.k <= 5)

let test_kmeans_k1 () =
  let result = Kmeans.cluster ~rng:(rng ()) ~k:1 (blobs ()) in
  Alcotest.(check bool) "all in cluster 0" true
    (Array.for_all (fun a -> a = 0) result.Kmeans.assignments)

let test_kmeans_k_clamped () =
  let points = [| [| 0.0 |]; [| 1.0 |] |] in
  let result = Kmeans.cluster ~rng:(rng ()) ~k:10 points in
  Alcotest.(check bool) "k clamped to n" true (result.Kmeans.k <= 2)

let test_kmeans_empty_input () =
  Alcotest.check_raises "no points" (Invalid_argument "Kmeans.cluster: no points")
    (fun () -> ignore (Kmeans.cluster ~rng:(rng ()) ~k:2 [||]))

let test_kmeans_inertia_decreases_with_k () =
  let points = blobs () in
  let i1 = (Kmeans.cluster ~rng:(rng ()) ~k:1 points).Kmeans.inertia in
  let i3 = (Kmeans.cluster ~rng:(rng ()) ~k:3 points).Kmeans.inertia in
  Alcotest.(check bool) "more clusters, less inertia" true (i3 < i1)

let prop_assignments_nearest =
  QCheck.Test.make ~name:"every point assigned to nearest centroid" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 4 40) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun pts ->
      let points = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      let r = Kmeans.cluster ~rng:(rng ()) ~k:3 points in
      Array.for_all
        (fun i ->
          let d c = Kmeans.sq_dist points.(i) r.Kmeans.centroids.(c) in
          let assigned = d r.Kmeans.assignments.(i) in
          List.for_all (fun c -> assigned <= d c +. 1e-9)
            (List.init r.Kmeans.k Fun.id))
        (Array.init (Array.length points) Fun.id))

(* --- pruned assign vs naive Lloyd's ---------------------------------------- *)

let random_points rng n dim =
  Array.init n (fun _ ->
      Array.init dim (fun _ -> Elfie_util.Rng.float rng *. 10.0))

let check_results_equal msg (a : Kmeans.result) (b : Kmeans.result) =
  Alcotest.(check int) (msg ^ ": k") a.Kmeans.k b.Kmeans.k;
  Alcotest.(check bool)
    (msg ^ ": assignments")
    true
    (a.Kmeans.assignments = b.Kmeans.assignments);
  Alcotest.(check bool)
    (msg ^ ": centroids")
    true
    (a.Kmeans.centroids = b.Kmeans.centroids);
  Alcotest.(check (float 0.0)) (msg ^ ": inertia") a.Kmeans.inertia b.Kmeans.inertia

let test_pruned_equals_naive_random () =
  let r = Elfie_util.Rng.create 5L in
  List.iter
    (fun (n, dim, k) ->
      let points = random_points r n dim in
      let a = Kmeans.cluster ~rng:(Elfie_util.Rng.create 11L) ~k points in
      let b = Kmeans.cluster_naive ~rng:(Elfie_util.Rng.create 11L) ~k points in
      check_results_equal (Printf.sprintf "n=%d dim=%d k=%d" n dim k) a b)
    [ (40, 2, 3); (100, 15, 8); (7, 3, 7); (64, 1, 5) ]

let test_pruned_equals_naive_duplicates () =
  (* Exact-tie adversary: duplicate points give coincident centroids and
     exact float ties, where only a strict prune condition keeps the
     pruned assign on the naive lowest-index tie-break. *)
  let dup =
    Array.concat
      [
        Array.make 20 [| 0.0; 0.0 |];
        Array.make 20 [| 4.0; 0.0 |];
        Array.make 20 [| 0.0; 4.0 |];
      ]
  in
  List.iter
    (fun k ->
      let a = Kmeans.cluster ~rng:(Elfie_util.Rng.create 17L) ~k dup in
      let b = Kmeans.cluster_naive ~rng:(Elfie_util.Rng.create 17L) ~k dup in
      check_results_equal (Printf.sprintf "duplicates k=%d" k) a b)
    [ 2; 3; 5; 7 ]

let test_pruned_equals_naive_empty_clusters () =
  (* More clusters than distinct values: every iteration leaves clusters
     empty, exercising the dedicated reseed stream on both variants. *)
  let points =
    Array.init 12 (fun i -> if i mod 2 = 0 then [| 1.0 |] else [| 9.0 |])
  in
  let a = Kmeans.cluster ~rng:(Elfie_util.Rng.create 23L) ~k:10 points in
  let b = Kmeans.cluster_naive ~rng:(Elfie_util.Rng.create 23L) ~k:10 points in
  check_results_equal "empty clusters k=10" a b;
  (* Deterministic: same seed, same result. *)
  let a' = Kmeans.cluster ~rng:(Elfie_util.Rng.create 23L) ~k:10 points in
  check_results_equal "reseed deterministic" a a'

let prop_pruned_equals_naive =
  QCheck.Test.make ~name:"pruned k-means = naive Lloyd's" ~count:50
    QCheck.(
      pair (int_range 1 8)
        (list_of_size (Gen.int_range 4 40)
           (pair (float_bound_exclusive 50.0) (float_bound_exclusive 50.0))))
    (fun (k, pts) ->
      let points = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      let a = Kmeans.cluster ~rng:(Elfie_util.Rng.create 3L) ~k points in
      let b = Kmeans.cluster_naive ~rng:(Elfie_util.Rng.create 3L) ~k points in
      a.Kmeans.assignments = b.Kmeans.assignments
      && a.Kmeans.centroids = b.Kmeans.centroids
      && a.Kmeans.inertia = b.Kmeans.inertia)

let test_best_jobs_invariant () =
  let points = random_points (Elfie_util.Rng.create 9L) 80 4 in
  let run jobs =
    Kmeans.best ~jobs ~rng:(Elfie_util.Rng.create 31L) ~max_k:20 points
  in
  check_results_equal "best at jobs 1 vs 4" (run 1) (run 4)

(* --- block-driven BBV vs the per-instruction oracle ------------------------ *)

let check_profiles_equal (a : Elfie_pin.Bbv.profile) (b : Elfie_pin.Bbv.profile)
    =
  Alcotest.check Tutil.i64 "total instructions" a.Elfie_pin.Bbv.total_instructions
    b.Elfie_pin.Bbv.total_instructions;
  Alcotest.(check int)
    "slice count"
    (List.length a.Elfie_pin.Bbv.slices)
    (List.length b.Elfie_pin.Bbv.slices);
  List.iter2
    (fun (x : Elfie_pin.Bbv.slice) (y : Elfie_pin.Bbv.slice) ->
      Alcotest.(check int) "slice index" x.Elfie_pin.Bbv.index y.Elfie_pin.Bbv.index;
      Alcotest.check Tutil.i64 "slice length" x.Elfie_pin.Bbv.instructions
        y.Elfie_pin.Bbv.instructions;
      Alcotest.(check bool)
        (Printf.sprintf "slice %d vectors identical" x.Elfie_pin.Bbv.index)
        true
        (x.Elfie_pin.Bbv.vector = y.Elfie_pin.Bbv.vector))
    a.Elfie_pin.Bbv.slices b.Elfie_pin.Bbv.slices

let check_equivalent ?max_ins spec ~slice_size =
  let p_block = Elfie_pin.Bbv.profile ?max_ins spec ~slice_size in
  let p_ins = Elfie_pin.Bbv.profile_per_ins ?max_ins spec ~slice_size in
  check_profiles_equal p_block p_ins;
  Alcotest.(check bool) "profile nonempty" true (p_block.Elfie_pin.Bbv.slices <> [])

let image_of_builder ?(writable_text = false) b =
  let open Elfie_isa in
  let base = 0x40_0000L in
  let prog = Builder.assemble b ~base in
  let code =
    Elfie_elf.Image.section ~executable:true ~writable:writable_text
      ~name:".text" ~addr:base prog.Builder.code
  in
  { Elfie_elf.Image.exec = true; entry = base; sections = [ code ]; symbols = [] }

(* A long loop-free run of ALU instructions ending in exit: one giant
   straight-line region, so slice boundaries always split blocks. *)
let straight_line_image () =
  let open Elfie_isa in
  let b = Builder.create () in
  for i = 0 to 299 do
    Builder.ins b (Insn.Mov_ri (Reg.RAX, Int64.of_int i));
    Builder.ins b (Insn.Alu_ri (Insn.Add, Reg.RBX, 3L))
  done;
  Builder.ins b (Insn.Mov_ri (Reg.RDI, 0L));
  Builder.ins b
    (Insn.Mov_ri (Reg.RAX, Int64.of_int Elfie_kernel.Abi.sys_exit_group));
  Builder.ins b Insn.Syscall;
  image_of_builder b

(* The hot-loop self-modifying-code shape from the perf-core suite: a
   subroutine's immediate byte is patched mid-run, invalidating its
   translated block, under a call-per-iteration loop. *)
let smc_image () =
  let open Elfie_isa in
  let b = Builder.create () in
  let f = Builder.new_label b in
  let loop = Builder.new_label b in
  let no_patch = Builder.new_label b in
  Builder.ins b (Insn.Mov_ri (Reg.RSI, 0L));
  Builder.ins b (Insn.Mov_ri (Reg.RDI, 400L));
  Builder.bind b loop;
  Builder.call b f;
  Builder.ins b (Insn.Alu_rr (Insn.Add, Reg.RSI, Reg.RBX));
  Builder.ins b (Insn.Alu_ri (Insn.Cmp, Reg.RDI, 200L));
  Builder.jcc b Insn.Ne no_patch;
  Builder.ins b (Insn.Mov_ri (Reg.RCX, 2L));
  Builder.mov_label b Reg.RDX f;
  Builder.ins b
    (Insn.Store
       ( Insn.W8,
         { Insn.base = Some Reg.RDX; index = None; scale = 1; disp = 2L },
         Reg.RCX ));
  Builder.bind b no_patch;
  Builder.ins b (Insn.Alu_ri (Insn.Sub, Reg.RDI, 1L));
  Builder.jcc b Insn.Ne loop;
  Builder.ins b (Insn.Mov_ri (Reg.RDI, 0L));
  Builder.ins b
    (Insn.Mov_ri (Reg.RAX, Int64.of_int Elfie_kernel.Abi.sys_exit_group));
  Builder.ins b Insn.Syscall;
  Builder.bind b f;
  Builder.ins b (Insn.Mov_ri (Reg.RBX, 1L));
  Builder.ins b Insn.Ret;
  image_of_builder ~writable_text:true b

let test_bbv_equiv_straight_line () =
  check_equivalent (Elfie_pin.Run.spec (straight_line_image ())) ~slice_size:100L

let test_bbv_equiv_branchy () =
  check_equivalent (Tutil.tiny_run_spec "bbveq") ~slice_size:7_919L

let test_bbv_equiv_threads () =
  check_equivalent
    (Tutil.tiny_run_spec ~threads:3 "bbveqmt")
    ~slice_size:5_000L ~max_ins:400_000L

let test_bbv_equiv_smc () =
  check_equivalent (Elfie_pin.Run.spec (smc_image ())) ~slice_size:123L

(* The split arithmetic on synthetic observer calls: slice boundaries
   inside a run, runs spanning several slices, interrupted blocks
   continuing their head, and thread ids past the initial table size. *)
let test_collector_synthetic () =
  let observe, finish = Elfie_pin.Bbv.collector ~slice_size:10L in
  observe ~tid:0 ~pcs:[| 0x100L; 0x104L |] ~n:2 ~ends_block:true;
  observe ~tid:20 ~pcs:[| 0x200L; 0x204L |] ~n:1 ~ends_block:false;
  (* tid 20 was interrupted mid-block: the next run keeps charging to
     0x200, and the slice fills exactly at its last instruction. *)
  observe ~tid:20 ~pcs:[| 0x204L |] ~n:7 ~ends_block:true;
  (* One run spanning two further slices. *)
  observe ~tid:0 ~pcs:[| 0x300L |] ~n:25 ~ends_block:true;
  let p = finish () in
  Alcotest.check Tutil.i64 "total" 35L p.Elfie_pin.Bbv.total_instructions;
  let vectors =
    List.map (fun (s : Elfie_pin.Bbv.slice) -> Array.to_list s.Elfie_pin.Bbv.vector)
      p.Elfie_pin.Bbv.slices
  in
  Alcotest.(check (list (list (pair int64 int))))
    "slice vectors"
    [
      [ (0x100L, 2); (0x200L, 8) ];
      [ (0x300L, 10) ];
      [ (0x300L, 10) ];
      [ (0x300L, 5) ];
    ]
    vectors

(* The default profile path must ride the hook-free translated-block
   core: drive the collector manually through the block observer (no
   pintool attached), check translation happened, and check Bbv.profile
   reproduces the same profile. *)
let test_profile_hook_free () =
  let spec = Tutil.tiny_run_spec "bbvhf" in
  let machine, _kernel = Elfie_pin.Run.instantiate spec in
  let observe, finish = Elfie_pin.Bbv.collector ~slice_size:10_000L in
  Elfie_machine.Machine.set_block_observer machine (Some observe);
  Elfie_machine.Machine.run ~max_ins:200_000L machine;
  Alcotest.(check bool) "blocks translated" true
    (Elfie_machine.Machine.translated_blocks machine > 0);
  let p = finish () in
  let q = Elfie_pin.Bbv.profile ~max_ins:200_000L spec ~slice_size:10_000L in
  check_profiles_equal p q

(* --- simpoint over a real profile ----------------------------------------- *)

let profile () =
  Elfie_pin.Bbv.profile (Tutil.tiny_run_spec "sp") ~slice_size:5_000L

let params =
  { Simpoint.default_params with slice_size = 5_000L; warmup = 10_000L; max_k = 10 }

let test_select_weights_sum () =
  let sel = Simpoint.select ~params (profile ()) in
  let sum = List.fold_left (fun a r -> a +. r.Simpoint.weight) 0.0 sel.Simpoint.regions in
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 sum

let test_select_finds_phases () =
  let sel = Simpoint.select ~params (profile ()) in
  (* The tiny benchmark alternates two kernels: at least 2 clusters. *)
  Alcotest.(check bool) "k >= 2" true (sel.Simpoint.k >= 2)

let test_regions_within_program () =
  let sel = Simpoint.select ~params (profile ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "start >= 0" true (r.Simpoint.start >= 0L);
      Alcotest.(check bool) "fits in program" true
        (Int64.add r.Simpoint.start r.Simpoint.length
        <= Int64.add sel.Simpoint.total_instructions params.Simpoint.slice_size))
    sel.Simpoint.regions

let test_alternates_ranked () =
  let sel = Simpoint.select ~params (profile ()) in
  Array.iter
    (fun alts ->
      List.iteri
        (fun i r -> Alcotest.(check int) "rank order" i r.Simpoint.rank)
        alts)
    sel.Simpoint.alternates

let test_warmup_clipped_at_start () =
  let sel = Simpoint.select ~params (profile ()) in
  List.iter
    (fun r ->
      Alcotest.(check bool) "warmup never exceeds configured" true
        (r.Simpoint.warmup_actual <= params.Simpoint.warmup);
      (* start + warmup lands exactly on the slice boundary *)
      Alcotest.check Tutil.i64 "slice boundary"
        (Int64.mul (Int64.of_int r.Simpoint.slice_index) params.Simpoint.slice_size)
        (Int64.add r.Simpoint.start r.Simpoint.warmup_actual))
    sel.Simpoint.regions

let test_full_warmup_preferred () =
  let sel = Simpoint.select ~params (profile ()) in
  (* If a cluster has any member past the warmup horizon, its rank-0
     representative must have full warmup. *)
  let warmup_slices = Int64.to_int (Int64.div params.Simpoint.warmup params.Simpoint.slice_size) in
  Array.iter
    (fun alts ->
      match alts with
      | [] -> ()
      | rep :: _ ->
          let has_late =
            List.exists (fun r -> r.Simpoint.slice_index >= warmup_slices) alts
          in
          if has_late then
            Alcotest.(check bool) "rep has full warmup" true
              (rep.Simpoint.slice_index >= warmup_slices))
    sel.Simpoint.alternates

let test_project_normalised_and_deterministic () =
  let p = profile () in
  let s = List.hd p.Elfie_pin.Bbv.slices in
  let v1 = Simpoint.project ~dims:15 s and v2 = Simpoint.project ~dims:15 s in
  Alcotest.(check bool) "deterministic" true (v1 = v2);
  Alcotest.(check int) "dims" 15 (Array.length v1);
  (* Normalised by slice length: components bounded by 1 in magnitude. *)
  Array.iter
    (fun x -> Alcotest.(check bool) "bounded" true (Float.abs x <= 1.0 +. 1e-9))
    v1

let test_predict_weighted_sum () =
  let sel = Simpoint.select ~params (profile ()) in
  Alcotest.(check (float 1e-9)) "constant metric" 1.0
    (Simpoint.predict sel (fun _ -> 1.0))

let test_project_profile_matches_project () =
  let p = profile () in
  let shared = Simpoint.project_profile ~dims:15 p in
  let each =
    Array.of_list (List.map (Simpoint.project ~dims:15) p.Elfie_pin.Bbv.slices)
  in
  Alcotest.(check bool) "shared sign rows bit-identical" true (shared = each)

let test_select_jobs_invariant () =
  let p = profile () in
  let a = Simpoint.select ~jobs:1 ~params p in
  let b = Simpoint.select ~jobs:4 ~params p in
  Alcotest.(check int) "same k" a.Simpoint.k b.Simpoint.k;
  Alcotest.(check bool) "same regions" true
    (a.Simpoint.regions = b.Simpoint.regions)

let suite =
  [
    Alcotest.test_case "kmeans recovers blobs" `Quick test_kmeans_recovers_blobs;
    Alcotest.test_case "kmeans best picks k" `Quick test_kmeans_best_picks_reasonable_k;
    Alcotest.test_case "kmeans k=1" `Quick test_kmeans_k1;
    Alcotest.test_case "kmeans k clamped" `Quick test_kmeans_k_clamped;
    Alcotest.test_case "kmeans empty input" `Quick test_kmeans_empty_input;
    Alcotest.test_case "inertia decreases with k" `Quick
      test_kmeans_inertia_decreases_with_k;
    QCheck_alcotest.to_alcotest prop_assignments_nearest;
    Alcotest.test_case "pruned = naive (random)" `Quick
      test_pruned_equals_naive_random;
    Alcotest.test_case "pruned = naive (duplicates)" `Quick
      test_pruned_equals_naive_duplicates;
    Alcotest.test_case "pruned = naive (empty clusters)" `Quick
      test_pruned_equals_naive_empty_clusters;
    QCheck_alcotest.to_alcotest prop_pruned_equals_naive;
    Alcotest.test_case "best jobs-invariant" `Quick test_best_jobs_invariant;
    Alcotest.test_case "bbv block = per-ins (straight-line)" `Quick
      test_bbv_equiv_straight_line;
    Alcotest.test_case "bbv block = per-ins (branchy)" `Quick
      test_bbv_equiv_branchy;
    Alcotest.test_case "bbv block = per-ins (threads)" `Quick
      test_bbv_equiv_threads;
    Alcotest.test_case "bbv block = per-ins (smc)" `Quick test_bbv_equiv_smc;
    Alcotest.test_case "collector slice splitting" `Quick
      test_collector_synthetic;
    Alcotest.test_case "profile is hook-free" `Quick test_profile_hook_free;
    Alcotest.test_case "weights sum to 1" `Quick test_select_weights_sum;
    Alcotest.test_case "finds phases" `Quick test_select_finds_phases;
    Alcotest.test_case "regions within program" `Quick test_regions_within_program;
    Alcotest.test_case "alternates ranked" `Quick test_alternates_ranked;
    Alcotest.test_case "warmup clipped at start" `Quick test_warmup_clipped_at_start;
    Alcotest.test_case "full-warmup preferred" `Quick test_full_warmup_preferred;
    Alcotest.test_case "projection" `Quick test_project_normalised_and_deterministic;
    Alcotest.test_case "predict weighted sum" `Quick test_predict_weighted_sum;
    Alcotest.test_case "project_profile = project" `Quick
      test_project_profile_matches_project;
    Alcotest.test_case "select jobs-invariant" `Quick test_select_jobs_invariant;
  ]
