(* Tests for the Vgdb debugger, exercising the paper's recommended ELFie
   debugging workflow. *)

module Debugger = Elfie_debug.Debugger
module Pinball2elf = Elfie_core.Pinball2elf

let elfie () =
  let pb = Tutil.tiny_pinball ~file_io:true "dbg" in
  let ss = Elfie_pin.Sysstate.analyze pb in
  let image =
    Pinball2elf.convert
      ~options:{ Pinball2elf.default_options with sysstate = Some ss }
      pb
  in
  (pb, image, fun fs -> Elfie_pin.Sysstate.install ss fs ~workdir:"/work")

let launch () =
  let pb, image, fs_init = elfie () in
  (pb, Debugger.launch ~fs_init ~cwd:"/work" image)

let test_break_on_elfie_on_start () =
  let _, dbg = launch () in
  (match Debugger.break_symbol dbg "elfie_on_start" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Debugger.continue_ dbg with
  | Debugger.Breakpoint { tid = 0; addr } ->
      Alcotest.(check (option string))
        "symbolized" (Some "elfie_on_start")
        (Option.map fst (Debugger.symbol_near dbg addr));
      (* At elfie_on_start all application pages are mapped (the paper's
         guarantee): the app code page is readable. *)
      Alcotest.(check bool) "app text mapped" true
        (Debugger.read_mem dbg 0x40_0000L 16 <> None)
  | other ->
      Alcotest.failf "unexpected stop: %s" (Format.asprintf "%a" Debugger.pp_stop other)

let test_break_on_application_symbol () =
  (* Symbolic debugging of application code via pass-through symbols. *)
  let _, dbg = launch () in
  (match Debugger.break_symbol dbg "outer_loop" with
  | Ok addr -> Alcotest.(check bool) "app address" true (addr >= 0x40_0000L)
  | Error e -> Alcotest.fail e);
  match Debugger.continue_ dbg with
  | Debugger.Breakpoint { addr; _ } ->
      Alcotest.(check (option string))
        "stopped at app symbol" (Some "outer_loop")
        (Option.map fst (Debugger.symbol_near dbg addr))
  | other ->
      Alcotest.failf "unexpected stop: %s" (Format.asprintf "%a" Debugger.pp_stop other)

let test_step_advances_one_instruction () =
  let _, dbg = launch () in
  let rip tid = (Debugger.registers dbg ~tid).Elfie_machine.Context.rip in
  let r0 = rip 0 in
  (match Debugger.step ~tid:0 dbg with
  | Debugger.Step_done 0 -> ()
  | other -> Alcotest.failf "step: %s" (Format.asprintf "%a" Debugger.pp_stop other));
  Alcotest.(check bool) "rip advanced" true (rip 0 <> r0)

let test_disassemble_at_entry () =
  let _, dbg = launch () in
  let entry = (Debugger.registers dbg ~tid:0).Elfie_machine.Context.rip in
  let listing = Debugger.disassemble dbg ~addr:entry ~count:5 in
  Alcotest.(check int) "five instructions" 5 (List.length listing);
  Alcotest.(check bool) "addresses ascend" true
    (let addrs = List.map fst listing in
     List.sort compare addrs = addrs)

let test_run_to_exit () =
  let _, dbg = launch () in
  match Debugger.continue_ dbg with
  | Debugger.All_exited ->
      List.iter
        (fun (_, state, _) ->
          Alcotest.(check string) "clean exit" "exited 0" state)
        (Debugger.thread_summary dbg)
  | other ->
      Alcotest.failf "expected exit, got %s" (Format.asprintf "%a" Debugger.pp_stop other)

let test_budget () =
  let _, dbg = launch () in
  match Debugger.continue_ ~budget:100L dbg with
  | Debugger.Budget_exhausted -> ()
  | other -> Alcotest.failf "expected budget stop, got %s" (Format.asprintf "%a" Debugger.pp_stop other)

let test_clear_breakpoint () =
  let _, dbg = launch () in
  (match Debugger.break_symbol dbg "thread_init" with
  | Ok addr ->
      Alcotest.(check int) "one bp" 1 (List.length (Debugger.breakpoints dbg));
      Debugger.clear_at dbg addr
  | Error e -> Alcotest.fail e);
  match Debugger.continue_ dbg with
  | Debugger.All_exited -> ()
  | other -> Alcotest.failf "bp not cleared: %s" (Format.asprintf "%a" Debugger.pp_stop other)

let test_unknown_symbol () =
  let _, dbg = launch () in
  match Debugger.break_symbol dbg "no_such_fn" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_registers_at_app_entry () =
  (* Break at the thread entry's landing point (the checkpointed RIP) and
     compare every GPR with the pinball's context: the startup code must
     have restored the full register state. *)
  let pb, dbg = launch () in
  let ctx0 = pb.Elfie_pinball.Pinball.contexts.(0) in
  Debugger.break_at dbg ctx0.Elfie_machine.Context.rip;
  match Debugger.continue_ dbg with
  | Debugger.Breakpoint { tid; addr } ->
      Alcotest.check Tutil.i64 "at checkpointed rip" ctx0.Elfie_machine.Context.rip addr;
      let regs = Debugger.registers dbg ~tid in
      List.iter
        (fun r ->
          Alcotest.check Tutil.i64
            (Elfie_isa.Reg.gpr_name r)
            (Elfie_machine.Context.get ctx0 r)
            (Elfie_machine.Context.get regs r))
        Elfie_isa.Reg.all_gprs;
      Alcotest.check Tutil.i64 "fs_base" ctx0.Elfie_machine.Context.fs_base
        regs.Elfie_machine.Context.fs_base;
      Alcotest.(check bytes) "xmm state"
        (Elfie_machine.Context.xsave ctx0)
        (Elfie_machine.Context.xsave regs)
  | other ->
      Alcotest.failf "unexpected stop: %s" (Format.asprintf "%a" Debugger.pp_stop other)

(* --- Time travel -------------------------------------------------------- *)

let steps_forward dbg n =
  for _ = 1 to n do
    ignore (Debugger.step dbg)
  done

(* Full-state equality of two debugged processes: every thread's context
   and retired count, and every mapped page. *)
let check_same_process msg a b =
  let ma = Debugger.machine a and mb = Debugger.machine b in
  let tha = Elfie_machine.Machine.threads ma
  and thb = Elfie_machine.Machine.threads mb in
  Alcotest.(check int) (msg ^ ": thread count") (List.length thb) (List.length tha);
  List.iter2
    (fun (ta : Elfie_machine.Machine.thread) (tb : Elfie_machine.Machine.thread) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: tid %d context" msg ta.Elfie_machine.Machine.tid)
        true
        (Elfie_machine.Context.equal ta.Elfie_machine.Machine.ctx
           tb.Elfie_machine.Machine.ctx);
      Alcotest.check Tutil.i64
        (Printf.sprintf "%s: tid %d retired" msg ta.Elfie_machine.Machine.tid)
        tb.Elfie_machine.Machine.retired ta.Elfie_machine.Machine.retired)
    tha thb;
  let pages m = Elfie_machine.Addr_space.pages (Elfie_machine.Machine.mem m) in
  Alcotest.(check bool)
    (msg ^ ": memory identical")
    true
    (List.equal
       (fun (x, p) (y, q) -> x = y && Bytes.equal p q)
       (pages ma) (pages mb))

let test_reverse_stepi_exact () =
  (* Forward 80, reverse 30: the reversed process must be bit-identical
     to a fresh one stepped forward 50 — registers, retired counts and
     every memory page. *)
  let _, image, fs_init = elfie () in
  let dbg = Debugger.launch ~fs_init ~cwd:"/work" ~snapshot_every:16 image in
  steps_forward dbg 80;
  Alcotest.(check int) "forward icount" 80 (Debugger.icount dbg);
  Alcotest.(check bool) "waypoints dropped" true (Debugger.waypoint_count dbg > 1);
  (match Debugger.reverse_stepi ~n:30 dbg with
  | Debugger.Step_done _ -> ()
  | other ->
      Alcotest.failf "reverse: %s" (Format.asprintf "%a" Debugger.pp_stop other));
  Alcotest.(check int) "reversed icount" 50 (Debugger.icount dbg);
  let fresh = Debugger.launch ~fs_init ~cwd:"/work" image in
  steps_forward fresh 50;
  check_same_process "reversed vs fresh" dbg fresh;
  (* Re-stepping forward off the reversed state stays on the recorded
     timeline. *)
  steps_forward dbg 30;
  steps_forward fresh 30;
  check_same_process "re-forwarded vs fresh" dbg fresh

let test_reverse_at_history_begin () =
  let _, image, fs_init = elfie () in
  let dbg = Debugger.launch ~fs_init ~cwd:"/work" image in
  (match Debugger.reverse_stepi dbg with
  | Debugger.History_begin -> ()
  | other ->
      Alcotest.failf "expected history begin, got %s"
        (Format.asprintf "%a" Debugger.pp_stop other));
  (* Reversing down to step 0 reports the boundary too. *)
  steps_forward dbg 5;
  match Debugger.reverse_stepi ~n:99 dbg with
  | Debugger.History_begin -> Alcotest.(check int) "at zero" 0 (Debugger.icount dbg)
  | other ->
      Alcotest.failf "expected history begin, got %s"
        (Format.asprintf "%a" Debugger.pp_stop other)

let test_reverse_continue_rewinds_to_breakpoint () =
  let _, image, fs_init = elfie () in
  let dbg = Debugger.launch ~fs_init ~cwd:"/work" ~snapshot_every:16 image in
  let bp =
    match Debugger.break_symbol dbg "outer_loop" with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  (match Debugger.continue_ dbg with
  | Debugger.Breakpoint _ -> ()
  | other ->
      Alcotest.failf "no forward hit: %s" (Format.asprintf "%a" Debugger.pp_stop other));
  let at_bp = Debugger.icount dbg in
  steps_forward dbg 40;
  match Debugger.reverse_continue dbg with
  | Debugger.Breakpoint { tid; addr } ->
      Alcotest.check Tutil.i64 "same breakpoint" bp addr;
      Alcotest.check Tutil.i64 "rip back on the breakpoint" bp
        (Debugger.registers dbg ~tid).Elfie_machine.Context.rip;
      Alcotest.(check bool) "strictly before current" true
        (Debugger.icount dbg >= at_bp && Debugger.icount dbg < at_bp + 40)
  | other ->
      Alcotest.failf "reverse-continue: %s"
        (Format.asprintf "%a" Debugger.pp_stop other)

let suite =
  [
    Alcotest.test_case "break on elfie_on_start" `Quick test_break_on_elfie_on_start;
    Alcotest.test_case "break on application symbol" `Quick
      test_break_on_application_symbol;
    Alcotest.test_case "step" `Quick test_step_advances_one_instruction;
    Alcotest.test_case "disassemble" `Quick test_disassemble_at_entry;
    Alcotest.test_case "run to exit" `Quick test_run_to_exit;
    Alcotest.test_case "budget" `Quick test_budget;
    Alcotest.test_case "clear breakpoint" `Quick test_clear_breakpoint;
    Alcotest.test_case "unknown symbol" `Quick test_unknown_symbol;
    Alcotest.test_case "registers restored at app entry" `Quick
      test_registers_at_app_entry;
    Alcotest.test_case "reverse-stepi is exact" `Quick test_reverse_stepi_exact;
    Alcotest.test_case "reverse at history begin" `Quick
      test_reverse_at_history_begin;
    Alcotest.test_case "reverse-continue rewinds to breakpoint" `Quick
      test_reverse_continue_rewinds_to_breakpoint;
  ]
