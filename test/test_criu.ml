(* Tests for the CRIU-style whole-process checkpoint baseline, and the
   paper's pinball/ELFie contrasts made executable. *)

module Criu = Elfie_criu.Criu

let run_to rs icount =
  let machine, kernel = Elfie_pin.Run.instantiate rs in
  Elfie_machine.Machine.run ~max_ins:icount machine;
  (machine, kernel)

let test_checkpoint_restore_continues () =
  (* Run half-way, checkpoint, restore, continue: the continuation must
     finish the program exactly as the uninterrupted run does. *)
  let rs = Tutil.tiny_run_spec ~file_io:true "criu" in
  let full = Elfie_pin.Run.native rs in
  let machine, kernel = run_to rs 40_000L in
  let cp = Criu.checkpoint machine kernel in
  (* Restore against a fresh copy of the filesystem (same machine). *)
  let fs = Elfie_kernel.Fs.copy (Elfie_kernel.Vkernel.fs kernel) in
  let machine', kernel' = Criu.restore cp fs in
  Elfie_machine.Machine.run machine';
  Alcotest.(check bool) "clean finish" true
    (Elfie_machine.Machine.all_exited_cleanly machine');
  Alcotest.(check string) "produces the program output" "done\n"
    (Elfie_kernel.Vkernel.stdout_contents kernel');
  Alcotest.check Tutil.i64 "instruction count completes the run"
    full.Elfie_pin.Run.retired
    (Int64.add 40_000L (Elfie_machine.Machine.total_retired machine'))

let test_checkpoint_restores_fd_positions () =
  (* The descriptor table survives exactly — the capability ELFies only
     approximate via SYSSTATE. *)
  let rs = Tutil.tiny_run_spec ~file_io:true "criufd" in
  let machine, kernel = run_to rs 40_000L in
  let cp = Criu.checkpoint machine kernel in
  let file_fds =
    List.filter_map
      (fun (fd, st) ->
        match st with
        | Elfie_kernel.Vkernel.Fd_file { path; pos } -> Some (fd, path, pos)
        | Elfie_kernel.Vkernel.Fd_console -> None)
      cp.Criu.fds
  in
  match file_fds with
  | [ (3, "/input.dat", pos) ] ->
      Alcotest.(check bool) "mid-file position" true (pos > 0)
  | _ -> Alcotest.fail "expected fd 3 open on /input.dat"

let test_serialization_roundtrip () =
  let rs = Tutil.tiny_run_spec "criuser" in
  let machine, kernel = run_to rs 30_000L in
  let cp = Criu.checkpoint machine kernel in
  Alcotest.(check bool) "roundtrip" true (Criu.equal cp (Criu.of_files (Criu.to_files cp)))

let test_restore_is_repeatable () =
  let rs = Tutil.tiny_run_spec "criurep" in
  let machine, kernel = run_to rs 30_000L in
  let cp = Criu.checkpoint machine kernel in
  let finish seed =
    let m, _ = Criu.restore ~seed cp (Elfie_kernel.Fs.create ()) in
    Elfie_machine.Machine.run m;
    Elfie_machine.Machine.total_retired m
  in
  (* ST continuation is deterministic regardless of seed. *)
  Alcotest.check Tutil.i64 "repeatable" (finish 1L) (finish 2L)

let test_mt_checkpoint () =
  let rs = Tutil.tiny_run_spec ~threads:4 "criumt" in
  let machine, kernel = run_to rs 100_000L in
  let cp = Criu.checkpoint machine kernel in
  Alcotest.(check int) "all threads captured" 4 (Array.length cp.Criu.contexts);
  let m, _ = Criu.restore cp (Elfie_kernel.Fs.create ()) in
  Elfie_machine.Machine.run m;
  Alcotest.(check bool) "MT continuation completes" true
    (Elfie_machine.Machine.all_exited_cleanly m)

let test_checkpoint_unperturbed_by_parent_writes () =
  (* The checkpoint aliases the process's pages copy-on-write instead of
     deep-copying them: letting the checkpointed process keep running
     (dirtying its memory) must not change what the checkpoint restores. *)
  let rs = Tutil.tiny_run_spec "criucow" in
  let machine, kernel = run_to rs 30_000L in
  let cp = Criu.checkpoint machine kernel in
  let reference = Criu.of_files (Criu.to_files cp) in
  (* Continue the parent well past the checkpoint — tens of thousands of
     stores land in pages the checkpoint references. *)
  Elfie_machine.Machine.run ~max_ins:60_000L machine;
  Alcotest.(check bool) "parent kept running" true
    (Elfie_machine.Machine.total_retired machine > 30_000L);
  Alcotest.(check bool) "checkpoint unperturbed by post-checkpoint writes" true
    (Criu.equal cp reference);
  (* And it still restores into a run that completes cleanly. *)
  let m, _ = Criu.restore cp (Elfie_kernel.Fs.create ()) in
  Elfie_machine.Machine.run m;
  Alcotest.(check bool) "restored continuation completes" true
    (Elfie_machine.Machine.all_exited_cleanly m)

let test_contrast_with_elfie_sizes () =
  (* The comparison the paper tabulates: both artifacts exist here, so
     measure them. The checkpoint holds the full process image; the
     ELFie additionally carries startup code and the non-allocatable
     stack copies, and it is directly executable. *)
  let rs = Tutil.tiny_run_spec "criusz" in
  let machine, kernel = run_to rs 40_000L in
  let cp = Criu.checkpoint machine kernel in
  let pb = Tutil.tiny_pinball ~start:40_000L ~length:30_000L "criusz" in
  let elfie_bytes =
    Bytes.length (Elfie_elf.Image.write (Elfie_core.Pinball2elf.convert pb))
  in
  Alcotest.(check bool) "checkpoint is substantial" true (Criu.image_bytes cp > 100_000);
  Alcotest.(check bool) "elfie is a real file too" true (elfie_bytes > 100_000);
  (* And the structural contrast: the checkpoint cannot be loaded as an
     executable. *)
  match Elfie_elf.Image.read (Bytes.of_string (List.assoc "image" (Criu.to_files cp))) with
  | _ -> Alcotest.fail "a checkpoint must not parse as ELF"
  | exception Elfie_elf.Image.Bad_elf _ -> ()

let suite =
  [
    Alcotest.test_case "checkpoint/restore continues" `Quick
      test_checkpoint_restore_continues;
    Alcotest.test_case "fd positions restored" `Quick
      test_checkpoint_restores_fd_positions;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "restore repeatable (ST)" `Quick test_restore_is_repeatable;
    Alcotest.test_case "MT checkpoint" `Quick test_mt_checkpoint;
    Alcotest.test_case "checkpoint unperturbed by parent writes" `Quick
      test_checkpoint_unperturbed_by_parent_writes;
    Alcotest.test_case "contrast with ELFie" `Quick test_contrast_with_elfie_sizes;
  ]
