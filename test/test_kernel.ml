(* Tests for the Vkernel: filesystem, system calls and the ELF loader. *)

open Elfie_isa
open Elfie_isa.Insn
open Elfie_kernel

(* --- fs -------------------------------------------------------------------- *)

let test_fs_normalize () =
  Alcotest.(check string) "relative" "/work/a.txt" (Fs.normalize ~cwd:"/work" "a.txt");
  Alcotest.(check string) "absolute" "/etc/x" (Fs.normalize ~cwd:"/work" "/etc/x");
  Alcotest.(check string) "dots and slashes" "/a/b"
    (Fs.normalize ~cwd:"/" "a//./b");
  Alcotest.(check string) "root" "/" (Fs.normalize ~cwd:"/" ".")

let test_fs_read_write_at () =
  let fs = Fs.create () in
  Fs.add_file fs ~path:"/f" "hello";
  Alcotest.(check (option string)) "read middle" (Some "ell")
    (Fs.read_at fs "/f" ~pos:1 ~len:3);
  Alcotest.(check (option string)) "read past end" (Some "")
    (Fs.read_at fs "/f" ~pos:10 ~len:3);
  Alcotest.(check (option int)) "write extends" (Some 3)
    (Fs.write_at fs "/f" ~pos:7 "xyz");
  Alcotest.(check (option int)) "new size" (Some 10) (Fs.file_size fs "/f");
  Alcotest.(check (option string)) "hole is zeroed" (Some "o\000\000x")
    (Fs.read_at fs "/f" ~pos:4 ~len:4);
  Alcotest.(check (option int)) "absent file" None (Fs.write_at fs "/g" ~pos:0 "a")

let test_fs_copy_isolated () =
  let fs = Fs.create () in
  Fs.add_file fs ~path:"/f" "abc";
  let c = Fs.copy fs in
  ignore (Fs.write_at fs "/f" ~pos:0 "zzz");
  Alcotest.(check (option string)) "copy unchanged" (Some "abc") (Fs.read_file c "/f")

(* --- syscalls -------------------------------------------------------------- *)

let mov_imm b r v = Builder.ins b (Mov_ri (r, v))

let syscall b nr =
  mov_imm b Reg.RAX (Int64.of_int nr);
  Builder.ins b Syscall

(* Program: open "in.txt", read 5 bytes, write them to stdout, lseek back,
   read again, write to a new file "out.txt", close everything, exit. *)
let file_program () =
  let b = Builder.create () in
  let path = Builder.new_label b in
  let out_path = Builder.new_label b in
  let buf = 0x60_0000L in
  (* open(in.txt, O_RDONLY) -> r12 *)
  Builder.mov_label b Reg.RDI path;
  mov_imm b Reg.RSI 0L;
  mov_imm b Reg.RDX 0L;
  syscall b Abi.sys_open;
  Builder.ins b (Mov_rr (Reg.R12, Reg.RAX));
  (* read(fd, buf, 5) *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI buf;
  mov_imm b Reg.RDX 5L;
  syscall b Abi.sys_read;
  (* write(1, buf, 5) *)
  mov_imm b Reg.RDI 1L;
  mov_imm b Reg.RSI buf;
  mov_imm b Reg.RDX 5L;
  syscall b Abi.sys_write;
  (* lseek(fd, 1, SEEK_SET); read 2; write to stdout *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI 1L;
  mov_imm b Reg.RDX (Int64.of_int Abi.seek_set);
  syscall b Abi.sys_lseek;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI buf;
  mov_imm b Reg.RDX 2L;
  syscall b Abi.sys_read;
  mov_imm b Reg.RDI 1L;
  mov_imm b Reg.RSI buf;
  mov_imm b Reg.RDX 2L;
  syscall b Abi.sys_write;
  (* out = open("out.txt", O_CREAT|O_WRONLY); write(out, buf, 2); close *)
  Builder.mov_label b Reg.RDI out_path;
  mov_imm b Reg.RSI (Int64.of_int (Abi.o_creat lor Abi.o_wronly));
  mov_imm b Reg.RDX 0o644L;
  syscall b Abi.sys_open;
  Builder.ins b (Mov_rr (Reg.R13, Reg.RAX));
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R13));
  mov_imm b Reg.RSI buf;
  mov_imm b Reg.RDX 2L;
  syscall b Abi.sys_write;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R13));
  syscall b Abi.sys_close;
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "in.txt\000");
  Builder.bind b out_path;
  Builder.raw b (Bytes.of_string "out.txt\000");
  b

let test_file_syscalls () =
  let image = Tutil.image_of ~data_section:(0x60_0000L, 4096) (file_program ()) in
  let machine, kernel =
    Tutil.run_image ~fs_init:(fun fs -> Fs.add_file fs ~path:"/in.txt" "abcdefgh") image
  in
  Alcotest.(check bool) "clean" true (Elfie_machine.Machine.all_exited_cleanly machine);
  Alcotest.(check string) "stdout" "abcdebc" (Vkernel.stdout_contents kernel);
  Alcotest.(check (option string)) "out.txt written" (Some "bc")
    (Fs.read_file (Vkernel.fs kernel) "/out.txt")

let test_enoent_and_ebadf () =
  let b = Builder.create () in
  let path = Builder.new_label b in
  Builder.mov_label b Reg.RDI path;
  mov_imm b Reg.RSI 0L;
  mov_imm b Reg.RDX 0L;
  syscall b Abi.sys_open;
  (* exit_group(-rax), i.e. the errno *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
  Builder.ins b (Neg Reg.RDI);
  syscall b Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "missing\000");
  let machine, _ = Tutil.run_image (Tutil.image_of b) in
  (match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited code ->
      Alcotest.(check int) "ENOENT" Abi.enoent code
  | _ -> Alcotest.fail "did not exit");
  let b = Builder.create () in
  mov_imm b Reg.RDI 55L;
  syscall b Abi.sys_close;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
  Builder.ins b (Neg Reg.RDI);
  syscall b Abi.sys_exit_group;
  let machine, _ = Tutil.run_image (Tutil.image_of b) in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited code -> Alcotest.(check int) "EBADF" Abi.ebadf code
  | _ -> Alcotest.fail "did not exit"

let test_brk_extends_heap () =
  let b = Builder.create () in
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_brk;
  Builder.ins b (Mov_rr (Reg.R12, Reg.RAX));
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
  Builder.ins b (Alu_ri (Add, Reg.RDI, 8192L));
  syscall b Abi.sys_brk;
  (* Touch the new heap memory. *)
  mov_imm b Reg.RAX 77L;
  Builder.ins b (Store (W64, mem_base Reg.R12, Reg.RAX));
  Builder.ins b (Load (W64, Reg.RDI, mem_base Reg.R12));
  syscall b Abi.sys_exit_group;
  let machine, kernel = Tutil.run_image (Tutil.image_of b) in
  (match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited 77 -> ()
  | s ->
      Alcotest.failf "heap write failed: %s"
        (match s with
        | Elfie_machine.Machine.Exited n -> string_of_int n
        | Faulted f -> Format.asprintf "%a" Elfie_machine.Machine.pp_fault f
        | Runnable -> "runnable"));
  Alcotest.(check bool) "brk recorded" true (Vkernel.brk kernel > 0L)

let test_mmap_munmap () =
  let b = Builder.create () in
  mov_imm b Reg.RDI 0L;
  mov_imm b Reg.RSI 8192L;
  mov_imm b Reg.RDX 3L;
  mov_imm b Reg.R10 0L;
  syscall b Abi.sys_mmap;
  Builder.ins b (Mov_rr (Reg.R12, Reg.RAX));
  mov_imm b Reg.RAX 5L;
  Builder.ins b (Store (W64, mem_base Reg.R12, Reg.RAX));
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI 8192L;
  syscall b Abi.sys_munmap;
  (* Touching it again must fault. *)
  Builder.ins b (Load (W64, Reg.RBX, mem_base Reg.R12));
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_exit_group;
  let machine, _ = Tutil.run_image (Tutil.image_of b) in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Faulted (Elfie_machine.Machine.Page_fault _) -> ()
  | _ -> Alcotest.fail "expected fault after munmap"

let test_clone_and_gettid () =
  (* Parent clones a child that stores its gettid and exits; the parent
     spin-waits for the child then exits with the stored value. *)
  let b = Builder.create () in
  let child = Builder.new_label b in
  let slot = 0x60_0000L in
  Builder.mov_label b Reg.RDI child;
  mov_imm b Reg.RSI 0x60_1000L (* child stack top inside data section *);
  syscall b Abi.sys_clone;
  Builder.ins b (Mov_rr (Reg.RBX, Reg.RAX));
  (* wait for thread_alive(child)=0 *)
  let wait = Builder.here b in
  Builder.ins b Pause;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RBX));
  syscall b Abi.sys_thread_alive;
  Builder.ins b (Alu_ri (Cmp, Reg.RAX, 0L));
  Builder.jcc b Ne wait;
  Builder.ins b (Load (W64, Reg.RDI, mem_abs slot));
  syscall b Abi.sys_exit_group;
  Builder.bind b child;
  syscall b Abi.sys_gettid;
  Builder.ins b (Store (W64, mem_abs slot, Reg.RAX));
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_exit;
  let image = Tutil.image_of ~data_section:(0x60_0000L, 8192) b in
  let machine, _ = Tutil.run_image ~max_ins:200_000L image in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited tid ->
      Alcotest.(check int) "child tid is 1" 1 tid
  | _ -> Alcotest.fail "parent did not exit"

let test_gettimeofday_and_time () =
  let b = Builder.create () in
  mov_imm b Reg.RDI 0x60_0000L;
  mov_imm b Reg.RSI 0L;
  syscall b Abi.sys_gettimeofday;
  Builder.ins b (Load (W64, Reg.RDI, mem_abs 0x60_0000L));
  Builder.ins b (Alu_ri (Sub, Reg.RDI, 1_600_000_000L));
  syscall b Abi.sys_exit_group;
  let image = Tutil.image_of ~data_section:(0x60_0000L, 4096) b in
  let machine, _ = Tutil.run_image image in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited secs ->
      Alcotest.(check bool) "epoch-ish" true (secs >= 0 && secs < 10)
  | _ -> Alcotest.fail "did not exit"

let test_dup2_redirect () =
  (* open a file, dup2 it onto fd 9, write through fd 9. *)
  let b = Builder.create () in
  let path = Builder.new_label b in
  Builder.mov_label b Reg.RDI path;
  mov_imm b Reg.RSI (Int64.of_int Abi.o_creat);
  mov_imm b Reg.RDX 0L;
  syscall b Abi.sys_open;
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RAX));
  mov_imm b Reg.RSI 9L;
  syscall b Abi.sys_dup2;
  mov_imm b Reg.RDI 9L;
  Builder.mov_label b Reg.RSI path;
  mov_imm b Reg.RDX 3L;
  syscall b Abi.sys_write;
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "log\000");
  let _, kernel = Tutil.run_image (Tutil.image_of b) in
  Alcotest.(check (option string)) "written via dup2" (Some "log")
    (Fs.read_file (Vkernel.fs kernel) "/log")

let test_recorder_captures () =
  let image = Tutil.image_of ~data_section:(0x60_0000L, 4096) (file_program ()) in
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 50; quantum_max = 50 })
  in
  let fs = Fs.create () in
  Fs.add_file fs ~path:"/in.txt" "abcdefgh";
  let kernel = Vkernel.create fs in
  Vkernel.install kernel machine;
  let records = ref [] in
  Vkernel.set_recorder kernel (Some (fun r -> records := r :: !records));
  let _ = Loader.load kernel machine image ~argv:[ "t" ] ~env:[] in
  Elfie_machine.Machine.run ~max_ins:100_000L machine;
  let records = List.rev !records in
  let opens = List.filter (fun r -> r.Vkernel.rec_nr = Abi.sys_open) records in
  Alcotest.(check int) "two opens" 2 (List.length opens);
  Alcotest.(check (option string)) "path decoded" (Some "/in.txt")
    (List.hd opens).Vkernel.rec_path;
  let reads = List.filter (fun r -> r.Vkernel.rec_nr = Abi.sys_read) records in
  (match reads with
  | first :: _ ->
      Alcotest.check Tutil.i64 "ret" 5L first.Vkernel.rec_ret;
      Alcotest.(check string) "kernel write payload" "abcde"
        (snd (List.hd first.Vkernel.rec_writes))
  | [] -> Alcotest.fail "no reads recorded");
  Alcotest.(check bool) "reexec flag on brk-like" true
    (Abi.reexecute_on_replay Abi.sys_brk);
  Alcotest.(check bool) "no reexec on read" false
    (Abi.reexecute_on_replay Abi.sys_read)

let test_lseek_whence () =
  (* lseek from END and CUR, verified via the returned offsets. *)
  let b = Builder.create () in
  let path = Builder.new_label b in
  Builder.mov_label b Reg.RDI path;
  mov_imm b Reg.RSI 0L;
  mov_imm b Reg.RDX 0L;
  syscall b Abi.sys_open;
  Builder.ins b (Mov_rr (Reg.R12, Reg.RAX));
  (* lseek(fd, -3, SEEK_END) -> 5 *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI (-3L);
  mov_imm b Reg.RDX (Int64.of_int Abi.seek_end);
  syscall b Abi.sys_lseek;
  Builder.ins b (Mov_rr (Reg.RBX, Reg.RAX));
  (* lseek(fd, 2, SEEK_CUR) -> 7 *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.R12));
  mov_imm b Reg.RSI 2L;
  mov_imm b Reg.RDX (Int64.of_int Abi.seek_cur);
  syscall b Abi.sys_lseek;
  (* exit(first*10 + second) = 57 *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RBX));
  Builder.ins b (Alu_rr (Imul, Reg.RDI, Reg.RDI)) |> ignore;
  (* recompute simply: rdi = rbx*10 + rax *)
  Builder.ins b (Mov_rr (Reg.RDI, Reg.RBX));
  mov_imm b Reg.RDX 10L;
  Builder.ins b (Alu_rr (Imul, Reg.RDI, Reg.RDX));
  Builder.ins b (Alu_rr (Add, Reg.RDI, Reg.RAX));
  syscall b Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "f\000");
  let machine, _ =
    Tutil.run_image ~fs_init:(fun fs -> Fs.add_file fs ~path:"/f" "12345678")
      (Tutil.image_of b)
  in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited 57 -> ()
  | Elfie_machine.Machine.Exited n -> Alcotest.failf "got %d, wanted 57" n
  | _ -> Alcotest.fail "did not exit"

let test_open_trunc () =
  let b = Builder.create () in
  let path = Builder.new_label b in
  Builder.mov_label b Reg.RDI path;
  mov_imm b Reg.RSI (Int64.of_int (Abi.o_creat lor Abi.o_trunc));
  mov_imm b Reg.RDX 0L;
  syscall b Abi.sys_open;
  mov_imm b Reg.RDI 0L;
  syscall b Abi.sys_exit_group;
  Builder.bind b path;
  Builder.raw b (Bytes.of_string "big\000");
  let _, kernel =
    Tutil.run_image ~fs_init:(fun fs -> Fs.add_file fs ~path:"/big" "contents")
      (Tutil.image_of b)
  in
  Alcotest.(check (option string)) "truncated" (Some "")
    (Fs.read_file (Vkernel.fs kernel) "/big")

let test_getrandom_seeded () =
  let prog () =
    let b = Builder.create () in
    mov_imm b Reg.RDI 0x60_0000L;
    mov_imm b Reg.RSI 8L;
    mov_imm b Reg.RDX 0L;
    syscall b Abi.sys_getrandom;
    Builder.ins b (Load (W64, Reg.RDI, mem_abs 0x60_0000L));
    Builder.ins b (Alu_ri (And, Reg.RDI, 0x7fL));
    syscall b Abi.sys_exit_group;
    Tutil.image_of ~data_section:(0x60_0000L, 4096) b
  in
  let status seed =
    let machine =
      Elfie_machine.Machine.create
        (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 })
    in
    let kernel = Vkernel.create ~config:{ Vkernel.default_config with seed } (Fs.create ()) in
    Vkernel.install kernel machine;
    let _ = Loader.load kernel machine (prog ()) ~argv:[ "t" ] ~env:[] in
    Elfie_machine.Machine.run machine;
    match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
    | Elfie_machine.Machine.Exited n -> n
    | _ -> -1
  in
  Alcotest.(check int) "same seed, same bytes" (status 5L) (status 5L);
  Alcotest.(check bool) "exit code plausible" true (status 5L >= 0)

let test_syscall_histogram () =
  let image = Tutil.image_of ~data_section:(0x60_0000L, 4096) (file_program ()) in
  let _, kernel =
    Tutil.run_image ~fs_init:(fun fs -> Fs.add_file fs ~path:"/in.txt" "abcdefgh") image
  in
  let hist = Vkernel.syscall_histogram kernel in
  Alcotest.(check (option int)) "two opens" (Some 2) (List.assoc_opt "open" hist);
  Alcotest.(check (option int)) "two reads" (Some 2) (List.assoc_opt "read" hist);
  Alcotest.(check bool) "counted" true (Vkernel.syscall_count kernel >= 8)

(* --- loader ----------------------------------------------------------------- *)

let test_loader_stack_contents () =
  (* argc at rsp, argv[0] string readable. *)
  let b = Builder.create () in
  Builder.ins b (Load (W64, Reg.RDI, mem_base Reg.RSP)) (* argc *);
  syscall b Abi.sys_exit_group;
  let machine, _ = Tutil.run_image (Tutil.image_of b) in
  match (Elfie_machine.Machine.thread machine 0).Elfie_machine.Machine.state with
  | Elfie_machine.Machine.Exited 1 -> ()
  | _ -> Alcotest.fail "argc not 1"

let test_loader_randomization_bounds () =
  let tops = ref [] in
  for seed = 1 to 20 do
    let machine =
      Elfie_machine.Machine.create
        (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 })
    in
    let kernel =
      Vkernel.create
        ~config:{ Vkernel.default_config with seed = Int64.of_int seed }
        (Fs.create ())
    in
    Vkernel.install kernel machine;
    let _, layout =
      Loader.load kernel machine (Tutil.image_of (Tutil.exit_program 0))
        ~argv:[ "t" ] ~env:[]
    in
    tops := layout.Loader.stack_top :: !tops
  done;
  let distinct = List.sort_uniq compare !tops in
  Alcotest.(check bool) "randomized" true (List.length distinct > 5);
  List.iter
    (fun t ->
      Alcotest.(check bool) "within window" true
        (Int64.sub 0x7fff_ffff_f000L t <= Int64.of_int (256 * 4096)))
    !tops

let test_loader_rejects_object () =
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 })
  in
  let kernel = Vkernel.create (Fs.create ()) in
  Vkernel.install kernel machine;
  let image = { (Tutil.image_of (Tutil.exit_program 0)) with Elfie_elf.Image.exec = false } in
  Alcotest.check_raises "not executable"
    (Loader.Exec_failed "not an executable image") (fun () ->
      ignore (Loader.load kernel machine image ~argv:[] ~env:[]))

let test_loader_stack_collision () =
  (* An image occupying the whole stack window forces the fatal case. *)
  let machine =
    Elfie_machine.Machine.create
      (Elfie_machine.Machine.Free { seed = 1L; quantum_min = 10; quantum_max = 10 })
  in
  let kernel = Vkernel.create (Fs.create ()) in
  Vkernel.install kernel machine;
  let blocker =
    Elfie_elf.Image.section ~writable:true ~name:".blocker"
      ~addr:(Int64.sub 0x7fff_ffff_f000L (Int64.of_int (600 * 4096)))
      (Bytes.make (600 * 4096) '\000')
  in
  let base_image = Tutil.image_of (Tutil.exit_program 0) in
  let image =
    { base_image with Elfie_elf.Image.sections = blocker :: base_image.sections }
  in
  (try
     ignore (Loader.load kernel machine image ~argv:[ "t" ] ~env:[]);
     Alcotest.fail "expected stack collision"
   with Loader.Stack_collision { reserved; needed; stack_top = _ } ->
     Alcotest.(check bool) "fewer pages than needed" true (reserved < needed));
  ()

let test_preopen_fd () =
  let fs = Fs.create () in
  Fs.add_file fs ~path:"/work/FD_5" "data";
  let kernel = Vkernel.create fs in
  Alcotest.(check bool) "preopen ok" true (Vkernel.preopen_fd kernel ~fd:5 ~path:"/work/FD_5");
  Alcotest.(check bool) "missing path" false
    (Vkernel.preopen_fd kernel ~fd:6 ~path:"/nope")

let suite =
  [
    Alcotest.test_case "fs normalize" `Quick test_fs_normalize;
    Alcotest.test_case "fs read/write at" `Quick test_fs_read_write_at;
    Alcotest.test_case "fs copy isolation" `Quick test_fs_copy_isolated;
    Alcotest.test_case "file syscalls end-to-end" `Quick test_file_syscalls;
    Alcotest.test_case "ENOENT and EBADF" `Quick test_enoent_and_ebadf;
    Alcotest.test_case "brk extends heap" `Quick test_brk_extends_heap;
    Alcotest.test_case "mmap/munmap" `Quick test_mmap_munmap;
    Alcotest.test_case "clone and gettid" `Quick test_clone_and_gettid;
    Alcotest.test_case "gettimeofday epoch" `Quick test_gettimeofday_and_time;
    Alcotest.test_case "dup2 redirect" `Quick test_dup2_redirect;
    Alcotest.test_case "syscall recorder" `Quick test_recorder_captures;
    Alcotest.test_case "lseek whence" `Quick test_lseek_whence;
    Alcotest.test_case "open O_TRUNC" `Quick test_open_trunc;
    Alcotest.test_case "getrandom seeded" `Quick test_getrandom_seeded;
    Alcotest.test_case "syscall histogram" `Quick test_syscall_histogram;
    Alcotest.test_case "loader stack argc" `Quick test_loader_stack_contents;
    Alcotest.test_case "loader randomization" `Quick test_loader_randomization_bounds;
    Alcotest.test_case "loader rejects object" `Quick test_loader_rejects_object;
    Alcotest.test_case "loader stack collision" `Quick test_loader_stack_collision;
    Alcotest.test_case "preopen fd" `Quick test_preopen_fd;
  ]
