let () =
  Alcotest.run "elfie"
    [ ("util", Test_util.suite); ("isa", Test_isa.suite);
      ("machine", Test_machine.suite); ("kernel", Test_kernel.suite);
      ("elf", Test_elf.suite); ("pinball", Test_pinball.suite);
      ("pin", Test_pin.suite); ("core", Test_core.suite);
      ("simpoint", Test_simpoint.suite); ("simulators", Test_sim.suite);
      ("workloads", Test_workloads.suite); ("harness", Test_harness.suite);
      ("asm", Test_asm.suite); ("debugger", Test_debug.suite);
      ("pintools", Test_tools.suite); ("criu", Test_criu.suite);
      ("check", Test_check.suite); ("supervise", Test_supervise.suite);
      ("obs", Test_obs.suite); ("perf", Test_perf_core.suite) ]
