(* The farm daemon suite (dune alias @daemon, also part of the default
   test run): wire-protocol framing (self-verifying frames reject torn,
   bit-flipped, skewed and oversized input as typed errors), an
   in-process daemon served end-to-end through the shard router,
   circuit-breaker state transitions under a dead endpoint, consistent-
   hash stability, and the full daemon fault-injection sweep — every
   injected failure must degrade to a local recompute with the correct
   value, never a crash, never a corrupt artifact. *)

module Store = Elfie_farm.Store
module Daemon = Elfie_farm.Daemon
module Shard = Elfie_farm.Shard
module Wire = Elfie_farm.Daemon.Wire
module Fault_inject = Elfie_check.Fault_inject

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* A socket path short enough for sockaddr_un. *)
let tmp_socket name = Filename.concat (tmp_dir "elfied") (name ^ ".sock")

(* --- wire protocol --------------------------------------------------------- *)

let check_decode what expected frame =
  let show = function
    | Ok (op, payload) ->
        Printf.sprintf "Ok (%s, %d bytes)" (Wire.opcode_name op)
          (String.length payload)
    | Error e -> Printf.sprintf "Error %s" (Wire.error_to_string e)
  in
  Alcotest.(check string) what (show expected) (show (Wire.decode frame))

let test_wire_roundtrip () =
  let payloads = [ ""; "x"; String.init 257 (fun i -> Char.chr (i land 0xff)) ]
  and ops = [ Wire.Get; Wire.Put; Wire.Stats; Wire.Health;
              Wire.R_hit; Wire.R_miss; Wire.R_ok; Wire.R_stats;
              Wire.R_health; Wire.R_err ] in
  List.iter
    (fun op ->
      List.iter
        (fun payload ->
          check_decode
            (Printf.sprintf "%s/%d roundtrips" (Wire.opcode_name op)
               (String.length payload))
            (Ok (op, payload))
            (Wire.encode op payload))
        payloads)
    ops

let test_wire_rejections () =
  let frame = Wire.encode Wire.R_hit "some artifact payload" in
  let patch off c =
    let b = Bytes.of_string frame in
    Bytes.set b off c;
    Bytes.to_string b
  in
  let flip off =
    patch off (Char.chr (Char.code frame.[off] lxor 0x01))
  in
  check_decode "payload bit flip -> checksum" (Error Wire.Bad_checksum)
    (flip Wire.header_bytes);
  check_decode "digest bit flip -> checksum" (Error Wire.Bad_checksum)
    (flip 10);
  check_decode "magic corruption" (Error Wire.Bad_magic) (patch 0 'X');
  check_decode "version skew" (Error Wire.Version_skew)
    (patch 4 (Char.chr (Wire.version + 1)));
  check_decode "unknown opcode" (Error Wire.Bad_opcode) (patch 5 '\x42');
  check_decode "truncated mid-header" (Error Wire.Torn)
    (String.sub frame 0 9);
  check_decode "truncated mid-payload" (Error Wire.Torn)
    (String.sub frame 0 (Wire.header_bytes + 3));
  check_decode "trailing garbage" (Error Wire.Torn) (frame ^ "!");
  check_decode "empty input" (Error Wire.Torn) "";
  (* Length field patched to something absurd: rejected before any
     payload allocation. *)
  let huge = Bytes.of_string frame in
  Bytes.set_int32_le huge 6 0x7fffffffl;
  check_decode "oversized length" (Error Wire.Too_large)
    (Bytes.to_string huge);
  let skewed = Wire.encode ~version:(Wire.version + 1) Wire.R_hit "p" in
  check_decode "encoder-side skew" (Error Wire.Version_skew) skewed

let test_stats_roundtrip () =
  let stats =
    { Daemon.st_bytes = 123456L;
      st_artifacts = [ ("bbv", 3); ("measurement", 12) ];
      st_quarantine_count = 2;
      st_quarantine_bytes = 99L;
      st_quarantine_reasons = [ ("checksum-mismatch", 2) ] }
  in
  match Daemon.parse_stats (Daemon.render_stats stats) with
  | None -> Alcotest.fail "rendered stats did not parse"
  | Some s ->
      Alcotest.(check int64) "bytes" stats.Daemon.st_bytes s.Daemon.st_bytes;
      Alcotest.(check (list (pair string int))) "artifacts"
        stats.Daemon.st_artifacts s.Daemon.st_artifacts;
      Alcotest.(check int) "quarantine count" 2 s.Daemon.st_quarantine_count;
      Alcotest.(check int64) "quarantine bytes" 99L
        s.Daemon.st_quarantine_bytes;
      Alcotest.(check (list (pair string int))) "quarantine reasons"
        stats.Daemon.st_quarantine_reasons s.Daemon.st_quarantine_reasons

(* --- daemon end to end ----------------------------------------------------- *)

let sweep_key n =
  Store.key Store.Measurement ~program:"daemon-test-program"
    [ ("case", string_of_int n) ]

let fetch_through router key payload =
  let computed = ref false in
  let v =
    Shard.get_or_compute_v router key ~format:1 ~encode:Fun.id
      ~decode:(fun s -> Ok s)
      (fun () ->
        computed := true;
        payload)
  in
  (v, !computed)

let test_daemon_end_to_end () =
  let socket = tmp_socket "e2e" in
  let shard_store = Store.open_store ~producer:"test" (tmp_dir "elfied_shard") in
  let daemon = Daemon.start ~store:shard_store ~socket_path:socket () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) @@ fun () ->
  (match Shard.ping socket with
  | Ok health ->
      Alcotest.(check bool) "health text" true
        (String.length health >= 2 && String.sub health 0 2 = "ok")
  | Error reason -> Alcotest.failf "ping failed: %s" reason);
  let payload = String.init 512 (fun i -> Char.chr (i * 7 land 0xff)) in
  let key = sweep_key 1 in
  (* First client: misses both tiers, computes, pushes to the shard. *)
  let local_a = Store.open_store ~producer:"test" (tmp_dir "elfied_a") in
  let ra = Shard.connect ~local:local_a ~endpoints:[ socket ] () in
  let va, computed_a =
    Fun.protect ~finally:(fun () -> Shard.close ra)
      (fun () -> fetch_through ra key payload)
  in
  Alcotest.(check bool) "cold fetch computes" true computed_a;
  Alcotest.(check string) "cold fetch value" payload va;
  (* Second client with a FRESH local store: the artifact can only come
     from the daemon — no computation, same bytes. *)
  let local_b = Store.open_store ~producer:"test" (tmp_dir "elfied_b") in
  let rb = Shard.connect ~local:local_b ~endpoints:[ socket ] () in
  let vb, computed_b =
    Fun.protect ~finally:(fun () -> Shard.close rb)
      (fun () -> fetch_through rb key payload)
  in
  Alcotest.(check bool) "warm fetch served remotely" false computed_b;
  Alcotest.(check string) "warm fetch value" payload vb;
  (* Remote write-through is visible in the daemon's stats. *)
  (match Shard.remote_stats socket with
  | Ok stats ->
      let measurements =
        try List.assoc "measurement" stats.Daemon.st_artifacts
        with Not_found -> 0
      in
      Alcotest.(check bool) "shard holds the artifact" true
        (measurements >= 1)
  | Error reason -> Alcotest.failf "stats failed: %s" reason);
  (* Remote hits land in the local store too: closing the router and
     reading purely locally still hits. *)
  let rb' = Shard.connect ~local:local_b ~endpoints:[] () in
  let vb', computed_b' =
    Fun.protect ~finally:(fun () -> Shard.close rb')
      (fun () -> fetch_through rb' key payload)
  in
  Alcotest.(check bool) "write-through cached locally" false computed_b';
  Alcotest.(check string) "local copy intact" payload vb'

(* --- breaker --------------------------------------------------------------- *)

let breaker_config =
  { Shard.default_config with
    deadline_s = 0.2; retries = 0;
    backoff = Elfie_util.Backoff.none;
    breaker_threshold = 2; breaker_cooldown_s = 0.15 }

let test_breaker_transitions () =
  let socket = tmp_socket "downshard" in
  (* Nothing listens on [socket]: every remote attempt fails fast. *)
  let local = Store.open_store ~producer:"test" (tmp_dir "elfied_brk") in
  let router =
    Shard.connect ~config:breaker_config ~local ~endpoints:[ socket ] ()
  in
  Fun.protect ~finally:(fun () -> Shard.close router) @@ fun () ->
  Alcotest.(check (option string)) "key owned by the only endpoint"
    (Some socket)
    (Shard.endpoint_for router (sweep_key 1));
  (match Shard.breaker router socket with
  | Some Shard.Closed -> ()
  | other ->
      Alcotest.failf "expected Closed, got %s"
        (match other with
        | None -> "unknown endpoint"
        | Some s -> Format.asprintf "%a" Shard.pp_breaker_state s));
  (* Each fetch fails remotely and degrades to recompute — never raises. *)
  for n = 1 to breaker_config.Shard.breaker_threshold do
    let v, computed = fetch_through router (sweep_key n) "payload" in
    Alcotest.(check bool) "degraded fetch computes" true computed;
    Alcotest.(check string) "degraded fetch value" "payload" v
  done;
  (match Shard.breaker router socket with
  | Some Shard.Open -> ()
  | _ -> Alcotest.fail "threshold failures did not open the breaker");
  (* Open circuit: requests still succeed (fail-fast + recompute). *)
  let v, computed = fetch_through router (sweep_key 99) "p99" in
  Alcotest.(check bool) "fail-fast fetch computes" true computed;
  Alcotest.(check string) "fail-fast fetch value" "p99" v;
  (* After the cooldown the breaker is willing to probe again. *)
  Unix.sleepf (breaker_config.Shard.breaker_cooldown_s +. 0.05);
  (match Shard.breaker router socket with
  | Some Shard.Half_open -> ()
  | _ -> Alcotest.fail "cooldown did not half-open the breaker");
  (* A successful probe closes it: bring a daemon up on that socket. *)
  let shard_store = Store.open_store ~producer:"test" (tmp_dir "elfied_up") in
  let daemon = Daemon.start ~store:shard_store ~socket_path:socket () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) @@ fun () ->
  let _, _ = fetch_through router (sweep_key 100) "p100" in
  match Shard.breaker router socket with
  | Some Shard.Closed -> ()
  | _ -> Alcotest.fail "successful probe did not close the breaker"

(* --- consistent hashing ---------------------------------------------------- *)

let test_hashing_stable () =
  let endpoints = [ "/tmp/sh-a.sock"; "/tmp/sh-b.sock"; "/tmp/sh-c.sock" ] in
  let local = Store.open_store ~producer:"test" (tmp_dir "elfied_hash") in
  let ra = Shard.connect ~local ~endpoints () in
  let rb = Shard.connect ~local ~endpoints () in
  Fun.protect
    ~finally:(fun () ->
      Shard.close ra;
      Shard.close rb)
  @@ fun () ->
  let keys = List.init 200 sweep_key in
  (* Same endpoints, same ring: assignment is a pure function of the
     key. *)
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "same ring, same owner"
        (Shard.endpoint_for ra k) (Shard.endpoint_for rb k))
    keys;
  (* All shards own a share (virtual nodes spread the ring). *)
  List.iter
    (fun ep ->
      let owned =
        List.length
          (List.filter (fun k -> Shard.endpoint_for ra k = Some ep) keys)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s owns a share" ep)
        true (owned > 0))
    endpoints

(* --- fault sweep ----------------------------------------------------------- *)

let test_daemon_fault_sweep () =
  let root = tmp_dir "elfied_sweep" in
  let report = Fault_inject.run_daemon ~root () in
  (match Fault_inject.daemon_failures report with
  | [] -> ()
  | failures ->
      List.iter
        (fun (c : Fault_inject.daemon_case) ->
          Format.eprintf "FAILED %s (%s): %s@."
            (Fault_inject.daemon_fault_name c.Fault_inject.dfault)
            c.Fault_inject.ddetail
            (match c.Fault_inject.doutcome with
            | Fault_inject.Store_served_corrupt m -> "CORRUPT " ^ m
            | Fault_inject.Store_crashed m -> "CRASH " ^ m
            | _ -> "?"))
        failures;
      Alcotest.failf "%d daemon fault case(s) failed" (List.length failures));
  Alcotest.(check int) "every case recovered or was benign"
    report.Fault_inject.d_total
    (report.Fault_inject.d_recovered + report.Fault_inject.d_benign);
  (* Only the stale-socket recovery serves through; every active
     tampering case must degrade to a recompute. *)
  Alcotest.(check bool) "tampering degrades to recompute" true
    (report.Fault_inject.d_recovered >= report.Fault_inject.d_total - 1);
  Format.printf "%a@." Fault_inject.pp_daemon_report report

let () =
  Alcotest.run "daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrips" `Quick test_wire_roundtrip;
          Alcotest.test_case "corrupt frames rejected" `Quick
            test_wire_rejections;
          Alcotest.test_case "stats roundtrip" `Quick test_stats_roundtrip;
        ] );
      ( "service",
        [
          Alcotest.test_case "serve end to end" `Quick test_daemon_end_to_end;
          Alcotest.test_case "breaker transitions" `Quick
            test_breaker_transitions;
          Alcotest.test_case "consistent hashing" `Quick test_hashing_stable;
          Alcotest.test_case "daemon fault sweep" `Slow
            test_daemon_fault_sweep;
        ] );
    ]
