(* The farm daemon suite (dune alias @daemon, also part of the default
   test run): wire-protocol framing (self-verifying frames reject torn,
   bit-flipped, skewed and oversized input as typed errors), an
   in-process daemon served end-to-end through the shard router,
   circuit-breaker state transitions under a dead endpoint, consistent-
   hash stability, and the full daemon fault-injection sweep — every
   injected failure must degrade to a local recompute with the correct
   value, never a crash, never a corrupt artifact. *)

module Store = Elfie_farm.Store
module Daemon = Elfie_farm.Daemon
module Shard = Elfie_farm.Shard
module Wire = Elfie_farm.Daemon.Wire
module Fleet = Elfie_farm.Fleet
module Fault_inject = Elfie_check.Fault_inject
module Trace = Elfie_obs.Trace
module Chrome = Elfie_obs.Chrome
module Json = Elfie_obs.Json

let tmp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* A socket path short enough for sockaddr_un. *)
let tmp_socket name = Filename.concat (tmp_dir "elfied") (name ^ ".sock")

(* --- wire protocol --------------------------------------------------------- *)

let check_decode what expected frame =
  let show = function
    | Ok (op, payload) ->
        Printf.sprintf "Ok (%s, %d bytes)" (Wire.opcode_name op)
          (String.length payload)
    | Error e -> Printf.sprintf "Error %s" (Wire.error_to_string e)
  in
  Alcotest.(check string) what (show expected) (show (Wire.decode frame))

let test_wire_roundtrip () =
  let payloads = [ ""; "x"; String.init 257 (fun i -> Char.chr (i land 0xff)) ]
  and ops = [ Wire.Get; Wire.Put; Wire.Stats; Wire.Health;
              Wire.Metrics_req; Wire.Events_req;
              Wire.R_hit; Wire.R_miss; Wire.R_ok; Wire.R_stats;
              Wire.R_health; Wire.R_metrics; Wire.R_events; Wire.R_err ] in
  List.iter
    (fun op ->
      List.iter
        (fun payload ->
          check_decode
            (Printf.sprintf "%s/%d roundtrips" (Wire.opcode_name op)
               (String.length payload))
            (Ok (op, payload))
            (Wire.encode op payload))
        payloads)
    ops

let test_wire_rejections () =
  let frame = Wire.encode Wire.R_hit "some artifact payload" in
  let patch off c =
    let b = Bytes.of_string frame in
    Bytes.set b off c;
    Bytes.to_string b
  in
  let flip off =
    patch off (Char.chr (Char.code frame.[off] lxor 0x01))
  in
  check_decode "payload bit flip -> checksum" (Error Wire.Bad_checksum)
    (flip Wire.header_bytes);
  check_decode "digest bit flip -> checksum" (Error Wire.Bad_checksum)
    (flip 10);
  check_decode "magic corruption" (Error Wire.Bad_magic) (patch 0 'X');
  check_decode "version skew" (Error Wire.Version_skew)
    (patch 4 (Char.chr (Wire.version + 1)));
  check_decode "unknown opcode" (Error Wire.Bad_opcode) (patch 5 '\x42');
  check_decode "truncated mid-header" (Error Wire.Torn)
    (String.sub frame 0 9);
  check_decode "truncated mid-payload" (Error Wire.Torn)
    (String.sub frame 0 (Wire.header_bytes + 3));
  check_decode "trailing garbage" (Error Wire.Torn) (frame ^ "!");
  check_decode "empty input" (Error Wire.Torn) "";
  (* Length field patched to something absurd: rejected before any
     payload allocation. *)
  let huge = Bytes.of_string frame in
  Bytes.set_int32_le huge 6 0x7fffffffl;
  check_decode "oversized length" (Error Wire.Too_large)
    (Bytes.to_string huge);
  let skewed = Wire.encode ~version:(Wire.version + 1) Wire.R_hit "p" in
  check_decode "encoder-side skew" (Error Wire.Version_skew) skewed

let test_wire_trace_context () =
  let payload = "kind\ndigest\n1" in
  let trace =
    { Wire.trace_id = 0x0123456789abcdefL; span_id = 0x7feeddccbbaa9988L }
  in
  let frame = Wire.encode ~trace Wire.Get payload in
  (match Wire.decode_ctx frame with
  | Ok (Wire.Get, p, ctx) ->
      Alcotest.(check string) "payload intact" payload p;
      Alcotest.(check int64) "trace id echoes" trace.Wire.trace_id
        ctx.Wire.trace_id;
      Alcotest.(check int64) "span id echoes" trace.Wire.span_id
        ctx.Wire.span_id
  | Ok _ -> Alcotest.fail "wrong opcode out of decode_ctx"
  | Error e -> Alcotest.failf "decode_ctx failed: %s" (Wire.error_to_string e));
  (* The context-blind decode still verifies the digest over the
     context bytes. *)
  check_decode "ctx-blind decode" (Ok (Wire.Get, payload)) frame;
  let flip off =
    let b = Bytes.of_string frame in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
    Bytes.to_string b
  in
  check_decode "bit flip inside the context -> checksum"
    (Error Wire.Bad_checksum)
    (flip (Wire.header_bytes + 3));
  (* Version-1 peers send no context; decode tolerates them and yields
     the zero context. *)
  let v1 = Wire.encode ~version:1 Wire.Get payload in
  Alcotest.(check int) "context costs exactly ctx_bytes" Wire.ctx_bytes
    (String.length frame - String.length v1);
  (match Wire.decode_ctx v1 with
  | Ok (Wire.Get, p, ctx) ->
      Alcotest.(check string) "v1 payload intact" payload p;
      Alcotest.(check bool) "v1 decodes to the zero context" true
        (ctx = Wire.no_ctx)
  | Ok _ -> Alcotest.fail "wrong opcode out of v1 decode"
  | Error e -> Alcotest.failf "v1 frame rejected: %s" (Wire.error_to_string e));
  (* Omitting [trace] emits the zero context on the wire. *)
  match Wire.decode_ctx (Wire.encode Wire.Health "") with
  | Ok (Wire.Health, "", ctx) ->
      Alcotest.(check bool) "default context is zero" true (ctx = Wire.no_ctx)
  | _ -> Alcotest.fail "default-context frame did not roundtrip"

let test_stats_roundtrip () =
  let stats =
    { Daemon.st_bytes = 123456L;
      st_artifacts = [ ("bbv", 3); ("measurement", 12) ];
      st_quarantine_count = 2;
      st_quarantine_bytes = 99L;
      st_quarantine_reasons = [ ("checksum-mismatch", 2) ] }
  in
  match Daemon.parse_stats (Daemon.render_stats stats) with
  | None -> Alcotest.fail "rendered stats did not parse"
  | Some s ->
      Alcotest.(check int64) "bytes" stats.Daemon.st_bytes s.Daemon.st_bytes;
      Alcotest.(check (list (pair string int))) "artifacts"
        stats.Daemon.st_artifacts s.Daemon.st_artifacts;
      Alcotest.(check int) "quarantine count" 2 s.Daemon.st_quarantine_count;
      Alcotest.(check int64) "quarantine bytes" 99L
        s.Daemon.st_quarantine_bytes;
      Alcotest.(check (list (pair string int))) "quarantine reasons"
        stats.Daemon.st_quarantine_reasons s.Daemon.st_quarantine_reasons

(* --- daemon end to end ----------------------------------------------------- *)

let sweep_key n =
  Store.key Store.Measurement ~program:"daemon-test-program"
    [ ("case", string_of_int n) ]

let fetch_through router key payload =
  let computed = ref false in
  let v =
    Shard.get_or_compute_v router key ~format:1 ~encode:Fun.id
      ~decode:(fun s -> Ok s)
      (fun () ->
        computed := true;
        payload)
  in
  (v, !computed)

let test_daemon_end_to_end () =
  let socket = tmp_socket "e2e" in
  let shard_store = Store.open_store ~producer:"test" (tmp_dir "elfied_shard") in
  let daemon = Daemon.start ~store:shard_store ~socket_path:socket () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) @@ fun () ->
  (match Shard.ping socket with
  | Ok health ->
      Alcotest.(check bool) "health text" true
        (String.length health >= 2 && String.sub health 0 2 = "ok")
  | Error reason -> Alcotest.failf "ping failed: %s" reason);
  let payload = String.init 512 (fun i -> Char.chr (i * 7 land 0xff)) in
  let key = sweep_key 1 in
  (* First client: misses both tiers, computes, pushes to the shard. *)
  let local_a = Store.open_store ~producer:"test" (tmp_dir "elfied_a") in
  let ra = Shard.connect ~local:local_a ~endpoints:[ socket ] () in
  let va, computed_a =
    Fun.protect ~finally:(fun () -> Shard.close ra)
      (fun () -> fetch_through ra key payload)
  in
  Alcotest.(check bool) "cold fetch computes" true computed_a;
  Alcotest.(check string) "cold fetch value" payload va;
  (* Second client with a FRESH local store: the artifact can only come
     from the daemon — no computation, same bytes. *)
  let local_b = Store.open_store ~producer:"test" (tmp_dir "elfied_b") in
  let rb = Shard.connect ~local:local_b ~endpoints:[ socket ] () in
  let vb, computed_b =
    Fun.protect ~finally:(fun () -> Shard.close rb)
      (fun () -> fetch_through rb key payload)
  in
  Alcotest.(check bool) "warm fetch served remotely" false computed_b;
  Alcotest.(check string) "warm fetch value" payload vb;
  (* Remote write-through is visible in the daemon's stats. *)
  (match Shard.remote_stats socket with
  | Ok stats ->
      let measurements =
        try List.assoc "measurement" stats.Daemon.st_artifacts
        with Not_found -> 0
      in
      Alcotest.(check bool) "shard holds the artifact" true
        (measurements >= 1)
  | Error reason -> Alcotest.failf "stats failed: %s" reason);
  (* Remote hits land in the local store too: closing the router and
     reading purely locally still hits. *)
  let rb' = Shard.connect ~local:local_b ~endpoints:[] () in
  let vb', computed_b' =
    Fun.protect ~finally:(fun () -> Shard.close rb')
      (fun () -> fetch_through rb' key payload)
  in
  Alcotest.(check bool) "write-through cached locally" false computed_b';
  Alcotest.(check string) "local copy intact" payload vb'

(* --- cross-process trace correlation --------------------------------------- *)

let json_member k j = Json.member k j

let json_events j =
  match Option.bind (json_member "traceEvents" j) Json.to_list with
  | Some evs -> evs
  | None -> Alcotest.fail "merged trace has no traceEvents array"

let ev_name e = Option.bind (json_member "name" e) Json.to_str
let ev_pid e = Option.bind (json_member "pid" e) Json.to_float

let ev_attr e key =
  Option.bind (json_member "args" e) (fun args ->
      Option.bind (json_member key args) Json.to_str)

(* A real two-process fleet interaction: fork a daemon, drive one fetch
   through the shard router, have both sides write their own Chrome
   trace, merge, and verify the client request span and the daemon
   handler span share the trace ID on named per-process tracks. *)
let test_cross_process_trace_merge () =
  let dir = tmp_dir "elfied_xmerge" in
  let socket = Filename.concat dir "d.sock" in
  let daemon_trace = Filename.concat dir "daemon.trace.json" in
  let client_trace = Filename.concat dir "client.trace.json" in
  let stop_file = Filename.concat dir "stop" in
  Unix.mkdir (Filename.concat dir "shard") 0o755;
  Unix.mkdir (Filename.concat dir "local") 0o755;
  let trace_id = 0x5a5ace1dc0ffee42L in
  match Unix.fork () with
  | 0 ->
      (* Daemon process: serve until the parent drops the stop file,
         then export this process's trace and leave quietly. *)
      let rc =
        try
          Trace.reset ();
          Trace.set_process_label "elfied-serve-test";
          let store =
            Store.open_store ~producer:"test" (Filename.concat dir "shard")
          in
          let d = Daemon.start ~store ~socket_path:socket () in
          let deadline = Unix.gettimeofday () +. 30.0 in
          while
            (not (Sys.file_exists stop_file))
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.02
          done;
          Daemon.stop d;
          Trace.write_chrome daemon_trace;
          0
        with _ -> 1
      in
      Unix._exit rc
  | daemon_pid ->
      (* Wait for the daemon socket to come up. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec await () =
        match Shard.ping socket with
        | Ok _ -> ()
        | Error _ when Unix.gettimeofday () < deadline ->
            Unix.sleepf 0.05;
            await ()
        | Error reason -> Alcotest.failf "daemon never came up: %s" reason
      in
      await ();
      Trace.reset ();
      Trace.set_trace_id trace_id;
      Trace.set_process_label "elfied-client-test";
      let local =
        Store.open_store ~producer:"test" (Filename.concat dir "local")
      in
      let router = Shard.connect ~local ~endpoints:[ socket ] () in
      let v, _computed =
        Fun.protect
          ~finally:(fun () -> Shard.close router)
          (fun () -> fetch_through router (sweep_key 7) "traced payload")
      in
      Alcotest.(check string) "fetch through the daemon" "traced payload" v;
      Trace.write_chrome client_trace;
      close_out (open_out stop_file);
      let _, status = Unix.waitpid [] daemon_pid in
      Alcotest.(check bool) "daemon process exited cleanly" true
        (status = Unix.WEXITED 0);
      (* Merge both files and parse the result back. *)
      let merged =
        match Chrome.merge_paths [ client_trace; daemon_trace ] with
        | Ok m -> m
        | Error e -> Alcotest.failf "trace merge failed: %s" e
      in
      let j =
        match Json.parse merged with
        | Ok j -> j
        | Error e -> Alcotest.failf "merged trace is not JSON: %s" e
      in
      let evs = json_events j in
      let hex = Trace.hex_id trace_id in
      let tagged name =
        List.filter
          (fun e -> ev_name e = Some name && ev_attr e "trace_id" = Some hex)
          evs
      in
      let client_spans = tagged "daemon.client.request" in
      let handler_spans = tagged "daemon.request" in
      Alcotest.(check bool) "client request span carries the trace id" true
        (client_spans <> []);
      Alcotest.(check bool) "daemon handler span carries the trace id" true
        (handler_spans <> []);
      (* The two sides really are different processes... *)
      let pid_of spans =
        match List.filter_map ev_pid spans with
        | p :: _ -> int_of_float p
        | [] -> Alcotest.fail "span lost its pid"
      in
      let client_pid = pid_of client_spans
      and handler_pid = pid_of handler_spans in
      Alcotest.(check int) "client span on this process's track"
        (Unix.getpid ()) client_pid;
      Alcotest.(check int) "handler span on the daemon's track" daemon_pid
        handler_pid;
      (* ... and each one's track is named by process_name metadata. *)
      let track_name pid =
        List.find_map
          (fun e ->
            if
              ev_name e = Some "process_name"
              && ev_pid e = Some (float_of_int pid)
            then ev_attr e "name"
            else None)
          evs
      in
      Alcotest.(check (option string)) "client track named"
        (Some "elfied-client-test") (track_name client_pid);
      Alcotest.(check (option string)) "daemon track named"
        (Some "elfied-serve-test") (track_name handler_pid);
      (* Correlated request/handler spans quote the same span id. *)
      let span_ids spans = List.filter_map (fun e -> ev_attr e "span_id") spans in
      Alcotest.(check bool) "some client span id matched by a handler span"
        true
        (List.exists
           (fun id -> List.mem id (span_ids handler_spans))
           (span_ids client_spans))

(* --- fleet scrape (elfied top) ---------------------------------------------- *)

(* A fake pre-telemetry daemon: answers health with a version-1 frame
   and every other opcode with R_err, as an old binary would. *)
let start_legacy_listener socket =
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX socket);
  Unix.listen srv 8;
  let stop = ref false in
  let reply fd op payload =
    let frame = Wire.encode ~version:1 op payload in
    ignore (Unix.write_substring fd frame 0 (String.length frame))
  in
  let thread =
    Thread.create
      (fun () ->
        while not !stop do
          (* Poll-accept so shutdown never races a blocked accept. *)
          match Unix.select [ srv ] [] [] 0.1 with
          | exception Unix.Unix_error _ -> ()
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept srv with
              | exception _ -> ()
              | fd, _ ->
                  (try
                     let rec serve () =
                       match Wire.read_frame fd with
                       | Ok (Wire.Health, _) ->
                           reply fd Wire.R_health
                             "ok pid=424242 version=1 root=/legacy";
                           serve ()
                       | Ok _ ->
                           reply fd Wire.R_err "unsupported opcode";
                           serve ()
                       | Error _ -> ()
                     in
                     serve ()
                   with _ -> ());
                  (try Unix.close fd with Unix.Unix_error _ -> ()))
        done)
      ()
  in
  let shutdown () =
    stop := true;
    Thread.join thread;
    (try Unix.close srv with Unix.Unix_error _ -> ())
  in
  shutdown

let scrape_config =
  { Shard.default_config with
    deadline_s = 2.0; retries = 0; backoff = Elfie_util.Backoff.none }

let test_fleet_top_scrape () =
  let sock_a = tmp_socket "fleet_a" and sock_b = tmp_socket "fleet_b" in
  let sock_old = tmp_socket "fleet_old" in
  let sock_down = tmp_socket "fleet_down" in
  (* Nothing ever listens on [sock_down]. *)
  let store_a = Store.open_store ~producer:"test" (tmp_dir "elfied_fa") in
  let store_b = Store.open_store ~producer:"test" (tmp_dir "elfied_fb") in
  let da = Daemon.start ~store:store_a ~socket_path:sock_a () in
  let db = Daemon.start ~store:store_b ~socket_path:sock_b () in
  let stop_legacy = start_legacy_listener sock_old in
  Fun.protect
    ~finally:(fun () ->
      stop_legacy ();
      Daemon.stop da;
      Daemon.stop db)
  @@ fun () ->
  let router =
    Shard.monitor ~config:scrape_config
      ~endpoints:[ sock_a; sock_b; sock_old; sock_down ]
      ()
  in
  Fun.protect ~finally:(fun () -> Shard.close router) @@ fun () ->
  Alcotest.(check bool) "monitor router has no local tier" true
    (Shard.local router = None);
  let rows = Fleet.scrape_all router in
  Alcotest.(check int) "one row per endpoint" 4 (List.length rows);
  let row ep =
    match List.find_opt (fun r -> r.Fleet.r_endpoint = ep) rows with
    | Some r -> r
    | None -> Alcotest.failf "no row for %s" ep
  in
  List.iter
    (fun ep ->
      let r = row ep in
      (match r.Fleet.r_state with
      | Fleet.Up -> ()
      | st -> Alcotest.failf "%s not up: %s" ep (Fleet.state_to_string st));
      Alcotest.(check (option int)) "live daemon pid" (Some (Unix.getpid ()))
        r.Fleet.r_pid;
      Alcotest.(check (option int)) "live daemon wire version"
        (Some Wire.version) r.Fleet.r_version;
      Alcotest.(check bool) "uptime scraped" true (r.Fleet.r_uptime_s <> None);
      Alcotest.(check bool) "request counters scraped" true
        (r.Fleet.r_requests > 0.0);
      Alcotest.(check bool) "latency digest non-empty" true
        (r.Fleet.r_latency <> []);
      Alcotest.(check bool) "store stats scraped" true
        (r.Fleet.r_quarantine = Some 0))
    [ sock_a; sock_b ];
  (* The old daemon answers health but not telemetry: a partial row,
     with the health-line identity, never an exception. *)
  let old_row = row sock_old in
  (match old_row.Fleet.r_state with
  | Fleet.Partial _ -> ()
  | st ->
      Alcotest.failf "legacy endpoint should be partial, got %s"
        (Fleet.state_to_string st));
  Alcotest.(check (option int)) "legacy pid from health" (Some 424242)
    old_row.Fleet.r_pid;
  Alcotest.(check (option int)) "legacy version from health" (Some 1)
    old_row.Fleet.r_version;
  (* The dead endpoint is a down row, never an exception. *)
  (match (row sock_down).Fleet.r_state with
  | Fleet.Down _ -> ()
  | st ->
      Alcotest.failf "dead endpoint should be down, got %s"
        (Fleet.state_to_string st));
  (* The rendered table mentions every endpoint and the latency section. *)
  let table = Fleet.render rows in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    nl = 0 || go 0
  in
  List.iter
    (fun ep ->
      Alcotest.(check bool)
        (Printf.sprintf "table lists %s" (Filename.basename ep))
        true
        (contains table (Filename.basename ep)))
    [ sock_a; sock_b; sock_old; sock_down ];
  Alcotest.(check bool) "table has the latency section" true
    (contains table "request latency by opcode");
  (* Events scrape: every line of a live daemon's reply parses back as
     a structured log event. *)
  match Shard.scrape_events ~limit:64 router sock_a with
  | Error e -> Alcotest.failf "events scrape failed: %s" e
  | Ok jsonl ->
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
      in
      Alcotest.(check bool) "daemon reported events" true (lines <> []);
      List.iter
        (fun line ->
          if Elfie_obs.Log.parse_line line = None then
            Alcotest.failf "unparseable event line: %s" line)
        lines

(* --- breaker --------------------------------------------------------------- *)

let breaker_config =
  { Shard.default_config with
    deadline_s = 0.2; retries = 0;
    backoff = Elfie_util.Backoff.none;
    breaker_threshold = 2; breaker_cooldown_s = 0.15 }

let test_breaker_transitions () =
  let socket = tmp_socket "downshard" in
  (* Nothing listens on [socket]: every remote attempt fails fast. *)
  let local = Store.open_store ~producer:"test" (tmp_dir "elfied_brk") in
  let router =
    Shard.connect ~config:breaker_config ~local ~endpoints:[ socket ] ()
  in
  Fun.protect ~finally:(fun () -> Shard.close router) @@ fun () ->
  Alcotest.(check (option string)) "key owned by the only endpoint"
    (Some socket)
    (Shard.endpoint_for router (sweep_key 1));
  (match Shard.breaker router socket with
  | Some Shard.Closed -> ()
  | other ->
      Alcotest.failf "expected Closed, got %s"
        (match other with
        | None -> "unknown endpoint"
        | Some s -> Format.asprintf "%a" Shard.pp_breaker_state s));
  (* Each fetch fails remotely and degrades to recompute — never raises. *)
  for n = 1 to breaker_config.Shard.breaker_threshold do
    let v, computed = fetch_through router (sweep_key n) "payload" in
    Alcotest.(check bool) "degraded fetch computes" true computed;
    Alcotest.(check string) "degraded fetch value" "payload" v
  done;
  (match Shard.breaker router socket with
  | Some Shard.Open -> ()
  | _ -> Alcotest.fail "threshold failures did not open the breaker");
  (* Open circuit: requests still succeed (fail-fast + recompute). *)
  let v, computed = fetch_through router (sweep_key 99) "p99" in
  Alcotest.(check bool) "fail-fast fetch computes" true computed;
  Alcotest.(check string) "fail-fast fetch value" "p99" v;
  (* After the cooldown the breaker is willing to probe again. *)
  Unix.sleepf (breaker_config.Shard.breaker_cooldown_s +. 0.05);
  (match Shard.breaker router socket with
  | Some Shard.Half_open -> ()
  | _ -> Alcotest.fail "cooldown did not half-open the breaker");
  (* A successful probe closes it: bring a daemon up on that socket. *)
  let shard_store = Store.open_store ~producer:"test" (tmp_dir "elfied_up") in
  let daemon = Daemon.start ~store:shard_store ~socket_path:socket () in
  Fun.protect ~finally:(fun () -> Daemon.stop daemon) @@ fun () ->
  let _, _ = fetch_through router (sweep_key 100) "p100" in
  match Shard.breaker router socket with
  | Some Shard.Closed -> ()
  | _ -> Alcotest.fail "successful probe did not close the breaker"

(* --- consistent hashing ---------------------------------------------------- *)

let test_hashing_stable () =
  let endpoints = [ "/tmp/sh-a.sock"; "/tmp/sh-b.sock"; "/tmp/sh-c.sock" ] in
  let local = Store.open_store ~producer:"test" (tmp_dir "elfied_hash") in
  let ra = Shard.connect ~local ~endpoints () in
  let rb = Shard.connect ~local ~endpoints () in
  Fun.protect
    ~finally:(fun () ->
      Shard.close ra;
      Shard.close rb)
  @@ fun () ->
  let keys = List.init 200 sweep_key in
  (* Same endpoints, same ring: assignment is a pure function of the
     key. *)
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "same ring, same owner"
        (Shard.endpoint_for ra k) (Shard.endpoint_for rb k))
    keys;
  (* All shards own a share (virtual nodes spread the ring). *)
  List.iter
    (fun ep ->
      let owned =
        List.length
          (List.filter (fun k -> Shard.endpoint_for ra k = Some ep) keys)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s owns a share" ep)
        true (owned > 0))
    endpoints

(* --- fault sweep ----------------------------------------------------------- *)

let test_daemon_fault_sweep () =
  let root = tmp_dir "elfied_sweep" in
  let report = Fault_inject.run_daemon ~root () in
  (match Fault_inject.daemon_failures report with
  | [] -> ()
  | failures ->
      List.iter
        (fun (c : Fault_inject.daemon_case) ->
          Format.eprintf "FAILED %s (%s): %s flight=%s@."
            (Fault_inject.daemon_fault_name c.Fault_inject.dfault)
            c.Fault_inject.ddetail
            (match c.Fault_inject.doutcome with
            | Fault_inject.Store_served_corrupt m -> "CORRUPT " ^ m
            | Fault_inject.Store_crashed m -> "CRASH " ^ m
            | _ -> "?")
            (Fault_inject.flight_status_name c.Fault_inject.dflight))
        failures;
      Alcotest.failf "%d daemon fault case(s) failed" (List.length failures));
  (* Every degraded case left a parseable flight dump naming the
     failing request (daemon_failures already vetoes the bad ones; this
     pins the positive shape). *)
  List.iter
    (fun (c : Fault_inject.daemon_case) ->
      match c.Fault_inject.doutcome with
      | Fault_inject.Store_recovered -> (
          match c.Fault_inject.dflight with
          | Fault_inject.Flight_ok n ->
              Alcotest.(check bool)
                (Printf.sprintf "non-empty flight dump for %s"
                   c.Fault_inject.ddetail)
                true (n > 0)
          | st ->
              Alcotest.failf "case %s: flight dump %s" c.Fault_inject.ddetail
                (Fault_inject.flight_status_name st))
      | _ ->
          Alcotest.(check string)
            (Printf.sprintf "no dump owed by %s" c.Fault_inject.ddetail)
            "flight-not-expected"
            (Fault_inject.flight_status_name c.Fault_inject.dflight))
    report.Fault_inject.d_cases;
  Alcotest.(check int) "every case recovered or was benign"
    report.Fault_inject.d_total
    (report.Fault_inject.d_recovered + report.Fault_inject.d_benign);
  (* Only the stale-socket recovery serves through; every active
     tampering case must degrade to a recompute. *)
  Alcotest.(check bool) "tampering degrades to recompute" true
    (report.Fault_inject.d_recovered >= report.Fault_inject.d_total - 1);
  Format.printf "%a@." Fault_inject.pp_daemon_report report

let () =
  Alcotest.run "daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrips" `Quick test_wire_roundtrip;
          Alcotest.test_case "corrupt frames rejected" `Quick
            test_wire_rejections;
          Alcotest.test_case "trace context" `Quick test_wire_trace_context;
          Alcotest.test_case "stats roundtrip" `Quick test_stats_roundtrip;
        ] );
      ( "service",
        [
          Alcotest.test_case "serve end to end" `Quick test_daemon_end_to_end;
          Alcotest.test_case "cross-process trace merge" `Quick
            test_cross_process_trace_merge;
          Alcotest.test_case "fleet top scrape" `Quick test_fleet_top_scrape;
          Alcotest.test_case "breaker transitions" `Quick
            test_breaker_transitions;
          Alcotest.test_case "consistent hashing" `Quick test_hashing_stable;
          Alcotest.test_case "daemon fault sweep" `Slow
            test_daemon_fault_sweep;
        ] );
    ]
