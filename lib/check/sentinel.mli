(** Replay divergence sentinel.

    Replays a pinball and reports the program counter and instruction
    count of the first divergence from the recording as a
    {!Elfie_util.Diag.t} ([Divergence] code, artifact
    ["replay:<pinball-name>"]). An empty list means the replay was
    faithful.

    Two passes:
    - {!constrained}: schedule-enforced, syscall-injected replay — any
      divergence means the pinball's logs are internally inconsistent;
    - {!injectionless}: the paper's [-replay:injection 0] cross-check —
      free scheduling with native syscalls, mimicking ELFie execution;
      only the per-thread retired-instruction contract is checked. *)

val constrained : Elfie_pinball.Pinball.t -> Elfie_util.Diag.t list

val injectionless :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  Elfie_pinball.Pinball.t ->
  Elfie_util.Diag.t list

(** {!constrained} first; if it is clean, {!injectionless}. *)
val cross_check :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  Elfie_pinball.Pinball.t ->
  Elfie_util.Diag.t list
