(** Consistency validation for pinballs and ELFies.

    The readers ([Pinball.of_files], [Image.read]) reject structurally
    malformed artifacts; these validators go further and check that a
    well-formed artifact is {e internally consistent} — the conditions a
    trustworthy ELFie conversion depends on. Each check failure is one
    [Diag.t]; an empty list means the artifact passed.

    Checks performed on a pinball:
    - thread count agrees across register contexts, icounts and the
      per-thread syscall logs ([Thread_mismatch]);
    - region icounts are non-negative ([Count_out_of_range]);
    - the recorded schedule only references recorded threads, and its
      per-thread slice totals equal the recorded region icounts
      ([Icount_mismatch]);
    - the memory image is sorted and non-overlapping
      ([Segment_overlap]);
    - for fat pinballs: every thread's start PC and every carried
      symbol lands inside the image ([Entry_out_of_bounds],
      [Symbol_out_of_bounds]).

    Checks performed on an ELF image: distinct section names,
    power-of-two alignments, disjoint loadable segments, entry point in
    executable memory, function symbols inside loaded memory. *)

val pinball : Elfie_pinball.Pinball.t -> Elfie_util.Diag.t list

val elf : ?artifact:string -> Elfie_elf.Image.t -> Elfie_util.Diag.t list

(** Cross-checks between a pinball and the ELFie generated from it:
    one thread entry point per pinball thread, and every checkpointed
    page carried by some section. *)
val pinball_vs_elfie :
  Elfie_pinball.Pinball.t ->
  ?artifact:string ->
  Elfie_elf.Image.t ->
  Elfie_util.Diag.t list

(** Validate a pinball file set end to end: parse (reporting the
    reader's diagnostic on failure), then run {!pinball}, plus file-set
    level checks (orphan [N.reg] files beyond the declared thread
    count). *)
val file_set :
  ?dir:string ->
  name:string ->
  (string * string) list ->
  Elfie_util.Diag.t list
