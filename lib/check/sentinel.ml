module Pinball = Elfie_pinball.Pinball
module Replayer = Elfie_pin.Replayer
module Diag = Elfie_util.Diag

(* Turn a replay result into diagnostics. The artifact is the replay
   itself, not a file: "replay:<pinball>". *)
let diags_of_result ~artifact ~what (r : Replayer.result) =
  if r.matched_icounts && r.divergences = 0 then []
  else
    match r.first_divergence with
    | Some d ->
        [
          Diag.f ~artifact Diag.Divergence
            "%s diverged on thread %d at pc 0x%Lx after %Ld instructions: %s"
            what d.div_tid d.div_pc d.div_icount d.div_what;
        ]
    | None ->
        (* divergences > 0 but the recorder lost the first one — still a
           failure, just without a precise location. *)
        [
          Diag.f ~artifact Diag.Divergence
            "%s recorded %d syscall divergence(s)" what r.divergences;
        ]

let constrained (pb : Pinball.t) =
  let artifact = "replay:" ^ pb.name in
  match Replayer.replay ~mode:Replayer.Constrained pb with
  | r -> diags_of_result ~artifact ~what:"constrained replay" r
  | exception e ->
      [
        Diag.f ~artifact Diag.Divergence "constrained replay crashed: %s"
          (Printexc.to_string e);
      ]

let injectionless ?(seed = 7L) ?(fs_init = fun _ -> ()) (pb : Pinball.t) =
  let artifact = "replay:" ^ pb.name in
  match Replayer.replay ~mode:(Replayer.Injectionless { seed; fs_init }) pb with
  | r ->
      (* Injectionless replay schedules freely, so syscall-ordering noise
         is expected; only the icount contract matters — each thread must
         still retire exactly its recorded count. *)
      if r.matched_icounts then []
      else diags_of_result ~artifact ~what:"injection-less replay" r
  | exception e ->
      [
        Diag.f ~artifact Diag.Divergence "injection-less replay crashed: %s"
          (Printexc.to_string e);
      ]

let cross_check ?seed ?fs_init (pb : Pinball.t) =
  match constrained pb with
  | [] -> injectionless ?seed ?fs_init pb
  | ds -> ds
