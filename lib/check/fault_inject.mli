(** Fault-injection harness for artifact robustness.

    Systematically corrupts serialized artifacts — bit flips,
    truncation, deleted member files, overwritten magics, oversized
    count fields, zero-fill, member swaps — then feeds them to the
    readers and validators. The invariant under test: {e every} fault
    either parses to a valid artifact (the corruption was benign, e.g.
    a flipped bit inside page data) or produces a structured
    {!Elfie_util.Diag.t}; no fault may escape as a raw exception, hang,
    or oversized allocation. *)

type fault =
  | Bit_flip  (** one random bit anywhere in one member *)
  | Truncate  (** member cut at a random byte *)
  | Delete_member  (** member file removed from the set *)
  | Corrupt_magic  (** member's magic overwritten *)
  | Oversized_count  (** a count field set far beyond the member size *)
  | Zero_member  (** member content zero-filled, size preserved *)
  | Swap_members  (** two members' contents exchanged *)

val all_faults : fault list
val fault_name : fault -> string

type outcome =
  | Accepted  (** parsed and passed validation: corruption was benign *)
  | Diagnosed of Elfie_util.Diag.t  (** rejected with a diagnostic *)
  | Crashed of string  (** any other exception escaped — a harness bug *)

type case = { fault : fault; detail : string; outcome : outcome }

type report = {
  total : int;
  accepted : int;
  diagnosed : int;
  cases : case list;
}

(** Cases whose outcome was [Crashed]; a robust pipeline yields []. *)
val crashes : report -> case list

(** Serialize [pb] with [Pinball.to_files], corrupt the file set
    [iterations] times per fault class, and classify each attempt via
    [Pinball.of_files_result] + {!Validate.pinball}. Deterministic for a
    given [seed]. *)
val run_pinball :
  ?iterations:int -> ?seed:int64 -> Elfie_pinball.Pinball.t -> report

(** Same sweep over a serialized ELF image, classified via
    [Image.read_result] + {!Validate.elf}. *)
val run_elf : ?iterations:int -> ?seed:int64 -> Elfie_elf.Image.t -> report

(** {1 Artifact-store faults}

    Corruption sweep over the farm's content-addressed {!Elfie_farm.Store}.
    The invariant under test is stronger than the reader sweeps above:
    {e every} store fault must degrade to a cache miss — the corrupt
    file quarantined (moved aside, never deleted, recorded as a
    degradation) and the artifact recomputed — and the value served must
    be bit-identical to a fresh computation. No fault may crash, hang,
    or be served as-is with corrupted payload. *)

type store_fault =
  | Torn_write  (** the committed file truncated at {e every} byte boundary *)
  | Header_bit_flip  (** one bit flipped inside the self-describing header *)
  | Payload_bit_flip  (** one bit flipped inside the payload *)
  | Stale_lock
      (** a per-key lock file left behind by a dead process (and a
          torn, contentless lock) *)
  | Version_skew
      (** store header version / payload format version rewritten *)

val all_store_faults : store_fault list
val store_fault_name : store_fault -> string

type store_outcome =
  | Store_recovered
      (** quarantined + recomputed; the served value matched *)
  | Store_benign
      (** the fault did not invalidate the artifact (e.g. a bit flip in
          free-form producer metadata); the cached payload was served
          intact *)
  | Store_served_corrupt of string
      (** the store returned a value different from a fresh computation
          — silent corruption, the one forbidden outcome *)
  | Store_crashed of string  (** an exception escaped the store *)

type store_case = {
  sfault : store_fault;
  sdetail : string;
  soutcome : store_outcome;
}

type store_report = {
  s_total : int;
  s_recovered : int;
  s_benign : int;
  s_cases : store_case list;
}

(** Cases that crashed or served corrupt data; a robust store yields []. *)
val store_failures : store_report -> store_case list

(** Run the sweep against a fresh store rooted at [root] (created if
    needed; the directory afterwards holds the quarantined corpses for
    inspection). Deterministic for a given [seed]. *)
val run_store :
  ?iterations:int -> ?seed:int64 -> root:string -> unit -> store_report

val pp_store_report : Format.formatter -> store_report -> unit

(** Convert [pb] into an ELFie whose exit path spins forever: the region
    counters fire as usual, but the process loops past them and never
    exits — the hang failure class. Such a run is {e not} graceful; only
    a watchdog (the runner's instruction cap or a supervisor wall-clock
    limit) can stop it, after which it classifies as a runaway. Extra
    conversion [options] are honoured; the injected exit-path spin
    overrides [extra_on_exit]. *)
val hang_elfie :
  ?options:Elfie_core.Pinball2elf.options ->
  Elfie_pinball.Pinball.t ->
  Elfie_elf.Image.t

val pp_report : Format.formatter -> report -> unit

(** {1 Farm-daemon fault sweep}

    The same bargain as {!run_store}, one network layer up: inject
    faults into the daemon/shard path ({!Elfie_farm.Daemon},
    {!Elfie_farm.Shard}) and demand that every read still returns the
    correct bytes — degrading to local recompute at worst, never
    crashing the client, never serving a corrupt frame. *)

type daemon_fault =
  | Shard_killed  (** the owning daemon is stopped between requests *)
  | Torn_frame  (** the response frame is truncated mid-header/payload *)
  | Frame_bit_flip  (** one bit flipped in the response frame *)
  | Hung_peer
      (** the daemon accepts but never (or incompletely) responds; the
          client deadline must fire *)
  | Stale_socket
      (** a crashed daemon's leftover socket file; the next
          {!Elfie_farm.Daemon.start} must recover it *)
  | Wire_version_skew  (** the daemon answers a different wire version *)

val all_daemon_faults : daemon_fault list
val daemon_fault_name : daemon_fault -> string

(** Verdict on the flight-recorder dump a degraded case must leave
    behind ({!Elfie_obs.Log.dump} fires on every degrade-to-recompute):
    the file must exist, every line must parse back as a structured
    event, one event must name the in-flight request (the key the shard
    client gave up on), and the [flight.dump] trailer must close it. *)
type flight_status =
  | Flight_ok of int  (** parseable dump with this many events *)
  | Flight_not_expected  (** the case did not degrade; no dump owed *)
  | Flight_missing
  | Flight_bad of string

val flight_status_name : flight_status -> string

type daemon_case = {
  dfault : daemon_fault;
  ddetail : string;
  doutcome : store_outcome;  (** same verdict lattice as the store sweep *)
  dflight : flight_status;
}

type daemon_report = {
  d_total : int;
  d_recovered : int;  (** degraded to a local recompute, value correct *)
  d_benign : int;  (** served through despite the fault, value correct *)
  d_cases : daemon_case list;
}

(** Cases that crashed, served corrupt data, or degraded without
    leaving a parseable flight dump naming the failing request; a
    robust farm yields []. *)
val daemon_failures : daemon_report -> daemon_case list

(** Run the sweep under [root] (created if needed): each case starts a
    private in-process daemon on its own socket, seeds an artifact
    through the shard router, arms the injection, and re-reads through a
    fresh local store so the read {e must} traverse the faulty remote
    tier. Deterministic for a given [seed] (the sweep's client backoff
    carries no jitter). *)
val run_daemon : ?seed:int64 -> root:string -> unit -> daemon_report

val pp_daemon_report : Format.formatter -> daemon_report -> unit
