(** Fault-injection harness for artifact robustness.

    Systematically corrupts serialized artifacts — bit flips,
    truncation, deleted member files, overwritten magics, oversized
    count fields, zero-fill, member swaps — then feeds them to the
    readers and validators. The invariant under test: {e every} fault
    either parses to a valid artifact (the corruption was benign, e.g.
    a flipped bit inside page data) or produces a structured
    {!Elfie_util.Diag.t}; no fault may escape as a raw exception, hang,
    or oversized allocation. *)

type fault =
  | Bit_flip  (** one random bit anywhere in one member *)
  | Truncate  (** member cut at a random byte *)
  | Delete_member  (** member file removed from the set *)
  | Corrupt_magic  (** member's magic overwritten *)
  | Oversized_count  (** a count field set far beyond the member size *)
  | Zero_member  (** member content zero-filled, size preserved *)
  | Swap_members  (** two members' contents exchanged *)

val all_faults : fault list
val fault_name : fault -> string

type outcome =
  | Accepted  (** parsed and passed validation: corruption was benign *)
  | Diagnosed of Elfie_util.Diag.t  (** rejected with a diagnostic *)
  | Crashed of string  (** any other exception escaped — a harness bug *)

type case = { fault : fault; detail : string; outcome : outcome }

type report = {
  total : int;
  accepted : int;
  diagnosed : int;
  cases : case list;
}

(** Cases whose outcome was [Crashed]; a robust pipeline yields []. *)
val crashes : report -> case list

(** Serialize [pb] with [Pinball.to_files], corrupt the file set
    [iterations] times per fault class, and classify each attempt via
    [Pinball.of_files_result] + {!Validate.pinball}. Deterministic for a
    given [seed]. *)
val run_pinball :
  ?iterations:int -> ?seed:int64 -> Elfie_pinball.Pinball.t -> report

(** Same sweep over a serialized ELF image, classified via
    [Image.read_result] + {!Validate.elf}. *)
val run_elf : ?iterations:int -> ?seed:int64 -> Elfie_elf.Image.t -> report

(** Convert [pb] into an ELFie whose exit path spins forever: the region
    counters fire as usual, but the process loops past them and never
    exits — the hang failure class. Such a run is {e not} graceful; only
    a watchdog (the runner's instruction cap or a supervisor wall-clock
    limit) can stop it, after which it classifies as a runaway. Extra
    conversion [options] are honoured; the injected exit-path spin
    overrides [extra_on_exit]. *)
val hang_elfie :
  ?options:Elfie_core.Pinball2elf.options ->
  Elfie_pinball.Pinball.t ->
  Elfie_elf.Image.t

val pp_report : Format.formatter -> report -> unit
