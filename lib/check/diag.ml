(* Re-export: the diagnostic type is defined in Elfie_util so that the
   artifact readers (pinball, elf, sysstate) can raise it without
   depending on this library; elfie_check is its public home. *)
include Elfie_util.Diag
