module Pinball = Elfie_pinball.Pinball
module Image = Elfie_elf.Image
module Diag = Elfie_util.Diag

(* Collect diagnostics with a local accumulator. *)
let collecting fn =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  fn emit;
  List.rev !acc

(* --- Pinball consistency ------------------------------------------------- *)

let pinball (pb : Pinball.t) =
  let art suffix = pb.name ^ "." ^ suffix in
  collecting (fun emit ->
      let n = Pinball.num_threads pb in
      (* Per-thread structures must agree on the thread count. *)
      if Array.length pb.icounts <> n then
        emit
          (Diag.f ~artifact:(art "global.log") Diag.Thread_mismatch
             "%d icount entries for %d register contexts"
             (Array.length pb.icounts) n);
      if Array.length pb.injections < n then
        emit
          (Diag.f ~artifact:(art "inj") Diag.Thread_mismatch
             "syscall logs for %d thread(s), but %d started the region"
             (Array.length pb.injections) n);
      (* Region icounts are non-negative. *)
      Array.iteri
        (fun i ic ->
          if Int64.compare ic 0L < 0 then
            emit
              (Diag.f ~artifact:(art "global.log") Diag.Count_out_of_range
                 "thread %d has negative region icount %Ld" i ic))
        pb.icounts;
      (* Schedule: thread ids must exist; per-thread slice totals must
         reproduce the recorded region icounts (threads created inside
         the region appear in the schedule but carry no icount). *)
      let sched_total = Array.make (max n (Array.length pb.injections)) 0L in
      List.iter
        (fun (tid, slice) ->
          if tid < 0 || tid >= Array.length sched_total then
            emit
              (Diag.f ~artifact:(art "order") Diag.Thread_mismatch
                 "schedule references thread %d, outside the %d recorded" tid
                 (Array.length sched_total))
          else if slice < 0 then
            emit
              (Diag.f ~artifact:(art "order") Diag.Count_out_of_range
                 "negative schedule slice %d for thread %d" slice tid)
          else
            sched_total.(tid) <-
              Int64.add sched_total.(tid) (Int64.of_int slice))
        pb.schedule;
      if pb.schedule <> [] then
        for tid = 0 to n - 1 do
          if sched_total.(tid) <> pb.icounts.(tid) then
            emit
              (Diag.f ~artifact:(art "order") Diag.Icount_mismatch
                 "thread %d: schedule slices total %Ld but global.log records \
                  %Ld region instructions"
                 tid sched_total.(tid) pb.icounts.(tid))
        done;
      (* Memory image: sorted, page-disjoint. *)
      let rec check_pages = function
        | (a, da) :: ((b, _) :: _ as rest) ->
            let fin = Int64.add a (Int64.of_int (Bytes.length da)) in
            if Int64.unsigned_compare a b > 0 then
              emit
                (Diag.f ~artifact:(art "text") Diag.Malformed
                   "pages out of order: 0x%Lx after 0x%Lx" b a)
            else if Int64.unsigned_compare fin b > 0 then
              emit
                (Diag.f ~artifact:(art "text") Diag.Segment_overlap
                   "page at 0x%Lx (%d bytes) overlaps page at 0x%Lx" a
                   (Bytes.length da) b);
            check_pages rest
        | _ -> ()
      in
      check_pages pb.pages;
      if pb.fat && pb.pages = [] then
        emit
          (Diag.f ~artifact:(art "text") Diag.Malformed
             "fat pinball carries no memory image");
      (* A fat pinball carries every mapped page, so every thread's start
         PC and every carried symbol must land inside the image. *)
      let in_image v =
        List.exists
          (fun (a, d) ->
            Int64.unsigned_compare a v <= 0
            && Int64.unsigned_compare v (Int64.add a (Int64.of_int (Bytes.length d)))
               < 0)
          pb.pages
      in
      if pb.fat then begin
        Array.iteri
          (fun i ctx ->
            let rip = ctx.Elfie_machine.Context.rip in
            if not (in_image rip) then
              emit
                (Diag.f
                   ~artifact:(art (Printf.sprintf "%d.reg" i))
                   Diag.Entry_out_of_bounds
                   "thread %d starts at 0x%Lx, outside the memory image" i rip))
          pb.contexts;
        List.iter
          (fun (name, value) ->
            if not (in_image value) then
              emit
                (Diag.f ~artifact:(art "global.log") Diag.Symbol_out_of_bounds
                   "symbol %S = 0x%Lx points outside the memory image" name
                   value))
          pb.symbols
      end)

(* --- ELF image consistency ----------------------------------------------- *)

let elf ?(artifact = "<elf-image>") (image : Image.t) =
  collecting (fun emit ->
      (* Distinct section names (the writer's string tables assume it). *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (s : Image.section) ->
          if Hashtbl.mem seen s.name then
            emit
              (Diag.f ~artifact Diag.Malformed "duplicate section name %s"
                 s.name)
          else Hashtbl.replace seen s.name ();
          if s.align <> 0 && s.align land (s.align - 1) <> 0 then
            emit
              (Diag.f ~artifact Diag.Malformed
                 "section %s alignment %d is not a power of two" s.name s.align))
        image.sections;
      (* Loadable segments must be disjoint: overlapping PT_LOADs mean
         the ELFie would silently clobber part of its own image. *)
      let segs =
        List.filter_map
          (fun (s : Image.section) ->
            if s.alloc && s.kind <> Image.Nobits && Bytes.length s.data > 0 then
              Some (s.addr, Int64.add s.addr (Int64.of_int (Bytes.length s.data)), s.name)
            else None)
          image.sections
        |> List.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b)
      in
      let rec check_segs = function
        | (a, fin, na) :: ((b, _, nb) :: _ as rest) ->
            if Int64.unsigned_compare fin b > 0 then
              emit
                (Diag.f ~artifact Diag.Segment_overlap
                   "loadable sections %s (0x%Lx..0x%Lx) and %s (0x%Lx..) overlap"
                   na a fin nb b);
            check_segs rest
        | _ -> ()
      in
      check_segs segs;
      let inside ~exec_only v =
        List.exists
          (fun (s : Image.section) ->
            s.alloc
            && ((not exec_only) || s.executable)
            && Int64.unsigned_compare s.addr v <= 0
            && Int64.unsigned_compare v
                 (Int64.add s.addr (Int64.of_int (Bytes.length s.data)))
               < 0)
          image.sections
      in
      (* An executable image must start in executable memory. *)
      if image.exec && not (inside ~exec_only:true image.entry) then
        emit
          (Diag.f ~artifact Diag.Entry_out_of_bounds
             "entry point 0x%Lx is not inside an executable section"
             image.entry);
      (* Function symbols must resolve to loaded memory. *)
      if image.exec then
        List.iter
          (fun (sym : Image.symbol) ->
            if sym.func && not (inside ~exec_only:false sym.value) then
              emit
                (Diag.f ~artifact Diag.Symbol_out_of_bounds
                   "function symbol %S = 0x%Lx is not inside a loadable section"
                   sym.sym_name sym.value))
          image.symbols)

(* --- Pinball vs. generated ELFie ----------------------------------------- *)

let pinball_vs_elfie (pb : Pinball.t) ?(artifact = "<elfie>") (image : Image.t) =
  collecting (fun emit ->
      let n = Pinball.num_threads pb in
      let entry_count =
        List.length
          (List.filter
             (fun (s : Image.symbol) ->
               String.length s.sym_name >= 18
               && String.sub s.sym_name 0 18 = "elfie_thread_entry")
             image.symbols)
      in
      if image.exec && entry_count <> n then
        emit
          (Diag.f ~artifact Diag.Thread_mismatch
             "ELFie has %d thread entry point(s) for a %d-thread pinball"
             entry_count n);
      (* Every checkpointed page must be carried by some section (stack
         pages ride along as sections too, allocatable or not). *)
      List.iter
        (fun (addr, data) ->
          let fin = Int64.add addr (Int64.of_int (Bytes.length data)) in
          let covered =
            List.exists
              (fun (s : Image.section) ->
                Int64.unsigned_compare s.addr addr <= 0
                && Int64.unsigned_compare fin
                     (Int64.add s.addr (Int64.of_int (Bytes.length s.data)))
                   <= 0)
              image.sections
          in
          if not covered then
            emit
              (Diag.f ~artifact Diag.Malformed
                 "checkpointed page 0x%Lx (%d bytes) is not carried by any \
                  section"
                 addr (Bytes.length data)))
        pb.pages)

(* --- Pinball file set ----------------------------------------------------- *)

let file_set ?dir ~name files =
  match Pinball.of_files_result ?dir ~name files with
  | Error d -> [ d ]
  | Ok pb ->
      let n = Pinball.num_threads pb in
      (* Register files beyond the declared thread count are orphans the
         reader silently ignores — flag them. *)
      let orphans =
        List.filter_map
          (fun (suffix, _) ->
            match String.index_opt suffix '.' with
            | Some i when String.sub suffix i (String.length suffix - i) = ".reg"
              -> (
                match int_of_string_opt (String.sub suffix 0 i) with
                | Some tid when tid >= n ->
                    Some
                      (Diag.f
                         ~artifact:
                           (match dir with
                           | Some d ->
                               Filename.concat d (name ^ "." ^ suffix)
                           | None -> name ^ "." ^ suffix)
                         Diag.Thread_mismatch
                         "register file for thread %d, but global.log records \
                          %d thread(s)"
                         tid n)
                | _ -> None)
            | _ -> None)
          files
      in
      pinball pb @ orphans
