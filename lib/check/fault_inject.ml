module Pinball = Elfie_pinball.Pinball
module Image = Elfie_elf.Image
module Diag = Elfie_util.Diag
module Rng = Elfie_util.Rng

type fault =
  | Bit_flip
  | Truncate
  | Delete_member
  | Corrupt_magic
  | Oversized_count
  | Zero_member
  | Swap_members

let all_faults =
  [ Bit_flip; Truncate; Delete_member; Corrupt_magic; Oversized_count;
    Zero_member; Swap_members ]

let fault_name = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Delete_member -> "delete-member"
  | Corrupt_magic -> "corrupt-magic"
  | Oversized_count -> "oversized-count"
  | Zero_member -> "zero-member"
  | Swap_members -> "swap-members"

type outcome =
  | Accepted  (** parsed and passed validation: corruption was benign *)
  | Diagnosed of Diag.t  (** rejected with a structured diagnostic *)
  | Crashed of string  (** any other exception escaped — a harness bug *)

type case = { fault : fault; detail : string; outcome : outcome }

type report = { total : int; accepted : int; diagnosed : int; cases : case list }

let crashes r =
  List.filter (fun c -> match c.outcome with Crashed _ -> true | _ -> false)
    r.cases

(* --- File-set corruption -------------------------------------------------- *)

let pick_member rng files =
  let arr = Array.of_list files in
  arr.(Rng.int rng (Array.length arr))

let map_member files suffix fn =
  List.map (fun (s, c) -> if s = suffix then (s, fn c) else (s, c)) files

let flip_bit rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let off = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let set_u32 s off v =
  if String.length s < off + 4 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set_int32_le b off (Int32.of_int v);
    Bytes.to_string b
  end

(* Apply one random instance of [fault] to a pinball file set. Returns
   the corrupted set and a description of what was done. *)
let corrupt_file_set rng fault files =
  match fault with
  | Bit_flip ->
      let suffix, _ = pick_member rng files in
      ( map_member files suffix (flip_bit rng),
        Printf.sprintf "bit flip in %s" suffix )
  | Truncate ->
      let suffix, content = pick_member rng files in
      let keep =
        if String.length content = 0 then 0
        else Rng.int rng (String.length content)
      in
      ( map_member files suffix (fun c -> String.sub c 0 (min keep (String.length c))),
        Printf.sprintf "%s truncated to %d bytes" suffix keep )
  | Delete_member ->
      let suffix, _ = pick_member rng files in
      ( List.remove_assoc suffix files, Printf.sprintf "%s deleted" suffix )
  | Corrupt_magic ->
      let suffix, _ = pick_member rng files in
      ( map_member files suffix (fun c -> set_u32 c 0 0x4641_4b45),
        Printf.sprintf "magic of %s overwritten" suffix )
  | Oversized_count ->
      (* Count fields sit right after the magic in every member; the
         global.log thread count sits after the fat byte. *)
      let candidates = [ ("text", 4); ("inj", 4); ("order", 4); ("global.log", 5) ] in
      let suffix, off = List.nth candidates (Rng.int rng (List.length candidates)) in
      ( map_member files suffix (fun c -> set_u32 c off 0x3fff_fff0),
        Printf.sprintf "count at %s+%d set to 0x3ffffff0" suffix off )
  | Zero_member ->
      let suffix, content = pick_member rng files in
      ( map_member files suffix (fun _ -> String.make (String.length content) '\000'),
        Printf.sprintf "%s zero-filled" suffix )
  | Swap_members ->
      let a = "text" and b = "inj" in
      let ca = List.assoc_opt a files and cb = List.assoc_opt b files in
      ( List.map
          (fun (s, c) ->
            if s = a then (s, Option.value ~default:c cb)
            else if s = b then (s, Option.value ~default:c ca)
            else (s, c))
          files,
        Printf.sprintf "%s and %s contents swapped" a b )

let classify_pinball ~name files =
  match Pinball.of_files_result ~name files with
  | Ok pb -> (
      match Validate.pinball pb with [] -> Accepted | d :: _ -> Diagnosed d)
  | Error d -> Diagnosed d
  | exception e -> Crashed (Printexc.to_string e)

let run_pinball ?(iterations = 20) ?(seed = 0x600DF00DL) (pb : Pinball.t) =
  let rng = Rng.create seed in
  let pristine = Pinball.to_files pb in
  let cases =
    List.concat_map
      (fun fault ->
        List.init iterations (fun _ ->
            let files, detail = corrupt_file_set rng fault pristine in
            { fault; detail; outcome = classify_pinball ~name:pb.name files }))
      all_faults
  in
  let count p = List.length (List.filter p cases) in
  {
    total = List.length cases;
    accepted = count (fun c -> c.outcome = Accepted);
    diagnosed =
      count (fun c -> match c.outcome with Diagnosed _ -> true | _ -> false);
    cases;
  }

(* --- ELF image corruption -------------------------------------------------- *)

(* ELF faults reuse the same fault classes; member-level faults act on
   the single image file. Delete/swap have no file-set analogue here, so
   they degrade to truncation-to-zero and header scrambling. *)
let corrupt_elf rng fault bytes =
  let s = Bytes.to_string bytes in
  let corrupted, detail =
    match fault with
    | Bit_flip -> (flip_bit rng s, "bit flip")
    | Truncate ->
        let keep = if String.length s = 0 then 0 else Rng.int rng (String.length s) in
        (String.sub s 0 keep, Printf.sprintf "truncated to %d bytes" keep)
    | Delete_member -> ("", "file emptied")
    | Corrupt_magic -> (set_u32 s 0 0x4641_4b45, "magic overwritten")
    | Oversized_count ->
        (* e_shoff at offset 40, e_shnum at offset 60. *)
        let which = Rng.int rng 2 in
        if which = 0 then (set_u32 s 40 0x3fff_fff0, "e_shoff oversized")
        else begin
          let b = Bytes.of_string s in
          if Bytes.length b >= 62 then Bytes.set_uint16_le b 60 0xffff;
          (Bytes.to_string b, "e_shnum oversized")
        end
    | Zero_member ->
        let n = min (String.length s) (64 + Rng.int rng 256) in
        (String.make n '\000' ^ String.sub s n (String.length s - n),
         Printf.sprintf "first %d bytes zeroed" n)
    | Swap_members ->
        (* Scramble the section-header table offset to point into data. *)
        (set_u32 s 40 (Rng.int rng (max 1 (String.length s))), "e_shoff scrambled")
  in
  (Bytes.of_string corrupted, detail)

let classify_elf bytes =
  match Image.read_result bytes with
  | Ok image -> (
      match Validate.elf image with [] -> Accepted | d :: _ -> Diagnosed d)
  | Error d -> Diagnosed d
  | exception e -> Crashed (Printexc.to_string e)

let run_elf ?(iterations = 20) ?(seed = 0x600DF00DL) (image : Image.t) =
  let rng = Rng.create seed in
  let pristine = Image.write image in
  let cases =
    List.concat_map
      (fun fault ->
        List.init iterations (fun _ ->
            let bytes, detail = corrupt_elf rng fault (Bytes.copy pristine) in
            { fault; detail; outcome = classify_elf bytes }))
      all_faults
  in
  let count p = List.length (List.filter p cases) in
  {
    total = List.length cases;
    accepted = count (fun c -> c.outcome = Accepted);
    diagnosed =
      count (fun c -> match c.outcome with Diagnosed _ -> true | _ -> false);
    cases;
  }

(* --- Artifact-store corruption sweep ---------------------------------------- *)

module Store = Elfie_farm.Store

type store_fault =
  | Torn_write
  | Header_bit_flip
  | Payload_bit_flip
  | Stale_lock
  | Version_skew

let all_store_faults =
  [ Torn_write; Header_bit_flip; Payload_bit_flip; Stale_lock; Version_skew ]

let store_fault_name = function
  | Torn_write -> "torn-write"
  | Header_bit_flip -> "header-bit-flip"
  | Payload_bit_flip -> "payload-bit-flip"
  | Stale_lock -> "stale-lock"
  | Version_skew -> "version-skew"

type store_outcome =
  | Store_recovered
  | Store_benign
  | Store_served_corrupt of string
  | Store_crashed of string

type store_case = {
  sfault : store_fault;
  sdetail : string;
  soutcome : store_outcome;
}

type store_report = {
  s_total : int;
  s_recovered : int;
  s_benign : int;
  s_cases : store_case list;
}

let store_failures r =
  List.filter
    (fun c ->
      match c.soutcome with
      | Store_served_corrupt _ | Store_crashed _ -> true
      | Store_recovered | Store_benign -> false)
    r.s_cases

(* A pid guaranteed dead: fork a child that exits immediately and reap
   it. Evaluated lazily (and before any domains spawn in the suites that
   use this sweep). *)
let dead_pid =
  lazy
    (match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let replace_once ~from ~into s =
  match
    let fl = String.length from in
    let rec find i =
      if i + fl > String.length s then None
      else if String.sub s i fl = from then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ into
      ^ String.sub s (i + String.length from)
          (String.length s - i - String.length from)

let run_store ?(iterations = 20) ?(seed = 0x600DF00DL) ~root () =
  let rng = Rng.create seed in
  let store = Store.open_store ~producer:"fault-sweep" root in
  let case_id = ref 0 in
  (* Each case gets a fresh key and a fixed-length pseudo-random payload,
     seeds the store with it, corrupts the committed file, then re-reads
     through [get_or_compute]. The served value must always equal the
     payload; whether a quarantine + recompute is required depends on
     what the corruption hit. *)
  let seeded () =
    incr case_id;
    let payload =
      String.init 96 (fun _ -> Char.chr (Rng.int rng 256))
    in
    let key =
      Store.key Store.Measurement ~program:"store-fault-program"
        [ ("case", string_of_int !case_id) ]
    in
    let (_ : string) =
      Store.get_or_compute store key ~format:1 (fun () -> payload)
    in
    (key, payload, Store.path_of store key)
  in
  let classify ~payload ~recomputed ~quarantine_delta ~lock_case result =
    match result with
    | Error msg -> Store_crashed msg
    | Ok v when v <> payload ->
        Store_served_corrupt "served bytes differ from a fresh computation"
    | Ok _ when recomputed ->
        if lock_case || quarantine_delta > 0 then Store_recovered
        else Store_crashed "recomputed without a quarantine record"
    | Ok _ -> Store_benign
  in
  let exercise ?(lock_case = false) key payload sdetail sfault =
    let recomputed = ref false in
    let q0 = List.length (Store.quarantines store) in
    let result =
      match
        Store.get_or_compute store key ~format:1 (fun () ->
            recomputed := true;
            payload)
      with
      | v -> Ok v
      | exception e -> Error (Printexc.to_string e)
    in
    let q1 = List.length (Store.quarantines store) in
    {
      sfault;
      sdetail;
      soutcome =
        classify ~payload ~recomputed:!recomputed
          ~quarantine_delta:(q1 - q0) ~lock_case result;
    }
  in
  let torn_cases () =
    (* Truncate the committed file at every byte boundary, including the
       empty file; the full-length "truncation" is the benign identity. *)
    let key0, payload0, path0 = seeded () in
    let pristine = read_raw path0 in
    List.init (String.length pristine) (fun cut ->
        let key, payload, path =
          if cut = 0 then (key0, payload0, path0) else seeded ()
        in
        write_raw path (String.sub pristine 0 cut);
        exercise key payload
          (Printf.sprintf "file truncated to %d of %d bytes" cut
             (String.length pristine))
          Torn_write)
  in
  let bit_flip_cases fault =
    List.init iterations (fun _ ->
        let key, payload, path = seeded () in
        let pristine = read_raw path in
        let header_len =
          let rec find i =
            if i + 1 >= String.length pristine then String.length pristine
            else if pristine.[i] = '\n' && pristine.[i + 1] = '\n' then i + 2
            else find (i + 1)
          in
          find 0
        in
        let lo, span =
          match fault with
          | Header_bit_flip -> (0, header_len)
          | _ -> (header_len, String.length pristine - header_len)
        in
        let off = lo + Rng.int rng (max 1 span) in
        let bit = Rng.int rng 8 in
        let b = Bytes.of_string pristine in
        Bytes.set b off
          (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
        write_raw path (Bytes.to_string b);
        exercise key payload
          (Printf.sprintf "bit %d at offset %d flipped (%s)" bit off
             (if off < header_len then "header" else "payload"))
          fault)
  in
  let version_skew_cases () =
    List.map
      (fun (from, into, what) ->
        let key, payload, path = seeded () in
        write_raw path (replace_once ~from ~into (read_raw path));
        exercise key payload what Version_skew)
      [
        ("ELFIESTORE 1\n", "ELFIESTORE 2\n", "store header version bumped");
        ("\nformat 1\n", "\nformat 9\n", "payload format version bumped");
      ]
  in
  let stale_lock_cases () =
    let lock_with content path = write_raw path content in
    [
      (* A dead process's lock with no committed artifact: the lock must
         be broken and the computation performed. *)
      (let key, payload, path = seeded () in
       Sys.remove path;
       lock_with
         (Printf.sprintf "ELFIELOCK %d stale.0\n" (Lazy.force dead_pid))
         (Store.lock_path_of store key);
       let case = exercise ~lock_case:true key payload "dead-pid lock, no artifact" Stale_lock in
       if Sys.file_exists (Store.lock_path_of store key) then
         { case with soutcome = Store_crashed "stale lock not cleaned up" }
       else case);
      (* A dead process's lock with the artifact committed: the read path
         never needs the lock; the cached value must be served. *)
      (let key, payload, _ = seeded () in
       lock_with
         (Printf.sprintf "ELFIELOCK %d stale.1\n" (Lazy.force dead_pid))
         (Store.lock_path_of store key);
       let case = exercise ~lock_case:true key payload "dead-pid lock, artifact present" Stale_lock in
       (try Sys.remove (Store.lock_path_of store key) with Sys_error _ -> ());
       case);
      (* A torn (contentless) lock, backdated past the write window: the
         writer died between creating and filling it. *)
      (let key, payload, path = seeded () in
       Sys.remove path;
       let lock = Store.lock_path_of store key in
       lock_with "" lock;
       (try Unix.utimes lock 1.0 1.0 with Unix.Unix_error _ -> ());
       exercise ~lock_case:true key payload "torn empty lock, backdated"
         Stale_lock);
    ]
  in
  let s_cases =
    torn_cases ()
    @ bit_flip_cases Header_bit_flip
    @ bit_flip_cases Payload_bit_flip
    @ stale_lock_cases ()
    @ version_skew_cases ()
  in
  let count p = List.length (List.filter p s_cases) in
  {
    s_total = List.length s_cases;
    s_recovered = count (fun c -> c.soutcome = Store_recovered);
    s_benign = count (fun c -> c.soutcome = Store_benign);
    s_cases;
  }

let pp_store_report fmt r =
  Format.fprintf fmt
    "@[<v>%d store fault(s): %d quarantined+recomputed, %d benign, %d \
     failed@,"
    r.s_total r.s_recovered r.s_benign
    (List.length (store_failures r));
  List.iter
    (fun c ->
      match c.soutcome with
      | Store_served_corrupt msg ->
          Format.fprintf fmt "  CORRUPT %-16s %s: %s@,"
            (store_fault_name c.sfault) c.sdetail msg
      | Store_crashed msg ->
          Format.fprintf fmt "  CRASH %-16s %s: %s@,"
            (store_fault_name c.sfault) c.sdetail msg
      | _ -> ())
    r.s_cases;
  Format.fprintf fmt "@]"

(* --- Execution-hang injection --------------------------------------------- *)

let hang_elfie ?(options = Elfie_core.Pinball2elf.default_options) pb =
  let spin b =
    let loop = Elfie_isa.Builder.here ~name:"hang" b in
    Elfie_isa.Builder.ins b Elfie_isa.Insn.Pause;
    Elfie_isa.Builder.jmp b loop
  in
  Elfie_core.Pinball2elf.convert
    ~options:{ options with Elfie_core.Pinball2elf.extra_on_exit = Some spin }
    pb

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d fault(s): %d diagnosed, %d benign, %d crashed@,"
    r.total r.diagnosed r.accepted
    (List.length (crashes r));
  List.iter
    (fun c ->
      match c.outcome with
      | Crashed msg ->
          Format.fprintf fmt "  CRASH %-16s %s: %s@," (fault_name c.fault)
            c.detail msg
      | _ -> ())
    r.cases;
  Format.fprintf fmt "@]"

(* --- Farm-daemon fault sweep ------------------------------------------------ *)

module Daemon = Elfie_farm.Daemon
module Shard = Elfie_farm.Shard
module Log = Elfie_obs.Log

type daemon_fault =
  | Shard_killed
  | Torn_frame
  | Frame_bit_flip
  | Hung_peer
  | Stale_socket
  | Wire_version_skew

let all_daemon_faults =
  [
    Shard_killed; Torn_frame; Frame_bit_flip; Hung_peer; Stale_socket;
    Wire_version_skew;
  ]

let daemon_fault_name = function
  | Shard_killed -> "shard-killed"
  | Torn_frame -> "torn-frame"
  | Frame_bit_flip -> "frame-bit-flip"
  | Hung_peer -> "hung-peer"
  | Stale_socket -> "stale-socket"
  | Wire_version_skew -> "wire-version-skew"

(* Verdict on the flight-recorder dump a degraded case must leave
   behind: a parseable JSONL file whose events name the in-flight
   request (the key the shard client gave up on). *)
type flight_status =
  | Flight_ok of int  (** parseable dump with this many events *)
  | Flight_not_expected  (** the case did not degrade; no dump owed *)
  | Flight_missing
  | Flight_bad of string

let flight_status_name = function
  | Flight_ok n -> Printf.sprintf "flight-ok(%d)" n
  | Flight_not_expected -> "flight-not-expected"
  | Flight_missing -> "flight-missing"
  | Flight_bad msg -> "flight-bad: " ^ msg

type daemon_case = {
  dfault : daemon_fault;
  ddetail : string;
  doutcome : store_outcome;
  dflight : flight_status;
}

type daemon_report = {
  d_total : int;
  d_recovered : int;
  d_benign : int;
  d_cases : daemon_case list;
}

let daemon_failures r =
  List.filter
    (fun c ->
      match (c.doutcome, c.dflight) with
      | (Store_served_corrupt _ | Store_crashed _), _ -> true
      | _, (Flight_missing | Flight_bad _) -> true
      | (Store_recovered | Store_benign), (Flight_ok _ | Flight_not_expected)
        ->
          false)
    r.d_cases

(* Tight client budget so the sweep stays fast: ~0.3 s deadlines, one
   retry, millisecond backoff, no jitter (fully deterministic). *)
let sweep_config =
  {
    Shard.default_config with
    deadline_s = 0.3;
    retries = 1;
    backoff =
      { Elfie_util.Backoff.base_s = 0.005; factor = 2.0; max_s = 0.02;
        jitter = 0.0 };
    breaker_threshold = 2;
    breaker_cooldown_s = 0.2;
  }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Judge the flight-recorder dump a degraded case left behind: every
   line must parse back as a structured event, one of them must be the
   client's fallback event naming the key it gave up on, and the
   [flight.dump] trailer must close the file. *)
let assess_flight ~key file =
  if not (Sys.file_exists file) then Flight_missing
  else
    let lines =
      List.filter (fun l -> String.trim l <> "") (read_lines file)
    in
    let parsed = List.map (fun l -> (l, Log.parse_line l)) lines in
    match List.find_opt (fun (_, p) -> p = None) parsed with
    | Some (line, _) ->
        Flight_bad
          (Printf.sprintf "unparseable line %S"
             (String.sub line 0 (min 48 (String.length line))))
    | None ->
        let evs = List.filter_map snd parsed in
        let names_request =
          List.exists
            (fun ev ->
              ev.Log.ev_name = "daemon.client.fallback_recompute"
              && List.assoc_opt "key" ev.Log.ev_attrs
                 = Some (Elfie_obs.Trace.S (Store.digest key)))
            evs
        in
        if evs = [] then Flight_bad "empty dump"
        else if not names_request then
          Flight_bad "dump does not name the failing request"
        else if
          not (List.exists (fun ev -> ev.Log.ev_name = "flight.dump") evs)
        then Flight_bad "missing flight.dump trailer"
        else Flight_ok (List.length evs)

let run_daemon ?(seed = 0x600DF00DL) ~root () =
  mkdir_p root;
  let rng = Rng.create seed in
  let case_id = ref 0 in
  (* One isolated shard (store + daemon + socket) and two local stores
     per case: [seed_and_exercise] populates local A + the shard, then
     re-reads through a FRESH local store B, so the artifact can only
     come from the shard or from the fallback recompute. The served
     value must always equal the seeded payload — under any injection,
     degrade-to-recompute, never corrupt, never crash. *)
  let with_case dfault ddetail ?tamper ~inject () =
    incr case_id;
    let dir name = Filename.concat root (Printf.sprintf "%s%d" name !case_id) in
    let payload = String.init 96 (fun _ -> Char.chr (Rng.int rng 256)) in
    let key =
      Store.key Store.Measurement ~program:"daemon-fault-program"
        [ ("case", string_of_int !case_id) ]
    in
    let socket = Filename.concat root (Printf.sprintf "s%d.sock" !case_id) in
    (* Arm the flight recorder per case: a fresh ring and a per-case
       dump file, so every degrade must leave its own evidence. *)
    let flight_file =
      Filename.concat root (Printf.sprintf "flight%d.jsonl" !case_id)
    in
    Log.reset ();
    Log.set_flight_path (Some flight_file);
    let shard_store = Store.open_store ~producer:"daemon-sweep" (dir "shard") in
    let daemon = Daemon.start ?tamper ~store:shard_store ~socket_path:socket () in
    let stopped = ref false in
    let stop_daemon () =
      if not !stopped then begin
        stopped := true;
        Daemon.stop daemon
      end
    in
    Fun.protect
      ~finally:(fun () ->
        stop_daemon ();
        Log.set_flight_path None)
    @@ fun () ->
    let fetch local_root recomputed =
      let local = Store.open_store ~producer:"daemon-sweep" (dir local_root) in
      let router =
        Shard.connect ~config:sweep_config ~local ~endpoints:[ socket ] ()
      in
      Fun.protect
        ~finally:(fun () -> Shard.close router)
        (fun () ->
          Shard.get_or_compute_v router key ~format:1 ~encode:Fun.id
            ~decode:(fun s -> Ok s)
            (fun () ->
              recomputed := true;
              payload))
    in
    let seeded = ref false in
    let (_ : string) = fetch "seed_local" seeded in
    inject ~stop_daemon;
    let recomputed = ref false in
    let result =
      match fetch "fresh_local" recomputed with
      | v -> Ok v
      | exception e -> Error (Printexc.to_string e)
    in
    let doutcome =
      match result with
      | Error msg -> Store_crashed msg
      | Ok v when v <> payload ->
          Store_served_corrupt "served bytes differ from a fresh computation"
      | Ok _ when !recomputed -> Store_recovered
      | Ok _ -> Store_benign
    in
    let dflight =
      match doutcome with
      | Store_recovered -> assess_flight ~key flight_file
      | Store_benign | Store_served_corrupt _ | Store_crashed _ ->
          Flight_not_expected
    in
    { dfault; ddetail; doutcome; dflight }
  in
  let tamper_cell = ref Daemon.Pass in
  let tampered () = !tamper_cell in
  let arm t ~stop_daemon:_ = tamper_cell := t in
  (* Flip one payload bit inside an encoded response frame; header-only
     frames get their digest flipped instead. Either way the client's
     frame checksum (or header parse) must catch it. *)
  let flip_frame frame =
    let b = Bytes.of_string frame in
    let off =
      if Bytes.length b > Daemon.Wire.header_bytes then
        Daemon.Wire.header_bytes
      else Bytes.length b - 1
    in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
    Bytes.to_string b
  in
  let skew_frame frame =
    let b = Bytes.of_string frame in
    Bytes.set b 4 (Char.chr ((Char.code (Bytes.get b 4) + 1) land 0xff));
    Bytes.to_string b
  in
  let d_cases =
    [
      with_case Shard_killed "daemon stopped between requests"
        ~inject:(fun ~stop_daemon -> stop_daemon ())
        ();
      with_case Torn_frame "response frame truncated mid-header"
        ~tamper:tampered
        ~inject:(arm (Daemon.Truncate 9))
        ();
      with_case Torn_frame "response frame truncated mid-payload"
        ~tamper:tampered
        ~inject:(arm (Daemon.Truncate (Daemon.Wire.header_bytes + 5)))
        ();
      with_case Frame_bit_flip "one bit flipped in the response frame"
        ~tamper:tampered
        ~inject:(arm (Daemon.Rewrite flip_frame))
        ();
      with_case Hung_peer "daemon accepts but never responds"
        ~tamper:tampered
        ~inject:(arm Daemon.Hang_response)
        ();
      with_case Hung_peer "daemon drops the connection without responding"
        ~tamper:tampered
        ~inject:(arm Daemon.Drop_connection)
        ();
      with_case Wire_version_skew "daemon answers a different wire version"
        ~tamper:tampered
        ~inject:(arm (Daemon.Rewrite skew_frame))
        ();
      (* Stale socket file: a crashed daemon's leftover path must be
         recovered at bind time, after which service is normal — the
         fresh-local read is served remotely, no recompute. *)
      (incr case_id;
       let socket =
         Filename.concat root (Printf.sprintf "s%d.sock" !case_id)
       in
       let leftover = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Unix.bind leftover (Unix.ADDR_UNIX socket);
       Unix.close leftover;
       (* no listen(): connects now fail ECONNREFUSED, like a dead pid *)
       let shard_store =
         Store.open_store ~producer:"daemon-sweep"
           (Filename.concat root (Printf.sprintf "shard%d" !case_id))
       in
       match Daemon.start ~store:shard_store ~socket_path:socket () with
       | exception e ->
           {
             dfault = Stale_socket;
             ddetail = "bind over a dead daemon's socket file";
             doutcome = Store_crashed (Printexc.to_string e);
             dflight = Flight_not_expected;
           }
       | daemon ->
           Fun.protect
             ~finally:(fun () -> Daemon.stop daemon)
             (fun () ->
               let payload =
                 String.init 96 (fun _ -> Char.chr (Rng.int rng 256))
               in
               let key =
                 Store.key Store.Measurement ~program:"daemon-fault-program"
                   [ ("case", string_of_int !case_id) ]
               in
               let fetch local recomputed =
                 let local =
                   Store.open_store ~producer:"daemon-sweep"
                     (Filename.concat root
                        (Printf.sprintf "%s%d" local !case_id))
                 in
                 let router =
                   Shard.connect ~config:sweep_config ~local
                     ~endpoints:[ socket ] ()
                 in
                 Fun.protect
                   ~finally:(fun () -> Shard.close router)
                   (fun () ->
                     Shard.get_or_compute_v router key ~format:1
                       ~encode:Fun.id
                       ~decode:(fun s -> Ok s)
                       (fun () ->
                         recomputed := true;
                         payload))
               in
               let seeded = ref false in
               let (_ : string) = fetch "seed_local" seeded in
               let recomputed = ref false in
               let doutcome =
                 match fetch "fresh_local" recomputed with
                 | v when v <> payload ->
                     Store_served_corrupt
                       "served bytes differ from a fresh computation"
                 | _ when !recomputed ->
                     Store_crashed
                       "recomputed although the recovered daemon held the \
                        artifact"
                 | _ -> Store_benign
                 | exception e -> Store_crashed (Printexc.to_string e)
               in
               {
                 dfault = Stale_socket;
                 ddetail = "bind over a dead daemon's socket file";
                 doutcome;
                 dflight = Flight_not_expected;
               }));
    ]
  in
  let count p = List.length (List.filter p d_cases) in
  {
    d_total = List.length d_cases;
    d_recovered = count (fun c -> c.doutcome = Store_recovered);
    d_benign = count (fun c -> c.doutcome = Store_benign);
    d_cases;
  }

let pp_daemon_report fmt r =
  Format.fprintf fmt
    "@[<v>%d daemon fault(s): %d degraded to recompute, %d served through, \
     %d failed@,"
    r.d_total r.d_recovered r.d_benign
    (List.length (daemon_failures r));
  List.iter
    (fun c ->
      (match c.doutcome with
      | Store_served_corrupt msg ->
          Format.fprintf fmt "  CORRUPT %-18s %s: %s@,"
            (daemon_fault_name c.dfault) c.ddetail msg
      | Store_crashed msg ->
          Format.fprintf fmt "  CRASH %-18s %s: %s@,"
            (daemon_fault_name c.dfault) c.ddetail msg
      | _ -> ());
      match c.dflight with
      | Flight_missing | Flight_bad _ ->
          Format.fprintf fmt "  FLIGHT %-18s %s: %s@,"
            (daemon_fault_name c.dfault) c.ddetail
            (flight_status_name c.dflight)
      | Flight_ok _ | Flight_not_expected -> ())
    r.d_cases;
  Format.fprintf fmt "@]"
