module Pinball = Elfie_pinball.Pinball
module Image = Elfie_elf.Image
module Diag = Elfie_util.Diag
module Rng = Elfie_util.Rng

type fault =
  | Bit_flip
  | Truncate
  | Delete_member
  | Corrupt_magic
  | Oversized_count
  | Zero_member
  | Swap_members

let all_faults =
  [ Bit_flip; Truncate; Delete_member; Corrupt_magic; Oversized_count;
    Zero_member; Swap_members ]

let fault_name = function
  | Bit_flip -> "bit-flip"
  | Truncate -> "truncate"
  | Delete_member -> "delete-member"
  | Corrupt_magic -> "corrupt-magic"
  | Oversized_count -> "oversized-count"
  | Zero_member -> "zero-member"
  | Swap_members -> "swap-members"

type outcome =
  | Accepted  (** parsed and passed validation: corruption was benign *)
  | Diagnosed of Diag.t  (** rejected with a structured diagnostic *)
  | Crashed of string  (** any other exception escaped — a harness bug *)

type case = { fault : fault; detail : string; outcome : outcome }

type report = { total : int; accepted : int; diagnosed : int; cases : case list }

let crashes r =
  List.filter (fun c -> match c.outcome with Crashed _ -> true | _ -> false)
    r.cases

(* --- File-set corruption -------------------------------------------------- *)

let pick_member rng files =
  let arr = Array.of_list files in
  arr.(Rng.int rng (Array.length arr))

let map_member files suffix fn =
  List.map (fun (s, c) -> if s = suffix then (s, fn c) else (s, c)) files

let flip_bit rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let off = Rng.int rng (Bytes.length b) in
    let bit = Rng.int rng 8 in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
    Bytes.to_string b
  end

let set_u32 s off v =
  if String.length s < off + 4 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set_int32_le b off (Int32.of_int v);
    Bytes.to_string b
  end

(* Apply one random instance of [fault] to a pinball file set. Returns
   the corrupted set and a description of what was done. *)
let corrupt_file_set rng fault files =
  match fault with
  | Bit_flip ->
      let suffix, _ = pick_member rng files in
      ( map_member files suffix (flip_bit rng),
        Printf.sprintf "bit flip in %s" suffix )
  | Truncate ->
      let suffix, content = pick_member rng files in
      let keep =
        if String.length content = 0 then 0
        else Rng.int rng (String.length content)
      in
      ( map_member files suffix (fun c -> String.sub c 0 (min keep (String.length c))),
        Printf.sprintf "%s truncated to %d bytes" suffix keep )
  | Delete_member ->
      let suffix, _ = pick_member rng files in
      ( List.remove_assoc suffix files, Printf.sprintf "%s deleted" suffix )
  | Corrupt_magic ->
      let suffix, _ = pick_member rng files in
      ( map_member files suffix (fun c -> set_u32 c 0 0x4641_4b45),
        Printf.sprintf "magic of %s overwritten" suffix )
  | Oversized_count ->
      (* Count fields sit right after the magic in every member; the
         global.log thread count sits after the fat byte. *)
      let candidates = [ ("text", 4); ("inj", 4); ("order", 4); ("global.log", 5) ] in
      let suffix, off = List.nth candidates (Rng.int rng (List.length candidates)) in
      ( map_member files suffix (fun c -> set_u32 c off 0x3fff_fff0),
        Printf.sprintf "count at %s+%d set to 0x3ffffff0" suffix off )
  | Zero_member ->
      let suffix, content = pick_member rng files in
      ( map_member files suffix (fun _ -> String.make (String.length content) '\000'),
        Printf.sprintf "%s zero-filled" suffix )
  | Swap_members ->
      let a = "text" and b = "inj" in
      let ca = List.assoc_opt a files and cb = List.assoc_opt b files in
      ( List.map
          (fun (s, c) ->
            if s = a then (s, Option.value ~default:c cb)
            else if s = b then (s, Option.value ~default:c ca)
            else (s, c))
          files,
        Printf.sprintf "%s and %s contents swapped" a b )

let classify_pinball ~name files =
  match Pinball.of_files_result ~name files with
  | Ok pb -> (
      match Validate.pinball pb with [] -> Accepted | d :: _ -> Diagnosed d)
  | Error d -> Diagnosed d
  | exception e -> Crashed (Printexc.to_string e)

let run_pinball ?(iterations = 20) ?(seed = 0x600DF00DL) (pb : Pinball.t) =
  let rng = Rng.create seed in
  let pristine = Pinball.to_files pb in
  let cases =
    List.concat_map
      (fun fault ->
        List.init iterations (fun _ ->
            let files, detail = corrupt_file_set rng fault pristine in
            { fault; detail; outcome = classify_pinball ~name:pb.name files }))
      all_faults
  in
  let count p = List.length (List.filter p cases) in
  {
    total = List.length cases;
    accepted = count (fun c -> c.outcome = Accepted);
    diagnosed =
      count (fun c -> match c.outcome with Diagnosed _ -> true | _ -> false);
    cases;
  }

(* --- ELF image corruption -------------------------------------------------- *)

(* ELF faults reuse the same fault classes; member-level faults act on
   the single image file. Delete/swap have no file-set analogue here, so
   they degrade to truncation-to-zero and header scrambling. *)
let corrupt_elf rng fault bytes =
  let s = Bytes.to_string bytes in
  let corrupted, detail =
    match fault with
    | Bit_flip -> (flip_bit rng s, "bit flip")
    | Truncate ->
        let keep = if String.length s = 0 then 0 else Rng.int rng (String.length s) in
        (String.sub s 0 keep, Printf.sprintf "truncated to %d bytes" keep)
    | Delete_member -> ("", "file emptied")
    | Corrupt_magic -> (set_u32 s 0 0x4641_4b45, "magic overwritten")
    | Oversized_count ->
        (* e_shoff at offset 40, e_shnum at offset 60. *)
        let which = Rng.int rng 2 in
        if which = 0 then (set_u32 s 40 0x3fff_fff0, "e_shoff oversized")
        else begin
          let b = Bytes.of_string s in
          if Bytes.length b >= 62 then Bytes.set_uint16_le b 60 0xffff;
          (Bytes.to_string b, "e_shnum oversized")
        end
    | Zero_member ->
        let n = min (String.length s) (64 + Rng.int rng 256) in
        (String.make n '\000' ^ String.sub s n (String.length s - n),
         Printf.sprintf "first %d bytes zeroed" n)
    | Swap_members ->
        (* Scramble the section-header table offset to point into data. *)
        (set_u32 s 40 (Rng.int rng (max 1 (String.length s))), "e_shoff scrambled")
  in
  (Bytes.of_string corrupted, detail)

let classify_elf bytes =
  match Image.read_result bytes with
  | Ok image -> (
      match Validate.elf image with [] -> Accepted | d :: _ -> Diagnosed d)
  | Error d -> Diagnosed d
  | exception e -> Crashed (Printexc.to_string e)

let run_elf ?(iterations = 20) ?(seed = 0x600DF00DL) (image : Image.t) =
  let rng = Rng.create seed in
  let pristine = Image.write image in
  let cases =
    List.concat_map
      (fun fault ->
        List.init iterations (fun _ ->
            let bytes, detail = corrupt_elf rng fault (Bytes.copy pristine) in
            { fault; detail; outcome = classify_elf bytes }))
      all_faults
  in
  let count p = List.length (List.filter p cases) in
  {
    total = List.length cases;
    accepted = count (fun c -> c.outcome = Accepted);
    diagnosed =
      count (fun c -> match c.outcome with Diagnosed _ -> true | _ -> false);
    cases;
  }

(* --- Execution-hang injection --------------------------------------------- *)

let hang_elfie ?(options = Elfie_core.Pinball2elf.default_options) pb =
  let spin b =
    let loop = Elfie_isa.Builder.here ~name:"hang" b in
    Elfie_isa.Builder.ins b Elfie_isa.Insn.Pause;
    Elfie_isa.Builder.jmp b loop
  in
  Elfie_core.Pinball2elf.convert
    ~options:{ options with Elfie_core.Pinball2elf.extra_on_exit = Some spin }
    pb

let pp_report fmt r =
  Format.fprintf fmt "@[<v>%d fault(s): %d diagnosed, %d benign, %d crashed@,"
    r.total r.diagnosed r.accepted
    (List.length (crashes r));
  List.iter
    (fun c ->
      match c.outcome with
      | Crashed msg ->
          Format.fprintf fmt "  CRASH %-16s %s: %s@," (fault_name c.fault)
            c.detail msg
      | _ -> ())
    r.cases;
  Format.fprintf fmt "@]"
