(** Native hardware-counter measurement (the libperfle / perf-stat
    analogue).

    Real ELFies program hardware performance counters from their
    callback routines and read them on exit; here the counters live in
    the machine, and this module provides the measurement methodology on
    top: repeated trials with distinct scheduler seeds (the paper
    averages ten runs) and mean/stddev summaries for whole programs and
    for ELFie regions. *)

type sample = {
  mean_cpi : float;
  stddev_cpi : float;
  instructions : int64;  (** of the last trial *)
  trials : int;
  failures : int;  (** trials that did not finish gracefully *)
  failure_classes : Elfie_supervise.Classify.t list;
      (** crash class of each failed trial, in trial order; empty for
          {!whole_program}, which has no per-trial outcome to classify.
          {!pp_sample} prints the aggregated tally. *)
}

val mean : float list -> float
val stddev : float list -> float

(** Measure a whole program natively, [trials] times. *)
val whole_program : ?trials:int -> ?base_seed:int64 -> Elfie_pin.Run.spec -> sample

(** Measure an ELFie region natively, [trials] times. Uses the slice-CPI
    counter window (post-warmup) when the ELFie carries a warmup mark.
    Failed (non-graceful) trials are excluded from the mean.

    Warm-once methodology: the warmup executes a single time at
    [base_seed] (run to the warmup mark and captured copy-on-write via
    {!Elfie_core.Elfie_runner.warm}), then each trial forks the capture
    and re-derives its scheduler/timer streams from [base_seed + i] —
    bit-identical to warming every trial from scratch with those seeds,
    at a fraction of the cost, sequentially or across pool domains.
    Images without a warmup mark fall back to one full run per trial. *)
val elfie_region :
  ?trials:int ->
  ?base_seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  Elfie_elf.Image.t ->
  sample

(** Like {!elfie_region}, but also returns every trial's raw outcome (in
    trial order) so supervision layers can classify {e why} trials
    failed instead of only counting them. [on_machine] is forwarded to
    the runner — the hook watchdog instrumentation attaches through.
    Passing [on_machine] keeps the sequential per-trial full-run path
    (the callback is caller state of unknown thread/fork safety). *)
val elfie_region_detailed :
  ?trials:int ->
  ?base_seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  ?on_machine:(Elfie_machine.Machine.t -> unit) ->
  Elfie_elf.Image.t ->
  sample * Elfie_core.Elfie_runner.outcome list

val pp_sample : Format.formatter -> sample -> unit
