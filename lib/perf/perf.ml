type sample = {
  mean_cpi : float;
  stddev_cpi : float;
  instructions : int64;
  trials : int;
  failures : int;
  failure_classes : Elfie_supervise.Classify.t list;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let whole_program ?(trials = 3) ?(base_seed = 1000L) spec =
  (* Trials are independent seeded runs, each on its own machine, so
     they fan out across pool domains; results stay in seed order. *)
  let results =
    Elfie_util.Pool.map
      (fun i ->
        let seed = Int64.add base_seed (Int64.of_int i) in
        Elfie_pin.Run.native { spec with Elfie_pin.Run.seed })
      (List.init trials Fun.id)
  in
  let ok = List.filter (fun (s : Elfie_pin.Run.stats) -> s.clean) results in
  let cpis = List.map (fun (s : Elfie_pin.Run.stats) -> s.cpi) ok in
  let last = List.nth results (trials - 1) in
  {
    mean_cpi = mean cpis;
    stddev_cpi = stddev cpis;
    instructions = last.Elfie_pin.Run.retired;
    trials;
    failures = trials - List.length ok;
    (* The whole-program path only knows clean/not-clean; no outcome to
       classify. *)
    failure_classes = [];
  }

let elfie_region_detailed ?(trials = 3) ?(base_seed = 2000L) ?fs_init ?cwd
    ?max_ins ?on_machine image =
  let trial i =
    let seed = Int64.add base_seed (Int64.of_int i) in
    Elfie_core.Elfie_runner.run ~seed ?fs_init ?cwd ?max_ins ?on_machine image
  in
  let idxs = List.init trials Fun.id in
  let results =
    match on_machine with
    (* An [on_machine] callback is caller state with unknown
       thread-safety (tools attach counters through it), so those runs
       stay sequential. *)
    | Some _ -> List.map trial idxs
    | None -> (
        (* Warm once at the base seed, fork per trial: the warmup
           executes a single time and each trial forks the captured
           machine copy-on-write, re-deriving its scheduler/timer
           streams from the trial seed. Forks are independent, so they
           fan out across pool domains with results identical at any
           [--jobs]. An image without a warmup mark (or one that fails
           before it) falls back to one full run per trial. *)
        match
          Elfie_core.Elfie_runner.warm ~seed:base_seed ?fs_init ?cwd ?max_ins
            image
        with
        | Ok warmed ->
            Elfie_util.Pool.map
              (fun i ->
                let seed = Int64.add base_seed (Int64.of_int i) in
                Elfie_core.Elfie_runner.resume ~seed ?max_ins warmed)
              idxs
        | Error _ -> Elfie_util.Pool.map trial idxs)
  in
  let ok =
    List.filter (fun (o : Elfie_core.Elfie_runner.outcome) -> o.graceful) results
  in
  let cpis = List.map (fun (o : Elfie_core.Elfie_runner.outcome) -> o.slice_cpi) ok in
  let instructions =
    match ok with
    | o :: _ -> o.Elfie_core.Elfie_runner.app_retired
    | [] -> 0L
  in
  let failure_classes =
    List.filter_map
      (fun (o : Elfie_core.Elfie_runner.outcome) ->
        if o.graceful then None
        else Some (Elfie_supervise.Classify.of_outcome o))
      results
  in
  ( {
      mean_cpi = mean cpis;
      stddev_cpi = stddev cpis;
      instructions;
      trials;
      failures = trials - List.length ok;
      failure_classes;
    },
    results )

let elfie_region ?trials ?base_seed ?fs_init ?cwd ?max_ins image =
  fst (elfie_region_detailed ?trials ?base_seed ?fs_init ?cwd ?max_ins image)

let pp_sample fmt s =
  Format.fprintf fmt "cpi %.4f +/- %.4f over %d trial(s) (%d failed, %Ld ins)"
    s.mean_cpi s.stddev_cpi s.trials s.failures s.instructions;
  if s.failure_classes <> [] then begin
    (* Aggregate the per-trial crash classes: "2x runaway, 1x timeout". *)
    let tally =
      List.fold_left
        (fun acc c ->
          let key = Elfie_supervise.Classify.to_string c in
          match List.assoc_opt key acc with
          | Some n -> (key, n + 1) :: List.remove_assoc key acc
          | None -> (key, 1) :: acc)
        [] s.failure_classes
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Format.fprintf fmt " [%s]"
      (String.concat ", "
         (List.map (fun (k, n) -> Printf.sprintf "%dx %s" n k) tally))
  end
