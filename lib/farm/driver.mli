(** The ELFie farm batch driver: a resumable, supervised, cache-backed
    front end over the region pipeline.

    A {e manifest} names a batch of jobs, each a (program, region
    parameters) pair. The driver fans jobs across the
    {!Elfie_util.Pool} domains; every job runs under
    {!Elfie_supervise.Supervisor} (crash classification, retry,
    quarantine) and journals its completion through the J1
    {!Elfie_supervise.Journal}, so [--resume] after a kill restarts only
    unfinished jobs. Every pipeline stage of a job — BBV profile,
    SimPoint selection, region pinballs, ELFies, measurements — goes
    through the content-addressed {!Store}: duplicate submissions hit
    cache instead of re-executing, concurrent drivers racing on one key
    perform exactly one computation (per-key advisory locks), and a
    corrupt cached artifact quarantines and recomputes. *)

type params = {
  slice_size : int64;
  max_k : int;
  dims : int;
  sp_seed : int64;  (** SimPoint projection / k-means seed *)
  warmup : int64;  (** warmup instructions per region *)
  trials : int;  (** native measurement trials per region *)
  base_seed : int64;  (** measurement base seed (also the run seed) *)
  max_regions : int;  (** cap on measured regions per job; 0 = all *)
}

val default_params : params

type job = {
  j_name : string;  (** unique within the batch; the journal job name *)
  j_spec : Elfie_workloads.Programs.spec;
  j_params : params;
}

val job : ?params:params -> name:string -> Elfie_workloads.Programs.spec -> job

(** Inputs hashed for journal resume: the job is skipped on [--resume]
    only if none of these changed. *)
val job_inputs : job -> string list

(** {1 Manifest}

    One job per non-comment line:

    {v <name> bench=<suite benchmark> [slice=N] [max-k=N] [warmup=N]
       [trials=N] [seed=N] [regions=N] v}

    [bench] must name an {!Elfie_workloads.Suite} benchmark; blank lines
    and [#] comments are ignored. *)

val manifest_of_string :
  artifact:string -> string -> (job list, Elfie_util.Diag.t) result

val load_manifest : string -> (job list, Elfie_util.Diag.t) result

(** {1 Running} *)

type region_result = {
  rr_cluster : int;
  rr_weight : float;
  rr_cpi : float option;  (** [None] when every trial failed *)
  rr_trials : int;
  rr_failures : int;
}

type job_result = {
  jr_name : string;
  jr_k : int;
  jr_total_ins : int64;
  jr_regions : region_result list;
  jr_pred_cpi : float option;  (** weight-normalized predicted CPI *)
  jr_hits : int;  (** store hits across the job's stages *)
  jr_misses : int;  (** store misses (computations performed) *)
}

type outcome = {
  o_name : string;
  o_skipped : bool;  (** satisfied from the journal; nothing ran *)
  o_report : Elfie_supervise.Supervisor.report;
  o_result : job_result option;  (** [None] when quarantined *)
}

type batch = {
  outcomes : outcome list;  (** manifest order *)
  b_hits : int;
  b_misses : int;
  b_skipped : int;
  b_quarantined : int;
  b_store_quarantines : Store.quarantine list;
      (** corrupt artifacts encountered (and survived) during the batch *)
}

(** Run one job (supervised, cache-backed). With [resume] and a
    [journal], a job whose latest record is graceful for the same
    inputs is skipped without running. With [shard], every stage fetch
    tiers local store → owning daemon → compute ({!Shard}); a shard
    outage degrades to the local path. *)
val run_job :
  store:Store.t ->
  ?shard:Shard.t ->
  ?journal:Elfie_supervise.Journal.t ->
  ?resume:bool ->
  job ->
  outcome

(** Run a batch across up to [jobs] pool domains (default: the pool's
    process default). Job names must be unique; [Invalid_argument]
    otherwise. Worker exceptions are classified and quarantined by the
    supervisor — the batch itself never raises from a job failure. *)
val run :
  ?jobs:int ->
  store:Store.t ->
  ?shard:Shard.t ->
  ?journal:Elfie_supervise.Journal.t ->
  ?resume:bool ->
  job list ->
  batch

val pp_outcome : Format.formatter -> outcome -> unit
val pp_batch : Format.formatter -> batch -> unit
