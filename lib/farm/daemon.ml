module Metrics = Elfie_obs.Metrics
module Trace = Elfie_obs.Trace
module Log = Elfie_obs.Log

(* --- wire protocol ----------------------------------------------------------- *)

module Wire = struct
  let magic = "ELFD"
  let version = 2
  let header_bytes = 26 (* magic 4 + version 1 + opcode 1 + len 4 + md5 16 *)
  let ctx_bytes = 16 (* v2+: trace id 8 + span id 8, little-endian *)
  let max_payload = 256 * 1024 * 1024

  type opcode =
    | Get
    | Put
    | Stats
    | Health
    | Metrics_req
    | Events_req
    | R_hit
    | R_miss
    | R_ok
    | R_stats
    | R_health
    | R_metrics
    | R_events
    | R_err

  let opcode_byte = function
    | Get -> 0x01
    | Put -> 0x02
    | Stats -> 0x03
    | Health -> 0x04
    | Metrics_req -> 0x05
    | Events_req -> 0x06
    | R_hit -> 0x81
    | R_miss -> 0x82
    | R_ok -> 0x83
    | R_stats -> 0x84
    | R_health -> 0x85
    | R_metrics -> 0x86
    | R_events -> 0x87
    | R_err -> 0xFF

  let opcode_of_byte = function
    | 0x01 -> Some Get
    | 0x02 -> Some Put
    | 0x03 -> Some Stats
    | 0x04 -> Some Health
    | 0x05 -> Some Metrics_req
    | 0x06 -> Some Events_req
    | 0x81 -> Some R_hit
    | 0x82 -> Some R_miss
    | 0x83 -> Some R_ok
    | 0x84 -> Some R_stats
    | 0x85 -> Some R_health
    | 0x86 -> Some R_metrics
    | 0x87 -> Some R_events
    | 0xFF -> Some R_err
    | _ -> None

  let opcode_name = function
    | Get -> "get"
    | Put -> "put"
    | Stats -> "stats"
    | Health -> "health"
    | Metrics_req -> "metrics"
    | Events_req -> "events"
    | R_hit -> "hit"
    | R_miss -> "miss"
    | R_ok -> "ok"
    | R_stats -> "stats-reply"
    | R_health -> "health-reply"
    | R_metrics -> "metrics-reply"
    | R_events -> "events-reply"
    | R_err -> "err"

  type error =
    | Closed
    | Torn
    | Bad_magic
    | Version_skew
    | Bad_opcode
    | Too_large
    | Bad_checksum
    | Timeout

  let error_to_string = function
    | Closed -> "closed"
    | Torn -> "torn"
    | Bad_magic -> "bad-magic"
    | Version_skew -> "version-skew"
    | Bad_opcode -> "bad-opcode"
    | Too_large -> "too-large"
    | Bad_checksum -> "checksum-mismatch"
    | Timeout -> "timeout"

  (* The trace context carried by every v2 frame: the caller's process
     trace ID plus the ID of the span covering this request. v1 frames
     (and explicit zeros) carry no correlation. *)
  type ctx = { trace_id : int64; span_id : int64 }

  let no_ctx = { trace_id = 0L; span_id = 0L }

  let put_u64_le b v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr
           (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
    done

  let get_u64_le s off =
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code s.[off + i]))
    done;
    !v

  let render_ctx ctx =
    let b = Buffer.create ctx_bytes in
    put_u64_le b ctx.trace_id;
    put_u64_le b ctx.span_id;
    Buffer.contents b

  let parse_ctx s =
    { trace_id = get_u64_le s 0; span_id = get_u64_le s 8 }

  (* v2 frames insert the 16 context bytes between the header and the
     payload, and the digest covers context ^ payload — so a flipped
     context byte is a checksum mismatch like any payload damage. v1
     frames ([~version:1], and what old peers send) have no context and
     digest the payload alone. *)
  let encode ?version:(v = version) ?(trace = no_ctx) op payload =
    let has_ctx = v >= 2 in
    let ctx = if has_ctx then render_ctx trace else "" in
    let len = String.length payload in
    let b = Buffer.create (header_bytes + String.length ctx + len) in
    Buffer.add_string b magic;
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr (opcode_byte op));
    Buffer.add_char b (Char.chr (len land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
    Buffer.add_string b (Digest.string (ctx ^ payload));
    Buffer.add_string b ctx;
    Buffer.add_string b payload;
    Buffer.contents b

  (* Judge a complete 26-byte header: its version (1 and 2 both decode;
     anything newer is skew), opcode and declared payload length. *)
  let parse_header h =
    if String.sub h 0 4 <> magic then Error Bad_magic
    else
      let v = Char.code h.[4] in
      if v < 1 || v > version then Error Version_skew
      else
        match opcode_of_byte (Char.code h.[5]) with
        | None -> Error Bad_opcode
        | Some op ->
            let len =
              Char.code h.[6]
              lor (Char.code h.[7] lsl 8)
              lor (Char.code h.[8] lsl 16)
              lor (Char.code h.[9] lsl 24)
            in
            if len < 0 || len > max_payload then Error Too_large
            else Ok (v, op, len, String.sub h 10 16)

  let check_payload op ~ctx payload digest =
    if Digest.string (ctx ^ payload) <> digest then Error Bad_checksum
    else
      Ok (op, payload, if ctx = "" then no_ctx else parse_ctx ctx)

  let decode_ctx frame =
    if String.length frame < header_bytes then Error Torn
    else
      match parse_header (String.sub frame 0 header_bytes) with
      | Error e -> Error e
      | Ok (v, op, len, digest) ->
          let nctx = if v >= 2 then ctx_bytes else 0 in
          if String.length frame <> header_bytes + nctx + len then Error Torn
          else
            check_payload op
              ~ctx:(String.sub frame header_bytes nctx)
              (String.sub frame (header_bytes + nctx) len)
              digest

  let decode frame =
    Result.map (fun (op, payload, _ctx) -> (op, payload)) (decode_ctx frame)

  (* EAGAIN here is the socket's SO_RCVTIMEO / SO_SNDTIMEO deadline
     firing — the per-request timeout, not congestion. *)
  let read_exactly fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off = n then Ok (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (n - off) with
        | 0 -> Error (if off = 0 then Closed else Torn)
        | k -> go (off + k)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            Error Timeout
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error _ ->
            Error (if off = 0 then Closed else Torn)
    in
    go 0

  let read_frame_ctx fd =
    match read_exactly fd header_bytes with
    | Error _ as e -> e
    | Ok h -> (
        match parse_header h with
        | Error _ as e -> e
        | Ok (v, op, len, digest) -> (
            let nctx = if v >= 2 then ctx_bytes else 0 in
            match read_exactly fd (nctx + len) with
            | Error Closed -> Error (if nctx + len = 0 then Closed else Torn)
            | Error _ as e -> e
            | Ok rest ->
                check_payload op ~ctx:(String.sub rest 0 nctx)
                  (String.sub rest nctx len)
                  digest))

  let read_frame fd =
    Result.map (fun (op, payload, _ctx) -> (op, payload)) (read_frame_ctx fd)

  let write_frame ?trace fd op payload =
    let frame = Bytes.of_string (encode ?trace op payload) in
    let rec go off len =
      if len = 0 then Ok ()
      else
        match Unix.write fd frame off len with
        | n -> go (off + n) (len - n)
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            Error Timeout
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
        | exception Unix.Unix_error _ -> Error Closed
    in
    go 0 (Bytes.length frame)
end

(* --- stats payload ----------------------------------------------------------- *)

type stats = {
  st_bytes : int64;
  st_artifacts : (string * int) list;
  st_quarantine_count : int;
  st_quarantine_bytes : int64;
  st_quarantine_reasons : (string * int) list;
}

let render_stats st =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "bytes %Ld\n" st.st_bytes);
  List.iter
    (fun (kind, n) -> Buffer.add_string b (Printf.sprintf "artifact %s %d\n" kind n))
    st.st_artifacts;
  Buffer.add_string b
    (Printf.sprintf "quarantine_count %d\n" st.st_quarantine_count);
  Buffer.add_string b
    (Printf.sprintf "quarantine_bytes %Ld\n" st.st_quarantine_bytes);
  List.iter
    (fun (reason, n) ->
      Buffer.add_string b (Printf.sprintf "quarantine_reason %s %d\n" reason n))
    st.st_quarantine_reasons;
  Buffer.contents b

let parse_stats s =
  let st =
    List.fold_left
      (fun st line ->
        match (st, String.split_on_char ' ' line) with
        | None, _ -> None
        | Some st, [ "bytes"; v ] ->
            Option.map (fun v -> { st with st_bytes = v }) (Int64.of_string_opt v)
        | Some st, [ "artifact"; kind; n ] ->
            Option.map
              (fun n -> { st with st_artifacts = st.st_artifacts @ [ (kind, n) ] })
              (int_of_string_opt n)
        | Some st, [ "quarantine_count"; n ] ->
            Option.map
              (fun n -> { st with st_quarantine_count = n })
              (int_of_string_opt n)
        | Some st, [ "quarantine_bytes"; v ] ->
            Option.map
              (fun v -> { st with st_quarantine_bytes = v })
              (Int64.of_string_opt v)
        | Some st, [ "quarantine_reason"; reason; n ] ->
            Option.map
              (fun n ->
                {
                  st with
                  st_quarantine_reasons =
                    st.st_quarantine_reasons @ [ (reason, n) ];
                })
              (int_of_string_opt n)
        | Some _, ([] | [ "" ]) -> st
        | Some _, _ -> None)
      (Some
         {
           st_bytes = 0L;
           st_artifacts = [];
           st_quarantine_count = 0;
           st_quarantine_bytes = 0L;
           st_quarantine_reasons = [];
         })
      (String.split_on_char '\n' s)
  in
  st

let stats_of_store store =
  let qcount, qbytes, qreasons = Store.quarantine_stats store in
  {
    st_bytes = Store.size_bytes store;
    st_artifacts =
      List.map
        (fun k -> (Store.kind_name k, Store.artifact_count store k))
        Store.all_kinds;
    st_quarantine_count = qcount;
    st_quarantine_bytes = qbytes;
    st_quarantine_reasons = qreasons;
  }

(* --- metrics ----------------------------------------------------------------- *)

let m_requests =
  Metrics.counter "elfie_daemon_requests_total"
    ~help:"Daemon requests served, by opcode and response"

(* Unix-socket request service is dominated by store IO: decades from
   10 µs (health) to seconds (large artifact puts), far below the
   Prometheus default 5 ms floor. *)
let latency_buckets =
  [ 1e-5; 5e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 2.0 ]

let m_req_seconds =
  Metrics.histogram "elfie_daemon_request_seconds" ~buckets:latency_buckets
    ~help:"Server-side wall time per daemon request, by opcode"

let m_uptime =
  Metrics.gauge "elfie_daemon_uptime_seconds"
    ~help:"Seconds since this daemon started, refreshed at each scrape"

let m_connections =
  Metrics.counter "elfie_daemon_connections_total"
    ~help:"Client connections accepted by the daemon"

let m_wire_errors =
  Metrics.counter "elfie_daemon_wire_errors_total"
    ~help:"Frames the daemon failed to decode, by reason"

(* --- daemon ------------------------------------------------------------------ *)

type tamper =
  | Pass
  | Rewrite of (string -> string)
  | Truncate of int
  | Hang_response
  | Drop_connection

type t = {
  d_store : Store.t;
  d_path : string;
  d_listen : Unix.file_descr;
  d_tamper : unit -> tamper;
  d_running : bool Atomic.t;
  d_started : float;
  d_conns : (Unix.file_descr, unit) Hashtbl.t;
  d_lock : Mutex.t;
  mutable d_threads : Thread.t list; (* handler threads; guarded by d_lock *)
  mutable d_accept : Thread.t option;
}

let socket_path d = d.d_path
let store d = d.d_store

let parse_request payload ~expect_payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some i -> (
      match String.index_from_opt payload (i + 1) '\n' with
      | None -> None
      | Some j -> (
          let kind_s = String.sub payload 0 i in
          let dig = String.sub payload (i + 1) (j - i - 1) in
          let fmt_end, body =
            if expect_payload then
              match String.index_from_opt payload (j + 1) '\n' with
              | None -> (-1, "")
              | Some k ->
                  (k, String.sub payload (k + 1) (String.length payload - k - 1))
            else (String.length payload, "")
          in
          if fmt_end < 0 then None
          else
            let fmt_s = String.sub payload (j + 1) (fmt_end - j - 1) in
            match (Store.kind_of_name kind_s, int_of_string_opt fmt_s) with
            | Some kind, Some format when dig <> "" ->
                Some (Store.key_of_digest kind dig, format, body)
            | _ -> None))

let handle_request d op payload =
  match op with
  | Wire.Get -> (
      match parse_request payload ~expect_payload:false with
      | None -> (Wire.R_err, "bad-request")
      | Some (key, format, _) -> (
          match Store.get d.d_store key ~format with
          | Some p -> (Wire.R_hit, p)
          | None -> (Wire.R_miss, "")))
  | Wire.Put -> (
      match parse_request payload ~expect_payload:true with
      | None -> (Wire.R_err, "bad-request")
      | Some (key, format, body) ->
          Store.put d.d_store key ~format body;
          (Wire.R_ok, ""))
  | Wire.Stats -> (Wire.R_stats, render_stats (stats_of_store d.d_store))
  | Wire.Health ->
      ( Wire.R_health,
        Printf.sprintf "ok pid=%d version=%d root=%s" (Unix.getpid ())
          Wire.version
          (Store.root d.d_store) )
  | Wire.Metrics_req ->
      (* Refresh point-in-time gauges so every scrape sees them
         current. *)
      Metrics.set m_uptime (Unix.gettimeofday () -. d.d_started);
      (Wire.R_metrics, Metrics.exposition ())
  | Wire.Events_req ->
      let limit =
        match int_of_string_opt (String.trim payload) with
        | Some n when n > 0 -> n
        | _ -> 256
      in
      (Wire.R_events, Log.to_jsonl ~limit ())
  | _ -> (Wire.R_err, "bad-request")

let write_raw fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len = 0 then ()
    else
      match Unix.write fd b off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error _ -> ()
  in
  go 0 (Bytes.length b)

(* Send (or, under tamper, mangle / withhold) one response frame. The
   caller's trace context is echoed back on the response. [`Close]
   means the connection must not be reused. *)
let respond d fd ~trace op payload =
  let frame = Wire.encode ~trace op payload in
  match d.d_tamper () with
  | Pass -> (
      match Wire.write_frame ~trace fd op payload with
      | Ok () -> `Continue
      | Error _ -> `Close)
  | Rewrite f ->
      write_raw fd (f frame);
      `Close
  | Truncate n ->
      write_raw fd (String.sub frame 0 (min n (String.length frame)));
      `Close
  | Hang_response ->
      (* Hold the connection open, sending nothing, until the client's
         deadline fires (or the daemon stops). *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get d.d_running && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.02
      done;
      `Close
  | Drop_connection -> `Close

let serve_connection d fd =
  let rec loop () =
    if not (Atomic.get d.d_running) then ()
    else
      match Wire.read_frame_ctx fd with
      | Error (Wire.Closed | Wire.Torn | Wire.Timeout) -> ()
      | Error e -> (
          (* The stream is out of sync past a bad header; answer the
             typed reason, then drop the connection. *)
          Metrics.inc m_wire_errors
            ~labels:[ ("reason", Wire.error_to_string e) ];
          Log.warn "daemon.wire_error"
            ~attrs:[ ("reason", Trace.S (Wire.error_to_string e)) ];
          match respond d fd ~trace:Wire.no_ctx Wire.R_err
                  (Wire.error_to_string e)
          with
          | `Continue | `Close -> ())
      | Ok (op, payload, ctx) ->
          (* The handler span is tagged with the caller's trace and span
             IDs, so trace-merge can line this server-side work up under
             the client's request span. *)
          let sp =
            Trace.begin_span "daemon.request"
              ~attrs:
                ([ ("op", Trace.S (Wire.opcode_name op)) ]
                @
                if ctx.Wire.trace_id = 0L then []
                else
                  [
                    ("trace_id", Trace.S (Trace.hex_id ctx.Wire.trace_id));
                    ("span_id", Trace.S (Trace.hex_id ctx.Wire.span_id));
                  ])
          in
          let t0 = Unix.gettimeofday () in
          let rop, rpayload = handle_request d op payload in
          let verdict = respond d fd ~trace:ctx rop rpayload in
          Metrics.observe m_req_seconds
            ~labels:[ ("op", Wire.opcode_name op) ]
            (Unix.gettimeofday () -. t0);
          Metrics.inc m_requests
            ~labels:
              [
                ("op", Wire.opcode_name op); ("response", Wire.opcode_name rop);
              ];
          Trace.end_span sp
            ~attrs:[ ("response", Trace.S (Wire.opcode_name rop)) ];
          (match verdict with `Continue -> loop () | `Close -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect d.d_lock (fun () -> Hashtbl.remove d.d_conns fd);
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let accept_loop d =
  while Atomic.get d.d_running do
    match Unix.accept d.d_listen with
    | fd, _ ->
        Metrics.inc m_connections;
        let th = Thread.create (fun () -> serve_connection d fd) () in
        Mutex.protect d.d_lock (fun () ->
            Hashtbl.replace d.d_conns fd ();
            d.d_threads <- th :: d.d_threads)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        (* stop() closed the listening socket *)
        Atomic.set d.d_running false
  done

(* Bind the daemon socket, recovering a stale socket file: if nothing
   accepts on the leftover path (a previous daemon crashed without
   unlinking), unlink and rebind; a live listener is an error. *)
let rec bind_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let stale =
        match e with
        | Unix.Unix_error (Unix.EADDRINUSE, _, _) -> (
            let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close probe with Unix.Unix_error _ -> ())
              (fun () ->
                match Unix.connect probe (Unix.ADDR_UNIX path) with
                | () -> false (* live daemon *)
                | exception
                    Unix.Unix_error
                      ( ( Unix.ECONNREFUSED | Unix.ENOENT
                        | Unix.EPROTOTYPE ),
                        _,
                        _ ) ->
                    true))
        | _ -> raise e
      in
      if not stale then
        failwith (Printf.sprintf "daemon already listening on %s" path);
      Trace.instant "daemon.stale_socket_recovered"
        ~attrs:[ ("path", Trace.S path) ];
      Log.warn "daemon.stale_socket_recovered"
        ~attrs:[ ("path", Trace.S path) ];
      (try Sys.remove path with Sys_error _ -> ());
      bind_socket path

let start ?(tamper = fun () -> Pass) ~store ~socket_path () =
  let listen = bind_socket socket_path in
  Unix.listen listen 64;
  let d =
    {
      d_store = store;
      d_path = socket_path;
      d_listen = listen;
      d_tamper = tamper;
      d_running = Atomic.make true;
      d_started = Unix.gettimeofday ();
      d_conns = Hashtbl.create 8;
      d_lock = Mutex.create ();
      d_threads = [];
      d_accept = None;
    }
  in
  d.d_accept <- Some (Thread.create (fun () -> accept_loop d) ());
  Trace.instant "daemon.serve"
    ~attrs:
      [ ("path", Trace.S socket_path); ("root", Trace.S (Store.root store)) ];
  Log.info "daemon.serve"
    ~attrs:
      [
        ("path", Trace.S socket_path);
        ("root", Trace.S (Store.root store));
        ("version", Trace.I (Int64.of_int Wire.version));
      ];
  d

let stop ?(unlink = true) d =
  if Atomic.exchange d.d_running false then begin
    (* Closing a socket does NOT wake a thread blocked in accept() on
       it; a throwaway connection does. The accept loop wakes, sees
       [d_running] false, and exits. *)
    (let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     (try Unix.connect probe (Unix.ADDR_UNIX d.d_path)
      with Unix.Unix_error _ -> ());
     try Unix.close probe with Unix.Unix_error _ -> ());
    (match d.d_accept with Some th -> Thread.join th | None -> ());
    (try Unix.close d.d_listen with Unix.Unix_error _ -> ());
    (* Shutting down a connected socket DOES wake its handler's read. *)
    Mutex.protect d.d_lock (fun () ->
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          d.d_conns);
    let threads = Mutex.protect d.d_lock (fun () -> d.d_threads) in
    List.iter Thread.join threads;
    Log.info "daemon.stop" ~attrs:[ ("path", Trace.S d.d_path) ];
    if unlink then try Sys.remove d.d_path with Sys_error _ -> ()
  end
