module Programs = Elfie_workloads.Programs
module Suite = Elfie_workloads.Suite
module Simpoint = Elfie_simpoint.Simpoint
module Perf = Elfie_perf.Perf
module Supervisor = Elfie_supervise.Supervisor
module Classify = Elfie_supervise.Classify
module Trace = Elfie_obs.Trace
module Diag = Elfie_util.Diag

type params = {
  slice_size : int64;
  max_k : int;
  dims : int;
  sp_seed : int64;
  warmup : int64;
  trials : int;
  base_seed : int64;
  max_regions : int;
}

let default_params =
  {
    slice_size = 10_000L;
    max_k = 10;
    dims = 15;
    sp_seed = 7L;
    warmup = 2_000L;
    trials = 3;
    base_seed = 2000L;
    max_regions = 0;
  }

type job = { j_name : string; j_spec : Programs.spec; j_params : params }

let job ?(params = default_params) ~name spec =
  { j_name = name; j_spec = spec; j_params = params }

let job_inputs j =
  let p = j.j_params in
  [
    j.j_name;
    j.j_spec.Programs.name;
    Int64.to_string p.slice_size;
    string_of_int p.max_k;
    string_of_int p.dims;
    Int64.to_string p.sp_seed;
    Int64.to_string p.warmup;
    string_of_int p.trials;
    Int64.to_string p.base_seed;
    string_of_int p.max_regions;
  ]

(* --- manifest --------------------------------------------------------------- *)

let manifest_of_string ~artifact contents =
  let parse_line lineno line jobs =
    Result.bind jobs @@ fun jobs ->
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let tokens =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun t -> t <> "")
    in
    match tokens with
    | [] -> Ok jobs
    | name :: kvs -> (
        let bench = ref None and p = ref default_params in
        let bad = ref None in
        let set_i64 f v =
          match Int64.of_string_opt v with
          | Some v -> p := f !p v
          | None -> bad := Some (Printf.sprintf "not an integer: %s" v)
        in
        let set_int f v =
          match int_of_string_opt v with
          | Some v -> p := f !p v
          | None -> bad := Some (Printf.sprintf "not an integer: %s" v)
        in
        List.iter
          (fun kv ->
            match String.index_opt kv '=' with
            | None ->
                bad := Some (Printf.sprintf "expected key=value, got %s" kv)
            | Some i -> (
                let k = String.sub kv 0 i in
                let v = String.sub kv (i + 1) (String.length kv - i - 1) in
                match k with
                | "bench" -> bench := Some v
                | "slice" -> set_i64 (fun p v -> { p with slice_size = v }) v
                | "max-k" -> set_int (fun p v -> { p with max_k = v }) v
                | "dims" -> set_int (fun p v -> { p with dims = v }) v
                | "warmup" -> set_i64 (fun p v -> { p with warmup = v }) v
                | "trials" -> set_int (fun p v -> { p with trials = v }) v
                | "seed" -> set_i64 (fun p v -> { p with base_seed = v }) v
                | "sp-seed" -> set_i64 (fun p v -> { p with sp_seed = v }) v
                | "regions" ->
                    set_int (fun p v -> { p with max_regions = v }) v
                | k -> bad := Some (Printf.sprintf "unknown key %s" k)))
          kvs;
        match (!bad, !bench) with
        | Some msg, _ ->
            Error
              (Diag.f ~artifact Diag.Malformed "line %d: %s" lineno msg)
        | None, None ->
            Error
              (Diag.f ~artifact Diag.Malformed
                 "line %d: job %s has no bench= field" lineno name)
        | None, Some bench -> (
            match Suite.find bench with
            | None ->
                Error
                  (Diag.f ~artifact Diag.Malformed
                     "line %d: unknown benchmark %s" lineno bench)
            | Some b ->
                Ok ({ j_name = name; j_spec = b.Suite.spec; j_params = !p }
                    :: jobs)))
  in
  let lines = String.split_on_char '\n' contents in
  List.fold_left
    (fun (acc, lineno) line -> (parse_line lineno line acc, lineno + 1))
    (Ok [], 1) lines
  |> fst
  |> Result.map List.rev

let load_manifest path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> manifest_of_string ~artifact:path contents
  | exception Sys_error msg ->
      Error (Diag.f ~artifact:path Diag.Io_error "%s" msg)

(* --- one job ---------------------------------------------------------------- *)

type region_result = {
  rr_cluster : int;
  rr_weight : float;
  rr_cpi : float option;
  rr_trials : int;
  rr_failures : int;
}

type job_result = {
  jr_name : string;
  jr_k : int;
  jr_total_ins : int64;
  jr_regions : region_result list;
  jr_pred_cpi : float option;
  jr_hits : int;
  jr_misses : int;
}

type outcome = {
  o_name : string;
  o_skipped : bool;
  o_report : Supervisor.report;
  o_result : job_result option;
}

let workdir = "/work"

(* The cache-backed pipeline of one job. Every stage is keyed by program
   bytes + the parameters that determine it, so a warm store serves the
   whole chain without executing the program once, and a [max_k] change
   recomputes only the selection and downstream stages (the cached BBV
   profile is reused). *)
let compute_job ~backend ~count j =
  let p = j.j_params in
  let program =
    Bytes.to_string (Elfie_elf.Image.write (Programs.image j.j_spec))
  in
  let run_spec () = Programs.run_spec ~seed:p.base_seed j.j_spec in
  let profile =
    Codec.fetch_bbv ~on_result:count backend
      (Codec.bbv_key ~program ~slice_size:p.slice_size ~seed:p.base_seed ())
      (fun () ->
        Trace.with_span "farm.profile"
          ~attrs:[ ("job", Trace.S j.j_name) ]
          (fun _ ->
            Elfie_pin.Bbv.profile (run_spec ()) ~slice_size:p.slice_size))
  in
  let sp_params =
    {
      Simpoint.slice_size = p.slice_size;
      warmup = p.warmup;
      max_k = p.max_k;
      dims = p.dims;
      seed = p.sp_seed;
    }
  in
  let sel =
    Codec.fetch_selection ~on_result:count backend
      (Codec.selection_key ~program ~params:sp_params ~seed:p.base_seed ())
      (fun () ->
        Trace.with_span "farm.select"
          ~attrs:[ ("job", Trace.S j.j_name) ]
          (fun _ -> Simpoint.select ~params:sp_params profile))
  in
  (* Highest-weight clusters first; a [max_regions] cap measures the
     regions that dominate the prediction. *)
  let regions =
    List.stable_sort
      (fun (a : Simpoint.region) (b : Simpoint.region) ->
        match compare b.weight a.weight with
        | 0 -> compare a.cluster b.cluster
        | c -> c)
      sel.Simpoint.regions
  in
  let regions =
    if p.max_regions > 0 then List.filteri (fun i _ -> i < p.max_regions) regions
    else regions
  in
  let measure (r : Simpoint.region) =
    Trace.with_span "farm.region"
      ~attrs:
        [ ("job", Trace.S j.j_name);
          ("cluster", Trace.I (Int64.of_int r.cluster)) ]
    @@ fun _ ->
    let pb_name = Printf.sprintf "%s_c%d" j.j_name r.cluster in
    let pinball =
      Codec.fetch_pinball ~on_result:count backend
        (Codec.pinball_key ~program ~start:r.start ~length:r.length
           ~seed:p.base_seed ())
        ~name:pb_name
        (fun () ->
          let cap =
            Elfie_pin.Logger.capture (run_spec ()) ~name:pb_name
              { Elfie_pin.Logger.start = r.start; length = r.length }
          in
          if not cap.Elfie_pin.Logger.reached_end then
            failwith
              (Printf.sprintf "region c%d ends past program exit" r.cluster);
          cap.Elfie_pin.Logger.pinball)
    in
    let image, sysstate =
      Codec.fetch_elfie ~on_result:count backend
        (Codec.elfie_key ~program ~start:r.start ~length:r.length
           ~warmup:r.warmup_actual ~seed:p.base_seed ())
        (fun () ->
          let sysstate = Elfie_pin.Sysstate.analyze pinball in
          let options =
            {
              Elfie_core.Pinball2elf.default_options with
              sysstate = Some sysstate;
              marker = Some (Elfie_core.Pinball2elf.Ssc 0x4649L);
              warmup_mark =
                (if r.warmup_actual > 0L then Some r.warmup_actual else None);
            }
          in
          (Elfie_core.Pinball2elf.convert ~options pinball, sysstate))
    in
    let m =
      Codec.fetch_measurement ~on_result:count backend
        (Codec.measurement_key ~program ~start:r.start ~length:r.length
           ~warmup:r.warmup_actual ~trials:p.trials ~base_seed:p.base_seed)
        (fun () ->
          Trace.with_span "farm.measure"
            ~attrs:[ ("job", Trace.S j.j_name) ]
          @@ fun _ ->
          let sample =
            Perf.elfie_region ~trials:p.trials ~base_seed:p.base_seed
              ~fs_init:(fun fs ->
                Elfie_pin.Sysstate.install sysstate fs ~workdir)
              ~cwd:workdir image
          in
          {
            Codec.m_cluster = r.cluster;
            m_weight = r.weight;
            m_cpi = sample.Perf.mean_cpi;
            m_stddev = sample.Perf.stddev_cpi;
            m_instructions = sample.Perf.instructions;
            m_trials = sample.Perf.trials;
            m_failures = sample.Perf.failures;
          })
    in
    {
      rr_cluster = m.Codec.m_cluster;
      rr_weight = m.Codec.m_weight;
      rr_cpi =
        (if m.Codec.m_failures >= m.Codec.m_trials then None
         else Some m.Codec.m_cpi);
      rr_trials = m.Codec.m_trials;
      rr_failures = m.Codec.m_failures;
    }
  in
  let region_results = List.map measure regions in
  let num, den =
    List.fold_left
      (fun (num, den) rr ->
        match rr.rr_cpi with
        | Some cpi -> (num +. (rr.rr_weight *. cpi), den +. rr.rr_weight)
        | None -> (num, den))
      (0.0, 0.0) region_results
  in
  ( sel,
    region_results,
    (if den > 0.0 then Some (num /. den) else None),
    profile.Elfie_pin.Bbv.total_instructions )

let run_job ~store ?shard ?journal ?(resume = true) j =
  Elfie_obs.Log.info "farm.job"
    ~attrs:
      [
        ("job", Trace.S j.j_name);
        ("tier", Trace.S (match shard with Some _ -> "sharded" | None -> "local"));
      ];
  (* With a shard router, every stage fetch tiers local-store-first,
     then the key's owning daemon, then compute — shard trouble degrades
     to the plain local path. *)
  let backend =
    match shard with
    | Some sh -> Shard.backend sh
    | None -> Codec.store_backend store
  in
  let hits = ref 0 and misses = ref 0 in
  let count = function `Hit -> incr hits | `Miss -> incr misses in
  let report, value =
    Trace.with_span "farm.job" ~attrs:[ ("job", Trace.S j.j_name) ]
    @@ fun _ ->
    Supervisor.supervise ~job:j.j_name ?journal ~resume
      ~inputs:(job_inputs j)
      (fun ~attempt_no:_ ~seed:_ ~budget:_ ->
        let sel, regions, pred, total_ins = compute_job ~backend ~count j in
        ( Some
            {
              jr_name = j.j_name;
              jr_k = sel.Simpoint.k;
              jr_total_ins = total_ins;
              jr_regions = regions;
              jr_pred_cpi = pred;
              jr_hits = !hits;
              jr_misses = !misses;
            },
          Classify.Graceful ))
  in
  {
    o_name = j.j_name;
    o_skipped = report.Supervisor.skipped;
    o_report = report;
    o_result =
      (* Hit/miss counts accumulate across supervisor retries; refresh
         them so the result reflects the whole supervised job. *)
      Option.map
        (fun r -> { r with jr_hits = !hits; jr_misses = !misses })
        value;
  }

(* --- batches ---------------------------------------------------------------- *)

type batch = {
  outcomes : outcome list;
  b_hits : int;
  b_misses : int;
  b_skipped : int;
  b_quarantined : int;
  b_store_quarantines : Store.quarantine list;
}

let run ?jobs ~store ?shard ?journal ?resume specs =
  let names = List.map (fun j -> j.j_name) specs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Elfie_farm.Driver.run: duplicate job names in manifest";
  let seen_quarantines = List.length (Store.quarantines store) in
  let labels = Array.of_list names in
  let outcomes =
    Elfie_util.Pool.map ?jobs
      ~label:(fun i -> labels.(i))
      (fun j -> run_job ~store ?shard ?journal ?resume j)
      specs
  in
  let count f = List.length (List.filter f outcomes) in
  {
    outcomes;
    b_hits =
      List.fold_left
        (fun acc o ->
          match o.o_result with Some r -> acc + r.jr_hits | None -> acc)
        0 outcomes;
    b_misses =
      List.fold_left
        (fun acc o ->
          match o.o_result with Some r -> acc + r.jr_misses | None -> acc)
        0 outcomes;
    b_skipped = count (fun o -> o.o_skipped);
    b_quarantined =
      count (fun o -> o.o_report.Supervisor.quarantined);
    b_store_quarantines =
      (let all = Store.quarantines store in
       List.filteri (fun i _ -> i >= seen_quarantines) all);
  }

let pp_outcome fmt o =
  if o.o_skipped then
    Format.fprintf fmt "%s: skipped (journalled graceful)" o.o_name
  else
    match o.o_result with
    | Some r ->
        Format.fprintf fmt
          "%s: k=%d regions=%d pred_cpi=%s cache %d hit / %d miss" o.o_name
          r.jr_k
          (List.length r.jr_regions)
          (match r.jr_pred_cpi with
          | Some c -> Printf.sprintf "%.3f" c
          | None -> "-")
          r.jr_hits r.jr_misses
    | None ->
        Format.fprintf fmt "%s: quarantined (%s after %d attempt(s))"
          o.o_name
          (Classify.to_string o.o_report.Supervisor.final)
          (List.length o.o_report.Supervisor.attempts)

let pp_batch fmt b =
  Format.fprintf fmt "@[<v>";
  List.iter (fun o -> Format.fprintf fmt "%a@," pp_outcome o) b.outcomes;
  Format.fprintf fmt
    "batch: %d job(s), %d skipped, %d quarantined, cache %d hit / %d miss"
    (List.length b.outcomes)
    b.b_skipped b.b_quarantined b.b_hits b.b_misses;
  if b.b_store_quarantines <> [] then
    Format.fprintf fmt ", %d corrupt artifact(s) quarantined"
      (List.length b.b_store_quarantines);
  Format.fprintf fmt "@]"
