(** Content-addressed, crash-safe artifact store — the ELFie farm's
    persistence layer.

    Every pipeline artifact (pinball, BBV profile, SimPoint selection,
    ELFie, measurement record) is keyed by a stable digest of the
    {e program bytes} plus its {e normalized parameters}, so duplicate
    submissions across a fleet hit cache instead of re-executing, and a
    changed parameter (say [max_k]) re-keys only the artifacts it
    actually affects (incremental SimPoint reuse).

    Crash-safety contract:

    - {b Atomic commits.} {!put} writes to a temporary file in the
      artifact's directory, flushes and [fsync]s it, then atomically
      renames it into place (and fsyncs the directory), so a reader
      never observes a half-written artifact under its final name and a
      power-loss-style kill leaves at most an orphan temp file.
    - {b Self-describing artifacts.} Every file carries a header with
      the store magic + version, artifact kind, payload format version,
      the key digest, producer metadata, payload length and payload
      checksum.
    - {b Corruption quarantine.} {!get} re-verifies the header and the
      payload checksum on every read. Any mismatch — torn file, flipped
      bit, version skew, wrong key — {e quarantines} the file: it is
      moved (never deleted) into [<root>/quarantine/], recorded in the
      quarantine log and the [elfie_store_quarantines_total] metric, and
      the read reports a miss so the caller recomputes. Corruption
      degrades to a cache miss, never to a wrong answer.
    - {b Advisory per-key locks.} {!get_or_compute} takes a lock file
      next to the artifact so concurrent drivers (processes or domains)
      racing on one key perform exactly one computation; losers wait and
      then serve the winner's commit. Locks held by dead processes are
      detected (the owner pid no longer exists, or the lock outlived
      {!lock_stale_s}) and broken.

    All store operations are safe to call from {!Elfie_util.Pool}
    worker domains. *)

type kind = Pinball | Bbv | Simpoint | Elfie | Measurement

val all_kinds : kind list

(** Stable directory/label name: ["pinball"], ["bbv"], ... *)
val kind_name : kind -> string

(** Inverse of {!kind_name}; [None] for an unknown label. *)
val kind_of_name : string -> kind option

(** A content address: artifact kind + digest of program bytes and
    normalized parameters. *)
type key

(** [key kind ~program params] builds a key. [params] are normalized —
    sorted by name, percent-escaped — so parameter order never changes
    the address; [program] is hashed, not stored. *)
val key : kind -> program:string -> (string * string) list -> key

val kind_of_key : key -> kind
val digest : key -> string
val pp_key : Format.formatter -> key -> unit

(** Rehydrate a key from its kind and digest — the wire form used by
    the farm daemon protocol, where only the content address travels.
    The digest is not re-derivable from anything, so a mistyped digest
    simply addresses an absent artifact. *)
val key_of_digest : kind -> string -> key

type t

(** Open (creating if needed) a store rooted at a directory. [producer]
    is free-form metadata recorded in every artifact header (defaults to
    ["elfie"] + the process id). *)
val open_store : ?producer:string -> string -> t

val root : t -> string

(** One quarantined file: the digest and kind parsed from its name, the
    verification failure that condemned it, and where it was moved. *)
type quarantine = {
  q_digest : string;
  q_kind : string;
  q_reason : string;
      (** ["torn"], ["checksum-mismatch"], ["version-skew"],
          ["format-skew"], ["bad-header"], ["key-mismatch"],
          ["undecodable"] *)
  q_moved_to : string;  (** full path inside [<root>/quarantine/] *)
}

(** Quarantines performed by {e this} handle, oldest first. *)
val quarantines : t -> quarantine list

(** The persistent quarantine log ([<root>/quarantine/log]), including
    records written by other processes. Torn lines are ignored. *)
val read_quarantine_log : t -> quarantine list

(** Final on-disk path of a key's artifact (exposed for tests and
    fault injection). *)
val path_of : t -> key -> string

(** The advisory lock file guarding a key. *)
val lock_path_of : t -> key -> string

(** Atomically commit an artifact (write-to-temp + fsync + rename).
    [format] is the payload codec's version, checked on read. *)
val put : t -> key -> format:int -> string -> unit

(** Verified read: [Some payload] only if the header is intact, kind /
    key / [format] match, and the payload checksum verifies. Any failure
    quarantines the file and returns [None] (a miss). *)
val get : t -> key -> format:int -> string option

val mem : t -> key -> bool

(** Seconds after which a lock file held by a {e live} process is
    presumed abandoned (hung owner) and may be broken. Mutable process
    default, initially 60. *)
val lock_stale_s : unit -> float

val set_lock_stale_s : float -> unit

(** [get_or_compute t key ~format f] returns the cached payload or runs
    [f] under the key's advisory lock, commits its result, and returns
    it. Exactly one racing caller computes; others serve the commit.
    Stale locks (dead owner pid, or older than {!lock_stale_s}) are
    broken. [on_result] observes whether the value came from cache. *)
val get_or_compute :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  t ->
  key ->
  format:int ->
  (unit -> string) ->
  string

(** Typed variant: cached payloads are [decode]d; a payload that fails
    to decode (codec bug, undetected skew) is quarantined with reason
    ["undecodable"] and recomputed — same degrade-to-miss contract. *)
val get_or_compute_v :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  t ->
  key ->
  format:int ->
  encode:('a -> string) ->
  decode:(string -> ('a, Elfie_util.Diag.t) result) ->
  (unit -> 'a) ->
  'a

(** Total payload+header bytes of live artifacts (quarantine excluded). *)
val size_bytes : t -> int64

(** Number of live artifacts of a kind. *)
val artifact_count : t -> kind -> int

(** One artifact an eviction pass would remove (or removed). *)
type eviction = {
  ev_kind : kind;
  ev_digest : string;
  ev_path : string;
  ev_bytes : int;
}

(** [eviction_plan t ~max_bytes] lists exactly what {!evict} would
    remove, oldest first, without touching anything — the [gc --dry-run]
    view. The order is deterministic and documented: ascending
    modification time, ties broken by kind name then digest, dropping
    files until the remaining live bytes fit [max_bytes]. Lock and temp
    files are never candidates; quarantined files are never touched. *)
val eviction_plan : t -> max_bytes:int64 -> eviction list

(** Evict exactly {!eviction_plan}'s files; returns how many were
    removed (counted in [elfie_store_evictions_total]). *)
val evict : t -> max_bytes:int64 -> int

(** Summary of the persistent quarantine area, from the Q1 log plus the
    on-disk corpses: file count, total bytes still preserved, and a
    reason tally (reason, count) sorted by descending count then
    reason. *)
val quarantine_stats : t -> int * int64 * (string * int) list
