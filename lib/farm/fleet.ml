module Metrics = Elfie_obs.Metrics

(* Fleet-wide telemetry aggregation behind `elfied top`: scrape every
   configured daemon through a Shard router and fold each one's
   Prometheus exposition, health line and store stats into one table
   row. A daemon that answers health but not the telemetry opcodes (an
   old protocol version) degrades to a partial row; an unreachable
   daemon is a down row — scraping never raises. *)

type state = Up | Partial of string | Down of string

let state_to_string = function
  | Up -> "up"
  | Partial reason -> "partial:" ^ reason
  | Down reason -> "down:" ^ reason

(* Per-opcode latency digest from the server-side request histogram. *)
type op_latency = {
  ol_op : string;
  ol_count : int;
  ol_p50_ms : float option;
  ol_p99_ms : float option;
}

type row = {
  r_endpoint : string;
  r_state : state;
  r_pid : int option;
  r_version : int option;
  r_uptime_s : float option;
  r_requests : float;
  r_hits : float;
  r_misses : float;
  r_wire_errors : float;
  r_fallbacks : float;
  r_quarantine : int option;
  r_bytes : int64 option;
  r_latency : op_latency list;
  r_breaker : Shard.breaker_state option;
  r_samples : Metrics.sample list;  (** the full parsed exposition *)
}

let empty_row endpoint state =
  {
    r_endpoint = endpoint;
    r_state = state;
    r_pid = None;
    r_version = None;
    r_uptime_s = None;
    r_requests = 0.0;
    r_hits = 0.0;
    r_misses = 0.0;
    r_wire_errors = 0.0;
    r_fallbacks = 0.0;
    r_quarantine = None;
    r_bytes = None;
    r_latency = [];
    r_breaker = None;
    r_samples = [];
  }

(* [quantile ~q cum] reads a cumulative [(le, count)] histogram (as
   {!Metrics.bucket_snapshot} and [_bucket] exposition rows give it):
   the smallest upper bound covering fraction [q] of observations.
   [None] on an empty histogram or when the quantile lands in the +Inf
   bucket (beyond the largest finite bound). *)
let quantile ~q cum =
  let cum = List.sort (fun (a, _) (b, _) -> compare a b) cum in
  match List.rev cum with
  | [] -> None
  | (_, total) :: _ when total = 0 -> None
  | (_, total) :: _ ->
      let target = q *. float_of_int total in
      List.find_map
        (fun (le, count) ->
          if float_of_int count >= target && Float.is_finite le then Some le
          else None)
        cum

let parse_health_line line =
  let kv = String.split_on_char ' ' (String.trim line) in
  let find key =
    List.find_map
      (fun tok ->
        let prefix = key ^ "=" in
        if String.starts_with ~prefix tok then
          Some
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        else None)
      kv
  in
  ( Option.bind (find "pid") int_of_string_opt,
    Option.bind (find "version") int_of_string_opt )

(* Cumulative buckets of one opcode's latency series, from exposition
   samples. *)
let op_buckets samples op =
  List.filter_map
    (fun s ->
      if
        s.Metrics.s_name = "elfie_daemon_request_seconds_bucket"
        && List.assoc_opt "op" s.Metrics.s_labels = Some op
      then
        Option.map
          (fun le ->
            let le =
              if le = "+Inf" then infinity
              else Option.value ~default:infinity (float_of_string_opt le)
            in
            (le, int_of_float s.Metrics.s_value))
          (List.assoc_opt "le" s.Metrics.s_labels)
      else None)
    samples

let latency_digest samples =
  let ops =
    List.sort_uniq compare
      (List.filter_map
         (fun s ->
           if s.Metrics.s_name = "elfie_daemon_request_seconds_count" then
             List.assoc_opt "op" s.Metrics.s_labels
           else None)
         samples)
  in
  List.filter_map
    (fun op ->
      let count =
        match
          Metrics.sample_value
            ~labels:[ ("op", op) ]
            "elfie_daemon_request_seconds_count" samples
        with
        | Some c -> int_of_float c
        | None -> 0
      in
      if count = 0 then None
      else
        let cum = op_buckets samples op in
        Some
          {
            ol_op = op;
            ol_count = count;
            ol_p50_ms = Option.map (fun s -> s *. 1e3) (quantile ~q:0.5 cum);
            ol_p99_ms = Option.map (fun s -> s *. 1e3) (quantile ~q:0.99 cum);
          })
    ops

let sum_counter samples name ~where =
  List.fold_left
    (fun acc s ->
      if s.Metrics.s_name = name && where s.Metrics.s_labels then
        acc +. s.Metrics.s_value
      else acc)
    0.0 samples

let row_of_samples row samples =
  let any _ = true in
  let response v labels = List.assoc_opt "response" labels = Some v in
  {
    row with
    r_uptime_s = Metrics.sample_value "elfie_daemon_uptime_seconds" samples;
    r_requests = sum_counter samples "elfie_daemon_requests_total" ~where:any;
    r_hits =
      sum_counter samples "elfie_daemon_requests_total" ~where:(response "hit");
    r_misses =
      sum_counter samples "elfie_daemon_requests_total"
        ~where:(response "miss");
    r_wire_errors =
      sum_counter samples "elfie_daemon_wire_errors_total" ~where:any;
    r_fallbacks =
      sum_counter samples "elfie_daemon_fallback_recomputes_total" ~where:any;
    r_latency = latency_digest samples;
    r_samples = samples;
  }

(* One endpoint's row. Health first (cheap liveness + pid/version);
   then telemetry, degrading to Partial when the daemon is alive but
   cannot serve the new opcodes. *)
let scrape router endpoint =
  match Shard.scrape_health router endpoint with
  | Error reason ->
      { (empty_row endpoint (Down reason)) with
        r_breaker = Shard.breaker router endpoint }
  | Ok health -> (
      let pid, version = parse_health_line health in
      let row = { (empty_row endpoint Up) with r_pid = pid; r_version = version } in
      let row =
        match Shard.scrape_stats router endpoint with
        | Ok st ->
            {
              row with
              r_quarantine = Some st.Daemon.st_quarantine_count;
              r_bytes = Some st.Daemon.st_bytes;
            }
        | Error _ -> row
      in
      let row = { row with r_breaker = Shard.breaker router endpoint } in
      match Shard.scrape_metrics router endpoint with
      | Error reason -> { row with r_state = Partial reason }
      | Ok exposition ->
          row_of_samples row (Metrics.parse_exposition exposition))

let scrape_all router =
  List.map (scrape router) (Shard.endpoints router)

(* --- rendering --------------------------------------------------------------- *)

let human_bytes = function
  | None -> "-"
  | Some b ->
      let b = Int64.to_float b in
      if b >= 1048576.0 then Printf.sprintf "%.1fM" (b /. 1048576.0)
      else if b >= 1024.0 then Printf.sprintf "%.1fK" (b /. 1024.0)
      else Printf.sprintf "%.0fB" b

let fmt_opt_f fmt = function None -> "-" | Some v -> Printf.sprintf fmt v
let fmt_opt_i = function None -> "-" | Some v -> string_of_int v

let fmt_breaker = function
  | None -> "-"
  | Some st -> Format.asprintf "%a" Shard.pp_breaker_state st

let shorten s n =
  let len = String.length s in
  if len <= n then s else "…" ^ String.sub s (len - n + 1) (n - 1)

let render rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %-14s %6s %8s %8s %8s %8s %6s %5s %8s %-9s\n"
       "endpoint" "state" "pid" "up(s)" "reqs" "hit" "miss" "werr" "quar"
       "bytes" "breaker");
  Buffer.add_string b (String.make 118 '-' ^ "\n");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-14s %6s %8s %8.0f %8.0f %8.0f %6.0f %5s %8s %-9s\n"
           (shorten r.r_endpoint 28)
           (let s = state_to_string r.r_state in
            if String.length s <= 14 then s else String.sub s 0 14)
           (fmt_opt_i r.r_pid)
           (fmt_opt_f "%.0f" r.r_uptime_s)
           r.r_requests r.r_hits r.r_misses r.r_wire_errors
           (fmt_opt_i r.r_quarantine)
           (human_bytes r.r_bytes)
           (fmt_breaker r.r_breaker)))
    rows;
  let with_latency = List.filter (fun r -> r.r_latency <> []) rows in
  if with_latency <> [] then begin
    Buffer.add_string b "\nrequest latency by opcode (server-side):\n";
    Buffer.add_string b
      (Printf.sprintf "%-28s %-10s %8s %10s %10s\n" "endpoint" "op" "count"
         "p50(ms)" "p99(ms)");
    List.iter
      (fun r ->
        List.iter
          (fun ol ->
            Buffer.add_string b
              (Printf.sprintf "%-28s %-10s %8d %10s %10s\n"
                 (shorten r.r_endpoint 28)
                 ol.ol_op ol.ol_count
                 (fmt_opt_f "%.3f" ol.ol_p50_ms)
                 (fmt_opt_f "%.3f" ol.ol_p99_ms)))
          r.r_latency)
      with_latency
  end;
  Buffer.contents b
