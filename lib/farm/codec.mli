(** Typed payload codecs + key builders for the farm {!Store}.

    One binary codec per artifact kind, each with its own format
    version: bumping a version re-keys nothing but makes every artifact
    written under the old version read as {e format skew} — quarantined
    and recomputed, never misparsed.

    The key builders normalize the parameters that actually determine
    each artifact, so the dependency chain is incremental: a BBV profile
    is keyed by program bytes + slice size (+ the run seed), a SimPoint
    selection adds the clustering parameters on top — changing [max_k]
    re-keys the selection but {e hits} the cached BBV profile. *)

(** Payload format version of a kind's codec (checked by the store on
    every read). *)
val format : Store.kind -> int

(** {1 Key builders} *)

val bbv_key :
  program:string -> slice_size:int64 -> ?seed:int64 -> unit -> Store.key

val selection_key :
  program:string ->
  params:Elfie_simpoint.Simpoint.params ->
  ?seed:int64 ->
  unit ->
  Store.key

(** A region pinball: program + the captured instruction window. *)
val pinball_key :
  program:string -> start:int64 -> length:int64 -> ?seed:int64 -> unit ->
  Store.key

(** A converted region ELFie (same window, plus the warmup mark). *)
val elfie_key :
  program:string ->
  start:int64 ->
  length:int64 ->
  warmup:int64 ->
  ?seed:int64 ->
  unit ->
  Store.key

(** A region measurement record (adds the trial plan). *)
val measurement_key :
  program:string ->
  start:int64 ->
  length:int64 ->
  warmup:int64 ->
  trials:int ->
  base_seed:int64 ->
  Store.key

(** {1 Raw codecs}

    Encoders never fail; decoders return a structured diagnostic on any
    malformed payload (the store quarantines such artifacts as
    ["undecodable"]). *)

val encode_pinball : Elfie_pinball.Pinball.t -> string

val decode_pinball :
  name:string -> string -> (Elfie_pinball.Pinball.t, Elfie_util.Diag.t) result

val encode_bbv : Elfie_pin.Bbv.profile -> string
val decode_bbv : string -> (Elfie_pin.Bbv.profile, Elfie_util.Diag.t) result

val encode_selection : Elfie_simpoint.Simpoint.selection -> string

val decode_selection :
  string -> (Elfie_simpoint.Simpoint.selection, Elfie_util.Diag.t) result

(** An ELFie bundle: the ELF image plus the sysstate needed to install
    its proxy files before a run. *)
val encode_elfie : Elfie_elf.Image.t * Elfie_pin.Sysstate.t -> string

val decode_elfie :
  string ->
  (Elfie_elf.Image.t * Elfie_pin.Sysstate.t, Elfie_util.Diag.t) result

(** One region's native measurement, as stored. *)
type measurement = {
  m_cluster : int;
  m_weight : float;
  m_cpi : float;
  m_stddev : float;
  m_instructions : int64;
  m_trials : int;
  m_failures : int;
}

val encode_measurement : measurement -> string
val decode_measurement : string -> (measurement, Elfie_util.Diag.t) result

(** {1 Backends}

    A backend is anywhere an artifact can be fetched-or-computed: the
    local {!Store} directly, or a {!Shard} router that tiers a local
    store under remote daemon shards. The polymorphic [fetch] field has
    exactly the shape of {!Store.get_or_compute_v}, so every cached
    wrapper below works unchanged over either tier. *)

type backend = {
  fetch :
    'a.
    ?on_result:([ `Hit | `Miss ] -> unit) ->
    Store.key ->
    format:int ->
    encode:('a -> string) ->
    decode:(string -> ('a, Elfie_util.Diag.t) result) ->
    (unit -> 'a) ->
    'a;
}

(** The plain local-store backend. *)
val store_backend : Store.t -> backend

(** {1 Cached compute wrappers}

    [fetch_* backend key f] specialises the backend's fetch to the
    kind's codec and format version; [cached_* store key f] is the same
    over {!store_backend} (i.e. {!Store.get_or_compute_v}). *)

val fetch_bbv :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  backend ->
  Store.key ->
  (unit -> Elfie_pin.Bbv.profile) ->
  Elfie_pin.Bbv.profile

val fetch_selection :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  backend ->
  Store.key ->
  (unit -> Elfie_simpoint.Simpoint.selection) ->
  Elfie_simpoint.Simpoint.selection

val fetch_pinball :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  backend ->
  Store.key ->
  name:string ->
  (unit -> Elfie_pinball.Pinball.t) ->
  Elfie_pinball.Pinball.t

val fetch_elfie :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  backend ->
  Store.key ->
  (unit -> Elfie_elf.Image.t * Elfie_pin.Sysstate.t) ->
  Elfie_elf.Image.t * Elfie_pin.Sysstate.t

val fetch_measurement :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  backend ->
  Store.key ->
  (unit -> measurement) ->
  measurement

val cached_bbv :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  Store.t ->
  Store.key ->
  (unit -> Elfie_pin.Bbv.profile) ->
  Elfie_pin.Bbv.profile

val cached_selection :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  Store.t ->
  Store.key ->
  (unit -> Elfie_simpoint.Simpoint.selection) ->
  Elfie_simpoint.Simpoint.selection

val cached_pinball :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  Store.t ->
  Store.key ->
  name:string ->
  (unit -> Elfie_pinball.Pinball.t) ->
  Elfie_pinball.Pinball.t

val cached_elfie :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  Store.t ->
  Store.key ->
  (unit -> Elfie_elf.Image.t * Elfie_pin.Sysstate.t) ->
  Elfie_elf.Image.t * Elfie_pin.Sysstate.t

val cached_measurement :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  Store.t ->
  Store.key ->
  (unit -> measurement) ->
  measurement
