module Metrics = Elfie_obs.Metrics
module Trace = Elfie_obs.Trace
module Log = Elfie_obs.Log
module Backoff = Elfie_util.Backoff
module Rng = Elfie_util.Rng

type config = {
  deadline_s : float;
  retries : int;
  backoff : Backoff.policy;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  replicas : int;
  jitter_seed : int64;
}

let default_config =
  {
    deadline_s = 2.0;
    retries = 2;
    backoff = { Backoff.base_s = 0.02; factor = 2.0; max_s = 0.5; jitter = 0.25 };
    breaker_threshold = 3;
    breaker_cooldown_s = 1.0;
    replicas = 16;
    jitter_seed = 7L;
  }

type breaker_state = Closed | Open | Half_open

let pp_breaker_state fmt = function
  | Closed -> Format.pp_print_string fmt "closed"
  | Open -> Format.pp_print_string fmt "open"
  | Half_open -> Format.pp_print_string fmt "half-open"

(* Internal breaker: Open remembers its reopen time. *)
type breaker = B_closed | B_open of float | B_half_open

type endpoint = {
  ep_path : string;
  ep_lock : Mutex.t;  (** serializes the connection, breaker and counters *)
  mutable ep_fd : Unix.file_descr option;  (** persistent connection *)
  mutable ep_failures : int;  (** consecutive *)
  mutable ep_breaker : breaker;
}

type t = {
  sh_local : Store.t option;  (** [None] for a monitor-only router *)
  sh_config : config;
  sh_endpoints : endpoint array;
  sh_ring : (string * int) array;  (** (point digest, endpoint index), sorted *)
  sh_rng : Rng.t;  (** jitter stream, guarded by [sh_rng_lock] *)
  sh_rng_lock : Mutex.t;
}

(* --- metrics ----------------------------------------------------------------- *)

let m_requests =
  Metrics.counter "elfie_daemon_client_requests_total"
    ~help:"Shard-client requests, by opcode and outcome"

let m_req_seconds =
  Metrics.histogram "elfie_daemon_client_request_seconds"
    ~buckets:Daemon.latency_buckets
    ~help:"Client-side wall time per shard request, retries included"

let m_retries =
  Metrics.counter "elfie_daemon_client_retries_total"
    ~help:"Shard-client request attempts beyond the first"

let m_breaker =
  Metrics.counter "elfie_daemon_breaker_transitions_total"
    ~help:"Circuit-breaker state transitions, by new state"

let m_fallbacks =
  Metrics.counter "elfie_daemon_fallback_recomputes_total"
    ~help:
      "Fetches that degraded to a local recompute because the owning \
       shard was unavailable, by reason"

let m_remote_hits =
  Metrics.counter "elfie_daemon_remote_hits_total"
    ~help:"Fetches served from a remote shard after a local miss"

(* --- construction ------------------------------------------------------------ *)

(* Writing to a shard that died mid-request must surface as EPIPE, not
   kill the process. *)
let ignore_sigpipe =
  lazy
    (match Sys.os_type with
    | "Unix" -> (
        try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
        with Invalid_argument _ -> ())
    | _ -> ())

let ring_of endpoints ~replicas =
  let points =
    List.concat
      (List.mapi
         (fun i path ->
           List.init replicas (fun r ->
               (Digest.to_hex (Digest.string (Printf.sprintf "%s#%d" path r)), i)))
         endpoints)
  in
  let arr = Array.of_list points in
  Array.sort compare arr;
  arr

let make_router config local endpoints =
  Lazy.force ignore_sigpipe;
  {
    sh_local = local;
    sh_config = config;
    sh_endpoints =
      Array.of_list
        (List.map
           (fun path ->
             {
               ep_path = path;
               ep_lock = Mutex.create ();
               ep_fd = None;
               ep_failures = 0;
               ep_breaker = B_closed;
             })
           endpoints);
    sh_ring = ring_of endpoints ~replicas:config.replicas;
    sh_rng = Rng.create config.jitter_seed;
    sh_rng_lock = Mutex.create ();
  }

let connect ?(config = default_config) ~local ~endpoints () =
  make_router config (Some local) endpoints

let monitor ?(config = default_config) ~endpoints () =
  make_router config None endpoints

let local t = t.sh_local
let endpoints t = Array.to_list (Array.map (fun ep -> ep.ep_path) t.sh_endpoints)

let drop_connection ep =
  match ep.ep_fd with
  | None -> ()
  | Some fd ->
      ep.ep_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let close t =
  Array.iter
    (fun ep -> Mutex.protect ep.ep_lock (fun () -> drop_connection ep))
    t.sh_endpoints

(* --- routing ----------------------------------------------------------------- *)

let point_of_key key =
  Digest.to_hex
    (Digest.string
       (Store.kind_name (Store.kind_of_key key) ^ "/" ^ Store.digest key))

let owner t key =
  if Array.length t.sh_ring = 0 then None
  else
    let p = point_of_key key in
    (* Successor point on the ring, wrapping past the top. *)
    let n = Array.length t.sh_ring in
    let rec find i =
      if i = n then snd t.sh_ring.(0)
      else if fst t.sh_ring.(i) >= p then snd t.sh_ring.(i)
      else find (i + 1)
    in
    Some t.sh_endpoints.(find 0)

let endpoint_for t key = Option.map (fun ep -> ep.ep_path) (owner t key)

(* --- breaker ----------------------------------------------------------------- *)

let breaker_transition ep state =
  ep.ep_breaker <- state;
  let name =
    match state with
    | B_closed -> "closed"
    | B_open _ -> "open"
    | B_half_open -> "half-open"
  in
  Metrics.inc m_breaker ~labels:[ ("to", name) ];
  Trace.instant "daemon.client.breaker"
    ~attrs:[ ("endpoint", Trace.S ep.ep_path); ("to", Trace.S name) ]

(* Under [ep_lock]. Returns whether a request may proceed; moves an
   expired Open breaker to Half_open (admitting this caller as the
   probe). *)
let breaker_admits ep =
  match ep.ep_breaker with
  | B_closed | B_half_open -> true
  | B_open until ->
      if Unix.gettimeofday () >= until then begin
        breaker_transition ep B_half_open;
        true
      end
      else false

let note_success _config ep =
  ep.ep_failures <- 0;
  match ep.ep_breaker with
  | B_closed -> ()
  | B_open _ | B_half_open -> breaker_transition ep B_closed

let note_failure config ep =
  ep.ep_failures <- ep.ep_failures + 1;
  let reopen () =
    breaker_transition ep
      (B_open (Unix.gettimeofday () +. config.breaker_cooldown_s))
  in
  match ep.ep_breaker with
  | B_half_open -> reopen () (* failed probe *)
  | B_closed when ep.ep_failures >= config.breaker_threshold -> reopen ()
  | B_closed | B_open _ -> ()

let breaker t path =
  Array.fold_left
    (fun acc ep ->
      if ep.ep_path = path then
        Some
          (Mutex.protect ep.ep_lock (fun () ->
               match ep.ep_breaker with
               | B_closed -> Closed
               | B_half_open -> Half_open
               | B_open until ->
                   if Unix.gettimeofday () >= until then Half_open else Open))
      else acc)
    None t.sh_endpoints

(* --- request loop ------------------------------------------------------------ *)

let connect_endpoint config ep =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.deadline_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.deadline_s;
    Unix.connect fd (Unix.ADDR_UNIX ep.ep_path);
    ep.ep_fd <- Some fd;
    Ok fd
  with Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message err)

(* One attempt on an endpoint's persistent connection: any failure
   closes the connection (the stream may be out of sync) and reports a
   reason string. Under [ep_lock]. *)
let attempt config ep ~trace op payload =
  let conn =
    match ep.ep_fd with Some fd -> Ok fd | None -> connect_endpoint config ep
  in
  match conn with
  | Error reason -> Error reason
  | Ok fd -> (
      match Daemon.Wire.write_frame ~trace fd op payload with
      | Error e ->
          drop_connection ep;
          Error (Daemon.Wire.error_to_string e)
      | Ok () -> (
          match Daemon.Wire.read_frame fd with
          | Error e ->
              drop_connection ep;
              Error (Daemon.Wire.error_to_string e)
          | Ok ((Daemon.Wire.R_err, reason) as _r) ->
              (* The daemon answered a typed error and will close; do
                 the same on our side. *)
              drop_connection ep;
              Error (if reason = "" then "daemon-error" else reason)
          | Ok (rop, rpayload) -> Ok (rop, rpayload)))

let jitter_rng t = t.sh_rng

(* Full fault-tolerant request: breaker gate, bounded retries with
   backoff, per-attempt deadline (set on the socket). Each request gets
   a fresh span ID; the process trace ID plus that span ID ride in the
   frame so the daemon can tag its handler span with both. Returns the
   response or the last failure reason. *)
let request t ep op payload =
  let config = t.sh_config in
  let trace =
    {
      Daemon.Wire.trace_id = Trace.trace_id ();
      span_id = Trace.fresh_span_id ();
    }
  in
  let sp =
    Trace.begin_span "daemon.client.request"
      ~attrs:
        [
          ("endpoint", Trace.S ep.ep_path);
          ("op", Trace.S (Daemon.Wire.opcode_name op));
          ("trace_id", Trace.S (Trace.hex_id trace.Daemon.Wire.trace_id));
          ("span_id", Trace.S (Trace.hex_id trace.Daemon.Wire.span_id));
        ]
  in
  let t0 = Unix.gettimeofday () in
  let result =
    let rec go attempt_no =
      let admitted =
        Mutex.protect ep.ep_lock (fun () -> breaker_admits ep)
      in
      if not admitted then Error "breaker-open"
      else begin
        if attempt_no > 0 then begin
          Metrics.inc m_retries;
          let d =
            Mutex.protect t.sh_rng_lock (fun () ->
                Backoff.delay ~rng:(jitter_rng t) config.backoff
                  ~attempt:attempt_no)
          in
          if d > 0.0 then Unix.sleepf d
        end;
        let r =
          Mutex.protect ep.ep_lock (fun () ->
              match attempt config ep ~trace op payload with
              | Ok _ as ok ->
                  note_success config ep;
                  ok
              | Error _ as e ->
                  note_failure config ep;
                  e)
        in
        match r with
        | Ok _ as ok -> ok
        | Error _ when attempt_no < config.retries -> go (attempt_no + 1)
        | Error _ as e -> e
      end
    in
    go 0
  in
  Metrics.observe m_req_seconds (Unix.gettimeofday () -. t0);
  let outcome =
    match result with
    | Ok (rop, _) -> Daemon.Wire.opcode_name rop
    | Error reason -> reason
  in
  Metrics.inc m_requests
    ~labels:[ ("op", Daemon.Wire.opcode_name op); ("outcome", outcome) ];
  Trace.end_span sp ~attrs:[ ("outcome", Trace.S outcome) ];
  result

let request_payload key ~format body =
  let head =
    Printf.sprintf "%s\n%s\n%d"
      (Store.kind_name (Store.kind_of_key key))
      (Store.digest key) format
  in
  match body with None -> head | Some body -> head ^ "\n" ^ body

(* Remote lookup outcome, as the tiering logic needs it: a genuine miss
   on a healthy shard is not a degradation; an unavailable shard is. *)
type remote = R_hit of string | R_miss | R_unavailable of string

let remote_get t ep key ~format =
  match request t ep Daemon.Wire.Get (request_payload key ~format None) with
  | Ok (Daemon.Wire.R_hit, payload) -> R_hit payload
  | Ok (Daemon.Wire.R_miss, _) -> R_miss
  | Ok (rop, _) -> R_unavailable ("unexpected-" ^ Daemon.Wire.opcode_name rop)
  | Error reason -> R_unavailable reason

let remote_put t ep key ~format payload =
  match
    request t ep Daemon.Wire.Put (request_payload key ~format (Some payload))
  with
  | Ok (Daemon.Wire.R_ok, _) -> true
  | Ok _ | Error _ -> false

(* --- tiered fetch ------------------------------------------------------------ *)

let get_or_compute_v ?(on_result = fun _ -> ()) t key ~format ~encode ~decode
    compute =
  let sh_local =
    match t.sh_local with
    | Some s -> s
    | None -> invalid_arg "Shard.get_or_compute_v: monitor-only router"
  in
  let computed = ref false in
  let v =
    Store.get_or_compute_v sh_local key ~format ~encode ~decode (fun () ->
        (* Local miss. Ask the owning shard before computing; any shard
           trouble degrades to the compute path below — the caller never
           observes the difference. *)
        let fallback reason =
          (match reason with
          | None -> () (* clean remote miss: not a degradation *)
          | Some reason ->
              Metrics.inc m_fallbacks ~labels:[ ("reason", reason) ];
              Trace.instant "daemon.client.fallback_recompute"
                ~attrs:
                  [
                    ("key", Trace.S (Store.digest key));
                    ("reason", Trace.S reason);
                  ];
              (* Degrading is the moment worth a flight recording: the
                 event names the in-flight request, then the ring is
                 dumped (no-op when no flight path is configured). *)
              Log.warn "daemon.client.fallback_recompute"
                ~attrs:
                  [
                    ("key", Trace.S (Store.digest key));
                    ("kind", Trace.S (Store.kind_name (Store.kind_of_key key)));
                    ("reason", Trace.S reason);
                    ( "endpoint",
                      Trace.S
                        (Option.value ~default:"-" (endpoint_for t key)) );
                  ];
              let (_ : string option) =
                Log.dump ~reason:"degrade-to-recompute" ()
              in
              ());
          computed := true;
          let v = compute () in
          (match owner t key with
          | Some ep ->
              let (_ : bool) = remote_put t ep key ~format (encode v) in
              ()
          | None -> ());
          v
        in
        match owner t key with
        | None -> fallback None
        | Some ep ->
            Trace.with_span "daemon.client.fetch"
              ~attrs:
                [
                  ("endpoint", Trace.S ep.ep_path);
                  ("key", Trace.S (Store.digest key));
                ]
              (fun span ->
                match remote_get t ep key ~format with
                | R_hit payload -> (
                    match decode payload with
                    | Ok v ->
                        Metrics.inc m_remote_hits;
                        Trace.add_attr span "tier" (Trace.S "remote");
                        v
                    | Error _ ->
                        (* Verified frame, undecodable artifact: the
                           shard holds a corrupt or skewed copy. Never
                           serve it — recompute (and overwrite the
                           shard's copy via the put-through). *)
                        fallback (Some "undecodable"))
                | R_miss ->
                    Trace.add_attr span "tier" (Trace.S "computed");
                    fallback None
                | R_unavailable reason ->
                    Trace.add_attr span "tier" (Trace.S "fallback");
                    fallback (Some reason)))
  in
  on_result (if !computed then `Miss else `Hit);
  v

let backend t =
  {
    Codec.fetch =
      (fun ?on_result key ~format ~encode ~decode f ->
        get_or_compute_v ?on_result t key ~format ~encode ~decode f);
  }

(* --- one-shot admin clients -------------------------------------------------- *)

let one_shot ?(deadline_s = 2.0) path op =
  Lazy.force ignore_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO deadline_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO deadline_s;
        Unix.connect fd (Unix.ADDR_UNIX path)
      with
      | exception Unix.Unix_error (err, _, _) ->
          Error (Unix.error_message err)
      | () -> (
          match Daemon.Wire.write_frame fd op "" with
          | Error e -> Error (Daemon.Wire.error_to_string e)
          | Ok () -> (
              match Daemon.Wire.read_frame fd with
              | Error e -> Error (Daemon.Wire.error_to_string e)
              | Ok (Daemon.Wire.R_err, reason) -> Error reason
              | Ok (_, payload) -> Ok payload)))

let ping ?deadline_s path = one_shot ?deadline_s path Daemon.Wire.Health

let remote_stats ?deadline_s path =
  match one_shot ?deadline_s path Daemon.Wire.Stats with
  | Error _ as e -> e
  | Ok payload -> (
      match Daemon.parse_stats payload with
      | Some st -> Ok st
      | None -> Error "unparsable-stats")

(* --- fleet scrape ------------------------------------------------------------ *)

let find_endpoint t path =
  Array.fold_left
    (fun acc ep -> if ep.ep_path = path then Some ep else acc)
    None t.sh_endpoints

(* Telemetry requests go through [request] — the same breaker-gated,
   retrying path artifact fetches use — so `elfied top` both respects
   and reports each shard's breaker state. *)
let telemetry_request t path op payload ~expect =
  match find_endpoint t path with
  | None -> Error "unknown-endpoint"
  | Some ep -> (
      match request t ep op payload with
      | Ok (rop, rpayload) when rop = expect -> Ok rpayload
      | Ok (rop, _) -> Error ("unexpected-" ^ Daemon.Wire.opcode_name rop)
      | Error reason -> Error reason)

let scrape_metrics t path =
  telemetry_request t path Daemon.Wire.Metrics_req "" ~expect:Daemon.Wire.R_metrics

let scrape_events ?limit t path =
  let payload = match limit with Some n -> string_of_int n | None -> "" in
  telemetry_request t path Daemon.Wire.Events_req payload
    ~expect:Daemon.Wire.R_events

let scrape_stats t path =
  match telemetry_request t path Daemon.Wire.Stats "" ~expect:Daemon.Wire.R_stats with
  | Error _ as e -> e
  | Ok payload -> (
      match Daemon.parse_stats payload with
      | Some st -> Ok st
      | None -> Error "unparsable-stats")

let scrape_health t path =
  telemetry_request t path Daemon.Wire.Health "" ~expect:Daemon.Wire.R_health
