module Byteio = Elfie_util.Byteio
module Diag = Elfie_util.Diag
module Simpoint = Elfie_simpoint.Simpoint

(* Bump a version whenever its wire format changes: old artifacts then
   read as format skew and are quarantined + recomputed by the store. *)
let format = function
  | Store.Pinball -> 1
  | Store.Bbv -> 1
  | Store.Simpoint -> 1
  | Store.Elfie -> 1
  | Store.Measurement -> 1

(* --- key builders ----------------------------------------------------------- *)

let seed_param = function
  | None -> []
  | Some s -> [ ("seed", Int64.to_string s) ]

let bbv_key ~program ~slice_size ?seed () =
  Store.key Store.Bbv ~program
    (("slice", Int64.to_string slice_size) :: seed_param seed)

let selection_key ~program ~(params : Simpoint.params) ?seed () =
  Store.key Store.Simpoint ~program
    ([
       ("slice", Int64.to_string params.slice_size);
       ("warmup", Int64.to_string params.warmup);
       ("max_k", string_of_int params.max_k);
       ("dims", string_of_int params.dims);
       ("sp_seed", Int64.to_string params.seed);
     ]
    @ seed_param seed)

let region_params ~start ~length seed =
  [ ("start", Int64.to_string start); ("length", Int64.to_string length) ]
  @ seed_param seed

let pinball_key ~program ~start ~length ?seed () =
  Store.key Store.Pinball ~program (region_params ~start ~length seed)

let elfie_key ~program ~start ~length ~warmup ?seed () =
  Store.key Store.Elfie ~program
    (("warmup", Int64.to_string warmup) :: region_params ~start ~length seed)

let measurement_key ~program ~start ~length ~warmup ~trials ~base_seed =
  Store.key Store.Measurement ~program
    ([
       ("warmup", Int64.to_string warmup);
       ("trials", string_of_int trials);
       ("base_seed", Int64.to_string base_seed);
     ]
    @ region_params ~start ~length None)

(* --- member archive --------------------------------------------------------- *)

(* Multi-file artifacts (pinball file sets, ELFie + sysstate bundles)
   pack into one payload: magic, member count, then length-prefixed
   (name, data) pairs. *)

let archive_magic = 0x5241_4645 (* "EFAR" *)

let pack_files files =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w archive_magic;
  Byteio.Writer.u32 w (List.length files);
  List.iter
    (fun (name, data) ->
      Byteio.Writer.u32 w (String.length name);
      Byteio.Writer.string w name;
      Byteio.Writer.u32 w (String.length data);
      Byteio.Writer.string w data)
    files;
  Bytes.to_string (Byteio.Writer.contents w)

let decode ~artifact f payload =
  match f (Byteio.Reader.of_string payload) with
  | v -> Ok v
  | exception Byteio.Truncated what ->
      Error
        (Diag.f ~artifact Diag.Truncated "payload ends inside %s" what)
  | exception Diag.Error d -> Error d

let unpack_files ~artifact payload =
  decode ~artifact
    (fun r ->
      if Byteio.Reader.u32 r <> archive_magic then
        Diag.fail ~artifact Diag.Bad_magic "not a farm member archive";
      let count = Byteio.Reader.u32 r in
      if count > 4096 then
        Diag.fail ~artifact Diag.Count_out_of_range
          "archive declares %d members" count;
      List.init count (fun _ ->
          let name = Byteio.Reader.string_n r (Byteio.Reader.u32 r) in
          let data = Byteio.Reader.string_n r (Byteio.Reader.u32 r) in
          (name, data)))
    payload

(* --- pinball ---------------------------------------------------------------- *)

let encode_pinball pb = pack_files (Elfie_pinball.Pinball.to_files pb)

let decode_pinball ~name payload =
  Result.bind (unpack_files ~artifact:"pinball-artifact" payload) (fun files ->
      Elfie_pinball.Pinball.of_files_result ~name files)

(* --- BBV profile ------------------------------------------------------------ *)

let encode_bbv (p : Elfie_pin.Bbv.profile) =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u64 w p.slice_size;
  Byteio.Writer.u64 w p.total_instructions;
  Byteio.Writer.u32 w (List.length p.slices);
  List.iter
    (fun (s : Elfie_pin.Bbv.slice) ->
      Byteio.Writer.u32 w s.index;
      Byteio.Writer.u64 w s.instructions;
      Byteio.Writer.u32 w (Array.length s.vector);
      Array.iter
        (fun (block, count) ->
          Byteio.Writer.u64 w block;
          Byteio.Writer.u32 w count)
        s.vector)
    p.slices;
  Bytes.to_string (Byteio.Writer.contents w)

let decode_bbv payload =
  decode ~artifact:"bbv-artifact"
    (fun r ->
      let slice_size = Byteio.Reader.u64 r in
      let total_instructions = Byteio.Reader.u64 r in
      let nslices = Byteio.Reader.u32 r in
      if nslices > Byteio.Reader.remaining r then
        Diag.fail ~artifact:"bbv-artifact" Diag.Count_out_of_range
          "profile declares %d slices in %d remaining bytes" nslices
          (Byteio.Reader.remaining r);
      let slices =
        List.init nslices (fun _ ->
            let index = Byteio.Reader.u32 r in
            let instructions = Byteio.Reader.u64 r in
            let n = Byteio.Reader.u32 r in
            if n > Byteio.Reader.remaining r then
              Diag.fail ~artifact:"bbv-artifact" Diag.Count_out_of_range
                "slice declares %d blocks in %d remaining bytes" n
                (Byteio.Reader.remaining r);
            let vector =
              Array.init n (fun _ ->
                  let block = Byteio.Reader.u64 r in
                  let count = Byteio.Reader.u32 r in
                  (block, count))
            in
            { Elfie_pin.Bbv.index; vector; instructions })
      in
      { Elfie_pin.Bbv.slices; slice_size; total_instructions })
    payload

(* --- SimPoint selection ----------------------------------------------------- *)

let write_region w (r : Simpoint.region) =
  Byteio.Writer.u32 w r.cluster;
  Byteio.Writer.u32 w r.slice_index;
  Byteio.Writer.u32 w r.rank;
  Byteio.Writer.u64 w (Int64.bits_of_float r.weight);
  Byteio.Writer.u64 w r.start;
  Byteio.Writer.u64 w r.length;
  Byteio.Writer.u64 w r.warmup_actual

let read_region r =
  let cluster = Byteio.Reader.u32 r in
  let slice_index = Byteio.Reader.u32 r in
  let rank = Byteio.Reader.u32 r in
  let weight = Int64.float_of_bits (Byteio.Reader.u64 r) in
  let start = Byteio.Reader.u64 r in
  let length = Byteio.Reader.u64 r in
  let warmup_actual = Byteio.Reader.u64 r in
  { Simpoint.cluster; slice_index; rank; weight; start; length;
    warmup_actual }

let bounded_count r ~what n =
  if n > Byteio.Reader.remaining r then
    Diag.fail ~artifact:"simpoint-artifact" Diag.Count_out_of_range
      "%s declares %d entries in %d remaining bytes" what n
      (Byteio.Reader.remaining r);
  n

let encode_selection (sel : Simpoint.selection) =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u64 w sel.params.slice_size;
  Byteio.Writer.u64 w sel.params.warmup;
  Byteio.Writer.u32 w sel.params.max_k;
  Byteio.Writer.u32 w sel.params.dims;
  Byteio.Writer.u64 w sel.params.seed;
  Byteio.Writer.u32 w sel.k;
  Byteio.Writer.u32 w sel.num_slices;
  Byteio.Writer.u64 w sel.total_instructions;
  Byteio.Writer.u32 w (List.length sel.regions);
  List.iter (write_region w) sel.regions;
  Byteio.Writer.u32 w (Array.length sel.alternates);
  Array.iter
    (fun alts ->
      Byteio.Writer.u32 w (List.length alts);
      List.iter (write_region w) alts)
    sel.alternates;
  Bytes.to_string (Byteio.Writer.contents w)

let decode_selection payload =
  decode ~artifact:"simpoint-artifact"
    (fun r ->
      let slice_size = Byteio.Reader.u64 r in
      let warmup = Byteio.Reader.u64 r in
      let max_k = Byteio.Reader.u32 r in
      let dims = Byteio.Reader.u32 r in
      let seed = Byteio.Reader.u64 r in
      let k = Byteio.Reader.u32 r in
      let num_slices = Byteio.Reader.u32 r in
      let total_instructions = Byteio.Reader.u64 r in
      let nregions = bounded_count r ~what:"regions" (Byteio.Reader.u32 r) in
      let regions = List.init nregions (fun _ -> read_region r) in
      let nclusters =
        bounded_count r ~what:"alternates" (Byteio.Reader.u32 r)
      in
      let alternates =
        Array.init nclusters (fun _ ->
            let n =
              bounded_count r ~what:"cluster alternates" (Byteio.Reader.u32 r)
            in
            List.init n (fun _ -> read_region r))
      in
      {
        Simpoint.k;
        regions;
        alternates;
        num_slices;
        total_instructions;
        params = { Simpoint.slice_size; warmup; max_k; dims; seed };
      })
    payload

(* --- ELFie bundle ----------------------------------------------------------- *)

let sysstate_prefix = "ss."

let encode_elfie (image, sysstate) =
  pack_files
    (("elf", Bytes.to_string (Elfie_elf.Image.write image))
    :: List.map
         (fun (suffix, content) -> (sysstate_prefix ^ suffix, content))
         (Elfie_pin.Sysstate.to_files sysstate))

let decode_elfie payload =
  Result.bind (unpack_files ~artifact:"elfie-artifact" payload)
    (fun files ->
      match List.assoc_opt "elf" files with
      | None ->
          Error
            (Diag.f ~artifact:"elfie-artifact" Diag.Missing_file
               "bundle has no 'elf' member")
      | Some elf ->
          Result.bind
            (Elfie_elf.Image.read_result ~artifact:"elfie-artifact"
               (Bytes.of_string elf))
            (fun image ->
              let ss_files =
                List.filter_map
                  (fun (name, content) ->
                    if
                      String.length name > String.length sysstate_prefix
                      && String.sub name 0 (String.length sysstate_prefix)
                         = sysstate_prefix
                    then
                      Some
                        ( String.sub name
                            (String.length sysstate_prefix)
                            (String.length name
                            - String.length sysstate_prefix),
                          content )
                    else None)
                  files
              in
              Result.map
                (fun ss -> (image, ss))
                (Elfie_pin.Sysstate.of_files_result
                   ~artifact:"elfie-artifact" ss_files)))

(* --- measurement record ----------------------------------------------------- *)

type measurement = {
  m_cluster : int;
  m_weight : float;
  m_cpi : float;
  m_stddev : float;
  m_instructions : int64;
  m_trials : int;
  m_failures : int;
}

let encode_measurement m =
  let w = Byteio.Writer.create () in
  Byteio.Writer.u32 w m.m_cluster;
  Byteio.Writer.u64 w (Int64.bits_of_float m.m_weight);
  Byteio.Writer.u64 w (Int64.bits_of_float m.m_cpi);
  Byteio.Writer.u64 w (Int64.bits_of_float m.m_stddev);
  Byteio.Writer.u64 w m.m_instructions;
  Byteio.Writer.u32 w m.m_trials;
  Byteio.Writer.u32 w m.m_failures;
  Bytes.to_string (Byteio.Writer.contents w)

let decode_measurement payload =
  decode ~artifact:"measurement-artifact"
    (fun r ->
      let m_cluster = Byteio.Reader.u32 r in
      let m_weight = Int64.float_of_bits (Byteio.Reader.u64 r) in
      let m_cpi = Int64.float_of_bits (Byteio.Reader.u64 r) in
      let m_stddev = Int64.float_of_bits (Byteio.Reader.u64 r) in
      let m_instructions = Byteio.Reader.u64 r in
      let m_trials = Byteio.Reader.u32 r in
      let m_failures = Byteio.Reader.u32 r in
      { m_cluster; m_weight; m_cpi; m_stddev; m_instructions; m_trials;
        m_failures })
    payload

(* --- backends --------------------------------------------------------------- *)

type backend = {
  fetch :
    'a.
    ?on_result:([ `Hit | `Miss ] -> unit) ->
    Store.key ->
    format:int ->
    encode:('a -> string) ->
    decode:(string -> ('a, Diag.t) result) ->
    (unit -> 'a) ->
    'a;
}

let store_backend store =
  {
    fetch =
      (fun ?on_result key ~format ~encode ~decode f ->
        Store.get_or_compute_v ?on_result store key ~format ~encode ~decode f);
  }

(* --- cached compute wrappers ------------------------------------------------ *)

let fetch_bbv ?on_result b key f =
  b.fetch ?on_result key ~format:(format Store.Bbv) ~encode:encode_bbv
    ~decode:decode_bbv f

let fetch_selection ?on_result b key f =
  b.fetch ?on_result key ~format:(format Store.Simpoint)
    ~encode:encode_selection ~decode:decode_selection f

let fetch_pinball ?on_result b key ~name f =
  b.fetch ?on_result key ~format:(format Store.Pinball)
    ~encode:encode_pinball ~decode:(decode_pinball ~name) f

let fetch_elfie ?on_result b key f =
  b.fetch ?on_result key ~format:(format Store.Elfie) ~encode:encode_elfie
    ~decode:decode_elfie f

let fetch_measurement ?on_result b key f =
  b.fetch ?on_result key ~format:(format Store.Measurement)
    ~encode:encode_measurement ~decode:decode_measurement f

let cached_bbv ?on_result store key f =
  fetch_bbv ?on_result (store_backend store) key f

let cached_selection ?on_result store key f =
  fetch_selection ?on_result (store_backend store) key f

let cached_pinball ?on_result store key ~name f =
  fetch_pinball ?on_result (store_backend store) key ~name f

let cached_elfie ?on_result store key f =
  fetch_elfie ?on_result (store_backend store) key f

let cached_measurement ?on_result store key f =
  fetch_measurement ?on_result (store_backend store) key f
