(** Fleet-wide telemetry aggregation: the engine behind [elfied top].

    {!scrape_all} asks every daemon behind a {!Shard} router (usually a
    {!Shard.monitor}) for its health line, store stats, and Prometheus
    registry — over the same breaker-gated wire path artifact fetches
    use — and folds the answers into one {!row} per shard. Scraping
    never raises:

    - a daemon answering everything is {!state} [Up];
    - a daemon that is alive but cannot serve the telemetry opcodes
      (an older protocol version) is [Partial] with the reason, keeping
      whatever health/stats it did answer;
    - an unreachable daemon is [Down] with the reason.

    {!render} lays the rows out as the live table: per-shard request /
    hit / miss / wire-error counts, quarantine tally, store bytes,
    uptime and client-side breaker state, plus a per-opcode server-side
    latency digest (p50/p99 from the histogram buckets). *)

type state = Up | Partial of string | Down of string

val state_to_string : state -> string

(** Latency digest of one opcode's server-side request histogram. *)
type op_latency = {
  ol_op : string;
  ol_count : int;
  ol_p50_ms : float option;
  ol_p99_ms : float option;
}

type row = {
  r_endpoint : string;
  r_state : state;
  r_pid : int option;
  r_version : int option;  (** the daemon's wire protocol version *)
  r_uptime_s : float option;
  r_requests : float;  (** total served, every opcode and response *)
  r_hits : float;
  r_misses : float;
  r_wire_errors : float;
  r_fallbacks : float;
  r_quarantine : int option;
  r_bytes : int64 option;
  r_latency : op_latency list;
  r_breaker : Shard.breaker_state option;  (** this router's view *)
  r_samples : Elfie_obs.Metrics.sample list;
      (** the full parsed exposition, for anything the row digests
          away *)
}

val quantile : q:float -> (float * int) list -> float option
(** Smallest histogram upper bound covering fraction [q] of a
    cumulative [(le, count)] snapshot; [None] when empty or when the
    quantile falls in the +Inf bucket. *)

val scrape : Shard.t -> string -> row
(** Scrape one endpoint of the router. *)

val scrape_all : Shard.t -> row list
(** Scrape every endpoint, in configuration order. *)

val render : row list -> string
(** The aggregated fleet table. *)
