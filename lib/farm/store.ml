module Metrics = Elfie_obs.Metrics
module Trace = Elfie_obs.Trace
module Log = Elfie_obs.Log

type kind = Pinball | Bbv | Simpoint | Elfie | Measurement

let all_kinds = [ Pinball; Bbv; Simpoint; Elfie; Measurement ]

let kind_name = function
  | Pinball -> "pinball"
  | Bbv -> "bbv"
  | Simpoint -> "simpoint"
  | Elfie -> "elfie"
  | Measurement -> "measurement"

let kind_of_name name =
  List.find_opt (fun k -> kind_name k = name) all_kinds

type key = { kind : kind; key_digest : string }

(* Percent-escape the characters that carry structure in the normalized
   parameter string (and '%' itself), so no parameter value can alias
   another parameter list. *)
let escape_param s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '=' -> Buffer.add_string buf "%3D"
      | '&' -> Buffer.add_string buf "%26"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let normalize_params params =
  List.map (fun (k, v) -> (escape_param k, escape_param v)) params
  |> List.sort compare
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat "&"

let key kind ~program params =
  (* The program contributes through its own digest, so keys stay cheap
     to compare/log and the program bytes never appear in paths. *)
  let material =
    String.concat "\x00"
      [ kind_name kind; Digest.to_hex (Digest.string program);
        normalize_params params ]
  in
  { kind; key_digest = Digest.to_hex (Digest.string material) }

let kind_of_key k = k.kind
let digest k = k.key_digest
let key_of_digest kind key_digest = { kind; key_digest }

let pp_key fmt k =
  Format.fprintf fmt "%s/%s" (kind_name k.kind) k.key_digest

(* --- metrics ---------------------------------------------------------------- *)

let m_hits =
  Metrics.counter "elfie_store_hits_total"
    ~help:"Artifact-store reads served from a verified cached artifact"

let m_misses =
  Metrics.counter "elfie_store_misses_total"
    ~help:"Artifact-store reads that found no (valid) cached artifact"

let m_writes =
  Metrics.counter "elfie_store_writes_total"
    ~help:"Artifacts committed (write-to-temp + fsync + atomic rename)"

let m_quarantines =
  Metrics.counter "elfie_store_quarantines_total"
    ~help:
      "Corrupt artifacts moved to quarantine on failed read verification"

let m_evictions =
  Metrics.counter "elfie_store_evictions_total"
    ~help:"Artifacts removed by size-bounded eviction"

let m_lock_breaks =
  Metrics.counter "elfie_store_lock_breaks_total"
    ~help:"Stale per-key advisory locks broken (dead or hung owner)"

let m_lock_waits =
  Metrics.counter "elfie_store_lock_waits_total"
    ~help:"Times a reader waited on another driver holding a key lock"

(* --- handle ----------------------------------------------------------------- *)

type quarantine = {
  q_digest : string;
  q_kind : string;
  q_reason : string;
  q_moved_to : string;
}

type t = {
  store_root : string;
  producer : string;
  mutable quarantined : quarantine list;  (** newest first *)
  lock : Mutex.t;  (** guards [quarantined] across pool domains *)
}

let root t = t.store_root

let mkdir_p path =
  let rec mk path =
    if path <> "" && path <> "/" && not (Sys.file_exists path) then begin
      mk (Filename.dirname path);
      try Unix.mkdir path 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk path

let quarantine_dir t = Filename.concat t.store_root "quarantine"
let quarantine_log_path t = Filename.concat (quarantine_dir t) "log"

let open_store ?producer store_root =
  let producer =
    match producer with
    | Some p -> p
    | None -> Printf.sprintf "elfie/%d" (Unix.getpid ())
  in
  mkdir_p store_root;
  List.iter
    (fun k -> mkdir_p (Filename.concat store_root (kind_name k)))
    all_kinds;
  mkdir_p (Filename.concat store_root "quarantine");
  { store_root; producer; quarantined = []; lock = Mutex.create () }

let quarantines t = Mutex.protect t.lock (fun () -> List.rev t.quarantined)

let path_of t k =
  Filename.concat
    (Filename.concat t.store_root (kind_name k.kind))
    (k.key_digest ^ ".art")

let lock_path_of t k = path_of t k ^ ".lock"

(* --- durable file primitives ------------------------------------------------ *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let tmp_counter = Atomic.make 0

(* Write [contents] at [path] via temp file + fsync + atomic rename, then
   fsync the directory so the rename itself survives a crash. *)
let write_atomic path contents =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- self-describing artifact format ---------------------------------------- *)

let magic_word = "ELFIESTORE"
let store_version = 1

let sanitize_meta s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let render t k ~format payload =
  let buf = Buffer.create (String.length payload + 256) in
  Buffer.add_string buf
    (Printf.sprintf "%s %d\n" magic_word store_version);
  Buffer.add_string buf (Printf.sprintf "kind %s\n" (kind_name k.kind));
  Buffer.add_string buf (Printf.sprintf "format %d\n" format);
  Buffer.add_string buf (Printf.sprintf "key %s\n" k.key_digest);
  Buffer.add_string buf
    (Printf.sprintf "producer %s\n" (sanitize_meta t.producer));
  Buffer.add_string buf
    (Printf.sprintf "length %d\n" (String.length payload));
  Buffer.add_string buf
    (Printf.sprintf "checksum %s\n" (Digest.to_hex (Digest.string payload)));
  Buffer.add_char buf '\n';
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Verification verdict for a file's bytes against an expected key and
   payload format. *)
type verdict = Valid of string | Invalid of string (* quarantine reason *)

let header_field lines name =
  List.find_map
    (fun line ->
      let prefix = name ^ " " in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then Some (String.sub line (String.length prefix)
                   (String.length line - String.length prefix))
      else None)
    lines

let verify k ~format contents =
  (* The header ends at the first blank line; a file truncated before
     that is torn by construction. *)
  let header_end =
    let n = String.length contents in
    let rec find i =
      if i + 1 >= n then None
      else if contents.[i] = '\n' && contents.[i + 1] = '\n' then Some i
      else find (i + 1)
    in
    find 0
  in
  match header_end with
  | None -> Invalid "torn"
  | Some he -> (
      let header = String.sub contents 0 he in
      let payload =
        String.sub contents (he + 2) (String.length contents - he - 2)
      in
      match String.split_on_char '\n' header with
      | [] -> Invalid "bad-header"
      | magic_line :: fields -> (
          match String.split_on_char ' ' magic_line with
          | [ w; v ] when w = magic_word ->
              if v <> string_of_int store_version then Invalid "version-skew"
              else begin
                match
                  ( header_field fields "kind",
                    header_field fields "format",
                    header_field fields "key",
                    header_field fields "length",
                    header_field fields "checksum" )
                with
                | Some hkind, Some hformat, Some hkey, Some hlen, Some hsum ->
                    if hkind <> kind_name k.kind || hkey <> k.key_digest then
                      Invalid "key-mismatch"
                    else if hformat <> string_of_int format then
                      Invalid "format-skew"
                    else if
                      int_of_string_opt hlen
                      <> Some (String.length payload)
                    then Invalid "torn"
                    else if Digest.to_hex (Digest.string payload) <> hsum then
                      Invalid "checksum-mismatch"
                    else Valid payload
                | _ -> Invalid "bad-header"
              end
          | _ -> Invalid "bad-header"))

(* --- quarantine ------------------------------------------------------------- *)

let log_lock = Mutex.create ()

let append_quarantine_log t q =
  Mutex.protect log_lock @@ fun () ->
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644 (quarantine_log_path t)
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "Q1\t%s\t%s\t%s\t%s\n" q.q_digest q.q_kind q.q_reason
        (Filename.basename q.q_moved_to);
      flush oc;
      try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ())

let read_quarantine_log t =
  let path = quarantine_log_path t in
  if not (Sys.file_exists path) then []
  else
    String.split_on_char '\n' (read_file path)
    |> List.filter_map (fun line ->
           match String.split_on_char '\t' line with
           | [ "Q1"; q_digest; q_kind; q_reason; base ] ->
               Some
                 {
                   q_digest;
                   q_kind;
                   q_reason;
                   q_moved_to = Filename.concat (quarantine_dir t) base;
                 }
           | _ -> None)

let quarantine_counter = Atomic.make 0

(* Move a condemned file aside — never delete it — and record the
   degradation in the handle, the persistent log and the metrics. *)
let quarantine t k ~reason =
  let src = path_of t k in
  let dest =
    Filename.concat (quarantine_dir t)
      (Printf.sprintf "%s.%s.%d.%d" k.key_digest reason (Unix.getpid ())
         (Atomic.fetch_and_add quarantine_counter 1))
  in
  (match Sys.rename src dest with
  | () -> ()
  | exception Sys_error _ ->
      (* Lost a race with a concurrent quarantine of the same file; the
         record below still documents this handle's observation. *)
      ());
  let q =
    { q_digest = k.key_digest; q_kind = kind_name k.kind; q_reason = reason;
      q_moved_to = dest }
  in
  Mutex.protect t.lock (fun () -> t.quarantined <- q :: t.quarantined);
  append_quarantine_log t q;
  Metrics.inc m_quarantines
    ~labels:[ ("kind", kind_name k.kind); ("reason", reason) ];
  Trace.instant "farm.store.quarantine"
    ~attrs:
      [ ("kind", Trace.S (kind_name k.kind)); ("reason", Trace.S reason);
        ("key", Trace.S k.key_digest) ];
  Log.warn "farm.store.quarantine"
    ~attrs:
      [ ("kind", Trace.S (kind_name k.kind)); ("reason", Trace.S reason);
        ("key", Trace.S k.key_digest); ("moved_to", Trace.S dest) ]

(* --- read / write ----------------------------------------------------------- *)

let kind_labels k = [ ("kind", kind_name k.kind) ]

let put t k ~format payload =
  write_atomic (path_of t k) (render t k ~format payload);
  Metrics.inc m_writes ~labels:(kind_labels k)

(* Uncounted lookup shared by [get] and the lock-wait polling loop. *)
let lookup t k ~format =
  let path = path_of t k in
  match read_file path with
  | exception Sys_error _ -> `Miss
  | contents -> (
      match verify k ~format contents with
      | Valid payload -> `Hit payload
      | Invalid reason ->
          quarantine t k ~reason;
          `Quarantined reason)

let get t k ~format =
  match lookup t k ~format with
  | `Hit payload ->
      Metrics.inc m_hits ~labels:(kind_labels k);
      Some payload
  | `Miss | `Quarantined _ ->
      Metrics.inc m_misses ~labels:(kind_labels k);
      None

(* Presence only — verification (and any quarantining) happens on read. *)
let mem t k = Sys.file_exists (path_of t k)

(* --- advisory per-key locks ------------------------------------------------- *)

let stale_s = Atomic.make 60.0
let lock_stale_s () = Atomic.get stale_s
let set_lock_stale_s v = Atomic.set stale_s (Float.max 0.0 v)

(* Tokens of locks currently held by this process: a lock file naming
   our own pid but an unknown token is a leftover from a previous
   process with a recycled pid (or a killed domain) and is stale. *)
let live_tokens : (string, unit) Hashtbl.t = Hashtbl.create 16
let tokens_lock = Mutex.create ()
let token_counter = Atomic.make 0

let new_token () =
  Printf.sprintf "%d.%d" (Unix.getpid ())
    (Atomic.fetch_and_add token_counter 1)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error _ -> true (* EPERM: alive, other user *)

type lock_state = Acquired of string | Held_live | Stale

(* Judge an existing lock file's content: [Stale] when its owner is
   provably gone (dead pid, recycled pid / dead domain, torn content
   past the write window) or has outlived the hung-owner deadline. *)
let judge path content =
  let age () =
    match Unix.stat path with
    | st -> Unix.gettimeofday () -. st.Unix.st_mtime
    | exception Unix.Unix_error _ -> 0.0
  in
  match
    String.split_on_char ' '
      (String.trim
         (match String.index_opt content '\n' with
         | Some i -> String.sub content 0 i
         | None -> content))
  with
  | [ "ELFIELOCK"; pid; token ] -> (
      match int_of_string_opt pid with
      | None -> Stale (* corrupt lock file *)
      | Some pid ->
          if not (pid_alive pid) then Stale
          else if
            pid = Unix.getpid ()
            && not
                 (Mutex.protect tokens_lock (fun () ->
                      Hashtbl.mem live_tokens token))
          then Stale (* recycled pid or dead domain *)
          else if age () > Atomic.get stale_s then Stale
          else Held_live)
  | _ ->
      (* Torn or foreign lock content: treat as stale once it has any
         age at all; a writer finishes its one-line write well within
         this window. *)
      if age () > 0.5 then Stale else Held_live

let try_acquire path =
  (* Register the token as live BEFORE the lock file becomes visible:
     a sibling domain that reads the fresh lock must find the token in
     [live_tokens], or it would misjudge its own process's lock as a
     recycled-pid leftover and break it. *)
  let token = new_token () in
  Mutex.protect tokens_lock (fun () -> Hashtbl.replace live_tokens token ());
  match
    Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644
  with
  | fd ->
      let line =
        Printf.sprintf "ELFIELOCK %d %s\n" (Unix.getpid ()) token
      in
      let b = Bytes.of_string line in
      ignore (Unix.write fd b 0 (Bytes.length b));
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd;
      Acquired token
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
      Mutex.protect tokens_lock (fun () -> Hashtbl.remove live_tokens token);
      (* Somebody holds (or held) the lock: judge staleness from its
         content and age. A vanished file means the owner just released
         — retry from the top. *)
      match read_file path with
      | exception Sys_error _ -> Stale (* racing release; retry cheaply *)
      | content -> judge path content)

let release path token =
  Mutex.protect tokens_lock (fun () -> Hashtbl.remove live_tokens token);
  try Sys.remove path with Sys_error _ -> ()

(* Breaking serializes on a process-global mutex and re-judges the lock
   content immediately before unlinking: between a caller's Stale
   verdict and its break, another domain may have broken the same lock
   and re-acquired it — unlinking blindly would steal the fresh live
   lock and let two computations run. *)
let break_mutex = Mutex.create ()

let break_lock path =
  Mutex.protect break_mutex @@ fun () ->
  match read_file path with
  | exception Sys_error _ -> () (* already broken or released *)
  | content ->
      if judge path content = Stale then begin
        Metrics.inc m_lock_breaks;
        try Sys.remove path with Sys_error _ -> ()
      end

(* --- get_or_compute --------------------------------------------------------- *)

let get_or_compute_v ?(on_result = fun _ -> ()) t k ~format ~encode ~decode
    compute =
  let serve_payload payload =
    match decode payload with
    | Ok v ->
        Metrics.inc m_hits ~labels:(kind_labels k);
        on_result `Hit;
        Some v
    | Error _ ->
        (* The checksum verified but the codec rejects the payload: a
           skew the header missed. Same contract — quarantine, miss. *)
        quarantine t k ~reason:"undecodable";
        None
  in
  let compute_and_put () =
    Metrics.inc m_misses ~labels:(kind_labels k);
    on_result `Miss;
    let v =
      Trace.with_span "farm.store.compute"
        ~attrs:
          [ ("kind", Trace.S (kind_name k.kind));
            ("key", Trace.S k.key_digest) ]
        (fun _ -> compute ())
    in
    put t k ~format (encode v);
    v
  in
  let first =
    match lookup t k ~format with `Hit p -> serve_payload p | _ -> None
  in
  match first with
  | Some v -> v
  | None -> (
      let lock_path = lock_path_of t k in
      (* Acquire the key lock, waiting on live owners. While waiting,
         poll for the owner's commit: if it lands, serve it without ever
         taking the lock. *)
      let rec obtain waited =
        match try_acquire lock_path with
        | Acquired token -> `Locked token
        | Stale ->
            break_lock lock_path;
            obtain waited
        | Held_live -> (
            if not waited then Metrics.inc m_lock_waits;
            match lookup t k ~format with
            | `Hit p -> `Published p
            | `Miss | `Quarantined _ ->
                Unix.sleepf 0.002;
                obtain true)
      in
      match obtain false with
      | `Published p -> (
          match serve_payload p with
          | Some v -> v
          | None -> (
              (* Published but undecodable: fall through to computing
                 under the lock. *)
              let rec relock () =
                match try_acquire lock_path with
                | Acquired token -> token
                | Stale -> break_lock lock_path; relock ()
                | Held_live -> Unix.sleepf 0.002; relock ()
              in
              let token = relock () in
              Fun.protect
                ~finally:(fun () -> release lock_path token)
                (fun () -> compute_and_put ())))
      | `Locked token ->
          Fun.protect
            ~finally:(fun () -> release lock_path token)
            (fun () ->
              (* Double-check under the lock: the previous holder may
                 have committed between our miss and our acquire. *)
              match lookup t k ~format with
              | `Hit p -> (
                  match serve_payload p with
                  | Some v -> v
                  | None -> compute_and_put ())
              | `Miss | `Quarantined _ -> compute_and_put ()))

let get_or_compute ?on_result t k ~format compute =
  get_or_compute_v ?on_result t k ~format ~encode:Fun.id
    ~decode:(fun s -> Ok s)
    compute

(* --- accounting and eviction ------------------------------------------------ *)

let is_artifact name = Filename.check_suffix name ".art"

let live_files t =
  List.concat_map
    (fun kind ->
      let dir = Filename.concat t.store_root (kind_name kind) in
      match Sys.readdir dir with
      | exception Sys_error _ -> []
      | names ->
          Array.to_list names
          |> List.filter is_artifact
          |> List.filter_map (fun name ->
                 let path = Filename.concat dir name in
                 match Unix.stat path with
                 | st -> Some (kind, path, st)
                 | exception Unix.Unix_error _ -> None))
    all_kinds

let size_bytes t =
  List.fold_left
    (fun acc (_, _, st) -> Int64.add acc (Int64.of_int st.Unix.st_size))
    0L (live_files t)

let artifact_count t kind =
  List.length (List.filter (fun (k, _, _) -> k = kind) (live_files t))

type eviction = {
  ev_kind : kind;
  ev_digest : string;
  ev_path : string;
  ev_bytes : int;
}

(* Deterministic eviction order: ascending mtime, then kind name, then
   digest — so two stores with identical contents always agree on what
   goes first, and [gc --dry-run] predicts [gc] exactly. *)
let eviction_plan t ~max_bytes =
  let files =
    live_files t
    |> List.sort (fun (ka, pa, sa) (kb, pb, sb) ->
           match compare sa.Unix.st_mtime sb.Unix.st_mtime with
           | 0 -> (
               match compare (kind_name ka) (kind_name kb) with
               | 0 -> compare (Filename.basename pa) (Filename.basename pb)
               | c -> c)
           | c -> c)
  in
  let total =
    List.fold_left
      (fun acc (_, _, st) -> Int64.add acc (Int64.of_int st.Unix.st_size))
      0L files
  in
  let rec plan files total acc =
    if total <= max_bytes then List.rev acc
    else
      match files with
      | [] -> List.rev acc
      | (kind, path, st) :: rest ->
          let ev =
            {
              ev_kind = kind;
              ev_digest = Filename.remove_extension (Filename.basename path);
              ev_path = path;
              ev_bytes = st.Unix.st_size;
            }
          in
          plan rest
            (Int64.sub total (Int64.of_int st.Unix.st_size))
            (ev :: acc)
  in
  plan files total []

let evict t ~max_bytes =
  List.fold_left
    (fun removed ev ->
      match Sys.remove ev.ev_path with
      | () ->
          Metrics.inc m_evictions ~labels:[ ("kind", kind_name ev.ev_kind) ];
          removed + 1
      | exception Sys_error _ -> removed)
    0
    (eviction_plan t ~max_bytes)

let quarantine_stats t =
  let dir = quarantine_dir t in
  let count, bytes =
    match Sys.readdir dir with
    | exception Sys_error _ -> (0, 0L)
    | names ->
        Array.fold_left
          (fun (n, b) name ->
            if name = "log" then (n, b)
            else
              match Unix.stat (Filename.concat dir name) with
              | st -> (n + 1, Int64.add b (Int64.of_int st.Unix.st_size))
              | exception Unix.Unix_error _ -> (n, b))
          (0, 0L) names
  in
  let tally = Hashtbl.create 8 in
  List.iter
    (fun q ->
      let n = try Hashtbl.find tally q.q_reason with Not_found -> 0 in
      Hashtbl.replace tally q.q_reason (n + 1))
    (read_quarantine_log t);
  let reasons =
    Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) tally []
    |> List.sort (fun (ra, na) (rb, nb) ->
           match compare nb na with 0 -> compare ra rb | c -> c)
  in
  (count, bytes, reasons)
