(** Client-side shard router: consistent hashing over farm daemons,
    with a local store as both write-through cache and fallback.

    A {!t} tiers two levels: every fetch first consults (and every
    computed artifact lands in) the {e local} {!Store}; on a local miss
    the key's {e owning shard} — chosen by consistent hashing over the
    configured daemon endpoints — is asked before computing. Remote
    artifacts are written through to the local store; locally computed
    artifacts are pushed to the owning shard best-effort.

    {b Fault tolerance.} Every remote call runs under a per-request
    deadline (socket send/receive timeouts), bounded retries with
    exponential {!Elfie_util.Backoff} + seeded jitter, and a per-shard
    circuit breaker:

    - {e Closed}: requests flow; {!config.breaker_threshold} consecutive
      failures open the circuit.
    - {e Open}: requests fail fast (no connection attempt) until
      {!config.breaker_cooldown_s} elapses.
    - {e Half-open}: one trial request probes the shard; success closes
      the circuit, failure re-opens it for another cooldown.

    Any remote failure — shard down, torn or bit-flipped frame, hung
    peer, version skew, breaker open — {e degrades to a local
    recompute}: the fetch behaves exactly like a cache miss. A shard
    outage costs time, never correctness, and never surfaces as an
    exception from {!get_or_compute_v}. *)

type config = {
  deadline_s : float;  (** per-request socket send/receive deadline *)
  retries : int;  (** retry attempts beyond the first, per request *)
  backoff : Elfie_util.Backoff.policy;  (** delay schedule between retries *)
  breaker_threshold : int;
      (** consecutive failures that open a shard's circuit *)
  breaker_cooldown_s : float;  (** open-state duration before a probe *)
  replicas : int;  (** virtual nodes per endpoint on the hash ring *)
  jitter_seed : int64;  (** seeds the jitter rng (deterministic delays) *)
}

val default_config : config

(** Observable breaker state of one endpoint. *)
type breaker_state = Closed | Open | Half_open

val pp_breaker_state : Format.formatter -> breaker_state -> unit

type t

val connect :
  ?config:config -> local:Store.t -> endpoints:string list -> unit -> t
(** Build a router over daemon socket paths. Nothing is contacted
    eagerly; connections are opened lazily per endpoint and kept. An
    empty [endpoints] list is a pure-local router (every fetch is just
    {!Store.get_or_compute_v}). *)

val monitor : ?config:config -> endpoints:string list -> unit -> t
(** A router with no local store, for observation only ([elfied top]):
    the scrape entry points below work, {!get_or_compute_v} raises
    [Invalid_argument]. *)

val close : t -> unit
(** Drop all shard connections (the local store stays usable). *)

val local : t -> Store.t option
(** The local store tier; [None] for a {!monitor} router. *)

val endpoints : t -> string list

val endpoint_for : t -> Store.key -> string option
(** The key's owning shard under consistent hashing ([None] when no
    endpoints are configured). Stable across routers with the same
    endpoint list and [replicas]. *)

val breaker : t -> string -> breaker_state option
(** Current breaker state of an endpoint ([None] for an unknown path). *)

val get_or_compute_v :
  ?on_result:([ `Hit | `Miss ] -> unit) ->
  t ->
  Store.key ->
  format:int ->
  encode:('a -> string) ->
  decode:(string -> ('a, Elfie_util.Diag.t) result) ->
  (unit -> 'a) ->
  'a
(** Tiered fetch-or-compute: local store, then owning shard, then
    [compute]. Same contract as {!Store.get_or_compute_v} — [on_result]
    sees [`Hit] when either tier served the artifact. Never raises on
    shard failure. *)

val backend : t -> Codec.backend
(** The router as a {!Codec.backend}, for [Codec.fetch_*]. *)

(** {1 One-shot admin clients} *)

val ping : ?deadline_s:float -> string -> (string, string) result
(** Send [health] to a daemon socket path; the health text or an error
    reason. *)

val remote_stats :
  ?deadline_s:float -> string -> (Daemon.stats, string) result
(** Fetch and parse a daemon's [stats]. *)

(** {1 Fleet telemetry scrape}

    These go through the same breaker-gated, retrying request path as
    artifact fetches, against a configured endpoint of this router
    (error ["unknown-endpoint"] otherwise) — so a monitor router both
    respects and reports breaker state. An old-protocol daemon answers
    [version-skew]; a same-version daemon that cannot serve the opcode
    answers [bad-request] — both are plain [Error] reasons, never
    exceptions. *)

val scrape_metrics : t -> string -> (string, string) result
(** A daemon's Prometheus text exposition. *)

val scrape_events : ?limit:int -> t -> string -> (string, string) result
(** A daemon's recent structured-log events as JSONL (newest last);
    [limit] bounds the event count (daemon default 256). *)

val scrape_stats : t -> string -> (Daemon.stats, string) result
(** {!remote_stats} through the router's fault-tolerant path. *)

val scrape_health : t -> string -> (string, string) result
(** The daemon's health line ([ok pid=... version=... root=...]). *)
