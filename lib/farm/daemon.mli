(** The ELFie farm daemon: a persistent store service over a
    Unix-domain socket.

    [elfied serve] runs one daemon per shard. Each daemon owns a
    {!Store} and answers {e get} / {e put} / {e stats} / {e health}
    requests from any number of concurrent clients (one handler thread
    per connection), so a fleet of drivers shares one artifact cache
    without sharing a filesystem lock discipline.

    {b Wire protocol.} Every message is one frame:

    {v
    offset  size  field
    0       4     magic "ELFD"
    4       1     protocol version (currently 2)
    5       1     opcode
    6       4     payload length, u32 little-endian (excludes context)
    10      16    MD5 digest of context ^ payload
    26      16    v2+ trace context: trace id u64 LE, span id u64 LE
    42      n     payload
    v}

    Version 2 inserts a 16-byte {e trace context} between the header
    and the payload: the caller's process trace ID and the ID of the
    span covering this request ({!Elfie_obs.Trace}), echoed back on the
    response frame, so a merged multi-process trace correlates client
    request spans with daemon handler spans. Decode remains tolerant of
    version-1 peers (no context, digest over the payload alone); only
    versions {e newer} than ours are {!Wire.error} [Version_skew].

    The digest makes every frame self-verifying: a torn or bit-flipped
    frame — context bytes included — decodes to a typed {!Wire.error},
    never to a wrong payload.
    Request payloads are text headers ([kind \n digest \n format], for
    put followed by [\n] and the raw artifact bytes); response payloads
    are raw artifact bytes (hit) or text. The protocol is deliberately
    torn-frame-tolerant: any decode failure on the server answers
    [R_err] (or closes the connection), and any decode failure on the
    client is a typed error the {!Shard} router degrades through —
    corruption on the wire is a retry then a local recompute, never a
    served corrupt artifact.

    {b Fault injection.} [start ~tamper] installs a hook that may
    rewrite, truncate, withhold or cut the connection instead of each
    response frame — the in-process lever {!Fault_inject.run_daemon}
    uses to prove every failure mode degrades to recompute. *)

module Wire : sig
  val version : int

  val header_bytes : int
  (** Fixed frame-header size (26). *)

  val ctx_bytes : int
  (** Size of the v2+ trace context between header and payload (16). *)

  val max_payload : int
  (** Hard cap on a single frame's payload; larger lengths decode as
      {!error} [Too_large] without allocating. *)

  type opcode =
    | Get  (** request: [kind \n digest \n format] *)
    | Put  (** request: [kind \n digest \n format \n payload] *)
    | Stats  (** request: empty *)
    | Health  (** request: empty *)
    | Metrics_req  (** request: empty; answers the Prometheus registry *)
    | Events_req  (** request: optional event-count limit as text *)
    | R_hit  (** response: raw artifact payload *)
    | R_miss  (** response: empty *)
    | R_ok  (** response: empty (put committed) *)
    | R_stats  (** response: rendered {!stats} *)
    | R_health  (** response: [ok pid=... version=... root=...] *)
    | R_metrics  (** response: Prometheus text exposition *)
    | R_events  (** response: recent {!Elfie_obs.Log} events as JSONL *)
    | R_err  (** response: reason text; connection closes after *)

  val opcode_byte : opcode -> int
  val opcode_of_byte : int -> opcode option
  val opcode_name : opcode -> string

  (** The trace context a v2 frame carries (all-zero when absent). *)
  type ctx = { trace_id : int64; span_id : int64 }

  val no_ctx : ctx

  (** Why a frame failed to decode. *)
  type error =
    | Closed  (** orderly EOF between frames *)
    | Torn  (** EOF inside a frame *)
    | Bad_magic
    | Version_skew  (** peer speaks another protocol version *)
    | Bad_opcode
    | Too_large
    | Bad_checksum  (** payload does not match the frame digest *)
    | Timeout  (** the socket's receive/send deadline fired *)

  val error_to_string : error -> string

  val encode : ?version:int -> ?trace:ctx -> opcode -> string -> string
  (** Render a complete frame. [version] overrides the protocol version
      byte (fault injection); context bytes are emitted only for
      versions ≥ 2. [trace] defaults to {!no_ctx}. *)

  val decode : string -> (opcode * string, error) result
  (** Decode one complete frame from bytes (exposed for tests); trailing
      bytes after the frame are an error ([Torn]). *)

  val decode_ctx : string -> (opcode * string * ctx, error) result
  (** {!decode}, also yielding the frame's trace context ({!no_ctx} for
      v1 frames). *)

  val write_frame :
    ?trace:ctx -> Unix.file_descr -> opcode -> string -> (unit, error) result

  val read_frame : Unix.file_descr -> (opcode * string, error) result
  val read_frame_ctx : Unix.file_descr -> (opcode * string * ctx, error) result
end

(** A parsed [stats] response. *)
type stats = {
  st_bytes : int64;  (** live artifact bytes in the shard's store *)
  st_artifacts : (string * int) list;  (** per kind-name live count *)
  st_quarantine_count : int;
  st_quarantine_bytes : int64;
  st_quarantine_reasons : (string * int) list;
}

val render_stats : stats -> string
val parse_stats : string -> stats option

val latency_buckets : float list
(** Histogram bounds for request-latency metrics on both sides of the
    socket: 10 µs up to 2 s (Unix-socket service sits far below the
    Prometheus default 5 ms floor). *)

(** What to do {e instead of} sending a response frame (fault
    injection; {!Pass} is normal service). *)
type tamper =
  | Pass
  | Rewrite of (string -> string)  (** corrupt the encoded frame bytes *)
  | Truncate of int  (** send only the first [n] bytes, then close *)
  | Hang_response  (** send nothing; hold the connection open *)
  | Drop_connection  (** close the connection without responding *)

type t

val start :
  ?tamper:(unit -> tamper) -> store:Store.t -> socket_path:string -> unit -> t
(** Bind [socket_path] and serve [store] until {!stop}. A leftover
    socket file whose owner no longer accepts (stale after a crash) is
    unlinked and rebound; a socket with a {e live} listener raises
    [Failure]. [tamper] is consulted before every response frame. *)

val socket_path : t -> string
val store : t -> Store.t

val stop : ?unlink:bool -> t -> unit
(** Stop accepting, cut live connections, join all daemon threads.
    [unlink] (default true) removes the socket file. *)
