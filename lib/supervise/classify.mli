(** Crash classification: the closed outcome taxonomy of supervised
    execution.

    Every execution path — native ELFie runs ({!Elfie_core.Elfie_runner}),
    pinball replay ({!Elfie_pin.Replayer}) and the simulator backends —
    folds into exactly one of these constructors. No raw string faults
    escape to callers: the supervisor retry policy, the experiment
    journal and the degradations audit trail all speak this type.

    The taxonomy follows the paper's failure analysis of ELFies
    (Section II-B3): a fired region counter is success ([Graceful]); the
    known failure modes are a load-time stack collision, divergence into
    uncaptured state, and a failing system call; a fired watchdog is
    [Timeout] (wall clock) or [Runaway] (instruction budget); anything
    else is an opaque [Backend_error]. *)

type t =
  | Graceful  (** the region counter(s) fired — the paper's success *)
  | Stack_collision
      (** the loader could not reserve a stack under the randomized top *)
  | Divergence of { pc : int64; icount : int64 }
      (** execution left the recorded region: first divergent program
          counter and the retired instruction count at that point *)
  | Syscall_failure
      (** the ELFie aborted because a system call failed (non-zero exit
          before the region counter fired) *)
  | Timeout  (** the wall-clock watchdog stopped the run *)
  | Runaway  (** the instruction-budget watchdog stopped the run *)
  | Backend_error of string  (** any other failure, quarantined as-is *)

(** Stable, parseable rendering (inverse of {!of_string}); used by the
    journal and in reports. *)
val to_string : t -> string

(** Parse {!to_string} output. [None] on malformed input. *)
val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val is_graceful : t -> bool

(** Percent-escape a string into a single tab/newline-free token;
    inverse of {!unescape}. Shared with the journal's tab-separated
    line format. *)
val escape : string -> string

val unescape : string -> string

(** Classify a native ELFie run. Uses only the structured outcome
    fields, never the message strings. *)
val of_outcome : Elfie_core.Elfie_runner.outcome -> t

(** Classify a replay: the icount contract and syscall log must match
    ([Graceful]), otherwise the first divergence (or [Runaway] when the
    instruction cap stopped a wedged replay). *)
val of_replay : Elfie_pin.Replayer.result -> t

(** Classify an exception escaping an execution backend:
    [Loader.Stack_collision] and structured diagnostics keep their
    class, everything else becomes [Backend_error]. *)
val of_exn : exn -> t
