(** Supervised job execution: watchdogs, classification-driven retry
    with exponential backoff, and journalled results.

    Every attempt of a supervised job runs under two watchdogs layered
    on the machine's [max_ins] cap:

    - an {e instruction budget} ({!budget.ins}): the machine-wide
      retired-instruction limit; an attempt stopped by it (while the
      region counters never fired) classifies as {!Classify.Runaway};
    - a {e wall-clock limit} ({!budget.wall_s}), enforced preemptively
      for native ELFie runs by a pintool that checks a deadline every
      few thousand instructions and stops the machine; a run stopped by
      it classifies as {!Classify.Timeout}.

    A fired region counter is the success criterion ({!Classify.Graceful});
    a fired watchdog is never success.

    Retry policy, by classification of the failed attempt:

    - [Stack_collision] / [Syscall_failure]: transient under address
      randomization — retry up to {!policy.retries} times with a fresh
      seed (re-seeding the loader's stack randomization) and
      exponential backoff with jitter;
    - [Timeout] / [Runaway]: retried {e once} with the instruction
      budget raised by {!policy.budget_raise}, then quarantined;
    - [Divergence]: not retried — escalated to an injection-less replay
      of the source pinball for a first-divergence report, then
      quarantined;
    - [Backend_error]: quarantined immediately.

    Quarantined jobs are recorded in the journal (and the caller's
    degradations trail) and never crash the batch. *)

type budget = {
  ins : int64 option;  (** instruction budget ([max_ins]) per attempt *)
  wall_s : float option;  (** wall-clock watchdog per attempt *)
}

(** No instruction budget, no wall-clock limit. *)
val unlimited : budget

type policy = {
  retries : int;  (** max re-seeded retries for transient classes *)
  backoff_base_s : float;
      (** first backoff delay; [0.0] (the default) disables sleeping *)
  backoff_factor : float;  (** exponential growth per retry *)
  backoff_max_s : float;
      (** hard ceiling on any single delay (default 30 s) *)
  jitter : float;  (** +- fraction of the delay, drawn deterministically *)
  budget_raise : int64;
      (** instruction-budget multiplier for the single timeout/runaway
          retry *)
  base_seed : int64;
      (** seed of attempt 0; attempt [n] runs with
          [base_seed + 1009 * n], matching the harness's historical
          seed-retry schedule *)
}

val default_policy : policy

type watchdog = Wd_none | Wd_wall | Wd_ins

type attempt = {
  attempt_seed : int64;
  classification : Classify.t;
  wall_s : float;
  escalated : bool;
      (** this attempt is the diagnostic injection-less escalation of a
          divergence, not a primary execution *)
  note : string option;  (** e.g. the escalation's first-divergence report *)
}

type report = {
  job : string;
  final : Classify.t;  (** classification of the last primary attempt *)
  quarantined : bool;
  skipped : bool;  (** satisfied from the journal; nothing was run *)
  attempts : attempt list;  (** oldest first, escalations included *)
  total_wall_s : float;
}

val pp_report : Format.formatter -> report -> unit

(** Resume accounting for this process: how many supervised jobs were
    skipped because the journal already marked them graceful, and the
    estimated wall milliseconds those skips saved (the journaled wall
    time of each skipped job). Backed by the
    [elfie_journal_skips_total] / [elfie_journal_saved_ms_total]
    metrics; batch drivers print it after a [--resume] run. *)
val resume_savings : unit -> int * float

(** {1 The generic loop} *)

(** [supervise ~job run] drives [run] through the retry loop above.
    [run ~attempt_no ~seed ~budget] performs one attempt — [budget.ins]
    already reflects any raise — and returns the attempt's value and
    classification; exceptions it raises are classified via
    {!Classify.of_exn}. [escalate] performs the divergence escalation
    and returns its classification and a report note. When [journal] is
    given, every non-skipped job's result is appended to it; when
    [resume] is also true (the default), a job whose latest record is
    graceful for the same [inputs] hash is skipped without running — pass
    [~resume:false] to write through the journal without skipping (the
    pipeline's observability mode). The returned value is the last
    primary attempt's. *)
val supervise :
  job:string ->
  ?policy:policy ->
  ?budget:budget ->
  ?journal:Journal.t ->
  ?resume:bool ->
  ?inputs:string list ->
  ?escalate:(Classify.t -> (Classify.t * string) option) ->
  (attempt_no:int -> seed:int64 -> budget:budget -> 'a option * Classify.t) ->
  report * 'a option

(** {1 Wrapped execution paths} *)

(** Supervised native ELFie execution ({!Elfie_core.Elfie_runner.run}).
    Installs the preemptive wall-clock watchdog when [budget.wall_s] is
    set, and reclassifies a watchdog-stopped run from [Runaway] to
    [Timeout]. [seed] overrides the policy's base seed. *)
val run_elfie :
  job:string ->
  ?policy:policy ->
  ?budget:budget ->
  ?journal:Journal.t ->
  ?resume:bool ->
  ?inputs:string list ->
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?kernel_cost:bool ->
  Elfie_elf.Image.t ->
  report * Elfie_core.Elfie_runner.outcome option

(** Supervised constrained replay of a pinball, with the injection-less
    escalation on divergence. *)
val run_replay :
  job:string ->
  ?policy:policy ->
  ?budget:budget ->
  ?journal:Journal.t ->
  ?resume:bool ->
  ?inputs:string list ->
  Elfie_pinball.Pinball.t ->
  report * Elfie_pin.Replayer.result option

(** Supervised arbitrary backend step (simulator runs, artifact
    conversions): [f ~seed ~max_ins] returns a value and its
    classification; raised exceptions are classified and quarantine the
    job after the retry budget. *)
val run_backend :
  job:string ->
  ?policy:policy ->
  ?budget:budget ->
  ?journal:Journal.t ->
  ?resume:bool ->
  ?inputs:string list ->
  (seed:int64 -> max_ins:int64 option -> 'a * Classify.t) ->
  report * 'a option

(** {1 Batches} *)

type 'a job_spec = {
  name : string;
  job_inputs : string list;  (** hashed for journal resume *)
  exec : seed:int64 -> max_ins:int64 option -> 'a * Classify.t;
}

(** Run a batch of jobs under one policy and journal. Jobs already
    journalled graceful (same inputs) are skipped — this is the
    [--resume] path of [bin/experiments]; previously-failed jobs are
    re-run. Never raises: each job ends in a report. *)
val run_batch :
  ?policy:policy ->
  ?budget:budget ->
  ?journal:Journal.t ->
  ?resume:bool ->
  'a job_spec list ->
  (string * report * 'a option) list
