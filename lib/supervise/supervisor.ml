module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics
module Log = Elfie_obs.Log

type budget = { ins : int64 option; wall_s : float option }

let unlimited = { ins = None; wall_s = None }

type policy = {
  retries : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  jitter : float;
  budget_raise : int64;
  base_seed : int64;
}

let default_policy =
  {
    retries = 2;
    backoff_base_s = 0.0;
    backoff_factor = 2.0;
    backoff_max_s = 30.0;
    jitter = 0.25;
    budget_raise = 4L;
    base_seed = 42L;
  }

(* The supervisor's retry delays are an Util.Backoff schedule; the
   policy fields above are its historical spelling. *)
let backoff_policy policy =
  {
    Elfie_util.Backoff.base_s = policy.backoff_base_s;
    factor = policy.backoff_factor;
    max_s = policy.backoff_max_s;
    jitter = policy.jitter;
  }

type watchdog = Wd_none | Wd_wall | Wd_ins

type attempt = {
  attempt_seed : int64;
  classification : Classify.t;
  wall_s : float;
  escalated : bool;
  note : string option;
}

type report = {
  job : string;
  final : Classify.t;
  quarantined : bool;
  skipped : bool;
  attempts : attempt list;
  total_wall_s : float;
}

let pp_report fmt r =
  Format.fprintf fmt "%s: %a (%s%d attempt%s, %.0f ms)" r.job Classify.pp
    r.final
    (if r.skipped then "skipped, "
     else if r.quarantined then "quarantined, "
     else "")
    (List.length r.attempts)
    (if List.length r.attempts = 1 then "" else "s")
    (r.total_wall_s *. 1000.0)

let m_runs =
  Metrics.counter "elfie_runs_total"
    ~help:"Supervised jobs finished, by final crash class"

let m_attempts =
  Metrics.counter "elfie_run_attempts_total"
    ~help:"Individual supervised attempts (excluding escalations)"

let m_retries =
  Metrics.counter "elfie_retry_attempts_total"
    ~help:"Attempts beyond the first for a supervised job"

let m_wall =
  Metrics.histogram "elfie_run_wall_seconds"
    ~help:"Wall time per supervised job, all attempts included"

let m_journal_skips =
  Metrics.counter "elfie_journal_skips_total"
    ~help:"Jobs skipped on --resume because the journal marks them done"

let m_journal_saved_ms =
  Metrics.counter "elfie_journal_saved_ms_total"
    ~help:"Estimated wall milliseconds saved by --resume skips \
           (the journaled wall time of each skipped job)"

let resume_savings () =
  ( int_of_float (Metrics.total m_journal_skips),
    Metrics.total m_journal_saved_ms )

(* What the retry loop does with a classified attempt. *)
type disposition = Done | Retry | Retry_raised | Escalate | Quarantine

let dispose policy ~attempt_no ~raised = function
  | Classify.Graceful -> Done
  | Stack_collision | Syscall_failure ->
      if attempt_no < policy.retries then Retry else Quarantine
  | Timeout | Runaway -> if raised then Quarantine else Retry_raised
  | Divergence _ -> Escalate
  | Backend_error _ -> Quarantine

let seed_of policy attempt_no =
  Int64.add policy.base_seed (Int64.of_int (1009 * attempt_no))

let backoff policy rng ~attempt_no =
  Elfie_util.Backoff.sleep ~rng (backoff_policy policy) ~attempt:attempt_no

let supervise ~job ?(policy = default_policy) ?(budget = unlimited) ?journal
    ?(resume = true) ?(inputs = []) ?escalate run =
  let inputs_hash = Journal.hash inputs in
  let skip =
    match journal with
    | Some j when resume -> Journal.should_skip j ~job ~inputs_hash
    | Some _ | None -> false
  in
  if skip then begin
    let saved_ms =
      match journal with
      | Some j -> (
          match Journal.find j ~job with
          | Some r -> r.Journal.wall_ms
          | None -> 0.0)
      | None -> 0.0
    in
    Metrics.inc m_journal_skips;
    Metrics.inc m_journal_saved_ms ~by:saved_ms;
    Trace.instant "supervisor.resume_skip"
      ~attrs:[ ("job", Trace.S job); ("saved_ms", Trace.F saved_ms) ];
    ( {
        job;
        final = Classify.Graceful;
        quarantined = false;
        skipped = true;
        attempts = [];
        total_wall_s = 0.0;
      },
      None )
  end
  else begin
    let rng =
      Elfie_util.Rng.create
        (Int64.logxor policy.base_seed (Int64.of_int (Hashtbl.hash job)))
    in
    let attempts = ref [] in
    let push a = attempts := a :: !attempts in
    let t_start = Unix.gettimeofday () in
    let run_escalation cls =
      match escalate with
      | None -> ()
      | Some f -> (
          let esp =
            Trace.begin_span "supervisor.escalate"
              ~attrs:
                [ ("job", Trace.S job); ("from", Trace.S (Classify.to_string cls)) ]
          in
          let t0 = Unix.gettimeofday () in
          match (try f cls with exn -> Some (Classify.of_exn exn, "escalation raised")) with
          | None -> Trace.end_span esp
          | Some (esc_cls, note) ->
              Trace.end_span esp
                ~attrs:[ ("class", Trace.S (Classify.to_string esc_cls)) ];
              push
                {
                  attempt_seed = policy.base_seed;
                  classification = esc_cls;
                  wall_s = Unix.gettimeofday () -. t0;
                  escalated = true;
                  note = Some note;
                })
    in
    let rec go ~attempt_no ~budget ~raised last_value =
      backoff policy rng ~attempt_no;
      let seed = seed_of policy attempt_no in
      Metrics.inc m_attempts;
      if attempt_no > 0 then Metrics.inc m_retries;
      let asp =
        Trace.begin_span "supervisor.attempt"
          ~attrs:
            [
              ("job", Trace.S job);
              ("attempt", Trace.I (Int64.of_int attempt_no));
              ("seed", Trace.I seed);
            ]
      in
      let t0 = Unix.gettimeofday () in
      let value, cls =
        try run ~attempt_no ~seed ~budget
        with exn -> (None, Classify.of_exn exn)
      in
      Trace.end_span asp
        ~attrs:[ ("class", Trace.S (Classify.to_string cls)) ];
      (match cls with
      | Classify.Graceful -> ()
      | cls ->
          Log.warn "supervisor.attempt_failed"
            ~attrs:
              [
                ("job", Trace.S job);
                ("attempt", Trace.I (Int64.of_int attempt_no));
                ("class", Trace.S (Classify.to_string cls));
              ]);
      let value = match value with None -> last_value | some -> some in
      push
        {
          attempt_seed = seed;
          classification = cls;
          wall_s = Unix.gettimeofday () -. t0;
          escalated = false;
          note = None;
        };
      match dispose policy ~attempt_no ~raised cls with
      | Done -> (cls, false, value)
      | Retry -> go ~attempt_no:(attempt_no + 1) ~budget ~raised value
      | Retry_raised ->
          let budget =
            { budget with ins = Option.map (Int64.mul policy.budget_raise) budget.ins }
          in
          go ~attempt_no:(attempt_no + 1) ~budget ~raised:true value
      | Escalate ->
          run_escalation cls;
          (cls, true, value)
      | Quarantine ->
          Log.error "supervisor.quarantine"
            ~attrs:
              [
                ("job", Trace.S job);
                ("class", Trace.S (Classify.to_string cls));
              ];
          (cls, true, value)
    in
    let final, quarantined, value = go ~attempt_no:0 ~budget ~raised:false None in
    let total_wall_s = Unix.gettimeofday () -. t_start in
    let report =
      {
        job;
        final;
        quarantined;
        skipped = false;
        attempts = List.rev !attempts;
        total_wall_s;
      }
    in
    Metrics.inc m_runs ~labels:[ ("class", Classify.to_string final) ];
    Metrics.observe m_wall total_wall_s;
    (match journal with
    | None -> ()
    | Some j ->
        (* Per-attempt breakdown as journal attrs, mirroring the
           supervisor.attempt spans: class and duration of each try. *)
        let attrs =
          List.mapi
            (fun i a ->
              ( Printf.sprintf "%s%d"
                  (if a.escalated then "escalation" else "attempt")
                  i,
                Printf.sprintf "%s:%.0fms"
                  (Classify.to_string a.classification)
                  (a.wall_s *. 1000.0) ))
            report.attempts
        in
        Journal.record j
          {
            Journal.job;
            inputs_hash;
            attempts =
              List.length (List.filter (fun a -> not a.escalated) report.attempts);
            classification = final;
            quarantined;
            wall_ms = total_wall_s *. 1000.0;
            attrs;
          });
    (report, value)
  end

(* Preemptive wall-clock watchdog: a pintool that checks the deadline
   every 4096 retired instructions and stops the machine. Returns the
   fired flag. *)
let install_wall_watchdog machine ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let fired = ref false in
  let count = ref 0 in
  let tool =
    {
      (Elfie_pin.Pintool.empty ~name:"wall-watchdog") with
      Elfie_pin.Pintool.on_ins =
        Some
          (fun _tid _pc _ins ->
            incr count;
            if
              !count land 4095 = 0
              && (not !fired)
              && Unix.gettimeofday () > deadline
            then begin
              fired := true;
              Elfie_machine.Machine.request_stop machine
            end);
    }
  in
  let (_ : unit -> unit) = Elfie_pin.Pintool.attach machine [ tool ] in
  fired

let run_elfie ~job ?(policy = default_policy) ?(budget = unlimited) ?journal
    ?resume ?inputs ?seed ?fs_init ?cwd ?kernel_cost image =
  let policy =
    match seed with None -> policy | Some s -> { policy with base_seed = s }
  in
  supervise ~job ~policy ~budget ?journal ?resume ?inputs
    (fun ~attempt_no:_ ~seed ~budget ->
      let fired_cell = ref (ref false) in
      let on_machine machine =
        match budget.wall_s with
        | None -> ()
        | Some t -> fired_cell := install_wall_watchdog machine ~timeout_s:t
      in
      let outcome =
        Elfie_core.Elfie_runner.run ~seed ?fs_init ?cwd ?max_ins:budget.ins
          ?kernel_cost ~on_machine image
      in
      let cls =
        match Classify.of_outcome outcome with
        | Classify.Runaway when !(!fired_cell) -> Classify.Timeout
        | cls -> cls
      in
      (Some outcome, cls))

let run_replay ~job ?(policy = default_policy) ?(budget = unlimited) ?journal
    ?resume ?inputs pb =
  let escalate _cls =
    let r =
      Elfie_pin.Replayer.replay
        ~mode:
          (Elfie_pin.Replayer.Injectionless
             { seed = policy.base_seed; fs_init = (fun (_ : Elfie_kernel.Fs.t) -> ()) })
        pb
    in
    let cls = Classify.of_replay r in
    let note =
      match r.Elfie_pin.Replayer.first_divergence with
      | Some d ->
          Printf.sprintf
            "injectionless replay: first divergence tid %d pc=0x%Lx icount=%Ld (%s)"
            d.Elfie_pin.Replayer.div_tid d.div_pc d.div_icount d.div_what
      | None ->
          if r.capped then "injectionless replay hit its instruction cap"
          else "injectionless replay reproduced the region"
    in
    Some (cls, note)
  in
  supervise ~job ~policy ~budget ?journal ?resume ?inputs ~escalate
    (fun ~attempt_no:_ ~seed:_ ~budget ->
      let r = Elfie_pin.Replayer.replay ~mode:Constrained ?max_ins:budget.ins pb in
      (Some r, Classify.of_replay r))

let run_backend ~job ?(policy = default_policy) ?(budget = unlimited) ?journal
    ?resume ?inputs f =
  supervise ~job ~policy ~budget ?journal ?resume ?inputs
    (fun ~attempt_no:_ ~seed ~budget ->
      let v, cls = f ~seed ~max_ins:budget.ins in
      (Some v, cls))

type 'a job_spec = {
  name : string;
  job_inputs : string list;
  exec : seed:int64 -> max_ins:int64 option -> 'a * Classify.t;
}

let run_batch ?(policy = default_policy) ?(budget = unlimited) ?journal ?resume
    specs =
  List.map
    (fun spec ->
      let report, value =
        run_backend ~job:spec.name ~policy ~budget ?journal ?resume
          ~inputs:spec.job_inputs spec.exec
      in
      (spec.name, report, value))
    specs
