(** Resumable experiment journal.

    An append-only, line-oriented ledger of supervised jobs. Each record
    carries the job name, a hash of the job's inputs, the number of
    attempts the supervisor made, the final {!Classify.t}, whether the
    job was quarantined and the wall time spent. Batch drivers
    ([bin/experiments], [Pipeline.validate]) write one record per
    finished job; on [--resume] the journal is read back and jobs whose
    latest record is graceful — with an unchanged inputs hash — are
    skipped, so a killed batch picks up where it left off.

    The on-disk format is one record per line:

    {v J1 <TAB> job <TAB> inputs_hash <TAB> attempts <TAB> classification <TAB> quarantined <TAB> wall_ms [<TAB> attrs] v}

    The trailing attrs field is optional (records written before it
    existed parse fine without it) and carries percent-escaped [k=v]
    pairs joined by commas — e.g. per-attempt class/duration breakdowns
    sourced from the supervisor's trace spans.

    Loading is tolerant: a truncated or corrupt line anywhere in the
    file (the process died mid-write, or the file was appended to
    concurrently) is ignored rather than failing the resume. When a job
    appears more than once, the latest record wins. *)

type record = {
  job : string;  (** unique job name within the batch *)
  inputs_hash : string;  (** {!hash} of the job's inputs *)
  attempts : int;  (** supervisor attempts, including the final one *)
  classification : Classify.t;
  quarantined : bool;
  wall_ms : float;  (** wall time across all attempts *)
  attrs : (string * string) list;
      (** optional free-form annotations ([[]] when absent) *)
}

type t

(** In-memory journal (no persistence) — for tests and one-shot runs. *)
val in_memory : unit -> t

(** Open (creating if needed) a journal file. Existing records are
    loaded; subsequent {!record} calls append to the file and flush
    line-by-line, so a killed process loses at most the record being
    written. The file descriptor is additionally [fsync]ed every
    [fsync_every] appends (default [1]: every record is durable against
    power-loss-style kills before {!record} returns; [0] disables
    fsync — flush-only, the pre-durability behavior). *)
val open_file : ?fsync_every:int -> string -> t

(** Force an fsync of any flushed-but-unsynced appends (useful with a
    bounded [fsync_every] cadence). No-op for in-memory journals. *)
val sync : t -> unit

val close : t -> unit

(** Append a record (and persist it, for file-backed journals). *)
val record : t -> record -> unit

(** All records, oldest first (duplicates included). *)
val records : t -> record list

(** Latest record for [job], if any. *)
val find : t -> job:string -> record option

(** A resumed batch skips [job] iff its latest record is graceful, not
    quarantined, and was produced from the same inputs hash. *)
val should_skip : t -> job:string -> inputs_hash:string -> bool

(** Hash a job's input strings into a stable hex digest. *)
val hash : string list -> string

(** Render one record as its journal line (without the newline). *)
val line_of_record : record -> string

(** Parse a journal line; [None] for malformed/truncated lines. *)
val record_of_line : string -> record option
