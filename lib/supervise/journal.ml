type record = {
  job : string;
  inputs_hash : string;
  attempts : int;
  classification : Classify.t;
  quarantined : bool;
  wall_ms : float;
  attrs : (string * string) list;
}

type t = {
  mutable entries : record list;  (** newest first *)
  oc : out_channel option;
  fsync_every : int;  (** fsync cadence; [0] disables fsync entirely *)
  mutable appended : int;  (** records appended since open *)
  (* Supervised jobs may record from pool worker domains concurrently;
     the lock keeps the entry list and the append stream coherent (one
     written line per record, in the same order as [entries]). *)
  lock : Mutex.t;
}

let magic = "J1"

(* Attrs ride in an optional 8th field as k=v pairs joined by commas;
   keys and values are percent-escaped so tabs, commas and '=' survive. *)
let escape_kv s =
  (* Classify.escape covers '%' and whitespace; the pair syntax also
     needs ',' and '=' out of the way (Classify.unescape decodes any
     %XX, so no matching change is needed on the read side). *)
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ',' -> Buffer.add_string buf "%2C"
      | '=' -> Buffer.add_string buf "%3D"
      | c -> Buffer.add_char buf c)
    (Classify.escape s);
  Buffer.contents buf

let attrs_to_field attrs =
  String.concat ","
    (List.map (fun (k, v) -> escape_kv k ^ "=" ^ escape_kv v) attrs)

let attrs_of_field field =
  if field = "" then Some []
  else
    String.split_on_char ',' field
    |> List.map (fun pair ->
           match String.index_opt pair '=' with
           | Some i ->
               Some
                 ( Classify.unescape (String.sub pair 0 i),
                   Classify.unescape
                     (String.sub pair (i + 1) (String.length pair - i - 1)) )
           | None -> None)
    |> List.fold_left
         (fun acc kv ->
           match (acc, kv) with
           | Some l, Some kv -> Some (kv :: l)
           | _ -> None)
         (Some [])
    |> Option.map List.rev

let line_of_record r =
  String.concat "\t"
    ([
       magic;
       Classify.escape r.job;
       r.inputs_hash;
       string_of_int r.attempts;
       Classify.to_string r.classification;
       (if r.quarantined then "1" else "0");
       Printf.sprintf "%.3f" r.wall_ms;
     ]
    @ if r.attrs = [] then [] else [ attrs_to_field r.attrs ])

let record_of_line line =
  let parse job inputs_hash attempts cls quarantined wall_ms attrs_field =
    match
      ( int_of_string_opt attempts,
        Classify.of_string cls,
        (match quarantined with "0" -> Some false | "1" -> Some true | _ -> None),
        float_of_string_opt wall_ms,
        attrs_of_field attrs_field )
    with
    | Some attempts, Some classification, Some quarantined, Some wall_ms,
      Some attrs ->
        Some
          {
            job = Classify.unescape job;
            inputs_hash;
            attempts;
            classification;
            quarantined;
            wall_ms;
            attrs;
          }
    | _ -> None
  in
  match String.split_on_char '\t' line with
  | [ m; job; inputs_hash; attempts; cls; quarantined; wall_ms ] when m = magic
    ->
      parse job inputs_hash attempts cls quarantined wall_ms ""
  | [ m; job; inputs_hash; attempts; cls; quarantined; wall_ms; attrs ]
    when m = magic ->
      parse job inputs_hash attempts cls quarantined wall_ms attrs
  | _ -> None

let in_memory () =
  { entries = []; oc = None; fsync_every = 0; appended = 0;
    lock = Mutex.create () }

let load_existing path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         (* Tolerate torn/corrupt lines: the writer may have died
            mid-record, and resuming should not fail on that. *)
         match record_of_line line with
         | Some r -> entries := r :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !entries
  end

let open_file ?(fsync_every = 1) path =
  let entries = load_existing path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { entries; oc = Some oc; fsync_every = max 0 fsync_every; appended = 0;
    lock = Mutex.create () }

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error _ -> ()

let sync t =
  Mutex.protect t.lock @@ fun () ->
  match t.oc with
  | None -> ()
  | Some oc ->
      flush oc;
      fsync_oc oc

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      flush oc;
      fsync_oc oc;
      close_out oc

let record t r =
  Mutex.protect t.lock @@ fun () ->
  t.entries <- r :: t.entries;
  match t.oc with
  | None -> ()
  | Some oc ->
      output_string oc (line_of_record r);
      output_char oc '\n';
      flush oc;
      (* Durability: flush moves the line to the OS, fsync moves it to
         the disk — without it a power-loss-style kill can lose every
         record since open, not just the one being written. *)
      t.appended <- t.appended + 1;
      if t.fsync_every > 0 && t.appended mod t.fsync_every = 0 then
        fsync_oc oc

let records t = Mutex.protect t.lock (fun () -> List.rev t.entries)

let find t ~job =
  Mutex.protect t.lock (fun () ->
      List.find_opt (fun r -> r.job = job) t.entries)

let should_skip t ~job ~inputs_hash =
  match find t ~job with
  | Some r ->
      Classify.is_graceful r.classification
      && (not r.quarantined)
      && r.inputs_hash = inputs_hash
  | None -> false

let hash inputs =
  Digest.to_hex (Digest.string (String.concat "\x00" inputs))
