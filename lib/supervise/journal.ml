type record = {
  job : string;
  inputs_hash : string;
  attempts : int;
  classification : Classify.t;
  quarantined : bool;
  wall_ms : float;
}

type t = {
  mutable entries : record list;  (** newest first *)
  oc : out_channel option;
}

let magic = "J1"

let line_of_record r =
  String.concat "\t"
    [
      magic;
      Classify.escape r.job;
      r.inputs_hash;
      string_of_int r.attempts;
      Classify.to_string r.classification;
      (if r.quarantined then "1" else "0");
      Printf.sprintf "%.3f" r.wall_ms;
    ]

let record_of_line line =
  match String.split_on_char '\t' line with
  | [ m; job; inputs_hash; attempts; cls; quarantined; wall_ms ] when m = magic
    -> (
      match
        ( int_of_string_opt attempts,
          Classify.of_string cls,
          (match quarantined with "0" -> Some false | "1" -> Some true | _ -> None),
          float_of_string_opt wall_ms )
      with
      | Some attempts, Some classification, Some quarantined, Some wall_ms ->
          Some
            {
              job = Classify.unescape job;
              inputs_hash;
              attempts;
              classification;
              quarantined;
              wall_ms;
            }
      | _ -> None)
  | _ -> None

let in_memory () = { entries = []; oc = None }

let load_existing path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         (* Tolerate torn/corrupt lines: the writer may have died
            mid-record, and resuming should not fail on that. *)
         match record_of_line line with
         | Some r -> entries := r :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    !entries
  end

let open_file path =
  let entries = load_existing path in
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { entries; oc = Some oc }

let close t =
  match t.oc with None -> () | Some oc -> close_out oc

let record t r =
  t.entries <- r :: t.entries;
  match t.oc with
  | None -> ()
  | Some oc ->
      output_string oc (line_of_record r);
      output_char oc '\n';
      flush oc

let records t = List.rev t.entries

let find t ~job =
  List.find_opt (fun r -> r.job = job) t.entries

let should_skip t ~job ~inputs_hash =
  match find t ~job with
  | Some r ->
      Classify.is_graceful r.classification
      && (not r.quarantined)
      && r.inputs_hash = inputs_hash
  | None -> false

let hash inputs =
  Digest.to_hex (Digest.string (String.concat "\x00" inputs))
