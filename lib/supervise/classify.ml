type t =
  | Graceful
  | Stack_collision
  | Divergence of { pc : int64; icount : int64 }
  | Syscall_failure
  | Timeout
  | Runaway
  | Backend_error of string

(* Journal lines are tab-separated, so the rendered classification must
   be a single tab/newline-free token: escape the backend message. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\t' -> Buffer.add_string buf "%09"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let to_string = function
  | Graceful -> "graceful"
  | Stack_collision -> "stack-collision"
  | Divergence { pc; icount } ->
      Printf.sprintf "divergence:pc=0x%Lx:icount=%Ld" pc icount
  | Syscall_failure -> "syscall-failure"
  | Timeout -> "timeout"
  | Runaway -> "runaway"
  | Backend_error msg -> "backend-error:" ^ escape msg

let of_string s =
  match s with
  | "graceful" -> Some Graceful
  | "stack-collision" -> Some Stack_collision
  | "syscall-failure" -> Some Syscall_failure
  | "timeout" -> Some Timeout
  | "runaway" -> Some Runaway
  | _ -> (
      let prefixed p =
        String.length s > String.length p
        && String.sub s 0 (String.length p) = p
      in
      let rest p = String.sub s (String.length p) (String.length s - String.length p) in
      if prefixed "backend-error:" then Some (Backend_error (unescape (rest "backend-error:")))
      else if prefixed "divergence:" then
        try
          Scanf.sscanf (rest "divergence:") "pc=0x%Lx:icount=%Ld" (fun pc icount ->
              Some (Divergence { pc; icount }))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
      else None)

let pp fmt t = Format.pp_print_string fmt (to_string t)
let is_graceful = function Graceful -> true | _ -> false

let fault_pc = function
  | Elfie_machine.Machine.Page_fault { pc; _ } -> pc
  | Invalid_opcode pc | Privileged pc -> pc

let of_outcome (o : Elfie_core.Elfie_runner.outcome) =
  if o.stack_collision then Stack_collision
  else
    match o.load_error with
    | Some msg -> Backend_error msg
    | None -> (
        if o.graceful then Graceful
        else
          match o.machine_fault with
          | Some (fault, _tid, retired) ->
              (* A thread faulting mid-region means execution left the
                 captured state: the paper's divergence failure mode. *)
              Divergence { pc = fault_pc fault; icount = retired }
          | None -> (
              if o.runaway then Runaway
              else
                match o.exit_status with
                | Some _ -> Syscall_failure
                | None -> Backend_error "armed counters never fired"))

let of_replay (r : Elfie_pin.Replayer.result) =
  if r.matched_icounts && r.divergences = 0 && not r.capped then Graceful
  else
    match r.first_divergence with
    | Some d -> Divergence { pc = d.div_pc; icount = d.div_icount }
    | None ->
        if r.capped then Runaway
        else Backend_error "replay finished with unmatched icounts"

let of_exn = function
  | Elfie_kernel.Loader.Stack_collision _ -> Stack_collision
  | Elfie_util.Diag.Error d -> (
      match d.Elfie_util.Diag.code with
      | Elfie_util.Diag.Stack_collision -> Stack_collision
      | Elfie_util.Diag.Divergence -> Divergence { pc = 0L; icount = 0L }
      | _ -> Backend_error (Elfie_util.Diag.to_string d))
  | Elfie_kernel.Loader.Exec_failed msg -> Backend_error ("exec failed: " ^ msg)
  | exn -> Backend_error (Printexc.to_string exn)
