(** Vsniper: an execution-driven multicore timing simulator.

    Stands in for the Sniper simulator of the paper's case studies: a
    mechanistic core model (dispatch width, branch-mispredict and memory
    penalties) with per-core private L1/L2 caches and a shared LLC.

    Two front-ends, as in Section IV-B:

    - {!simulate_elfie} runs an ELF binary unmodified (the point of
      ELFies): simulation is {e unconstrained}, threads schedule freely,
      spin loops really spin, and the model starts at the ROI marker so
      ELFie startup code is excluded;
    - {!simulate_pinball} drives the model from constrained replay,
      where the recorded schedule can introduce artificial stalls and
      instruction counts reproduce the log exactly.

    Simulation ends at a [(PC, global execution count)] pair, the
    region-end criterion the paper uses for multi-threaded regions. *)

type config = {
  cores : int;
  dispatch_width : int;
  l1 : Elfie_machine.Cache.config;
  l2 : Elfie_machine.Cache.config;
  llc : Elfie_machine.Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  mispredict_cycles : int;
  syscall_cycles : int;
  stall_interval_ins : int;
      (** model asynchronous platform interference (interrupts, DRAM
          refresh, SMM): roughly one random stall per this many
          instructions per core. This is what de-synchronises otherwise
          identical worker threads, so unconstrained (ELFie) simulations
          accumulate realistic spin-wait instructions at barriers. *)
  stall_cycles : int;
}

(** The paper's reference machine: an Intel Gainestown-like out-of-order
    8-core part. *)
val gainestown : cores:int -> config

type result = {
  instructions : int64;  (** simulated instructions, all cores *)
  per_thread_instructions : int64 array;
  runtime_cycles : int64;  (** max core cycle count *)
  ipc : float;  (** aggregate instructions / runtime *)
  per_core_cycles : int64 array;
  end_condition_met : bool;
  completed : bool;
      (** the end condition fired or every thread exited; [false] means
          the [max_ins] cap stopped a run that was still executing *)
}

(** End-of-simulation criterion: stop once the instruction at [pc] has
    executed [count] times globally across all threads. *)
type end_condition = { pc : int64; count : int }

(** Determine a region-end criterion with a separate profiling run of
    the pinball (the paper's methodology): the last instruction executed
    in constrained replay outside the [exclude] address range (pass the
    spin-barrier code range), with its global in-region execution
    count. *)
val profile_end_condition :
  ?exclude:int64 * int64 -> Elfie_pinball.Pinball.t -> end_condition

(** Simulate an ELFie (or any VX86 ELF executable) natively. The timing
    model arms when the first ROI marker retires; pass
    [~from_marker:false] to model from the first instruction. *)
val simulate_elfie :
  ?end_condition:end_condition ->
  ?from_marker:bool ->
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  config ->
  Elfie_elf.Image.t ->
  result

(** Simulate a pinball under constrained replay (the PinPlay-enabled
    Sniper of the paper). *)
val simulate_pinball :
  ?end_condition:end_condition ->
  config ->
  Elfie_pinball.Pinball.t ->
  result
