open Elfie_isa
open Elfie_machine
open Elfie_kernel

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

(* Same families Coresim registers — the registry is get-or-create by
   name, so both handles resolve to one family. *)
let m_sim_instructions =
  Metrics.counter "elfie_sim_instructions_total"
    ~help:"User instructions simulated, by backend"

let m_cache_miss_ratio =
  Metrics.gauge "elfie_sim_cache_miss_ratio"
    ~help:"Last-level cache misses per simulated user instruction of \
           the most recent run, by backend"

type config = {
  cores : int;
  dispatch_width : int;
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  mispredict_cycles : int;
  syscall_cycles : int;
  stall_interval_ins : int;
  stall_cycles : int;
}

let gainestown ~cores =
  {
    cores;
    dispatch_width = 4;
    l1 = Cache.config ~size_bytes:32_768 ~ways:8 ~line_bytes:64;
    l2 = Cache.config ~size_bytes:262_144 ~ways:8 ~line_bytes:64;
    llc = Cache.config ~size_bytes:8_388_608 ~ways:16 ~line_bytes:64;
    l1_miss_cycles = 8;
    l2_miss_cycles = 30;
    llc_miss_cycles = 120;
    mispredict_cycles = 14;
    syscall_cycles = 400;
    stall_interval_ins = 2048;
    stall_cycles = 400;
  }

type result = {
  instructions : int64;
  per_thread_instructions : int64 array;
  runtime_cycles : int64;
  ipc : float;
  per_core_cycles : int64 array;
  end_condition_met : bool;
  completed : bool;
}

type end_condition = { pc : int64; count : int }

let profile_end_condition ?(exclude = (0L, 0L)) pb =
  let lo, hi = exclude in
  let hist : (int64, int) Hashtbl.t = Hashtbl.create 1024 in
  let last_pc = ref 0L in
  let machine, _kernel, _ = Elfie_pin.Replayer.materialize ~constrained:true pb in
  let tool =
    {
      (Elfie_pin.Pintool.empty ~name:"pc-profile") with
      on_ins =
        Some
          (fun _ pc _ ->
            if not (pc >= lo && pc < hi) then begin
              Hashtbl.replace hist pc
                (1 + Option.value ~default:0 (Hashtbl.find_opt hist pc));
              last_pc := pc
            end);
    }
  in
  let detach = Elfie_pin.Pintool.attach machine [ tool ] in
  Machine.run machine;
  detach ();
  { pc = !last_pc; count = Hashtbl.find hist !last_pc }

type core_state = {
  mutable cycles : float;
  l1 : Cache.t;
  l2 : Cache.t;
  predictor : Bytes.t;
}

type model = {
  cfg : config;
  cores : core_state array;
  llc : Cache.t;
  rng : Elfie_util.Rng.t;
  mutable enabled : bool;
  mutable per_thread : int64 array;
  mutable ec_count : int;
  mutable ec_met : bool;
}

let predictor_entries = 4096

let fresh_model cfg ~enabled =
  {
    cfg;
    cores =
      Array.init cfg.cores (fun _ ->
          {
            cycles = 0.0;
            l1 = Cache.create cfg.l1;
            l2 = Cache.create cfg.l2;
            predictor = Bytes.make predictor_entries '\002';
          });
    llc = Cache.create cfg.llc;
    rng = Elfie_util.Rng.create 0xBADCAFEL;
    enabled;
    per_thread = Array.make 16 0L;
    ec_count = 0;
    ec_met = false;
  }

let core_of model tid = model.cores.(tid mod model.cfg.cores)

let bump_thread model tid =
  if tid >= Array.length model.per_thread then begin
    let bigger = Array.make (tid + 8) 0L in
    Array.blit model.per_thread 0 bigger 0 (Array.length model.per_thread);
    model.per_thread <- bigger
  end;
  model.per_thread.(tid) <- Int64.add model.per_thread.(tid) 1L

let mem_access model tid addr =
  let core = core_of model tid in
  let penalty =
    if Cache.access core.l1 addr then 0
    else if Cache.access core.l2 addr then model.cfg.l1_miss_cycles
    else if Cache.access model.llc addr then model.cfg.l2_miss_cycles
    else model.cfg.llc_miss_cycles
  in
  core.cycles <- core.cycles +. float_of_int penalty

let branch model tid pc taken =
  let core = core_of model tid in
  let idx =
    abs (Int64.to_int (Int64.rem (Int64.shift_right_logical pc 1)
                         (Int64.of_int predictor_entries)))
  in
  let counter = Char.code (Bytes.get core.predictor idx) in
  let predicted = counter >= 2 in
  Bytes.set core.predictor idx
    (Char.chr (if taken then min 3 (counter + 1) else max 0 (counter - 1)));
  if predicted <> taken then
    core.cycles <- core.cycles +. float_of_int model.cfg.mispredict_cycles

let tool model machine end_condition =
  let on_ins tid pc ins =
    (match end_condition with
    | Some ec when pc = ec.pc ->
        model.ec_count <- model.ec_count + 1;
        if model.ec_count >= ec.count then begin
          model.ec_met <- true;
          Machine.request_stop machine
        end
    | Some _ | None -> ());
    if model.enabled then begin
      let core = core_of model tid in
      core.cycles <- core.cycles +. (1.0 /. float_of_int model.cfg.dispatch_width);
      if Elfie_util.Rng.int model.rng model.cfg.stall_interval_ins = 0 then
        core.cycles <- core.cycles +. float_of_int model.cfg.stall_cycles;
      bump_thread model tid;
      match Insn.classify ins with
      | Insn.K_syscall ->
          core.cycles <- core.cycles +. float_of_int model.cfg.syscall_cycles
      | K_alu | K_load | K_store | K_branch | K_call | K_vector | K_other -> ()
    end
  in
  {
    (Elfie_pin.Pintool.empty ~name:"sniper") with
    on_ins = Some on_ins;
    on_mem_read = Some (fun tid addr _ -> if model.enabled then mem_access model tid addr);
    on_mem_write = Some (fun tid addr _ -> if model.enabled then mem_access model tid addr);
    on_branch =
      Some (fun tid pc _target taken -> if model.enabled then branch model tid pc taken);
    on_marker = Some (fun _ _ -> model.enabled <- true);
  }

let record_metrics model r =
  let backend = [ ("backend", "sniper") ] in
  Metrics.inc m_sim_instructions ~labels:backend
    ~by:(Int64.to_float r.instructions);
  Metrics.set m_cache_miss_ratio ~labels:backend
    (Int64.to_float (Int64.of_int (Cache.misses model.llc))
    /. Float.max 1.0 (Int64.to_float r.instructions))

let end_sim_span sp r =
  Trace.end_span sp
    ~attrs:
      [
        ("instructions", Trace.I r.instructions);
        ("ipc", Trace.F r.ipc);
        ("completed", Trace.B r.completed);
      ]

let collect ?(completed = true) model =
  let per_core_cycles =
    Array.map (fun c -> Int64.of_float (Float.round c.cycles)) model.cores
  in
  let runtime_cycles = Array.fold_left max 0L per_core_cycles in
  let n_threads =
    let rec last i = if i = 0 then 0 else if model.per_thread.(i - 1) > 0L then i else last (i - 1) in
    last (Array.length model.per_thread)
  in
  let per_thread_instructions = Array.sub model.per_thread 0 (max 1 n_threads) in
  let instructions = Array.fold_left Int64.add 0L per_thread_instructions in
  {
    instructions;
    per_thread_instructions;
    runtime_cycles;
    ipc =
      (if runtime_cycles = 0L then 0.0
       else Int64.to_float instructions /. Int64.to_float runtime_cycles);
    per_core_cycles;
    end_condition_met = model.ec_met;
    completed;
  }

let simulate_elfie ?end_condition ?(from_marker = true) ?(seed = 13L)
    ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/") ?(max_ins = 100_000_000L) cfg
    image =
  let machine =
    Machine.create (Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create
      ~config:{ Vkernel.default_config with seed; initial_cwd = cwd; kernel_cost = false }
      fs
  in
  Vkernel.install kernel machine;
  let sp =
    Trace.begin_span "sniper.simulate"
      ~attrs:
        [
          ("source", Trace.S "elfie");
          ("cores", Trace.I (Int64.of_int (cfg : config).cores));
        ]
  in
  let _ = Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] in
  Elfie_pin.Tools.attach_global_profile machine;
  let model = fresh_model cfg ~enabled:(not from_marker) in
  let detach = Elfie_pin.Pintool.attach machine [ tool model machine end_condition ] in
  (* Cycle-driven scheduling: always advance the thread whose core is
     earliest in simulated time. This is what makes unconstrained
     multi-threaded simulation realistic — a thread held at a spin
     barrier keeps retiring wait-loop instructions until the slowest
     worker's *cycles* catch up, inflating instruction counts exactly as
     the paper observes for ELFies under Sniper. *)
  let quantum = 8 in
  let rec loop () =
    if (not (Machine.stop_requested machine)) && Machine.total_retired machine < max_ins
    then begin
      let best = ref None in
      List.iter
        (fun th ->
          if th.Machine.state = Machine.Runnable then
            let c = (core_of model th.Machine.tid).cycles in
            match !best with
            | Some (_, bc) when bc <= c -> ()
            | Some _ | None -> best := Some (th.Machine.tid, c))
        (Machine.threads machine);
      match !best with
      | None -> ()
      | Some (tid, _) ->
          let steps = ref 0 in
          while
            !steps < quantum
            && (Machine.thread machine tid).Machine.state = Machine.Runnable
            && not (Machine.stop_requested machine)
          do
            Machine.step machine tid;
            incr steps
          done;
          loop ()
    end
  in
  loop ();
  detach ();
  (* Complete = the end condition fired or every thread exited; a loop
     that stopped only because of the instruction cap did not finish. *)
  let completed =
    model.ec_met
    || List.for_all
         (fun th -> th.Machine.state <> Machine.Runnable)
         (Machine.threads machine)
  in
  let r = collect ~completed model in
  record_metrics model r;
  end_sim_span sp r;
  r

let simulate_pinball ?end_condition cfg pb =
  let sp =
    Trace.begin_span "sniper.simulate"
      ~attrs:
        [
          ("source", Trace.S "pinball");
          ("cores", Trace.I (Int64.of_int (cfg : config).cores));
        ]
  in
  let machine, _kernel, _div = Elfie_pin.Replayer.materialize ~constrained:true pb in
  Elfie_pin.Tools.attach_global_profile machine;
  let model = fresh_model cfg ~enabled:true in
  let detach = Elfie_pin.Pintool.attach machine [ tool model machine end_condition ] in
  Machine.run machine;
  detach ();
  let r = collect model in
  record_metrics model r;
  end_sim_span sp r;
  r
