open Elfie_isa
open Elfie_machine
open Elfie_kernel

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

(* Same families Coresim registers — the registry is get-or-create by
   name, so both handles resolve to one family. *)
let m_sim_instructions =
  Metrics.counter "elfie_sim_instructions_total"
    ~help:"User instructions simulated, by backend"

let m_cache_miss_ratio =
  Metrics.gauge "elfie_sim_cache_miss_ratio"
    ~help:"Last-level cache misses per simulated user instruction of \
           the most recent run, by backend"

type cpu_config = {
  name : string;
  rob_entries : int;
  issue_width : int;
  lsq_entries : int;
  int_regs : int;
  l1 : Cache.config;
  l2 : Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  mispredict_cycles : int;
}

let nehalem =
  {
    name = "nehalem-like";
    rob_entries = 128;
    issue_width = 4;
    lsq_entries = 48;
    int_regs = 128;
    l1 = Cache.config ~size_bytes:32_768 ~ways:8 ~line_bytes:64;
    l2 = Cache.config ~size_bytes:262_144 ~ways:8 ~line_bytes:64;
    l1_miss_cycles = 10;
    l2_miss_cycles = 180;
    mispredict_cycles = 17;
  }

let haswell =
  {
    name = "haswell-like";
    rob_entries = 192;
    issue_width = 8;
    lsq_entries = 72;
    int_regs = 168;
    l1 = Cache.config ~size_bytes:32_768 ~ways:8 ~line_bytes:64;
    l2 = Cache.config ~size_bytes:262_144 ~ways:8 ~line_bytes:64;
    l1_miss_cycles = 10;
    l2_miss_cycles = 180;
    mispredict_cycles = 14;
  }

type result = {
  instructions : int64;
  cycles : int64;
  ipc : float;
  l2_misses : int64;
  completed : bool;
}

type model = {
  cfg : cpu_config;
  l1 : Cache.t;
  l2 : Cache.t;
  predictor : Bytes.t;
  mutable enabled : bool;
  mutable cycles : float;
  mutable instructions : int64;
  (* The overlap window hides part of each long-latency miss: a bigger
     ROB/LSQ keeps more independent work in flight. *)
  overlap_window : float;
}

let predictor_entries = 4096

let fresh cfg ~enabled =
  {
    cfg;
    l1 = Cache.create cfg.l1;
    l2 = Cache.create cfg.l2;
    predictor = Bytes.make predictor_entries '\002';
    enabled;
    cycles = 0.0;
    instructions = 0L;
    overlap_window =
      float_of_int (cfg.rob_entries / cfg.issue_width)
      +. (float_of_int cfg.lsq_entries /. 2.0)
      +. (float_of_int (cfg.int_regs - 96) /. 4.0);
  }

let mem_access model addr =
  let penalty =
    if Cache.access model.l1 addr then 0.0
    else if Cache.access model.l2 addr then float_of_int model.cfg.l1_miss_cycles
    else
      (* Interval model: the ROB keeps issuing under the miss until it
         fills, so only the uncovered part of the latency stalls. *)
      Float.max 12.0 (float_of_int model.cfg.l2_miss_cycles -. model.overlap_window)
  in
  model.cycles <- model.cycles +. penalty

let branch model pc taken =
  let idx =
    abs (Int64.to_int (Int64.rem (Int64.shift_right_logical pc 1)
                         (Int64.of_int predictor_entries)))
  in
  let counter = Char.code (Bytes.get model.predictor idx) in
  let predicted = counter >= 2 in
  Bytes.set model.predictor idx
    (Char.chr (if taken then min 3 (counter + 1) else max 0 (counter - 1)));
  if predicted <> taken then
    model.cycles <- model.cycles +. float_of_int model.cfg.mispredict_cycles

let simulate_se ?(from_marker = true) ?(seed = 13L) ?(fs_init = fun (_ : Fs.t) -> ())
    ?(cwd = "/") ?(max_ins = 100_000_000L) cfg image =
  let machine =
    Machine.create (Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create
      ~config:{ Vkernel.default_config with seed; initial_cwd = cwd; kernel_cost = false }
      fs
  in
  Vkernel.install kernel machine;
  let sp =
    Trace.begin_span "gem5.simulate"
      ~attrs:[ ("cpu", Trace.S cfg.name); ("mode", Trace.S "se") ]
  in
  let _ = Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] in
  Elfie_pin.Tools.attach_global_profile machine;
  let model = fresh cfg ~enabled:(not from_marker) in
  let on_ins _tid _pc ins =
    if model.enabled then begin
      model.instructions <- Int64.add model.instructions 1L;
      model.cycles <- model.cycles +. (1.0 /. float_of_int model.cfg.issue_width);
      match Insn.classify ins with
      | Insn.K_vector ->
          (* SSE2-era vector support: half throughput. *)
          model.cycles <- model.cycles +. (1.0 /. float_of_int model.cfg.issue_width)
      | K_syscall -> model.cycles <- model.cycles +. 120.0
      | K_alu | K_load | K_store | K_branch | K_call | K_other -> ()
    end
  in
  let tool =
    {
      (Elfie_pin.Pintool.empty ~name:"gem5-se") with
      on_ins = Some on_ins;
      on_mem_read = Some (fun _ addr _ -> if model.enabled then mem_access model addr);
      on_mem_write = Some (fun _ addr _ -> if model.enabled then mem_access model addr);
      on_branch = Some (fun _ pc _ taken -> if model.enabled then branch model pc taken);
      on_marker = Some (fun _ _ -> model.enabled <- true);
    }
  in
  let detach = Elfie_pin.Pintool.attach machine [ tool ] in
  Machine.run ~max_ins machine;
  detach ();
  let r =
    {
      instructions = model.instructions;
      cycles = Int64.of_float (Float.round model.cycles);
      ipc =
        (if model.cycles = 0.0 then 0.0
         else Int64.to_float model.instructions /. model.cycles);
      l2_misses = Int64.of_int (Cache.misses model.l2);
      completed =
        List.for_all
          (fun th -> th.Machine.state <> Machine.Runnable)
          (Machine.threads machine);
    }
  in
  let backend = [ ("backend", "gem5") ] in
  Metrics.inc m_sim_instructions ~labels:backend
    ~by:(Int64.to_float r.instructions);
  Metrics.set m_cache_miss_ratio ~labels:backend
    (Int64.to_float r.l2_misses /. Float.max 1.0 (Int64.to_float r.instructions));
  Trace.end_span sp
    ~attrs:
      [
        ("instructions", Trace.I r.instructions);
        ("ipc", Trace.F r.ipc);
        ("completed", Trace.B r.completed);
      ];
  r
