(** Vgem5: a binary-driven out-of-order timing model in syscall-emulation
    (SE) mode.

    Stands in for the gem5 runs of Section IV-D: an ELFie is executed as
    an ordinary binary, system services come straight from the
    (simulated) host kernel, and the timing model is an interval-style
    out-of-order core parameterised by the resources Table V varies —
    reorder-buffer size, issue width, load/store queue depth and
    physical register file. A larger back-end hides more memory latency
    (the ROB/LSQ overlap window), so memory-bound applications gain the
    most from the Haswell-like configuration, as in the paper.

    Like real gem5 (SSE2-era ISA support), vector instructions execute
    at reduced throughput in this model. *)

type cpu_config = {
  name : string;
  rob_entries : int;
  issue_width : int;
  lsq_entries : int;
  int_regs : int;
  l1 : Elfie_machine.Cache.config;
  l2 : Elfie_machine.Cache.config;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  mispredict_cycles : int;
}

(** Intel Nehalem-like configuration. *)
val nehalem : cpu_config

(** Intel Haswell-like configuration (larger ROB/LSQ/regfile/caches). *)
val haswell : cpu_config

type result = {
  instructions : int64;
  cycles : int64;
  ipc : float;
  l2_misses : int64;
  completed : bool;
      (** every thread exited; [false] means the [max_ins] cap stopped a
          run that was still executing (a runaway ELFie) *)
}

(** Simulate an ELF binary in SE mode. Timing starts at the first ROI
    marker unless [from_marker] is false. *)
val simulate_se :
  ?from_marker:bool ->
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  cpu_config ->
  Elfie_elf.Image.t ->
  result
