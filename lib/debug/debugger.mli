(** Vgdb: a debugger for ELFies (and any VX86 executable).

    Implements the paper's recommended ELFie debugging workflow
    (Section II-B5): break on [elfie_on_start] — at which point all
    application pages are guaranteed to be mapped — then set breakpoints
    at application addresses. Because this reproduction's pinballs carry
    the original program's symbols into the generated ELFie, breakpoints
    on application symbols work too (the "symbolic debugging" extension
    the paper leaves as future work).

    The debugger owns the scheduler: threads advance round-robin one
    instruction at a time while under its control, so breakpoints are
    exact and deterministic for a given seed.

    Time travel: the debugger records which thread executed each step
    and drops a copy-on-write waypoint (machine snapshot + kernel
    clone) every [snapshot_every] steps. {!reverse_stepi} and
    {!reverse_continue} fork the nearest waypoint at or below the
    target step and deterministically replay the recorded thread
    sequence — exact reversal at any step count, without ever running
    the machine backwards. *)

type stop_reason =
  | Breakpoint of { tid : int; addr : int64 }
  | Step_done of int  (** tid *)
  | All_exited
  | Thread_fault of { tid : int; message : string }
  | Budget_exhausted  (** the instruction budget of [continue_] ran out *)
  | History_begin  (** reverse execution reached the start of history *)

val pp_stop : Format.formatter -> stop_reason -> unit

type t

(** Load an image under the debugger (process created but not started).
    [snapshot_every] sets the time-travel waypoint cadence in debugger
    steps (default 1024; waypoints are copy-on-write, so the cost per
    waypoint is O(mapped pages) pointer work, not a memory copy). *)
val launch :
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?snapshot_every:int ->
  Elfie_elf.Image.t ->
  t

val machine : t -> Elfie_machine.Machine.t

(** Set / clear a breakpoint at an absolute address. *)
val break_at : t -> int64 -> unit

val clear_at : t -> int64 -> unit

(** Resolve a symbol (from the image's symbol table) and break on it. *)
val break_symbol : t -> string -> (int64, string) result

val breakpoints : t -> int64 list

(** Run until a breakpoint, fault, exit, or [budget] instructions. *)
val continue_ : ?budget:int64 -> t -> stop_reason

(** Execute one instruction of [tid] (default: the last-stopped thread). *)
val step : ?tid:int -> t -> stop_reason

(** Thread register state. *)
val registers : t -> tid:int -> Elfie_machine.Context.t

(** Read memory; [None] if any byte is unmapped. *)
val read_mem : t -> int64 -> int -> bytes option

(** Disassemble [count] instructions at [addr]. *)
val disassemble : t -> addr:int64 -> count:int -> (int64 * Elfie_isa.Insn.t) list

(** Nearest symbol at or below [addr], with the offset. *)
val symbol_near : t -> int64 -> (string * int64) option

(** All symbols, sorted by address. *)
val symbols : t -> (string * int64) list

(** Thread states, like gdb's [info threads]. *)
val thread_summary : t -> (int * string * int64) list
    (** (tid, state, rip) *)

(** {2 Time travel} *)

(** Debugger steps executed since launch — the position on the
    timeline that {!reverse_stepi} moves. *)
val icount : t -> int

(** Copy-on-write waypoints currently retained (step 0 always is). *)
val waypoint_count : t -> int

(** Step backwards [n] instructions (default 1; at least one). The
    process state afterwards is bit-identical to a fresh run stepped
    forward to the same position. Returns [History_begin] when the
    travel lands on (or starts at) step 0, [Step_done] otherwise.
    History and waypoints past the new position are discarded; stepping
    forward again re-records them. *)
val reverse_stepi : ?n:int -> t -> stop_reason

(** Run backwards to the most recent earlier state in which the thread
    about to execute sat on a breakpoint — where a forward [continue_]
    would have stopped. Returns [History_begin] (positioned at the
    oldest retained waypoint) when no such state exists. *)
val reverse_continue : t -> stop_reason
