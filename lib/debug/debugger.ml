open Elfie_machine
open Elfie_kernel

type stop_reason =
  | Breakpoint of { tid : int; addr : int64 }
  | Step_done of int
  | All_exited
  | Thread_fault of { tid : int; message : string }
  | Budget_exhausted
  | History_begin

let pp_stop fmt = function
  | Breakpoint { tid; addr } ->
      Format.fprintf fmt "breakpoint hit: thread %d at 0x%Lx" tid addr
  | Step_done tid -> Format.fprintf fmt "stepped thread %d" tid
  | All_exited -> Format.fprintf fmt "process exited"
  | Thread_fault { tid; message } ->
      Format.fprintf fmt "thread %d faulted: %s" tid message
  | Budget_exhausted -> Format.fprintf fmt "instruction budget exhausted"
  | History_begin -> Format.fprintf fmt "reached the beginning of history"

(* Copy-on-write waypoint for time travel: the machine snapshot plus a
   kernel clone taken at debugger step [at]. *)
type waypoint = { at : int; wp_snap : Machine.snapshot; wp_kernel : Vkernel.t }

type t = {
  mutable m : Machine.t;
  mutable kernel : Vkernel.t;
  image : Elfie_elf.Image.t;
  bps : (int64, unit) Hashtbl.t;
  mutable current_tid : int;
  initial_tid : int;
  mutable rr_next : int;  (* round-robin cursor *)
  mutable icount : int;  (* debugger steps executed since launch *)
  (* Which thread executed each past step, [0 .. icount); reverse
     execution replays this exact sequence, so reversal is exact even
     when the user hand-stepped arbitrary threads. *)
  mutable hist : int array;
  snap_every : int;
  mutable waypoints : waypoint list;  (* newest first; step 0 always kept *)
}

let max_waypoints = 64

let launch ?(seed = 11L) ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/")
    ?(snapshot_every = 1024) image =
  let m =
    Machine.create (Machine.Free { seed; quantum_min = 1; quantum_max = 1 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create ~config:{ Vkernel.default_config with seed; initial_cwd = cwd } fs
  in
  Vkernel.install kernel m;
  let tid, _ = Loader.load kernel m image ~argv:[ "elfie" ] ~env:[] in
  let t =
    {
      m;
      kernel;
      image;
      bps = Hashtbl.create 8;
      current_tid = tid;
      initial_tid = tid;
      rr_next = 0;
      icount = 0;
      hist = Array.make 1024 0;
      snap_every = max 1 snapshot_every;
      waypoints = [];
    }
  in
  (* Waypoint zero: the freshly loaded process, the floor reverse
     execution can always reach. *)
  t.waypoints <-
    [ { at = 0; wp_snap = Machine.snapshot m; wp_kernel = Vkernel.fork kernel } ];
  t

let machine t = t.m
let break_at t addr = Hashtbl.replace t.bps addr ()
let clear_at t addr = Hashtbl.remove t.bps addr

let breakpoints t =
  Hashtbl.fold (fun a () acc -> a :: acc) t.bps [] |> List.sort Int64.unsigned_compare

let break_symbol t name =
  match Elfie_elf.Image.find_symbol t.image name with
  | Some addr ->
      break_at t addr;
      Ok addr
  | None -> Error (Printf.sprintf "no symbol %S in image" name)

let runnable_tids t =
  List.filter_map
    (fun th -> if th.Machine.state = Machine.Runnable then Some th.Machine.tid else None)
    (Machine.threads t.m)

let fault_of th =
  match th.Machine.state with
  | Machine.Faulted f ->
      Some
        (Thread_fault
           { tid = th.Machine.tid; message = Format.asprintf "%a" Machine.pp_fault f })
  | Machine.Runnable | Machine.Exited _ -> None

let push_hist t tid =
  if t.icount >= Array.length t.hist then begin
    let bigger = Array.make (2 * Array.length t.hist) 0 in
    Array.blit t.hist 0 bigger 0 t.icount;
    t.hist <- bigger
  end;
  t.hist.(t.icount) <- tid;
  t.icount <- t.icount + 1

(* Drop a waypoint when over budget: the second-oldest, so step 0 is
   always kept and recent history stays densest. *)
let trim_waypoints t =
  if List.length t.waypoints > max_waypoints then
    match List.rev t.waypoints with
    | oldest :: _ :: rest -> t.waypoints <- List.rev (oldest :: rest)
    | _ -> ()

let maybe_waypoint t =
  if
    t.icount mod t.snap_every = 0
    && (match t.waypoints with w :: _ -> w.at <> t.icount | [] -> true)
  then begin
    t.waypoints <-
      {
        at = t.icount;
        wp_snap = Machine.snapshot t.m;
        wp_kernel = Vkernel.fork t.kernel;
      }
      :: t.waypoints;
    trim_waypoints t
  end

(* Advance exactly one instruction of [tid], reporting faults. *)
let step_tid t tid =
  maybe_waypoint t;
  Machine.step t.m tid;
  push_hist t tid;
  t.current_tid <- tid;
  match fault_of (Machine.thread t.m tid) with
  | Some fault -> fault
  | None -> Step_done tid

let step ?tid t =
  let tid = Option.value ~default:t.current_tid tid in
  if (Machine.thread t.m tid).Machine.state <> Machine.Runnable then
    if runnable_tids t = [] then All_exited
    else step_tid t (List.hd (runnable_tids t))
  else step_tid t tid

let continue_ ?(budget = 50_000_000L) t =
  let executed = ref 0L in
  let rec loop () =
    match runnable_tids t with
    | [] -> All_exited
    | tids ->
        (* Round-robin across runnable threads, one instruction each. *)
        let n = List.length tids in
        let tid = List.nth tids (t.rr_next mod n) in
        t.rr_next <- (t.rr_next + 1) mod max 1 n;
        let rip = (Machine.thread t.m tid).Machine.ctx.Context.rip in
        if Hashtbl.mem t.bps rip then begin
          t.current_tid <- tid;
          Breakpoint { tid; addr = rip }
        end
        else if !executed >= budget then Budget_exhausted
        else begin
          executed := Int64.add !executed 1L;
          match step_tid t tid with
          | Step_done _ -> loop ()
          | stop -> stop
        end
  in
  loop ()

let registers t ~tid = (Machine.thread t.m tid).Machine.ctx

let read_mem t addr len =
  match Addr_space.read_bytes (Machine.mem t.m) addr len with
  | b -> Some b
  | exception Addr_space.Fault _ -> None

let disassemble t ~addr ~count =
  match read_mem t addr (count * 16) with
  | None -> []
  | Some buf ->
      List.map
        (fun (off, ins) -> (Int64.add addr (Int64.of_int off), ins))
        (Elfie_isa.Codec.disassemble buf ~off:0 ~count)

let symbols t =
  List.map
    (fun s -> (s.Elfie_elf.Image.sym_name, s.Elfie_elf.Image.value))
    t.image.Elfie_elf.Image.symbols
  |> List.sort (fun (_, a) (_, b) -> Int64.unsigned_compare a b)

let symbol_near t addr =
  List.fold_left
    (fun best (name, value) ->
      if Int64.unsigned_compare value addr <= 0 then Some (name, Int64.sub addr value)
      else best)
    None (symbols t)

(* --- Time travel ------------------------------------------------------- *)

let icount t = t.icount
let waypoint_count t = List.length t.waypoints

(* Materialise the process as it was at debugger step [target]: fork the
   newest waypoint at or below it copy-on-write and deterministically
   replay the recorded thread sequence up to [target]. The stored
   waypoint kernel is forked again so it stays pristine for later
   reversals. Waypoints past [target] describe an abandoned future and
   are dropped, as is the history suffix (both re-record on the next
   forward step). *)
let travel t target =
  let wp =
    List.fold_left
      (fun best w ->
        match best with
        | _ when w.at > target -> best
        | Some b when b.at >= w.at -> best
        | _ -> Some w)
      None t.waypoints
  in
  (* Waypoint zero is never dropped, so there is always one at or below
     any target. *)
  let wp = Option.get wp in
  let m = Machine.fork wp.wp_snap in
  let k = Vkernel.fork wp.wp_kernel in
  Vkernel.install k m;
  for i = wp.at to target - 1 do
    Machine.step m t.hist.(i)
  done;
  t.m <- m;
  t.kernel <- k;
  t.icount <- target;
  t.waypoints <- List.filter (fun w -> w.at <= target) t.waypoints;
  t.rr_next <- 0;
  t.current_tid <- (if target = 0 then t.initial_tid else t.hist.(target - 1))

let reverse_stepi ?(n = 1) t =
  if t.icount = 0 then History_begin
  else begin
    let target = max 0 (t.icount - max 1 n) in
    travel t target;
    if target = 0 then History_begin else Step_done t.current_tid
  end

let reverse_continue t =
  if t.icount = 0 then History_begin
  else begin
    (* Scan the recorded history on a scratch fork of the oldest
       retained waypoint, noting the last pre-step state strictly before
       the current position where the thread about to execute sat on a
       breakpoint — the state forward [continue_] would have stopped
       in. *)
    let oldest =
      List.fold_left
        (fun best w ->
          match best with Some b when b.at <= w.at -> best | _ -> Some w)
        None t.waypoints
      |> Option.get
    in
    let m = Machine.fork oldest.wp_snap in
    let k = Vkernel.fork oldest.wp_kernel in
    Vkernel.install k m;
    let best = ref None in
    for i = oldest.at to t.icount - 1 do
      let tid = t.hist.(i) in
      let rip = (Machine.thread m tid).Machine.ctx.Context.rip in
      if Hashtbl.mem t.bps rip then best := Some (i, tid, rip);
      Machine.step m tid
    done;
    match !best with
    | Some (i, tid, addr) ->
        travel t i;
        t.current_tid <- tid;
        Breakpoint { tid; addr }
    | None ->
        travel t oldest.at;
        History_begin
  end

let thread_summary t =
  List.map
    (fun th ->
      let state =
        match th.Machine.state with
        | Machine.Runnable -> "runnable"
        | Exited n -> Printf.sprintf "exited %d" n
        | Faulted f -> Format.asprintf "faulted (%a)" Machine.pp_fault f
      in
      (th.Machine.tid, state, th.Machine.ctx.Context.rip))
    (Machine.threads t.m)
