module Rng = Elfie_util.Rng
module Metrics = Elfie_obs.Metrics

type result = {
  k : int;
  assignments : int array;
  centroids : float array array;
  inertia : float;
}

let m_clusterings =
  Metrics.counter "elfie_kmeans_clusterings_total"
    ~help:"Lloyd's-algorithm runs, by algorithm variant"

let m_iterations =
  Metrics.counter "elfie_kmeans_iterations_total"
    ~help:"Assign/update iterations across clusterings, by variant"

let m_dist_evals =
  Metrics.counter "elfie_kmeans_distance_evals_total"
    ~help:"Point-to-centroid distance evaluations, by variant"

let sq_dist a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* k-means++ seeding: each next centre drawn proportionally to squared
   distance from the nearest already-chosen centre. *)
let seed_centroids ~rng ~k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Rng.int rng n);
  let d2 = Array.map (fun p -> sq_dist p centroids.(0)) points in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let chosen =
      if total <= 0.0 then Rng.int rng n
      else begin
        let target = Rng.float rng *. total in
        let acc = ref 0.0 and pick = ref (n - 1) and found = ref false in
        Array.iteri
          (fun i d ->
            if not !found then begin
              acc := !acc +. d;
              if !acc >= target then begin
                pick := i;
                found := true
              end
            end)
          d2;
        !pick
      end
    in
    centroids.(c) <- points.(chosen);
    Array.iteri
      (fun i p -> d2.(i) <- Float.min d2.(i) (sq_dist p centroids.(c)))
      points
  done;
  Array.map Array.copy centroids

let max_iters = 50

(* Lloyd's algorithm. [pruned] selects the assign strategy: the naive
   full scan, or Hamerly-style upper/lower bound pruning. Both paths
   share seeding, the update step, the iteration structure and the
   reseed stream, and the pruned assign only ever skips a point when its
   current centroid is provably the *unique* nearest (both bound tests
   are strict), so the two variants produce bit-identical results —
   assignments, centroids, inertia and RNG consumption. *)
let run_lloyd ~pruned ~rng ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.cluster: no points";
  if k < 1 then invalid_arg "Kmeans.cluster: k < 1";
  let k = min k n in
  let dim = Array.length points.(0) in
  let centroids = seed_centroids ~rng ~k points in
  (* Empty-cluster reseeds draw from a dedicated child stream (split off
     after seeding, so seeding draws are unaffected): however many
     reseeds either variant performs, the caller's stream advances by
     the same amount and the two variants stay draw-for-draw aligned. *)
  let reseed_rng = Rng.split rng in
  let assignments = Array.make n 0 in
  let dist_evals = ref 0 in
  let sqd a b =
    incr dist_evals;
    sq_dist a b
  in
  let assign_naive () =
    let changed = ref false in
    Array.iteri
      (fun i p ->
        let best = ref 0 and best_d = ref infinity in
        for c = 0 to k - 1 do
          let d = sqd p centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        if assignments.(i) <> !best then begin
          assignments.(i) <- !best;
          changed := true
        end)
      points;
    !changed
  in
  (* Hamerly bounds: [upper.(i)] bounds d(i, centroid of its cluster)
     from above (exact right after a tighten or full scan), [lower.(i)]
     bounds the distance to every *other* centroid from below, and
     [half_sep.(c)] is half the distance from c to its nearest other
     centroid. If upper < max(half_sep, lower) — strictly — the current
     centroid is the unique nearest and the k-way scan is skipped. *)
  let upper = Array.make n infinity in
  let lower = Array.make n 0.0 in
  let half_sep = Array.make k 0.0 in
  let refresh_half_sep () =
    for c = 0 to k - 1 do
      let m = ref infinity in
      for c' = 0 to k - 1 do
        if c' <> c then
          m := Float.min !m (sqrt (sqd centroids.(c) centroids.(c')))
      done;
      half_sep.(c) <- (if !m = infinity then infinity else 0.5 *. !m)
    done
  in
  let assign_pruned () =
    refresh_half_sep ();
    let changed = ref false in
    for i = 0 to n - 1 do
      let p = points.(i) in
      let a = assignments.(i) in
      let guard = Float.max half_sep.(a) lower.(i) in
      if upper.(i) >= guard then begin
        upper.(i) <- sqrt (sqd p centroids.(a));
        if upper.(i) >= guard then begin
          (* Full scan, same comparison order and strict [<] as the
             naive assign: the lowest-index centroid wins ties. *)
          let best = ref 0
          and best_d = ref infinity
          and second = ref infinity in
          for c = 0 to k - 1 do
            let d = sqd p centroids.(c) in
            if d < !best_d then begin
              second := !best_d;
              best_d := d;
              best := c
            end
            else if d < !second then second := d
          done;
          if a <> !best then begin
            assignments.(i) <- !best;
            changed := true
          end;
          upper.(i) <- sqrt !best_d;
          lower.(i) <- sqrt !second
        end
      end
    done;
    !changed
  in
  let update () =
    let sums = Array.make_matrix k dim 0.0 in
    let counts = Array.make k 0 in
    Array.iteri
      (fun i p ->
        let c = assignments.(i) in
        counts.(c) <- counts.(c) + 1;
        for j = 0 to dim - 1 do
          sums.(c).(j) <- sums.(c).(j) +. p.(j)
        done)
      points;
    let moved = Array.make k 0.0 in
    for c = 0 to k - 1 do
      let next =
        if counts.(c) > 0 then begin
          for j = 0 to dim - 1 do
            sums.(c).(j) <- sums.(c).(j) /. float_of_int counts.(c)
          done;
          sums.(c)
        end
        else
          (* Re-seed an empty cluster on a random point (dedicated
             stream, see above). *)
          Array.copy points.(Rng.int reseed_rng n)
      in
      if pruned then moved.(c) <- sqrt (sqd centroids.(c) next);
      centroids.(c) <- next
    done;
    if pruned then begin
      (* Centroid-move-aware bound maintenance: a point's own centroid
         moved by [moved], any other centroid by at most the largest
         move. *)
      let max_move = Array.fold_left Float.max 0.0 moved in
      for i = 0 to n - 1 do
        upper.(i) <- upper.(i) +. moved.(assignments.(i));
        lower.(i) <- lower.(i) -. max_move
      done
    end
  in
  let assign = if pruned then assign_pruned else assign_naive in
  let iters = ref 0 in
  let converged = ref false in
  (* Every [update] is followed by an [assign] that re-checks its
     centroids: the loop never ends on an update nothing re-assigned. *)
  while (not !converged) && !iters < max_iters do
    let changed = assign () in
    incr iters;
    if not changed then converged := true else if !iters < max_iters then update ()
  done;
  let inertia =
    let acc = ref 0.0 in
    Array.iteri
      (fun i p -> acc := !acc +. sq_dist p centroids.(assignments.(i)))
      points;
    !acc
  in
  let labels = [ ("algo", if pruned then "pruned" else "naive") ] in
  Metrics.inc m_clusterings ~labels;
  Metrics.inc m_iterations ~labels ~by:(float_of_int !iters);
  Metrics.inc m_dist_evals ~labels ~by:(float_of_int !dist_evals);
  { k; assignments; centroids; inertia }

let cluster ~rng ~k points = run_lloyd ~pruned:true ~rng ~k points
let cluster_naive ~rng ~k points = run_lloyd ~pruned:false ~rng ~k points

let bic result points =
  let n = float_of_int (Array.length points) in
  let dim = float_of_int (Array.length points.(0)) in
  let k = float_of_int result.k in
  (* Spherical-Gaussian likelihood with a per-dimension variance
     estimate; the n*d factor keeps the fit term commensurate with the
     k*(d+1) parameter penalty at any dimensionality. *)
  let variance = Float.max (result.inertia /. (n *. dim)) 1e-9 in
  let log_likelihood = -0.5 *. n *. dim *. (log variance +. 1.0) in
  let params = k *. (dim +. 1.0) in
  log_likelihood -. (0.5 *. params *. log n)

(* The k-sweep runs in fixed-size chunks so the early-termination
   decision depends only on chunk boundaries, never on how many pool
   workers evaluated a chunk. *)
let chunk_size = 8

(* SimPoint's model-selection rule: score every k, then take the
   *smallest* k whose BIC reaches 90% of the observed score range — a
   plain argmax overfits, since BIC keeps creeping up with k.

   Each k clusters under its own child stream derived from one draw of
   the caller's generator, so the per-k work is order-independent and
   fans out across {!Elfie_util.Pool} with bit-identical results at any
   [jobs] setting. *)
let best ?jobs ~rng ~max_k points =
  let n = Array.length points in
  let kmax = max 1 (min max_k n) in
  let base = Rng.next64 rng in
  let eval k =
    let child =
      Rng.create
        (Int64.add base (Int64.mul (Int64.of_int k) 0x9E3779B97F4A7C15L))
    in
    let r = cluster ~rng:child ~k points in
    (r, bic r points)
  in
  let candidates = ref [] (* reversed *) in
  let bmax = ref neg_infinity and bmin = ref infinity in
  let next_k = ref 1 in
  let stop = ref false in
  while (not !stop) && !next_k <= kmax do
    let count = min chunk_size (kmax - !next_k + 1) in
    let ks = List.init count (fun i -> !next_k + i) in
    next_k := !next_k + count;
    let evaluated = Elfie_util.Pool.map ?jobs eval ks in
    let old_bmax = !bmax and old_bmin = !bmin in
    List.iter
      (fun (_, s) ->
        bmax := Float.max !bmax s;
        bmin := Float.min !bmin s)
      evaluated;
    candidates := List.rev_append evaluated !candidates;
    (* BIC-plateau early termination: the 90% threshold depends only on
       the score range, so once a whole chunk leaves the range untouched
       (treat it as converged) and some k already qualifies, later —
       larger — k can no longer become the smallest qualifying choice. *)
    if !next_k <= kmax && old_bmax = !bmax && old_bmin = !bmin then begin
      let threshold = !bmin +. (0.9 *. (!bmax -. !bmin)) in
      if List.exists (fun (_, s) -> s >= threshold) !candidates then
        stop := true
    end
  done;
  let candidates = List.rev !candidates in
  let threshold = !bmin +. (0.9 *. (!bmax -. !bmin)) in
  match List.find_opt (fun (_, s) -> s >= threshold) candidates with
  | Some (r, _) -> r
  | None -> fst (List.hd candidates)
