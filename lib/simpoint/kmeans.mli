(** k-means clustering with k-means++ seeding and BIC model selection —
    the SimPoint phase-classification core.

    The assign step uses Hamerly-style upper/lower distance bounds with
    centroid-move-aware maintenance: a point whose current centroid is
    provably the unique nearest (both bound tests are strict) skips the
    k-way distance scan. Pruning is an implementation detail, not a
    semantic: {!cluster} is bit-identical to the naive full-scan
    reference {!cluster_naive} — assignments, centroids, inertia and RNG
    consumption — including on exact-tie inputs, where strictness forces
    the full scan and its lowest-index tie-break. *)

type result = {
  k : int;
  assignments : int array;  (** cluster index per point *)
  centroids : float array array;
  inertia : float;  (** sum of squared distances to assigned centroids *)
}

(** [cluster ~rng ~k points] runs Lloyd's algorithm (bound-pruned assign)
    on row-major points. Empty clusters re-seed on a random point drawn
    from a dedicated child stream of [rng], so reseed count never shifts
    the caller-visible stream. Raises [Invalid_argument] on empty input
    or [k < 1]. *)
val cluster : rng:Elfie_util.Rng.t -> k:int -> float array array -> result

(** The unpruned full-scan reference implementation; bit-identical to
    {!cluster} on every input. *)
val cluster_naive :
  rng:Elfie_util.Rng.t -> k:int -> float array array -> result

(** [best ~rng ~max_k points] tries k = 1 .. max_k and picks the
    smallest k whose BIC score reaches 90% of the observed range —
    SimPoint's maxK model-selection rule. Each k clusters under its own
    RNG stream derived from one draw of [rng] and the sweep fans out
    across {!Elfie_util.Pool} ([jobs] defaults to the pool default), in
    fixed-size chunks with BIC-plateau early termination — results are
    bit-identical at any [jobs] value. *)
val best :
  ?jobs:int ->
  rng:Elfie_util.Rng.t ->
  max_k:int ->
  float array array ->
  result

(** Bayesian information criterion of a clustering (higher is better). *)
val bic : result -> float array array -> float

(** Squared Euclidean distance between equal-length vectors. *)
val sq_dist : float array -> float array -> float
