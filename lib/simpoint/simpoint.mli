(** SimPoint region selection over BBV profiles.

    Slices' sparse basic-block vectors are normalised, randomly
    projected to a low dimension, and clustered with k-means (BIC model
    selection up to [max_k]). Each cluster yields a representative slice
    (the one nearest the centroid) weighted by cluster population, plus
    ranked {e alternates} — the second/third-best representatives the
    paper uses to recover coverage when an ELFie fails to re-execute. *)

type params = {
  slice_size : int64;
  warmup : int64;  (** instructions of warmup preceding each slice *)
  max_k : int;
  dims : int;  (** random-projection dimensionality (SimPoint uses 15) *)
  seed : int64;
}

val default_params : params

(** One selected simulation region: the representative slice plus its
    warmup prefix. *)
type region = {
  cluster : int;
  slice_index : int;
  rank : int;  (** 0 = representative, 1+ = alternates *)
  weight : float;  (** fraction of all slices in this cluster *)
  start : int64;  (** region start, in program instructions *)
  length : int64;  (** warmup + slice instructions *)
  warmup_actual : int64;
      (** warmup actually available (clipped at program start) *)
}

type selection = {
  k : int;
  regions : region list;  (** rank-0 region per cluster, by cluster id *)
  alternates : region list array;
      (** per cluster, regions ranked by distance (rank 0 first) *)
  num_slices : int;
  total_instructions : int64;
  params : params;
}

(** Random-sign projection of a sparse BBV to [dims] dimensions,
    normalised by slice length. The projection is applied incrementally
    over the sparse (block, count) pairs — no dense intermediate. *)
val project : dims:int -> Elfie_pin.Bbv.slice -> float array

(** Project every slice of a profile, sharing one memoised sign row per
    distinct block across slices. Bit-identical to mapping {!project},
    at one row initialisation per block for the whole profile. *)
val project_profile : dims:int -> Elfie_pin.Bbv.profile -> float array array

(** [jobs] bounds the clustering fan-out (see {!Kmeans.best}); results
    are identical at any value. *)
val select : ?jobs:int -> ?params:params -> Elfie_pin.Bbv.profile -> selection

(** Weighted-sum projection of per-region metric values to a
    whole-program estimate: [predict sel f] computes
    [sum_i weight_i * f region_i]. *)
val predict : selection -> (region -> float) -> float

val pp_selection : Format.formatter -> selection -> unit
