type params = {
  slice_size : int64;
  warmup : int64;
  max_k : int;
  dims : int;
  seed : int64;
}

(* Scaled from the paper's 200 M slice / 800 M warmup by ~1/4000, keeping
   the 1:4 ratio; slices must stay long relative to working-set traversal
   transients or region measurements are dominated by cold-start noise. *)
let default_params =
  { slice_size = 50_000L; warmup = 200_000L; max_k = 50; dims = 15; seed = 97L }

type region = {
  cluster : int;
  slice_index : int;
  rank : int;
  weight : float;
  start : int64;
  length : int64;
  warmup_actual : int64;
}

type selection = {
  k : int;
  regions : region list;
  alternates : region list array;
  num_slices : int;
  total_instructions : int64;
  params : params;
}

(* Deterministic random sign for (block, dimension): the projection matrix
   never needs materialising. *)
let sign block dim =
  let h = Elfie_util.Rng.create (Int64.add (Int64.mul block 1099511628211L) (Int64.of_int dim)) in
  if Elfie_util.Rng.bool h then 1.0 else -1.0

(* Memoised sign rows: one [dims]-length row per distinct block, shared
   across every slice of a profile. Same values as calling [sign] per
   element, at one row initialisation per block instead of one fresh
   generator per (block, dimension) per slice — projection cost scales
   with the vectors' nnz, not dims x blocks x slices. *)
let make_signs ~dims =
  let memo : (int64, float array) Hashtbl.t = Hashtbl.create 1024 in
  fun block ->
    match Hashtbl.find_opt memo block with
    | Some row -> row
    | None ->
        let row = Array.init dims (sign block) in
        Hashtbl.add memo block row;
        row

(* The projection stays incremental over the sparse (block, count) pairs:
   each pair adds its normalised count into the [dims] accumulators, and
   no dense block-space intermediate ever exists. *)
let project_sparse signs ~dims (slice : Elfie_pin.Bbv.slice) =
  let v = Array.make dims 0.0 in
  let total = Float.max 1.0 (Int64.to_float slice.instructions) in
  Array.iter
    (fun (block, count) ->
      let c = float_of_int count /. total in
      let row = signs block in
      for d = 0 to dims - 1 do
        v.(d) <- v.(d) +. (c *. row.(d))
      done)
    slice.vector;
  v

let project ~dims slice = project_sparse (make_signs ~dims) ~dims slice

let project_profile ~dims (profile : Elfie_pin.Bbv.profile) =
  let signs = make_signs ~dims in
  Array.of_list (List.map (project_sparse signs ~dims) profile.slices)

let region_of_slice params (profile : Elfie_pin.Bbv.profile) ~cluster ~rank idx =
  let slice = List.nth profile.slices idx in
  let slice_start = Int64.mul (Int64.of_int idx) params.slice_size in
  let warmup_actual = Int64.min params.warmup slice_start in
  {
    cluster;
    slice_index = idx;
    rank;
    weight = 0.0;
    start = Int64.sub slice_start warmup_actual;
    length = Int64.add warmup_actual slice.Elfie_pin.Bbv.instructions;
    warmup_actual;
  }

let select ?jobs ?(params = default_params) (profile : Elfie_pin.Bbv.profile) =
  let module Trace = Elfie_obs.Trace in
  let slices = Array.of_list profile.slices in
  if Array.length slices = 0 then invalid_arg "Simpoint.select: empty profile";
  let points =
    Trace.with_span "simpoint.project"
      ~attrs:
        [
          ("slices", Trace.I (Int64.of_int (Array.length slices)));
          ("dims", Trace.I (Int64.of_int params.dims));
        ]
      (fun _ -> project_profile ~dims:params.dims profile)
  in
  let rng = Elfie_util.Rng.create params.seed in
  let result =
    Trace.with_span "simpoint.cluster" (fun sp ->
        let r = Kmeans.best ?jobs ~rng ~max_k:params.max_k points in
        Trace.add_attr sp "k" (Trace.I (Int64.of_int r.Kmeans.k));
        r)
  in
  let n = Array.length slices in
  let cluster_sizes = Array.make result.k 0 in
  Array.iter (fun c -> cluster_sizes.(c) <- cluster_sizes.(c) + 1) result.assignments;
  (* Representative ranking. Three concerns, in order:
     - slices too early in the program cannot be preceded by a full
       warmup region, so their ELFies measure with cold state;
     - among members whose vectors are essentially equidistant from the
       centroid (bucketed distance), prefer the temporally central one:
       with scaled-down slice sizes, phase-boundary and first-traversal
       slices are microarchitecturally atypical even when their BBVs are
       not, and the cluster's temporal middle is its steady state;
     - finally, the exact distance. *)
  let warmup_slices =
    Int64.to_int (Int64.div params.warmup (max 1L params.slice_size))
  in
  let alternates =
    Array.init result.k (fun c ->
        let members =
          List.filter (fun i -> result.assignments.(i) = c) (List.init n Fun.id)
        in
        let median =
          let sorted = List.sort compare members in
          List.nth sorted (List.length sorted / 2)
        in
        let dist i = Kmeans.sq_dist points.(i) result.centroids.(c) in
        let key i =
          ( (if i < warmup_slices then 1 else 0),
            Float.round (dist i *. 1e3),
            abs (i - median),
            dist i )
        in
        let ranked = List.sort (fun a b -> compare (key a) (key b)) members in
        let weight = float_of_int cluster_sizes.(c) /. float_of_int n in
        List.mapi
          (fun rank idx ->
            { (region_of_slice params profile ~cluster:c ~rank idx) with weight })
          ranked)
  in
  let regions =
    Array.to_list alternates
    |> List.filter_map (function [] -> None | r :: _ -> Some r)
  in
  {
    k = result.k;
    regions;
    alternates;
    num_slices = n;
    total_instructions = profile.total_instructions;
    params;
  }

let predict sel f =
  List.fold_left (fun acc r -> acc +. (r.weight *. f r)) 0.0 sel.regions

let pp_selection fmt sel =
  Format.fprintf fmt "@[<v>simpoint: %d slices -> %d clusters (%Ld instructions)@,"
    sel.num_slices sel.k sel.total_instructions;
  List.iter
    (fun r ->
      Format.fprintf fmt "  cluster %d: slice %d, weight %.3f, region [%Ld, +%Ld)@,"
        r.cluster r.slice_index r.weight r.start r.length)
    sel.regions;
  Format.fprintf fmt "@]"
