open Elfie_isa
open Elfie_machine

type config = {
  stack_randomization : bool;
  kernel_cost : bool;
  seed : int64;
  initial_cwd : string;
}

let default_config =
  { stack_randomization = true; kernel_cost = true; seed = 1L; initial_cwd = "/" }

type fd_target = Console | File of { path : string; mutable pos : int }

type syscall_record = {
  rec_tid : int;
  rec_nr : int;
  rec_args : int64 array;
  rec_path : string option;
  rec_ret : int64;
  rec_writes : (int64 * string) list;
  rec_reexec : bool;
}

type t = {
  cfg : config;
  fs : Fs.t;
  fds : (int, fd_target) Hashtbl.t;
  mutable cwd : string;
  mutable brk : int64;
  mutable next_mmap : int64;
  stdout_buf : Buffer.t;
  rng : Elfie_util.Rng.t;
  stack_offset : int64;
  mutable syscall_count : int;
  histogram : (int, int) Hashtbl.t;
  mutable recorder : (syscall_record -> unit) option;
}

let create ?(config = default_config) fs =
  let rng = Elfie_util.Rng.create config.seed in
  let stack_offset =
    if config.stack_randomization then
      Int64.of_int (Elfie_util.Rng.int rng 256 * Addr_space.page_size)
    else 0L
  in
  let fds = Hashtbl.create 16 in
  Hashtbl.replace fds 0 Console;
  Hashtbl.replace fds 1 Console;
  Hashtbl.replace fds 2 Console;
  {
    cfg = config;
    fs;
    fds;
    cwd = config.initial_cwd;
    brk = 0L;
    next_mmap = 0x7f00_0000_0000L;
    stdout_buf = Buffer.create 256;
    rng;
    stack_offset;
    syscall_count = 0;
    histogram = Hashtbl.create 16;
    recorder = None;
  }

let config t = t.cfg
let fs t = t.fs
let cwd t = t.cwd
let set_cwd t d = t.cwd <- d
let stdout_contents t = Buffer.contents t.stdout_buf
let brk t = t.brk
let force_brk t v = t.brk <- v
let open_fd_count t = Hashtbl.length t.fds

type fd_state = Fd_console | Fd_file of { path : string; pos : int }

let fd_table t =
  Hashtbl.fold
    (fun fd target acc ->
      let state =
        match target with
        | Console -> Fd_console
        | File f -> Fd_file { path = f.path; pos = f.pos }
      in
      (fd, state) :: acc)
    t.fds []
  |> List.sort compare

let set_fd t fd state =
  Hashtbl.replace t.fds fd
    (match state with
    | Fd_console -> Console
    | Fd_file { path; pos } -> File { path; pos })
let syscall_count t = t.syscall_count

let syscall_histogram t =
  Hashtbl.fold (fun nr n acc -> (Abi.syscall_name nr, n) :: acc) t.histogram []
  |> List.sort compare

let set_recorder t r = t.recorder <- r
let stack_random_offset t = t.stack_offset

(* Independent clone for machine forks: the filesystem, FD table (fresh
   [File] records — positions are mutable), output buffer, heap/mmap
   cursors, syscall RNG (at its exact stream position) and tallies are
   all duplicated. The stack offset is preserved verbatim rather than
   re-drawn — the forked machine's stack is already laid out. The
   recorder is not carried over; re-attach one if the fork is logged.
   The clone is not yet installed on any machine: call {!install} with
   the forked machine. *)
let fork t =
  let fds = Hashtbl.create (max 16 (Hashtbl.length t.fds)) in
  Hashtbl.iter
    (fun fd target ->
      Hashtbl.replace fds fd
        (match target with
        | Console -> Console
        | File f -> File { path = f.path; pos = f.pos }))
    t.fds;
  let stdout_buf = Buffer.create (max 256 (Buffer.length t.stdout_buf)) in
  Buffer.add_buffer stdout_buf t.stdout_buf;
  {
    cfg = t.cfg;
    fs = Fs.copy t.fs;
    fds;
    cwd = t.cwd;
    brk = t.brk;
    next_mmap = t.next_mmap;
    stdout_buf;
    rng = Elfie_util.Rng.copy t.rng;
    stack_offset = t.stack_offset;
    syscall_count = t.syscall_count;
    histogram = Hashtbl.copy t.histogram;
    recorder = None;
  }

let preopen_fd t ~fd ~path =
  if Fs.exists t.fs path then begin
    Hashtbl.replace t.fds fd (File { path; pos = 0 });
    true
  end
  else false

let lowest_free_fd t =
  let rec go fd = if Hashtbl.mem t.fds fd then go (fd + 1) else fd in
  go 0

let err e = Int64.of_int (-e)

let read_cstring m addr =
  let buf = Buffer.create 32 in
  let rec go a n =
    if n > 4096 then Buffer.contents buf
    else
      let b = Int64.to_int (Addr_space.read (Machine.mem m) a 1) in
      if b = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr b);
        go (Int64.add a 1L) (n + 1)
      end
  in
  go addr 0

(* Clock: 3 GHz over the wall-clock proxy, starting at a fixed epoch. *)
let epoch = 1_600_000_000L
let cycles_per_sec = 3_000_000_000L

let now_parts m =
  let c = Machine.elapsed_cycles m in
  let sec = Int64.add epoch (Int64.div c cycles_per_sec) in
  let usec = Int64.div (Int64.rem c cycles_per_sec) 3_000L in
  (sec, usec)

let handle t m tid =
  let th = Machine.thread m tid in
  let ctx = th.ctx in
  let get r = Context.get ctx r in
  let nr = Int64.to_int (get Reg.RAX) in
  let a0 = get Reg.RDI
  and a1 = get Reg.RSI
  and a2 = get Reg.RDX
  and _a3 = get Reg.R10 in
  let args = [| a0; a1; a2; _a3; get Reg.R8; get Reg.R9 |] in
  let path_arg = ref None in
  t.syscall_count <- t.syscall_count + 1;
  Hashtbl.replace t.histogram nr
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.histogram nr));
  let writes = ref [] in
  let moved_bytes = ref 0 in
  let kwrite addr s =
    Addr_space.store (Machine.mem m) addr (Bytes.of_string s);
    writes := (addr, s) :: !writes;
    moved_bytes := !moved_bytes + String.length s
  in
  let kwrite_u64 addr v =
    let w = Elfie_util.Byteio.Writer.create ~capacity:8 () in
    Elfie_util.Byteio.Writer.u64 w v;
    kwrite addr (Bytes.to_string (Elfie_util.Byteio.Writer.contents w))
  in
  let ret =
    match nr with
    | _ when nr = Abi.sys_read -> (
        let fd = Int64.to_int a0 and count = Int64.to_int a2 in
        match Hashtbl.find_opt t.fds fd with
        | None -> err Abi.ebadf
        | Some Console -> 0L (* EOF on stdin *)
        | Some (File f) -> (
            match Fs.read_at t.fs f.path ~pos:f.pos ~len:count with
            | None -> err Abi.ebadf
            | Some data ->
                f.pos <- f.pos + String.length data;
                if String.length data > 0 then kwrite a1 data;
                Int64.of_int (String.length data)))
    | _ when nr = Abi.sys_write -> (
        let fd = Int64.to_int a0 and count = Int64.to_int a2 in
        match Hashtbl.find_opt t.fds fd with
        | None -> err Abi.ebadf
        | Some target -> (
            match Addr_space.read_bytes (Machine.mem m) a1 count with
            | exception Addr_space.Fault _ -> err Abi.einval
            | data ->
                moved_bytes := !moved_bytes + count;
                (match target with
                | Console ->
                    Buffer.add_bytes t.stdout_buf data;
                    Int64.of_int count
                | File f -> (
                    match Fs.write_at t.fs f.path ~pos:f.pos (Bytes.to_string data) with
                    | None -> err Abi.ebadf
                    | Some n ->
                        f.pos <- f.pos + n;
                        Int64.of_int n))))
    | _ when nr = Abi.sys_open ->
        let path = Fs.normalize ~cwd:t.cwd (read_cstring m a0) in
        path_arg := Some path;
        let flags = Int64.to_int a1 in
        let exists = Fs.exists t.fs path in
        if (not exists) && flags land Abi.o_creat = 0 then err Abi.enoent
        else begin
          if (not exists) || flags land Abi.o_trunc <> 0 then
            Fs.add_file t.fs ~path "";
          let fd = lowest_free_fd t in
          Hashtbl.replace t.fds fd (File { path; pos = 0 });
          Int64.of_int fd
        end
    | _ when nr = Abi.sys_close ->
        let fd = Int64.to_int a0 in
        if Hashtbl.mem t.fds fd then begin
          Hashtbl.remove t.fds fd;
          0L
        end
        else err Abi.ebadf
    | _ when nr = Abi.sys_lseek -> (
        let fd = Int64.to_int a0 in
        match Hashtbl.find_opt t.fds fd with
        | Some (File f) ->
            let size =
              Option.value ~default:0 (Fs.file_size t.fs f.path)
            in
            let base =
              let whence = Int64.to_int a2 in
              if whence = Abi.seek_set then 0
              else if whence = Abi.seek_cur then f.pos
              else if whence = Abi.seek_end then size
              else -1
            in
            if base < 0 then err Abi.einval
            else begin
              let pos = base + Int64.to_int a1 in
              if pos < 0 then err Abi.einval
              else begin
                f.pos <- pos;
                Int64.of_int pos
              end
            end
        | Some Console -> err Abi.einval
        | None -> err Abi.ebadf)
    | _ when nr = Abi.sys_mmap ->
        let len = Int64.to_int a1 in
        if len <= 0 then err Abi.einval
        else
          let fixed = Int64.to_int _a3 land Abi.map_fixed <> 0 in
          let addr =
            if fixed || a0 <> 0L then a0
            else begin
              let a = t.next_mmap in
              let pages = (len + Addr_space.page_size - 1) / Addr_space.page_size in
              t.next_mmap <-
                Int64.add t.next_mmap
                  (Int64.of_int ((pages + 1) * Addr_space.page_size));
              a
            end
          in
          Addr_space.map (Machine.mem m) ~addr ~len;
          addr
    | _ when nr = Abi.sys_munmap ->
        Addr_space.unmap (Machine.mem m) ~addr:a0 ~len:(Int64.to_int a1);
        0L
    | _ when nr = Abi.sys_mprotect -> 0L
    | _ when nr = Abi.sys_brk ->
        if a0 = 0L then t.brk
        else begin
          if Int64.unsigned_compare a0 t.brk > 0 then
            Addr_space.map (Machine.mem m) ~addr:t.brk
              ~len:(Int64.to_int (Int64.sub a0 t.brk));
          t.brk <- a0;
          t.brk
        end
    | _ when nr = Abi.sys_dup -> (
        let fd = Int64.to_int a0 in
        match Hashtbl.find_opt t.fds fd with
        | None -> err Abi.ebadf
        | Some target ->
            let nfd = lowest_free_fd t in
            Hashtbl.replace t.fds nfd target;
            Int64.of_int nfd)
    | _ when nr = Abi.sys_dup2 -> (
        let fd = Int64.to_int a0 and nfd = Int64.to_int a1 in
        match Hashtbl.find_opt t.fds fd with
        | None -> err Abi.ebadf
        | Some target ->
            Hashtbl.replace t.fds nfd target;
            Int64.of_int nfd)
    | _ when nr = Abi.sys_getpid -> 1000L
    | _ when nr = Abi.sys_gettid -> Int64.of_int tid
    | _ when nr = Abi.sys_clone ->
        let child = Context.copy ctx in
        child.Context.rip <- a0;
        Context.set child Reg.RSP a1;
        Context.set child Reg.RAX 0L;
        let child_tid = Machine.add_thread m child in
        Int64.of_int child_tid
    | _ when nr = Abi.sys_exit ->
        Machine.exit_thread m tid ~status:(Int64.to_int a0);
        0L
    | _ when nr = Abi.sys_exit_group ->
        Machine.exit_all m ~status:(Int64.to_int a0);
        0L
    | _ when nr = Abi.sys_gettimeofday ->
        let sec, usec = now_parts m in
        if a0 <> 0L then begin
          kwrite_u64 a0 sec;
          kwrite_u64 (Int64.add a0 8L) usec
        end;
        0L
    | _ when nr = Abi.sys_time ->
        let sec, _ = now_parts m in
        if a0 <> 0L then kwrite_u64 a0 sec;
        sec
    | _ when nr = Abi.sys_arch_prctl ->
        let code = Int64.to_int a0 in
        if code = Abi.arch_set_fs then begin
          ctx.Context.fs_base <- a1;
          0L
        end
        else if code = Abi.arch_set_gs then begin
          ctx.Context.gs_base <- a1;
          0L
        end
        else err Abi.einval
    | _ when nr = Abi.sys_getrandom ->
        let len = Int64.to_int a1 in
        let buf = Bytes.create len in
        for i = 0 to len - 1 do
          Bytes.set buf i (Char.chr (Elfie_util.Rng.int t.rng 256))
        done;
        kwrite a0 (Bytes.to_string buf);
        Int64.of_int len
    | _ when nr = Abi.sys_vperf_arm ->
        Machine.arm_counter m tid ~target:(Int64.add th.retired a0);
        0L
    | _ when nr = Abi.sys_vperf_mark ->
        Machine.arm_mark m tid ~target:(Int64.add th.retired a0);
        0L
    | _ when nr = Abi.sys_vperf_read -> th.retired
    | _ when nr = Abi.sys_vperf_cycles -> th.cycles
    | _ when nr = Abi.sys_thread_alive -> (
        match Machine.thread m (Int64.to_int a0) with
        | th' -> if th'.state = Runnable then 1L else 0L
        | exception Invalid_argument _ -> 0L)
    | _ -> err Abi.einval
  in
  Context.set ctx Reg.RAX ret;
  if t.cfg.kernel_cost then begin
    let instructions = Abi.ring0_instructions nr ~bytes:!moved_bytes in
    Machine.charge_ring0 m tid ~instructions ~cycles:instructions
  end;
  match t.recorder with
  | Some f ->
      f
        {
          rec_tid = tid;
          rec_nr = nr;
          rec_args = args;
          rec_path = !path_arg;
          rec_ret = ret;
          rec_writes = List.rev !writes;
          rec_reexec = Abi.reexecute_on_replay nr;
        }
  | None -> ()

let install t m = Machine.set_syscall_handler m (fun m tid -> handle t m tid)
