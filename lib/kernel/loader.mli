(** The system ELF loader.

    Mirrors the Linux semantics the paper's stack-collision analysis
    depends on (Section II-B3):

    + every allocatable segment of the image is mapped first;
    + the initial stack is placed just under a fixed ceiling, lowered by
      a per-process random offset (stack randomization);
    + the loader reserves stack pages downward {e until it meets an
      already-mapped page}; if the space obtained cannot even hold the
      process arguments and environment, the process is killed before
      any code runs ({!Stack_collision}).

    An ELFie whose checkpointed stack pages were emitted as allocatable
    sections can therefore die at load time; marking them
    non-allocatable (the pinball2elf fix) keeps the loader happy. *)

exception Exec_failed of string

(** The fatal stack-collision case, raised as its own (structured)
    exception so supervision layers can classify it without matching on
    message text: only [reserved] of the [needed] minimum pages could be
    reserved below the randomized [stack_top]. *)
exception
  Stack_collision of { reserved : int; needed : int; stack_top : int64 }

type layout = {
  entry : int64;
  initial_rsp : int64;
  stack_top : int64;
  stack_pages_reserved : int;
}

(** Full desired stack size, in pages. *)
val stack_pages : int

(** [load kernel machine image ~argv ~env] maps the image, builds the
    initial stack (argc/argv/envp/auxv), sets the program break, and
    creates thread 0 at the entry point. Returns the thread id and the
    chosen layout.

    Raises {!Exec_failed} on a non-executable image and
    {!Stack_collision} on a fatal stack collision. *)
val load :
  Vkernel.t ->
  Elfie_machine.Machine.t ->
  Elfie_elf.Image.t ->
  argv:string list ->
  env:string list ->
  int * layout
