open Elfie_machine

exception Exec_failed of string

exception
  Stack_collision of { reserved : int; needed : int; stack_top : int64 }

type layout = {
  entry : int64;
  initial_rsp : int64;
  stack_top : int64;
  stack_pages_reserved : int;
}

let stack_pages = 64 (* 256 KiB *)
let stack_ceiling = 0x7fff_ffff_f000L

(* Pages needed just to pass argc/argv/envp/auxv plus a working margin;
   below this the process cannot start. *)
let min_stack_pages = 16

let page = Int64.of_int Addr_space.page_size

let auxv_entries ~entry ~random_ptr =
  [ (6L, page); (9L, entry); (25L, random_ptr); (0L, 0L) ]

let build_stack mem ~rsp_top ~entry ~argv ~env =
  (* Strings live at the very top; pointer arrays and argc below them. *)
  let cursor = ref rsp_top in
  let push_string s =
    let len = String.length s + 1 in
    cursor := Int64.sub !cursor (Int64.of_int len);
    Addr_space.write_bytes mem !cursor (Bytes.of_string (s ^ "\000"));
    !cursor
  in
  let argv_ptrs = List.map push_string argv in
  let env_ptrs = List.map push_string env in
  cursor := Int64.sub !cursor 16L;
  let random_ptr = !cursor in
  Addr_space.write_bytes mem random_ptr (Bytes.make 16 '\042');
  (* Align, then lay out auxv / envp / argv / argc bottom-up. *)
  let auxv = auxv_entries ~entry ~random_ptr in
  let words =
    [ Int64.of_int (List.length argv) ]
    @ argv_ptrs @ [ 0L ] @ env_ptrs @ [ 0L ]
    @ List.concat_map (fun (k, v) -> [ k; v ]) auxv
  in
  let total = 8 * List.length words in
  let base = Int64.logand (Int64.sub !cursor (Int64.of_int total)) (Int64.lognot 15L) in
  List.iteri
    (fun i w -> Addr_space.write mem (Int64.add base (Int64.of_int (8 * i))) 8 w)
    words;
  base

let load kernel machine image ~argv ~env =
  if not image.Elfie_elf.Image.exec then
    raise (Exec_failed "not an executable image");
  let mem = Machine.mem machine in
  (* 1. Map allocatable segments. *)
  let max_end = ref 0x40_0000L in
  List.iter
    (fun (vaddr, data, _flags) ->
      Addr_space.store mem vaddr data;
      let fin = Int64.add vaddr (Int64.of_int (Bytes.length data)) in
      if Int64.unsigned_compare fin !max_end > 0 && Int64.unsigned_compare fin 0x7000_0000_0000L < 0
      then max_end := fin)
    (Elfie_elf.Image.loadable image);
  (* 2. Program break starts just past the highest low-half segment. *)
  let brk0 = Int64.mul (Int64.div (Int64.add !max_end (Int64.sub page 1L)) page) page in
  Vkernel.force_brk kernel brk0;
  (* 3. Reserve the stack downward from the randomized top. *)
  let stack_top = Int64.sub stack_ceiling (Vkernel.stack_random_offset kernel) in
  let reserved = ref 0 in
  (let continue_ = ref true in
   while !continue_ && !reserved < stack_pages do
     let addr = Int64.sub stack_top (Int64.of_int ((!reserved + 1) * Addr_space.page_size)) in
     if Addr_space.is_mapped mem addr then continue_ := false
     else begin
       Addr_space.map mem ~addr ~len:Addr_space.page_size;
       incr reserved
     end
   done);
  if !reserved < min_stack_pages then
    raise
      (Stack_collision
         { reserved = !reserved; needed = min_stack_pages; stack_top });
  let entry = image.Elfie_elf.Image.entry in
  let initial_rsp = build_stack mem ~rsp_top:stack_top ~entry ~argv ~env in
  (* 4. Initial thread. *)
  let ctx = Context.create () in
  ctx.Context.rip <- entry;
  Context.set ctx Elfie_isa.Reg.RSP initial_rsp;
  let tid = Machine.add_thread machine ctx in
  (tid, { entry; initial_rsp; stack_top; stack_pages_reserved = !reserved })
