(** The Vkernel: per-process OS state and the system-call handler.

    One [Vkernel.t] backs one process (one {!Elfie_machine.Machine.t}).
    It owns the file-descriptor table, program break, virtual clock and
    standard-output capture, and installs itself as the machine's
    syscall handler.

    Two features exist specifically for the paper's pipeline:

    - a {e syscall recorder} lets the PinPlay-style logger capture each
      call's result and kernel-performed memory writes, which is what
      the replayer later injects;
    - per-syscall {e ring-0 cost accounting} (configurable) models the
      kernel instructions that full-system simulation sees and
      user-level simulation does not (Table IV). *)

type config = {
  stack_randomization : bool;
      (** randomize the initial stack base like Linux; the source of the
          stack-collision hazard of Section II-B3 *)
  kernel_cost : bool;  (** charge ring-0 instructions/cycles per syscall *)
  seed : int64;
  initial_cwd : string;
}

val default_config : config

type t

val create : ?config:config -> Fs.t -> t
val config : t -> config
val fs : t -> Fs.t

(** Install this kernel as the machine's syscall handler. *)
val install : t -> Elfie_machine.Machine.t -> unit

(** Independent clone for {!Elfie_machine.Machine.fork}ed machines:
    filesystem, FD table (including file positions), output buffer,
    heap/mmap cursors, syscall RNG stream position and tallies are all
    duplicated; the stack-randomization offset is preserved, not
    re-drawn. The clone has no recorder and is not installed anywhere —
    call {!install} with the forked machine. *)
val fork : t -> t

val cwd : t -> string
val set_cwd : t -> string -> unit

(** Everything the process wrote to stdout/stderr. *)
val stdout_contents : t -> string

(** Current program break. *)
val brk : t -> int64

(** Force the break (used when materialising a checkpointed process). *)
val force_brk : t -> int64 -> unit

(** Pre-open a file at a specific descriptor — the Vkernel half of the
    SYSSTATE [FD_n] mechanism. Returns [false] if the path is absent. *)
val preopen_fd : t -> fd:int -> path:string -> bool

(** Number of open descriptors (for tests). *)
val open_fd_count : t -> int

(** Descriptor-table introspection and reconstruction, used by
    whole-process checkpointing (the CRIU-style baseline). *)
type fd_state = Fd_console | Fd_file of { path : string; pos : int }

val fd_table : t -> (int * fd_state) list
val set_fd : t -> int -> fd_state -> unit

val syscall_count : t -> int

(** [(name, count)] histogram of syscalls handled so far. *)
val syscall_histogram : t -> (string * int) list

type syscall_record = {
  rec_tid : int;
  rec_nr : int;
  rec_args : int64 array;  (** the six argument registers *)
  rec_path : string option;  (** decoded path argument, for open(2) *)
  rec_ret : int64;
  rec_writes : (int64 * string) list;
      (** memory the kernel wrote (address, bytes), e.g. read(2) data *)
  rec_reexec : bool;  (** structural call: re-execute on replay *)
}

(** Install a recorder invoked after every handled syscall. *)
val set_recorder : t -> (syscall_record -> unit) option -> unit

(** The stack-randomization draw the loader uses; exposed so tests can
    pin it. *)
val stack_random_offset : t -> int64
