open Elfie_isa
open Elfie_machine
open Elfie_kernel

module Trace = Elfie_obs.Trace
module Metrics = Elfie_obs.Metrics

(* Shared across the simulator backends: each registers the same family
   (the metrics registry is get-or-create by name) and labels its own
   series with backend=<name>. *)
let m_sim_instructions =
  Metrics.counter "elfie_sim_instructions_total"
    ~help:"User instructions simulated, by backend"

let m_cache_miss_ratio =
  Metrics.gauge "elfie_sim_cache_miss_ratio"
    ~help:"Last-level cache misses per simulated user instruction of \
           the most recent run, by backend"

type mode = User_level | Full_system

type config = {
  dispatch_width : int;
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;
  dtlb_entries : int;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  tlb_miss_cycles : int;
  mispredict_cycles : int;
  kernel_cpi : float;
  kernel_lines_per_syscall : int;
  timer_interval_ins : int;
  timer_kernel_ins : int;
}

let skylake =
  {
    dispatch_width = 4;
    l1 = Cache.config ~size_bytes:32_768 ~ways:8 ~line_bytes:64;
    l2 = Cache.config ~size_bytes:1_048_576 ~ways:16 ~line_bytes:64;
    llc = Cache.config ~size_bytes:11_534_336 ~ways:11 ~line_bytes:64;
    dtlb_entries = 64;
    l1_miss_cycles = 10;
    l2_miss_cycles = 35;
    llc_miss_cycles = 170;
    tlb_miss_cycles = 30;
    mispredict_cycles = 16;
    kernel_cpi = 9.0;
    kernel_lines_per_syscall = 360;
    timer_interval_ins = 25_000;
    timer_kernel_ins = 400;
  }

type result = {
  user_instructions : int64;
  kernel_instructions : int64;
  runtime_cycles : int64;
  cpi : float;
  data_footprint_bytes : int64;
  dtlb_misses : int64;
  llc_misses : int64;
  syscalls : int64;
  completed : bool;
}

type model = {
  cfg : config;
  mode : mode;
  l1 : Cache.t;
  l2 : Cache.t;
  llc : Cache.t;
  dtlb : Cache.t;
  predictor : Bytes.t;
  rng : Elfie_util.Rng.t;
  mutable enabled : bool;
  mutable cycles : float;
  mutable user_ins : int64;
  mutable kernel_ins : int64;
  mutable syscalls : int64;
  mutable window_start_ins : int64;
  mutable window_start_cycles : float;
}

let predictor_entries = 4096

let fresh_model cfg mode ~enabled =
  {
    cfg;
    mode;
    l1 = Cache.create cfg.l1;
    l2 = Cache.create cfg.l2;
    llc = Cache.create cfg.llc;
    (* The DTLB is a fully-associative page-granular cache. *)
    dtlb =
      Cache.create
        (Cache.config
           ~size_bytes:(cfg.dtlb_entries * Addr_space.page_size)
           ~ways:cfg.dtlb_entries ~line_bytes:Addr_space.page_size);
    predictor = Bytes.make predictor_entries '\002';
    rng = Elfie_util.Rng.create 0x5ca1ab1eL;
    enabled;
    cycles = 0.0;
    user_ins = 0L;
    kernel_ins = 0L;
    syscalls = 0L;
    window_start_ins = 0L;
    window_start_cycles = 0.0;
  }

let cache_walk model addr =
  if Cache.access model.l1 addr then 0
  else if Cache.access model.l2 addr then model.cfg.l1_miss_cycles
  else if Cache.access model.llc addr then model.cfg.l2_miss_cycles
  else model.cfg.llc_miss_cycles

let mem_access model addr =
  let tlb_penalty =
    if Cache.access model.dtlb addr then 0 else model.cfg.tlb_miss_cycles
  in
  model.cycles <- model.cycles +. float_of_int (tlb_penalty + cache_walk model addr)

(* Kernel execution (full-system only): charge ring-0 instructions at
   the kernel's (stall-inclusive) CPI, walk kernel data through the
   cache hierarchy — evicting user lines and inflating the observed
   footprint — and flush the TLB. The kernel's own working set is small
   and hot (its stalls are folded into kernel_cpi), but its lines are
   distinct from the application's. *)
let kernel_work model kinstr =
  model.kernel_ins <- Int64.add model.kernel_ins (Int64.of_int kinstr);
  model.cycles <- model.cycles +. (float_of_int kinstr *. model.cfg.kernel_cpi);
  let lines = max 16 (kinstr / 4) in
  for _ = 1 to min lines model.cfg.kernel_lines_per_syscall do
    let addr =
      Int64.logor 0xffff_8800_0000_0000L
        (Int64.mul 64L (Int64.of_int (Elfie_util.Rng.int model.rng 2048)))
    in
    ignore (cache_walk model addr)
  done;
  Cache.flush model.dtlb

let branch model pc taken =
  let idx =
    abs (Int64.to_int (Int64.rem (Int64.shift_right_logical pc 1)
                         (Int64.of_int predictor_entries)))
  in
  let counter = Char.code (Bytes.get model.predictor idx) in
  let predicted = counter >= 2 in
  Bytes.set model.predictor idx
    (Char.chr (if taken then min 3 (counter + 1) else max 0 (counter - 1)));
  if predicted <> taken then
    model.cycles <- model.cycles +. float_of_int model.cfg.mispredict_cycles

let simulate ?(mode = User_level) ?(from_marker = true) ?measure_after
    ?(seed = 13L) ?(fs_init = fun (_ : Fs.t) -> ()) ?(cwd = "/")
    ?(max_ins = 100_000_000L) cfg image =
  let machine =
    Machine.create (Machine.Free { seed; quantum_min = 50; quantum_max = 200 })
  in
  let fs = Fs.create () in
  fs_init fs;
  let kernel =
    Vkernel.create
      ~config:{ Vkernel.default_config with seed; initial_cwd = cwd; kernel_cost = false }
      fs
  in
  Vkernel.install kernel machine;
  let sp =
    Trace.begin_span "coresim.simulate"
      ~attrs:
        [
          ( "mode",
            Trace.S (match mode with User_level -> "user" | Full_system -> "full") );
        ]
  in
  let _ = Loader.load kernel machine image ~argv:[ "elfie" ] ~env:[] in
  Elfie_pin.Tools.attach_global_profile machine;
  let model = fresh_model cfg mode ~enabled:(not from_marker) in
  let on_ins tid _pc ins =
    if model.enabled then begin
      model.user_ins <- Int64.add model.user_ins 1L;
      model.cycles <- model.cycles +. (1.0 /. float_of_int model.cfg.dispatch_width);
      (match measure_after with
      | Some w when model.user_ins = w ->
          model.window_start_ins <- model.user_ins;
          model.window_start_cycles <- model.cycles
      | Some _ | None -> ());
      (match model.mode with
      | Full_system
        when Int64.rem model.user_ins (Int64.of_int cfg.timer_interval_ins) = 0L ->
          kernel_work model cfg.timer_kernel_ins
      | Full_system | User_level -> ());
      match Insn.classify ins with
      | Insn.K_syscall ->
          model.syscalls <- Int64.add model.syscalls 1L;
          (match model.mode with
          | User_level -> ()
          | Full_system ->
              let nr =
                Int64.to_int (Context.get (Machine.thread machine tid).Machine.ctx Reg.RAX)
              in
              kernel_work model (Abi.ring0_instructions nr ~bytes:64))
      | K_alu | K_load | K_store | K_branch | K_call | K_vector | K_other -> ()
    end
  in
  let tool =
    {
      (Elfie_pin.Pintool.empty ~name:"coresim") with
      on_ins = Some on_ins;
      on_mem_read = Some (fun _ addr _ -> if model.enabled then mem_access model addr);
      on_mem_write = Some (fun _ addr _ -> if model.enabled then mem_access model addr);
      on_branch = Some (fun _ pc _ taken -> if model.enabled then branch model pc taken);
      on_marker = Some (fun _ _ -> model.enabled <- true);
    }
  in
  let detach = Elfie_pin.Pintool.attach machine [ tool ] in
  Machine.run ~max_ins machine;
  detach ();
  let completed =
    List.for_all
      (fun th -> th.Machine.state <> Machine.Runnable)
      (Machine.threads machine)
  in
  let r =
    {
      user_instructions = model.user_ins;
      kernel_instructions = model.kernel_ins;
      runtime_cycles = Int64.of_float (Float.round model.cycles);
      cpi =
        (let ins = Int64.sub model.user_ins model.window_start_ins in
         let cyc = model.cycles -. model.window_start_cycles in
         if ins <= 0L then 0.0 else cyc /. Int64.to_float ins);
      data_footprint_bytes = Int64.of_int (Cache.footprint_lines model.llc * 64);
      dtlb_misses = Int64.of_int (Cache.misses model.dtlb);
      llc_misses = Int64.of_int (Cache.misses model.llc);
      syscalls = model.syscalls;
      completed;
    }
  in
  let backend = [ ("backend", "coresim") ] in
  Metrics.inc m_sim_instructions ~labels:backend
    ~by:(Int64.to_float r.user_instructions);
  Metrics.set m_cache_miss_ratio ~labels:backend
    (Int64.to_float r.llc_misses
    /. Float.max 1.0 (Int64.to_float r.user_instructions));
  Trace.end_span sp
    ~attrs:
      [
        ("instructions", Trace.I r.user_instructions);
        ("cpi", Trace.F r.cpi);
        ("completed", Trace.B r.completed);
      ];
  r
