(** Vcoresim: a detailed single-socket simulator with user-level and
    full-system front-ends.

    Stands in for CoreSim, the Intel-internal cycle-accurate simulator
    of Section IV-C, which runs either with SDE (user-space instructions
    only) or with Simics (full system). Because ELFies are ordinary
    executables, the same image runs on both front-ends and the OS
    interference question of Table IV becomes directly measurable:

    - [User_level] simulates application instructions only; system
      calls complete instantly and leave no microarchitectural trace;
    - [Full_system] charges the synthetic ring-0 instruction cost of
      each system call, walks kernel data through the cache hierarchy
      (evicting user lines and growing the measured footprint) and
      flushes the TLB on kernel entry.

    The model arms at the first ROI marker (Simics "magic instruction"),
    skipping ELFie startup code. *)

type mode = User_level | Full_system

type config = {
  dispatch_width : int;
  l1 : Elfie_machine.Cache.config;
  l2 : Elfie_machine.Cache.config;
  llc : Elfie_machine.Cache.config;
  dtlb_entries : int;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  llc_miss_cycles : int;
  tlb_miss_cycles : int;
  mispredict_cycles : int;
  kernel_cpi : float;  (** cycles per simulated ring-0 instruction *)
  kernel_lines_per_syscall : int;
      (** distinct kernel cache lines touched per system call *)
  timer_interval_ins : int;
      (** full-system only: a timer interrupt fires every N user
          instructions (OS noise even in syscall-free regions) *)
  timer_kernel_ins : int;  (** ring-0 instructions per timer interrupt *)
}

(** Detailed Intel Skylake-like model (the paper's Table IV machine). *)
val skylake : config

type result = {
  user_instructions : int64;
  kernel_instructions : int64;  (** ring-0; zero in user-level mode *)
  runtime_cycles : int64;
  cpi : float;  (** cycles per user instruction *)
  data_footprint_bytes : int64;  (** distinct cache lines touched x 64 *)
  dtlb_misses : int64;
  llc_misses : int64;
  syscalls : int64;
  completed : bool;
      (** every thread exited; [false] means the [max_ins] cap stopped a
          run that was still executing (a runaway ELFie) *)
}

(** Simulate an ELF image. [measure_after] excludes the first N
    simulated instructions (a warmup prefix) from the reported CPI,
    while still warming the model. *)
val simulate :
  ?mode:mode ->
  ?from_marker:bool ->
  ?measure_after:int64 ->
  ?seed:int64 ->
  ?fs_init:(Elfie_kernel.Fs.t -> unit) ->
  ?cwd:string ->
  ?max_ins:int64 ->
  config ->
  Elfie_elf.Image.t ->
  result
